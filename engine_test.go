package mpq_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"testing"
	"time"

	"mpq"
)

// startTCPEngine launches k loopback workers and returns a TCP engine
// over them (plus the addresses, for tests that build more engines).
func startTCPEngine(t *testing.T, k int, opts ...mpq.EngineOption) (*mpq.TCPEngine, []string) {
	t.Helper()
	addrs := make([]string, k)
	for i := range addrs {
		w, err := mpq.ListenWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		addrs[i] = w.Addr()
	}
	eng, err := mpq.NewTCPEngine(addrs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng, addrs
}

// engineWorkloads is the table the equivalence test sweeps: every
// workload family the generator knows, plus the TPC-style schemas and
// a correlated-selectivity stress, across plan spaces and objectives.
func engineWorkloads(t *testing.T) []struct {
	name string
	q    *mpq.Query
	spec mpq.JobSpec
} {
	t.Helper()
	var rows []struct {
		name string
		q    *mpq.Query
		spec mpq.JobSpec
	}
	add := func(name string, q *mpq.Query, spec mpq.JobSpec) {
		rows = append(rows, struct {
			name string
			q    *mpq.Query
			spec mpq.JobSpec
		}{name, q, spec})
	}
	for i, shape := range []mpq.Shape{mpq.Star, mpq.Chain, mpq.Cycle, mpq.Clique, mpq.Snowflake} {
		params := mpq.NewWorkloadParams(7+i%2, shape)
		_, q, err := mpq.GenerateWorkload(params, int64(40+i))
		if err != nil {
			t.Fatal(err)
		}
		space := mpq.Linear
		if i%2 == 1 {
			space = mpq.Bushy
		}
		add(fmt.Sprintf("%v-%v", shape, space), q, mpq.JobSpec{Space: space, Workers: 4})
	}
	// Correlated selectivities warp the cost surface; the engines must
	// still agree plan for plan.
	params := mpq.NewWorkloadParams(8, mpq.Star)
	params.Correlation = 0.7
	_, q, err := mpq.GenerateWorkload(params, 77)
	if err != nil {
		t.Fatal(err)
	}
	add("Star-correlated", q, mpq.JobSpec{Space: mpq.Linear, Workers: 8})
	// TPC-style schema queries: realistic statistics, canonical FK joins.
	for _, sch := range []*mpq.Schema{mpq.TPCHSchema(), mpq.TPCDSSchema()} {
		_, q, err := mpq.SchemaWorkload(sch, 1)
		if err != nil {
			t.Fatal(err)
		}
		add("schema-"+sch.Name, q, mpq.JobSpec{Space: mpq.Linear, Workers: 4})
	}
	// Multi-objective: the merged frontier must match too.
	_, q, err = mpq.GenerateWorkload(mpq.NewWorkloadParams(7, mpq.Chain), 9)
	if err != nil {
		t.Fatal(err)
	}
	add("Chain-multiobjective", q, mpq.JobSpec{
		Space: mpq.Linear, Workers: 4,
		Objective: mpq.MultiObjective, Alpha: 1,
	})
	// Interesting orders: the order-aware pruner keeps several plans per
	// table set, exercising the frontier store beyond its inline slots.
	_, q, err = mpq.GenerateWorkload(mpq.NewWorkloadParams(8, mpq.Cycle), 13)
	if err != nil {
		t.Fatal(err)
	}
	add("Cycle-orders", q, mpq.JobSpec{
		Space: mpq.Linear, Workers: 4, InterestingOrders: true,
	})
	return rows
}

// TestEngineEquivalence is the unified-API capstone, one table-driven
// test instead of per-engine comparisons: on every workload family the
// three partitioned engines — goroutine workers, cluster simulator,
// TCP runtime — must return bit-identical best plans and frontiers
// (wire encoding: same partitioning, same enumeration, same bytes),
// and the serial baseline must agree on the optimal cost (plan ties
// may break differently between the unpartitioned and the partitioned
// enumeration, so serial equivalence is per cost, not per byte).
func TestEngineEquivalence(t *testing.T) {
	tcp, _ := startTCPEngine(t, 2)
	engines := []struct {
		name string
		eng  mpq.Engine
	}{
		{"inprocess", mpq.NewInProcessEngine()},
		{"inprocess-capped", mpq.NewInProcessEngine(mpq.WithParallelism(2))},
		{"sim", mpq.NewSimEngine()},
		{"tcp", tcp},
	}
	serial := mpq.NewSerialEngine()
	ctx := context.Background()
	for _, row := range engineWorkloads(t) {
		t.Run(row.name, func(t *testing.T) {
			var wantBest string
			var wantFrontier []string
			var wantCost float64
			for _, e := range engines {
				ans, err := e.eng.Optimize(ctx, row.q, row.spec)
				if err != nil {
					t.Fatalf("%s: %v", e.name, err)
				}
				bestFP := mpq.PlanFingerprint(ans.Best)
				var frontFP []string
				for _, p := range ans.Frontier {
					frontFP = append(frontFP, mpq.PlanFingerprint(p))
				}
				if wantBest == "" {
					wantBest, wantFrontier, wantCost = bestFP, frontFP, ans.Best.Cost
					continue
				}
				if bestFP != wantBest {
					t.Fatalf("%s best plan differs from %s: %s", e.name, engines[0].name, ans.Best)
				}
				if len(frontFP) != len(wantFrontier) {
					t.Fatalf("%s frontier size %d != %d", e.name, len(frontFP), len(wantFrontier))
				}
				for i := range frontFP {
					if frontFP[i] != wantFrontier[i] {
						t.Fatalf("%s frontier plan %d differs", e.name, i)
					}
				}
			}
			ans, err := serial.Optimize(ctx, row.q, row.spec)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			if diff := ans.Best.Cost - wantCost; diff > 1e-9*wantCost || diff < -1e-9*wantCost {
				t.Fatalf("serial cost %g != partitioned cost %g", ans.Best.Cost, wantCost)
			}
		})
	}
}

// TestEngineAnswerMetrics checks each engine attaches its
// substrate-specific measurements to the engine-agnostic Answer.
func TestEngineAnswerMetrics(t *testing.T) {
	_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(7, mpq.Star), 5)
	if err != nil {
		t.Fatal(err)
	}
	spec := mpq.JobSpec{Space: mpq.Linear, Workers: 4}
	ctx := context.Background()

	sim, err := mpq.NewSimEngine().Optimize(ctx, q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Cluster == nil || sim.Cluster.Bytes == 0 || sim.Cluster.VirtualTime <= 0 {
		t.Fatalf("sim answer metrics: %+v", sim.Cluster)
	}
	if sim.Net != nil {
		t.Fatal("sim answer must not carry TCP stats")
	}

	tcp, _ := startTCPEngine(t, 2)
	dist, err := tcp.Optimize(ctx, q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Net == nil || dist.Net.BytesSent == 0 || dist.Net.Messages != 8 || dist.Net.Dials != 2 {
		t.Fatalf("tcp answer net stats: %+v", dist.Net)
	}
	if dist.Cluster != nil {
		t.Fatal("tcp answer must not carry cluster metrics")
	}

	local, err := mpq.NewInProcessEngine().Optimize(ctx, q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if local.Net != nil || local.Cluster != nil {
		t.Fatal("in-process answer must not carry transport metrics")
	}
}

// TestTCPEngineBatchBitIdentical is the batch acceptance criterion:
// OptimizeBatch of N queries returns answers bit-identical to N
// sequential Optimize calls, while dialing each worker once for the
// whole batch instead of once per query — asserted via the master's
// message/byte/dial accounting.
func TestTCPEngineBatchBitIdentical(t *testing.T) {
	const k = 2
	eng, _ := startTCPEngine(t, k)
	ctx := context.Background()

	var jobs []mpq.Job
	for i, shape := range []mpq.Shape{mpq.Star, mpq.Chain, mpq.Snowflake} {
		_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(7+i, shape), int64(60+i))
		if err != nil {
			t.Fatal(err)
		}
		space := mpq.Linear
		workers := 8
		if i == 1 {
			space, workers = mpq.Bushy, 4
		}
		jobs = append(jobs, mpq.Job{Query: q, Spec: mpq.JobSpec{Space: space, Workers: workers}})
	}

	batch, err := eng.OptimizeBatch(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(jobs) {
		t.Fatalf("got %d answers for %d jobs", len(batch), len(jobs))
	}

	var seqBytesSent, seqBytesRcvd uint64
	var seqMsgs, seqDials, batchDials int
	var batchBytesSent, batchBytesRcvd uint64
	var batchMsgs int
	for i, job := range jobs {
		one, err := eng.Optimize(ctx, job.Query, job.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if mpq.PlanFingerprint(batch[i].Best) != mpq.PlanFingerprint(one.Best) {
			t.Fatalf("job %d: batch plan differs from sequential plan", i)
		}
		if batch[i].Stats != one.Stats {
			t.Fatalf("job %d: batch stats %+v != sequential %+v", i, batch[i].Stats, one.Stats)
		}
		if len(batch[i].PerWorker) != len(one.PerWorker) {
			t.Fatalf("job %d: per-worker report counts differ", i)
		}
		// The per-query traffic is identical: the same requests and
		// responses cross the wire whether or not the queries share a
		// batch.
		if batch[i].Net.BytesSent != one.Net.BytesSent ||
			batch[i].Net.BytesReceived != one.Net.BytesReceived ||
			batch[i].Net.Messages != one.Net.Messages {
			t.Fatalf("job %d: batch traffic %+v != sequential %+v", i, batch[i].Net, one.Net)
		}
		seqBytesSent += one.Net.BytesSent
		seqBytesRcvd += one.Net.BytesReceived
		seqMsgs += one.Net.Messages
		seqDials += one.Net.Dials
		batchBytesSent += batch[i].Net.BytesSent
		batchBytesRcvd += batch[i].Net.BytesReceived
		batchMsgs += batch[i].Net.Messages
		batchDials += batch[i].Net.Dials
	}
	if batchBytesSent != seqBytesSent || batchBytesRcvd != seqBytesRcvd || batchMsgs != seqMsgs {
		t.Fatalf("batch totals (%d/%d bytes, %d msgs) != sequential totals (%d/%d bytes, %d msgs)",
			batchBytesSent, batchBytesRcvd, batchMsgs, seqBytesSent, seqBytesRcvd, seqMsgs)
	}
	// Connection reuse: the batch dialed each worker once; the three
	// sequential calls dialed each worker once per call.
	if batchDials != k {
		t.Fatalf("batch dials = %d, want %d (one per worker)", batchDials, k)
	}
	if seqDials != k*len(jobs) {
		t.Fatalf("sequential dials = %d, want %d", seqDials, k*len(jobs))
	}
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline (background runtimes can lag a few scheduler ticks behind
// the function return that logically released them).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", baseline, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelMidDP cancels an in-process optimization of a 16-table
// clique partway through the dynamic program: the engine must return
// promptly with an error wrapping context.Canceled and leave no worker
// goroutine behind.
func TestCancelMidDP(t *testing.T) {
	_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(16, mpq.Clique), 1)
	if err != nil {
		t.Fatal(err)
	}
	eng := mpq.NewInProcessEngine()
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	// A 16-table clique takes orders of magnitude longer than 5ms; the
	// cancel lands mid-DP.
	timer := time.AfterFunc(5*time.Millisecond, cancel)
	defer timer.Stop()
	start := time.Now()
	_, err = eng.Optimize(ctx, q, mpq.JobSpec{Space: mpq.Linear, Workers: 4})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Detection granularity is a few hundred table sets; well under a
	// second even on a slow machine (the full run takes far longer).
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	cancel()
	waitGoroutines(t, baseline)
}

// TestCancelBeforeStart: an already-canceled context never starts the
// search, on every engine.
func TestCancelBeforeStart(t *testing.T) {
	_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(8, mpq.Star), 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tcp, _ := startTCPEngine(t, 1)
	for _, e := range []struct {
		name string
		eng  mpq.Engine
	}{
		{"serial", mpq.NewSerialEngine()},
		{"inprocess", mpq.NewInProcessEngine()},
		{"sim", mpq.NewSimEngine()},
		{"tcp", tcp},
	} {
		if _, err := e.eng.Optimize(ctx, q, mpq.JobSpec{Space: mpq.Linear, Workers: 4}); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", e.name, err)
		}
	}
}

// TestCancelMidFlightTCP cancels while a TCP job is in flight against
// a worker that never answers: the master must abort its reads, close
// every connection, and return context.Canceled without waiting for
// the transport deadline — and without leaking goroutines.
func TestCancelMidFlightTCP(t *testing.T) {
	// A mute "worker": accepts connections, reads everything, never
	// replies — the hardest case for unblocking, since the master is
	// parked in ReadFrame.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				io.Copy(io.Discard, conn)
			}(conn)
		}
	}()

	eng, err := mpq.NewTCPEngine([]string{ln.Addr().String()},
		mpq.WithMasterOptions(mpq.MasterOptions{Timeout: 30 * time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(8, mpq.Star), 3)
	if err != nil {
		t.Fatal(err)
	}

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(50*time.Millisecond, cancel)
	defer timer.Stop()
	start := time.Now()
	_, err = eng.Optimize(ctx, q, mpq.JobSpec{Space: mpq.Linear, Workers: 4})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v (the 30s transport deadline must not gate it)", elapsed)
	}
	cancel()
	waitGoroutines(t, baseline)
}

// TestTCPEngineDeadline: a context deadline tightens the per-attempt
// transport deadline and aborts the dispatcher, so per-job deadlines
// flow from context.WithDeadline instead of a bespoke timeout field.
func TestTCPEngineDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				io.Copy(io.Discard, conn)
			}(conn)
		}
	}()
	eng, err := mpq.NewTCPEngine([]string{ln.Addr().String()},
		mpq.WithMasterOptions(mpq.MasterOptions{Timeout: 30 * time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(7, mpq.Star), 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = eng.Optimize(ctx, q, mpq.JobSpec{Space: mpq.Linear, Workers: 2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline abort took %v", elapsed)
	}
}

// TestEngineWithCostModel: an engine-level cost model applies to jobs
// that don't choose their own, and changes the chosen plan costs
// consistently across engines.
func TestEngineWithCostModel(t *testing.T) {
	_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(7, mpq.Chain), 6)
	if err != nil {
		t.Fatal(err)
	}
	m := mpq.DefaultCostModel()
	m.HashFactor *= 50 // make hash joins much more expensive
	ctx := context.Background()
	spec := mpq.JobSpec{Space: mpq.Linear, Workers: 4}

	a, err := mpq.NewInProcessEngine(mpq.WithCostModel(m)).Optimize(ctx, q, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mpq.NewSerialEngine(mpq.WithCostModel(m)).Optimize(ctx, q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if mpq.PlanFingerprint(a.Best) != mpq.PlanFingerprint(b.Best) {
		t.Fatal("engines disagree under a shared custom cost model")
	}
	// The explicit spec-level model must win over the engine default.
	specExplicit := spec
	specExplicit.CostModel = mpq.DefaultCostModel()
	c, err := mpq.NewInProcessEngine(mpq.WithCostModel(m)).Optimize(ctx, q, specExplicit)
	if err != nil {
		t.Fatal(err)
	}
	d, err := mpq.NewInProcessEngine().Optimize(ctx, q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if mpq.PlanFingerprint(c.Best) != mpq.PlanFingerprint(d.Best) {
		t.Fatal("spec-level cost model did not override the engine default")
	}
}

// TestSimEngineBatch and serial/in-process batches: answers equal the
// one-at-a-time answers on every engine, not just TCP.
func TestSequentialEnginesBatch(t *testing.T) {
	var jobs []mpq.Job
	for i, shape := range []mpq.Shape{mpq.Star, mpq.Chain} {
		_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(7, shape), int64(i))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, mpq.Job{Query: q, Spec: mpq.JobSpec{Space: mpq.Linear, Workers: 4}})
	}
	ctx := context.Background()
	for _, e := range []struct {
		name string
		eng  mpq.Engine
	}{
		{"serial", mpq.NewSerialEngine()},
		{"inprocess", mpq.NewInProcessEngine()},
		{"sim", mpq.NewSimEngine()},
	} {
		batch, err := e.eng.OptimizeBatch(ctx, jobs)
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		for i, job := range jobs {
			one, err := e.eng.Optimize(ctx, job.Query, job.Spec)
			if err != nil {
				t.Fatal(err)
			}
			if mpq.PlanFingerprint(batch[i].Best) != mpq.PlanFingerprint(one.Best) {
				t.Fatalf("%s job %d: batch differs from single", e.name, i)
			}
		}
	}
}
