//lint:file-ignore SA1019 this file is the behavioral coverage of the deprecated legacy wrappers; api_compat_test.go only pins that they compile.

package mpq_test

import (
	"fmt"
	"math"
	"testing"
	"time"

	"mpq"
)

func demoQuery(t testing.TB) *mpq.Query {
	t.Helper()
	q := mpq.MustNewQuery([]mpq.QueryTable{
		{Name: "orders", Cardinality: 1e6},
		{Name: "customers", Cardinality: 1e4},
		{Name: "nations", Cardinality: 25},
		{Name: "lineitems", Cardinality: 4e6},
	})
	q.MustAddPredicate(mpq.Predicate{Left: 0, Right: 1, Selectivity: 1e-4})
	q.MustAddPredicate(mpq.Predicate{Left: 1, Right: 2, Selectivity: 0.04})
	q.MustAddPredicate(mpq.Predicate{Left: 0, Right: 3, Selectivity: 1e-6})
	q.Freeze()
	return q
}

func TestPublicAPIEndToEnd(t *testing.T) {
	q := demoQuery(t)
	serial, err := mpq.OptimizeSerial(q, mpq.Linear, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{1, 2, 4} {
		ans, err := mpq.Optimize(q, mpq.JobSpec{Space: mpq.Linear, Workers: m})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ans.Best.Cost-serial.Cost) > 1e-9*serial.Cost {
			t.Fatalf("m=%d: %g != serial %g", m, ans.Best.Cost, serial.Cost)
		}
		if err := mpq.ValidatePlan(ans.Best, q, mpq.DefaultCostModel()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPublicAPIMaxWorkers(t *testing.T) {
	if mpq.MaxWorkers(mpq.Linear, 8) != 16 {
		t.Fatal("MaxWorkers linear")
	}
	if mpq.MaxWorkers(mpq.Bushy, 9) != 8 {
		t.Fatal("MaxWorkers bushy")
	}
}

func TestPublicAPIWorkloadAndSimulation(t *testing.T) {
	cat, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(8, mpq.Star), 7)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 8 || q.N() != 8 {
		t.Fatal("workload shape")
	}
	res, err := mpq.SimulateMPQ(mpq.DefaultClusterModel(), q, mpq.JobSpec{Space: mpq.Linear, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Bytes == 0 || res.Metrics.VirtualTime <= 0 {
		t.Fatalf("metrics %+v", res.Metrics)
	}
}

func TestPublicAPISerialization(t *testing.T) {
	q := demoQuery(t)
	q2, err := mpq.DecodeQuery(mpq.EncodeQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	if q2.N() != q.N() {
		t.Fatal("query round trip")
	}
	p, err := mpq.OptimizeSerial(q, mpq.Bushy, true)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := mpq.DecodePlan(mpq.EncodePlan(p))
	if err != nil {
		t.Fatal(err)
	}
	if p2.String() != p.String() || p2.Cost != p.Cost {
		t.Fatal("plan round trip")
	}
}

func TestPublicAPIMultiObjective(t *testing.T) {
	q := demoQuery(t)
	ans, err := mpq.Optimize(q, mpq.JobSpec{
		Space: mpq.Linear, Workers: 2,
		Objective: mpq.MultiObjective, Alpha: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Frontier) == 0 {
		t.Fatal("no frontier")
	}
	if len(mpq.ExactFrontier(ans.Frontier)) != len(ans.Frontier) {
		t.Fatal("frontier not exact at alpha=1")
	}
}

func TestPublicAPIDistributed(t *testing.T) {
	w1, err := mpq.ListenWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	w2, err := mpq.ListenWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	master, err := mpq.NewMaster([]string{w1.Addr(), w2.Addr()}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	q := demoQuery(t)
	ans, err := master.Optimize(q, mpq.JobSpec{Space: mpq.Linear, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := mpq.OptimizeSerial(q, mpq.Linear, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ans.Best.Cost-serial.Cost) > 1e-9*serial.Cost {
		t.Fatal("distributed optimum differs")
	}
}

// ExampleOptimize demonstrates the quick-start flow from the package
// documentation.
func ExampleOptimize() {
	q := mpq.MustNewQuery([]mpq.QueryTable{
		{Name: "A", Cardinality: 1000},
		{Name: "B", Cardinality: 100},
		{Name: "C", Cardinality: 10},
	})
	q.MustAddPredicate(mpq.Predicate{Left: 0, Right: 1, Selectivity: 0.01})
	q.MustAddPredicate(mpq.Predicate{Left: 1, Right: 2, Selectivity: 0.1})

	ans, err := mpq.Optimize(q, mpq.JobSpec{Space: mpq.Linear, Workers: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println(ans.Best.String())
	// Output: ((T2 HJ T1) HJ T0)
}

// ExampleMaxWorkers shows the scheme's parallelism ceiling.
func ExampleMaxWorkers() {
	fmt.Println(mpq.MaxWorkers(mpq.Linear, 20))
	fmt.Println(mpq.MaxWorkers(mpq.Bushy, 18))
	// Output:
	// 1024
	// 64
}
