// Command mpqnode runs the distributed MPQ runtime over TCP: start
// worker processes on your nodes, then point a master at them.
//
// Worker:
//
//	mpqnode worker -listen :9991
//
// Master (optimizes one query across the workers):
//
//	mpqnode master -workers host1:9991,host2:9991 -tables 16 -space linear -partitions 16
//	mpqnode master -workers host1:9991 -query q.json
//
// Master batch mode (positional query files): the queries are
// pipelined through one pool of keep-alive connections — the master
// dials each worker once for the whole batch:
//
//	mpqnode master -workers host1:9991,host2:9991 q1.json q2.json q3.json
//
// Ctrl-C cancels a running optimization cleanly: in-flight jobs are
// abandoned, connections closed, and the master exits with an error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mpq"
	"mpq/internal/cliutil"
	"mpq/internal/netrun"
	"mpq/internal/spec"
	"mpq/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mpqnode:", err)
		os.Exit(1)
	}
}

func run() error {
	if len(os.Args) < 2 {
		return fmt.Errorf("usage: mpqnode worker|master [flags]")
	}
	switch os.Args[1] {
	case "worker":
		return runWorker(os.Args[2:])
	case "master":
		return runMaster(os.Args[2:])
	default:
		return fmt.Errorf("unknown subcommand %q (want worker or master)", os.Args[1])
	}
}

func runWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	listen := fs.String("listen", ":9991", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := mpq.ListenWorker(*listen)
	if err != nil {
		return err
	}
	fmt.Printf("mpq worker listening on %s\n", w.Addr())
	ctx, stop := cliutil.SignalContext(context.Background())
	defer stop()
	<-ctx.Done()
	fmt.Println("shutting down")
	return w.Close()
}

func runMaster(args []string) error {
	fs := flag.NewFlagSet("master", flag.ExitOnError)
	workers := fs.String("workers", "", "comma-separated worker addresses")
	queryFile := fs.String("query", "", "JSON query spec (- for stdin)")
	tables := fs.Int("tables", 0, "generate a random query with this many tables")
	shape := fs.String("shape", "Star",
		"join graph shape for -tables ("+strings.Join(workload.ShapeNames(), ", ")+")")
	seed := fs.Int64("seed", 0, "workload seed for -tables")
	space := fs.String("space", "linear", "plan space: linear or bushy")
	partitions := fs.Int("partitions", 0, "plan-space partitions (default: number of workers rounded down to a power of two)")
	multi := fs.Bool("mo", false, "multi-objective optimization")
	alpha := fs.Float64("alpha", 10, "approximation factor for -mo")
	robust := fs.Bool("robust", false, "robust optimization: minimize worst-case cost over a selectivity uncertainty band")
	robustBand := fs.Float64("robust-band", 0,
		fmt.Sprintf("uncertainty band B for -robust (0 = default %g)", mpq.DefaultRobustBand))
	nf := cliutil.RegisterNoise(fs)
	timeout := fs.Duration("timeout", 2*time.Minute, "per-job deadline (dial + send + compute + receive)")
	retries := fs.Int("retries", netrun.DefaultMaxAttempts, "attempts per partition before giving up")
	workerFailures := fs.Int("max-worker-failures", netrun.DefaultMaxWorkerFailures,
		"consecutive failures before a worker is excluded for the query")
	speculate := fs.Bool("speculate", false,
		"race straggling partitions against speculative clones on idle workers")
	specMult := fs.Float64("spec-multiplier", 0,
		"straggler threshold as a multiple of the median service time (0 = default)")
	specFloor := fs.Duration("spec-floor", 0,
		"lower bound on the straggler threshold (0 = default)")
	readmitAfter := fs.Duration("readmit-after", 0,
		"probe excluded workers with a pending partition after this backoff (0 = never)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	addrs := strings.Split(*workers, ",")
	if *workers == "" || len(addrs) == 0 {
		return fmt.Errorf("provide -workers host:port[,host:port...]")
	}

	ctx, stop := cliutil.SignalContext(context.Background())
	defer stop()

	jobSpace := mpq.Linear
	if strings.EqualFold(*space, "bushy") {
		jobSpace = mpq.Bushy
	} else if !strings.EqualFold(*space, "linear") {
		return fmt.Errorf("unknown plan space %q", *space)
	}

	m := *partitions
	if m == 0 {
		m = 1
		for m*2 <= len(addrs) {
			m *= 2
		}
	}
	jspec := mpq.JobSpec{Space: jobSpace, Workers: m}
	if *multi && *robust {
		return fmt.Errorf("-mo and -robust are mutually exclusive")
	}
	if *multi {
		jspec.Objective = mpq.MultiObjective
		jspec.Alpha = *alpha
	}
	if *robust {
		jspec.Objective = mpq.RobustObjective
		jspec.RobustBand = *robustBand
	}

	eng, err := mpq.NewTCPEngine(addrs, mpq.WithMasterOptions(mpq.MasterOptions{
		Timeout:               *timeout,
		MaxAttempts:           *retries,
		MaxWorkerFailures:     *workerFailures,
		Speculate:             *speculate,
		SpeculationMultiplier: *specMult,
		SpeculationFloor:      *specFloor,
		ReadmitAfter:          *readmitAfter,
	}))
	if err != nil {
		return err
	}

	// Batch mode: every positional argument is a query file; the batch
	// shares one pool of keep-alive connections.
	if files := fs.Args(); len(files) > 0 {
		if *queryFile != "" || *tables != 0 {
			return fmt.Errorf("positional query files are exclusive with -query/-tables")
		}
		return runBatch(ctx, eng, files, jspec, len(addrs), nf)
	}

	q, err := loadQuery(*queryFile, *tables, *shape, *seed)
	if err != nil {
		return err
	}
	if q, err = nf.Apply(q); err != nil {
		return err
	}
	start := time.Now()
	ans, err := eng.Optimize(ctx, q, jspec)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return fmt.Errorf("interrupted — optimization canceled cleanly: %w", err)
		}
		return err
	}
	fmt.Printf("optimized %d-table query over %d workers (%d partitions) in %v\n",
		q.N(), len(addrs), m, time.Since(start).Round(time.Millisecond))
	fmt.Println(cliutil.Describe(ans))
	if ans.Frontier != nil && *robust {
		fmt.Printf("robust frontier: %d plans; best worst-case cost %.4g (nominal %.4g)\n",
			len(ans.Frontier), ans.Best.Buffer, ans.Best.Cost)
	} else if ans.Frontier != nil {
		fmt.Printf("Pareto frontier: %d plans\n", len(ans.Frontier))
	}
	fmt.Println("best plan:")
	fmt.Print(ans.Best.Format())
	return nil
}

func runBatch(ctx context.Context, eng *mpq.TCPEngine, files []string, jspec mpq.JobSpec, numWorkers int, nf *cliutil.NoiseFlags) error {
	jobs := make([]mpq.Job, 0, len(files))
	for _, file := range files {
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		q, err := spec.Read(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		if q, err = nf.Apply(q); err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		jobs = append(jobs, mpq.Job{Query: q, Spec: jspec})
	}
	start := time.Now()
	answers, err := eng.OptimizeBatch(ctx, jobs)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return fmt.Errorf("interrupted — batch canceled cleanly: %w", err)
		}
		return err
	}
	var dials int
	for i, ans := range answers {
		fmt.Printf("%s: best %s (cost %.4g), %d bytes, %d messages\n",
			files[i], ans.Best, ans.Best.Cost, ans.Net.BytesSent+ans.Net.BytesReceived, ans.Net.Messages)
		dials += ans.Net.Dials
	}
	fmt.Printf("batch of %d queries over %d workers in %v — %d connection(s) dialed for the whole batch\n",
		len(jobs), numWorkers, time.Since(start).Round(time.Millisecond), dials)
	return nil
}

func loadQuery(file string, tables int, shape string, seed int64) (*mpq.Query, error) {
	switch {
	case file == "" && tables == 0:
		return nil, fmt.Errorf("provide -query FILE, -tables N or positional query files")
	case file != "" && tables != 0:
		return nil, fmt.Errorf("-query and -tables are mutually exclusive")
	case file == "-":
		return spec.Read(os.Stdin)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return spec.Read(f)
	default:
		sh, err := workload.ParseShape(shape)
		if err != nil {
			return nil, err
		}
		_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(tables, sh), seed)
		return q, err
	}
}
