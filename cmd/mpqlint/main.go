// Command mpqlint runs the repository's static-analysis suite
// (internal/analysis) over Go packages: the invariant analyzers
// arenaescape, ctxflow, lockorder and tagswitch, plus stdlib-only
// ports of the upstream nilness, copylocks and lostcancel passes.
//
// Usage:
//
//	go run ./cmd/mpqlint ./...
//	go run ./cmd/mpqlint -list
//	go run ./cmd/mpqlint -facts ~/.cache/mpqlint ./... ./examples/...
//
// Findings print as file:line:col: message (analyzer), one per line —
// the format CI's problem matcher annotates — and a nonzero exit
// status reports that findings exist. Deliberate exceptions are
// suppressed in source with `//lint:allow <analyzer> <reason>`; see
// docs/static-analysis.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mpq/internal/analysis"
	"mpq/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mpqlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as JSON Lines instead of text")
	factsDir := fs.String("facts", os.Getenv("MPQLINT_FACTS"),
		"directory for the per-package findings cache (default $MPQLINT_FACTS; empty disables)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mpqlint [-list] [-json] [-facts dir] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := suite.All()
	if *list {
		for _, a := range analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "mpqlint: %v\n", err)
		return 2
	}
	facts, err := analysis.OpenFacts(*factsDir)
	if err != nil {
		fmt.Fprintf(stderr, "mpqlint: %v\n", err)
		return 2
	}

	enc := json.NewEncoder(stdout)
	total := 0
	for _, pkg := range pkgs {
		findings, cached := facts.Get(pkg, analyzers)
		if !cached {
			findings, err = analysis.RunSuite(pkg, analyzers)
			if err != nil {
				fmt.Fprintf(stderr, "mpqlint: %v\n", err)
				return 2
			}
			facts.Put(pkg, analyzers, findings)
		}
		for _, f := range findings {
			total++
			if *jsonOut {
				enc.Encode(f)
			} else {
				fmt.Fprintln(stdout, f)
			}
		}
	}
	if total > 0 {
		fmt.Fprintf(stderr, "mpqlint: %d finding(s)\n", total)
		return 1
	}
	return 0
}
