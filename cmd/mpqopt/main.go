// Command mpqopt optimizes a single join query and prints the chosen
// plan, either from a JSON query spec (see cmd/mpqgen) or from a
// generated random workload. The query runs on any of the four
// execution engines behind the unified mpq.Engine API; Ctrl-C cancels
// a long optimization cleanly (the context aborts the dynamic program
// and tears down workers).
//
// Usage:
//
//	mpqopt -query q.json [flags]
//	mpqopt -tables 12 -shape Star -seed 3 [flags]
//	mpqopt -schema tpch -sf 1 [flags]
//
// Flags:
//
//	-space linear|bushy    plan space (default linear)
//	-workers N             plan-space partitions, power of two (default 1)
//	-mo                    multi-objective (time + buffer) optimization
//	-alpha A               approximation factor for -mo (default 10)
//	-robust                robust optimization against selectivity error
//	-robust-band B         uncertainty band for -robust (default 2)
//	-noise E -noise-seed S seeded q-error-style selectivity noise
//	-orders                track interesting orders
//	-engine serial|local|sim|tcp|daemon
//	                       execution engine (default local); tcp needs
//	                       -tcp-workers, sim accepts -kill/-detect,
//	                       daemon needs -daemon-addr (a running mpqd)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"mpq"
	"mpq/internal/catalog"
	"mpq/internal/cliutil"
	"mpq/internal/spec"
	"mpq/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mpqopt:", err)
		os.Exit(1)
	}
}

func run() error {
	queryFile := flag.String("query", "", "JSON query spec file (- for stdin)")
	tables := flag.Int("tables", 0, "generate a random query with this many tables")
	shape := flag.String("shape", "Star",
		"join graph shape for -tables ("+strings.Join(workload.ShapeNames(), ", ")+")")
	seed := flag.Int64("seed", 0, "workload seed for -tables")
	schemaName := flag.String("schema", "",
		"optimize the canonical join query of a built-in TPC-style schema ("+
			strings.Join(catalog.SchemaNames(), ", ")+")")
	sf := flag.Float64("sf", 1, "scale factor for -schema")
	space := flag.String("space", "linear", "plan space: linear or bushy")
	workers := flag.Int("workers", 1, "number of plan-space partitions (power of two)")
	multi := flag.Bool("mo", false, "multi-objective optimization (time + buffer)")
	alpha := flag.Float64("alpha", 10, "approximation factor for -mo")
	robust := flag.Bool("robust", false, "robust optimization: minimize worst-case cost over a selectivity uncertainty band")
	robustBand := flag.Float64("robust-band", 0,
		fmt.Sprintf("uncertainty band B for -robust: true selectivities may exceed estimates by up to B (0 = default %g)", mpq.DefaultRobustBand))
	orders := flag.Bool("orders", false, "track interesting orders")
	dot := flag.Bool("dot", false, "emit the best plan as a Graphviz digraph instead of a tree")
	fingerprint := flag.Bool("fingerprint", false, "print the best plan's fingerprint (identical across engines for the same job)")
	ef := cliutil.Register(flag.CommandLine, "local")
	nf := cliutil.RegisterNoise(flag.CommandLine)
	flag.Parse()

	// Ctrl-C cancels the context; the engines abort the dynamic program
	// between cardinality levels and shut their workers down. A second
	// Ctrl-C force-kills (SignalContext releases the registration after
	// the first).
	ctx, stop := cliutil.SignalContext(context.Background())
	defer stop()

	q, err := loadQuery(*queryFile, *tables, *shape, *seed, *schemaName, *sf)
	if err != nil {
		return err
	}
	if q, err = nf.Apply(q); err != nil {
		return err
	}

	jobSpace := mpq.Linear
	switch strings.ToLower(*space) {
	case "linear":
	case "bushy":
		jobSpace = mpq.Bushy
	default:
		return fmt.Errorf("unknown plan space %q", *space)
	}

	jspec := mpq.JobSpec{
		Space:             jobSpace,
		Workers:           *workers,
		InterestingOrders: *orders,
	}
	if *multi && *robust {
		return fmt.Errorf("-mo and -robust are mutually exclusive")
	}
	if *multi {
		jspec.Objective = mpq.MultiObjective
		jspec.Alpha = *alpha
	}
	if *robust {
		jspec.Objective = mpq.RobustObjective
		jspec.RobustBand = *robustBand
	}

	eng, err := ef.Build(*workers)
	if err != nil {
		return err
	}

	// The serial engine always runs the unpartitioned DP; report the
	// worker count it actually uses rather than the -workers request.
	effectiveWorkers := *workers
	if strings.EqualFold(ef.Engine, "serial") {
		effectiveWorkers = 1
	}
	fmt.Printf("query: %d tables, %d predicates; %v space; %d workers (max %d); engine %s\n",
		q.N(), len(q.Preds), jobSpace, effectiveWorkers, mpq.MaxWorkers(jobSpace, q.N()), ef.Engine)

	ans, err := eng.Optimize(ctx, q, jspec)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return fmt.Errorf("interrupted — optimization canceled cleanly: %w", err)
		}
		return err
	}
	render := ans.Best.Format()
	if *dot {
		render = ans.Best.DOT("plan")
	}
	printAnswer(render, ans, cliutil.Describe(ans), *robust)
	if *fingerprint {
		fmt.Printf("fingerprint: %s\n", mpq.PlanFingerprint(ans.Best))
	}
	return nil
}

func loadQuery(file string, tables int, shape string, seed int64, schemaName string, sf float64) (*mpq.Query, error) {
	sources := 0
	for _, set := range []bool{file != "", tables != 0, schemaName != ""} {
		if set {
			sources++
		}
	}
	switch {
	case sources == 0:
		return nil, fmt.Errorf("provide -query FILE, -tables N or -schema NAME")
	case sources > 1:
		return nil, fmt.Errorf("-query, -tables and -schema are mutually exclusive")
	case schemaName != "":
		sch, err := catalog.BuiltinSchema(schemaName)
		if err != nil {
			return nil, err
		}
		_, q, err := mpq.SchemaWorkload(sch, sf)
		return q, err
	case file == "-":
		return spec.Read(os.Stdin)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return spec.Read(f)
	default:
		sh, err := workload.ParseShape(shape)
		if err != nil {
			return nil, err
		}
		_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(tables, sh), seed)
		return q, err
	}
}

func printAnswer(planTree string, ans *mpq.Answer, engineLine string, robust bool) {
	fmt.Printf("work: %d units; %s\n\n", ans.Stats.WorkUnits(), engineLine)
	if ans.Frontier != nil && robust {
		// Under a robust job the second metric is the plan's worst-case
		// cost at the high endpoint of the uncertainty band.
		fmt.Printf("robust frontier (%d plans, nominal vs worst-case cost):\n", len(ans.Frontier))
		for i, p := range ans.Frontier {
			fmt.Printf("  #%d (cost=%.4g, worst=%.4g)  %s\n", i+1, p.Cost, p.Buffer, p)
		}
		fmt.Println()
	} else if ans.Frontier != nil {
		fmt.Printf("Pareto frontier (%d plans):\n", len(ans.Frontier))
		for i, p := range ans.Frontier {
			fmt.Printf("  #%d (t=%.4g, b=%.4g)  %s\n", i+1, p.Cost, p.Buffer, p)
		}
		fmt.Println()
	}
	if robust {
		fmt.Printf("best plan (min worst-case cost %.4g, nominal %.4g):\n", ans.Best.Buffer, ans.Best.Cost)
	} else {
		fmt.Println("best plan (time metric):")
	}
	fmt.Print(planTree)
}
