// Command mpqopt optimizes a single join query and prints the chosen
// plan, either from a JSON query spec (see cmd/mpqgen) or from a
// generated random workload.
//
// Usage:
//
//	mpqopt -query q.json [flags]
//	mpqopt -tables 12 -shape Star -seed 3 [flags]
//	mpqopt -schema tpch -sf 1 [flags]
//
// Flags:
//
//	-space linear|bushy    plan space (default linear)
//	-workers N             plan-space partitions, power of two (default 1)
//	-mo                    multi-objective (time + buffer) optimization
//	-alpha A               approximation factor for -mo (default 10)
//	-orders                track interesting orders
//	-engine local|sim      goroutine engine or cluster simulation
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpq/internal/catalog"
	"mpq/internal/cluster"
	"mpq/internal/core"
	"mpq/internal/mo"
	"mpq/internal/partition"
	"mpq/internal/plan"
	"mpq/internal/query"
	"mpq/internal/spec"
	"mpq/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mpqopt:", err)
		os.Exit(1)
	}
}

func run() error {
	queryFile := flag.String("query", "", "JSON query spec file (- for stdin)")
	tables := flag.Int("tables", 0, "generate a random query with this many tables")
	shape := flag.String("shape", "Star",
		"join graph shape for -tables ("+strings.Join(workload.ShapeNames(), ", ")+")")
	seed := flag.Int64("seed", 0, "workload seed for -tables")
	schemaName := flag.String("schema", "",
		"optimize the canonical join query of a built-in TPC-style schema ("+
			strings.Join(catalog.SchemaNames(), ", ")+")")
	sf := flag.Float64("sf", 1, "scale factor for -schema")
	space := flag.String("space", "linear", "plan space: linear or bushy")
	workers := flag.Int("workers", 1, "number of plan-space partitions (power of two)")
	multi := flag.Bool("mo", false, "multi-objective optimization (time + buffer)")
	alpha := flag.Float64("alpha", 10, "approximation factor for -mo")
	orders := flag.Bool("orders", false, "track interesting orders")
	engine := flag.String("engine", "local", "execution engine: local (goroutines) or sim (cluster simulation)")
	kill := flag.Int("kill", 0, "sim engine: crash this many workers mid-query and measure recovery")
	detect := flag.Duration("detect", 0, "sim engine: failure-detection timeout for -kill (default 10s)")
	dot := flag.Bool("dot", false, "emit the best plan as a Graphviz digraph instead of a tree")
	flag.Parse()

	q, err := loadQuery(*queryFile, *tables, *shape, *seed, *schemaName, *sf)
	if err != nil {
		return err
	}

	jobSpace := partition.Linear
	switch strings.ToLower(*space) {
	case "linear":
	case "bushy":
		jobSpace = partition.Bushy
	default:
		return fmt.Errorf("unknown plan space %q", *space)
	}

	jspec := core.JobSpec{
		Space:             jobSpace,
		Workers:           *workers,
		InterestingOrders: *orders,
	}
	if *multi {
		jspec.Objective = core.MultiObjective
		jspec.Alpha = *alpha
	}

	fmt.Printf("query: %d tables, %d predicates; %v space; %d workers (max %d)\n",
		q.N(), len(q.Preds), jobSpace, *workers, partition.MaxWorkers(jobSpace, q.N()))

	render := func(p *plan.Node) string {
		if *dot {
			return p.DOT("plan")
		}
		return p.Format()
	}
	switch *engine {
	case "local":
		ans, err := core.Optimize(q, jspec)
		if err != nil {
			return err
		}
		printAnswer(render(ans.Best), ans.Frontier, ans.Stats.WorkUnits(), fmt.Sprintf(
			"wall %v (slowest worker %v)", ans.Elapsed.Round(1000), ans.MaxWorkerElapsed.Round(1000)))
	case "sim":
		if *kill < 0 || *kill >= *workers {
			return fmt.Errorf("-kill %d must leave at least one of %d workers alive", *kill, *workers)
		}
		faults := cluster.Faults{DetectTimeout: *detect}
		for i := 0; i < *kill; i++ {
			faults.Dead = append(faults.Dead, i)
		}
		res, err := cluster.RunMPQWithFaults(cluster.Default(), q, jspec, faults)
		if err != nil {
			return err
		}
		line := fmt.Sprintf(
			"virtual %v, network %d bytes in %d messages, peak memo %d relations",
			res.Metrics.VirtualTime.Round(1000), res.Metrics.Bytes, res.Metrics.Messages, res.Metrics.MaxMemoEntries)
		if *kill > 0 {
			line += fmt.Sprintf("; killed %d worker(s): %d re-dispatches, recovery overhead %v",
				*kill, res.Metrics.Redispatches, res.Metrics.RecoveryOverhead.Round(1000))
		}
		printAnswer(render(res.Best), res.Frontier, res.Metrics.Work.WorkUnits(), line)
	default:
		return fmt.Errorf("unknown engine %q", *engine)
	}
	return nil
}

func loadQuery(file string, tables int, shape string, seed int64, schemaName string, sf float64) (*query.Query, error) {
	sources := 0
	for _, set := range []bool{file != "", tables != 0, schemaName != ""} {
		if set {
			sources++
		}
	}
	switch {
	case sources == 0:
		return nil, fmt.Errorf("provide -query FILE, -tables N or -schema NAME")
	case sources > 1:
		return nil, fmt.Errorf("-query, -tables and -schema are mutually exclusive")
	case schemaName != "":
		sch, err := catalog.BuiltinSchema(schemaName)
		if err != nil {
			return nil, err
		}
		_, q, err := workload.FromSchema(sch, sf)
		return q, err
	case file == "-":
		return spec.Read(os.Stdin)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return spec.Read(f)
	default:
		sh, err := workload.ParseShape(shape)
		if err != nil {
			return nil, err
		}
		_, q, err := workload.Generate(workload.NewParams(tables, sh), seed)
		return q, err
	}
}

func printAnswer(planTree string, frontier []*plan.Node, units uint64, engineLine string) {
	fmt.Printf("work: %d units; %s\n\n", units, engineLine)
	if frontier != nil {
		fmt.Printf("Pareto frontier (%d plans):\n", len(frontier))
		for i, p := range frontier {
			fmt.Printf("  #%d %v  %s\n", i+1, mo.VecOf(p), p)
		}
		fmt.Println()
	}
	fmt.Println("best plan (time metric):")
	fmt.Print(planTree)
}
