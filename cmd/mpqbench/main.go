// Command mpqbench regenerates the paper's tables and figures on the
// simulated shared-nothing cluster.
//
// Usage:
//
//	mpqbench -experiment fig1|fig2|fig3|fig4|fig5|table1|speedups|workloads|micro|cache|stragglers|regret|all [flags]
//
// Flags:
//
//	-full        paper-scale query sizes and worker counts (slow)
//	-queries N   random queries per data point (default 5; paper used 20)
//	-seed N      base workload seed
//	-real        also measure real wall-clock speedups (speedups only)
//	-quiet       suppress progress lines
//	-csv         emit CSV instead of aligned text
//	-json        emit JSON Lines (one object per table), for the
//	             benchmark-trajectory tooling (BENCH_*.json)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"mpq/internal/cliutil"
	"mpq/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mpqbench:", err)
		os.Exit(1)
	}
}

func run() error {
	experiment := flag.String("experiment", "all", "which experiment to run (fig1..fig5, table1, speedups, workloads, micro, cache, stragglers, regret, all)")
	full := flag.Bool("full", false, "paper-scale sizes (slow)")
	queries := flag.Int("queries", 0, "queries per data point (0 = scale default)")
	seed := flag.Int64("seed", 0, "base workload seed")
	real := flag.Bool("real", false, "measure real wall-clock speedups too")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned text")
	jsonOut := flag.Bool("json", false, "emit JSON Lines (one object per table) instead of aligned text")
	flag.Parse()
	if *csvOut && *jsonOut {
		return fmt.Errorf("-csv and -json are mutually exclusive")
	}
	emitCSV = *csvOut
	emitJSON = *jsonOut

	cfg := experiments.Quick()
	if *full {
		cfg = experiments.FullScale()
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	cfg.BaseSeed = *seed
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	// Ctrl-C cancels the sweep cleanly: the experiment in flight aborts
	// within one data point, and every table completed so far has
	// already been flushed to stdout (render runs per experiment), so a
	// partial -json run is a prefix of valid JSON lines rather than a
	// line cut mid-write. A second Ctrl-C force-kills (SignalContext
	// releases the registration after the first).
	ctx, stop := cliutil.SignalContext(context.Background())
	defer stop()
	cfg.Ctx = ctx

	runners := map[string]func() error{
		"fig1": func() error {
			panels, err := experiments.Fig1(cfg)
			if err != nil {
				return err
			}
			render(experiments.Fig1Tables(panels))
			return nil
		},
		"fig2": func() error {
			panels, err := experiments.Fig2(cfg)
			if err != nil {
				return err
			}
			render(experiments.Fig2Tables(panels))
			return nil
		},
		"fig3": func() error {
			panels, err := experiments.Fig3(cfg)
			if err != nil {
				return err
			}
			render(experiments.Fig3Tables(panels))
			return nil
		},
		"fig4": func() error {
			panels, err := experiments.Fig4(cfg)
			if err != nil {
				return err
			}
			render(experiments.Fig4Tables(panels))
			return nil
		},
		"fig5": func() error {
			panels, err := experiments.Fig5(cfg)
			if err != nil {
				return err
			}
			render(experiments.Fig5Tables(panels))
			return nil
		},
		"table1": func() error {
			res, err := experiments.Table1(cfg, experiments.DefaultTable1Options(cfg.Full))
			if err != nil {
				return err
			}
			render([]*experiments.Table{experiments.Table1Table(res)})
			return nil
		},
		"speedups": func() error {
			rows, err := experiments.Speedups(cfg, *real)
			if err != nil {
				return err
			}
			render([]*experiments.Table{experiments.SpeedupsTable(rows, *real)})
			return nil
		},
		"workloads": func() error {
			rows, err := experiments.Workloads(cfg)
			if err != nil {
				return err
			}
			render([]*experiments.Table{experiments.WorkloadsTable(rows)})
			return nil
		},
		"micro": func() error {
			rows, err := experiments.Micro(cfg)
			if err != nil {
				return err
			}
			render([]*experiments.Table{experiments.MicroTable(rows)})
			return nil
		},
		"cache": func() error {
			rows, err := experiments.CacheServing(cfg)
			if err != nil {
				return err
			}
			render([]*experiments.Table{experiments.CacheServingTable(rows)})
			return nil
		},
		"stragglers": func() error {
			rows, err := experiments.Stragglers(cfg)
			if err != nil {
				return err
			}
			render([]*experiments.Table{experiments.StragglersTable(rows)})
			return nil
		},
		"regret": func() error {
			rows, err := experiments.Regret(cfg)
			if err != nil {
				return err
			}
			render([]*experiments.Table{experiments.RegretTable(rows)})
			return nil
		},
	}

	if *experiment == "all" {
		for _, name := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "table1", "speedups", "workloads", "micro", "cache", "stragglers", "regret"} {
			if err := ctx.Err(); err != nil {
				return interrupted(err)
			}
			if err := runners[name](); err != nil {
				if errors.Is(err, context.Canceled) {
					return interrupted(err)
				}
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	r, ok := runners[*experiment]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
	if err := r(); err != nil {
		if errors.Is(err, context.Canceled) {
			return interrupted(err)
		}
		return err
	}
	return nil
}

// interrupted explains a Ctrl-C exit: the sweep stopped cleanly and
// everything already printed is complete output.
func interrupted(err error) error {
	return fmt.Errorf("interrupted — completed tables were flushed, the experiment in flight was discarded: %w", err)
}

var (
	emitCSV  bool
	emitJSON bool
)

func render(tables []*experiments.Table) {
	for _, t := range tables {
		switch {
		case emitJSON:
			if err := t.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "mpqbench: json:", err)
				os.Exit(1)
			}
		case emitCSV:
			if err := t.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "mpqbench: csv:", err)
				os.Exit(1)
			}
			fmt.Println()
		default:
			t.Render(os.Stdout)
		}
	}
}
