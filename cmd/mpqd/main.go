// Command mpqd is the resident optimizer daemon: it keeps one
// mpq.Engine warm behind an HTTP/JSON API and the binary wire
// protocol, with admission control, per-tenant weighted fairness,
// completion-order streaming, a plan decision log, and graceful drain.
//
// Start a daemon on the in-process engine with a 64 MiB plan cache:
//
//	mpqd -http :8080 -wire :9990 -cache-bytes 67108864
//
// Submit a query over HTTP:
//
//	curl -d '{"query": '"$(cat q.json)"', "workers": 4}' localhost:8080/v1/optimize
//
// Or over the wire protocol, through any mpq tool:
//
//	mpqopt -engine daemon -daemon-addr localhost:9990 -query q.json
//
// Operations endpoints: GET /healthz (503 while draining), GET
// /metrics (Prometheus text), /debug/pprof/. The first SIGINT/SIGTERM
// drains (stop accepting, finish in-flight work, bounded by
// -drain-timeout); a second signal force-kills. See docs/operations.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mpq"
	"mpq/internal/cliutil"
	"mpq/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mpqd:", err)
		os.Exit(1)
	}
}

func run() error {
	httpAddr := flag.String("http", ":8080", "HTTP listen address (empty to disable)")
	wireAddr := flag.String("wire", "", "wire-protocol listen address (empty to disable)")
	queueDepth := flag.Int("queue-depth", 0, "arrival queue bound; beyond it requests are rejected (0 = default 256)")
	dispatchers := flag.Int("dispatchers", 0, "concurrent engine calls (0 = default 4)")
	defaultTimeout := flag.Duration("default-timeout", 0, "deadline for requests that carry none (0 = 1m)")
	drainTimeout := flag.Duration("drain-timeout", server.DefaultDrainWait, "grace period for in-flight work on shutdown")
	weights := flag.String("tenant-weights", "", "per-tenant fairness weights, e.g. team-a=3,team-b=1 (unlisted tenants get 1)")
	cacheBytes := flag.Int64("cache-bytes", 0, "wrap the engine in a plan cache with this eviction budget (0 = no cache)")
	planLog := flag.String("plan-log", "", "plan decision log path (JSON lines; empty to disable)")
	planLogBytes := flag.Int64("plan-log-max-bytes", 0, "plan log size before rotation (0 = 8 MiB)")
	planLogFiles := flag.Int("plan-log-max-files", 0, "rotated plan log files to keep (0 = 3)")
	ef := cliutil.Register(flag.CommandLine, "local")
	flag.Parse()

	tenantWeights, err := parseWeights(*weights)
	if err != nil {
		return err
	}
	eng, err := ef.Build(1 << 20)
	if err != nil {
		return err
	}
	if *cacheBytes > 0 {
		eng = mpq.WithCache(eng, mpq.CacheConfig{MaxBytes: *cacheBytes})
	}

	srv, err := server.New(server.Config{
		Engine:         eng,
		HTTPAddr:       *httpAddr,
		WireAddr:       *wireAddr,
		QueueDepth:     *queueDepth,
		Dispatchers:    *dispatchers,
		DefaultTimeout: *defaultTimeout,
		TenantWeights:  tenantWeights,
		PlanLog: server.PlanLogConfig{
			Path:     *planLog,
			MaxBytes: *planLogBytes,
			MaxFiles: *planLogFiles,
		},
	})
	if err != nil {
		return err
	}

	// First signal starts the drain; because SignalContext releases the
	// registration immediately, a second signal force-kills the process
	// even if the drain is still running.
	ctx, stop := cliutil.SignalContext(context.Background())
	defer stop()

	if err := srv.Start(); err != nil {
		return err
	}
	if a := srv.HTTPAddr(); a != "" {
		fmt.Printf("mpqd: http on %s\n", a)
	}
	if a := srv.WireAddr(); a != "" {
		fmt.Printf("mpqd: wire on %s\n", a)
	}
	<-ctx.Done()
	fmt.Printf("mpqd: draining (up to %v; press Ctrl-C again to force quit)\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return err
	}
	fmt.Println("mpqd: drained cleanly")
	return nil
}

// parseWeights parses "a=3,b=1.5" into a weight map.
func parseWeights(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	m := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -tenant-weights entry %q (want name=weight)", part)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad weight %q for tenant %q (want a positive number)", val, name)
		}
		m[name] = w
	}
	return m, nil
}
