// Command mpqgen generates random benchmark queries by the Steinbrunn
// et al. method (the paper's workload, §6.1) and writes them as JSON
// specs for cmd/mpqopt, optionally with the backing catalog.
//
// Usage:
//
//	mpqgen -tables 12 -shape Star -seed 7 -out query.json -catalog cat.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mpq/internal/spec"
	"mpq/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mpqgen:", err)
		os.Exit(1)
	}
}

func run() error {
	tables := flag.Int("tables", 8, "number of tables")
	shape := flag.String("shape", "Star", "join graph shape (Star, Chain, Cycle, Clique)")
	seed := flag.Int64("seed", 0, "generation seed")
	out := flag.String("out", "-", "query spec output file (- for stdout)")
	catOut := flag.String("catalog", "", "also write the catalog JSON here")
	minCard := flag.Float64("min-card", 0, "override minimum table cardinality")
	maxCard := flag.Float64("max-card", 0, "override maximum table cardinality")
	flag.Parse()

	sh, err := workload.ParseShape(*shape)
	if err != nil {
		return err
	}
	params := workload.NewParams(*tables, sh)
	if *minCard > 0 {
		params.MinCard = *minCard
	}
	if *maxCard > 0 {
		params.MaxCard = *maxCard
	}
	cat, q, err := workload.Generate(params, *seed)
	if err != nil {
		return err
	}

	if err := withWriter(*out, func(w io.Writer) error {
		return spec.FromQuery(q).Write(w)
	}); err != nil {
		return err
	}
	if *catOut != "" {
		if err := withWriter(*catOut, cat.WriteJSON); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "generated %d-table %v query (seed %d, %d predicates)\n",
		*tables, sh, *seed, len(q.Preds))
	return nil
}

func withWriter(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
