// Command mpqgen generates benchmark queries as JSON specs for
// cmd/mpqopt, optionally with the backing catalog: random queries by the
// Steinbrunn et al. method (the paper's workload, §6.1) or fixed
// TPC-style schema queries at a configurable scale factor.
//
// Usage:
//
//	mpqgen -tables 12 -shape Star -seed 7 -out query.json -catalog cat.json
//	mpqgen -tables 13 -shape Snowflake -branching 3 -correlation 0.8
//	mpqgen -schema tpch -sf 10 -out query.json
//	mpqgen -schema tpcds -subgraph 5 -seed 3 -out query.json
//	mpqgen -schema-file myschema.json -sf 0.1
//
// -subgraph N cuts a random connected N-table sub-graph out of the
// schema's foreign-key join graph instead of the full canonical query;
// -noise E perturbs the spec's selectivities with seeded q-error-style
// estimation error. See docs/workloads.md for the full workload guide.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mpq/internal/catalog"
	"mpq/internal/cliutil"
	"mpq/internal/query"
	"mpq/internal/spec"
	"mpq/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mpqgen:", err)
		os.Exit(1)
	}
}

func run() error {
	tables := flag.Int("tables", 8, "number of tables (random workloads)")
	shape := flag.String("shape", "Star",
		"join graph shape ("+strings.Join(workload.ShapeNames(), ", ")+")")
	seed := flag.Int64("seed", 0, "generation seed")
	out := flag.String("out", "-", "query spec output file (- for stdout)")
	catOut := flag.String("catalog", "", "also write the catalog JSON here")
	minCard := flag.Float64("min-card", 0, "override minimum table cardinality")
	maxCard := flag.Float64("max-card", 0, "override maximum table cardinality")
	branching := flag.Int("branching", 0, "override Snowflake fan-out (default 3)")
	correlation := flag.Float64("correlation", 0,
		"predicate correlation in [-1,1]: 0 = independent selectivities, >0 correlated (less selective), <0 anti-correlated")
	schemaName := flag.String("schema", "",
		"generate the canonical join query of a built-in TPC-style schema ("+
			strings.Join(catalog.SchemaNames(), ", ")+") instead of a random workload")
	schemaFile := flag.String("schema-file", "", "like -schema, but load the schema definition from a JSON file")
	sf := flag.Float64("sf", 1, "scale factor for -schema/-schema-file")
	subgraph := flag.Int("subgraph", 0,
		"with -schema/-schema-file: cut a random connected sub-graph with this many tables out of the foreign-key join graph (uses -seed)")
	nf := cliutil.RegisterNoise(flag.CommandLine)
	flag.Parse()

	var (
		cat     *catalog.Catalog
		q       *query.Query
		summary string
	)
	switch {
	case *schemaName != "" && *schemaFile != "":
		return fmt.Errorf("-schema and -schema-file are mutually exclusive")
	case *schemaName != "" || *schemaFile != "":
		// Schema queries are fixed: reject random-workload flags rather
		// than silently ignoring them. -subgraph is the exception that
		// re-introduces randomness, so it claims -seed for itself.
		randomFlags := map[string]bool{
			"tables": true, "shape": true, "seed": true,
			"min-card": true, "max-card": true, "branching": true, "correlation": true,
		}
		if *subgraph > 0 {
			delete(randomFlags, "seed")
		}
		var conflict error
		flag.Visit(func(f *flag.Flag) {
			if randomFlags[f.Name] && conflict == nil {
				conflict = fmt.Errorf("-%s only applies to random workloads; it cannot be combined with -schema/-schema-file", f.Name)
			}
		})
		if conflict != nil {
			return conflict
		}
		sch, err := loadSchema(*schemaName, *schemaFile)
		if err != nil {
			return err
		}
		if *subgraph > 0 {
			cat, q, err = workload.SubgraphFromSchema(sch, *sf, *subgraph, *seed)
			if err != nil {
				return err
			}
			summary = fmt.Sprintf("generated %d-table %s sub-graph query at scale factor %g (seed %d, %d predicates)",
				q.N(), sch.Name, *sf, *seed, len(q.Preds))
			break
		}
		cat, q, err = workload.FromSchema(sch, *sf)
		if err != nil {
			return err
		}
		summary = fmt.Sprintf("generated %d-table %s query at scale factor %g (%d predicates)",
			q.N(), sch.Name, *sf, len(q.Preds))
	case *subgraph > 0:
		return fmt.Errorf("-subgraph requires -schema or -schema-file")
	default:
		sh, err := workload.ParseShape(*shape)
		if err != nil {
			return err
		}
		params := workload.NewParams(*tables, sh)
		if *minCard > 0 {
			params.MinCard = *minCard
		}
		if *maxCard > 0 {
			params.MaxCard = *maxCard
		}
		if *branching > 0 {
			params.Branching = *branching
		}
		params.Correlation = *correlation
		cat, q, err = workload.Generate(params, *seed)
		if err != nil {
			return err
		}
		summary = fmt.Sprintf("generated %d-table %v query (seed %d, %d predicates)",
			*tables, sh, *seed, len(q.Preds))
	}

	if nf.Magnitude != 0 {
		var err error
		if q, err = nf.Apply(q); err != nil {
			return err
		}
		summary += fmt.Sprintf("; selectivity noise ε=%g (seed %d)", nf.Magnitude, nf.Seed)
	}

	if err := withWriter(*out, func(w io.Writer) error {
		return spec.FromQuery(q).Write(w)
	}); err != nil {
		return err
	}
	if *catOut != "" {
		if err := withWriter(*catOut, cat.WriteJSON); err != nil {
			return err
		}
	}
	fmt.Fprintln(os.Stderr, summary)
	return nil
}

func loadSchema(name, file string) (*catalog.Schema, error) {
	if name != "" {
		return catalog.BuiltinSchema(name)
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return catalog.ReadSchemaJSON(f)
}

func withWriter(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
