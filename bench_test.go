// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§6), plus micro-benchmarks of the optimizer itself.
//
// The figure benchmarks run the experiment harness at a reduced scale so
// the whole suite completes in minutes; run cmd/mpqbench with -full for
// paper-scale reproductions. Custom metrics report the quantities the
// paper plots (virtual ms, network bytes, speedups) so the benchmark
// output doubles as a summary of the reproduction.
package mpq_test

import (
	"context"
	"runtime"
	"runtime/debug"
	"testing"

	"mpq"
	"mpq/internal/core"
	"mpq/internal/experiments"
	"mpq/internal/partition"
	"mpq/internal/sma"
	"mpq/internal/workload"
)

// benchCfg is the reduced-scale experiment configuration used by the
// benchmark harness.
func benchCfg() experiments.Config {
	cfg := experiments.Quick()
	cfg.Queries = 1
	return cfg
}

// BenchmarkFig1 regenerates Figure 1 (MPQ vs SMA, time + network,
// single objective).
func BenchmarkFig1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Fig1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last := panels[0].MPQ.Points[len(panels[0].MPQ.Points)-1]
		lastSMA := panels[0].SMA.Points[len(panels[0].SMA.Points)-1]
		b.ReportMetric(last.TimeMs, "mpq-ms")
		b.ReportMetric(lastSMA.TimeMs, "sma-ms")
		b.ReportMetric(lastSMA.Bytes/last.Bytes, "net-gap")
	}
}

// BenchmarkFig2 regenerates Figure 2 (MPQ scaling: time, W-time,
// memory, network).
func BenchmarkFig2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Fig2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		p := panels[0].Points
		b.ReportMetric(p[0].TimeMs/p[len(p)-1].TimeMs, "speedup")
		b.ReportMetric(p[len(p)-1].MemoryRelations, "memo-relations")
	}
}

// BenchmarkFig3 regenerates Figure 3 (join-graph structure impact).
func BenchmarkFig3(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Fig3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		_ = panels
	}
}

// BenchmarkFig4 regenerates Figure 4 (multi-objective MPQ vs SMA).
func BenchmarkFig4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Fig4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(panels[0].MedianFrontier, "frontier-plans")
	}
}

// BenchmarkFig5 regenerates Figure 5 (multi-objective MPQ scaling).
func BenchmarkFig5(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Fig5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		p := panels[0].Points
		b.ReportMetric(p[0].WTimeMs/p[len(p)-1].WTimeMs, "wtime-speedup")
	}
}

// BenchmarkTable1 regenerates Table 1 (minimal parallelism to reach
// precision α within a time budget).
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	cfg.Queries = 3 // a majority vote needs >1 query
	opts := experiments.DefaultTable1Options(false)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(cfg, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpeedups regenerates the §6.2 speedup numbers (virtual).
func BenchmarkSpeedups(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Speedups(cfg, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Virtual, "virtual-speedup")
	}
}

// --- Micro-benchmarks of the optimizer core ---

func benchQuery(b *testing.B, n int) *mpq.Query {
	b.Helper()
	return workload.MustGenerate(workload.NewParams(n, workload.Star), 0)
}

// BenchmarkSerialLinear16 is the classical serial optimizer on a
// 16-table query (the Figure 2 baseline workload at reduced size).
func BenchmarkSerialLinear16(b *testing.B) {
	q := benchQuery(b, 16)
	eng := mpq.NewSerialEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Optimize(context.Background(), q, mpq.JobSpec{Space: mpq.Linear}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMPQLinear16Workers8 is MPQ with 8 goroutine workers on the
// same query — real wall-clock parallel speedup on this machine.
func BenchmarkMPQLinear16Workers8(b *testing.B) {
	q := benchQuery(b, 16)
	spec := mpq.JobSpec{Space: mpq.Linear, Workers: 8}
	eng := mpq.NewInProcessEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Optimize(context.Background(), q, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialBushy12 is the serial bushy-space optimizer.
func BenchmarkSerialBushy12(b *testing.B) {
	q := benchQuery(b, 12)
	eng := mpq.NewSerialEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Optimize(context.Background(), q, mpq.JobSpec{Space: mpq.Bushy}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMPQBushy12Workers8 is bushy MPQ with 8 goroutine workers.
func BenchmarkMPQBushy12Workers8(b *testing.B) {
	q := benchQuery(b, 12)
	spec := mpq.JobSpec{Space: mpq.Bushy, Workers: 8}
	eng := mpq.NewInProcessEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Optimize(context.Background(), q, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkerPartitionLinear18of64 is one worker's share of a
// 64-way partitioned 18-table query — the per-node cost MPQ actually
// pays at high parallelism.
func BenchmarkWorkerPartitionLinear18of64(b *testing.B) {
	q := benchQuery(b, 18)
	spec := core.JobSpec{Space: partition.Linear, Workers: 64}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunWorker(q, spec, 17); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiObjectiveLinear12 is the multi-objective optimizer with
// the paper's default α=10.
func BenchmarkMultiObjectiveLinear12(b *testing.B) {
	q := benchQuery(b, 12)
	spec := mpq.JobSpec{Space: mpq.Linear, Workers: 8, Objective: mpq.MultiObjective, Alpha: 10}
	eng := mpq.NewInProcessEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Optimize(context.Background(), q, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCachedHitServing measures the plan cache's hit path: one
// warmed entry served over and over — canonical keying (wire encode +
// fingerprint), store lookup and the stamped shallow copy, with no
// dynamic program. This is the per-request cost a repeat-heavy serving
// workload pays instead of the full optimization.
func BenchmarkCachedHitServing(b *testing.B) {
	q := benchQuery(b, 12)
	eng := mpq.WithCache(mpq.NewInProcessEngine(), mpq.CacheConfig{})
	spec := mpq.JobSpec{Space: mpq.Linear, Workers: 4}
	ctx := context.Background()
	if _, err := eng.Optimize(ctx, q, spec); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans, err := eng.Optimize(ctx, q, spec)
		if err != nil {
			b.Fatal(err)
		}
		if ans.Cache == nil || !ans.Cache.Hit {
			b.Fatal("expected a cache hit")
		}
	}
}

// BenchmarkInProcessBatchPoolReuse measures the pooled engine's batch
// steady state: every iteration pushes a 4-query batch through one
// InProcessEngine, whose goroutine workers borrow recycled DP runtimes
// (arena slabs + memo capacity) from the worker pool. The two custom
// metrics contrast a genuinely cold first batch (the pool is flushed
// with two GCs before measuring) against the immediately following
// warm batch — the second batch allocating far fewer bytes than the
// first is the pool-reuse guarantee.
func BenchmarkInProcessBatchPoolReuse(b *testing.B) {
	q := benchQuery(b, 12)
	eng := mpq.NewInProcessEngine(mpq.WithParallelism(1))
	jobs := make([]mpq.Job, 4)
	for i := range jobs {
		jobs[i] = mpq.Job{Query: q, Spec: mpq.JobSpec{Space: mpq.Linear, Workers: 4}}
	}
	ctx := context.Background()
	batch := func() {
		if _, err := eng.OptimizeBatch(ctx, jobs); err != nil {
			b.Fatal(err)
		}
	}
	allocBytes := func(fn func()) uint64 {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		fn()
		runtime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc
	}
	// GC stays off for the whole benchmark (restored on exit even if a
	// batch fails) so a collection cannot evict the pool contents the
	// first batch grew; the per-batch heap is small enough that the
	// b.N loop stays bounded without collections.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()
	runtime.GC() // flush the worker pool (including its victim cache)
	first := allocBytes(batch)
	second := allocBytes(batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch()
	}
	// After ResetTimer, which deletes earlier user metrics.
	b.ReportMetric(float64(first), "first-batch-B")
	b.ReportMetric(float64(second), "second-batch-B")
}

// BenchmarkSMALinear10 is the fine-grained baseline on the simulated
// cluster (Figure 1's competitor).
func BenchmarkSMALinear10(b *testing.B) {
	q := benchQuery(b, 10)
	model := mpq.DefaultClusterModel()
	spec := core.JobSpec{Space: partition.Linear, Workers: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sma.Run(model, q, spec); err != nil {
			b.Fatal(err)
		}
	}
}
