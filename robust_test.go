package mpq_test

import (
	"context"
	"math"
	"testing"

	"mpq"
	"mpq/internal/cost"
)

// TestPlanFingerprintsPinned pins the exact plans the optimizer picks
// on fixed workloads. The robust-planning machinery threads extra state
// (high-endpoint cardinalities, a second objective) through the DP; the
// pins prove the zero-noise, single-objective path still produces
// bit-identical plans — the guarantee that adding robustness changed
// nothing for everyone not using it.
func TestPlanFingerprintsPinned(t *testing.T) {
	cases := []struct {
		n       int
		shape   mpq.Shape
		seed    int64
		workers int
		want    string
	}{
		{8, mpq.Star, 1, 1, "ac75bc0f2235341e20d6df08fe04c6562e0c8c6191c5d21fd9fa4dcb824f3ed7"},
		{8, mpq.Star, 1, 4, "ac75bc0f2235341e20d6df08fe04c6562e0c8c6191c5d21fd9fa4dcb824f3ed7"},
		{9, mpq.Chain, 3, 4, "3d08d8acda1902d6618147b8373b4527282b7796904407a6bf0d2dbf57c66e8b"},
		{7, mpq.Snowflake, 5, 2, "9e7f17805cf6e7911871d93c0de0ae127ddb03f1d4618243fef57f01b307724c"},
	}
	eng := mpq.NewSerialEngine()
	ctx := context.Background()
	for _, c := range cases {
		_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(c.n, c.shape), c.seed)
		if err != nil {
			t.Fatal(err)
		}
		// Zero-magnitude noise must be a no-op on this path too.
		q2, err := mpq.PerturbQuery(q, 0, 42)
		if err != nil {
			t.Fatal(err)
		}
		if q2 != q {
			t.Fatal("PerturbQuery with magnitude 0 copied the query")
		}
		ans, err := eng.Optimize(ctx, q2, mpq.JobSpec{Space: mpq.Linear, Workers: c.workers})
		if err != nil {
			t.Fatal(err)
		}
		if got := mpq.PlanFingerprint(ans.Best); got != c.want {
			t.Errorf("%v n=%d seed=%d w=%d: fingerprint %s, want %s",
				c.shape, c.n, c.seed, c.workers, got, c.want)
		}
	}
}

// TestRobustWorstCaseGuarantee: the one promise robust mode makes is
// that no plan — in particular not the point-optimal one — has a lower
// worst-case cost over the uncertainty band. Check it by re-costing
// both chosen plans under the band's high endpoint, and check the
// robust plan's Buffer annotation is exactly that worst-case cost.
func TestRobustWorstCaseGuarantee(t *testing.T) {
	m := mpq.DefaultCostModel()
	ctx := context.Background()
	eng := mpq.NewSerialEngine()
	for _, c := range []struct {
		n     int
		shape mpq.Shape
		seed  int64
		band  float64
	}{
		{8, mpq.Star, 1, 2},
		{9, mpq.Chain, 3, 3},
		{7, mpq.Snowflake, 5, 1.5},
		{8, mpq.Cycle, 7, 2},
	} {
		_, truth, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(c.n, c.shape), c.seed)
		if err != nil {
			t.Fatal(err)
		}
		noisy, err := mpq.PerturbQuery(truth, c.band-1, c.seed+100)
		if err != nil {
			t.Fatal(err)
		}
		point, err := eng.Optimize(ctx, noisy, mpq.JobSpec{Space: mpq.Linear, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		robust, err := eng.Optimize(ctx, noisy, mpq.JobSpec{
			Space: mpq.Linear, Workers: 2,
			Objective: mpq.RobustObjective, RobustBand: c.band,
		})
		if err != nil {
			t.Fatal(err)
		}
		hi, err := mpq.InflateQuery(noisy, c.band)
		if err != nil {
			t.Fatal(err)
		}
		pointWC, err := mpq.ReannotatePlan(point.Best, hi, m)
		if err != nil {
			t.Fatal(err)
		}
		robustWC, err := mpq.ReannotatePlan(robust.Best, hi, m)
		if err != nil {
			t.Fatal(err)
		}
		// The DP accumulates the worst-case cost per plan set while
		// Reannotate recomputes it per tree, so the two differ by float
		// association only.
		if d := math.Abs(robust.Best.Buffer - robustWC.Cost); d > 1e-6*robustWC.Cost {
			t.Errorf("%v: Buffer annotation %g != re-costed worst case %g",
				c.shape, robust.Best.Buffer, robustWC.Cost)
		}
		if robust.Best.Buffer > pointWC.Cost*(1+1e-9) {
			t.Errorf("%v band %g: robust worst case %g exceeds point plan's %g",
				c.shape, c.band, robust.Best.Buffer, pointWC.Cost)
		}
		// Every frontier plan must be annotated nominal-vs-worst-case.
		for i, p := range robust.Frontier {
			if !(p.Buffer >= p.Cost) {
				t.Errorf("%v frontier[%d]: worst case %g below nominal %g", c.shape, i, p.Buffer, p.Cost)
			}
		}
	}
}

// TestRobustEngineEquivalence: robust jobs must come back bit-identical
// from every partitioned engine, and the serial baseline must agree on
// the best worst-case cost.
func TestRobustEngineEquivalence(t *testing.T) {
	tcp, _ := startTCPEngine(t, 2)
	engines := []struct {
		name string
		eng  mpq.Engine
	}{
		{"inprocess", mpq.NewInProcessEngine()},
		{"sim", mpq.NewSimEngine()},
		{"tcp", tcp},
	}
	_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(8, mpq.Star), 1)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := mpq.PerturbQuery(q, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	spec := mpq.JobSpec{
		Space: mpq.Linear, Workers: 4,
		Objective: mpq.RobustObjective, RobustBand: 2,
	}
	ctx := context.Background()
	var wantBest string
	var wantFrontier []string
	var wantWC float64
	for _, e := range engines {
		ans, err := e.eng.Optimize(ctx, noisy, spec)
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		bestFP := mpq.PlanFingerprint(ans.Best)
		var frontFP []string
		for _, p := range ans.Frontier {
			frontFP = append(frontFP, mpq.PlanFingerprint(p))
		}
		if wantBest == "" {
			wantBest, wantFrontier, wantWC = bestFP, frontFP, ans.Best.Buffer
			continue
		}
		if bestFP != wantBest {
			t.Fatalf("%s best plan differs: %s", e.name, ans.Best)
		}
		if len(frontFP) != len(wantFrontier) {
			t.Fatalf("%s frontier size %d != %d", e.name, len(frontFP), len(wantFrontier))
		}
		for i := range frontFP {
			if frontFP[i] != wantFrontier[i] {
				t.Fatalf("%s frontier plan %d differs", e.name, i)
			}
		}
	}
	serial, err := mpq.NewSerialEngine().Optimize(ctx, noisy, spec)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(serial.Best.Buffer - wantWC); d > 1e-9*wantWC {
		t.Fatalf("serial worst-case cost %g != partitioned %g", serial.Best.Buffer, wantWC)
	}
}

// TestRobustSpecValidation: bad robust parameters are rejected before
// any work happens.
func TestRobustSpecValidation(t *testing.T) {
	_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(6, mpq.Star), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	eng := mpq.NewSerialEngine()
	if _, err := eng.Optimize(ctx, q, mpq.JobSpec{
		Space: mpq.Linear, Workers: 1,
		Objective: mpq.RobustObjective, RobustBand: 0.5,
	}); err == nil {
		t.Fatal("robust band below 1 accepted")
	}
	bad := mpq.JobSpec{Space: mpq.Linear, Workers: 1, Objective: mpq.RobustObjective}
	bad.CostModel = mpq.DefaultCostModel()
	bad.CostModel.Second = cost.ParametricCost
	if _, err := eng.Optimize(ctx, q, bad); err == nil {
		t.Fatal("robust job with an explicit second metric accepted")
	}
	// Only robust jobs read the band: setting it on a single-objective
	// job must not change the chosen plan.
	a, err := eng.Optimize(ctx, q, mpq.JobSpec{Space: mpq.Linear, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Optimize(ctx, q, mpq.JobSpec{Space: mpq.Linear, Workers: 1, RobustBand: 4})
	if err != nil {
		t.Fatal(err)
	}
	if mpq.PlanFingerprint(a.Best) != mpq.PlanFingerprint(b.Best) {
		t.Fatal("RobustBand changed a single-objective plan")
	}
}
