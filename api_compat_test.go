//lint:file-ignore SA1019 this file deliberately pins the deprecated legacy surface.

package mpq_test

import (
	"context"
	"time"

	"mpq"
)

// This file is the apidiff-style compatibility guard: it pins the
// legacy free-function surface (now thin Deprecated wrappers over the
// Engine API) at exact signatures. If a symbol is removed or its
// signature changes, the package no longer compiles and CI fails —
// before any caller outside this repository finds out.
var (
	// Construction and model types.
	_ func([]mpq.QueryTable) (*mpq.Query, error) = mpq.NewQuery
	_ func([]mpq.QueryTable) *mpq.Query          = mpq.MustNewQuery
	_ func() mpq.CostModel                       = mpq.DefaultCostModel
	_ func(mpq.Space, int) int                   = mpq.MaxWorkers

	// Legacy optimization entry points (Deprecated wrappers).
	_ func(*mpq.Query, mpq.JobSpec) (*mpq.Answer, error)      = mpq.Optimize
	_ func(*mpq.Query, mpq.JobSpec, int) (*mpq.Answer, error) = mpq.OptimizeParallelism
	_ func(*mpq.Query, mpq.Space, bool) (*mpq.Plan, error)    = mpq.OptimizeSerial

	// Legacy simulation entry points (Deprecated wrappers).
	_ func() mpq.ClusterModel                                                                        = mpq.DefaultClusterModel
	_ func(mpq.ClusterModel, *mpq.Query, mpq.JobSpec) (*mpq.ClusterResult, error)                    = mpq.SimulateMPQ
	_ func(mpq.ClusterModel, *mpq.Query, mpq.JobSpec, mpq.ClusterFaults) (*mpq.ClusterResult, error) = mpq.SimulateMPQWithFaults

	// Legacy distributed entry points (Deprecated wrappers).
	_ func(string) (*mpq.TCPWorker, error)                      = mpq.ListenWorker
	_ func([]string, time.Duration) (*mpq.TCPMaster, error)     = mpq.NewMaster
	_ func([]string, mpq.MasterOptions) (*mpq.TCPMaster, error) = mpq.NewMasterWithOptions

	// Workloads, serialization, execution — stable surface.
	_ func(mpq.WorkloadParams, int64) (*mpq.Catalog, *mpq.Query, error) = mpq.GenerateWorkload
	_ func(int, mpq.Shape) mpq.WorkloadParams                           = mpq.NewWorkloadParams
	_ func() *mpq.Schema                                                = mpq.TPCHSchema
	_ func() *mpq.Schema                                                = mpq.TPCDSSchema
	_ func(*mpq.Schema, float64) (*mpq.Catalog, *mpq.Query, error)      = mpq.SchemaWorkload
	_ func(*mpq.Query) []byte                                           = mpq.EncodeQuery
	_ func([]byte) (*mpq.Query, error)                                  = mpq.DecodeQuery
	_ func(*mpq.Plan) []byte                                            = mpq.EncodePlan
	_ func([]byte) (*mpq.Plan, error)                                   = mpq.DecodePlan
	_ func([]*mpq.Plan) []*mpq.Plan                                     = mpq.ExactFrontier
	_ func(*mpq.Plan, *mpq.Query, mpq.CostModel) error                  = mpq.ValidatePlan

	// Parametric query optimization — stable surface.
	_ func(*mpq.Query, mpq.Space, int, float64) ([]*mpq.Plan, error) = mpq.OptimizeParametric
	_ func(*mpq.Plan, float64) float64                               = mpq.ParametricCostAt
	_ func([]*mpq.Plan, float64) (*mpq.Plan, error)                  = mpq.ParametricBest
	_ func([]*mpq.Plan) ([]float64, error)                           = mpq.ParametricBreakpoints

	// The new unified Engine surface, pinned from day one.
	_ func(...mpq.EngineOption) *mpq.SerialEngine                 = mpq.NewSerialEngine
	_ func(...mpq.EngineOption) *mpq.InProcessEngine              = mpq.NewInProcessEngine
	_ func(...mpq.EngineOption) *mpq.SimEngine                    = mpq.NewSimEngine
	_ func([]string, ...mpq.EngineOption) (*mpq.TCPEngine, error) = mpq.NewTCPEngine
	_ func(int) mpq.EngineOption                                  = mpq.WithParallelism
	_ func(mpq.ClusterModel) mpq.EngineOption                     = mpq.WithClusterModel
	_ func(mpq.ClusterFaults) mpq.EngineOption                    = mpq.WithClusterFaults
	_ func(mpq.MasterOptions) mpq.EngineOption                    = mpq.WithMasterOptions
	_ func(mpq.CostModel) mpq.EngineOption                        = mpq.WithCostModel
)

// The Engine interface shape itself is part of the contract.
var _ interface {
	Optimize(context.Context, *mpq.Query, mpq.JobSpec) (*mpq.Answer, error)
	OptimizeBatch(context.Context, []mpq.Job) ([]*mpq.Answer, error)
} = mpq.Engine(nil)
