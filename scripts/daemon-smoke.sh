#!/bin/sh
# daemon-smoke.sh — end-to-end smoke test of the mpqd resident daemon.
#
# Starts mpqd with both front ends on loopback ports, waits for
# /healthz, submits the same query once over HTTP/JSON and once over
# the wire protocol (via mpqopt -engine daemon), and requires the two
# answers to carry the same plan fingerprint — the serving-path
# equivalence the daemon promises. Then SIGTERMs the daemon and
# requires a clean drain (exit 0 and the "drained cleanly" line).
#
# Run from the repository root:  sh scripts/daemon-smoke.sh
set -eu

HTTP_PORT="${HTTP_PORT:-18080}"
WIRE_PORT="${WIRE_PORT:-19990}"
WORK="$(mktemp -d)"
MPQD_PID=""

cleanup() {
    if [ -n "$MPQD_PID" ] && kill -0 "$MPQD_PID" 2>/dev/null; then
        kill -KILL "$MPQD_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "==> building mpqd, mpqopt, mpqgen"
go build -o "$WORK/mpqd" ./cmd/mpqd
go build -o "$WORK/mpqopt" ./cmd/mpqopt
go build -o "$WORK/mpqgen" ./cmd/mpqgen

echo "==> generating a deterministic 6-table query"
"$WORK/mpqgen" -tables 6 -shape Star -seed 7 -out "$WORK/q.json"

echo "==> starting mpqd (http :$HTTP_PORT, wire :$WIRE_PORT)"
"$WORK/mpqd" -http "127.0.0.1:$HTTP_PORT" -wire "127.0.0.1:$WIRE_PORT" \
    -engine serial -cache-bytes 1048576 \
    -plan-log "$WORK/plans.log" >"$WORK/mpqd.out" 2>&1 &
MPQD_PID=$!

echo "==> waiting for /healthz"
i=0
until curl -fsS "http://127.0.0.1:$HTTP_PORT/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "mpqd never became healthy; daemon output:" >&2
        cat "$WORK/mpqd.out" >&2
        exit 1
    fi
    if ! kill -0 "$MPQD_PID" 2>/dev/null; then
        echo "mpqd exited prematurely; daemon output:" >&2
        cat "$WORK/mpqd.out" >&2
        exit 1
    fi
    sleep 0.1
done

echo "==> submitting over HTTP/JSON"
curl -fsS -d "{\"query\": $(cat "$WORK/q.json"), \"workers\": 2}" \
    "http://127.0.0.1:$HTTP_PORT/v1/optimize" >"$WORK/http.json"
http_fp=$(grep -o '"fingerprint":"[0-9a-f]*"' "$WORK/http.json" | cut -d'"' -f4)
if [ -z "$http_fp" ]; then
    echo "no fingerprint in the HTTP answer:" >&2
    cat "$WORK/http.json" >&2
    exit 1
fi
echo "    http fingerprint: $http_fp"

echo "==> submitting over the wire protocol"
"$WORK/mpqopt" -engine daemon -daemon-addr "127.0.0.1:$WIRE_PORT" \
    -query "$WORK/q.json" -workers 2 -fingerprint >"$WORK/wire.out"
wire_fp=$(grep '^fingerprint: ' "$WORK/wire.out" | cut -d' ' -f2)
if [ -z "$wire_fp" ]; then
    echo "no fingerprint in the wire answer:" >&2
    cat "$WORK/wire.out" >&2
    exit 1
fi
echo "    wire fingerprint: $wire_fp"

if [ "$http_fp" != "$wire_fp" ]; then
    echo "FAIL: HTTP and wire fingerprints differ ($http_fp vs $wire_fp)" >&2
    exit 1
fi

echo "==> checking /metrics counted both requests"
curl -fsS "http://127.0.0.1:$HTTP_PORT/metrics" >"$WORK/metrics.out"
for needle in 'source="http"' 'source="wire"'; do
    if ! grep -q "$needle" "$WORK/metrics.out"; then
        echo "FAIL: /metrics is missing a series for $needle" >&2
        cat "$WORK/metrics.out" >&2
        exit 1
    fi
done

echo "==> SIGTERM, expecting a clean drain"
kill -TERM "$MPQD_PID"
status=0
wait "$MPQD_PID" || status=$?
MPQD_PID=""
if [ "$status" -ne 0 ]; then
    echo "FAIL: mpqd exited with status $status; output:" >&2
    cat "$WORK/mpqd.out" >&2
    exit 1
fi
if ! grep -q "drained cleanly" "$WORK/mpqd.out"; then
    echo "FAIL: no 'drained cleanly' line; output:" >&2
    cat "$WORK/mpqd.out" >&2
    exit 1
fi
if ! grep -q '"fingerprint"' "$WORK/plans.log"; then
    echo "FAIL: plan log has no decision records" >&2
    exit 1
fi

echo "PASS: fingerprints identical across fronts, drain clean, plan log written"
