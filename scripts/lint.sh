#!/bin/sh
# Unified static-analysis entry point: the one invocation every Go file
# in the module — root library, cmd/, examples/, internal/ — must pass.
# CI's verify job runs exactly this script, so a clean local run means
# the lint gates are green.
#
#   sh scripts/lint.sh
#
# Set MPQLINT_FACTS to a directory to reuse mpqlint's per-package
# findings cache across runs (CI does; see .github/workflows/ci.yml).
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
out="$(gofmt -l .)"
if [ -n "$out" ]; then
	echo "gofmt needed on:" >&2
	echo "$out" >&2
	exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> mpqlint ./..."
go run ./cmd/mpqlint ./...
