package mpq_test

import (
	"context"
	"sync"
	"testing"

	"mpq"
)

// TestCachedEngineConcurrentConsistency hammers one CachedEngine from
// many goroutines mixing Optimize and OptimizeBatch over a small query
// pool, and checks the invariants the serving path depends on (run
// under -race, this is also the data-race canary for the cache):
//
//   - every answer carries a Cache stamp, and Hit/Collapsed are
//     mutually exclusive;
//   - within one goroutine's call sequence the stamped cumulative
//     counters never decrease (they are snapshots of monotonic
//     counters taken at serve time);
//   - totals observed by a concurrent CacheTotals poller never
//     decrease either;
//   - all answers for the same query are fingerprint-identical;
//   - at the end, Hits+Misses+Collapses equals exactly the number of
//     answers served — every served answer is classified once.
func TestCachedEngineConcurrentConsistency(t *testing.T) {
	inner := mpq.NewSerialEngine()
	cached := mpq.WithCache(inner, mpq.CacheConfig{})
	spec := mpq.JobSpec{Space: mpq.Linear, Workers: 1}

	const poolSize = 4
	queries := make([]*mpq.Query, poolSize)
	for i := range queries {
		_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(5, mpq.Star), int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = q
	}

	var (
		mu           sync.Mutex
		fingerprints = map[int]string{} // query index → expected fingerprint
		served       uint64
	)
	checkAnswer := func(qi int, ans *mpq.Answer) {
		if ans == nil || ans.Best == nil {
			t.Error("nil answer from cached engine")
			return
		}
		if ans.Cache == nil {
			t.Error("answer missing Cache stamp")
			return
		}
		if ans.Cache.Hit && ans.Cache.Collapsed {
			t.Errorf("answer stamped both hit and collapsed: %+v", ans.Cache)
		}
		fp := mpq.PlanFingerprint(ans.Best)
		mu.Lock()
		defer mu.Unlock()
		served++
		if want, ok := fingerprints[qi]; !ok {
			fingerprints[qi] = fp
		} else if fp != want {
			t.Errorf("query %d: fingerprint %s differs from first answer's %s", qi, fp, want)
		}
	}
	// monotonic asserts a goroutine-local sequence of stamps never goes
	// backwards; prev is owned by a single goroutine.
	monotonic := func(prev, cur *mpq.Answer) {
		if prev == nil || prev.Cache == nil || cur.Cache == nil {
			return
		}
		p, c := prev.Cache, cur.Cache
		if c.Hits < p.Hits || c.Misses < p.Misses || c.Collapses < p.Collapses || c.Evictions < p.Evictions {
			t.Errorf("cache stamp went backwards: %+v then %+v", p, c)
		}
	}

	stampTotal := func(a *mpq.Answer) uint64 {
		if a == nil || a.Cache == nil {
			return 0
		}
		return a.Cache.Hits + a.Cache.Misses + a.Cache.Collapses
	}

	ctx := context.Background()
	const goroutines = 8
	const iters = 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var prev *mpq.Answer
			for i := 0; i < iters; i++ {
				if g%2 == 0 {
					qi := (g + i) % poolSize
					ans, err := cached.Optimize(ctx, queries[qi], spec)
					if err != nil {
						t.Errorf("Optimize: %v", err)
						return
					}
					checkAnswer(qi, ans)
					monotonic(prev, ans)
					prev = ans
				} else {
					// A batch with an in-batch duplicate, so the
					// duplicate-collapse path runs concurrently with
					// singleflight and plain hits.
					qis := []int{i % poolSize, (i + 1) % poolSize, i % poolSize}
					jobs := make([]mpq.Job, len(qis))
					for j, qi := range qis {
						jobs[j] = mpq.Job{Query: queries[qi], Spec: spec}
					}
					answers, err := cached.OptimizeBatch(ctx, jobs)
					if err != nil {
						t.Errorf("OptimizeBatch: %v", err)
						return
					}
					// A batch's stamps are not taken in input order
					// (hits are stamped at batch entry, misses and
					// duplicates after the compute), so compare each
					// against the pre-batch stamp, then advance to the
					// batch's latest stamp — counters move together, so
					// the largest classification total marks it.
					latest := prev
					for j, ans := range answers {
						checkAnswer(qis[j], ans)
						monotonic(prev, ans)
						if latest == nil || stampTotal(ans) > stampTotal(latest) {
							latest = ans
						}
					}
					prev = latest
				}
			}
		}(g)
	}

	// Concurrent totals poller: cache-wide counters must be monotonic
	// under load, and occupancy must stay sane.
	pollDone := make(chan struct{})
	pollStopped := make(chan struct{})
	go func() {
		defer close(pollStopped)
		var prev mpq.CacheTotals
		for {
			cur := cached.CacheTotals()
			if cur.Hits < prev.Hits || cur.Misses < prev.Misses ||
				cur.Collapses < prev.Collapses || cur.Evictions < prev.Evictions {
				t.Errorf("CacheTotals went backwards: %+v then %+v", prev, cur)
				return
			}
			if cur.Entries < 0 || cur.Bytes < 0 || cur.Entries > poolSize {
				t.Errorf("implausible occupancy: %+v", cur)
				return
			}
			prev = cur
			select {
			case <-pollDone:
				return
			default:
			}
		}
	}()

	wg.Wait()
	close(pollDone)
	<-pollStopped

	tt := cached.CacheTotals()
	if got := tt.Hits + tt.Misses + tt.Collapses; got != served {
		t.Errorf("hits %d + misses %d + collapses %d = %d, want %d (answers served)",
			tt.Hits, tt.Misses, tt.Collapses, got, served)
	}
	if tt.Misses < uint64(poolSize) {
		t.Errorf("misses %d < %d distinct queries", tt.Misses, poolSize)
	}
	if tt.Entries != poolSize {
		t.Errorf("entries = %d, want %d (no eviction budget set)", tt.Entries, poolSize)
	}
}
