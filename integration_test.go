//lint:file-ignore SA1019 this file is the behavioral coverage of the deprecated legacy wrappers; api_compat_test.go only pins that they compile.

package mpq_test

import (
	"math"
	"testing"
	"time"

	"mpq"
	"mpq/internal/core"
	"mpq/internal/partition"
	"mpq/internal/sma"
)

// TestAllEnginesAgree is the repository's capstone integration test: the
// goroutine engine, the cluster simulator, the SMA baseline, the TCP
// runtime, and the serial dynamic program must all find a plan with the
// same cost for the same query — across plan spaces, objectives and
// worker counts — and the chosen plans must execute to the same result
// on the reference executor.
func TestAllEnginesAgree(t *testing.T) {
	params := mpq.NewWorkloadParams(6, mpq.Star)
	params.MinCard, params.MaxCard = 20, 150
	params.MinDomain, params.MaxDomain = 4, 40
	cat, q, err := mpq.GenerateWorkload(params, 123)
	if err != nil {
		t.Fatal(err)
	}
	db, err := mpq.GenerateData(cat, 7, mpq.ExecLimits{})
	if err != nil {
		t.Fatal(err)
	}

	w, err := mpq.ListenWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	master, err := mpq.NewMaster([]string{w.Addr()}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	for _, space := range []mpq.Space{mpq.Linear, mpq.Bushy} {
		workers := 4
		spec := mpq.JobSpec{Space: space, Workers: workers}

		serial, err := mpq.OptimizeSerial(q, space, false)
		if err != nil {
			t.Fatal(err)
		}
		local, err := mpq.Optimize(q, spec)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := mpq.SimulateMPQ(mpq.DefaultClusterModel(), q, spec)
		if err != nil {
			t.Fatal(err)
		}
		smaRes, err := sma.Run(mpq.DefaultClusterModel(), q, core.JobSpec{Space: partition.Space(space), Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		dist, err := master.Optimize(q, spec)
		if err != nil {
			t.Fatal(err)
		}

		costs := map[string]float64{
			"serial":      serial.Cost,
			"goroutines":  local.Best.Cost,
			"cluster-sim": sim.Best.Cost,
			"sma":         smaRes.Best.Cost,
			"tcp":         dist.Best.Cost,
		}
		for name, c := range costs {
			if math.Abs(c-serial.Cost) > 1e-9*serial.Cost {
				t.Fatalf("%v %s cost %g != serial %g", space, name, c, serial.Cost)
			}
		}

		// All plans compute the same result when actually executed.
		want := ""
		for name, p := range map[string]*mpq.Plan{
			"serial": serial, "goroutines": local.Best, "tcp": dist.Best, "sma": smaRes.Best,
		} {
			res, err := mpq.ExecutePlan(p, q, db, mpq.ExecLimits{})
			if err != nil {
				t.Fatalf("%v %s: execute: %v", space, name, err)
			}
			if want == "" {
				want = res.Fingerprint()
			} else if res.Fingerprint() != want {
				t.Fatalf("%v %s executed to a different result", space, name)
			}
		}
	}
}

// TestMultiObjectiveEnginesAgree extends the capstone to Pareto mode.
func TestMultiObjectiveEnginesAgree(t *testing.T) {
	_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(7, mpq.Chain), 9)
	if err != nil {
		t.Fatal(err)
	}
	spec := mpq.JobSpec{
		Space: mpq.Linear, Workers: 4,
		Objective: mpq.MultiObjective, Alpha: 1,
	}
	local, err := mpq.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := mpq.SimulateMPQ(mpq.DefaultClusterModel(), q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(local.Frontier) != len(sim.Frontier) {
		t.Fatalf("frontier sizes differ: %d vs %d", len(local.Frontier), len(sim.Frontier))
	}
	for i := range local.Frontier {
		a, b := local.Frontier[i], sim.Frontier[i]
		if math.Abs(a.Cost-b.Cost) > 1e-9*a.Cost || math.Abs(a.Buffer-b.Buffer) > 1e-9*a.Buffer {
			t.Fatalf("frontier[%d] differs between engines", i)
		}
	}
}

// TestParametricThroughPublicAPI closes the loop on the PQO extension.
func TestParametricThroughPublicAPI(t *testing.T) {
	_, q, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(8, mpq.Star), 31)
	if err != nil {
		t.Fatal(err)
	}
	frontier, err := mpq.OptimizeParametric(q, mpq.Linear, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	bps, err := mpq.ParametricBreakpoints(frontier)
	if err != nil {
		t.Fatal(err)
	}
	if bps[0] != 0 || bps[len(bps)-1] != 1 {
		t.Fatalf("breakpoints %v must span [0,1]", bps)
	}
	// The envelope is non-decreasing in θ (hash joins only get pricier).
	prev := -1.0
	for theta := 0.0; theta <= 1.0; theta += 0.125 {
		best, err := mpq.ParametricBest(frontier, theta)
		if err != nil {
			t.Fatal(err)
		}
		c := mpq.ParametricCostAt(best, theta)
		if c < prev {
			t.Fatalf("envelope decreased at θ=%g", theta)
		}
		prev = c
	}
}
