package mpq_test

import (
	"context"
	"testing"
	"time"

	"mpq"
)

// TestCachedEngineBitIdenticalAcrossEngines is the cache acceptance
// criterion's identity half: for every engine — serial, in-process,
// simulated, TCP — and every workload family (including the
// multi-objective frontier), the cache-miss answer and the cache-hit
// answer are bit-identical (wire plan fingerprint) to the uncached
// engine's answer, and the hit is stamped as one.
func TestCachedEngineBitIdenticalAcrossEngines(t *testing.T) {
	tcp, _ := startTCPEngine(t, 2)
	engines := []struct {
		name string
		eng  mpq.Engine
	}{
		{"serial", mpq.NewSerialEngine()},
		{"inprocess", mpq.NewInProcessEngine()},
		{"sim", mpq.NewSimEngine()},
		{"tcp", tcp},
	}
	ctx := context.Background()
	rows := engineWorkloads(t)
	if testing.Short() {
		rows = rows[:3]
	}
	for _, e := range engines {
		cached := mpq.WithCache(e.eng, mpq.CacheConfig{})
		for _, row := range rows {
			t.Run(e.name+"/"+row.name, func(t *testing.T) {
				want, err := e.eng.Optimize(ctx, row.q, row.spec)
				if err != nil {
					t.Fatal(err)
				}
				miss, err := cached.Optimize(ctx, row.q, row.spec)
				if err != nil {
					t.Fatal(err)
				}
				hit, err := cached.Optimize(ctx, row.q, row.spec)
				if err != nil {
					t.Fatal(err)
				}
				if miss.Cache == nil || miss.Cache.Hit {
					t.Fatalf("first cached answer not stamped as a miss: %+v", miss.Cache)
				}
				if hit.Cache == nil || !hit.Cache.Hit {
					t.Fatalf("second cached answer not stamped as a hit: %+v", hit.Cache)
				}
				wantFP := mpq.PlanFingerprint(want.Best)
				if mpq.PlanFingerprint(miss.Best) != wantFP {
					t.Fatal("cache-miss plan differs from the uncached engine's")
				}
				if mpq.PlanFingerprint(hit.Best) != wantFP {
					t.Fatal("cache-hit plan differs from the uncached engine's")
				}
				if len(hit.Frontier) != len(want.Frontier) {
					t.Fatalf("hit frontier size %d != uncached %d", len(hit.Frontier), len(want.Frontier))
				}
				for i := range hit.Frontier {
					if mpq.PlanFingerprint(hit.Frontier[i]) != mpq.PlanFingerprint(want.Frontier[i]) {
						t.Fatalf("hit frontier plan %d differs from the uncached engine's", i)
					}
				}
			})
		}
		if tt := cached.CacheTotals(); tt.Hits != uint64(len(rows)) || tt.Misses != uint64(len(rows)) {
			t.Fatalf("%s: totals = %+v, want %d hits and %d misses", e.name, tt, len(rows), len(rows))
		}
	}
}

// TestCachedEngineBatchDedupe: a batch with repeated jobs runs each
// distinct job once; duplicates are collapse-stamped and bit-identical,
// later batches hit the store.
func TestCachedEngineBatchDedupe(t *testing.T) {
	_, qa, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(7, mpq.Star), 101)
	if err != nil {
		t.Fatal(err)
	}
	_, qb, err := mpq.GenerateWorkload(mpq.NewWorkloadParams(7, mpq.Chain), 102)
	if err != nil {
		t.Fatal(err)
	}
	spec := mpq.JobSpec{Space: mpq.Linear, Workers: 4}
	jobs := []mpq.Job{
		{Query: qa, Spec: spec},
		{Query: qb, Spec: spec},
		{Query: qa, Spec: spec},
		{Query: qa, Spec: spec},
		{Query: qb, Spec: spec},
	}
	eng := mpq.WithCache(mpq.NewInProcessEngine(), mpq.CacheConfig{})
	ctx := context.Background()

	batch, err := eng.OptimizeBatch(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(jobs) {
		t.Fatalf("got %d answers for %d jobs", len(batch), len(jobs))
	}
	for i, ans := range batch {
		if ans == nil || ans.Cache == nil {
			t.Fatalf("job %d: no cache stamp", i)
		}
	}
	// Input order is preserved and duplicates are bit-identical.
	if mpq.PlanFingerprint(batch[0].Best) != mpq.PlanFingerprint(batch[2].Best) ||
		mpq.PlanFingerprint(batch[0].Best) != mpq.PlanFingerprint(batch[3].Best) {
		t.Fatal("duplicate jobs got different plans")
	}
	if mpq.PlanFingerprint(batch[1].Best) != mpq.PlanFingerprint(batch[4].Best) {
		t.Fatal("duplicate jobs got different plans")
	}
	if mpq.PlanFingerprint(batch[0].Best) == mpq.PlanFingerprint(batch[1].Best) {
		t.Fatal("distinct jobs got the same plan")
	}
	for _, i := range []int{2, 3, 4} {
		if !batch[i].Cache.Collapsed || batch[i].Cache.Hit {
			t.Fatalf("duplicate %d not collapse-stamped: %+v", i, batch[i].Cache)
		}
	}
	tt := eng.CacheTotals()
	if tt.Misses != 2 || tt.Collapses != 3 || tt.Hits != 0 {
		t.Fatalf("totals after first batch = %+v, want 2 misses and 3 collapses", tt)
	}

	// The second identical batch is all hits.
	again, err := eng.OptimizeBatch(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if !again[i].Cache.Hit {
			t.Fatalf("second-batch job %d missed: %+v", i, again[i].Cache)
		}
		if mpq.PlanFingerprint(again[i].Best) != mpq.PlanFingerprint(batch[i].Best) {
			t.Fatalf("second-batch job %d differs from first", i)
		}
	}
	if tt := eng.CacheTotals(); tt.Hits != uint64(len(jobs)) {
		t.Fatalf("totals after second batch = %+v", tt)
	}
}

// TestCachedEngineZipfThroughput is the cache acceptance criterion's
// performance half: serving a Zipf(s=1.1) repeat stream over 64
// distinct queries, the cached in-process engine sustains at least 10×
// the uncached engine's optimizations/sec, with every cached answer
// bit-identical to the uncached one. The ratio is dominated by the
// miss count (at most 64 dynamic programs for 1536 arrivals), so it is
// robust to machine speed.
func TestCachedEngineZipfThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement; run without -short")
	}
	stream, err := mpq.GenerateWorkloadStream(mpq.StreamParams{
		Query:    mpq.NewWorkloadParams(10, mpq.Star),
		Distinct: 64,
		Length:   1536,
		Skew:     1.1,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	spec := mpq.JobSpec{Space: mpq.Linear, Workers: 4}
	ctx := context.Background()

	inner := mpq.NewInProcessEngine()
	wantFP := make([]string, len(stream.Queries))
	uncachedStart := time.Now()
	arrivals := 0
	for i := range stream.Order {
		ans, err := inner.Optimize(ctx, stream.At(i), spec)
		if err != nil {
			t.Fatal(err)
		}
		arrivals++
		wantFP[stream.Order[i]] = mpq.PlanFingerprint(ans.Best)
		if ans.Cache != nil {
			t.Fatal("uncached engine stamped a cache record")
		}
	}
	uncached := time.Since(uncachedStart)

	eng := mpq.WithCache(inner, mpq.CacheConfig{})
	cachedStart := time.Now()
	for i := range stream.Order {
		ans, err := eng.Optimize(ctx, stream.At(i), spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := mpq.PlanFingerprint(ans.Best); got != wantFP[stream.Order[i]] {
			t.Fatalf("arrival %d: cached plan differs from uncached plan", i)
		}
	}
	cached := time.Since(cachedStart)

	tt := eng.CacheTotals()
	if tt.Misses > 64 {
		t.Fatalf("%d misses for 64 distinct queries", tt.Misses)
	}
	if tt.Hits+tt.Misses != uint64(arrivals) {
		t.Fatalf("totals %+v don't add up to %d arrivals", tt, arrivals)
	}
	speedup := uncached.Seconds() / cached.Seconds()
	t.Logf("uncached %v, cached %v, speedup %.1fx, hit rate %.3f",
		uncached, cached, speedup, float64(tt.Hits)/float64(arrivals))
	if speedup < 10 {
		t.Fatalf("cached serving speedup %.1fx < 10x", speedup)
	}
}

// TestCachedEngineBudgetedEviction: a budget smaller than the working
// set forces evictions but never wrong answers.
func TestCachedEngineBudgetedEviction(t *testing.T) {
	stream, err := mpq.GenerateWorkloadStream(mpq.StreamParams{
		Query:    mpq.NewWorkloadParams(7, mpq.Star),
		Distinct: 16,
		Length:   128,
		Skew:     1.2,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	spec := mpq.JobSpec{Space: mpq.Linear, Workers: 2}
	ctx := context.Background()
	inner := mpq.NewInProcessEngine()
	wantFP := make([]string, len(stream.Queries))
	for k, q := range stream.Queries {
		ans, err := inner.Optimize(ctx, q, spec)
		if err != nil {
			t.Fatal(err)
		}
		wantFP[k] = mpq.PlanFingerprint(ans.Best)
	}

	eng := mpq.WithCache(inner, mpq.CacheConfig{MaxBytes: 4 << 10})
	for i := range stream.Order {
		ans, err := eng.Optimize(ctx, stream.At(i), spec)
		if err != nil {
			t.Fatal(err)
		}
		if mpq.PlanFingerprint(ans.Best) != wantFP[stream.Order[i]] {
			t.Fatalf("arrival %d: budgeted cache served a wrong plan", i)
		}
	}
	tt := eng.CacheTotals()
	if tt.Evictions == 0 {
		t.Fatalf("budget never forced an eviction: %+v", tt)
	}
	if tt.Bytes > 4<<10 {
		t.Fatalf("occupancy %d exceeds the 4KB budget", tt.Bytes)
	}
}
