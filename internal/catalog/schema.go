// TPC-style schemas: fixed table/attribute definitions whose row and
// domain counts grow with a scale factor, as in the TPC-H and TPC-DS
// benchmark specifications. A Schema is the generator-side description;
// Build instantiates it into a Catalog at a concrete scale factor.
//
// Schemas are plain JSON-serializable values, so custom schemas can be
// loaded from files (ReadSchemaJSON) and the built-ins exported for
// editing (Schema.WriteJSON). internal/workload.FromSchema turns a
// schema into the canonical foreign-key join query over its tables.

package catalog

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Scaling describes how a count grows with the scale factor.
type Scaling string

const (
	// ScaleFixed counts are independent of the scale factor (e.g. the
	// 25 nations of TPC-H, date dimensions, enumeration domains).
	ScaleFixed Scaling = "fixed"
	// ScaleLinear counts are multiplied by the scale factor (fact and
	// large dimension tables, their key domains).
	ScaleLinear Scaling = "linear"
)

// valid reports whether s is a known scaling rule; the empty string is
// accepted as ScaleFixed so hand-written JSON can omit it.
func (s Scaling) valid() bool {
	return s == "" || s == ScaleFixed || s == ScaleLinear
}

// apply scales a base count by the scale factor, rounding to at least 1.
func (s Scaling) apply(base, sf float64) float64 {
	if s == ScaleLinear {
		base *= sf
	}
	return math.Max(1, math.Round(base))
}

// SchemaAttribute is one column definition: its domain (distinct value
// count) at scale factor 1 plus the rule for scaling it.
type SchemaAttribute struct {
	Name    string  `json:"name"`
	Domain  int64   `json:"domain"`
	Scaling Scaling `json:"scaling,omitempty"`
}

// SchemaTable is one relation definition: its cardinality at scale
// factor 1 plus the rule for scaling it.
type SchemaTable struct {
	Name        string            `json:"name"`
	Cardinality float64           `json:"cardinality"`
	Scaling     Scaling           `json:"scaling,omitempty"`
	Attributes  []SchemaAttribute `json:"attributes"`
}

// SchemaJoin is one canonical foreign-key equality join of the schema,
// referencing tables and attributes by name.
type SchemaJoin struct {
	Left      string `json:"left"`
	LeftAttr  string `json:"leftAttr"`
	Right     string `json:"right"`
	RightAttr string `json:"rightAttr"`
}

// Schema is a TPC-style benchmark schema: named tables with
// scale-factor-dependent statistics and the canonical join graph that
// connects them.
type Schema struct {
	Name   string        `json:"name"`
	Tables []SchemaTable `json:"tables"`
	Joins  []SchemaJoin  `json:"joins,omitempty"`
}

// Validate returns the first structural problem with the schema: empty
// or duplicate names, non-positive counts, unknown scaling rules, or
// joins referencing absent tables/attributes.
func (s *Schema) Validate() error {
	if len(s.Tables) == 0 {
		return fmt.Errorf("catalog: schema %q has no tables", s.Name)
	}
	attrs := map[string]map[string]bool{}
	for i, t := range s.Tables {
		if t.Name == "" {
			return fmt.Errorf("catalog: schema %q table %d has no name", s.Name, i)
		}
		if attrs[t.Name] != nil {
			return fmt.Errorf("catalog: schema %q duplicates table %q", s.Name, t.Name)
		}
		if t.Cardinality <= 0 {
			return fmt.Errorf("catalog: schema table %q cardinality %g not positive", t.Name, t.Cardinality)
		}
		if !t.Scaling.valid() {
			return fmt.Errorf("catalog: schema table %q has unknown scaling %q", t.Name, t.Scaling)
		}
		attrs[t.Name] = map[string]bool{}
		for j, a := range t.Attributes {
			if a.Name == "" {
				return fmt.Errorf("catalog: schema table %q attribute %d has no name", t.Name, j)
			}
			if attrs[t.Name][a.Name] {
				return fmt.Errorf("catalog: schema table %q duplicates attribute %q", t.Name, a.Name)
			}
			attrs[t.Name][a.Name] = true
			if a.Domain <= 0 {
				return fmt.Errorf("catalog: schema attribute %q.%q domain %d not positive", t.Name, a.Name, a.Domain)
			}
			if !a.Scaling.valid() {
				return fmt.Errorf("catalog: schema attribute %q.%q has unknown scaling %q", t.Name, a.Name, a.Scaling)
			}
		}
	}
	for i, j := range s.Joins {
		for _, end := range [][2]string{{j.Left, j.LeftAttr}, {j.Right, j.RightAttr}} {
			ta := attrs[end[0]]
			if ta == nil {
				return fmt.Errorf("catalog: schema join %d references unknown table %q", i, end[0])
			}
			if !ta[end[1]] {
				return fmt.Errorf("catalog: schema join %d references unknown attribute %q.%q", i, end[0], end[1])
			}
		}
		if j.Left == j.Right {
			return fmt.Errorf("catalog: schema join %d joins table %q with itself", i, j.Left)
		}
	}
	return nil
}

// Build instantiates the schema into a catalog at the given scale
// factor: cardinalities and domains are scaled by their rules, rounded,
// and domains capped by their table's cardinality (a column cannot have
// more distinct values than rows). Build is deterministic — no random
// draws — so the same (schema, sf) always produces the same catalog.
func (s *Schema) Build(sf float64) (*Catalog, error) {
	if !(sf > 0) || math.IsInf(sf, 0) {
		return nil, fmt.Errorf("catalog: scale factor %g must be positive and finite", sf)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c := New()
	for _, st := range s.Tables {
		card := st.Scaling.apply(st.Cardinality, sf)
		t := Table{Name: st.Name, Cardinality: card}
		for _, sa := range st.Attributes {
			dom := int64(sa.Scaling.apply(float64(sa.Domain), sf))
			if float64(dom) > card {
				dom = int64(card)
			}
			t.Attributes = append(t.Attributes, Attribute{Name: sa.Name, Domain: dom})
		}
		if _, err := c.AddTable(t); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// WriteJSON serializes the schema definition (not a built catalog —
// Catalog.WriteJSON does that) as indented JSON.
func (s *Schema) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSchemaJSON parses and validates a schema definition previously
// written by Schema.WriteJSON (or hand-authored; scaling rules default
// to "fixed" when omitted).
func ReadSchemaJSON(r io.Reader) (*Schema, error) {
	var s Schema
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("catalog: decode schema: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// builtinSchemas maps name → constructor for the schemas shipped with
// the repository.
var builtinSchemas = map[string]func() *Schema{
	"tpch":  TPCH,
	"tpcds": TPCDS,
}

// SchemaNames lists the built-in schema names in sorted order.
func SchemaNames() []string {
	out := make([]string, 0, len(builtinSchemas))
	for name := range builtinSchemas {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// BuiltinSchema returns the named built-in schema (see SchemaNames).
func BuiltinSchema(name string) (*Schema, error) {
	mk, ok := builtinSchemas[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown schema %q (have %v)", name, SchemaNames())
	}
	return mk(), nil
}

// TPCH returns a TPC-H-style schema: the eight relations of the TPC-H
// specification with their scale-factor-1 row counts, key domains
// scaling linearly with the scale factor, and the canonical foreign-key
// join graph (lineitem at the center, nation/region shared by customer
// and supplier). Statistics follow the spec's population rules; they
// are inputs to cost estimation, not row generators.
func TPCH() *Schema {
	return &Schema{
		Name: "tpch",
		Tables: []SchemaTable{
			{Name: "region", Cardinality: 5, Attributes: []SchemaAttribute{
				{Name: "regionkey", Domain: 5},
			}},
			{Name: "nation", Cardinality: 25, Attributes: []SchemaAttribute{
				{Name: "nationkey", Domain: 25},
				{Name: "regionkey", Domain: 5},
			}},
			{Name: "supplier", Cardinality: 10000, Scaling: ScaleLinear, Attributes: []SchemaAttribute{
				{Name: "suppkey", Domain: 10000, Scaling: ScaleLinear},
				{Name: "nationkey", Domain: 25},
			}},
			{Name: "customer", Cardinality: 150000, Scaling: ScaleLinear, Attributes: []SchemaAttribute{
				{Name: "custkey", Domain: 150000, Scaling: ScaleLinear},
				{Name: "nationkey", Domain: 25},
				{Name: "mktsegment", Domain: 5},
			}},
			{Name: "part", Cardinality: 200000, Scaling: ScaleLinear, Attributes: []SchemaAttribute{
				{Name: "partkey", Domain: 200000, Scaling: ScaleLinear},
				{Name: "brand", Domain: 25},
				{Name: "type", Domain: 150},
				{Name: "size", Domain: 50},
			}},
			{Name: "partsupp", Cardinality: 800000, Scaling: ScaleLinear, Attributes: []SchemaAttribute{
				{Name: "partkey", Domain: 200000, Scaling: ScaleLinear},
				{Name: "suppkey", Domain: 10000, Scaling: ScaleLinear},
			}},
			{Name: "orders", Cardinality: 1500000, Scaling: ScaleLinear, Attributes: []SchemaAttribute{
				{Name: "orderkey", Domain: 1500000, Scaling: ScaleLinear},
				{Name: "custkey", Domain: 99996, Scaling: ScaleLinear},
				{Name: "orderdate", Domain: 2406},
				{Name: "orderpriority", Domain: 5},
			}},
			{Name: "lineitem", Cardinality: 6000000, Scaling: ScaleLinear, Attributes: []SchemaAttribute{
				{Name: "orderkey", Domain: 1500000, Scaling: ScaleLinear},
				{Name: "partkey", Domain: 200000, Scaling: ScaleLinear},
				{Name: "suppkey", Domain: 10000, Scaling: ScaleLinear},
				{Name: "shipdate", Domain: 2526},
				{Name: "returnflag", Domain: 3},
			}},
		},
		Joins: []SchemaJoin{
			{Left: "lineitem", LeftAttr: "orderkey", Right: "orders", RightAttr: "orderkey"},
			{Left: "lineitem", LeftAttr: "partkey", Right: "part", RightAttr: "partkey"},
			{Left: "lineitem", LeftAttr: "suppkey", Right: "supplier", RightAttr: "suppkey"},
			{Left: "partsupp", LeftAttr: "partkey", Right: "part", RightAttr: "partkey"},
			{Left: "orders", LeftAttr: "custkey", Right: "customer", RightAttr: "custkey"},
			{Left: "customer", LeftAttr: "nationkey", Right: "nation", RightAttr: "nationkey"},
			{Left: "supplier", LeftAttr: "nationkey", Right: "nation", RightAttr: "nationkey"},
			{Left: "nation", LeftAttr: "regionkey", Right: "region", RightAttr: "regionkey"},
		},
	}
}

// TPCDS returns a TPC-DS-style snowflake schema: the store_sales fact
// table fanning out to date, item, store and customer dimensions, with
// customer snowflaking further into address and demographics
// sub-dimensions — the shape that motivates the Snowflake workload
// generator, here with the benchmark's fixed statistics instead of
// random ones.
func TPCDS() *Schema {
	return &Schema{
		Name: "tpcds",
		Tables: []SchemaTable{
			{Name: "store_sales", Cardinality: 2880000, Scaling: ScaleLinear, Attributes: []SchemaAttribute{
				{Name: "sold_date_sk", Domain: 1823},
				{Name: "item_sk", Domain: 18000, Scaling: ScaleLinear},
				{Name: "customer_sk", Domain: 100000, Scaling: ScaleLinear},
				{Name: "store_sk", Domain: 12, Scaling: ScaleLinear},
			}},
			{Name: "date_dim", Cardinality: 73049, Attributes: []SchemaAttribute{
				{Name: "date_sk", Domain: 73049},
				{Name: "year", Domain: 200},
			}},
			{Name: "item", Cardinality: 18000, Scaling: ScaleLinear, Attributes: []SchemaAttribute{
				{Name: "item_sk", Domain: 18000, Scaling: ScaleLinear},
				{Name: "category", Domain: 10},
			}},
			{Name: "store", Cardinality: 12, Scaling: ScaleLinear, Attributes: []SchemaAttribute{
				{Name: "store_sk", Domain: 12, Scaling: ScaleLinear},
				{Name: "county", Domain: 30},
			}},
			{Name: "customer", Cardinality: 100000, Scaling: ScaleLinear, Attributes: []SchemaAttribute{
				{Name: "customer_sk", Domain: 100000, Scaling: ScaleLinear},
				{Name: "address_sk", Domain: 50000, Scaling: ScaleLinear},
				{Name: "cdemo_sk", Domain: 1920800},
			}},
			{Name: "customer_address", Cardinality: 50000, Scaling: ScaleLinear, Attributes: []SchemaAttribute{
				{Name: "address_sk", Domain: 50000, Scaling: ScaleLinear},
				{Name: "state", Domain: 51},
			}},
			{Name: "customer_demographics", Cardinality: 1920800, Attributes: []SchemaAttribute{
				{Name: "demo_sk", Domain: 1920800},
			}},
		},
		Joins: []SchemaJoin{
			{Left: "store_sales", LeftAttr: "sold_date_sk", Right: "date_dim", RightAttr: "date_sk"},
			{Left: "store_sales", LeftAttr: "item_sk", Right: "item", RightAttr: "item_sk"},
			{Left: "store_sales", LeftAttr: "store_sk", Right: "store", RightAttr: "store_sk"},
			{Left: "store_sales", LeftAttr: "customer_sk", Right: "customer", RightAttr: "customer_sk"},
			{Left: "customer", LeftAttr: "address_sk", Right: "customer_address", RightAttr: "address_sk"},
			{Left: "customer", LeftAttr: "cdemo_sk", Right: "customer_demographics", RightAttr: "demo_sk"},
		},
	}
}
