package catalog_test

import (
	"bytes"
	"fmt"
	"strings"

	"mpq/internal/catalog"
)

// A schema instantiates into a catalog at any scale factor: linear
// counts multiply by sf, fixed counts (like TPC-H's 25 nations) do not.
func ExampleSchema_Build() {
	schema := catalog.TPCH()
	for _, sf := range []float64{1, 10} {
		cat, err := schema.Build(sf)
		if err != nil {
			panic(err)
		}
		li, _ := cat.Lookup("lineitem")
		na, _ := cat.Lookup("nation")
		fmt.Printf("sf=%-3g lineitem=%.0f nation=%.0f\n",
			sf, cat.Table(li).Cardinality, cat.Table(na).Cardinality)
	}
	// Output:
	// sf=1   lineitem=6000000 nation=25
	// sf=10  lineitem=60000000 nation=25
}

// Catalogs round-trip through JSON: WriteJSON emits the statistics,
// ReadJSON validates and rebuilds the catalog.
func ExampleCatalog_WriteJSON() {
	cat := catalog.New()
	cat.MustAddTable(catalog.Table{
		Name: "orders", Cardinality: 1500000,
		Attributes: []catalog.Attribute{{Name: "orderkey", Domain: 1500000}},
	})
	var buf bytes.Buffer
	if err := cat.WriteJSON(&buf); err != nil {
		panic(err)
	}
	back, err := catalog.ReadJSON(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d table(s); orders has %.0f rows\n", back.Len(), back.Table(0).Cardinality)
	// Output:
	// 1 table(s); orders has 1500000 rows
}

// Custom schemas load from JSON; scaling rules default to "fixed" when
// omitted.
func ExampleReadSchemaJSON() {
	const def = `{
	  "name": "mini",
	  "tables": [
	    {"name": "fact", "cardinality": 1000000, "scaling": "linear",
	     "attributes": [{"name": "key", "domain": 50000, "scaling": "linear"}]},
	    {"name": "dim", "cardinality": 50000, "scaling": "linear",
	     "attributes": [{"name": "key", "domain": 50000, "scaling": "linear"}]}
	  ],
	  "joins": [{"left": "fact", "leftAttr": "key", "right": "dim", "rightAttr": "key"}]
	}`
	schema, err := catalog.ReadSchemaJSON(strings.NewReader(def))
	if err != nil {
		panic(err)
	}
	cat, err := schema.Build(0.1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s at sf=0.1: fact=%.0f dim=%.0f\n",
		schema.Name, cat.Table(0).Cardinality, cat.Table(1).Cardinality)
	// Output:
	// mini at sf=0.1: fact=100000 dim=5000
}
