package catalog

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

func TestBuiltinSchemasValid(t *testing.T) {
	names := SchemaNames()
	if len(names) == 0 {
		t.Fatal("no built-in schemas")
	}
	for _, name := range names {
		s, err := BuiltinSchema(name)
		if err != nil {
			t.Fatalf("BuiltinSchema(%q): %v", name, err)
		}
		if s.Name != name {
			t.Errorf("schema %q reports name %q", name, s.Name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("schema %q invalid: %v", name, err)
		}
	}
	if _, err := BuiltinSchema("nope"); err == nil {
		t.Fatal("unknown schema accepted")
	}
}

func TestSchemaValidateRejects(t *testing.T) {
	ok := func() *Schema {
		return &Schema{Name: "s", Tables: []SchemaTable{
			{Name: "a", Cardinality: 10, Attributes: []SchemaAttribute{{Name: "k", Domain: 10}}},
			{Name: "b", Cardinality: 20, Attributes: []SchemaAttribute{{Name: "k", Domain: 10}}},
		}, Joins: []SchemaJoin{{Left: "a", LeftAttr: "k", Right: "b", RightAttr: "k"}}}
	}
	if err := ok().Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Schema)
	}{
		{"no tables", func(s *Schema) { s.Tables = nil }},
		{"empty table name", func(s *Schema) { s.Tables[0].Name = "" }},
		{"duplicate table", func(s *Schema) { s.Tables[1].Name = "a" }},
		{"bad cardinality", func(s *Schema) { s.Tables[0].Cardinality = 0 }},
		{"bad table scaling", func(s *Schema) { s.Tables[0].Scaling = "cubic" }},
		{"empty attr name", func(s *Schema) { s.Tables[0].Attributes[0].Name = "" }},
		{"duplicate attr", func(s *Schema) {
			s.Tables[0].Attributes = append(s.Tables[0].Attributes, SchemaAttribute{Name: "k", Domain: 2})
		}},
		{"bad domain", func(s *Schema) { s.Tables[0].Attributes[0].Domain = -1 }},
		{"bad attr scaling", func(s *Schema) { s.Tables[0].Attributes[0].Scaling = "log" }},
		{"join unknown table", func(s *Schema) { s.Joins[0].Left = "zzz" }},
		{"join unknown attr", func(s *Schema) { s.Joins[0].RightAttr = "zzz" }},
		{"self join", func(s *Schema) { s.Joins[0].Right = "a" }},
	}
	for _, tc := range cases {
		s := ok()
		tc.mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestSchemaBuildScaling(t *testing.T) {
	s := TPCH()
	sf1, err := s.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	sf10, err := s.Build(10)
	if err != nil {
		t.Fatal(err)
	}
	li1, _ := sf1.Lookup("lineitem")
	li10, _ := sf10.Lookup("lineitem")
	if got := sf10.Table(li10).Cardinality; got != 10*sf1.Table(li1).Cardinality {
		t.Fatalf("lineitem did not scale linearly: %g", got)
	}
	n1, _ := sf1.Lookup("nation")
	n10, _ := sf10.Lookup("nation")
	if sf1.Table(n1).Cardinality != 25 || sf10.Table(n10).Cardinality != 25 {
		t.Fatal("nation cardinality should be fixed at 25")
	}
	// Fractional scale factors round but never drop below one row, and
	// domains stay capped by cardinality.
	tiny, err := s.Build(0.0001)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tiny.Len(); i++ {
		tbl := tiny.Table(i)
		if tbl.Cardinality < 1 {
			t.Fatalf("table %q scaled below one row", tbl.Name)
		}
		for _, a := range tbl.Attributes {
			if float64(a.Domain) > tbl.Cardinality {
				t.Fatalf("%q.%q domain %d exceeds cardinality %g", tbl.Name, a.Name, a.Domain, tbl.Cardinality)
			}
		}
	}
	if _, err := s.Build(0); err == nil {
		t.Fatal("zero scale factor accepted")
	}
	if _, err := s.Build(-1); err == nil {
		t.Fatal("negative scale factor accepted")
	}
}

func TestSchemaJSONRoundTrip(t *testing.T) {
	for _, name := range SchemaNames() {
		orig, err := BuiltinSchema(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := orig.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadSchemaJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var again bytes.Buffer
		if err := got.WriteJSON(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), again.Bytes()) {
			t.Fatalf("%s: schema JSON did not round-trip byte-identically", name)
		}
		// The round-tripped schema builds the same catalog.
		c1, err := orig.Build(2)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := got.Build(2)
		if err != nil {
			t.Fatal(err)
		}
		var j1, j2 bytes.Buffer
		if err := c1.WriteJSON(&j1); err != nil {
			t.Fatal(err)
		}
		if err := c2.WriteJSON(&j2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
			t.Fatalf("%s: built catalogs differ after schema round-trip", name)
		}
	}
}

func TestReadSchemaJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadSchemaJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadSchemaJSON(strings.NewReader(`{"name":"x","tables":[]}`)); err == nil {
		t.Fatal("empty schema accepted")
	}
}

// TestCatalogJSONRoundTripSchemas pins JSON round-trips of the built
// TPC-style catalogs: every table, cardinality and attribute survives.
func TestCatalogJSONRoundTripSchemas(t *testing.T) {
	for _, name := range SchemaNames() {
		s, err := BuiltinSchema(name)
		if err != nil {
			t.Fatal(err)
		}
		c, err := s.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := c.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Len() != c.Len() {
			t.Fatalf("%s: round trip Len = %d want %d", name, got.Len(), c.Len())
		}
		for i := 0; i < c.Len(); i++ {
			a, b := c.Table(i), got.Table(i)
			if a.Name != b.Name || a.Cardinality != b.Cardinality {
				t.Fatalf("%s: table %d mismatch: %+v vs %+v", name, i, a, b)
			}
			if len(a.Attributes) != len(b.Attributes) {
				t.Fatalf("%s: table %q attribute count mismatch", name, a.Name)
			}
			for j := range a.Attributes {
				if a.Attributes[j] != b.Attributes[j] {
					t.Fatalf("%s: %q attribute %d mismatch", name, a.Name, j)
				}
			}
		}
	}
}

// TestTPCHGolden pins the scale-factor-1 TPC-H catalog byte-for-byte
// against testdata/tpch_sf1.golden.json, so accidental changes to the
// built-in statistics fail CI rather than silently shifting every
// benchmark result. Regenerate deliberately with -update.
func TestTPCHGolden(t *testing.T) {
	c, err := TPCH().Build(1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "tpch_sf1.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("TPC-H sf=1 catalog drifted from %s.\nIf the change is deliberate, regenerate with:\n  go test ./internal/catalog -run TestTPCHGolden -update\ngot:\n%s", golden, buf.String())
	}
}
