// Package catalog stores the metadata that query optimization needs:
// table cardinalities and attribute domain sizes.
//
// The paper (§4.1) notes that workers need access to statistics such as
// cardinality and value distributions to estimate plan costs, sent either
// with each query or distributed ahead of time. Catalog is that statistics
// store; internal/wire serializes the query-specific extract of it that
// the master ships to workers.
//
// Catalogs come from three sources: random generation
// (internal/workload), JSON files (ReadJSON/WriteJSON), and TPC-style
// schema definitions instantiated at a scale factor (Schema.Build; see
// schema.go for the built-in TPC-H/TPC-DS-style schemas and the JSON
// schema format). docs/workloads.md walks through all three.
package catalog

import (
	"encoding/json"
	"fmt"
	"io"
)

// Attribute describes one column of a table. Domain is the number of
// distinct values; the selectivity of an equality predicate between two
// attributes is 1/max(domain_a, domain_b), the standard System-R estimate
// used by the Steinbrunn et al. benchmark method the paper adopts.
type Attribute struct {
	Name   string `json:"name"`
	Domain int64  `json:"domain"`
}

// Table describes one base relation.
type Table struct {
	Name        string      `json:"name"`
	Cardinality float64     `json:"cardinality"`
	Attributes  []Attribute `json:"attributes"`
}

// Catalog is a collection of base relations, indexed by position and by
// name. The zero value is an empty catalog ready for use.
type Catalog struct {
	tables []Table
	byName map[string]int
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{byName: map[string]int{}}
}

// AddTable appends a table and returns its index. It returns an error if
// the name is empty or already present, or the cardinality is not
// positive.
func (c *Catalog) AddTable(t Table) (int, error) {
	if t.Name == "" {
		return 0, fmt.Errorf("catalog: table name must not be empty")
	}
	if _, dup := c.byName[t.Name]; dup {
		return 0, fmt.Errorf("catalog: duplicate table %q", t.Name)
	}
	if t.Cardinality <= 0 {
		return 0, fmt.Errorf("catalog: table %q has non-positive cardinality %g", t.Name, t.Cardinality)
	}
	for i, a := range t.Attributes {
		if a.Domain <= 0 {
			return 0, fmt.Errorf("catalog: table %q attribute %d has non-positive domain %d", t.Name, i, a.Domain)
		}
	}
	if c.byName == nil {
		c.byName = map[string]int{}
	}
	c.tables = append(c.tables, t)
	c.byName[t.Name] = len(c.tables) - 1
	return len(c.tables) - 1, nil
}

// MustAddTable is AddTable for construction code where the input is known
// to be valid; it panics on error.
func (c *Catalog) MustAddTable(t Table) int {
	id, err := c.AddTable(t)
	if err != nil {
		panic(err)
	}
	return id
}

// Len returns the number of tables.
func (c *Catalog) Len() int { return len(c.tables) }

// Table returns the table at index id.
func (c *Catalog) Table(id int) Table {
	return c.tables[id]
}

// Lookup returns the index of the named table.
func (c *Catalog) Lookup(name string) (int, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// EqSelectivity returns the selectivity estimate for an equality
// predicate between attribute ai of table a and attribute bi of table b:
// 1 / max(domain_a, domain_b).
func (c *Catalog) EqSelectivity(a, ai, b, bi int) (float64, error) {
	if a < 0 || a >= len(c.tables) || b < 0 || b >= len(c.tables) {
		return 0, fmt.Errorf("catalog: table index out of range (%d, %d)", a, b)
	}
	ta, tb := c.tables[a], c.tables[b]
	if ai < 0 || ai >= len(ta.Attributes) {
		return 0, fmt.Errorf("catalog: attribute %d out of range for table %q", ai, ta.Name)
	}
	if bi < 0 || bi >= len(tb.Attributes) {
		return 0, fmt.Errorf("catalog: attribute %d out of range for table %q", bi, tb.Name)
	}
	da, db := ta.Attributes[ai].Domain, tb.Attributes[bi].Domain
	m := da
	if db > m {
		m = db
	}
	return 1 / float64(m), nil
}

// catalogJSON is the serialized shape.
type catalogJSON struct {
	Tables []Table `json:"tables"`
}

// WriteJSON serializes the catalog.
func (c *Catalog) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(catalogJSON{Tables: c.tables})
}

// ReadJSON parses a catalog previously written by WriteJSON.
func ReadJSON(r io.Reader) (*Catalog, error) {
	var cj catalogJSON
	if err := json.NewDecoder(r).Decode(&cj); err != nil {
		return nil, fmt.Errorf("catalog: decode: %w", err)
	}
	c := New()
	for _, t := range cj.Tables {
		if _, err := c.AddTable(t); err != nil {
			return nil, err
		}
	}
	return c, nil
}
