package catalog

import (
	"bytes"
	"strings"
	"testing"
)

func twoTableCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	c.MustAddTable(Table{
		Name: "orders", Cardinality: 10000,
		Attributes: []Attribute{{Name: "id", Domain: 10000}, {Name: "cust", Domain: 500}},
	})
	c.MustAddTable(Table{
		Name: "customers", Cardinality: 500,
		Attributes: []Attribute{{Name: "id", Domain: 500}},
	})
	return c
}

func TestAddAndLookup(t *testing.T) {
	c := twoTableCatalog(t)
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	id, ok := c.Lookup("customers")
	if !ok || id != 1 {
		t.Fatalf("Lookup customers = %d,%v", id, ok)
	}
	if _, ok := c.Lookup("nope"); ok {
		t.Fatal("Lookup of absent table succeeded")
	}
	if got := c.Table(0).Name; got != "orders" {
		t.Fatalf("Table(0) = %q", got)
	}
}

func TestAddTableRejectsInvalid(t *testing.T) {
	c := New()
	cases := []Table{
		{Name: "", Cardinality: 10},
		{Name: "t", Cardinality: 0},
		{Name: "t", Cardinality: -5},
		{Name: "t", Cardinality: 10, Attributes: []Attribute{{Name: "a", Domain: 0}}},
	}
	for i, tc := range cases {
		if _, err := c.AddTable(tc); err == nil {
			t.Errorf("case %d: AddTable(%+v) succeeded", i, tc)
		}
	}
	c.MustAddTable(Table{Name: "t", Cardinality: 10})
	if _, err := c.AddTable(Table{Name: "t", Cardinality: 20}); err == nil {
		t.Error("duplicate AddTable succeeded")
	}
}

func TestMustAddTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddTable did not panic on invalid input")
		}
	}()
	New().MustAddTable(Table{Name: "", Cardinality: 1})
}

func TestEqSelectivity(t *testing.T) {
	c := twoTableCatalog(t)
	sel, err := c.EqSelectivity(0, 1, 1, 0) // orders.cust = customers.id
	if err != nil {
		t.Fatal(err)
	}
	if sel != 1.0/500 {
		t.Fatalf("sel = %g want %g", sel, 1.0/500)
	}
	// max of the two domains dominates
	sel, err = c.EqSelectivity(0, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sel != 1.0/10000 {
		t.Fatalf("sel = %g want %g", sel, 1.0/10000)
	}
}

func TestEqSelectivityErrors(t *testing.T) {
	c := twoTableCatalog(t)
	if _, err := c.EqSelectivity(0, 1, 5, 0); err == nil {
		t.Error("table index out of range accepted")
	}
	if _, err := c.EqSelectivity(0, 9, 1, 0); err == nil {
		t.Error("attribute index out of range accepted")
	}
	if _, err := c.EqSelectivity(-1, 0, 1, 0); err == nil {
		t.Error("negative table index accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := twoTableCatalog(t)
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != c.Len() {
		t.Fatalf("round trip Len = %d", got.Len())
	}
	for i := 0; i < c.Len(); i++ {
		a, b := c.Table(i), got.Table(i)
		if a.Name != b.Name || a.Cardinality != b.Cardinality || len(a.Attributes) != len(b.Attributes) {
			t.Fatalf("table %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"tables":[{"name":"","cardinality":1}]}`)); err == nil {
		t.Fatal("invalid table accepted")
	}
}

func TestZeroValueCatalogUsable(t *testing.T) {
	var c Catalog
	if _, err := c.AddTable(Table{Name: "x", Cardinality: 3}); err != nil {
		t.Fatal(err)
	}
	if id, ok := c.Lookup("x"); !ok || id != 0 {
		t.Fatalf("Lookup = %d,%v", id, ok)
	}
}
