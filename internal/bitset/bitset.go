// Package bitset provides compact table-set representations for the
// dynamic-programming query optimizer.
//
// A Set is a bitmask over table indices 0..62. The optimizer's memo is
// keyed by Set, and the plan-space partitioning algebra (admissible join
// results, operand splits) is expressed as Set arithmetic. All operations
// are allocation-free.
package bitset

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// Set is a set of table indices represented as a 64-bit mask. Bit i set
// means table i is a member. The zero value is the empty set.
type Set uint64

// MaxTables is the largest number of distinct tables a Set can hold.
// Bit 63 is reserved so that enumeration loops cannot overflow.
const MaxTables = 63

// Empty returns the empty set.
func Empty() Set { return 0 }

// Single returns the singleton set {i}.
func Single(i int) Set {
	if i < 0 || i >= MaxTables {
		panic(fmt.Sprintf("bitset: table index %d out of range [0,%d)", i, MaxTables))
	}
	return Set(1) << uint(i)
}

// Range returns the set {0, 1, ..., n-1}.
func Range(n int) Set {
	if n < 0 || n > MaxTables {
		panic(fmt.Sprintf("bitset: range size %d out of range [0,%d]", n, MaxTables))
	}
	if n == 0 {
		return 0
	}
	return (Set(1) << uint(n)) - 1
}

// Of returns the set containing exactly the given indices.
func Of(indices ...int) Set {
	var s Set
	for _, i := range indices {
		s |= Single(i)
	}
	return s
}

// Contains reports whether table i is a member of s.
func (s Set) Contains(i int) bool { return s&Single(i) != 0 }

// ContainsAll reports whether every member of t is a member of s.
func (s Set) ContainsAll(t Set) bool { return s&t == t }

// Intersects reports whether s and t share at least one member.
func (s Set) Intersects(t Set) bool { return s&t != 0 }

// Add returns s with table i added.
func (s Set) Add(i int) Set { return s | Single(i) }

// Remove returns s with table i removed.
func (s Set) Remove(i int) Set { return s &^ Single(i) }

// Union returns the union of s and t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns the intersection of s and t.
func (s Set) Intersect(t Set) Set { return s & t }

// Minus returns the set difference s \ t.
func (s Set) Minus(t Set) Set { return s &^ t }

// IsEmpty reports whether s has no members.
func (s Set) IsEmpty() bool { return s == 0 }

// Count returns the number of members (population count).
func (s Set) Count() int { return bits.OnesCount64(uint64(s)) }

// IsSingleton reports whether s contains exactly one table.
func (s Set) IsSingleton() bool { return s != 0 && s&(s-1) == 0 }

// Min returns the smallest member index. It panics on the empty set.
func (s Set) Min() int {
	if s == 0 {
		panic("bitset: Min of empty set")
	}
	return bits.TrailingZeros64(uint64(s))
}

// Max returns the largest member index. It panics on the empty set.
func (s Set) Max() int {
	if s == 0 {
		panic("bitset: Max of empty set")
	}
	return 63 - bits.LeadingZeros64(uint64(s))
}

// Next returns the smallest member index strictly greater than i, or -1
// if there is none. Use Next(-1) to start an iteration.
func (s Set) Next(i int) int {
	rest := s >> uint(i+1) << uint(i+1)
	if i < 0 {
		rest = s
	}
	if rest == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(rest))
}

// ForEach calls fn for each member in ascending order.
func (s Set) ForEach(fn func(i int)) {
	for t := s; t != 0; t &= t - 1 {
		fn(bits.TrailingZeros64(uint64(t)))
	}
}

// Members returns the member indices in ascending order.
func (s Set) Members() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Subsets calls fn for every subset of s, including the empty set and s
// itself, in an order where each subset's mask is non-decreasing. It
// uses the standard subset-enumeration recurrence sub = (sub-1) & s.
func (s Set) Subsets(fn func(sub Set)) {
	// Enumerate descending then reverse order does not matter to callers;
	// we enumerate ascending via complement trick for clarity.
	sub := Set(0)
	for {
		fn(sub)
		if sub == s {
			return
		}
		sub = (sub - s) & s // next subset in ascending mask order
	}
}

// ProperSubsets calls fn for every non-empty proper subset of s.
func (s Set) ProperSubsets(fn func(sub Set)) {
	s.Subsets(func(sub Set) {
		if sub != 0 && sub != s {
			fn(sub)
		}
	})
}

// String renders the set as "{0,3,5}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Itoa(i))
	})
	b.WriteByte('}')
	return b.String()
}
