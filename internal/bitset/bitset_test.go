package bitset

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	e := Empty()
	if !e.IsEmpty() {
		t.Fatal("Empty() not empty")
	}
	if e.Count() != 0 {
		t.Fatalf("Empty().Count() = %d", e.Count())
	}
	if e.String() != "{}" {
		t.Fatalf("Empty().String() = %q", e.String())
	}
}

func TestSingle(t *testing.T) {
	for i := 0; i < MaxTables; i++ {
		s := Single(i)
		if !s.Contains(i) {
			t.Fatalf("Single(%d) does not contain %d", i, i)
		}
		if s.Count() != 1 {
			t.Fatalf("Single(%d).Count() = %d", i, s.Count())
		}
		if !s.IsSingleton() {
			t.Fatalf("Single(%d) not a singleton", i)
		}
		if s.Min() != i || s.Max() != i {
			t.Fatalf("Single(%d) min/max = %d/%d", i, s.Min(), s.Max())
		}
	}
}

func TestSinglePanicsOutOfRange(t *testing.T) {
	for _, i := range []int{-1, MaxTables, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Single(%d) did not panic", i)
				}
			}()
			Single(i)
		}()
	}
}

func TestRange(t *testing.T) {
	for n := 0; n <= MaxTables; n++ {
		s := Range(n)
		if s.Count() != n {
			t.Fatalf("Range(%d).Count() = %d", n, s.Count())
		}
		for i := 0; i < n; i++ {
			if !s.Contains(i) {
				t.Fatalf("Range(%d) missing %d", n, i)
			}
		}
		if n < MaxTables && s.Contains(n) {
			t.Fatalf("Range(%d) contains %d", n, n)
		}
	}
}

func TestRangePanics(t *testing.T) {
	for _, n := range []int{-1, MaxTables + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Range(%d) did not panic", n)
				}
			}()
			Range(n)
		}()
	}
}

func TestOf(t *testing.T) {
	s := Of(1, 3, 5)
	if s.Count() != 3 || !s.Contains(1) || !s.Contains(3) || !s.Contains(5) {
		t.Fatalf("Of(1,3,5) = %v", s)
	}
	if s.Contains(0) || s.Contains(2) || s.Contains(4) {
		t.Fatalf("Of(1,3,5) contains extras: %v", s)
	}
	if Of().Count() != 0 {
		t.Fatal("Of() not empty")
	}
}

func TestAddRemove(t *testing.T) {
	s := Empty().Add(4).Add(7).Add(4)
	if s.Count() != 2 {
		t.Fatalf("count = %d", s.Count())
	}
	s = s.Remove(4)
	if s.Contains(4) || !s.Contains(7) {
		t.Fatalf("after remove: %v", s)
	}
	s = s.Remove(4) // removing absent member is a no-op
	if s.Count() != 1 {
		t.Fatalf("double remove changed set: %v", s)
	}
}

func TestSetAlgebra(t *testing.T) {
	a := Of(0, 1, 2, 5)
	b := Of(2, 3, 5, 7)
	if got := a.Union(b); got != Of(0, 1, 2, 3, 5, 7) {
		t.Fatalf("union = %v", got)
	}
	if got := a.Intersect(b); got != Of(2, 5) {
		t.Fatalf("intersect = %v", got)
	}
	if got := a.Minus(b); got != Of(0, 1) {
		t.Fatalf("minus = %v", got)
	}
	if !a.Intersects(b) {
		t.Fatal("a should intersect b")
	}
	if a.Intersects(Of(9)) {
		t.Fatal("a should not intersect {9}")
	}
	if !a.ContainsAll(Of(0, 5)) {
		t.Fatal("a should contain {0,5}")
	}
	if a.ContainsAll(b) {
		t.Fatal("a should not contain all of b")
	}
}

func TestMinMax(t *testing.T) {
	s := Of(3, 10, 40)
	if s.Min() != 3 {
		t.Fatalf("min = %d", s.Min())
	}
	if s.Max() != 40 {
		t.Fatalf("max = %d", s.Max())
	}
}

func TestMinMaxPanicOnEmpty(t *testing.T) {
	for name, fn := range map[string]func(){
		"Min": func() { Empty().Min() },
		"Max": func() { Empty().Max() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty set did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNextIteration(t *testing.T) {
	s := Of(2, 5, 9)
	var got []int
	for i := s.Next(-1); i >= 0; i = s.Next(i) {
		got = append(got, i)
	}
	want := []int{2, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if Empty().Next(-1) != -1 {
		t.Fatal("Next on empty should be -1")
	}
	if s.Next(9) != -1 {
		t.Fatal("Next past max should be -1")
	}
}

func TestMembersAndForEach(t *testing.T) {
	s := Of(0, 8, 16, 62)
	ms := s.Members()
	want := []int{0, 8, 16, 62}
	if len(ms) != 4 {
		t.Fatalf("members = %v", ms)
	}
	for i := range want {
		if ms[i] != want[i] {
			t.Fatalf("members = %v want %v", ms, want)
		}
	}
	n := 0
	prev := -1
	s.ForEach(func(i int) {
		if i <= prev {
			t.Fatalf("ForEach not ascending: %d after %d", i, prev)
		}
		prev = i
		n++
	})
	if n != 4 {
		t.Fatalf("ForEach visited %d members", n)
	}
}

func TestSubsetsEnumeratesPowerSet(t *testing.T) {
	s := Of(1, 4, 6)
	seen := map[Set]bool{}
	s.Subsets(func(sub Set) {
		if !s.ContainsAll(sub) {
			t.Fatalf("subset %v not within %v", sub, s)
		}
		if seen[sub] {
			t.Fatalf("subset %v enumerated twice", sub)
		}
		seen[sub] = true
	})
	if len(seen) != 8 {
		t.Fatalf("enumerated %d subsets, want 8", len(seen))
	}
}

func TestSubsetsOfEmpty(t *testing.T) {
	n := 0
	Empty().Subsets(func(sub Set) {
		if sub != 0 {
			t.Fatalf("unexpected subset %v", sub)
		}
		n++
	})
	if n != 1 {
		t.Fatalf("empty set has %d subsets, want 1", n)
	}
}

func TestProperSubsets(t *testing.T) {
	s := Of(2, 3)
	var got []Set
	s.ProperSubsets(func(sub Set) { got = append(got, sub) })
	if len(got) != 2 {
		t.Fatalf("proper subsets = %v", got)
	}
	for _, sub := range got {
		if sub == 0 || sub == s {
			t.Fatalf("improper subset %v", sub)
		}
	}
}

func TestString(t *testing.T) {
	if got := Of(0, 2, 10).String(); got != "{0,2,10}" {
		t.Fatalf("String = %q", got)
	}
}

// Property: Count matches popcount and set algebra identities hold.
func TestQuickAlgebraIdentities(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := Set(a)&Range(MaxTables), Set(b)&Range(MaxTables)
		if x.Count() != bits.OnesCount64(uint64(x)) {
			return false
		}
		if x.Union(y).Minus(y) != x.Minus(y) {
			return false
		}
		if x.Intersect(y).Union(x.Minus(y)) != x {
			return false
		}
		if x.Union(y).Count() != x.Count()+y.Count()-x.Intersect(y).Count() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: subset enumeration visits exactly 2^|s| distinct subsets.
func TestQuickSubsetCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var s Set
		for i := 0; i < 12; i++ {
			if rng.Intn(2) == 1 {
				s = s.Add(rng.Intn(20))
			}
		}
		n := 0
		s.Subsets(func(Set) { n++ })
		if n != 1<<uint(s.Count()) {
			t.Fatalf("set %v: %d subsets, want %d", s, n, 1<<uint(s.Count()))
		}
	}
}

func BenchmarkForEach(b *testing.B) {
	s := Range(24)
	sum := 0
	for i := 0; i < b.N; i++ {
		s.ForEach(func(j int) { sum += j })
	}
	_ = sum
}

func BenchmarkSubsets(b *testing.B) {
	s := Range(12)
	n := 0
	for i := 0; i < b.N; i++ {
		s.Subsets(func(Set) { n++ })
	}
	_ = n
}
