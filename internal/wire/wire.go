// Package wire serializes queries, job specifications, plans and
// statistics into a compact binary format.
//
// Every byte the cluster simulator and the TCP runtime account for is a
// byte this package actually produced — the paper's network-traffic
// measurements (Figures 1, 2, 4, 5) are regenerated from real message
// sizes, not from a model. The format is little-endian with a magic/
// version header per message; decoders never panic on malformed input.
package wire

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"mpq/internal/bitset"
	"mpq/internal/cost"
	"mpq/internal/plan"
	"mpq/internal/query"
)

// Version is the wire-format version; bump on incompatible changes.
// Version 2 added the Seq echo to job requests, job responses and
// worker-error frames so masters can discard duplicated or stale
// response frames instead of mistaking them for the job in flight.
// The advisory CancelRequest frame (TagCancelRequest) rides within
// version 2: it adds a new tag without changing any existing message,
// and a peer that does not understand it answers ErrBadRequest, which
// cancel senders tolerate.
const Version = 2

const magic = 0x4D50 // "MP"

// Tag identifies a message type. It is a named type (not a bare uint8)
// so that dispatch switches over it are checkable: the tagswitch
// analyzer in internal/analysis requires every switch on a Tag to
// either cover all exported tag constants or carry a default clause
// that returns, so adding a tag here cannot leave a dispatch path
// silently dropping the new frame.
type Tag uint8

// Message type tags. They are exported so transports can classify a
// frame (MessageTag) without decoding the body — the master needs this
// to tell a worker-error frame from a job response.
const (
	TagQuery         Tag = 1
	TagPlan          Tag = 2
	TagJobRequest    Tag = 3
	TagJobResponse   Tag = 4
	TagWorkerError   Tag = 5
	TagCancelRequest Tag = 6
)

// MessageTag reports the message type tag of an encoded message after
// checking the magic and version, without decoding the body.
func MessageTag(b []byte) (Tag, error) {
	if len(b) < 4 {
		return 0, fmt.Errorf("wire: message of %d bytes has no header", len(b))
	}
	if m := binary.LittleEndian.Uint16(b); m != magic {
		return 0, fmt.Errorf("wire: bad magic 0x%04x", m)
	}
	if v := b[2]; v != Version {
		return 0, fmt.Errorf("wire: unsupported version %d", v)
	}
	return Tag(b[3]), nil
}

// encoder appends primitive values to a byte slice.
type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8) { e.buf = append(e.buf, v) }
func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encoder) u16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) i32(v int32)  { e.u32(uint32(v)) }
func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *encoder) str(s string) {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	e.u16(uint16(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) header(tag Tag) {
	e.u16(magic)
	e.u8(Version)
	e.u8(uint8(tag))
}

// decoder consumes primitive values from a byte slice, latching the
// first error.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.b) {
		d.fail("truncated message: need %d bytes at offset %d of %d", n, d.off, len(d.b))
		return false
	}
	return true
}

func (d *decoder) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) bool() bool { return d.u8() != 0 }

func (d *decoder) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i32() int32   { return int32(d.u32()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *decoder) str() string {
	n := int(d.u16())
	if !d.need(n) {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) header(wantTag Tag) {
	if m := d.u16(); d.err == nil && m != magic {
		d.fail("bad magic 0x%04x", m)
	}
	if v := d.u8(); d.err == nil && v != Version {
		d.fail("unsupported version %d", v)
	}
	if tag := Tag(d.u8()); d.err == nil && tag != wantTag {
		d.fail("unexpected message tag %d, want %d", tag, wantTag)
	}
}

func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("wire: %d trailing bytes", len(d.b)-d.off)
	}
	return nil
}

// EncodeQuery serializes a query (tables with statistics plus
// predicates) — the per-worker input of Algorithm 1, size b_q in the
// paper's network analysis (Theorem 1).
func EncodeQuery(q *query.Query) []byte {
	e := &encoder{}
	e.header(TagQuery)
	encodeQueryBody(e, q)
	return e.buf
}

func encodeQueryBody(e *encoder, q *query.Query) {
	e.u16(uint16(q.N()))
	for _, t := range q.Tables {
		e.str(t.Name)
		e.f64(t.Cardinality)
	}
	e.u32(uint32(len(q.Preds)))
	for _, p := range q.Preds {
		e.u16(uint16(p.Left))
		e.u16(uint16(p.Right))
		e.u16(uint16(p.LeftAttr))
		e.u16(uint16(p.RightAttr))
		e.f64(p.Selectivity)
	}
}

// DecodeQuery parses a query message.
func DecodeQuery(b []byte) (*query.Query, error) {
	d := &decoder{b: b}
	d.header(TagQuery)
	q := decodeQueryBody(d)
	if err := d.finish(); err != nil {
		return nil, err
	}
	return q, nil
}

func decodeQueryBody(d *decoder) *query.Query {
	n := int(d.u16())
	if n < 1 || n > bitset.MaxTables {
		d.fail("table count %d out of range", n)
		return nil
	}
	tables := make([]query.Table, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		name := d.str()
		card := d.f64()
		tables = append(tables, query.Table{Name: name, Cardinality: card})
	}
	if d.err != nil {
		return nil
	}
	q, err := query.New(tables)
	if err != nil {
		d.fail("invalid query: %v", err)
		return nil
	}
	np := int(d.u32())
	if np > 1<<20 {
		d.fail("predicate count %d too large", np)
		return nil
	}
	for i := 0; i < np && d.err == nil; i++ {
		p := query.Predicate{
			Left:      int(d.u16()),
			Right:     int(d.u16()),
			LeftAttr:  int(d.u16()),
			RightAttr: int(d.u16()),
		}
		p.Selectivity = d.f64()
		if d.err != nil {
			return nil
		}
		if err := q.AddPredicate(p); err != nil {
			d.fail("invalid predicate %d: %v", i, err)
			return nil
		}
	}
	if d.err == nil {
		q.Freeze()
	}
	return q
}

// EncodePlan serializes one plan tree — the per-worker output, size b_p
// in Theorem 1. Annotations (cardinality, cost, buffer, order) travel
// with the plan so the master can prune without re-deriving costs.
func EncodePlan(p *plan.Node) []byte {
	e := &encoder{}
	e.header(TagPlan)
	encodePlanBody(e, p)
	return e.buf
}

func encodePlanBody(e *encoder, p *plan.Node) {
	if p.IsScan {
		e.u8(0)
		e.u16(uint16(p.Table))
	} else {
		e.u8(1)
		e.u8(uint8(p.Alg))
		e.i32(int32(p.Pred))
	}
	e.i32(int32(p.Order))
	e.f64(p.Card)
	e.f64(p.Cost)
	e.f64(p.Buffer)
	if !p.IsScan {
		encodePlanBody(e, p.Left)
		encodePlanBody(e, p.Right)
	}
}

// PlanFingerprint returns a comparable, printable fingerprint of a plan
// tree: the hex SHA-256 of its wire encoding. Two plans have equal
// fingerprints iff they encode to identical bytes — same structure,
// same join algorithms, same cost annotations bit for bit. This is the
// equivalence the engine tests, the chaos-recovery tests and the plan
// cache all assert; use this helper instead of comparing EncodePlan
// output by hand.
func PlanFingerprint(p *plan.Node) string {
	sum := sha256.Sum256(EncodePlan(p))
	return hex.EncodeToString(sum[:])
}

// DecodePlan parses a plan message.
func DecodePlan(b []byte) (*plan.Node, error) {
	d := &decoder{b: b}
	d.header(TagPlan)
	p := decodePlanBody(d, 0)
	if err := d.finish(); err != nil {
		return nil, err
	}
	return p, nil
}

const maxPlanDepth = 2 * bitset.MaxTables

func decodePlanBody(d *decoder, depth int) *plan.Node {
	if depth > maxPlanDepth {
		d.fail("plan nesting deeper than %d", maxPlanDepth)
		return nil
	}
	kind := d.u8()
	n := &plan.Node{}
	switch kind {
	case 0:
		n.IsScan = true
		n.Table = int(d.u16())
		if n.Table >= bitset.MaxTables {
			d.fail("scan table %d out of range", n.Table)
			return nil
		}
		n.Pred = plan.NoPred
		n.Tables = bitset.Single(n.Table)
	case 1:
		n.Alg = cost.JoinAlg(d.u8())
		if !n.Alg.Valid() {
			d.fail("invalid join algorithm %d", int(n.Alg))
			return nil
		}
		n.Pred = int(d.i32())
	default:
		d.fail("invalid plan node kind %d", kind)
		return nil
	}
	n.Order = int(d.i32())
	n.Card = d.f64()
	n.Cost = d.f64()
	n.Buffer = d.f64()
	if d.err != nil {
		return nil
	}
	if !n.IsScan {
		n.Left = decodePlanBody(d, depth+1)
		n.Right = decodePlanBody(d, depth+1)
		if d.err != nil {
			return nil
		}
		if n.Left.Tables.Intersects(n.Right.Tables) {
			d.fail("operands overlap: %v and %v", n.Left.Tables, n.Right.Tables)
			return nil
		}
		n.Tables = n.Left.Tables.Union(n.Right.Tables)
	}
	return n
}

// encodeStats / decodeStats serialize the work counters.
func encodeStats(e *encoder, s plan.Stats) {
	e.u64(s.SetsProcessed)
	e.u64(s.SplitsTried)
	e.u64(s.PlansKept)
	e.u64(s.PlansPruned)
	e.u64(s.MemoEntries)
}

func decodeStats(d *decoder) plan.Stats {
	return plan.Stats{
		SetsProcessed: d.u64(),
		SplitsTried:   d.u64(),
		PlansKept:     d.u64(),
		PlansPruned:   d.u64(),
		MemoEntries:   d.u64(),
	}
}
