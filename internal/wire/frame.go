package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MaxFrameSize caps a frame payload; the paper configured 1 GB maximum
// message sizes for SMA's sake, and the trusted master↔worker runtime
// keeps the same ceiling. Public-facing listeners should pass a much
// tighter limit to ReadFrameLimit: a well-formed job request or
// response is kilobytes, not gigabytes, and the limit is what bounds
// how many bytes a peer with a lying length prefix can drip into a
// read loop before being cut off.
const MaxFrameSize = 1 << 30

// ErrFrameTooLarge reports a frame whose length prefix exceeds the
// reader's size limit. It is a transport-level (retryable) condition:
// the stream is out of sync or the peer is misbehaving, so the caller
// should drop the connection and redial, exactly as for a truncated or
// corrupt frame — the netrun master classifies it retryable. Test with
// errors.Is.
var ErrFrameTooLarge = fmt.Errorf("wire: frame exceeds size limit")

// frameChunk bounds how much ReadFrameLimit allocates ahead of the
// bytes that have actually arrived.
const frameChunk = 64 << 10

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes, maximum %d", ErrFrameTooLarge, len(payload), MaxFrameSize)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame under the package-wide
// MaxFrameSize cap. The payload buffer grows as bytes actually arrive,
// so a malicious or corrupted length prefix cannot force a huge
// up-front allocation.
func ReadFrame(r io.Reader) ([]byte, error) {
	return ReadFrameLimit(r, MaxFrameSize)
}

// ReadFrameLimit is ReadFrame with an explicit payload size limit
// (capped at MaxFrameSize; max <= 0 means MaxFrameSize). A length
// prefix above the limit returns an error wrapping ErrFrameTooLarge
// before any payload byte is read, so a lying prefix costs the reader
// four header bytes, not an unbounded drip. Listeners facing untrusted
// peers should pass the smallest limit their message mix allows.
func ReadFrameLimit(r io.Reader, max int) ([]byte, error) {
	if max <= 0 || max > MaxFrameSize {
		max = MaxFrameSize
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n32 := binary.BigEndian.Uint32(hdr[:])
	if n32 > uint32(max) {
		// Compare before converting: on 32-bit platforms int(n32) can wrap
		// negative and would slip past this guard.
		return nil, fmt.Errorf("%w: %d bytes, maximum %d", ErrFrameTooLarge, n32, max)
	}
	n := int(n32)
	capHint := n
	if capHint > frameChunk {
		capHint = frameChunk
	}
	payload := make([]byte, 0, capHint)
	for len(payload) < n {
		step := n - len(payload)
		if step > frameChunk {
			step = frameChunk
		}
		if cap(payload)-len(payload) < step {
			newCap := 2 * cap(payload)
			if newCap < len(payload)+step {
				newCap = len(payload) + step
			}
			if newCap > n {
				newCap = n
			}
			grown := make([]byte, len(payload), newCap)
			copy(grown, payload)
			payload = grown
		}
		start := len(payload)
		payload = payload[:start+step]
		if _, err := io.ReadFull(r, payload[start:]); err != nil {
			return nil, err
		}
	}
	return payload, nil
}
