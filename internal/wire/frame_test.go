package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// frame returns payload wrapped in one length-prefixed frame.
func frame(tb testing.TB, payload []byte) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// prefix returns a bare 4-byte length header claiming n payload bytes.
func prefix(n uint32) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], n)
	return hdr[:]
}

// countingReader counts how many bytes ReadFrame actually consumed.
type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

func TestReadFrameLimitCapsLyingPrefix(t *testing.T) {
	// A peer that claims a frame bigger than the limit and then drips
	// bytes forever must be cut off after the 4-byte header: the error
	// is ErrFrameTooLarge and not a single payload byte is consumed.
	const limit = 1 << 10
	body := bytes.Repeat([]byte{0xAB}, 64)
	in := append(prefix(limit+1), body...)
	cr := &countingReader{r: bytes.NewReader(in)}
	_, err := ReadFrameLimit(cr, limit)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if cr.n != 4 {
		t.Fatalf("consumed %d bytes after a lying prefix, want only the 4-byte header", cr.n)
	}
	// Exactly at the limit is fine.
	payload := bytes.Repeat([]byte{7}, limit)
	got, err := ReadFrameLimit(bytes.NewReader(frame(t, payload)), limit)
	if err != nil {
		t.Fatalf("frame exactly at limit rejected: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mangled")
	}
}

func TestReadFrameDefaultCap(t *testing.T) {
	// The package-wide ceiling applies when no explicit limit is given,
	// and a limit of zero (or one beyond the ceiling) falls back to it.
	for _, max := range []int{0, -5, MaxFrameSize + 1} {
		if _, err := ReadFrameLimit(bytes.NewReader(prefix(MaxFrameSize+1)), max); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("max=%d: err = %v, want ErrFrameTooLarge", max, err)
		}
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("4 GB prefix: err = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameRoundTripAcrossChunks(t *testing.T) {
	payload := bytes.Repeat([]byte{0xCD}, 3*frameChunk+17)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip changed the payload")
	}
}

// FuzzReadFrameLimit: the framing decoder must never panic, never
// over-allocate on a lying length prefix, never read past the header
// when the prefix exceeds the limit, and every accepted frame must
// re-encode to exactly the bytes it was parsed from.
func FuzzReadFrameLimit(f *testing.F) {
	f.Add([]byte{}, 1<<20)
	f.Add(frame(f, nil), 1<<20)
	f.Add(frame(f, []byte("job")), 1<<20)
	f.Add([]byte{0, 0, 0, 10, 1, 2}, 1<<20)                    // claims 10 bytes, has 2
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}, 1<<20)               // 4 GB length prefix
	f.Add([]byte{0x40, 0, 0, 1, 0}, 1<<20)                     // just above MaxFrameSize
	f.Add(append(prefix(1<<20+1), 0xDE, 0xAD), 1<<20)          // just above the caller's limit
	f.Add(append(prefix(1<<10), make([]byte, 1<<10)...), 1<<9) // drip: claim within global cap, above limit
	f.Add(frame(f, bytes.Repeat([]byte{7}, 70<<10)), 0)        // spans multiple read chunks, default limit
	f.Fuzz(func(t *testing.T, b []byte, max int) {
		cr := &countingReader{r: bytes.NewReader(b)}
		payload, err := ReadFrameLimit(cr, max)
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) && cr.n > 4 {
				t.Fatalf("consumed %d bytes after an oversized prefix", cr.n)
			}
			return
		}
		if len(b) < 4 {
			t.Fatalf("accepted a %d-byte input with no header", len(b))
		}
		if want := int(binary.BigEndian.Uint32(b)); len(payload) != want {
			t.Fatalf("payload length %d, header says %d", len(payload), want)
		}
		if max > 0 && max <= MaxFrameSize && len(payload) > max {
			t.Fatalf("accepted %d bytes over the %d limit", len(payload), max)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatalf("re-frame failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), b[:4+len(payload)]) {
			t.Fatal("re-framed bytes differ from input")
		}
	})
}
