package wire

import (
	"strings"
	"testing"

	"mpq/internal/core"
	"mpq/internal/partition"
)

// Allocation regression tests for the encode hot paths. The encoders
// run once per master↔worker message; their only allocations should be
// the geometric growth of the output buffer. The old encoder.bool built
// a map[bool]uint8 literal on every call (one map allocation per
// boolean field), which these bounds would catch immediately.

var allocSink []byte

func TestEncodeJobRequestAllocs(t *testing.T) {
	q := genQuery(t, 12, 3)
	req := &JobRequest{
		Spec:   core.JobSpec{Space: partition.Linear, Workers: 8, InterestingOrders: true},
		PartID: 3,
		Query:  q,
	}
	allocs := testing.AllocsPerRun(200, func() {
		allocSink = EncodeJobRequest(req)
	})
	// Buffer growth for a ~400-byte message needs at most ~7 appends;
	// anything above that means a per-field allocation crept in.
	if allocs > 8 {
		t.Errorf("EncodeJobRequest: %.1f allocs/op, want <= 8", allocs)
	}
}

func TestEncodeJobResponseAllocs(t *testing.T) {
	q := genQuery(t, 10, 1)
	res, err := core.RunWorker(q, core.JobSpec{Space: partition.Linear, Workers: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	resp := &JobResponse{Plans: res.Plans, Stats: res.Stats}
	allocs := testing.AllocsPerRun(200, func() {
		allocSink = EncodeJobResponse(resp)
	})
	if allocs > 10 {
		t.Errorf("EncodeJobResponse: %.1f allocs/op, want <= 10", allocs)
	}
}

func TestEncodeQueryAllocs(t *testing.T) {
	q := genQuery(t, 16, 0)
	allocs := testing.AllocsPerRun(200, func() {
		allocSink = EncodeQuery(q)
	})
	if allocs > 8 {
		t.Errorf("EncodeQuery: %.1f allocs/op, want <= 8", allocs)
	}
}

func TestWorkerErrorRoundTrip(t *testing.T) {
	for _, we := range []*WorkerError{
		{Code: ErrBadRequest, Msg: "decode: bad magic 0xdead"},
		{Code: ErrJobFailed, Msg: "partition 3 out of range"},
		{Code: ErrBadRequest, Msg: ""},
	} {
		b := EncodeWorkerError(we)
		got, err := DecodeWorkerError(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.Code != we.Code || got.Msg != we.Msg {
			t.Fatalf("round trip changed %+v to %+v", we, got)
		}
		if !strings.Contains(got.Error(), we.Code.String()) {
			t.Fatalf("Error() = %q misses the code", got.Error())
		}
	}
}

func TestWorkerErrorRejectsCorruption(t *testing.T) {
	good := EncodeWorkerError(&WorkerError{Code: ErrJobFailed, Msg: "boom"})
	for cut := 0; cut < len(good); cut++ {
		if _, err := DecodeWorkerError(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte{}, good...)
	bad[8] = 77 // unknown code (header is 4 bytes, Seq another 4)
	if _, err := DecodeWorkerError(bad); err == nil {
		t.Fatal("unknown error code accepted")
	}
}

func TestMessageTag(t *testing.T) {
	q := genQuery(t, 5, 0)
	cases := []struct {
		b    []byte
		want Tag
	}{
		{EncodeQuery(q), TagQuery},
		{EncodeJobRequest(&JobRequest{Spec: core.JobSpec{Space: partition.Linear, Workers: 2}, Query: q}), TagJobRequest},
		{EncodeJobResponse(&JobResponse{}), TagJobResponse},
		{EncodeWorkerError(&WorkerError{Code: ErrBadRequest}), TagWorkerError},
	}
	for _, c := range cases {
		tag, err := MessageTag(c.b)
		if err != nil || tag != c.want {
			t.Fatalf("MessageTag = %d, %v; want %d", tag, err, c.want)
		}
	}
	if _, err := MessageTag([]byte{1, 2}); err == nil {
		t.Fatal("short header accepted")
	}
	if _, err := MessageTag([]byte{0, 0, 1, 1}); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := MessageTag([]byte{0x50, 0x4D, 99, 1}); err == nil {
		t.Fatal("bad version accepted")
	}
}
