package wire

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpq/internal/catalog"
	"mpq/internal/core"
	"mpq/internal/cost"
	"mpq/internal/dp"
	"mpq/internal/partition"
	"mpq/internal/plan"
	"mpq/internal/query"
	"mpq/internal/workload"
)

func genQuery(t testing.TB, n int, seed int64) *query.Query {
	t.Helper()
	return workload.MustGenerate(workload.NewParams(n, workload.Star), seed)
}

func TestQueryRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		q := genQuery(t, 8, seed)
		b := EncodeQuery(q)
		got, err := DecodeQuery(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.N() != q.N() || len(got.Preds) != len(q.Preds) {
			t.Fatal("shape mismatch after round trip")
		}
		for i := range q.Tables {
			if got.Tables[i] != q.Tables[i] {
				t.Fatalf("table %d: %+v != %+v", i, got.Tables[i], q.Tables[i])
			}
		}
		for i := range q.Preds {
			if got.Preds[i] != q.Preds[i] {
				t.Fatalf("pred %d: %+v != %+v", i, got.Preds[i], q.Preds[i])
			}
		}
	}
}

// The wire extract of the catalog (names, cardinalities, attribute
// ordinals, selectivities) must round-trip for the new workload
// families too: snowflake graphs, correlated selectivities, and the
// fixed TPC-style schema queries with their named tables.
func TestQueryRoundTripNewWorkloads(t *testing.T) {
	var queries []*query.Query
	params := workload.NewParams(10, workload.Snowflake)
	queries = append(queries, workload.MustGenerate(params, 4))
	params.Correlation = -0.5
	queries = append(queries, workload.MustGenerate(params, 4))
	for _, name := range catalog.SchemaNames() {
		sch, err := catalog.BuiltinSchema(name)
		if err != nil {
			t.Fatal(err)
		}
		_, q, err := workload.FromSchema(sch, 1)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q)
	}
	for qi, q := range queries {
		got, err := DecodeQuery(EncodeQuery(q))
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if got.N() != q.N() || len(got.Preds) != len(q.Preds) {
			t.Fatalf("query %d: shape mismatch after round trip", qi)
		}
		for i := range q.Tables {
			if got.Tables[i] != q.Tables[i] {
				t.Fatalf("query %d table %d: %+v != %+v", qi, i, got.Tables[i], q.Tables[i])
			}
		}
		for i := range q.Preds {
			if got.Preds[i] != q.Preds[i] {
				t.Fatalf("query %d pred %d: %+v != %+v", qi, i, got.Preds[i], q.Preds[i])
			}
		}
	}
}

func TestQueryDecodeRejectsCorruption(t *testing.T) {
	q := genQuery(t, 6, 1)
	good := EncodeQuery(q)

	// Truncations at every prefix length must error, never panic.
	for cut := 0; cut < len(good); cut++ {
		if _, err := DecodeQuery(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage.
	if _, err := DecodeQuery(append(append([]byte{}, good...), 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// Bad magic / version / tag.
	bad := append([]byte{}, good...)
	bad[0] ^= 0xFF
	if _, err := DecodeQuery(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte{}, good...)
	bad[2] = 99
	if _, err := DecodeQuery(bad); err == nil {
		t.Fatal("bad version accepted")
	}
	bad = append([]byte{}, good...)
	bad[3] = byte(TagPlan)
	if _, err := DecodeQuery(bad); err == nil {
		t.Fatal("wrong tag accepted")
	}
}

// Fuzz-style: random byte strings never panic the decoders.
func TestDecodersNeverPanicOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		b := make([]byte, rng.Intn(200))
		rng.Read(b)
		_, _ = DecodeQuery(b)
		_, _ = DecodePlan(b)
		_, _ = DecodeJobRequest(b)
		_, _ = DecodeJobResponse(b)
	}
}

func bestPlan(t testing.TB, q *query.Query, space partition.Space) *plan.Node {
	t.Helper()
	res, err := dp.Serial(q, space, dp.Options{InterestingOrders: true, Pruner: dp.OrderAware{}})
	if err != nil {
		t.Fatal(err)
	}
	return res.Best()
}

func TestPlanRoundTrip(t *testing.T) {
	for _, space := range []partition.Space{partition.Linear, partition.Bushy} {
		q := genQuery(t, 7, 3)
		p := bestPlan(t, q, space)
		b := EncodePlan(p)
		got, err := DecodePlan(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != p.String() {
			t.Fatalf("structure changed: %s != %s", got, p)
		}
		if got.Cost != p.Cost || got.Card != p.Card || got.Buffer != p.Buffer || got.Order != p.Order {
			t.Fatal("annotations changed")
		}
		// The decoded plan must still validate against the query.
		if err := got.Validate(q, cost.Default()); err != nil {
			t.Fatalf("decoded plan invalid: %v", err)
		}
	}
}

// TestPlanFingerprint: fingerprints agree exactly when the encodings
// agree — the equivalence contract the engine and cache tests rely on.
func TestPlanFingerprint(t *testing.T) {
	q := genQuery(t, 7, 3)
	p := bestPlan(t, q, partition.Linear)
	if PlanFingerprint(p) != PlanFingerprint(p) {
		t.Fatal("fingerprint is not deterministic")
	}
	decoded, err := DecodePlan(EncodePlan(p))
	if err != nil {
		t.Fatal(err)
	}
	if PlanFingerprint(decoded) != PlanFingerprint(p) {
		t.Fatal("round-tripped plan has a different fingerprint")
	}
	other := bestPlan(t, genQuery(t, 7, 4), partition.Linear)
	if PlanFingerprint(other) == PlanFingerprint(p) {
		t.Fatal("different plans share a fingerprint")
	}
	// An annotation-only change (same structure) must change it too.
	cp := *p
	cp.Cost = p.Cost + 1
	if PlanFingerprint(&cp) == PlanFingerprint(p) {
		t.Fatal("cost annotation change did not change the fingerprint")
	}
}

func TestPlanDecodeRejectsCorruption(t *testing.T) {
	q := genQuery(t, 5, 0)
	p := bestPlan(t, q, partition.Linear)
	good := EncodePlan(p)
	for cut := 0; cut < len(good); cut++ {
		if _, err := DecodePlan(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestJobRequestRoundTrip(t *testing.T) {
	q := genQuery(t, 8, 5)
	req := &JobRequest{
		Spec: core.JobSpec{
			Space:             partition.Linear,
			Workers:           8,
			Objective:         core.MultiObjective,
			Alpha:             2.5,
			InterestingOrders: true,
		},
		PartID: 5,
		Query:  q,
	}
	b := EncodeJobRequest(req)
	got, err := DecodeJobRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec != req.Spec || got.PartID != req.PartID {
		t.Fatalf("spec mismatch: %+v vs %+v", got.Spec, req.Spec)
	}
	if got.Query.N() != q.N() {
		t.Fatal("query mismatch")
	}
}

// TestJobRequestRoundTripRobust: the robust-job fields — the spec's
// uncertainty band and the cost model's — must survive the wire, or
// remote workers would silently optimize a different problem than the
// master asked for.
func TestJobRequestRoundTripRobust(t *testing.T) {
	q := genQuery(t, 7, 3)
	robust := &JobRequest{
		Spec: core.JobSpec{
			Space:      partition.Linear,
			Workers:    4,
			Objective:  core.RobustObjective,
			RobustBand: 3.5,
		},
		PartID: 2,
		Query:  q,
	}
	explicit := &JobRequest{
		Spec: core.JobSpec{
			Space:     partition.Linear,
			Workers:   4,
			Objective: core.MultiObjective,
			Alpha:     1,
			CostModel: cost.Robust(1.5),
		},
		PartID: 1,
		Query:  q,
	}
	for _, req := range []*JobRequest{robust, explicit} {
		got, err := DecodeJobRequest(EncodeJobRequest(req))
		if err != nil {
			t.Fatal(err)
		}
		if got.Spec != req.Spec {
			t.Fatalf("spec mismatch: %+v vs %+v", got.Spec, req.Spec)
		}
	}
}

func TestJobFramesCarrySeq(t *testing.T) {
	q := genQuery(t, 6, 2)
	req := &JobRequest{
		Seq:    0xDEADBEEF,
		Spec:   core.JobSpec{Space: partition.Linear, Workers: 2},
		PartID: 1,
		Query:  q,
	}
	b := EncodeJobRequest(req)
	got, err := DecodeJobRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != req.Seq {
		t.Fatalf("Seq = %#x, want %#x", got.Seq, req.Seq)
	}
	if s := PeekJobRequestSeq(b); s != req.Seq {
		t.Fatalf("PeekJobRequestSeq = %#x, want %#x", s, req.Seq)
	}
	// Peek tolerates a damaged body: flip a byte beyond the Seq field.
	bad := append([]byte{}, b...)
	bad[len(bad)-1] ^= 0xFF
	if s := PeekJobRequestSeq(bad); s != req.Seq {
		t.Fatalf("PeekJobRequestSeq on damaged body = %#x, want %#x", s, req.Seq)
	}
	// A damaged header yields the unsequenced value.
	bad[0] ^= 0xFF
	if s := PeekJobRequestSeq(bad); s != 0 {
		t.Fatalf("PeekJobRequestSeq on damaged header = %#x, want 0", s)
	}

	resp := &JobResponse{Seq: 42}
	gotResp, err := DecodeJobResponse(EncodeJobResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if gotResp.Seq != 42 {
		t.Fatalf("response Seq = %d, want 42", gotResp.Seq)
	}
	we := &WorkerError{Seq: 7, Code: ErrBadRequest, Msg: "x"}
	gotWe, err := DecodeWorkerError(EncodeWorkerError(we))
	if err != nil {
		t.Fatal(err)
	}
	if gotWe.Seq != 7 {
		t.Fatalf("worker error Seq = %d, want 7", gotWe.Seq)
	}
}

func TestJobRequestRejectsInvalidSpec(t *testing.T) {
	q := genQuery(t, 4, 0)
	req := &JobRequest{
		Spec:   core.JobSpec{Space: partition.Linear, Workers: 64}, // > max for n=4
		PartID: 0,
		Query:  q,
	}
	b := EncodeJobRequest(req)
	if _, err := DecodeJobRequest(b); err == nil {
		t.Fatal("invalid spec accepted on decode")
	}
}

func TestJobResponseRoundTrip(t *testing.T) {
	q := genQuery(t, 7, 2)
	res, err := core.RunWorker(q, core.JobSpec{
		Space: partition.Linear, Workers: 4, Objective: core.MultiObjective, Alpha: 1,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	resp := &JobResponse{Plans: res.Plans, Stats: res.Stats}
	b := EncodeJobResponse(resp)
	got, err := DecodeJobResponse(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Plans) != len(resp.Plans) {
		t.Fatalf("plan count %d != %d", len(got.Plans), len(resp.Plans))
	}
	if got.Stats != resp.Stats {
		t.Fatalf("stats mismatch: %+v vs %+v", got.Stats, resp.Stats)
	}
	for i := range got.Plans {
		if got.Plans[i].String() != resp.Plans[i].String() {
			t.Fatal("plan structure changed")
		}
	}
}

func TestJobResponseError(t *testing.T) {
	resp := &JobResponse{Err: "worker exploded"}
	got, err := DecodeJobResponse(EncodeJobResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if got.Err != "worker exploded" || len(got.Plans) != 0 {
		t.Fatalf("got %+v", got)
	}
}

// The paper's Theorem 1: message sizes are linear in query size; the
// request is query + two integers + spec, so it must stay within a small
// constant of the bare query encoding.
func TestRequestOverheadIsConstant(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		q := genQuery(t, n, 0)
		qb := len(EncodeQuery(q))
		rb := len(EncodeJobRequest(&JobRequest{
			Spec:   core.JobSpec{Space: partition.Linear, Workers: 2},
			Query:  q,
			PartID: 1,
		}))
		// The budget tracks the fixed-size spec encoding (currently 73
		// bytes with the robust-band fields); the property under test is
		// that it does not grow with n.
		if rb-qb > 96 {
			t.Fatalf("n=%d: request overhead %d bytes", n, rb-qb)
		}
	}
}

// Property: query encoding is deterministic and injective w.r.t. seeds.
func TestQuickQueryEncodingDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		q := workload.MustGenerate(workload.NewParams(6, workload.Chain), seed%1000)
		a := EncodeQuery(q)
		b := EncodeQuery(q)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeDecodeQuery(b *testing.B) {
	q := genQuery(b, 20, 0)
	for i := 0; i < b.N; i++ {
		enc := EncodeQuery(q)
		if _, err := DecodeQuery(enc); err != nil {
			b.Fatal(err)
		}
	}
}
