package wire

import (
	"testing"

	"mpq/internal/core"
	"mpq/internal/partition"
	"mpq/internal/workload"
)

// Native fuzz targets: the seed corpus runs on every `go test`; run with
// `go test -fuzz FuzzDecodeQuery ./internal/wire` to explore further.
// Decoders must never panic and every accepted message must re-encode.

func seedCorpus(f *testing.F) {
	q := workload.MustGenerate(workload.NewParams(6, workload.Star), 1)
	f.Add(EncodeQuery(q))
	f.Add(EncodeJobRequest(&JobRequest{
		Spec:  core.JobSpec{Space: partition.Linear, Workers: 4},
		Query: q,
	}))
	res, err := core.RunWorker(q, core.JobSpec{Space: partition.Linear, Workers: 2}, 1)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(EncodePlan(res.Best()))
	f.Add(EncodeJobResponse(&JobResponse{Plans: res.Plans, Stats: res.Stats}))
	f.Add(EncodeWorkerError(&WorkerError{Code: ErrBadRequest, Msg: "decode: bad magic"}))
	f.Add([]byte{})
	f.Add([]byte{0x50, 0x4d, 1, 1})
}

func FuzzDecodeQuery(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, b []byte) {
		q, err := DecodeQuery(b)
		if err != nil {
			return
		}
		// Accepted queries must be valid and re-encodable.
		if err := q.Validate(); err != nil {
			t.Fatalf("decoder accepted invalid query: %v", err)
		}
		if _, err := DecodeQuery(EncodeQuery(q)); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}

func FuzzDecodePlan(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := DecodePlan(b)
		if err != nil {
			return
		}
		if _, err := DecodePlan(EncodePlan(p)); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}

func FuzzDecodeJobRequest(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := DecodeJobRequest(b)
		if err != nil {
			return
		}
		if err := r.Spec.Validate(r.Query.N()); err != nil {
			t.Fatalf("decoder accepted invalid spec: %v", err)
		}
	})
}

func FuzzDecodeWorkerError(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, b []byte) {
		w, err := DecodeWorkerError(b)
		if err != nil {
			return
		}
		got, err := DecodeWorkerError(EncodeWorkerError(w))
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if got.Code != w.Code || got.Msg != w.Msg {
			t.Fatal("re-encode changed the message")
		}
	})
}

func FuzzDecodeJobResponse(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := DecodeJobResponse(b)
		if err != nil {
			return
		}
		if _, err := DecodeJobResponse(EncodeJobResponse(r)); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}
