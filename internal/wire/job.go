package wire

import (
	"mpq/internal/core"
	"mpq/internal/cost"
	"mpq/internal/partition"
	"mpq/internal/plan"
	"mpq/internal/query"
)

// JobRequest is the master-to-worker message of Algorithm 1: the query,
// the job configuration, and this worker's partition ID. It is the only
// message a worker ever receives for a query.
type JobRequest struct {
	Spec   core.JobSpec
	PartID int
	Query  *query.Query
}

// JobResponse is the worker-to-master message: the partition-optimal
// plan(s) and the worker's work accounting. Err is non-empty if the
// worker failed.
type JobResponse struct {
	Plans []*plan.Node
	Stats plan.Stats
	Err   string
}

// EncodeJobRequest serializes a request.
func EncodeJobRequest(r *JobRequest) []byte {
	e := &encoder{}
	e.header(tagJobRequest)
	e.u8(uint8(r.Spec.Space))
	e.u32(uint32(r.Spec.Workers))
	e.u8(uint8(r.Spec.Objective))
	e.f64(r.Spec.Alpha)
	e.bool(r.Spec.InterestingOrders)
	e.bool(r.Spec.DisableCrossProducts)
	e.f64(r.Spec.CostModel.HashFactor)
	e.f64(r.Spec.CostModel.SortFactor)
	e.f64(r.Spec.CostModel.NLBlock)
	e.u8(uint8(r.Spec.CostModel.Second))
	e.f64(r.Spec.CostModel.HashSpillFactor)
	e.u32(uint32(r.PartID))
	encodeQueryBody(e, r.Query)
	return e.buf
}

// DecodeJobRequest parses a request.
func DecodeJobRequest(b []byte) (*JobRequest, error) {
	d := &decoder{b: b}
	d.header(tagJobRequest)
	r := &JobRequest{}
	r.Spec.Space = partition.Space(d.u8())
	r.Spec.Workers = int(d.u32())
	r.Spec.Objective = core.Objective(d.u8())
	r.Spec.Alpha = d.f64()
	r.Spec.InterestingOrders = d.bool()
	r.Spec.DisableCrossProducts = d.bool()
	r.Spec.CostModel.HashFactor = d.f64()
	r.Spec.CostModel.SortFactor = d.f64()
	r.Spec.CostModel.NLBlock = d.f64()
	r.Spec.CostModel.Second = cost.SecondMetric(d.u8())
	r.Spec.CostModel.HashSpillFactor = d.f64()
	r.PartID = int(d.u32())
	r.Query = decodeQueryBody(d)
	if err := d.finish(); err != nil {
		return nil, err
	}
	if err := r.Spec.Validate(r.Query.N()); err != nil {
		return nil, err
	}
	return r, nil
}

// EncodeJobResponse serializes a response.
func EncodeJobResponse(r *JobResponse) []byte {
	e := &encoder{}
	e.header(tagJobResponse)
	e.str(r.Err)
	encodeStats(e, r.Stats)
	e.u32(uint32(len(r.Plans)))
	for _, p := range r.Plans {
		encodePlanBody(e, p)
	}
	return e.buf
}

// DecodeJobResponse parses a response.
func DecodeJobResponse(b []byte) (*JobResponse, error) {
	d := &decoder{b: b}
	d.header(tagJobResponse)
	r := &JobResponse{}
	r.Err = d.str()
	r.Stats = decodeStats(d)
	n := int(d.u32())
	if n > 1<<20 {
		d.fail("plan count %d too large", n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		p := decodePlanBody(d, 0)
		if p != nil {
			r.Plans = append(r.Plans, p)
		}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return r, nil
}
