package wire

import (
	"fmt"

	"mpq/internal/core"
	"mpq/internal/cost"
	"mpq/internal/partition"
	"mpq/internal/plan"
	"mpq/internal/query"
)

// JobRequest is the master-to-worker message of Algorithm 1: the query,
// the job configuration, and this worker's partition ID. It is the only
// message a worker ever receives for a query.
type JobRequest struct {
	// Seq is the master's per-connection sequence number; the worker
	// echoes it in its response (or error frame) so the master can
	// discard duplicated or stale frames. Zero means "unsequenced"
	// (standalone tools that send one request per connection).
	Seq    uint32
	Spec   core.JobSpec
	PartID int
	Query  *query.Query
}

// JobResponse is the worker-to-master message: the partition-optimal
// plan(s) and the worker's work accounting. Err is non-empty if the
// worker failed.
type JobResponse struct {
	// Seq echoes the request's sequence number (see JobRequest.Seq).
	Seq   uint32
	Plans []*plan.Node
	Stats plan.Stats
	Err   string
}

// EncodeJobRequest serializes a request. The sequence number is encoded
// immediately after the frame header so PeekJobRequestSeq can recover
// it even when the rest of the request fails to decode.
func EncodeJobRequest(r *JobRequest) []byte {
	e := &encoder{}
	e.header(TagJobRequest)
	e.u32(r.Seq)
	e.u8(uint8(r.Spec.Space))
	e.u32(uint32(r.Spec.Workers))
	e.u8(uint8(r.Spec.Objective))
	e.f64(r.Spec.Alpha)
	e.f64(r.Spec.RobustBand)
	e.bool(r.Spec.InterestingOrders)
	e.bool(r.Spec.DisableCrossProducts)
	e.f64(r.Spec.CostModel.HashFactor)
	e.f64(r.Spec.CostModel.SortFactor)
	e.f64(r.Spec.CostModel.NLBlock)
	e.u8(uint8(r.Spec.CostModel.Second))
	e.f64(r.Spec.CostModel.HashSpillFactor)
	e.f64(r.Spec.CostModel.RobustBand)
	e.u32(uint32(r.PartID))
	encodeQueryBody(e, r.Query)
	return e.buf
}

// DecodeJobRequest parses a request.
func DecodeJobRequest(b []byte) (*JobRequest, error) {
	d := &decoder{b: b}
	d.header(TagJobRequest)
	r := &JobRequest{}
	r.Seq = d.u32()
	r.Spec.Space = partition.Space(d.u8())
	r.Spec.Workers = int(d.u32())
	r.Spec.Objective = core.Objective(d.u8())
	r.Spec.Alpha = d.f64()
	r.Spec.RobustBand = d.f64()
	r.Spec.InterestingOrders = d.bool()
	r.Spec.DisableCrossProducts = d.bool()
	r.Spec.CostModel.HashFactor = d.f64()
	r.Spec.CostModel.SortFactor = d.f64()
	r.Spec.CostModel.NLBlock = d.f64()
	r.Spec.CostModel.Second = cost.SecondMetric(d.u8())
	r.Spec.CostModel.HashSpillFactor = d.f64()
	r.Spec.CostModel.RobustBand = d.f64()
	r.PartID = int(d.u32())
	r.Query = decodeQueryBody(d)
	if err := d.finish(); err != nil {
		return nil, err
	}
	if err := r.Spec.Validate(r.Query.N()); err != nil {
		return nil, err
	}
	return r, nil
}

// PeekJobRequestSeq recovers the sequence number of a job-request frame
// without decoding the body, tolerating a damaged body: a worker whose
// full decode failed can still echo the request's Seq in its error
// frame. Returns 0 (the "unsequenced" value) when even the header or
// the Seq field is unreadable.
func PeekJobRequestSeq(b []byte) uint32 {
	if tag, err := MessageTag(b); err != nil || tag != TagJobRequest || len(b) < 8 {
		return 0
	}
	d := &decoder{b: b, off: 4}
	return d.u32()
}

// ErrCode classifies a worker-side failure so the master can decide
// whether re-dispatching the partition to another worker can help.
type ErrCode uint8

const (
	// ErrBadRequest means the request frame did not decode on the worker.
	// The master validates every job before sending, so this indicates the
	// frame was damaged in transit (or version skew) — retryable.
	ErrBadRequest ErrCode = 1
	// ErrJobFailed means the request decoded but the optimizer rejected or
	// failed the job. Workers are deterministic, so another worker would
	// fail identically — fatal, never retried.
	ErrJobFailed ErrCode = 2
	// ErrOverloaded means the serving side's admission queue is full (the
	// resident daemon's wire front end under load). The job itself is
	// fine; retrying after a backoff — or on another node — can succeed,
	// so masters classify it retryable like transport damage.
	ErrOverloaded ErrCode = 3
	// ErrCanceled means the master canceled the request with an explicit
	// CancelRequest frame — typically because a speculative clone of the
	// same partition answered first — and the worker aborted its dynamic
	// program. It is neither a worker failure nor a job failure: the
	// master already has (or no longer wants) the answer.
	ErrCanceled ErrCode = 4
)

// String names the error code.
func (c ErrCode) String() string {
	switch c {
	case ErrBadRequest:
		return "bad-request"
	case ErrJobFailed:
		return "job-failed"
	case ErrOverloaded:
		return "overloaded"
	case ErrCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("ErrCode(%d)", uint8(c))
	}
}

// WorkerError is the explicit worker-to-master failure frame: instead of
// smuggling errors inside a JobResponse, a failing worker answers with
// this dedicated message so the master can separate deterministic job
// failures (fatal) from transport damage (retryable) without guessing
// from error strings.
type WorkerError struct {
	// Seq echoes the failing request's sequence number (see
	// JobRequest.Seq). Zero when the request was too damaged to recover
	// it; masters treat a zero Seq as matching any job in flight.
	Seq  uint32
	Code ErrCode
	Msg  string
}

// Error formats the frame as a Go error string.
func (w *WorkerError) Error() string {
	return fmt.Sprintf("worker error (%v): %s", w.Code, w.Msg)
}

// EncodeWorkerError serializes a worker-error frame.
func EncodeWorkerError(w *WorkerError) []byte {
	e := &encoder{}
	e.header(TagWorkerError)
	e.u32(w.Seq)
	e.u8(uint8(w.Code))
	e.str(w.Msg)
	return e.buf
}

// DecodeWorkerError parses a worker-error frame.
func DecodeWorkerError(b []byte) (*WorkerError, error) {
	d := &decoder{b: b}
	d.header(TagWorkerError)
	w := &WorkerError{Seq: d.u32(), Code: ErrCode(d.u8()), Msg: d.str()}
	if err := d.finish(); err != nil {
		return nil, err
	}
	switch w.Code {
	case ErrBadRequest, ErrJobFailed, ErrOverloaded, ErrCanceled:
	default:
		return nil, fmt.Errorf("wire: unknown worker error code %d", uint8(w.Code))
	}
	return w, nil
}

// CancelRequest is the master-to-worker abort message: the master no
// longer wants the answer to the request it sent with the given
// sequence number on this connection — a speculative clone of the same
// partition already answered, or the batch is shutting down. A worker
// that is computing the request aborts its dynamic program and replies
// with a WorkerError frame carrying ErrCanceled (the master is waiting
// on the connection and needs a frame to resynchronize); a cancel for
// any other sequence number is ignored without a reply, because the
// response it raced has already been (or will be) sent.
type CancelRequest struct {
	// Seq is the sequence number of the request to abort (see
	// JobRequest.Seq).
	Seq uint32
}

// EncodeCancelRequest serializes a cancel frame.
func EncodeCancelRequest(c *CancelRequest) []byte {
	e := &encoder{}
	e.header(TagCancelRequest)
	e.u32(c.Seq)
	return e.buf
}

// DecodeCancelRequest parses a cancel frame.
func DecodeCancelRequest(b []byte) (*CancelRequest, error) {
	d := &decoder{b: b}
	d.header(TagCancelRequest)
	c := &CancelRequest{Seq: d.u32()}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return c, nil
}

// EncodeJobResponse serializes a response.
func EncodeJobResponse(r *JobResponse) []byte {
	e := &encoder{}
	e.header(TagJobResponse)
	e.u32(r.Seq)
	e.str(r.Err)
	encodeStats(e, r.Stats)
	e.u32(uint32(len(r.Plans)))
	for _, p := range r.Plans {
		encodePlanBody(e, p)
	}
	return e.buf
}

// DecodeJobResponse parses a response.
func DecodeJobResponse(b []byte) (*JobResponse, error) {
	d := &decoder{b: b}
	d.header(TagJobResponse)
	r := &JobResponse{}
	r.Seq = d.u32()
	r.Err = d.str()
	r.Stats = decodeStats(d)
	n := int(d.u32())
	if n > 1<<20 {
		d.fail("plan count %d too large", n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		p := decodePlanBody(d, 0)
		if p != nil {
			r.Plans = append(r.Plans, p)
		}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return r, nil
}
