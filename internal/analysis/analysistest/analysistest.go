// Package analysistest runs an analyzer over golden fixture packages,
// mirroring golang.org/x/tools/go/analysis/analysistest: fixture
// sources live under <analyzer>/testdata/src/<pkg>/, expected findings
// are `// want "regexp"` comments on the offending line, and
// //lint:allow directives are honored exactly as in production runs —
// so every fixture can demonstrate both a flagged and an allowed case.
//
// Fixture imports resolve against testdata/src first (so fixtures can
// stub repository packages like "plan" or "wire" at short import
// paths), then against the standard library via compiled export data.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"mpq/internal/analysis"
)

// Run loads the fixture package at testdata/src/<pkgPath> (relative to
// dir, conventionally "testdata"), applies the analyzer, and compares
// its findings against the fixture's // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	pkg, err := loadFixture(filepath.Join(dir, "src"), pkgPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", pkgPath, err)
	}
	findings, err := analysis.RunAnalyzer(pkg, a)
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, pkgPath, err)
	}
	expects := parseWants(t, pkg)

	matched := make([]bool, len(expects))
	for _, f := range findings {
		ok := false
		for i, w := range expects {
			if matched[i] || w.file != f.File || w.line != f.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for i, w := range expects {
		if !matched[i] {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// parseWants extracts `// want "re" ["re" ...]` comments. The
// expectation anchors to the comment's own line.
func parseWants(t *testing.T, pkg *analysis.Package) []want {
	t.Helper()
	var out []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				matches := wantRE.FindAllStringSubmatch(c.Text[idx:], -1)
				if len(matches) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range matches {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					out = append(out, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

// fixtureLoader type-checks fixture packages from source, resolving
// fixture-local imports recursively and standard-library imports from
// export data.
type fixtureLoader struct {
	srcRoot string
	fset    *token.FileSet
	pkgs    map[string]*analysis.Package
	std     types.Importer
}

func loadFixture(srcRoot, pkgPath string) (*analysis.Package, error) {
	fset := token.NewFileSet()
	l := &fixtureLoader{
		srcRoot: srcRoot,
		fset:    fset,
		pkgs:    map[string]*analysis.Package{},
		std:     importer.ForCompiler(fset, "gc", stdExportLookup),
	}
	return l.load(pkgPath)
}

func (l *fixtureLoader) load(pkgPath string) (*analysis.Package, error) {
	if pkg, ok := l.pkgs[pkgPath]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		full := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		names = append(names, full)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := analysis.NewTypesInfo()
	// Soft errors ("declared and not used", unused imports) are
	// tolerated: fixtures often deliberately leave a variable unused —
	// that is the very shape some analyzers flag.
	hardErr := false
	conf := types.Config{Error: func(err error) {
		if te, ok := err.(types.Error); ok && te.Soft {
			return
		}
		hardErr = true
	}}
	conf.Importer = importerFunc(func(path string) (*types.Package, error) {
		if st, err := os.Stat(filepath.Join(l.srcRoot, filepath.FromSlash(path))); err == nil && st.IsDir() {
			dep, err := l.load(path)
			if err != nil {
				return nil, err
			}
			return dep.Types, nil
		}
		return l.std.Import(path)
	})
	tpkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil && hardErr {
		return nil, fmt.Errorf("typecheck %s: %v", pkgPath, err)
	}
	pkg := &analysis.Package{
		PkgPath: pkgPath,
		Name:    tpkg.Name(),
		Dir:     dir,
		GoFiles: names,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	l.pkgs[pkgPath] = pkg
	return pkg, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Standard-library export data, discovered through `go list` once per
// import path and shared across all fixture loads in the process.
var (
	stdMu      sync.Mutex
	stdExports = map[string]string{}
)

func stdExportLookup(path string) (io.ReadCloser, error) {
	stdMu.Lock()
	defer stdMu.Unlock()
	if f, ok := stdExports[path]; ok {
		return os.Open(f)
	}
	out, err := exec.Command("go", "list", "-deps", "-export",
		"-f", "{{.ImportPath}}\t{{.Export}}", path).Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export %s: %v", path, err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		ip, export, ok := strings.Cut(line, "\t")
		if ok && export != "" {
			stdExports[ip] = export
		}
	}
	f, ok := stdExports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %s", path)
	}
	return os.Open(f)
}
