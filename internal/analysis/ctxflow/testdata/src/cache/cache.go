// Package cache exercises the ctxflow analyzer: its import path ends
// in "cache", one of the serving-path packages the cancellation
// invariant covers.
package cache

import "context"

// fetch is context-aware work: its first parameter is a context.
func fetch(ctx context.Context, key string) (string, error) {
	return key, ctx.Err()
}

// Refresh calls context-aware fetch without accepting a context:
// cancellation cannot reach the blocking work. Flagged.
func Refresh(key string) error { // want "exported Refresh calls context-aware fetch but does not accept a context.Context"
	_, err := fetch(context.TODO(), key) // want "context.TODO.. severs the caller"
	return err
}

// Detached mints a root context in a library package. Flagged even
// though the function itself takes one.
func Detached(ctx context.Context, key string) error {
	_, err := fetch(context.Background(), key) // want "context.Background.. severs the caller"
	return err
}

// RefreshContext threads its context into fetch: compliant.
func RefreshContext(ctx context.Context, key string) error {
	_, err := fetch(ctx, key)
	return err
}

// refreshAll is unexported; only exported API is required to accept a
// context (callers inside the package thread one to fetch themselves).
func refreshAll(keys []string) {
	for _, k := range keys {
		_, _ = fetch(nil, k)
	}
}

// Size does no context-aware work: no context needed.
func Size() int { return 0 }

// store is an unexported type; its exported methods are not API
// surface, so BestEffort is not flagged.
type store struct{}

func (s *store) BestEffort(key string) {
	_, _ = fetch(nil, key)
}

// Conn's Close is pinned by io.Closer: exempt by method name.
type Conn struct{}

func (c *Conn) Close() error {
	_, err := fetch(nil, "flush")
	return err
}

// Refresh on Legacy reproduces the deprecated-wrapper shape from the
// real tree with a reasoned exception: both the missing-context finding
// (on this line) and the Background call (next line) are suppressed by
// the one directive.
type Legacy struct{}

func (l *Legacy) Refresh(key string) error { //lint:allow ctxflow fixture: deprecated no-ctx wrapper kept for API compatibility
	_, err := fetch(context.Background(), key)
	return err
}
