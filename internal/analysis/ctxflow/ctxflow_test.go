package ctxflow_test

import (
	"testing"

	"mpq/internal/analysis/analysistest"
	"mpq/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "cache")
}
