// Package ctxflow enforces the repository's cancellation invariant
// (established in PR 4): in the serving-path packages — netrun, server,
// cluster and cache — contexts must flow through every blocking path.
// Concretely, context.Background() and context.TODO() are forbidden in
// these library packages (a detached context severs the caller's
// cancellation chain), and an exported function that calls
// context-aware code must itself accept a context.Context to thread
// into it.
package ctxflow

import (
	"go/ast"
	"go/types"

	"mpq/internal/analysis"
)

// Analyzer is the ctxflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: `contexts must thread through the serving-path packages

In netrun, server, cluster and cache: calls to context.Background or
context.TODO are forbidden (only main packages and tests may mint root
contexts), and every exported function that calls a context-taking
function must accept a context.Context parameter so cancellation can
reach the blocking work.`,
	Run: run,
}

// targetPkgs are the serving-path packages the invariant covers,
// matched by the last element of the package path.
var targetPkgs = []string{"netrun", "server", "cluster", "cache"}

// interfaceMethods are conventional method names pinned by interfaces
// whose contracts have no context parameter; flagging them would force
// signature breaks on io.Closer, fmt.Stringer, error and http.Handler
// implementations.
var interfaceMethods = map[string]bool{
	"Close":     true,
	"String":    true,
	"Error":     true,
	"ServeHTTP": true,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	target := false
	for _, name := range targetPkgs {
		if analysis.PkgNameIs(pass.Pkg, name) {
			target = true
			break
		}
	}
	if !target {
		return nil, nil
	}

	// Rule 1: no detached root contexts anywhere in the package.
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pass, call); fn != nil &&
			analysis.PkgNameIs(fn.Pkg(), "context") &&
			(fn.Name() == "Background" || fn.Name() == "TODO") {
			pass.Reportf(call.Pos(),
				"context.%s() severs the caller's cancellation chain; thread a context.Context through instead (root contexts belong to main and tests)",
				fn.Name())
		}
		return true
	})

	// Rule 2: exported functions that call context-aware code must
	// accept a context themselves.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if interfaceMethods[fd.Name.Name] {
				continue
			}
			if recv := receiverNamed(pass, fd); recv != nil && !recv.Obj().Exported() {
				continue // method on an unexported type: not API surface
			}
			if hasCtxParam(pass, fd) {
				continue
			}
			if callee := firstCtxCall(pass, fd.Body); callee != nil {
				pass.Reportf(fd.Name.Pos(),
					"exported %s calls context-aware %s but does not accept a context.Context; accept one and thread it through",
					fd.Name.Name, callee.Name())
			}
		}
	}
	return nil, nil
}

// calleeFunc resolves a call to the *types.Func it invokes, or nil for
// indirect calls, conversions and builtins.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// hasCtxParam reports whether any parameter of fd is a context.Context.
func hasCtxParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok {
			if _, ok := analysis.NamedTypeIn(tv.Type, "context", "Context"); ok {
				return true
			}
		}
	}
	return false
}

// receiverNamed returns the named type of fd's receiver, if any.
func receiverNamed(pass *analysis.Pass, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// firstCtxCall returns the callee of the first direct call in body
// whose signature's first parameter is a context.Context — evidence
// the function does context-aware (typically blocking) work. Function
// literals are included: a goroutine the function launches still does
// its work on the caller's behalf.
func firstCtxCall(pass *analysis.Pass, body *ast.BlockStmt) *types.Func {
	var found *types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Params().Len() == 0 {
			return true
		}
		if _, ok := analysis.NamedTypeIn(sig.Params().At(0).Type(), "context", "Context"); ok {
			found = fn
			return false
		}
		return true
	})
	return found
}
