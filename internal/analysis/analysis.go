// Package analysis is a self-contained, stdlib-only analogue of
// golang.org/x/tools/go/analysis: a tiny framework for writing
// type-checked static analyzers plus a driver that loads packages
// through `go list`, type-checks them, runs a suite of analyzers and
// honors `//lint:allow <analyzer> <reason>` suppression directives.
//
// It exists because this repository upholds invariants no stock tool
// checks — arena-allocated plan nodes must not escape a pooled
// dp.Runtime, multi-mutex structs must acquire locks in one global
// order, contexts must flow through every blocking path, and every
// wire.Tag dispatch switch must account for every frame kind — and the
// build environment is fully offline (no module proxy), so the real
// x/tools module cannot be a dependency. The API deliberately mirrors
// go/analysis (Analyzer, Pass, Diagnostic) so the analyzers port
// mechanically if the dependency ever becomes available.
//
// See docs/static-analysis.md for the catalogue of analyzers, the
// directive format, and how the suite is wired into CI.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static analysis: a name diagnostics are
// attributed to (and that //lint:allow directives reference), a doc
// string shown by `mpqlint -list`, and the Run function.
type Analyzer struct {
	// Name identifies the analyzer. It must be a valid Go identifier in
	// lower case; it appears in diagnostics and allow directives.
	Name string
	// Doc is the analyzer's documentation: one summary line, then a
	// blank line, then the invariant it enforces.
	Doc string
	// Run applies the analyzer to one package. It reports findings via
	// pass.Report/Reportf. The result value is unused by the driver and
	// exists only for API symmetry with go/analysis.
	Run func(*Pass) (any, error)
}

// A Pass provides one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report records a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf records a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// PkgNameIs reports whether the package path's last element is name.
// Analyzers match the repository's packages this way (for example
// "mpq/internal/plan" by "plan") so the same analyzer works unchanged
// against the analysistest fixture trees, whose packages live at short
// import paths like "plan".
func PkgNameIs(pkg *types.Package, name string) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	if path == name {
		return true
	}
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:] == name
		}
	}
	return false
}

// NamedTypeIn reports whether t (after stripping pointers and aliases)
// is the named type pkgName.typeName, matching the package by
// PkgNameIs. It returns the named type when it matches.
func NamedTypeIn(t types.Type, pkgName, typeName string) (*types.Named, bool) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Alias:
			t = types.Unalias(t)
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	obj := named.Obj()
	if obj.Name() != typeName || !PkgNameIs(obj.Pkg(), pkgName) {
		return nil, false
	}
	return named, true
}
