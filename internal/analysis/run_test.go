package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// demoSrc exercises every branch of the //lint:allow lifecycle with a
// demo analyzer that reports once per function declaration.
const demoSrc = `package demo

func trailing() int { return 1 } //lint:allow demo trailing directives cover their own line

//lint:allow demo a directive on its own line covers the next line
func nextline() int { return 2 }

func unsuppressed() int { return 3 }

//lint:allow demo
func missingreason() int { return 4 }

//lint:allow nosuch reasons do not save an unknown analyzer name
func unknown() int { return 5 }

//lint:allow demo this one is stale: the demo analyzer reports nothing below

var alive = 6
`

func demoPackage(t *testing.T) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "demo.go", demoSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewTypesInfo()
	tpkg, err := (&types.Config{}).Check("demo", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{
		PkgPath: "demo", Name: "demo", GoFiles: []string{"demo.go"},
		Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info,
	}
}

// demoAnalyzer reports one finding per function declaration, at the
// function's name.
var demoAnalyzer = &Analyzer{
	Name: "demo",
	Doc:  "reports every function declaration (test analyzer)",
	Run: func(pass *Pass) (any, error) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Name.Pos(), "function %s declared", fd.Name.Name)
				}
			}
		}
		return nil, nil
	},
}

func TestRunSuiteDirectiveLifecycle(t *testing.T) {
	pkg := demoPackage(t)
	findings, err := RunSuite(pkg, []*Analyzer{demoAnalyzer})
	if err != nil {
		t.Fatal(err)
	}

	var got []string
	for _, f := range findings {
		got = append(got, f.Analyzer+": "+f.Message)
	}

	// Suppressed: trailing (same line), nextline (directive above).
	for _, name := range []string{"trailing", "nextline"} {
		if containsSubstring(got, "function "+name+" declared") {
			t.Errorf("finding for %s should be suppressed; got %v", name, got)
		}
	}
	// Kept: unsuppressed; missingreason and unknown keep their findings
	// because their directives are invalid.
	for _, name := range []string{"unsuppressed", "missingreason", "unknown"} {
		if !containsSubstring(got, "function "+name+" declared") {
			t.Errorf("finding for %s should survive; got %v", name, got)
		}
	}
	// Directive hygiene findings, attributed to the pseudo-analyzer.
	for _, wantMsg := range []string{
		"missing its reason",
		`unknown analyzer "nosuch"`,
		"suppresses nothing here; delete the stale exception",
	} {
		if !containsSubstring(got, wantMsg) {
			t.Errorf("expected a %s finding matching %q; got %v", DirectiveAnalyzer, wantMsg, got)
		}
	}
	for _, f := range findings {
		if strings.Contains(f.Message, "lint:allow") && f.Analyzer != DirectiveAnalyzer {
			t.Errorf("directive finding misattributed to %s: %s", f.Analyzer, f.Message)
		}
	}
}

// TestRunAnalyzerSkipsDirectiveHygiene pins the analysistest contract:
// single-analyzer runs honor suppression but do not report directive
// hygiene (a fixture for one analyzer may carry allows for others).
func TestRunAnalyzerSkipsDirectiveHygiene(t *testing.T) {
	pkg := demoPackage(t)
	findings, err := RunAnalyzer(pkg, demoAnalyzer)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Analyzer == DirectiveAnalyzer {
			t.Errorf("RunAnalyzer reported directive hygiene: %s", f)
		}
		if strings.Contains(f.Message, "trailing") || strings.Contains(f.Message, "nextline") {
			t.Errorf("suppressed finding leaked: %s", f)
		}
	}
}

func containsSubstring(haystack []string, sub string) bool {
	for _, s := range haystack {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}
