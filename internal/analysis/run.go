package analysis

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// A Finding is one diagnostic resolved to a file position, attributed
// to the analyzer that produced it.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}

// DirectiveAnalyzer is the pseudo-analyzer name attributed to findings
// about the //lint:allow directives themselves (malformed, unknown
// analyzer, suppressing nothing). Directive hygiene findings cannot be
// suppressed.
const DirectiveAnalyzer = "directive"

// directive is one parsed //lint:allow comment.
type directive struct {
	analyzer  string
	reason    string
	file      string
	line      int
	finding   Finding // position info for hygiene reports
	malformed string  // non-empty if the directive does not parse
	used      bool
}

// allowPrefix is the comment form the driver honors:
//
//	//lint:allow <analyzer> <reason>
//
// The directive suppresses that analyzer's findings on its own line
// (trailing comment) and on the immediately following line (comment on
// its own line above the code). The reason is mandatory: an exception
// without a recorded justification is itself a finding.
const allowPrefix = "//lint:allow"

// parseDirectives extracts every //lint:allow directive in the package.
func parseDirectives(pkg *Package) []*directive {
	var ds []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := &directive{
					file: pos.Filename,
					line: pos.Line,
					finding: Finding{
						Analyzer: DirectiveAnalyzer,
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
					},
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowance — not our directive
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.malformed = "malformed directive: want //lint:allow <analyzer> <reason>"
				case len(fields) == 1:
					d.malformed = fmt.Sprintf("//lint:allow %s is missing its reason: every exception must say why it is safe", fields[0])
				default:
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				ds = append(ds, d)
			}
		}
	}
	return ds
}

// runOne applies one analyzer to one package and returns its raw
// findings (before suppression).
func runOne(pkg *Package, a *Analyzer) ([]Finding, error) {
	var out []Finding
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		report: func(d Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			out = append(out, Finding{
				Analyzer: a.Name,
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Message:  d.Message,
			})
		},
	}
	if _, err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
	}
	return out, nil
}

// suppress drops findings covered by a matching allow directive,
// marking the directives it honors as used.
func suppress(findings []Finding, ds []*directive) []Finding {
	kept := findings[:0]
	for _, f := range findings {
		allowed := false
		for _, d := range ds {
			if d.malformed != "" || d.analyzer != f.Analyzer || d.file != f.File {
				continue
			}
			if d.line == f.Line || d.line == f.Line-1 {
				d.used = true
				allowed = true
			}
		}
		if !allowed {
			kept = append(kept, f)
		}
	}
	return kept
}

// RunAnalyzer runs a single analyzer over pkg, honoring //lint:allow
// directives for that analyzer. This is the entry point analysistest
// uses, so fixtures exercise the same suppression path production runs
// do.
func RunAnalyzer(pkg *Package, a *Analyzer) ([]Finding, error) {
	findings, err := runOne(pkg, a)
	if err != nil {
		return nil, err
	}
	findings = suppress(findings, parseDirectives(pkg))
	sortFindings(findings)
	return findings, nil
}

// RunSuite runs every analyzer over pkg, applies suppression, and
// appends directive-hygiene findings: malformed directives, directives
// naming an analyzer the suite does not contain, and directives that
// suppressed nothing (stale exceptions must be deleted, not
// accumulated).
func RunSuite(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	known := map[string]bool{}
	var all []Finding
	ds := parseDirectives(pkg)
	for _, a := range analyzers {
		known[a.Name] = true
		findings, err := runOne(pkg, a)
		if err != nil {
			return nil, err
		}
		all = append(all, suppress(findings, ds)...)
	}
	for _, d := range ds {
		f := d.finding
		switch {
		case d.malformed != "":
			f.Message = d.malformed
		case !known[d.analyzer]:
			f.Message = fmt.Sprintf("//lint:allow names unknown analyzer %q", d.analyzer)
		case !d.used:
			f.Message = fmt.Sprintf("//lint:allow %s suppresses nothing here; delete the stale exception", d.analyzer)
		default:
			continue
		}
		all = append(all, f)
	}
	sortFindings(all)
	return all, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Inspect walks every file in the pass, calling fn for each node; fn
// returning false prunes the subtree. It is the lightweight stand-in
// for x/tools' inspect pass.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
