// Package nilness is a stdlib-only, syntactic approximation of the
// upstream go/analysis "nilness" pass (the build environment is
// offline, so golang.org/x/tools and its SSA-based analysis cannot be
// vendored): it reports pointer dereferences on paths where a nil
// check proves the pointer is nil.
package nilness

import (
	"go/ast"
	"go/token"
	"go/types"

	"mpq/internal/analysis"
)

// Analyzer is the nilness analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "nilness",
	Doc: `no dereference of a pointer proven nil

Reports two shapes: a field access or dereference of p inside
"if p == nil { ... }", and a field access or dereference of p after
"if p != nil { return ... }" terminated the non-nil path. Both are
guaranteed nil dereferences. Method calls are not flagged (many types
document nil-receiver behavior).`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	pass.Inspect(func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		obj, op := nilCheckedObj(pass, ifs.Cond)
		if obj == nil {
			return true
		}
		if op == token.EQL {
			// if p == nil { ... p.f ... }
			reportNilUses(pass, ifs.Body, obj)
		}
		return true
	})

	// if p != nil { return } followed by p.f in the same block.
	pass.Inspect(func(n ast.Node) bool {
		block, ok := blockOf(n)
		if !ok {
			return true
		}
		for i, stmt := range block {
			ifs, ok := stmt.(*ast.IfStmt)
			if !ok || ifs.Else != nil {
				continue
			}
			obj, op := nilCheckedObj(pass, ifs.Cond)
			if obj == nil || op != token.NEQ || !terminates(ifs.Body.List) {
				continue
			}
			// After this statement, obj is provably nil until reassigned.
			for _, later := range block[i+1:] {
				if reassigns(pass, later, obj) {
					break
				}
				reportNilUses(pass, later, obj)
			}
		}
		return true
	})
	return nil, nil
}

// nilCheckedObj matches "x == nil" / "x != nil" (either side) where x
// is a pointer-typed identifier, returning its object and the operator.
func nilCheckedObj(pass *analysis.Pass, cond ast.Expr) (types.Object, token.Token) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return nil, 0
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	if isNil(pass, x) {
		x, y = y, x
	} else if !isNil(pass, y) {
		return nil, 0
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, 0
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil, 0
	}
	if _, isPtr := obj.Type().Underlying().(*types.Pointer); !isPtr {
		return nil, 0
	}
	return obj, bin.Op
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// reportNilUses flags field accesses and dereferences of obj within n,
// stopping at reassignments and closures (which may run later, after
// obj changed).
func reportNilUses(pass *analysis.Pass, n ast.Node, obj types.Object) {
	stop := false
	ast.Inspect(n, func(m ast.Node) bool {
		if stop {
			return false
		}
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					stop = true
					return false
				}
			}
		case *ast.SelectorExpr:
			id, ok := ast.Unparen(x.X).(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] != obj {
				return true
			}
			// Only guaranteed-panic shapes: struct field access through
			// the nil pointer. Method values/calls are excluded.
			if sel, ok := pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
				pass.Reportf(x.Pos(), "field access %s.%s dereferences a pointer proven nil by the enclosing check", id.Name, x.Sel.Name)
			}
		case *ast.StarExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				pass.Reportf(x.Pos(), "dereference of %s, which the enclosing check proves is nil", id.Name)
			}
		}
		return true
	})
}

// reassigns reports whether stmt assigns to obj.
func reassigns(pass *analysis.Pass, stmt ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range asg.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

func blockOf(n ast.Node) ([]ast.Stmt, bool) {
	switch b := n.(type) {
	case *ast.BlockStmt:
		return b.List, true
	case *ast.CaseClause:
		return b.Body, true
	case *ast.CommClause:
		return b.Body, true
	}
	return nil, false
}

// terminates reports whether the statement list always leaves the
// enclosing function (return or panic).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	}
	return false
}
