package nilness_test

import (
	"testing"

	"mpq/internal/analysis/analysistest"
	"mpq/internal/analysis/nilness"
)

func TestNilness(t *testing.T) {
	analysistest.Run(t, "testdata", nilness.Analyzer, "nilcheck")
}
