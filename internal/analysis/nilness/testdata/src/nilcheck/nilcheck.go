// Package nilcheck exercises the nilness analyzer: no dereference of a
// pointer a dominating check proves nil.
package nilcheck

type node struct {
	next *node
	val  int
}

// insideNilBranch dereferences p inside its own nil branch: flagged.
func insideNilBranch(p *node) int {
	if p == nil {
		return p.val // want "field access p.val dereferences a pointer proven nil"
	}
	return p.val
}

// starDeref dereferences through * in the nil branch: flagged.
func starDeref(p *node) node {
	if nil == p {
		return *p // want "dereference of p, which the enclosing check proves is nil"
	}
	return *p
}

// afterTerminatingCheck uses p after "if p != nil { return }" removed
// every non-nil path: flagged.
func afterTerminatingCheck(p *node) int {
	if p != nil {
		return p.val
	}
	return p.val // want "field access p.val dereferences a pointer proven nil"
}

// reassigned gives p a new value inside the nil branch before the use:
// compliant.
func reassigned(p *node) int {
	if p == nil {
		p = &node{}
		return p.val
	}
	return p.val
}

// reassignedAfter gives p a new value after the terminating check:
// compliant.
func reassignedAfter(p *node) int {
	if p != nil {
		return p.val
	}
	p = &node{val: 1}
	return p.val
}

// closureUse defers the dereference to a closure that runs after p may
// have changed: out of scope, compliant.
func closureUse(p *node) func() int {
	if p == nil {
		return func() int {
			if p == nil {
				return 0
			}
			return p.val
		}
	}
	return func() int { return p.val }
}

// allowedProbe dereferences a proven-nil pointer on purpose (the
// fixture's stand-in for a crash-on-corruption probe), so it carries an
// allow directive.
func allowedProbe(p *node) int {
	if p == nil {
		return p.val //lint:allow nilness fixture: deliberate crash probe on corrupted state
	}
	return p.val
}
