// Package locks exercises the copylocks analyzer: values containing a
// sync lock must not be copied.
package locks

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

type registry struct {
	byName map[string]counter
	all    []counter
}

// byValueParam passes a lock-bearing struct by value: flagged.
func byValueParam(c counter) int { // want "parameter passes a value containing sync.Mutex by value"
	return c.n
}

// byValueReceiver copies the lock on every call: flagged.
func (c counter) bump() { // want "receiver passes a value containing sync.Mutex by value"
	c.n++
}

// byValueResult returns a lock-bearing struct by value: flagged.
func byValueResult() (c counter) { // want "result passes a value containing sync.Mutex by value"
	return
}

// assignCopy copies an existing value: flagged.
func assignCopy(r *registry) {
	c := r.all[0] // want "assignment copies a value containing sync.Mutex"
	_ = c.n
}

// rangeCopy copies one per iteration: flagged.
func rangeCopy(r *registry) int {
	total := 0
	for _, c := range r.all { // want "range clause copies a value containing sync.Mutex per iteration"
		total += c.n
	}
	return total
}

// pointers never copy the lock: compliant.
func pointers(cs []*counter) int {
	total := 0
	for _, c := range cs {
		c.mu.Lock()
		total += c.n
		c.mu.Unlock()
	}
	return total
}

// freshValue creates a new value rather than copying a used one:
// compliant (composite literals are not copies).
func freshValue() *counter {
	c := counter{}
	return &c
}

// allowedCopy is the reasoned exception: the value is copied before
// any goroutine can have touched its lock (the fixture's stand-in for
// an init-time snapshot), so the copy carries an allow directive.
func allowedCopy(tmpl counter) counter { //lint:allow copylocks fixture: init-time snapshot taken before the lock is ever used
	c := tmpl //lint:allow copylocks fixture: init-time snapshot taken before the lock is ever used
	return c
}
