package copylocks_test

import (
	"testing"

	"mpq/internal/analysis/analysistest"
	"mpq/internal/analysis/copylocks"
)

func TestCopyLocks(t *testing.T) {
	analysistest.Run(t, "testdata", copylocks.Analyzer, "locks")
}
