// Package copylocks is a stdlib-only port of the upstream
// go/analysis "copylocks" pass (the build environment is offline, so
// golang.org/x/tools cannot be vendored): it reports values containing
// a sync lock — Mutex, RWMutex, WaitGroup, Once, Cond, Pool, Map — that
// are copied by value, which silently forks the lock state.
package copylocks

import (
	"go/ast"
	"go/types"

	"mpq/internal/analysis"
)

// Analyzer is the copylocks analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "copylocks",
	Doc: `locks must not be copied by value

Reports function parameters, results, receivers, assignments and range
clauses that copy a value containing a sync.Mutex (or RWMutex,
WaitGroup, Once, Cond, Pool, Map): the copy forks the lock state and
both halves believe they own it.`,
	Run: run,
}

// lockTypes are the sync types that must never be copied once used.
var lockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

// containsLock reports whether t holds a lock by value, and names the
// offending type.
func containsLock(t types.Type, seen map[types.Type]bool) (string, bool) {
	if seen[t] {
		return "", false
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Alias:
		return containsLock(types.Unalias(t), seen)
	case *types.Named:
		if obj := u.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypes[obj.Name()] {
			return "sync." + obj.Name(), true
		}
		return containsLock(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name, ok := containsLock(u.Field(i).Type(), seen); ok {
				return name, true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return "", false
}

func run(pass *analysis.Pass) (any, error) {
	lockName := func(t types.Type) (string, bool) {
		return containsLock(t, map[types.Type]bool{})
	}

	checkFieldList(pass, lockName)

	pass.Inspect(func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				if !copiesValue(rhs) {
					continue
				}
				tv, ok := pass.TypesInfo.Types[rhs]
				if !ok {
					continue
				}
				if name, bad := lockName(tv.Type); bad {
					pass.Reportf(rhs.Pos(), "assignment copies a value containing %s; use a pointer", name)
				}
			}
		case *ast.RangeStmt:
			if s.Value == nil {
				return true
			}
			// In the := form the value ident is a definition, recorded in
			// Defs rather than Types.
			var t types.Type
			if tv, ok := pass.TypesInfo.Types[s.Value]; ok {
				t = tv.Type
			} else if id, ok := s.Value.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					t = obj.Type()
				}
			}
			if t == nil {
				return true
			}
			if name, bad := lockName(t); bad {
				pass.Reportf(s.Value.Pos(), "range clause copies a value containing %s per iteration; range over indices or pointers", name)
			}
		}
		return true
	})
	return nil, nil
}

// copiesValue reports whether reading e copies an existing value (as
// opposed to creating a fresh one via a composite literal or call).
func copiesValue(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// checkFieldList flags by-value lock types in every function
// signature: parameters, results and receivers.
func checkFieldList(pass *analysis.Pass, lockName func(types.Type) (string, bool)) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := pass.TypesInfo.Types[field.Type]
			if !ok {
				continue
			}
			if name, bad := lockName(tv.Type); bad {
				pass.Reportf(field.Type.Pos(), "%s passes a value containing %s by value; use a pointer", what, name)
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			check(fd.Recv, "receiver")
			check(fd.Type.Params, "parameter")
			check(fd.Type.Results, "result")
		}
	}
}
