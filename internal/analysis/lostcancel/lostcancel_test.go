package lostcancel_test

import (
	"testing"

	"mpq/internal/analysis/analysistest"
	"mpq/internal/analysis/lostcancel"
)

func TestLostCancel(t *testing.T) {
	analysistest.Run(t, "testdata", lostcancel.Analyzer, "cancels")
}
