// Package cancels exercises the lostcancel analyzer: the CancelFunc
// returned by a deriving context constructor must be used.
package cancels

import (
	"context"
	"time"
)

// discarded assigns the cancel function to the blank identifier:
// flagged.
func discarded(parent context.Context) context.Context {
	ctx, _ := context.WithCancel(parent) // want "the cancel function returned by context.WithCancel is discarded"
	return ctx
}

// unused names the cancel function but never references it: flagged.
func unused(parent context.Context) error {
	ctx, cancel := context.WithTimeout(parent, time.Second) // want "the cancel function returned by context.WithTimeout is never used"
	return ctx.Err()
}

// deferred releases the context on every path: compliant.
func deferred(parent context.Context) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	return ctx.Err()
}

// handedOff passes the cancel function along; the receiver owns the
// release. Compliant.
func handedOff(parent context.Context, sink func(context.CancelFunc)) context.Context {
	ctx, cancel := context.WithDeadline(parent, time.Now().Add(time.Second))
	sink(cancel)
	return ctx
}

// allowedLeak is the reasoned exception: the derived context lives for
// the whole process (the fixture's stand-in for a root pinned by a
// daemon), so the unused cancel carries an allow directive.
func allowedLeak(parent context.Context) context.Context {
	ctx, cancel := context.WithCancel(parent) //lint:allow lostcancel fixture: process-lifetime context, released only at exit
	return ctx
}
