// Package lostcancel is a stdlib-only port of the upstream
// go/analysis "lostcancel" pass (the build environment is offline, so
// golang.org/x/tools cannot be vendored): the CancelFunc returned by
// context.WithCancel, WithTimeout, WithDeadline or WithCancelCause
// must not be discarded — an unreleased context leaks its timer and
// its parent's cancellation registration.
package lostcancel

import (
	"go/ast"
	"go/types"

	"mpq/internal/analysis"
)

// Analyzer is the lostcancel analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lostcancel",
	Doc: `the cancel function of a derived context must be used

Reports context.WithCancel/WithTimeout/WithDeadline/WithCancelCause
calls whose returned cancel function is assigned to the blank
identifier or never referenced again: call it (usually with defer) on
every path, or the derived context leaks.`,
	Run: run,
}

// deriving are the context constructors returning a CancelFunc.
var deriving = map[string]bool{
	"WithCancel": true, "WithTimeout": true,
	"WithDeadline": true, "WithCancelCause": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 2 || len(asg.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || !analysis.PkgNameIs(fn.Pkg(), "context") || !deriving[fn.Name()] {
			return true
		}
		cancelIdent, ok := ast.Unparen(asg.Lhs[1]).(*ast.Ident)
		if !ok {
			return true
		}
		if cancelIdent.Name == "_" {
			pass.Reportf(cancelIdent.Pos(),
				"the cancel function returned by context.%s is discarded; the derived context can never be released", fn.Name())
			return true
		}
		obj := pass.TypesInfo.Defs[cancelIdent]
		if obj == nil {
			// Re-assignment into an existing variable: its other uses
			// are the caller's responsibility.
			return true
		}
		if !usedElsewhere(pass, fd.Body, obj, cancelIdent) {
			pass.Reportf(cancelIdent.Pos(),
				"the cancel function returned by context.%s is never used; call it (usually: defer %s()) or the derived context leaks", fn.Name(), cancelIdent.Name)
		}
		return true
	})
}

// usedElsewhere reports whether obj is referenced anywhere in body
// other than its defining identifier.
func usedElsewhere(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object, def *ast.Ident) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id == def {
			return true
		}
		if pass.TypesInfo.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}
