package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpq/internal/analysis/suite"
)

// TestEveryAnalyzerShipsFixtures enforces the suite's own hygiene: an
// analyzer registered in suite.All() must ship golden fixtures that
// demonstrate both a flagged case (a `// want` expectation) and a
// deliberate exception (a `//lint:allow <name>` directive), plus the
// analysistest runner that executes them. An analyzer nobody can see
// fire — or nobody knows how to silence — does not belong in the
// blocking CI gate.
func TestEveryAnalyzerShipsFixtures(t *testing.T) {
	analyzers := suite.All()
	if len(analyzers) == 0 {
		t.Fatal("suite.All() is empty")
	}
	seen := map[string]bool{}
	for _, a := range analyzers {
		if a.Name == "" {
			t.Fatal("analyzer with empty name registered")
		}
		if seen[a.Name] {
			t.Fatalf("analyzer name %q registered twice", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("%s: empty Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("%s: nil Run", a.Name)
		}

		dir := a.Name // internal/analysis/<name>, relative to this test
		if _, err := os.Stat(filepath.Join(dir, a.Name+"_test.go")); err != nil {
			t.Errorf("%s: missing analysistest runner %s/%s_test.go: %v", a.Name, dir, a.Name, err)
			continue
		}
		wants, allows := scanFixtures(t, filepath.Join(dir, "testdata", "src"), a.Name)
		if wants == 0 {
			t.Errorf("%s: no `// want` expectation in any fixture under %s/testdata/src — the analyzer never demonstrably fires", a.Name, dir)
		}
		if allows == 0 {
			t.Errorf("%s: no `//lint:allow %s` directive in any fixture under %s/testdata/src — the suppression path is untested", a.Name, a.Name, dir)
		}
	}
}

// scanFixtures counts want expectations and allow directives for the
// named analyzer across every fixture source file.
func scanFixtures(t *testing.T, root, name string) (wants, allows int) {
	t.Helper()
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		src := string(data)
		wants += strings.Count(src, "// want ")
		allows += strings.Count(src, "//lint:allow "+name+" ")
		return nil
	})
	if err != nil {
		t.Errorf("%s: walking fixtures: %v", name, err)
	}
	return wants, allows
}
