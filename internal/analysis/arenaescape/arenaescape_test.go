package arenaescape_test

import (
	"testing"

	"mpq/internal/analysis/analysistest"
	"mpq/internal/analysis/arenaescape"
)

func TestArenaEscape(t *testing.T) {
	analysistest.Run(t, "testdata", arenaescape.Analyzer, "pooluser")
}

// TestArenaItselfExempt runs the analyzer over the plan stub: Arena
// methods return their own nodes by design and must not be flagged.
func TestArenaItselfExempt(t *testing.T) {
	analysistest.Run(t, "testdata", arenaescape.Analyzer, "plan")
}
