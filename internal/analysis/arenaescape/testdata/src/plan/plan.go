// Package plan is a fixture stub of the repository's internal/plan:
// the Arena constructor API and CloneTree, which is all the
// arenaescape analyzer consults.
package plan

// Node is one operator of a join tree.
type Node struct {
	Left, Right *Node
	Table       int
}

// Arena bulk-allocates nodes; Reset invalidates everything it handed
// out.
type Arena struct {
	nodes []Node
}

// Scan returns an arena-owned leaf. Arena methods returning their own
// nodes are the constructor API itself and are exempt inside plan.
func (a *Arena) Scan(table int) *Node {
	a.nodes = append(a.nodes, Node{Table: table})
	return &a.nodes[len(a.nodes)-1]
}

// Join returns an arena-owned inner node.
func (a *Arena) Join(l, r *Node) *Node {
	a.nodes = append(a.nodes, Node{Left: l, Right: r})
	return &a.nodes[len(a.nodes)-1]
}

// Reset invalidates every node the arena has produced.
func (a *Arena) Reset() { a.nodes = a.nodes[:0] }

// CloneTree deep-copies a tree out of its arena: the sanctioned escape.
func CloneTree(n *Node) *Node {
	if n == nil {
		return nil
	}
	return &Node{Left: CloneTree(n.Left), Right: CloneTree(n.Right), Table: n.Table}
}
