// Package pooluser exercises the arenaescape analyzer: nodes produced
// by plan.Arena constructors must not outlive the run that allocated
// them — no field stores, returns or channel sends without a
// plan.CloneTree deep copy.
package pooluser

import "plan"

type solver struct {
	best  *plan.Node
	memo  map[int]*plan.Node
	arena plan.Arena
}

// storeField stores an arena node to a struct field: flagged.
func (s *solver) storeField() {
	n := s.arena.Scan(1)
	s.best = n // want "arena-allocated plan node is stored to a struct field"
}

// storeElem stores one to a map element: flagged.
func (s *solver) storeElem() {
	n := s.arena.Join(s.arena.Scan(1), s.arena.Scan(2))
	s.memo[1] = n // want "arena-allocated plan node is stored to a slice or map element"
}

// returnNode returns one: flagged, including taint through locals.
func (s *solver) returnNode() *plan.Node {
	x := s.arena.Scan(3)
	y := x
	return y // want "arena-allocated plan node is returned"
}

// sendNode sends one on a channel: flagged.
func (s *solver) sendNode(out chan *plan.Node) {
	out <- s.arena.Scan(4) // want "arena-allocated plan node is sent on a channel"
}

// cloneOut deep-copies before every escape: compliant.
func (s *solver) cloneOut(out chan *plan.Node) *plan.Node {
	n := s.arena.Join(s.arena.Scan(1), s.arena.Scan(2))
	s.best = plan.CloneTree(n)
	out <- plan.CloneTree(n)
	return plan.CloneTree(n)
}

// localOnly keeps arena nodes local to the run: compliant.
func (s *solver) localOnly() int {
	n := s.arena.Join(s.arena.Scan(1), s.arena.Scan(2))
	depth := 0
	for n != nil {
		depth++
		n = n.Left
	}
	return depth
}

// allowedEscape is the reasoned exception: the field is cleared before
// the arena's next Reset (the fixture's stand-in for an audited
// same-run scratch slot), so the store carries an allow directive.
func (s *solver) allowedEscape() {
	n := s.arena.Scan(9)
	s.best = n //lint:allow arenaescape fixture: scratch slot cleared before the arena resets
	s.best = nil
}
