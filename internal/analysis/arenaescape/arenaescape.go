// Package arenaescape enforces the repository's arena-pooling
// invariant (docs/perf.md §"pooling safety"): plan nodes allocated
// from a plan.Arena live only until the arena's next Reset, and a
// pooled dp.Runtime resets its arena on every borrow. A node produced
// by an arena constructor therefore must not outlive the current run:
// it must not be stored to a field, returned, or sent on a channel
// unless it is first deep-copied out via plan.CloneTree (dp.Engine's
// Finish is the audited wrapper that does exactly this for result
// plans).
package arenaescape

import (
	"go/ast"
	"go/types"

	"mpq/internal/analysis"
)

// Analyzer is the arenaescape analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "arenaescape",
	Doc: `arena-allocated plan nodes must not escape without CloneTree

Values produced by plan.Arena constructors (Scan, Join,
JoinWithScalars) are invalidated by the arena's next Reset. Storing
one to a struct field, returning it, or sending it on a channel lets
it outlive the run that allocated it; route such escapes through
plan.CloneTree (or dp.Engine.Finish) instead. Functions with a
plan.Arena receiver are exempt: the arena returning its own nodes is
the constructor API itself.`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if recvIsArena(pass, fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// recvIsArena reports whether fd is a method on plan.Arena itself.
func recvIsArena(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]
	if !ok {
		return false
	}
	_, isArena := analysis.NamedTypeIn(tv.Type, "plan", "Arena")
	return isArena
}

// checkFunc tracks arena-produced values through local variables of one
// function (including its closures — closures share the function's
// variables) and flags the escapes.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	tainted := map[types.Object]bool{}

	var exprTainted func(e ast.Expr) bool
	exprTainted = func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = pass.TypesInfo.Defs[x]
			}
			return obj != nil && tainted[obj]
		case *ast.CallExpr:
			if isCloneTree(pass, x) {
				return false
			}
			if isArenaProducer(pass, x) {
				return true
			}
			// Conversions and type assertions preserve taint.
			return false
		case *ast.UnaryExpr:
			return exprTainted(x.X)
		case *ast.StarExpr:
			return exprTainted(x.X)
		case *ast.IndexExpr:
			return exprTainted(x.X)
		case *ast.TypeAssertExpr:
			return exprTainted(x.X)
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if exprTainted(el) {
					return true
				}
			}
			return false
		}
		return false
	}

	// Seed and propagate taint through local assignments to a fixpoint:
	// x := a.Scan(...); y := x; ... all mark their objects.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			// append(s, tainted) taints s even through s = append(s, x).
			for i, lhs := range asg.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil || tainted[obj] {
					continue
				}
				var rhs ast.Expr
				if len(asg.Rhs) == len(asg.Lhs) {
					rhs = asg.Rhs[i]
				} else if len(asg.Rhs) == 1 {
					rhs = asg.Rhs[0] // multi-value call: taint all LHS if tainted
				}
				if rhs == nil {
					continue
				}
				t := exprTainted(rhs)
				if !t {
					if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isAppend(pass, call) {
						for _, arg := range call.Args[1:] {
							if exprTainted(arg) {
								t = true
								break
							}
						}
					}
				}
				if t {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	// Flag the escapes.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range asgEscapeTargets(s) {
				if lhs == nil {
					continue
				}
				var rhs ast.Expr
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				} else if len(s.Rhs) == 1 {
					rhs = s.Rhs[0]
				}
				if rhs != nil && exprTainted(rhs) {
					pass.Reportf(rhs.Pos(),
						"arena-allocated plan node is stored to %s and may outlive the arena's next Reset; deep-copy it with plan.CloneTree first (or return it via dp.Engine.Finish)",
						escapeKind(lhs))
				}
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if exprTainted(res) {
					pass.Reportf(res.Pos(),
						"arena-allocated plan node is returned and may outlive the arena's next Reset; deep-copy it with plan.CloneTree first (or return it via dp.Engine.Finish)")
				}
			}
		case *ast.SendStmt:
			if exprTainted(s.Value) {
				pass.Reportf(s.Value.Pos(),
					"arena-allocated plan node is sent on a channel and may outlive the arena's next Reset; deep-copy it with plan.CloneTree first (or return it via dp.Engine.Finish)")
			}
		}
		return true
	})
}

// asgEscapeTargets returns, aligned with s.Lhs, the LHS expressions
// that constitute an escape when assigned a tainted value: field
// stores, element stores and pointer-indirect stores. Plain local
// variables return nil (tracked as taint instead).
func asgEscapeTargets(s *ast.AssignStmt) []ast.Expr {
	out := make([]ast.Expr, len(s.Lhs))
	for i, lhs := range s.Lhs {
		switch ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			out[i] = lhs
		}
	}
	return out
}

func escapeKind(lhs ast.Expr) string {
	switch ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return "a struct field"
	case *ast.IndexExpr:
		return "a slice or map element"
	default:
		return "a pointer target"
	}
}

// isArenaProducer reports whether call invokes a plan.Arena method
// returning plan nodes.
func isArenaProducer(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if _, isArena := analysis.NamedTypeIn(sig.Recv().Type(), "plan", "Arena"); !isArena {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if _, isNode := analysis.NamedTypeIn(sig.Results().At(i).Type(), "plan", "Node"); isNode {
			return true
		}
	}
	return false
}

// isCloneTree reports whether call is plan.CloneTree(...), the
// sanctioned deep-copy out of an arena.
func isCloneTree(pass *analysis.Pass, call *ast.CallExpr) bool {
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	}
	return fn != nil && fn.Name() == "CloneTree" && analysis.PkgNameIs(fn.Pkg(), "plan")
}

// isAppend reports whether call is the builtin append.
func isAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append" && len(call.Args) > 1
}
