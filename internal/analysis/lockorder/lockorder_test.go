package lockorder_test

import (
	"testing"

	"mpq/internal/analysis/analysistest"
	"mpq/internal/analysis/lockorder"
)

// TestLockOrder runs the analyzer over the regression fixture that
// reproduces the pre-fix PR 8 CellCache deadlock (Stats vs BestAt) —
// the shape the concurrency canary originally caught at runtime.
func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "pqo")
}
