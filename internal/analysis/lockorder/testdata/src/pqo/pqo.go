// Package pqo is the lockorder regression fixture: it reproduces the
// pre-fix PR 8 shape of internal/pqo's CellCache, where Stats held the
// cache mutex while taking entry mutexes and BestAt held an entry mutex
// while taking the cache mutex — the AB-BA deadlock the concurrency
// canary caught at runtime under -race. The analyzer must flag both
// directions of that cycle statically.
package pqo

import "sync"

type cellEntry struct {
	mu   sync.Mutex
	hits int
	best float64
}

// CellCache is the pre-fix cache: per-cell entries with their own
// mutexes under a map guarded by the cache mutex.
type CellCache struct {
	mu      sync.Mutex
	entries map[string]*cellEntry
}

// Stats aggregates per-entry counters while still holding the cache
// mutex: the CellCache.mu -> cellEntry.mu direction of the deadlock.
func (c *CellCache) Stats() int {
	total := 0
	c.mu.Lock()
	for _, e := range c.entries {
		e.mu.Lock() // want "Stats acquires cellEntry.mu while holding CellCache.mu.*AB-BA deadlock"
		total += e.hits
		e.mu.Unlock()
	}
	c.mu.Unlock()
	return total
}

// BestAt reads an entry under its mutex, then touches the cache map —
// the cellEntry.mu -> CellCache.mu direction that closes the cycle.
func (c *CellCache) BestAt(key string) float64 {
	c.mu.Lock()
	e := c.entries[key]
	c.mu.Unlock()
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.hits++
	c.mu.Lock() // want "BestAt acquires CellCache.mu while holding cellEntry.mu.*AB-BA deadlock"
	delete(c.entries, key)
	c.mu.Unlock()
	return e.best
}

// StatsFixed is the post-fix shape: snapshot the entry pointers under
// the cache mutex, release it, then visit the entries. The two mutex
// classes never overlap, so no edge and no report.
func (c *CellCache) StatsFixed() int {
	c.mu.Lock()
	snap := make([]*cellEntry, 0, len(c.entries))
	for _, e := range c.entries {
		snap = append(snap, e)
	}
	c.mu.Unlock()
	total := 0
	for _, e := range snap {
		e.mu.Lock()
		total += e.hits
		e.mu.Unlock()
	}
	return total
}

// journal/index demonstrate a reasoned exception: compact orders
// journal.mu before index.mu while reindex orders them the other way —
// the same AB-BA shape as above, but deliberate here (the fixture's
// stand-in for a documented protocol that makes it safe), so both
// edges carry allow directives and neither is reported.
type journal struct {
	mu      sync.Mutex
	records int
}

type index struct {
	mu   sync.Mutex
	keys int
}

func compact(j *journal, idx *index) {
	j.mu.Lock()
	idx.mu.Lock() //lint:allow lockorder fixture: compact/reindex follow a documented tie-break protocol
	idx.keys = j.records
	idx.mu.Unlock()
	j.mu.Unlock()
}

func reindex(j *journal, idx *index) {
	idx.mu.Lock()
	j.mu.Lock() //lint:allow lockorder fixture: compact/reindex follow a documented tie-break protocol
	j.records = idx.keys
	j.mu.Unlock()
	idx.mu.Unlock()
}
