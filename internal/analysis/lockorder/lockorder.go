// Package lockorder detects AB-BA deadlocks at compile time: it builds
// an intra-package lock-acquisition graph — which mutex classes are
// acquired while which others are held — and reports every acquisition
// edge that participates in a cycle. A "mutex class" is a (struct
// type, field) pair such as CellCache.mu: instances are not
// distinguished, which is exactly the granularity of the repository's
// documented invariant that multi-mutex code must acquire locks in one
// global order.
//
// PR 8's concurrency canary caught a real deadlock of this shape at
// runtime under -race: pqo.CellCache.Stats held the cache mutex while
// taking entry mutexes, while BestAt held an entry mutex while taking
// the cache mutex. This analyzer flags that pre-fix shape statically;
// the regression fixture under testdata/ reproduces it.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"mpq/internal/analysis"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: `mutexes must be acquired in one global order

Builds a lock-acquisition graph over the package: an edge A -> B means
some function acquires mutex class B (a struct's sync.Mutex/RWMutex
field) while holding A, directly or through a same-package call. Any
cycle in that graph is a potential AB-BA deadlock and every edge on the
cycle is reported.`,
	Run: run,
}

// lockClass identifies a mutex at class granularity: "Type.field" for
// struct fields, "var name" for package-level mutex variables.
type lockClass string

// edge records one "acquired B while holding A" observation.
type edge struct {
	from, to lockClass
	pos      token.Pos
	fn       string
}

type graph struct {
	pass  *analysis.Pass
	edges []edge
	// summaries: every lock class a function may acquire, transitively
	// through same-package calls.
	summaries map[*types.Func]map[lockClass]bool
	// bodies of the package's declared functions, for the fixpoint.
	decls map[*types.Func]*ast.FuncDecl
}

func run(pass *analysis.Pass) (any, error) {
	g := &graph{
		pass:      pass,
		summaries: map[*types.Func]map[lockClass]bool{},
		decls:     map[*types.Func]*ast.FuncDecl{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					g.decls[fn] = fd
				}
			}
		}
	}
	g.computeSummaries()
	for fn, fd := range g.decls {
		g.walkFunc(fn.Name(), fd.Body)
	}
	g.reportCycles()
	return nil, nil
}

// computeSummaries iterates to a fixpoint: summary(f) = locks f
// acquires directly plus the summaries of every same-package function
// it calls. Goroutine launches are included — a lock acquired on a
// goroutine the callee starts can still participate in a deadlock.
func (g *graph) computeSummaries() {
	for fn := range g.decls {
		g.summaries[fn] = map[lockClass]bool{}
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range g.decls {
			sum := g.summaries[fn]
			before := len(sum)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if class, kind := g.lockOp(call); kind == opLock {
					sum[class] = true
				}
				if callee := g.callee(call); callee != nil {
					for c := range g.summaries[callee] {
						sum[c] = true
					}
				}
				return true
			})
			if len(sum) != before {
				changed = true
			}
		}
	}
}

type opKind int

const (
	opNone opKind = iota
	opLock
	opUnlock
)

// lockOp classifies a call as a Lock/RLock or Unlock/RUnlock on a
// resolvable mutex class.
func (g *graph) lockOp(call *ast.CallExpr) (lockClass, opKind) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	var kind opKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return "", opNone
	}
	fn, ok := g.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", opNone
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", opNone
	}
	if _, isMu := analysis.NamedTypeIn(recv.Type(), "sync", "Mutex"); !isMu {
		if _, isRW := analysis.NamedTypeIn(recv.Type(), "sync", "RWMutex"); !isRW {
			return "", opNone
		}
	}
	class := g.classOf(sel.X)
	if class == "" {
		return "", opNone
	}
	return class, kind
}

// classOf names the mutex being operated on: a field selection x.mu on
// a named struct type of this package, or a package-level mutex var.
func (g *graph) classOf(expr ast.Expr) lockClass {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		field, ok := g.pass.TypesInfo.Uses[e.Sel].(*types.Var)
		if !ok || !field.IsField() {
			return ""
		}
		tv, ok := g.pass.TypesInfo.Types[e.X]
		if !ok {
			return ""
		}
		t := tv.Type
		for {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
				continue
			}
			break
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() != g.pass.Pkg {
			return ""
		}
		return lockClass(named.Obj().Name() + "." + field.Name())
	case *ast.Ident:
		v, ok := g.pass.TypesInfo.Uses[e].(*types.Var)
		if !ok || v.IsField() {
			return ""
		}
		if v.Parent() == g.pass.Pkg.Scope() {
			return lockClass("var " + v.Name())
		}
	}
	return ""
}

// callee resolves a call to a function declared in this package.
func (g *graph) callee(call *ast.CallExpr) *types.Func {
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = g.pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = g.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil || fn.Pkg() != g.pass.Pkg {
		return nil
	}
	if _, ok := g.decls[fn]; !ok {
		return nil
	}
	return fn
}

// walkFunc simulates one function body in source order, tracking the
// set of held lock classes. Branch bodies are walked with the current
// held set; balanced Lock/Unlock pairs inside a branch cancel out.
// Function literals launched with `go` are walked as independent roots
// (they do not inherit the spawner's held set — a lock held at spawn
// time is not held by the goroutine).
func (g *graph) walkFunc(name string, body *ast.BlockStmt) {
	held := []lockClass{}
	g.walkStmts(name, body.List, &held)
}

func (g *graph) walkStmts(name string, stmts []ast.Stmt, held *[]lockClass) {
	for _, s := range stmts {
		g.walkStmt(name, s, held)
	}
}

func (g *graph) walkStmt(name string, stmt ast.Stmt, held *[]lockClass) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		g.walkStmts(name, s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			g.walkStmt(name, s.Init, held)
		}
		g.walkExpr(name, s.Cond, held)
		g.walkStmts(name, s.Body.List, held)
		if s.Else != nil {
			g.walkStmt(name, s.Else, held)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			g.walkStmt(name, s.Init, held)
		}
		if s.Cond != nil {
			g.walkExpr(name, s.Cond, held)
		}
		g.walkStmts(name, s.Body.List, held)
		if s.Post != nil {
			g.walkStmt(name, s.Post, held)
		}
	case *ast.RangeStmt:
		g.walkExpr(name, s.X, held)
		g.walkStmts(name, s.Body.List, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			g.walkStmt(name, s.Init, held)
		}
		if s.Tag != nil {
			g.walkExpr(name, s.Tag, held)
		}
		g.walkStmts(name, s.Body.List, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			g.walkStmt(name, s.Init, held)
		}
		g.walkStmts(name, s.Body.List, held)
	case *ast.CaseClause:
		g.walkStmts(name, s.Body, held)
	case *ast.SelectStmt:
		g.walkStmts(name, s.Body.List, held)
	case *ast.CommClause:
		g.walkStmts(name, s.Body, held)
	case *ast.LabeledStmt:
		g.walkStmt(name, s.Stmt, held)
	case *ast.GoStmt:
		// The goroutine body runs with an empty held set; locks it
		// acquires are still recorded (as edges from nothing) via the
		// independent walk below.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			fresh := []lockClass{}
			g.walkStmts(name+" (goroutine)", lit.Body.List, &fresh)
		}
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to function end: do not
		// remove it. A deferred call into the package is treated as an
		// immediate call — it will run while any still-held locks are
		// held.
		if class, kind := g.lockOp(s.Call); kind == opUnlock {
			_ = class // held until end of function
			return
		}
		g.walkExpr(name, s.Call, held)
	case *ast.ExprStmt:
		g.walkExpr(name, s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			g.walkExpr(name, e, held)
		}
		for _, e := range s.Lhs {
			g.walkExpr(name, e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			g.walkExpr(name, e, held)
		}
	case *ast.SendStmt:
		g.walkExpr(name, s.Chan, held)
		g.walkExpr(name, s.Value, held)
	case *ast.IncDecStmt:
		g.walkExpr(name, s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						g.walkExpr(name, e, held)
					}
				}
			}
		}
	}
}

// walkExpr processes every call inside expr in source order.
func (g *graph) walkExpr(name string, expr ast.Expr, held *[]lockClass) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			// Direct or deferred function literals run on this
			// goroutine: walk them with the current held set.
			g.walkStmts(name+" (func literal)", lit.Body.List, held)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if class, kind := g.lockOp(call); kind != opNone {
			switch kind {
			case opLock:
				for _, h := range *held {
					if h != class {
						g.edges = append(g.edges, edge{from: h, to: class, pos: call.Pos(), fn: name})
					}
				}
				if !slicesContains(*held, class) {
					*held = append(*held, class)
				}
			case opUnlock:
				for i, h := range *held {
					if h == class {
						*held = append((*held)[:i], (*held)[i+1:]...)
						break
					}
				}
			}
			return true
		}
		if callee := g.callee(call); callee != nil {
			for c := range g.summaries[callee] {
				for _, h := range *held {
					if h != c {
						g.edges = append(g.edges, edge{from: h, to: c, pos: call.Pos(), fn: name})
					}
				}
			}
		}
		return true
	})
}

func slicesContains(s []lockClass, c lockClass) bool {
	for _, x := range s {
		if x == c {
			return true
		}
	}
	return false
}

// reportCycles finds every edge on a cycle of the acquisition graph
// and reports it, pointing at the other direction's witness.
func (g *graph) reportCycles() {
	adj := map[lockClass]map[lockClass]bool{}
	for _, e := range g.edges {
		if adj[e.from] == nil {
			adj[e.from] = map[lockClass]bool{}
		}
		adj[e.from][e.to] = true
	}
	reaches := func(from, to lockClass) bool {
		seen := map[lockClass]bool{}
		var dfs func(lockClass) bool
		dfs = func(n lockClass) bool {
			if n == to {
				return true
			}
			if seen[n] {
				return false
			}
			seen[n] = true
			for next := range adj[n] {
				if dfs(next) {
					return true
				}
			}
			return false
		}
		return dfs(from)
	}

	reported := map[string]bool{}
	// Deterministic order: edges are appended in file order per
	// function, but map iteration over decls is not ordered — sort by
	// position before reporting.
	sorted := make([]edge, len(g.edges))
	copy(sorted, g.edges)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].pos < sorted[j].pos })
	for _, e := range sorted {
		if !reaches(e.to, e.from) {
			continue
		}
		key := fmt.Sprintf("%v->%v@%v", e.from, e.to, e.pos)
		if reported[key] {
			continue
		}
		reported[key] = true
		witness := g.witness(e.to, e.from)
		g.pass.Reportf(e.pos,
			"%s acquires %s while holding %s, but the reverse order %s is locked elsewhere — AB-BA deadlock; acquire these mutexes in one global order",
			e.fn, e.to, e.from, witness)
	}
}

// witness describes the opposing path for the report.
func (g *graph) witness(from, to lockClass) string {
	for _, e := range g.edges {
		if e.from == from && e.to == to {
			pos := g.pass.Fset.Position(e.pos)
			return fmt.Sprintf("(%s -> %s in %s at %s:%d)", e.from, e.to, e.fn, pos.Filename, pos.Line)
		}
	}
	return fmt.Sprintf("(%s held before %s)", from, to)
}
