// Package suite registers every analyzer cmd/mpqlint runs. The
// meta-test in internal/analysis/suite_test.go walks this list and
// refuses any analyzer that ships without golden fixtures, so adding
// an entry here without testdata fails the build.
package suite

import (
	"mpq/internal/analysis"
	"mpq/internal/analysis/arenaescape"
	"mpq/internal/analysis/copylocks"
	"mpq/internal/analysis/ctxflow"
	"mpq/internal/analysis/lockorder"
	"mpq/internal/analysis/lostcancel"
	"mpq/internal/analysis/nilness"
	"mpq/internal/analysis/tagswitch"
)

// All returns the full analyzer suite in the order findings are
// attributed: the four repository-invariant analyzers first, then the
// stdlib-only ports of the upstream nilness, copylocks and lostcancel
// passes (the offline build cannot vendor golang.org/x/tools; `go vet`
// in CI additionally runs the upstream copylocks and lostcancel).
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		arenaescape.Analyzer,
		ctxflow.Analyzer,
		lockorder.Analyzer,
		tagswitch.Analyzer,
		copylocks.Analyzer,
		lostcancel.Analyzer,
		nilness.Analyzer,
	}
}
