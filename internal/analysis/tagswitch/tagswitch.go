// Package tagswitch enforces the repository's frame-dispatch
// invariant: every switch on a wire.Tag value must either cover all
// exported tag constants or carry a default clause that returns (or
// panics). PR 8 added the CancelRequest frame by hand-auditing every
// dispatch switch in the tree; this analyzer makes that audit
// mechanical, so a new tag constant cannot leave a transport silently
// mishandling the new frame kind.
package tagswitch

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"mpq/internal/analysis"
)

// Analyzer is the tagswitch analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "tagswitch",
	Doc: `switches on wire.Tag must handle every exported tag or return by default

A dispatch switch on a wire.Tag-typed value must either list every
exported tag constant of the wire package or carry a default clause
whose body terminates (return or panic): an unknown frame must be an
explicit error path, never a silent fall-through.`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	pass.Inspect(func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		tv, ok := pass.TypesInfo.Types[sw.Tag]
		if !ok {
			return true
		}
		named, ok := analysis.NamedTypeIn(tv.Type, "wire", "Tag")
		if !ok {
			return true
		}
		checkSwitch(pass, sw, named)
		return true
	})
	return nil, nil
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt, tag *types.Named) {
	// Every exported constant of the tag type, from its package scope.
	all := map[string]string{} // constant value -> name
	scope := tag.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() || !types.Identical(c.Type(), tag) {
			continue
		}
		all[c.Val().ExactString()] = name
	}
	if len(all) == 0 {
		return
	}

	covered := map[string]bool{}
	var deflt *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			deflt = cc
			continue
		}
		for _, e := range cc.List {
			if etv, ok := pass.TypesInfo.Types[e]; ok && etv.Value != nil {
				covered[etv.Value.ExactString()] = true
			}
		}
	}

	var missing []string
	for val, name := range all {
		if !covered[val] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)

	if deflt == nil {
		pass.Reportf(sw.Switch,
			"switch on %s does not handle %s and has no default clause; handle every tag or add a default that returns",
			tagName(tag), strings.Join(missing, ", "))
		return
	}
	if !terminates(deflt.Body) {
		pass.Reportf(deflt.Case,
			"default clause of a switch on %s falls through; unhandled tags (%s) must be an explicit error path that returns",
			tagName(tag), strings.Join(missing, ", "))
	}
}

func tagName(tag *types.Named) string {
	return tag.Obj().Pkg().Name() + "." + tag.Obj().Name()
}

// terminates reports whether the statement list always transfers
// control out of the switch's enclosing function: it ends in a return,
// a panic (or another recognized no-return call), or an if/else whose
// branches both terminate.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BlockStmt:
		return terminates(s.List)
	case *ast.IfStmt:
		if !terminates(s.Body.List) {
			return false
		}
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			return terminates(e.List)
		case *ast.IfStmt:
			return terminates([]ast.Stmt{e})
		}
		return false
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		return noReturnCall(call)
	case *ast.LabeledStmt:
		return terminates([]ast.Stmt{s.Stmt})
	}
	return false
}

// noReturnCall recognizes calls that never return: panic, os.Exit,
// log.Fatal*, (*testing.common).Fatal*.
func noReturnCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if pkg, ok := fun.X.(*ast.Ident); ok {
			if pkg.Name == "os" && name == "Exit" {
				return true
			}
			if pkg.Name == "log" && strings.HasPrefix(name, "Fatal") {
				return true
			}
		}
		return strings.HasPrefix(name, "Fatal")
	}
	return false
}
