package tagswitch_test

import (
	"testing"

	"mpq/internal/analysis/analysistest"
	"mpq/internal/analysis/tagswitch"
)

func TestTagSwitch(t *testing.T) {
	analysistest.Run(t, "testdata", tagswitch.Analyzer, "dispatch")
}
