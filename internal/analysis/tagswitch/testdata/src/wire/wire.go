// Package wire is a fixture stub of the repository's internal/wire:
// just the Tag type and its exported constants, which is all the
// tagswitch analyzer consults.
package wire

// Tag identifies a frame kind.
type Tag uint8

const (
	TagQuery      Tag = 1
	TagPlan       Tag = 2
	TagJobRequest Tag = 3
)

// tagInternal is unexported and must not count toward exhaustiveness.
const tagInternal Tag = 250
