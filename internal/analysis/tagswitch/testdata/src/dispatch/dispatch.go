// Package dispatch exercises the tagswitch analyzer: switches on
// wire.Tag must handle every exported tag constant or carry a default
// clause that returns.
package dispatch

import (
	"errors"
	"wire"
)

var errUnknown = errors.New("unknown tag")

// missingNoDefault omits TagPlan and has no default: flagged.
func missingNoDefault(t wire.Tag) error {
	switch t { // want "switch on wire.Tag does not handle TagPlan and has no default clause"
	case wire.TagQuery:
		return nil
	case wire.TagJobRequest:
		return nil
	}
	return nil
}

// fallthroughDefault has a default, but it does not return: an unknown
// tag silently falls through to the success path. Flagged at the
// default clause.
func fallthroughDefault(t wire.Tag) error {
	handled := 0
	switch t {
	case wire.TagQuery:
		handled++
	default: // want "default clause of a switch on wire.Tag falls through"
		handled--
	}
	_ = handled
	return nil
}

// exhaustive covers every exported tag: compliant without a default.
func exhaustive(t wire.Tag) error {
	switch t {
	case wire.TagQuery:
		return nil
	case wire.TagPlan:
		return nil
	case wire.TagJobRequest:
		return nil
	}
	return nil
}

// terminatingDefault leaves tags unhandled but its default returns an
// error: compliant — the unknown frame is an explicit error path.
func terminatingDefault(t wire.Tag) error {
	switch t {
	case wire.TagJobRequest:
		return nil
	default:
		return errUnknown
	}
}

// panickingDefault terminates by panic: compliant.
func panickingDefault(t wire.Tag) {
	switch t {
	case wire.TagQuery, wire.TagPlan:
	default:
		panic("unknown tag")
	}
}

// allowed reproduces the missing-tag shape but carries a deliberate,
// reasoned exception: suppressed.
func allowed(t wire.Tag) error {
	switch t { //lint:allow tagswitch fixture: demonstrates a reasoned exception to the dispatch invariant
	case wire.TagQuery:
		return nil
	}
	return nil
}

// untypedSwitch switches on a plain uint8, which is not a wire.Tag:
// out of scope.
func untypedSwitch(b uint8) {
	switch b {
	case 1:
	}
}
