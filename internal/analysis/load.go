package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one loaded, parsed and type-checked package, ready to be
// analyzed.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	GoFiles []string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// DepExports maps every dependency's import path to its compiled
	// export-data file. The facts cache hashes these files so a change
	// in a dependency's API invalidates cached findings for its
	// importers.
	DepExports map[string]string
}

// listEntry is the subset of `go list -json` output the loader reads.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Deps       []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// Load loads the packages matched by the go-list patterns (for example
// "./..."), type-checking each from source with imports resolved from
// compiled export data, so no network access and no dependencies
// outside the standard library are required. Test files are not
// loaded, matching `go vet`'s default compilation unit; testdata
// directories are skipped by `go list` itself.
func Load(patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Imports,Deps,Export,Standard,DepOnly",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	entries := map[string]*listEntry{}
	var targets []*listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode go list output: %v", err)
		}
		cp := e
		entries[cp.ImportPath] = &cp
		if !cp.DepOnly {
			targets = append(targets, &cp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	exports := map[string]string{}
	for path, e := range entries {
		if e.Export != "" {
			exports[path] = e.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, e := range targets {
		if len(e.GoFiles) == 0 {
			continue
		}
		pkg, err := typecheckDir(fset, e, imp)
		if err != nil {
			return nil, err
		}
		pkg.DepExports = map[string]string{}
		for _, dep := range e.Deps {
			if f, ok := exports[dep]; ok {
				pkg.DepExports[dep] = f
			}
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheckDir parses and type-checks one package's GoFiles.
func typecheckDir(fset *token.FileSet, e *listEntry, imp types.Importer) (*Package, error) {
	var files []*ast.File
	var names []string
	for _, name := range e.GoFiles {
		full := filepath.Join(e.Dir, name)
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", full, err)
		}
		files = append(files, f)
		names = append(names, full)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(e.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", e.ImportPath, err)
	}
	return &Package{
		PkgPath: e.ImportPath,
		Name:    e.Name,
		Dir:     e.Dir,
		GoFiles: names,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// NewTypesInfo returns a types.Info with every map analyzers consult
// allocated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
