package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FactsVersion invalidates every cached entry when the cache layout or
// the driver's semantics change. Bump it when a change to the framework
// alters findings without changing any analyzed file.
const FactsVersion = "mpqlint-facts-v1"

// Facts is a content-addressed cache of per-package findings. The key
// hashes everything a package's findings depend on: the analyzer
// binary itself (so editing an analyzer invalidates the cache), the
// package's source files, and the export data of every dependency (so
// an API change upstream re-analyzes the importers). CI persists the
// facts directory across runs; unchanged packages replay their
// findings without re-type-checking.
type Facts struct {
	dir string

	once    sync.Once
	exeHash string
	exeErr  error

	mu     sync.Mutex
	hashes map[string]string // file path -> content hash
}

// OpenFacts returns a facts cache rooted at dir, creating it if
// needed. An empty dir disables caching (every method no-ops).
func OpenFacts(dir string) (*Facts, error) {
	if dir == "" {
		return &Facts{}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("facts dir: %v", err)
	}
	return &Facts{dir: dir, hashes: map[string]string{}}, nil
}

// fileHash returns the content hash of path, memoized (export data for
// shared dependencies is hashed once per run, not once per importer).
func (fc *Facts) fileHash(path string) (string, error) {
	fc.mu.Lock()
	h, ok := fc.hashes[path]
	fc.mu.Unlock()
	if ok {
		return h, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sum := sha256.New()
	if _, err := io.Copy(sum, f); err != nil {
		return "", err
	}
	h = hex.EncodeToString(sum.Sum(nil))
	fc.mu.Lock()
	fc.hashes[path] = h
	fc.mu.Unlock()
	return h, nil
}

// key derives the cache key for one package under one analyzer suite.
func (fc *Facts) key(pkg *Package, analyzers []*Analyzer) (string, error) {
	fc.once.Do(func() {
		exe, err := os.Executable()
		if err != nil {
			fc.exeErr = err
			return
		}
		fc.exeHash, fc.exeErr = fc.fileHash(exe)
	})
	if fc.exeErr != nil {
		return "", fc.exeErr
	}
	sum := sha256.New()
	fmt.Fprintln(sum, FactsVersion)
	fmt.Fprintln(sum, fc.exeHash)
	fmt.Fprintln(sum, pkg.PkgPath)
	for _, a := range analyzers {
		fmt.Fprintln(sum, a.Name)
	}
	for _, f := range pkg.GoFiles {
		h, err := fc.fileHash(f)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(sum, f, h)
	}
	deps := make([]string, 0, len(pkg.DepExports))
	for dep := range pkg.DepExports {
		deps = append(deps, dep)
	}
	sort.Strings(deps)
	for _, dep := range deps {
		h, err := fc.fileHash(pkg.DepExports[dep])
		if err != nil {
			return "", err
		}
		fmt.Fprintln(sum, dep, h)
	}
	return hex.EncodeToString(sum.Sum(nil)), nil
}

func (fc *Facts) path(key string) string {
	return filepath.Join(fc.dir, key[:2], key+".json")
}

// Get returns the cached findings for pkg, if present.
func (fc *Facts) Get(pkg *Package, analyzers []*Analyzer) ([]Finding, bool) {
	if fc.dir == "" {
		return nil, false
	}
	key, err := fc.key(pkg, analyzers)
	if err != nil {
		return nil, false
	}
	b, err := os.ReadFile(fc.path(key))
	if err != nil {
		return nil, false
	}
	var findings []Finding
	if err := json.Unmarshal(b, &findings); err != nil {
		return nil, false
	}
	return findings, true
}

// Put stores findings for pkg. Failures are ignored: the cache is an
// accelerator, never a correctness dependency.
func (fc *Facts) Put(pkg *Package, analyzers []*Analyzer, findings []Finding) {
	if fc.dir == "" {
		return
	}
	key, err := fc.key(pkg, analyzers)
	if err != nil {
		return
	}
	if findings == nil {
		findings = []Finding{}
	}
	b, err := json.Marshal(findings)
	if err != nil {
		return
	}
	path := fc.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return
	}
	os.Rename(tmp, path)
}
