package experiments

import (
	"fmt"

	"mpq/internal/catalog"
	"mpq/internal/core"
	"mpq/internal/partition"
	"mpq/internal/query"
	"mpq/internal/workload"
)

// WorkloadsRow is one measured workload configuration of the workload
// sweep: a join-graph shape (or TPC-style schema) with its median
// simulated optimization time, network traffic and peak memo size.
type WorkloadsRow struct {
	Workload string // shape or schema name
	N        int    // tables
	Preds    int    // predicates (median config is representative: fixed per workload)
	Workers  int
	TimeMs   float64
	Bytes    float64
	Memo     float64
}

// Workloads sweeps every join-graph shape — including the snowflake
// extension and a correlated-selectivity variant — plus the built-in
// TPC-style schema queries, and measures MPQ on the simulated cluster.
// This goes beyond the paper's evaluation (§6 uses Steinbrunn-style
// independent selectivities only); it is the realistic-workload
// regression surface that docs/workloads.md describes.
func Workloads(cfg Config) ([]WorkloadsRow, error) {
	n := 9
	workers := 8
	if cfg.Full {
		n = 13
		workers = 32
	}
	if workers > cfg.MaxWorkers {
		workers = cfg.MaxWorkers
	}
	var rows []WorkloadsRow

	measure := func(name string, qs []*query.Query) error {
		spec := core.JobSpec{Space: partition.Linear, Workers: workers}
		if m := partition.MaxWorkers(partition.Linear, qs[0].N()); spec.Workers > m {
			spec.Workers = m
		}
		var times, bytes, memo []float64
		for _, q := range qs {
			res, err := runMPQ(cfg, q, spec)
			if err != nil {
				return err
			}
			times = append(times, ms(res.Metrics.VirtualTime))
			bytes = append(bytes, float64(res.Metrics.Bytes))
			memo = append(memo, float64(res.Metrics.MaxMemoEntries))
		}
		rows = append(rows, WorkloadsRow{
			Workload: name, N: qs[0].N(), Preds: len(qs[0].Preds), Workers: spec.Workers,
			TimeMs: median(times), Bytes: median(bytes), Memo: median(memo),
		})
		cfg.progressf("workloads: %s done", name)
		return nil
	}

	for _, shape := range workload.Shapes {
		qs, err := cfg.batch(n, shape)
		if err != nil {
			return nil, err
		}
		if err := measure(shape.String(), qs); err != nil {
			return nil, err
		}
	}

	// Correlated-selectivity stress: the star workload with strongly
	// correlated predicates, skewing the cost landscape the pruners see.
	corr := workload.NewParams(n, workload.Star)
	corr.Correlation = 0.8
	qs, err := workload.Batch(corr, cfg.BaseSeed, cfg.Queries)
	if err != nil {
		return nil, err
	}
	if err := measure("Star(corr=0.8)", qs); err != nil {
		return nil, err
	}

	// TPC-style schema queries are fixed per scale factor, so a single
	// query per schema suffices.
	sf := 1.0
	for _, name := range catalog.SchemaNames() {
		sch, err := catalog.BuiltinSchema(name)
		if err != nil {
			return nil, err
		}
		_, q, err := workload.FromSchema(sch, sf)
		if err != nil {
			return nil, err
		}
		if err := measure(fmt.Sprintf("%s(sf=%g)", name, sf), []*query.Query{q}); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// WorkloadsTable renders the workload sweep.
func WorkloadsTable(rows []WorkloadsRow) *Table {
	t := &Table{
		Title:   "Workload sweep — MPQ on every shape and TPC-style schema (median over queries)",
		Caption: "random shapes use Steinbrunn statistics; schemas use fixed TPC-style statistics at sf=1",
		Columns: []string{"workload", "tables", "preds", "workers", "time (ms)", "net (bytes)", "memo (relations)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Workload,
			fmt.Sprintf("%d", r.N),
			fmt.Sprintf("%d", r.Preds),
			fmt.Sprintf("%d", r.Workers),
			fmtFloat(r.TimeMs),
			fmtFloat(r.Bytes),
			fmtFloat(r.Memo),
		})
	}
	return t
}
