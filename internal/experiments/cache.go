package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"mpq/internal/cache"
	"mpq/internal/core"
	"mpq/internal/partition"
	"mpq/internal/query"
	"mpq/internal/workload"
)

// CacheRow is one measured (Zipf skew, cache budget) point of the plan-
// cache serving sweep: hit rate, per-request latency percentiles and
// throughput of a cached in-process engine serving a repeat stream,
// against the uncached engine on the identical stream.
type CacheRow struct {
	// Skew is the Zipf exponent of the arrival popularity.
	Skew float64
	// MaxBytes is the cache budget (0 = unlimited).
	MaxBytes int64
	// Distinct and Length describe the stream.
	Distinct int
	Length   int
	// HitRate is cache hits / arrivals.
	HitRate float64
	// Evictions counts entries removed to respect the budget.
	Evictions uint64
	// P50us / P99us are cached per-request latency percentiles (µs).
	P50us float64
	P99us float64
	// CachedQPS / UncachedQPS are optimizations per second over the
	// stream; Speedup is their ratio.
	CachedQPS   float64
	UncachedQPS float64
	Speedup     float64
}

// cacheScale returns the stream dimensions of the sweep.
func cacheScale(cfg Config) (tables, distinct, length int, budgets []int64) {
	if cfg.Full {
		return 12, 128, 4096, []int64{32 << 10, 128 << 10, 0}
	}
	return 10, 64, 1024, []int64{16 << 10, 64 << 10, 0}
}

// cacheSkews are the Zipf exponents swept: near-uniform repetition,
// the web-style s≈1.1 of the acceptance experiment, and heavy skew.
var cacheSkews = []float64{1.05, 1.1, 1.5}

// CacheServing sweeps Zipf skew × cache budget over a repeat stream of
// random queries and measures the fingerprint-keyed plan cache serving
// an in-process engine: hit rate, eviction pressure, p50/p99 serving
// latency, and throughput against the uncached engine on the identical
// stream. The uncached baseline is measured once per skew (the budget
// does not affect it).
//
// Within a (skew) group, answers of cached and uncached runs are
// bit-identical by the cache's construction; this sweep measures only
// the serving economics.
func CacheServing(cfg Config) ([]CacheRow, error) {
	n, distinct, length, budgets := cacheScale(cfg)
	spec := core.JobSpec{Space: partition.Linear, Workers: 4}
	compute := func(ctx context.Context, q *query.Query, spec core.JobSpec) (*core.Answer, error) {
		return core.OptimizeContext(ctx, q, spec, 0)
	}

	var rows []CacheRow
	for _, skew := range cacheSkews {
		if err := cfg.canceled(); err != nil {
			return nil, err
		}
		stream, err := workload.GenerateStream(workload.StreamParams{
			Query:    workload.NewParams(n, workload.Star),
			Distinct: distinct,
			Length:   length,
			Skew:     skew,
		}, cfg.BaseSeed)
		if err != nil {
			return nil, err
		}

		// Uncached baseline: the same arrivals, every one a full DP.
		uncachedStart := time.Now()
		for i := 0; i < stream.Params.Length; i++ {
			if err := cfg.canceled(); err != nil {
				return nil, err
			}
			if _, err := compute(cfg.context(), stream.At(i), spec); err != nil {
				return nil, err
			}
		}
		uncachedQPS := float64(stream.Params.Length) / time.Since(uncachedStart).Seconds()
		cfg.progressf("cache: skew=%.2f uncached baseline done", skew)

		for _, budget := range budgets {
			if err := cfg.canceled(); err != nil {
				return nil, err
			}
			c := cache.New(cache.Config{MaxBytes: budget})
			lat := make([]float64, stream.Params.Length)
			cachedStart := time.Now()
			for i := 0; i < stream.Params.Length; i++ {
				reqStart := time.Now()
				if _, err := c.Optimize(cfg.context(), stream.At(i), spec, compute); err != nil {
					return nil, err
				}
				lat[i] = float64(time.Since(reqStart)) / float64(time.Microsecond)
			}
			elapsed := time.Since(cachedStart)
			cachedQPS := float64(stream.Params.Length) / elapsed.Seconds()
			t := c.Totals()
			rows = append(rows, CacheRow{
				Skew:        skew,
				MaxBytes:    budget,
				Distinct:    distinct,
				Length:      length,
				HitRate:     float64(t.Hits) / float64(stream.Params.Length),
				Evictions:   t.Evictions,
				P50us:       percentile(lat, 0.50),
				P99us:       percentile(lat, 0.99),
				CachedQPS:   cachedQPS,
				UncachedQPS: uncachedQPS,
				Speedup:     cachedQPS / uncachedQPS,
			})
			cfg.progressf("cache: skew=%.2f budget=%s done", skew, fmtBudget(budget))
		}
	}
	return rows, nil
}

// percentile returns the q-th latency percentile (xs sorted in place,
// nearest-rank on the sorted slice).
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	i := int(q * float64(len(xs)-1))
	return xs[i]
}

// fmtBudget renders a cache budget compactly.
func fmtBudget(b int64) string {
	if b == 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%dKB", b>>10)
}

// CacheServingTable renders the cache serving sweep.
func CacheServingTable(rows []CacheRow) *Table {
	t := &Table{
		Title:   "Plan-cache serving — Zipf repeat stream, cached vs uncached in-process engine",
		Caption: "fingerprint-keyed cache with cost-weighted LRU; answers bit-identical to uncached runs",
		Columns: []string{"skew", "budget", "distinct", "arrivals", "hit rate", "evictions", "p50 (µs)", "p99 (µs)", "cached qps", "uncached qps", "speedup"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", r.Skew),
			fmtBudget(r.MaxBytes),
			fmt.Sprintf("%d", r.Distinct),
			fmt.Sprintf("%d", r.Length),
			fmt.Sprintf("%.3f", r.HitRate),
			fmt.Sprintf("%d", r.Evictions),
			fmtFloat(r.P50us),
			fmtFloat(r.P99us),
			fmtFloat(r.CachedQPS),
			fmtFloat(r.UncachedQPS),
			fmt.Sprintf("%.1fx", r.Speedup),
		})
	}
	return t
}
