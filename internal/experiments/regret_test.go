package experiments

import (
	"strings"
	"testing"
)

// TestRegretSweep runs the regret experiment at the exact scale the CI
// artifact job uses and pins the behaviors the sweep exists to show:
// exact estimates cost nothing, regret grows with the error magnitude,
// and robust mode reduces worst-case regret on at least one
// underestimation-biased configuration.
func TestRegretSweep(t *testing.T) {
	rows, err := Regret(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// 3 shapes × 8 noise sweeps, plus the two measured-execution rows.
	if len(rows) != 3*8+2 {
		t.Fatalf("got %d rows, want %d", len(rows), 3*8+2)
	}
	robustWin := false
	for _, r := range rows {
		if r.QErr < 1 {
			t.Errorf("%s/%s: q-error %g below 1", r.Workload, r.Source, r.QErr)
		}
		for _, v := range []float64{r.PointMed, r.PointMax, r.RobustMed, r.RobustMax} {
			if !(v >= 1-1e-9) {
				t.Errorf("%s/%s: regret %g below 1 — beat the true optimum?", r.Workload, r.Source, v)
			}
		}
		if r.PointMed > r.PointMax || r.RobustMed > r.RobustMax {
			t.Errorf("%s/%s: median exceeds max: %+v", r.Workload, r.Source, r)
		}
		// Exact estimates: the chosen plan IS the true-optimal plan, so
		// regret is exactly 1 — the bit-identity guarantee, measured.
		if r.Source == "eps=0" {
			for _, v := range []float64{r.PointMed, r.PointMax, r.RobustMed, r.RobustMax} {
				if v > 1+1e-9 {
					t.Errorf("%s: regret %g at eps=0", r.Workload, v)
				}
			}
		}
		if strings.HasSuffix(r.Source, "under") && r.RobustMax < r.PointMax {
			robustWin = true
		}
	}
	if !robustWin {
		t.Error("no underestimation-biased config where robust mode reduced worst-case regret")
	}
	// Regret grows with the error magnitude: at eps=4 some shape's point
	// plan must be measurably worse than optimal.
	grew := false
	for _, r := range rows {
		if r.Source == "eps=4" && r.PointMax > 1.5 {
			grew = true
		}
	}
	if !grew {
		t.Error("eps=4 point regret never exceeded 1.5 — noise is not reaching the planner")
	}

	tab := RegretTable(rows)
	if len(tab.Rows) != len(rows) || len(tab.Columns) != 8 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
}
