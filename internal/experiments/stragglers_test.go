package experiments

import "testing"

// The straggler sweep's headline claims, at CI scale: a scripted stall
// slows the batch down, speculation wins most of that time back, and
// neither policy ever changes a chosen plan.
func TestStragglersSweep(t *testing.T) {
	cfg := Quick()
	cfg.Queries = 2
	rows, err := Stragglers(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, factors := stragglerScale(cfg)
	if want := 1 + 2*len(factors); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	base := rows[0]
	if base.StallFactor != 0 || base.XClean != 1 {
		t.Fatalf("first row is not the fault-free baseline: %+v", base)
	}
	for i := 1; i < len(rows); i += 2 {
		wait, spec := rows[i], rows[i+1]
		if wait.Speculate || !spec.Speculate {
			t.Fatalf("rows %d/%d not a wait/speculate pair: %+v %+v", i, i+1, wait, spec)
		}
		if wait.TimeMs <= base.TimeMs {
			t.Errorf("stall %gx: waiting (%.1f ms) not slower than fault-free (%.1f ms)",
				wait.StallFactor, wait.TimeMs, base.TimeMs)
		}
		if spec.TimeMs >= wait.TimeMs {
			t.Errorf("stall %gx: speculation (%.1f ms) not faster than waiting (%.1f ms)",
				spec.StallFactor, spec.TimeMs, wait.TimeMs)
		}
		if spec.Speculations == 0 {
			t.Errorf("stall %gx: speculative run recorded no speculations", spec.StallFactor)
		}
		if wait.Speculations != 0 {
			t.Errorf("stall %gx: wait policy speculated %d times", wait.StallFactor, wait.Speculations)
		}
		if !wait.PlanSafe || !spec.PlanSafe {
			t.Errorf("stall %gx: a policy changed the chosen plan", wait.StallFactor)
		}
	}
	table := StragglersTable(rows)
	if len(table.Rows) != len(rows) || len(table.Columns) != len(table.Rows[0]) {
		t.Fatalf("table shape mismatch: %d cols, rows %d/%d",
			len(table.Columns), len(table.Rows), len(rows))
	}
}
