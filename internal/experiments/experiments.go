// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): MPQ vs SMA comparisons, MPQ scaling curves, join-graph
// sensitivity, multi-objective scaling, and the precision-vs-parallelism
// table. Each experiment returns structured series and can render itself
// as an aligned text table; cmd/mpqbench and the benchmark harness are
// thin wrappers around this package.
//
// Absolute milliseconds differ from the paper (our substrate is a
// simulated cluster, not the authors' Spark testbed; see DESIGN.md §2.5),
// but the comparisons the paper draws — who wins, by what order of
// magnitude, and how curves scale with the worker count — are preserved
// and asserted by this package's tests.
package experiments

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"mpq/internal/cluster"
	"mpq/internal/query"
	"mpq/internal/workload"
)

// Config scales the experiments. Quick() keeps every experiment under a
// few seconds for CI; Full() uses the paper's query sizes and worker
// counts.
type Config struct {
	// Queries is the number of random queries per data point (the paper
	// uses 20 and reports medians).
	Queries int
	// BaseSeed offsets workload generation for reproducibility.
	BaseSeed int64
	// Model is the simulated cluster.
	Model cluster.Model
	// Full selects paper-scale query sizes.
	Full bool
	// MaxWorkers caps the degrees of parallelism tried.
	MaxWorkers int
	// Progress, when non-nil, receives one line per completed panel.
	Progress io.Writer
	// Ctx, when non-nil, cancels a running experiment: the simulated
	// workers abort their dynamic programs and every data-point loop
	// checks it, so a long sweep stops within one data point of the
	// cancellation. Already-completed tables are unaffected —
	// cmd/mpqbench flushes each table as it finishes, so an interrupt
	// loses only the experiment in flight.
	Ctx context.Context
}

// context returns the experiment context (Background when unset).
func (c Config) context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// canceled reports the context's error once it is done, nil before.
func (c Config) canceled() error {
	if c.Ctx != nil && c.Ctx.Err() != nil {
		return context.Cause(c.Ctx)
	}
	return nil
}

// Quick returns the CI-scale configuration.
func Quick() Config {
	return Config{Queries: 5, Model: cluster.Default(), MaxWorkers: 128}
}

// FullScale returns the paper-scale configuration.
func FullScale() Config {
	return Config{Queries: 20, Model: cluster.Default(), Full: true, MaxWorkers: 256}
}

func (c Config) progressf(format string, args ...any) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// Point is one measured data point of a series.
type Point struct {
	Workers int
	// TimeMs is total optimization time (virtual, master-observed).
	TimeMs float64
	// WTimeMs is the slowest worker's compute time.
	WTimeMs float64
	// Bytes is total network traffic.
	Bytes float64
	// MemoryRelations is the peak per-worker memo size.
	MemoryRelations float64
	// CI95 is the half-width of the 95% confidence interval of TimeMs
	// (only filled by experiments that report means, like Figure 3).
	CI95 float64
}

// Series is one curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Caption string
	Columns []string
	Rows    [][]string
}

// WriteJSON writes the table as one JSON object. cmd/mpqbench -json
// emits one such object per table (JSON Lines), the machine-readable
// form consumed by benchmark-trajectory tooling.
func (t *Table) WriteJSON(w io.Writer) error {
	type jsonTable struct {
		Title   string     `json:"title"`
		Caption string     `json:"caption,omitempty"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	enc := json.NewEncoder(w)
	return enc.Encode(jsonTable{Title: t.Title, Caption: t.Caption, Columns: t.Columns, Rows: t.Rows})
}

// WriteCSV writes the table as CSV (title and caption as # comments),
// for downstream plotting.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	if t.Caption != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Caption); err != nil {
			return err
		}
	}
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Render writes the table in aligned text form.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	if t.Caption != "" {
		fmt.Fprintf(w, "  %s\n", t.Caption)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	fmt.Fprintln(w)
}

// median returns the median of xs (xs is sorted in place).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// meanCI returns the arithmetic mean and the half-width of the normal
// 95% confidence interval.
func meanCI(xs []float64) (mean, ci float64) {
	if len(xs) == 0 {
		return math.NaN(), 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	sd := math.Sqrt(ss / float64(len(xs)-1))
	return mean, 1.96 * sd / math.Sqrt(float64(len(xs)))
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// workerCounts returns 1, 2, 4, ... up to min(maxAllowed, cap).
func workerCounts(maxAllowed, cap int) []int {
	var out []int
	for m := 1; m <= maxAllowed && m <= cap; m *= 2 {
		out = append(out, m)
	}
	return out
}

// fmtFloat renders measurement values compactly.
func fmtFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6 || math.Abs(v) < 1e-2:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// batch generates the experiment's query set: Queries random queries of
// n tables with the given join-graph shape.
func (c Config) batch(n int, shape workload.Shape) ([]*query.Query, error) {
	return workload.Batch(workload.NewParams(n, shape), c.BaseSeed, c.Queries)
}
