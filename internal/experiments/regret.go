package experiments

import (
	"fmt"

	"mpq/internal/core"
	"mpq/internal/cost"
	"mpq/internal/estim"
	"mpq/internal/exec"
	"mpq/internal/partition"
	"mpq/internal/plan"
	"mpq/internal/query"
	"mpq/internal/workload"
)

// RegretRow is one configuration of the regret sweep: a workload shape
// under one source of estimation error, with the regret of plans chosen
// from noisy estimates. Regret is the true-cost ratio against the
// true-optimal plan — Reannotate the chosen plan under the true
// selectivities, divide by the true optimum's cost — so 1 means the
// estimation error was harmless and larger values quantify the damage.
type RegretRow struct {
	Workload string
	N        int
	// Source names the error source: synthetic per-predicate noise
	// ("eps=2") or measured divergence on materialized data ("zipf s=1").
	Source string
	// QErr is the worst per-predicate q-error of the estimates actually
	// optimized against (1 = exact estimates).
	QErr float64
	// PointMed/PointMax are the median and worst regret of the
	// single-objective plan optimized from the noisy estimates.
	PointMed float64
	PointMax float64
	// RobustMed/RobustMax are the same for the robust plan (min
	// worst-case cost over the selectivity uncertainty band).
	RobustMed float64
	RobustMax float64
}

// Regret sweeps plan regret against estimation-error magnitude. Two
// legs:
//
// Synthetic: for each join-graph shape, optimize every query twice from
// q-error-perturbed estimates — single-objective (point) and robust
// with band 1+ε matching the noise bound — and cost both chosen plans
// under the true selectivities. At ε=0 both regrets are exactly 1 (the
// bit-identity guarantee); as ε grows point regret climbs. The sweep
// runs both symmetric noise (truth may sit on either side of the
// estimate) and underestimation-biased noise ("under" rows: estimates
// never exceed the truth, the bias real estimators exhibit). Under the
// bias the truth always lies inside the band the robust job plans
// against, which is where minimizing worst-case cost pays off in
// reduced worst-case regret.
//
// Measured: materialize a small workload with internal/exec (uniform
// and Zipf-skewed values), measure each predicate's true selectivity on
// the rows, and treat the catalog's uniform-independence estimates as
// the noisy input — estimation error as an executor actually produces
// it, not as a noise model assumes it.
func Regret(cfg Config) ([]RegretRow, error) {
	n := 8
	if cfg.Full {
		n = 11
	}
	shapes := []workload.Shape{workload.Star, workload.Chain, workload.Snowflake}
	sweeps := []struct {
		eps   float64
		under bool
	}{
		{0, false}, {0.5, false}, {1, false}, {2, false}, {4, false},
		{1, true}, {2, true}, {4, true},
	}
	m := cost.Default()
	spec := core.JobSpec{Space: partition.Linear, Workers: 1}

	var rows []RegretRow
	for _, shape := range shapes {
		qs, err := cfg.batch(n, shape)
		if err != nil {
			return nil, err
		}
		for _, sw := range sweeps {
			if err := cfg.canceled(); err != nil {
				return nil, err
			}
			qerr := 1.0
			var pointR, robustR []float64
			for i, q := range qs {
				noisy, err := estim.Perturb(q, estim.Noise{
					Magnitude: sw.eps, Seed: cfg.BaseSeed + 1000*int64(i) + 17, Underestimate: sw.under,
				})
				if err != nil {
					return nil, err
				}
				for j := range q.Preds {
					if e := estim.QError(noisy.Preds[j].Selectivity, q.Preds[j].Selectivity); e > qerr {
						qerr = e
					}
				}
				p, r, err := regretPair(noisy, q, m, spec, 1+sw.eps)
				if err != nil {
					return nil, err
				}
				pointR = append(pointR, p)
				robustR = append(robustR, r)
			}
			src := fmt.Sprintf("eps=%g", sw.eps)
			if sw.under {
				src += " under"
			}
			rows = append(rows, RegretRow{
				Workload: shape.String(), N: n, Source: src, QErr: qerr,
				PointMed: median(pointR), PointMax: maxFloat(pointR),
				RobustMed: median(robustR), RobustMax: maxFloat(robustR),
			})
		}
		cfg.progressf("regret: %s done", shape)
	}

	for _, skew := range []float64{0, 1} {
		if err := cfg.canceled(); err != nil {
			return nil, err
		}
		row, err := regretMeasured(cfg, skew)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	cfg.progressf("regret: measured (exec) done")
	return rows, nil
}

// regretPair optimizes noisy estimates both ways — point
// (single-objective) and robust with the given band — and returns each
// plan's regret under the true query. Both the chosen plans and the
// true optimum are costed by Reannotate, so identical plans yield
// regret exactly 1.
func regretPair(noisy, truth *query.Query, m cost.Model, spec core.JobSpec, band float64) (point, robust float64, err error) {
	trueAns, err := core.Optimize(truth, spec)
	if err != nil {
		return 0, 0, err
	}
	opt, err := trueAns.Best.Reannotate(truth, m)
	if err != nil {
		return 0, 0, err
	}
	pointAns, err := core.Optimize(noisy, spec)
	if err != nil {
		return 0, 0, err
	}
	rspec := spec
	rspec.Objective = core.RobustObjective
	rspec.RobustBand = band
	robustAns, err := core.Optimize(noisy, rspec)
	if err != nil {
		return 0, 0, err
	}
	if point, err = regretOf(pointAns.Best, truth, m, opt.Cost); err != nil {
		return 0, 0, err
	}
	if robust, err = regretOf(robustAns.Best, truth, m, opt.Cost); err != nil {
		return 0, 0, err
	}
	return point, robust, nil
}

// regretOf costs a chosen plan under the true selectivities and divides
// by the true-optimal cost.
func regretOf(chosen *plan.Node, truth *query.Query, m cost.Model, optCost float64) (float64, error) {
	re, err := chosen.Reannotate(truth, m)
	if err != nil {
		return 0, err
	}
	return re.Cost / optCost, nil
}

// regretMeasured is the executor-validated leg: materialize a small
// workload (Zipf value skew per attribute), measure every predicate's
// true selectivity on the rows, and report the regret of optimizing the
// catalog's estimates against the measured truth. The robust leg uses
// the engine's default band — the planner does not get to peek at the
// measured error.
func regretMeasured(cfg Config, skew float64) (RegretRow, error) {
	p := workload.NewParams(5, workload.Star)
	p.MinCard, p.MaxCard = 100, 1000
	cat, est, err := workload.Generate(p, cfg.BaseSeed+1)
	if err != nil {
		return RegretRow{}, err
	}
	db, err := exec.GenerateZipf(cat, cfg.BaseSeed+2, exec.Limits{}, skew)
	if err != nil {
		return RegretRow{}, err
	}
	truth, qerr, err := measuredQuery(est, db)
	if err != nil {
		return RegretRow{}, err
	}
	m := cost.Default()
	spec := core.JobSpec{Space: partition.Linear, Workers: 1}
	point, robust, err := regretPair(est, truth, m, spec, core.DefaultRobustBand)
	if err != nil {
		return RegretRow{}, err
	}
	return RegretRow{
		Workload: "exec(Star)", N: est.N(), Source: fmt.Sprintf("zipf s=%g", skew), QErr: qerr,
		PointMed: point, PointMax: point, RobustMed: robust, RobustMax: robust,
	}, nil
}

// measuredQuery rebuilds a query with each predicate's selectivity
// measured on the materialized rows. Zero-match predicates are floored
// at one matching row pair so the query stays valid; measured q-error
// against the estimates is returned alongside.
func measuredQuery(est *query.Query, db *exec.DB) (*query.Query, float64, error) {
	out, err := query.New(est.Tables)
	if err != nil {
		return nil, 0, err
	}
	qerr := 1.0
	for _, pr := range est.Preds {
		sel, err := db.MeasuredSelectivity(pr.Left, pr.LeftAttr, pr.Right, pr.RightAttr)
		if err != nil {
			return nil, 0, err
		}
		if sel <= 0 {
			sel = 1 / (est.Card(pr.Left) * est.Card(pr.Right))
		}
		if sel > 1 {
			sel = 1
		}
		if e := estim.QError(pr.Selectivity, sel); e > qerr {
			qerr = e
		}
		pr.Selectivity = sel
		if err := out.AddPredicate(pr); err != nil {
			return nil, 0, err
		}
	}
	out.Freeze()
	return out, qerr, nil
}

// maxFloat returns the maximum of xs (NaN-free inputs assumed).
func maxFloat(xs []float64) float64 {
	out := xs[0]
	for _, x := range xs[1:] {
		if x > out {
			out = x
		}
	}
	return out
}

// RegretTable renders the regret sweep.
func RegretTable(rows []RegretRow) *Table {
	t := &Table{
		Title:   "Regret sweep — true-cost ratio of plans optimized under noisy estimates",
		Caption: "point = single-objective on noisy estimates; robust = min worst-case over the uncertainty band (1+eps synthetic, default band for measured rows); 'under' rows bias the noise to underestimates; regret 1 = true-optimal",
		Columns: []string{"workload", "tables", "error", "qerr(max)", "point med", "point max", "robust med", "robust max"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Workload,
			fmt.Sprintf("%d", r.N),
			r.Source,
			fmtFloat(r.QErr),
			fmtFloat(r.PointMed),
			fmtFloat(r.PointMax),
			fmtFloat(r.RobustMed),
			fmtFloat(r.RobustMax),
		})
	}
	return t
}
