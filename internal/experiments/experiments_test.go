package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// figureScale skips t under -short: the guarded figure reproductions
// take tens of seconds each even at the tiny() scale. TestFig3 and
// TestFig4 (sub-second and ~1s) keep running as the short-mode smoke
// coverage of the experiment harness.
func figureScale(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("figure-scale experiment; run without -short")
	}
}

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	c := Quick()
	c.Queries = 3
	return c
}

// TestWorkloadsSweep checks the realistic-workload sweep: one row per
// join-graph shape (including Snowflake), a correlated-star row, and
// one row per built-in TPC-style schema, all with positive measurements
// — and the sweep must be deterministic for a fixed config.
func TestWorkloadsSweep(t *testing.T) {
	cfg := tiny()
	rows, err := Workloads(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Workload] = true
		if r.TimeMs <= 0 || r.Bytes <= 0 || r.Memo <= 0 || r.Workers < 1 {
			t.Fatalf("%s: non-positive measurement %+v", r.Workload, r)
		}
	}
	for _, want := range []string{"Star", "Chain", "Cycle", "Clique", "Snowflake", "Star(corr=0.8)", "tpch(sf=1)", "tpcds(sf=1)"} {
		if !names[want] {
			t.Errorf("sweep missing workload %q (have %v)", want, names)
		}
	}
	again, err := Workloads(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != again[i] {
			t.Fatalf("row %d not deterministic: %+v vs %+v", i, rows[i], again[i])
		}
	}
	table := WorkloadsTable(rows)
	if len(table.Rows) != len(rows) || len(table.Columns) != 7 {
		t.Fatalf("table shape wrong: %d rows, %d cols", len(table.Rows), len(table.Columns))
	}
}

func TestMedian(t *testing.T) {
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
	if !math.IsNaN(median(nil)) {
		t.Fatal("empty median")
	}
}

func TestMeanCI(t *testing.T) {
	mean, ci := meanCI([]float64{2, 2, 2, 2})
	if mean != 2 || ci != 0 {
		t.Fatalf("constant data: mean=%g ci=%g", mean, ci)
	}
	mean, ci = meanCI([]float64{1, 3})
	if mean != 2 || ci <= 0 {
		t.Fatalf("mean=%g ci=%g", mean, ci)
	}
	if m, _ := meanCI([]float64{5}); m != 5 {
		t.Fatal("single sample mean")
	}
}

func TestWorkerCounts(t *testing.T) {
	got := workerCounts(16, 128)
	want := []int{1, 2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
	if got := workerCounts(256, 8); got[len(got)-1] != 8 {
		t.Fatalf("cap not applied: %v", got)
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "T",
		Caption: "c",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "333") {
		t.Fatalf("render output:\n%s", out)
	}
}

func TestFig1ShapesHold(t *testing.T) {
	figureScale(t)
	panels, err := Fig1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 4 {
		t.Fatalf("%d panels", len(panels))
	}
	for _, p := range panels {
		if len(p.MPQ.Points) == 0 || len(p.MPQ.Points) != len(p.SMA.Points) {
			t.Fatalf("panel %v-%d has mismatched series", p.Space, p.N)
		}
		// The paper's headline: MPQ sends at least an order of magnitude
		// less data than SMA at every degree of parallelism, and faster
		// optimization at the top parallelism.
		for i := range p.MPQ.Points {
			if 10*p.MPQ.Points[i].Bytes > p.SMA.Points[i].Bytes {
				t.Fatalf("panel %v-%d m=%d: MPQ bytes %g not an order below SMA bytes %g",
					p.Space, p.N, p.MPQ.Points[i].Workers, p.MPQ.Points[i].Bytes, p.SMA.Points[i].Bytes)
			}
		}
		last := len(p.MPQ.Points) - 1
		if p.MPQ.Points[last].TimeMs >= p.SMA.Points[last].TimeMs {
			t.Fatalf("panel %v-%d: MPQ not faster than SMA at max parallelism", p.Space, p.N)
		}
	}
	if tables := Fig1Tables(panels); len(tables) != 4 || len(tables[0].Rows) == 0 {
		t.Fatal("Fig1Tables rendering")
	}
}

func TestFig2ShapesHold(t *testing.T) {
	figureScale(t)
	panels, err := Fig2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 4 {
		t.Fatalf("%d panels", len(panels))
	}
	for _, p := range panels {
		pts := p.Points
		if len(pts) < 3 {
			t.Fatalf("panel %v-%d has %d points", p.Space, p.N, len(pts))
		}
		// W-Time and memory decrease monotonically with workers.
		for i := 1; i < len(pts); i++ {
			if pts[i].WTimeMs >= pts[i-1].WTimeMs {
				t.Fatalf("panel %v-%d: W-time not decreasing at m=%d", p.Space, p.N, pts[i].Workers)
			}
			if pts[i].MemoryRelations >= pts[i-1].MemoryRelations {
				t.Fatalf("panel %v-%d: memory not decreasing at m=%d", p.Space, p.N, pts[i].Workers)
			}
			if pts[i].Bytes <= pts[i-1].Bytes {
				t.Fatalf("panel %v-%d: network bytes not increasing at m=%d", p.Space, p.N, pts[i].Workers)
			}
		}
		// Large-enough search spaces: total time at max parallelism beats
		// one worker.
		if pts[len(pts)-1].TimeMs >= pts[0].TimeMs {
			t.Fatalf("panel %v-%d: no end-to-end speedup (%.2f -> %.2f ms)",
				p.Space, p.N, pts[0].TimeMs, pts[len(pts)-1].TimeMs)
		}
	}
	if tables := Fig2Tables(panels); len(tables) != 4 {
		t.Fatal("Fig2Tables rendering")
	}
}

func TestFig3JoinGraphImpactNegligible(t *testing.T) {
	cfg := tiny()
	panels, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 3 {
		t.Fatalf("%d panels", len(panels))
	}
	for _, p := range panels {
		if len(p.Shapes) != 3 {
			t.Fatalf("panel %s-%d: %d shapes", p.Algo, p.N, len(p.Shapes))
		}
		// The DP treats the same number of sets regardless of the join
		// graph: times across shapes must agree within a small factor.
		for i := range p.Shapes[0].Points {
			lo, hi := math.Inf(1), 0.0
			for _, s := range p.Shapes {
				v := s.Points[i].TimeMs
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
			if hi/lo > 1.25 {
				t.Fatalf("panel %s-%d: shape impact %.2fx at point %d", p.Algo, p.N, hi/lo, i)
			}
		}
	}
	if tables := Fig3Tables(panels); len(tables) != 3 {
		t.Fatal("Fig3Tables rendering")
	}
}

func TestFig4MPQBeatsSMA(t *testing.T) {
	panels, err := Fig4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 2 {
		t.Fatalf("%d panels", len(panels))
	}
	for _, p := range panels {
		if p.MedianFrontier < 1 {
			t.Fatalf("panel %v-%d: median frontier %g", p.Space, p.N, p.MedianFrontier)
		}
		for i := range p.MPQ.Points {
			if p.MPQ.Points[i].Bytes >= p.SMA.Points[i].Bytes {
				t.Fatalf("panel %v-%d: MO MPQ bytes not below SMA", p.Space, p.N)
			}
		}
	}
	if tables := Fig4Tables(panels); len(tables) != 2 {
		t.Fatal("Fig4Tables rendering")
	}
}

func TestFig5ScalingSteady(t *testing.T) {
	figureScale(t)
	panels, err := Fig5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 2 {
		t.Fatalf("%d panels", len(panels))
	}
	for _, p := range panels {
		pts := p.Points
		if len(pts) < 2 {
			t.Fatalf("panel %d: %d points", p.N, len(pts))
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].WTimeMs >= pts[i-1].WTimeMs {
				t.Fatalf("panel %d: W-time not decreasing", p.N)
			}
		}
	}
	if tables := Fig5Tables(panels); len(tables) != 2 {
		t.Fatal("Fig5Tables rendering")
	}
}

func TestTable1GradientHolds(t *testing.T) {
	figureScale(t)
	cfg := tiny()
	opts := DefaultTable1Options(false)
	res, err := Table1(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(opts.Budgets) {
		t.Fatalf("%d budget rows", len(res.Cells))
	}
	for bi := range res.Cells {
		if len(res.Cells[bi]) != len(opts.Sizes) {
			t.Fatalf("budget %d: %d size rows", bi, len(res.Cells[bi]))
		}
		for si := range res.Cells[bi] {
			row := res.Cells[bi][si]
			// Coarser precision never needs more workers than finer.
			for ai := 1; ai < len(row); ai++ {
				if row[ai-1].Infinite || row[ai].Infinite {
					continue
				}
				if row[ai].MinWorkers > row[ai-1].MinWorkers {
					t.Fatalf("budget %d size %d: α=%g needs %d workers > α=%g's %d",
						bi, si, opts.Alphas[ai], row[ai].MinWorkers, opts.Alphas[ai-1], row[ai-1].MinWorkers)
				}
			}
		}
		// A larger budget never increases the required parallelism.
		if bi > 0 {
			for si := range res.Cells[bi] {
				for ai := range res.Cells[bi][si] {
					prev, cur := res.Cells[bi-1][si][ai], res.Cells[bi][si][ai]
					if prev.Infinite {
						continue
					}
					if cur.Infinite || cur.MinWorkers > prev.MinWorkers {
						t.Fatalf("budget grew but cell got worse: %v -> %v", prev, cur)
					}
				}
			}
		}
	}
	tbl := Table1Table(res)
	if len(tbl.Rows) != len(opts.Budgets)*len(opts.Sizes) {
		t.Fatal("Table1Table rendering")
	}
}

func TestTable1CellString(t *testing.T) {
	if (Table1Cell{Infinite: true}).String() != "inf" {
		t.Fatal("inf cell")
	}
	if (Table1Cell{MinWorkers: 8}).String() != "8" {
		t.Fatal("numeric cell")
	}
}

func TestSpeedupsPositive(t *testing.T) {
	figureScale(t)
	cfg := tiny()
	cfg.Queries = 2
	rows, err := Speedups(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !(r.Virtual > 1) {
			t.Fatalf("%v-%d m=%d: virtual speedup %.2f not > 1", r.Space, r.N, r.Workers, r.Virtual)
		}
	}
	tbl := SpeedupsTable(rows, false)
	if len(tbl.Rows) != 4 {
		t.Fatal("SpeedupsTable rendering")
	}
}

func TestProgressWriter(t *testing.T) {
	cfg := tiny()
	var buf bytes.Buffer
	cfg.Progress = &buf
	cfg.progressf("hello %d", 42)
	if buf.String() != "hello 42\n" {
		t.Fatalf("progress output %q", buf.String())
	}
}

func TestFmtFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1234567: "1.23e+06",
		12.345:  "12.35",
		0.001:   "0.001",
	}
	for v, want := range cases {
		if got := fmtFloat(v); got != want {
			t.Errorf("fmtFloat(%g) = %q want %q", v, got, want)
		}
	}
	if fmtFloat(math.NaN()) != "-" {
		t.Error("NaN")
	}
}

func TestQuickAndFullConfigs(t *testing.T) {
	q := Quick()
	if q.Full || q.Queries != 5 {
		t.Fatalf("Quick = %+v", q)
	}
	f := FullScale()
	if !f.Full || f.Queries != 20 || f.MaxWorkers != 256 {
		t.Fatalf("FullScale = %+v", f)
	}
	if err := f.Model.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = time.Second
}
