package experiments

import (
	"fmt"

	"mpq/internal/core"
	"mpq/internal/partition"
	"mpq/internal/sma"
	"mpq/internal/workload"
)

// DefaultAlpha is the paper's default approximation factor for the
// multi-objective experiment series (§6.1).
const DefaultAlpha = 10

// Fig4Panel is one subplot of Figure 4: multi-objective MPQ vs SMA.
type Fig4Panel struct {
	Space partition.Space
	N     int
	MPQ   Series
	SMA   Series
	// MedianFrontier is the median number of Pareto plans MPQ returned
	// (the paper reports 21 for Linear-12 and 16 for Bushy-9).
	MedianFrontier float64
}

// Fig4 reproduces Figure 4: multi-objective (time + buffer) optimization
// with α-approximate pruning, MPQ vs SMA, on Linear-10 and Bushy-9.
func Fig4(cfg Config) ([]Fig4Panel, error) {
	type pn struct {
		space partition.Space
		n     int
	}
	panels := []pn{{partition.Linear, 10}, {partition.Bushy, 9}}
	var out []Fig4Panel
	for _, p := range panels {
		panel, err := fig4Panel(cfg, p.space, p.n)
		if err != nil {
			return nil, err
		}
		out = append(out, panel)
		cfg.progressf("fig4: %v-%d done", p.space, p.n)
	}
	return out, nil
}

func fig4Panel(cfg Config, space partition.Space, n int) (Fig4Panel, error) {
	panel := Fig4Panel{Space: space, N: n}
	qs, err := cfg.batch(n, workload.Star)
	if err != nil {
		return panel, err
	}
	cap := cfg.MaxWorkers
	if cap > 128 {
		cap = 128
	}
	var frontierSizes []float64
	for _, m := range workerCounts(partition.MaxWorkers(space, n), cap) {
		spec := core.JobSpec{
			Space: space, Workers: m,
			Objective: core.MultiObjective, Alpha: DefaultAlpha,
		}
		var mpqT, mpqB, smaT, smaB []float64
		for _, q := range qs {
			if err := cfg.canceled(); err != nil {
				return panel, err
			}
			mres, err := runMPQ(cfg, q, spec)
			if err != nil {
				return panel, err
			}
			mpqT = append(mpqT, ms(mres.Metrics.VirtualTime))
			mpqB = append(mpqB, float64(mres.Metrics.Bytes))
			frontierSizes = append(frontierSizes, float64(len(mres.Frontier)))
			sres, err := sma.Run(cfg.Model, q, spec)
			if err != nil {
				return panel, err
			}
			smaT = append(smaT, ms(sres.Metrics.VirtualTime))
			smaB = append(smaB, float64(sres.Metrics.Bytes))
		}
		panel.MPQ.Points = append(panel.MPQ.Points, Point{Workers: m, TimeMs: median(mpqT), Bytes: median(mpqB)})
		panel.SMA.Points = append(panel.SMA.Points, Point{Workers: m, TimeMs: median(smaT), Bytes: median(smaB)})
	}
	panel.MPQ.Label = fmt.Sprintf("MPQ %v-%d (MO)", space, n)
	panel.SMA.Label = fmt.Sprintf("SMA %v-%d (MO)", space, n)
	panel.MedianFrontier = median(frontierSizes)
	return panel, nil
}

// Fig4Tables renders the Figure 4 panels.
func Fig4Tables(panels []Fig4Panel) []*Table {
	var out []*Table
	for _, p := range panels {
		t := &Table{
			Title: fmt.Sprintf("Figure 4 — multi-objective, %v %d tables (α=%d, medians)", p.Space, p.N, DefaultAlpha),
			Caption: fmt.Sprintf("median Pareto frontier size: %s plans",
				fmtFloat(p.MedianFrontier)),
			Columns: []string{"workers", "MPQ time(ms)", "MPQ net(bytes)", "SMA time(ms)", "SMA net(bytes)"},
		}
		for i := range p.MPQ.Points {
			mp, sp := p.MPQ.Points[i], p.SMA.Points[i]
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", mp.Workers),
				fmtFloat(mp.TimeMs), fmtFloat(mp.Bytes),
				fmtFloat(sp.TimeMs), fmtFloat(sp.Bytes),
			})
		}
		out = append(out, t)
	}
	return out
}
