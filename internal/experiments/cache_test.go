package experiments

import "testing"

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := percentile(xs, 0.50); got != 3 {
		t.Fatalf("p50 = %g", got)
	}
	if got := percentile(xs, 1.0); got != 5 {
		t.Fatalf("p100 = %g", got)
	}
	if got := percentile(xs, 0.0); got != 1 {
		t.Fatalf("p0 = %g", got)
	}
	if percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestFmtBudget(t *testing.T) {
	if fmtBudget(0) != "unlimited" {
		t.Fatal("unlimited budget")
	}
	if fmtBudget(16<<10) != "16KB" {
		t.Fatal("16KB budget")
	}
}

// TestCacheServingSweep runs the quick-scale sweep end to end: one row
// per (skew, budget) pair, sane rates, no evictions without a budget,
// eviction pressure with one, and a clear win at the acceptance point
// (skew 1.1, unlimited).
func TestCacheServingSweep(t *testing.T) {
	figureScale(t)
	cfg := tiny()
	rows, err := CacheServing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, budgets := cacheScale(cfg)
	if len(rows) != len(cacheSkews)*len(budgets) {
		t.Fatalf("%d rows, want %d", len(rows), len(cacheSkews)*len(budgets))
	}
	for _, r := range rows {
		if r.HitRate < 0 || r.HitRate > 1 {
			t.Fatalf("hit rate %g out of range", r.HitRate)
		}
		if r.P50us <= 0 || r.P99us < r.P50us {
			t.Fatalf("latency percentiles p50=%g p99=%g", r.P50us, r.P99us)
		}
		if r.MaxBytes == 0 && r.Evictions != 0 {
			t.Fatalf("unlimited budget evicted %d entries", r.Evictions)
		}
		if r.MaxBytes == 0 && r.Skew >= 1.1 && r.Speedup < 10 {
			t.Fatalf("skew=%.2f unlimited: speedup %.1fx below the acceptance bar", r.Skew, r.Speedup)
		}
	}
	tbl := CacheServingTable(rows)
	if len(tbl.Rows) != len(rows) || len(tbl.Columns) != 11 {
		t.Fatalf("table shape: %d rows, %d cols", len(tbl.Rows), len(tbl.Columns))
	}
}
