package experiments

import (
	"fmt"

	"mpq/internal/cluster"
	"mpq/internal/core"
	"mpq/internal/partition"
	"mpq/internal/query"
	"mpq/internal/workload"
)

// runMPQ simulates one MPQ job on the configured cluster, honoring the
// experiment's cancellation context.
func runMPQ(cfg Config, q *query.Query, spec core.JobSpec) (*cluster.Result, error) {
	return cluster.RunMPQContext(cfg.context(), cfg.Model, q, spec)
}

// Fig2Panel is one curve set of Figure 2: MPQ scaling for one plan space
// and query size, single-objective, reporting total time, max worker
// time, peak worker memory and network traffic.
type Fig2Panel struct {
	Space  partition.Space
	N      int
	Points []Point
}

// Fig2 reproduces Figure 2: MPQ scaling on search spaces large enough to
// justify parallelization. Paper sizes: Linear-20, Linear-24, Bushy-15,
// Bushy-18; the quick configuration uses Linear-14/16 and Bushy-10/12.
func Fig2(cfg Config) ([]Fig2Panel, error) {
	type pn struct {
		space partition.Space
		n     int
	}
	var panels []pn
	if cfg.Full {
		panels = []pn{
			{partition.Linear, 20}, {partition.Linear, 24},
			{partition.Bushy, 15}, {partition.Bushy, 18},
		}
	} else {
		panels = []pn{
			{partition.Linear, 14}, {partition.Linear, 16},
			{partition.Bushy, 10}, {partition.Bushy, 12},
		}
	}
	var out []Fig2Panel
	for _, p := range panels {
		panel, err := fig2Panel(cfg, p.space, p.n)
		if err != nil {
			return nil, err
		}
		out = append(out, panel)
		cfg.progressf("fig2: %v-%d done", p.space, p.n)
	}
	return out, nil
}

func fig2Panel(cfg Config, space partition.Space, n int) (Fig2Panel, error) {
	panel := Fig2Panel{Space: space, N: n}
	qs, err := cfg.batch(n, workload.Star)
	if err != nil {
		return panel, err
	}
	cap := cfg.MaxWorkers
	if cap > 128 {
		cap = 128 // Figure 2 stops at 128
	}
	for _, m := range workerCounts(partition.MaxWorkers(space, n), cap) {
		spec := core.JobSpec{Space: space, Workers: m}
		var t, wt, mem, bytes []float64
		for _, q := range qs {
			res, err := runMPQ(cfg, q, spec)
			if err != nil {
				return panel, err
			}
			t = append(t, ms(res.Metrics.VirtualTime))
			wt = append(wt, ms(res.Metrics.MaxWorkerTime))
			mem = append(mem, float64(res.Metrics.MaxMemoEntries))
			bytes = append(bytes, float64(res.Metrics.Bytes))
		}
		panel.Points = append(panel.Points, Point{
			Workers: m, TimeMs: median(t), WTimeMs: median(wt),
			MemoryRelations: median(mem), Bytes: median(bytes),
		})
	}
	return panel, nil
}

// Fig2Tables renders the Figure 2 panels.
func Fig2Tables(panels []Fig2Panel) []*Table {
	var out []*Table
	for _, p := range panels {
		t := &Table{
			Title:   fmt.Sprintf("Figure 2 — MPQ scaling, %v %d tables (single objective, medians)", p.Space, p.N),
			Columns: []string{"workers", "time(ms)", "w-time(ms)", "memory(relations)", "net(bytes)"},
		}
		for _, pt := range p.Points {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", pt.Workers),
				fmtFloat(pt.TimeMs), fmtFloat(pt.WTimeMs),
				fmtFloat(pt.MemoryRelations), fmtFloat(pt.Bytes),
			})
		}
		out = append(out, t)
	}
	return out
}
