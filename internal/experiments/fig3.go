package experiments

import (
	"fmt"

	"mpq/internal/core"
	"mpq/internal/partition"
	"mpq/internal/sma"
	"mpq/internal/workload"
)

// Fig3Panel is one subplot of Figure 3: optimization time by join-graph
// shape (chain, star, cycle) for one algorithm and query size, with 95%
// confidence intervals over the query batch.
type Fig3Panel struct {
	Algo   string // "SMA" or "MPQ"
	N      int
	Shapes []Series // one series per join-graph shape
}

// Fig3 reproduces Figure 3: the impact of the join-graph structure on
// optimization time is negligible for both algorithms, because the
// dynamic program treats the same number of intermediate results
// regardless of the graph (cross products are allowed). The paper's
// panels are SMA-8, SMA-12, MPQ-12; the quick configuration shrinks the
// second SMA panel.
func Fig3(cfg Config) ([]Fig3Panel, error) {
	type pn struct {
		algo string
		n    int
	}
	panels := []pn{{"SMA", 8}}
	if cfg.Full {
		panels = append(panels, pn{"SMA", 12}, pn{"MPQ", 12})
	} else {
		panels = append(panels, pn{"SMA", 10}, pn{"MPQ", 12})
	}
	var out []Fig3Panel
	for _, p := range panels {
		panel, err := fig3Panel(cfg, p.algo, p.n)
		if err != nil {
			return nil, err
		}
		out = append(out, panel)
		cfg.progressf("fig3: %s-%d done", p.algo, p.n)
	}
	return out, nil
}

func fig3Panel(cfg Config, algo string, n int) (Fig3Panel, error) {
	panel := Fig3Panel{Algo: algo, N: n}
	shapes := []workload.Shape{workload.Chain, workload.Star, workload.Cycle}
	counts := []int{2, 16, 128}
	for _, shape := range shapes {
		qs, err := cfg.batch(n, shape)
		if err != nil {
			return panel, err
		}
		s := Series{Label: shape.String()}
		for _, m := range counts {
			if m > partition.MaxWorkers(partition.Linear, n) || m > cfg.MaxWorkers {
				continue
			}
			spec := core.JobSpec{Space: partition.Linear, Workers: m}
			var times []float64
			for _, q := range qs {
				if err := cfg.canceled(); err != nil {
					return panel, err
				}
				var t float64
				if algo == "SMA" {
					res, err := sma.Run(cfg.Model, q, spec)
					if err != nil {
						return panel, err
					}
					t = ms(res.Metrics.VirtualTime)
				} else {
					res, err := runMPQ(cfg, q, spec)
					if err != nil {
						return panel, err
					}
					t = ms(res.Metrics.VirtualTime)
				}
				times = append(times, t)
			}
			mean, ci := meanCI(times)
			s.Points = append(s.Points, Point{Workers: m, TimeMs: mean, CI95: ci})
		}
		panel.Shapes = append(panel.Shapes, s)
	}
	return panel, nil
}

// Fig3Tables renders the Figure 3 panels.
func Fig3Tables(panels []Fig3Panel) []*Table {
	var out []*Table
	for _, p := range panels {
		t := &Table{
			Title:   fmt.Sprintf("Figure 3 — %s, %d tables: join-graph impact (mean ± 95%% CI, ms)", p.Algo, p.N),
			Columns: []string{"workers"},
		}
		for _, s := range p.Shapes {
			t.Columns = append(t.Columns, s.Label)
		}
		if len(p.Shapes) == 0 || len(p.Shapes[0].Points) == 0 {
			out = append(out, t)
			continue
		}
		for i := range p.Shapes[0].Points {
			row := []string{fmt.Sprintf("%d", p.Shapes[0].Points[i].Workers)}
			for _, s := range p.Shapes {
				row = append(row, fmt.Sprintf("%s ± %s", fmtFloat(s.Points[i].TimeMs), fmtFloat(s.Points[i].CI95)))
			}
			t.Rows = append(t.Rows, row)
		}
		out = append(out, t)
	}
	return out
}
