package experiments

import (
	"fmt"
	"time"

	"mpq/internal/core"
	"mpq/internal/dp"
	"mpq/internal/partition"
	"mpq/internal/workload"
)

// SpeedupRow is one measured speedup: parallel optimization (including
// master computation and communication overheads) versus the classical
// serial algorithm on one worker (excluding those overheads), computed
// the way §6.2 defines it.
type SpeedupRow struct {
	Space     partition.Space
	N         int
	Workers   int
	Objective core.Objective
	// Virtual is the speedup in simulated-cluster time.
	Virtual float64
	// Real is the wall-clock speedup of the goroutine engine over the
	// serial DP on this machine (0 if not measured).
	Real float64
}

// Speedups reproduces the speedup numbers quoted in §6.2 (e.g. 8.1x for
// Linear-24 at 128 workers, 9.4x for multi-objective Linear-20). Full
// scale uses the paper's sizes; quick scale shrinks them.
func Speedups(cfg Config, measureReal bool) ([]SpeedupRow, error) {
	type cse struct {
		space partition.Space
		n     int
		m     int
		obj   core.Objective
	}
	var cases []cse
	if cfg.Full {
		cases = []cse{
			{partition.Linear, 20, 128, core.SingleObjective},
			{partition.Linear, 24, 128, core.SingleObjective},
			{partition.Bushy, 15, 32, core.SingleObjective},
			{partition.Bushy, 18, 64, core.SingleObjective},
			{partition.Linear, 16, 256, core.MultiObjective},
			{partition.Linear, 18, 256, core.MultiObjective},
			{partition.Linear, 20, 256, core.MultiObjective},
		}
	} else {
		cases = []cse{
			{partition.Linear, 14, 64, core.SingleObjective},
			{partition.Linear, 16, 128, core.SingleObjective},
			{partition.Bushy, 12, 16, core.SingleObjective},
			{partition.Linear, 14, 128, core.MultiObjective},
		}
	}
	var out []SpeedupRow
	for _, c := range cases {
		row, err := speedupCase(cfg, c.space, c.n, c.m, c.obj, measureReal)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
		cfg.progressf("speedups: %v-%d m=%d %v done", c.space, c.n, c.m, c.obj)
	}
	return out, nil
}

func speedupCase(cfg Config, space partition.Space, n, m int, obj core.Objective, measureReal bool) (SpeedupRow, error) {
	row := SpeedupRow{Space: space, N: n, Workers: m, Objective: obj}
	qs, err := cfg.batch(n, workload.Star)
	if err != nil {
		return row, err
	}
	spec := core.JobSpec{Space: space, Workers: m, Objective: obj}
	if obj == core.MultiObjective {
		spec.Alpha = DefaultAlpha
	}
	serialSpec := spec
	serialSpec.Workers = 1

	var virt []float64
	var real []float64
	for _, q := range qs {
		// Serial reference: worker time only, no communication (the
		// paper measures the classical algorithm on a single node).
		serialRes, err := core.RunWorkerContext(cfg.context(), q, serialSpec, 0)
		if err != nil {
			return row, err
		}
		serialVirtual := time.Duration(float64(serialRes.Stats.WorkUnits()) * cfg.Model.NsPerWorkUnit)

		parRes, err := runMPQ(cfg, q, spec)
		if err != nil {
			return row, err
		}
		virt = append(virt, float64(serialVirtual)/float64(parRes.Metrics.VirtualTime))

		if measureReal {
			t0 := time.Now()
			if _, err := dp.RunContext(cfg.context(), q, partition.Unconstrained(space, n), spec.DPOptions()); err != nil {
				return row, err
			}
			serialWall := time.Since(t0)
			t0 = time.Now()
			if _, err := core.OptimizeContext(cfg.context(), q, spec, spec.Workers); err != nil {
				return row, err
			}
			parWall := time.Since(t0)
			real = append(real, float64(serialWall)/float64(parWall))
		}
	}
	row.Virtual = median(virt)
	if measureReal {
		row.Real = median(real)
	}
	return row, nil
}

// SpeedupsTable renders the speedup rows.
func SpeedupsTable(rows []SpeedupRow, measuredReal bool) *Table {
	t := &Table{
		Title:   "§6.2 — speedup of parallel over serial optimization (medians)",
		Caption: "virtual: simulated cluster including communication; real: goroutine engine wall clock on this machine",
		Columns: []string{"space", "tables", "workers", "objective", "virtual speedup", "real speedup"},
	}
	for _, r := range rows {
		realCell := "-"
		if measuredReal {
			realCell = fmtFloat(r.Real)
		}
		t.Rows = append(t.Rows, []string{
			r.Space.String(), fmt.Sprintf("%d", r.N), fmt.Sprintf("%d", r.Workers),
			r.Objective.String(), fmtFloat(r.Virtual), realCell,
		})
	}
	return t
}
