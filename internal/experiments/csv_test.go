package experiments

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	tbl := &Table{
		Title:   "Figure X",
		Caption: "a caption",
		Columns: []string{"workers", "time"},
		Rows:    [][]string{{"1", "10.5"}, {"2", "6.1"}},
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# Figure X\n# a caption\n") {
		t.Fatalf("missing comments:\n%s", out)
	}
	// The CSV body must parse back.
	body := out[strings.Index(out, "workers"):]
	records, err := csv.NewReader(strings.NewReader(body)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 || records[2][1] != "6.1" {
		t.Fatalf("records = %v", records)
	}
}

func TestWriteCSVNoCaption(t *testing.T) {
	tbl := &Table{Title: "T", Columns: []string{"a"}, Rows: [][]string{{"1"}}}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "#") != 1 {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestWriteJSON(t *testing.T) {
	tbl := &Table{
		Title:   "Figure X",
		Caption: "a caption",
		Columns: []string{"workers", "time"},
		Rows:    [][]string{{"1", "10.5"}, {"2", "6.1"}},
	}
	var buf bytes.Buffer
	if err := tbl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Title   string     `json:"title"`
		Caption string     `json:"caption"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if got.Title != "Figure X" || got.Caption != "a caption" {
		t.Fatalf("round trip: %+v", got)
	}
	if len(got.Columns) != 2 || len(got.Rows) != 2 || got.Rows[1][1] != "6.1" {
		t.Fatalf("round trip: %+v", got)
	}
	// One object per line (JSON Lines): exactly one trailing newline.
	if strings.Count(buf.String(), "\n") != 1 {
		t.Fatalf("not a single JSON line:\n%s", buf.String())
	}
}
