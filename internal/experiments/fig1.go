package experiments

import (
	"fmt"

	"mpq/internal/core"
	"mpq/internal/partition"
	"mpq/internal/sma"
	"mpq/internal/workload"
)

// Fig1Panel is one subplot of Figure 1: MPQ vs SMA over worker counts,
// for one plan space and query size, single-objective.
type Fig1Panel struct {
	Space partition.Space
	N     int
	MPQ   Series
	SMA   Series
}

// Fig1 reproduces Figure 1: optimization time and network traffic for
// MPQ and SMA, single cost metric, over increasing worker counts.
// The paper's panels are Linear-8, Linear-16, Bushy-9, Bushy-15; the
// quick configuration substitutes smaller second panels.
func Fig1(cfg Config) ([]Fig1Panel, error) {
	type pn struct {
		space partition.Space
		n     int
	}
	panels := []pn{{partition.Linear, 8}, {partition.Bushy, 9}}
	if cfg.Full {
		panels = append(panels, pn{partition.Linear, 16}, pn{partition.Bushy, 15})
	} else {
		panels = append(panels, pn{partition.Linear, 10}, pn{partition.Bushy, 12})
	}
	var out []Fig1Panel
	for _, p := range panels {
		panel, err := fig1Panel(cfg, p.space, p.n)
		if err != nil {
			return nil, err
		}
		out = append(out, panel)
		cfg.progressf("fig1: %v-%d done", p.space, p.n)
	}
	return out, nil
}

func fig1Panel(cfg Config, space partition.Space, n int) (Fig1Panel, error) {
	panel := Fig1Panel{Space: space, N: n}
	qs, err := cfg.batch(n, workload.Star)
	if err != nil {
		return panel, err
	}
	cap := cfg.MaxWorkers
	if cap > 128 {
		cap = 128 // Figure 1 stops at 128
	}
	for _, m := range workerCounts(partition.MaxWorkers(space, n), cap) {
		spec := core.JobSpec{Space: space, Workers: m}
		var mpqT, mpqB, smaT, smaB []float64
		for _, q := range qs {
			if err := cfg.canceled(); err != nil {
				return panel, err
			}
			mres, err := runMPQ(cfg, q, spec)
			if err != nil {
				return panel, err
			}
			mpqT = append(mpqT, ms(mres.Metrics.VirtualTime))
			mpqB = append(mpqB, float64(mres.Metrics.Bytes))
			sres, err := sma.Run(cfg.Model, q, spec)
			if err != nil {
				return panel, err
			}
			smaT = append(smaT, ms(sres.Metrics.VirtualTime))
			smaB = append(smaB, float64(sres.Metrics.Bytes))
		}
		panel.MPQ.Points = append(panel.MPQ.Points, Point{Workers: m, TimeMs: median(mpqT), Bytes: median(mpqB)})
		panel.SMA.Points = append(panel.SMA.Points, Point{Workers: m, TimeMs: median(smaT), Bytes: median(smaB)})
	}
	panel.MPQ.Label = fmt.Sprintf("MPQ %v-%d", space, n)
	panel.SMA.Label = fmt.Sprintf("SMA %v-%d", space, n)
	return panel, nil
}

// Tables renders the Figure 1 panels.
func Fig1Tables(panels []Fig1Panel) []*Table {
	var out []*Table
	for _, p := range panels {
		t := &Table{
			Title:   fmt.Sprintf("Figure 1 — %v %d tables (single objective, star queries, medians)", p.Space, p.N),
			Columns: []string{"workers", "MPQ time(ms)", "MPQ net(bytes)", "SMA time(ms)", "SMA net(bytes)"},
		}
		for i := range p.MPQ.Points {
			mp, sp := p.MPQ.Points[i], p.SMA.Points[i]
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", mp.Workers),
				fmtFloat(mp.TimeMs), fmtFloat(mp.Bytes),
				fmtFloat(sp.TimeMs), fmtFloat(sp.Bytes),
			})
		}
		out = append(out, t)
	}
	return out
}
