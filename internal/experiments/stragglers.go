package experiments

import (
	"fmt"

	"mpq/internal/cluster"
	"mpq/internal/core"
	"mpq/internal/partition"
	"mpq/internal/wire"
	"mpq/internal/workload"
)

// StragglerRow is one measured (stall factor, policy) point of the
// straggler sweep: median virtual optimization time under a scripted
// stall, with and without speculative re-dispatch, against the
// fault-free adaptive schedule on the same bounded node pool.
type StragglerRow struct {
	// Tables, Workers and Nodes describe the workload and pool.
	Tables  int
	Workers int
	Nodes   int
	// StallFactor is the scripted slowdown of node 0 (0 = fault-free
	// baseline row).
	StallFactor float64
	// Speculate reports whether the master raced stragglers against
	// speculative clones.
	Speculate bool
	// TimeMs is the median virtual optimization time over the queries.
	TimeMs float64
	// XClean is TimeMs over the fault-free median — the price of the
	// stall under this policy.
	XClean float64
	// Speculations and Redispatches are totals over the query batch.
	Speculations int
	Redispatches int
	// WastedPct is speculative race losers' burned work as a share of
	// the batch's useful DP work.
	WastedPct float64
	// PlanSafe reports that every query's chosen plan was fingerprint-
	// identical to the fault-free run — adaptivity changed when things
	// ran, never what was computed.
	PlanSafe bool
}

// stragglerScale returns the sweep dimensions.
func stragglerScale(cfg Config) (tables, workers, nodes int, factors []float64) {
	if cfg.Full {
		return 14, 16, 8, []float64{50, 200, 1000}
	}
	return 10, 8, 4, []float64{50, 200}
}

// Stragglers sweeps stall factor × {wait, speculate} on the adaptive
// virtual-time scheduler: node 0 of a bounded pool computes StallFactor×
// slower than the model's rate, and the simulated master either waits
// out the straggler or races it against a speculative clone on an idle
// node (the netrun master's policy, in virtual time). Every run's chosen
// plan is checked fingerprint-identical to the fault-free run; the sweep
// measures only when answers arrive, never what they are.
func Stragglers(cfg Config) ([]StragglerRow, error) {
	tables, workers, nodes, factors := stragglerScale(cfg)
	queries, err := cfg.batch(tables, workload.Star)
	if err != nil {
		return nil, err
	}
	spec := core.JobSpec{Space: partition.Linear, Workers: workers}
	model := cfg.Model
	model.Nodes = nodes

	// Fault-free baseline on the same bounded pool: the reference both
	// for time (XClean) and for the plan fingerprints.
	cleanTimes := make([]float64, len(queries))
	cleanFPs := make([]string, len(queries))
	for i, q := range queries {
		if err := cfg.canceled(); err != nil {
			return nil, err
		}
		res, err := cluster.RunMPQWithFaultsContext(cfg.context(), model, q, spec, cluster.Faults{})
		if err != nil {
			return nil, err
		}
		cleanTimes[i] = ms(res.Metrics.VirtualTime)
		cleanFPs[i] = wire.PlanFingerprint(res.Best)
	}
	cleanMedian := median(append([]float64{}, cleanTimes...))
	cfg.progressf("stragglers: fault-free baseline done (median %.1f ms)", cleanMedian)

	rows := []StragglerRow{{
		Tables: tables, Workers: workers, Nodes: nodes,
		TimeMs: cleanMedian, XClean: 1, PlanSafe: true,
	}}
	for _, factor := range factors {
		for _, speculate := range []bool{false, true} {
			if err := cfg.canceled(); err != nil {
				return nil, err
			}
			faults := cluster.Faults{Stalled: []int{0}, StallFactor: factor, Speculate: speculate}
			row := StragglerRow{
				Tables: tables, Workers: workers, Nodes: nodes,
				StallFactor: factor, Speculate: speculate, PlanSafe: true,
			}
			times := make([]float64, 0, len(queries))
			var wasted, work uint64
			for i, q := range queries {
				res, err := cluster.RunMPQWithFaultsContext(cfg.context(), model, q, spec, faults)
				if err != nil {
					return nil, err
				}
				times = append(times, ms(res.Metrics.VirtualTime))
				row.Speculations += res.Metrics.Speculations
				row.Redispatches += res.Metrics.Redispatches
				wasted += res.Metrics.WastedWork
				work += res.Metrics.Work.WorkUnits()
				if wire.PlanFingerprint(res.Best) != cleanFPs[i] {
					row.PlanSafe = false
				}
			}
			row.TimeMs = median(times)
			row.XClean = row.TimeMs / cleanMedian
			if work > 0 {
				row.WastedPct = 100 * float64(wasted) / float64(work)
			}
			rows = append(rows, row)
			cfg.progressf("stragglers: stall=%gx speculate=%v done (%.1fx fault-free)",
				factor, speculate, row.XClean)
		}
	}
	return rows, nil
}

// StragglersTable renders the straggler sweep.
func StragglersTable(rows []StragglerRow) *Table {
	t := &Table{
		Title:   "Straggler handling — scripted stall on a bounded node pool, wait vs speculate",
		Caption: "adaptive virtual-time scheduler; plans stay fingerprint-identical to the fault-free run",
		Columns: []string{"tables", "workers", "nodes", "stall", "policy", "time (ms)", "x fault-free", "speculations", "re-dispatches", "wasted %", "plans identical"},
	}
	for _, r := range rows {
		stall := "none"
		if r.StallFactor > 0 {
			stall = fmt.Sprintf("%gx", r.StallFactor)
		}
		policy := "wait"
		if r.Speculate {
			policy = "speculate"
		}
		safe := "yes"
		if !r.PlanSafe {
			safe = "NO"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Tables),
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%d", r.Nodes),
			stall,
			policy,
			fmtFloat(r.TimeMs),
			fmt.Sprintf("%.2fx", r.XClean),
			fmt.Sprintf("%d", r.Speculations),
			fmt.Sprintf("%d", r.Redispatches),
			fmt.Sprintf("%.1f", r.WastedPct),
			safe,
		})
	}
	return t
}
