package experiments

import (
	"fmt"

	"mpq/internal/core"
	"mpq/internal/partition"
	"mpq/internal/workload"
)

// Fig5Panel is one curve of Figure 5: multi-objective MPQ scaling to 256
// workers on large linear plan spaces.
type Fig5Panel struct {
	N      int
	Points []Point
}

// Fig5 reproduces Figure 5: multi-objective MPQ (α=10) on queries large
// enough to exploit up to 256 workers. Paper sizes: Linear 16, 18, 20;
// quick configuration: Linear 12, 14.
func Fig5(cfg Config) ([]Fig5Panel, error) {
	sizes := []int{12, 14}
	minWorkers := 4
	if cfg.Full {
		sizes = []int{16, 18, 20}
		minWorkers = 16
	}
	var out []Fig5Panel
	for _, n := range sizes {
		panel, err := fig5Panel(cfg, n, minWorkers)
		if err != nil {
			return nil, err
		}
		out = append(out, panel)
		cfg.progressf("fig5: Linear-%d done", n)
	}
	return out, nil
}

func fig5Panel(cfg Config, n, minWorkers int) (Fig5Panel, error) {
	panel := Fig5Panel{N: n}
	qs, err := cfg.batch(n, workload.Star)
	if err != nil {
		return panel, err
	}
	cap := cfg.MaxWorkers
	if cap > 256 {
		cap = 256 // Figure 5 scales to 256
	}
	for _, m := range workerCounts(partition.MaxWorkers(partition.Linear, n), cap) {
		if m < minWorkers {
			continue
		}
		spec := core.JobSpec{
			Space: partition.Linear, Workers: m,
			Objective: core.MultiObjective, Alpha: DefaultAlpha,
		}
		var t, wt, mem, bytes []float64
		for _, q := range qs {
			res, err := runMPQ(cfg, q, spec)
			if err != nil {
				return panel, err
			}
			t = append(t, ms(res.Metrics.VirtualTime))
			wt = append(wt, ms(res.Metrics.MaxWorkerTime))
			mem = append(mem, float64(res.Metrics.MaxMemoEntries))
			bytes = append(bytes, float64(res.Metrics.Bytes))
		}
		panel.Points = append(panel.Points, Point{
			Workers: m, TimeMs: median(t), WTimeMs: median(wt),
			MemoryRelations: median(mem), Bytes: median(bytes),
		})
	}
	return panel, nil
}

// Fig5Tables renders the Figure 5 panels.
func Fig5Tables(panels []Fig5Panel) []*Table {
	var out []*Table
	for _, p := range panels {
		t := &Table{
			Title:   fmt.Sprintf("Figure 5 — multi-objective MPQ scaling, Linear %d tables (α=%d, medians)", p.N, DefaultAlpha),
			Columns: []string{"workers", "time(ms)", "w-time(ms)", "memory(relations)", "net(bytes)"},
		}
		for _, pt := range p.Points {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", pt.Workers),
				fmtFloat(pt.TimeMs), fmtFloat(pt.WTimeMs),
				fmtFloat(pt.MemoryRelations), fmtFloat(pt.Bytes),
			})
		}
		out = append(out, t)
	}
	return out
}
