package experiments

import (
	"context"
	"fmt"
	"testing"

	"mpq/internal/cache"
	"mpq/internal/core"
	"mpq/internal/dp"
	"mpq/internal/partition"
	"mpq/internal/query"
	"mpq/internal/workload"
)

// MicroRow is one optimizer micro-benchmark measurement: wall time and
// allocator traffic per optimization. The workloads mirror the root
// bench_test.go micro-benchmarks name for name, so `mpqbench
// -experiment micro -json` numbers are directly comparable with
// `go test -bench` output — this is the machine-readable form the
// repo's BENCH_*.json trajectory files record.
type MicroRow struct {
	Name        string
	MsPerOp     float64
	AllocsPerOp int64
	BytesPerOp  int64
	Iterations  int
}

// Micro benchmarks the optimizer core itself (no cluster simulation):
// the serial baselines, goroutine-parallel MPQ, the multi-objective
// optimizer, and the pooled batch steady state. Each case runs under
// testing.Benchmark for its default ~1s.
func Micro(cfg Config) ([]MicroRow, error) {
	q16 := workload.MustGenerate(workload.NewParams(16, workload.Star), cfg.BaseSeed)
	q12 := workload.MustGenerate(workload.NewParams(12, workload.Star), cfg.BaseSeed)

	cases := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"SerialLinear16", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dp.Serial(q16, partition.Linear, dp.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"MPQLinear16Workers8", func(b *testing.B) {
			spec := core.JobSpec{Space: partition.Linear, Workers: 8}
			for i := 0; i < b.N; i++ {
				if _, err := core.Optimize(q16, spec); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"SerialBushy12", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dp.Serial(q12, partition.Bushy, dp.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"MPQBushy12Workers8", func(b *testing.B) {
			spec := core.JobSpec{Space: partition.Bushy, Workers: 8}
			for i := 0; i < b.N; i++ {
				if _, err := core.Optimize(q12, spec); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"MultiObjectiveLinear12", func(b *testing.B) {
			spec := core.JobSpec{Space: partition.Linear, Workers: 8, Objective: core.MultiObjective, Alpha: 10}
			for i := 0; i < b.N; i++ {
				if _, err := core.Optimize(q12, spec); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"CachedHitServing", func(b *testing.B) {
			// The plan cache's hit path: canonical keying, lookup and the
			// stamped shallow copy — the per-request cost of a repeat.
			spec := core.JobSpec{Space: partition.Linear, Workers: 4}
			c := cache.New(cache.Config{})
			compute := func(ctx context.Context, q *query.Query, s core.JobSpec) (*core.Answer, error) {
				return core.OptimizeContext(ctx, q, s, 0)
			}
			ctx := context.Background()
			if _, err := c.Optimize(ctx, q12, spec, compute); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Optimize(ctx, q12, spec, compute); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"InProcessBatchSteadyState", func(b *testing.B) {
			// Four identical jobs per op through the pooled worker path —
			// the per-job steady state of Engine.OptimizeBatch.
			spec := core.JobSpec{Space: partition.Linear, Workers: 4}
			for i := 0; i < b.N; i++ {
				for j := 0; j < 4; j++ {
					if _, err := core.OptimizeParallelism(q12, spec, 1); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
	}

	rows := make([]MicroRow, 0, len(cases))
	for _, c := range cases {
		if err := cfg.canceled(); err != nil {
			return nil, err
		}
		cfg.progressf("micro: %s", c.name)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			c.fn(b)
		})
		rows = append(rows, MicroRow{
			Name:        c.name,
			MsPerOp:     float64(r.NsPerOp()) / 1e6,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		})
	}
	return rows, nil
}

// MicroTable renders the micro-benchmark rows.
func MicroTable(rows []MicroRow) *Table {
	t := &Table{
		Title:   "Optimizer micro-benchmarks",
		Caption: "per-optimization cost of the DP core (testing.Benchmark; compare with go test -bench)",
		Columns: []string{"benchmark", "ms/op", "allocs/op", "KB/op", "iters"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Name,
			// fmtFloat, not a fixed %.2f: the cache hit path sits in the
			// microsecond range and would render as "0.00".
			fmtFloat(r.MsPerOp),
			fmt.Sprintf("%d", r.AllocsPerOp),
			fmt.Sprintf("%.1f", float64(r.BytesPerOp)/1024),
			fmt.Sprintf("%d", r.Iterations),
		})
	}
	return t
}
