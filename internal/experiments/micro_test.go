package experiments

import (
	"context"
	"strings"
	"testing"
)

// The micro experiment must produce one row per benchmark with sane
// measurements — it is the source of the repo's BENCH_*.json
// trajectory numbers, so a silently empty or zeroed table would poison
// the record. Each case runs testing.Benchmark for about a second, so
// the smoke test is excluded from -short.
func TestMicroSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs testing.Benchmark for ~1s per case")
	}
	rows, err := Micro(Quick())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"SerialLinear16", "MPQLinear16Workers8", "SerialBushy12",
		"MPQBushy12Workers8", "MultiObjectiveLinear12", "CachedHitServing",
		"InProcessBatchSteadyState",
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for i, r := range rows {
		if r.Name != want[i] {
			t.Fatalf("row %d = %q, want %q", i, r.Name, want[i])
		}
		if r.MsPerOp <= 0 || r.AllocsPerOp <= 0 || r.BytesPerOp <= 0 || r.Iterations <= 0 {
			t.Fatalf("row %s has degenerate measurements: %+v", r.Name, r)
		}
	}

	tab := MicroTable(rows)
	if len(tab.Rows) != len(rows) || len(tab.Columns) != 5 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
	var sb strings.Builder
	if err := tab.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "SerialBushy12") {
		t.Fatal("JSON output missing benchmark name")
	}
}

// Cancellation aborts the sweep between benchmarks.
func TestMicroCanceled(t *testing.T) {
	cfg := Quick()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg.Ctx = ctx
	if _, err := Micro(cfg); err == nil {
		t.Fatal("canceled micro sweep returned no error")
	}
}
