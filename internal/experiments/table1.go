package experiments

import (
	"errors"
	"fmt"
	"time"

	"mpq/internal/core"
	"mpq/internal/dp"
	"mpq/internal/partition"
	"mpq/internal/query"
	"mpq/internal/wire"
	"mpq/internal/workload"
)

// Table1Options configures the precision-vs-parallelism experiment.
type Table1Options struct {
	// Sizes are the query sizes (paper: 14, 16, 18, 20 tables).
	Sizes []int
	// Alphas is the approximation-precision grid (paper's column set).
	Alphas []float64
	// Budgets are the optimization-time budgets. The paper uses 10/30/60
	// wall-clock seconds on its Spark testbed; our virtual cluster is
	// faster per work unit, so the default budgets are scaled down to
	// produce the same gradient (EXPERIMENTS.md documents the scaling).
	Budgets []time.Duration
}

// DefaultTable1Options returns paper-shaped defaults for the given scale.
func DefaultTable1Options(full bool) Table1Options {
	o := Table1Options{
		Alphas: []float64{1.01, 1.05, 1.25, 1.5, 2, 5, 10},
	}
	if full {
		o.Sizes = []int{14, 16, 18, 20}
		o.Budgets = []time.Duration{2 * time.Second, 5 * time.Second, 10 * time.Second}
	} else {
		// The 100 ms task-launch floor of the default cluster model makes
		// sub-150ms budgets unreachable by construction; the quick budgets
		// straddle the feasibility edges of the 10- and 12-table sizes.
		o.Sizes = []int{10, 12}
		o.Budgets = []time.Duration{150 * time.Millisecond, 250 * time.Millisecond, 600 * time.Millisecond}
	}
	return o
}

// Table1Cell is the minimal parallelism for one (budget, size, alpha)
// combination; Infinite means even the maximum worker count missed the
// budget in a majority of test cases.
type Table1Cell struct {
	MinWorkers int
	Infinite   bool
}

func (c Table1Cell) String() string {
	if c.Infinite {
		return "inf"
	}
	return fmt.Sprintf("%d", c.MinWorkers)
}

// Table1Result holds the full grid: Cells[budget][size][alpha].
type Table1Result struct {
	Options Table1Options
	Queries int
	Cells   [][][]Table1Cell
}

// Table1 reproduces Table 1: the minimal degree of parallelism required
// to reach approximation precision α within a fixed optimization-time
// budget, for multi-objective optimization in linear plan spaces. A cell
// passes if a majority of the random test queries finish within the
// budget (the paper requires 8 of 15).
//
// Because the plan-space partitions are skew-free (§4, and verified by
// core's tests), one representative partition per worker count is
// measured and its virtual time evaluated against each budget; runs are
// aborted early once they exceed the largest budget's work allowance.
func Table1(cfg Config, opts Table1Options) (*Table1Result, error) {
	// The paper uses 15 test cases for Table 1 (vs 20 queries for the
	// figures); cap accordingly.
	if cfg.Queries > 15 {
		cfg.Queries = 15
	}
	res := &Table1Result{Options: opts, Queries: cfg.Queries}
	maxBudget := opts.Budgets[len(opts.Budgets)-1]
	need := cfg.Queries/2 + 1

	for _, n := range opts.Sizes {
		qs, err := cfg.batch(n, workload.Star)
		if err != nil {
			return nil, err
		}
		maxM := partition.MaxWorkers(partition.Linear, n)
		if maxM > cfg.MaxWorkers {
			maxM = cfg.MaxWorkers
		}
		if maxM > 128 {
			maxM = 128 // the paper tries up to 128 workers in Table 1
		}
		// times[{ai,qi,mi}] = virtual time for query qi with alpha index
		// ai and the mi-th worker count (-1: exceeded largest budget).
		counts := workerCounts(maxM, maxM)
		type key struct{ ai, qi, mi int }
		times := map[key]time.Duration{}
		for ai, alpha := range opts.Alphas {
			for qi, q := range qs {
				for mi, m := range counts {
					t, ok, err := table1Time(cfg, q, alpha, m, maxBudget)
					if err != nil {
						return nil, err
					}
					if ok {
						times[key{ai, qi, mi}] = t
					} else {
						times[key{ai, qi, mi}] = -1
					}
				}
			}
		}
		for bi, budget := range opts.Budgets {
			if len(res.Cells) <= bi {
				res.Cells = append(res.Cells, [][]Table1Cell{})
			}
			row := make([]Table1Cell, len(opts.Alphas))
			for ai := range opts.Alphas {
				cell := Table1Cell{Infinite: true}
				for mi, m := range counts {
					ok := 0
					for qi := range qs {
						if t := times[key{ai, qi, mi}]; t >= 0 && t <= budget {
							ok++
						}
					}
					if ok >= need {
						cell = Table1Cell{MinWorkers: m}
						break
					}
				}
				row[ai] = cell
			}
			res.Cells[bi] = append(res.Cells[bi], row)
		}
		cfg.progressf("table1: %d tables done", n)
	}
	return res, nil
}

// table1Time measures the virtual optimization time for one (query,
// alpha, workers) combination using one representative partition
// (partitions are skew-free). ok=false means the work exceeded the
// largest budget and the run was aborted.
func table1Time(cfg Config, q *query.Query, alpha float64, m int, maxBudget time.Duration) (time.Duration, bool, error) {
	spec := core.JobSpec{
		Space: partition.Linear, Workers: m,
		Objective: core.MultiObjective, Alpha: alpha,
	}
	cs, err := partition.ForPartition(partition.Linear, q.N(), 0, m)
	if err != nil {
		return 0, false, err
	}
	// Allow 2x the largest budget's work before giving up, so comms
	// overhead cannot push a passing run over the abort line.
	limit := uint64(2*float64(maxBudget.Nanoseconds())/cfg.Model.NsPerWorkUnit) + 1
	dpo := spec.DPOptions()
	dpo.MaxWorkUnits = limit
	res, err := dp.RunContext(cfg.context(), q, cs, dpo)
	if errors.Is(err, dp.ErrWorkLimit) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	reqB := len(wire.EncodeJobRequest(&wire.JobRequest{Spec: spec, PartID: 0, Query: q}))
	respB := len(wire.EncodeJobResponse(&wire.JobResponse{Plans: res.Plans, Stats: res.Stats}))
	reqs := make([]int, m)
	resps := make([]int, m)
	units := make([]uint64, m)
	for i := range reqs {
		reqs[i], resps[i], units[i] = reqB, respB, res.Stats.WorkUnits()
	}
	total, _ := cfg.Model.MPQTime(reqs, resps, units)
	total += time.Duration(m*len(res.Plans)) * cfg.Model.FinalPrunePerPlan
	return total, true, nil
}

// Table1Table renders the result in the paper's layout.
func Table1Table(r *Table1Result) *Table {
	t := &Table{
		Title: "Table 1 — minimal parallelism to reach precision α within a time budget (multi-objective, linear)",
		Caption: fmt.Sprintf("budgets %v; majority of %d random queries per cell; 'inf' = unreachable at max parallelism",
			r.Options.Budgets, r.Queries),
		Columns: append([]string{"budget", "tables"}, alphasHeader(r.Options.Alphas)...),
	}
	for bi, budget := range r.Options.Budgets {
		for si, n := range r.Options.Sizes {
			row := []string{budget.String(), fmt.Sprintf("%d", n)}
			for ai := range r.Options.Alphas {
				row = append(row, r.Cells[bi][si][ai].String())
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

func alphasHeader(alphas []float64) []string {
	out := make([]string, len(alphas))
	for i, a := range alphas {
		out[i] = fmt.Sprintf("α=%g", a)
	}
	return out
}
