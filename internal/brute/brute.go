// Package brute exhaustively enumerates query plans for small queries.
//
// It serves two roles: a first-principles oracle for the dynamic
// programmer's correctness tests (the DP's best cost must equal the
// exhaustive minimum), and the naive baseline that motivates dynamic
// programming in the first place. Complexity is super-exponential; keep
// n at or below roughly 7 for the linear and 5 for the bushy space.
package brute

import (
	"mpq/internal/bitset"
	"mpq/internal/cost"
	"mpq/internal/partition"
	"mpq/internal/plan"
	"mpq/internal/query"
)

// Options mirrors the dp.Options knobs relevant to plan enumeration.
type Options struct {
	Model             cost.Model
	InterestingOrders bool
}

func (o Options) withDefaults() Options {
	if o.Model == (cost.Model{}) {
		o.Model = cost.Default()
	}
	return o
}

// AllPlans returns every plan in the given space for query q, without any
// pruning. The same operator alternatives as the DP are enumerated:
// nested-loop and hash joins always, sort-merge joins when a predicate
// connects the operands (one plan per connecting predicate when
// interesting orders are on, one order-less sort-merge plan otherwise).
func AllPlans(q *query.Query, space partition.Space, opts Options) []*plan.Node {
	opts = opts.withDefaults()
	q.Freeze()
	e := enumerator{q: q, space: space, opts: opts, memo: map[bitset.Set][]*plan.Node{}}
	return e.plansFor(q.All())
}

type enumerator struct {
	q     *query.Query
	space partition.Space
	opts  Options
	memo  map[bitset.Set][]*plan.Node
}

func (e *enumerator) plansFor(s bitset.Set) []*plan.Node {
	if ps, ok := e.memo[s]; ok {
		return ps
	}
	var out []*plan.Node
	if s.IsSingleton() {
		out = []*plan.Node{plan.Scan(e.opts.Model, e.q, s.Min())}
		e.memo[s] = out
		return out
	}
	card := e.q.CardOf(s)
	s.ProperSubsets(func(left bitset.Set) {
		right := s.Minus(left)
		if e.space == partition.Linear && !right.IsSingleton() {
			// Left-deep plans take single tables as inner operands; the
			// recursion keeps the left subtree linear automatically.
			return
		}
		lps := e.plansFor(left)
		rps := e.plansFor(right)
		preds := e.q.ConnectingPreds(nil, left, right)
		for _, lp := range lps {
			for _, rp := range rps {
				out = append(out, plan.Join(e.opts.Model, lp, rp, plan.JoinSpec{
					Alg: cost.NestedLoop, OutCard: card, Pred: plan.NoPred, Order: lp.Order,
				}))
				out = append(out, plan.Join(e.opts.Model, lp, rp, plan.JoinSpec{
					Alg: cost.Hash, OutCard: card, Pred: plan.NoPred, Order: query.NoOrder,
				}))
				if len(preds) == 0 {
					continue
				}
				if !e.opts.InterestingOrders {
					out = append(out, plan.Join(e.opts.Model, lp, rp, plan.JoinSpec{
						Alg: cost.SortMerge, OutCard: card, Pred: plan.NoPred, Order: query.NoOrder,
					}))
					continue
				}
				for _, pi := range preds {
					p := e.q.Preds[pi]
					la, ra := plan.MergeAttrs(p, left)
					out = append(out, plan.Join(e.opts.Model, lp, rp, plan.JoinSpec{
						Alg: cost.SortMerge, OutCard: card, Pred: pi,
						Order:   plan.CanonicalMergeOrder(p),
						LSorted: lp.Order == la, RSorted: rp.Order == ra,
					}))
				}
			}
		}
	})
	e.memo[s] = out
	return out
}

// BestCost returns the exhaustive minimum time-metric cost over the plan
// space.
func BestCost(q *query.Query, space partition.Space, opts Options) float64 {
	best := -1.0
	for _, p := range AllPlans(q, space, opts) {
		if best < 0 || p.Cost < best {
			best = p.Cost
		}
	}
	return best
}

// Filter returns the plans satisfying keep.
func Filter(plans []*plan.Node, keep func(*plan.Node) bool) []*plan.Node {
	var out []*plan.Node
	for _, p := range plans {
		if keep(p) {
			out = append(out, p)
		}
	}
	return out
}

// RespectsConstraints reports whether plan p belongs to the plan-space
// partition defined by cs (§4.2). All join results in the plan must be
// admissible; in the linear space the inner operand of each join must
// additionally satisfy the precedence rule of Algorithm 5 line 7 (a
// table x constrained as x ≺ y may not be joined while y is already in
// the result), which is not implied by set admissibility alone when both
// operands are singletons.
func RespectsConstraints(p *plan.Node, cs *partition.ConstraintSet) bool {
	ok := true
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		if n == nil || !ok {
			return
		}
		if !cs.Admissible(n.Tables) {
			ok = false
			return
		}
		if n.IsScan {
			return
		}
		if cs.Space == partition.Linear && n.Right.IsScan &&
			!cs.InnerAllowed(n.Tables, n.Right.Table) {
			ok = false
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(p)
	return ok
}
