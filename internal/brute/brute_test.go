package brute

import (
	"testing"

	"mpq/internal/cost"
	"mpq/internal/partition"
	"mpq/internal/plan"
	"mpq/internal/query"
	"mpq/internal/workload"
)

func gen(t testing.TB, n int, seed int64) *query.Query {
	t.Helper()
	return workload.MustGenerate(workload.NewParams(n, workload.Star), seed)
}

// Catalan-style counting: the number of left-deep operator trees over n
// tables with a algorithms per join is n! * a^(n-1) when every join can
// use every algorithm. With cross products allowed and a star join
// graph, SMJ is only available when a predicate connects the operands,
// so we verify the weaker structural properties instead and check exact
// counts on a clique (every pair connected).
func TestAllPlansCountLinearClique(t *testing.T) {
	q := workload.MustGenerate(workload.NewParams(4, workload.Clique), 0)
	plans := AllPlans(q, partition.Linear, Options{})
	// 4! join orders; per join 3 algorithms (clique: SMJ always has a
	// predicate): 24 * 27 = 648.
	if len(plans) != 648 {
		t.Fatalf("linear clique-4 plan count = %d want 648", len(plans))
	}
	for _, p := range plans {
		if !p.IsLeftDeep() {
			t.Fatalf("non-left-deep plan in linear enumeration: %v", p)
		}
	}
}

func TestAllPlansCountBushyClique(t *testing.T) {
	q := workload.MustGenerate(workload.NewParams(3, workload.Clique), 0)
	plans := AllPlans(q, partition.Bushy, Options{})
	// 3 leaf pairs to join first * 2 operand orders... exhaustively: the
	// number of ordered binary trees over 3 leaves is 12, each with 3^2
	// algorithm choices = 108.
	if len(plans) != 108 {
		t.Fatalf("bushy clique-3 plan count = %d want 108", len(plans))
	}
}

func TestBushyEnumerationSupersetOfLinear(t *testing.T) {
	q := gen(t, 4, 1)
	linear := AllPlans(q, partition.Linear, Options{})
	bushy := AllPlans(q, partition.Bushy, Options{})
	if len(bushy) <= len(linear) {
		t.Fatalf("bushy count %d should exceed linear %d", len(bushy), len(linear))
	}
	if BestCost(q, partition.Bushy, Options{}) > BestCost(q, partition.Linear, Options{})+1e-9 {
		t.Fatal("bushy optimum worse than linear optimum")
	}
}

func TestAllPlansAreValid(t *testing.T) {
	q := gen(t, 4, 2)
	m := cost.Default()
	for _, space := range []partition.Space{partition.Linear, partition.Bushy} {
		for _, orders := range []bool{false, true} {
			for _, p := range AllPlans(q, space, Options{InterestingOrders: orders}) {
				if err := p.Validate(q, m); err != nil {
					t.Fatalf("%v orders=%v: invalid plan %v: %v", space, orders, p, err)
				}
				if p.Tables != q.All() {
					t.Fatalf("plan does not join all tables: %v", p)
				}
			}
		}
	}
}

func TestFilter(t *testing.T) {
	q := gen(t, 3, 0)
	plans := AllPlans(q, partition.Linear, Options{})
	nlj := Filter(plans, func(p *plan.Node) bool { return p.Alg == cost.NestedLoop })
	if len(nlj) == 0 || len(nlj) >= len(plans) {
		t.Fatalf("filter returned %d of %d", len(nlj), len(plans))
	}
}

func TestRespectsConstraints(t *testing.T) {
	q := gen(t, 4, 3)
	cs, err := partition.ForPartition(partition.Linear, 4, 0, 2) // Q0 ≺ Q1
	if err != nil {
		t.Fatal(err)
	}
	plans := AllPlans(q, partition.Linear, Options{})
	seenOK, seenBad := false, false
	for _, p := range plans {
		order := p.JoinOrder()
		pos := map[int]int{}
		for i, tbl := range order {
			pos[tbl] = i
		}
		want := pos[0] < pos[1]
		if got := RespectsConstraints(p, cs); got != want {
			t.Fatalf("plan %v: RespectsConstraints=%v, join-order check=%v", p, got, want)
		}
		if want {
			seenOK = true
		} else {
			seenBad = true
		}
	}
	if !seenOK || !seenBad {
		t.Fatal("test did not exercise both outcomes")
	}
}

func TestBestCostPositive(t *testing.T) {
	q := gen(t, 4, 4)
	if c := BestCost(q, partition.Linear, Options{}); c <= 0 {
		t.Fatalf("BestCost = %g", c)
	}
}
