// Package spec defines the JSON interchange format for queries used by
// the command-line tools: mpqgen writes query specs, mpqopt reads them.
// The binary wire format (internal/wire) is for master↔worker traffic;
// this JSON format is for humans and scripts.
package spec

import (
	"encoding/json"
	"fmt"
	"io"

	"mpq/internal/query"
)

// TableSpec is one relation of a query spec.
type TableSpec struct {
	Name        string  `json:"name"`
	Cardinality float64 `json:"cardinality"`
}

// PredicateSpec is one equality predicate of a query spec.
type PredicateSpec struct {
	Left        int     `json:"left"`
	Right       int     `json:"right"`
	LeftAttr    int     `json:"leftAttr,omitempty"`
	RightAttr   int     `json:"rightAttr,omitempty"`
	Selectivity float64 `json:"selectivity"`
}

// QuerySpec is the JSON form of a join query.
type QuerySpec struct {
	Tables     []TableSpec     `json:"tables"`
	Predicates []PredicateSpec `json:"predicates"`
}

// FromQuery converts a query into its JSON-serializable spec.
func FromQuery(q *query.Query) *QuerySpec {
	s := &QuerySpec{}
	for _, t := range q.Tables {
		s.Tables = append(s.Tables, TableSpec{Name: t.Name, Cardinality: t.Cardinality})
	}
	for _, p := range q.Preds {
		s.Predicates = append(s.Predicates, PredicateSpec{
			Left: p.Left, Right: p.Right,
			LeftAttr: p.LeftAttr, RightAttr: p.RightAttr,
			Selectivity: p.Selectivity,
		})
	}
	return s
}

// ToQuery validates the spec and builds the query.
func (s *QuerySpec) ToQuery() (*query.Query, error) {
	tables := make([]query.Table, len(s.Tables))
	for i, t := range s.Tables {
		tables[i] = query.Table{Name: t.Name, Cardinality: t.Cardinality}
	}
	q, err := query.New(tables)
	if err != nil {
		return nil, err
	}
	for i, p := range s.Predicates {
		if err := q.AddPredicate(query.Predicate{
			Left: p.Left, Right: p.Right,
			LeftAttr: p.LeftAttr, RightAttr: p.RightAttr,
			Selectivity: p.Selectivity,
		}); err != nil {
			return nil, fmt.Errorf("spec: predicate %d: %w", i, err)
		}
	}
	q.Freeze()
	return q, nil
}

// Write serializes the spec as indented JSON.
func (s *QuerySpec) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Read parses a spec and converts it to a query.
func Read(r io.Reader) (*query.Query, error) {
	var s QuerySpec
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: decode: %w", err)
	}
	return s.ToQuery()
}
