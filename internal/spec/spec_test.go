package spec

import (
	"bytes"
	"strings"
	"testing"

	"mpq/internal/catalog"
	"mpq/internal/query"
	"mpq/internal/workload"
)

// specQueries covers every workload family: all random shapes
// (including Snowflake), a correlated variant, and the TPC-style schema
// queries.
func specQueries(t *testing.T) map[string]*query.Query {
	t.Helper()
	out := map[string]*query.Query{}
	for _, shape := range workload.Shapes {
		params := workload.NewParams(6, shape)
		out[shape.String()] = workload.MustGenerate(params, 3)
		params.Correlation = 0.6
		out[shape.String()+"-corr"] = workload.MustGenerate(params, 3)
	}
	for _, name := range catalog.SchemaNames() {
		sch, err := catalog.BuiltinSchema(name)
		if err != nil {
			t.Fatal(err)
		}
		_, q, err := workload.FromSchema(sch, 1)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = q
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	for name, q := range specQueries(t) {
		var buf bytes.Buffer
		if err := FromQuery(q).Write(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.N() != q.N() || len(got.Preds) != len(q.Preds) {
			t.Fatalf("%s: shape changed", name)
		}
		for i := range q.Tables {
			if got.Tables[i] != q.Tables[i] {
				t.Fatalf("%s: table %d changed", name, i)
			}
		}
		for i := range q.Preds {
			if got.Preds[i] != q.Preds[i] {
				t.Fatalf("%s: pred %d changed", name, i)
			}
		}
	}
}

// TestSpecsDeterministic pins the determinism contract: the same
// (Params, seed) — or (schema, sf) — must serialize to byte-identical
// JSON specs across runs.
func TestSpecsDeterministic(t *testing.T) {
	first := map[string][]byte{}
	for name, q := range specQueries(t) {
		var buf bytes.Buffer
		if err := FromQuery(q).Write(&buf); err != nil {
			t.Fatal(err)
		}
		first[name] = buf.Bytes()
	}
	for name, q := range specQueries(t) {
		var buf bytes.Buffer
		if err := FromQuery(q).Write(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first[name], buf.Bytes()) {
			t.Fatalf("%s: regenerated spec differs byte-wise", name)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(strings.NewReader(`{"tables":[]}`)); err == nil {
		t.Fatal("empty tables accepted")
	}
	if _, err := Read(strings.NewReader(`{"tables":[{"name":"a","cardinality":10}],"predicates":[{"left":0,"right":5,"selectivity":0.5}]}`)); err == nil {
		t.Fatal("bad predicate accepted")
	}
}

func TestToQueryValidates(t *testing.T) {
	s := &QuerySpec{Tables: []TableSpec{{Name: "a", Cardinality: -1}}}
	if _, err := s.ToQuery(); err == nil {
		t.Fatal("negative cardinality accepted")
	}
}
