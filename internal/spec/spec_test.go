package spec

import (
	"bytes"
	"strings"
	"testing"

	"mpq/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	q := workload.MustGenerate(workload.NewParams(6, workload.Cycle), 3)
	var buf bytes.Buffer
	if err := FromQuery(q).Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != q.N() || len(got.Preds) != len(q.Preds) {
		t.Fatal("shape changed")
	}
	for i := range q.Tables {
		if got.Tables[i] != q.Tables[i] {
			t.Fatalf("table %d changed", i)
		}
	}
	for i := range q.Preds {
		if got.Preds[i] != q.Preds[i] {
			t.Fatalf("pred %d changed", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(strings.NewReader(`{"tables":[]}`)); err == nil {
		t.Fatal("empty tables accepted")
	}
	if _, err := Read(strings.NewReader(`{"tables":[{"name":"a","cardinality":10}],"predicates":[{"left":0,"right":5,"selectivity":0.5}]}`)); err == nil {
		t.Fatal("bad predicate accepted")
	}
}

func TestToQueryValidates(t *testing.T) {
	s := &QuerySpec{Tables: []TableSpec{{Name: "a", Cardinality: -1}}}
	if _, err := s.ToQuery(); err == nil {
		t.Fatal("negative cardinality accepted")
	}
}
