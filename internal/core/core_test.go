package core

import (
	"math"
	"testing"

	"mpq/internal/dp"
	"mpq/internal/mo"
	"mpq/internal/partition"
	"mpq/internal/query"
	"mpq/internal/workload"
)

const eps = 1e-9

func approx(a, b float64) bool {
	return math.Abs(a-b) <= eps*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func gen(t testing.TB, n int, shape workload.Shape, seed int64) *query.Query {
	t.Helper()
	return workload.MustGenerate(workload.NewParams(n, shape), seed)
}

func TestObjectiveString(t *testing.T) {
	if SingleObjective.String() != "single-objective" || MultiObjective.String() != "multi-objective" {
		t.Fatal("objective names")
	}
	if Objective(7).String() != "Objective(7)" {
		t.Fatal("unknown objective")
	}
}

func TestJobSpecValidate(t *testing.T) {
	good := JobSpec{Space: partition.Linear, Workers: 4}
	if err := good.Validate(8); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []struct {
		name string
		spec JobSpec
		n    int
	}{
		{"space", JobSpec{Space: partition.Space(9), Workers: 2}, 8},
		{"workers-zero", JobSpec{Space: partition.Linear, Workers: 0}, 8},
		{"workers-npot", JobSpec{Space: partition.Linear, Workers: 6}, 8},
		{"workers-max", JobSpec{Space: partition.Linear, Workers: 32}, 8},
		{"objective", JobSpec{Space: partition.Linear, Workers: 2, Objective: Objective(5)}, 8},
		{"alpha", JobSpec{Space: partition.Linear, Workers: 2, Objective: MultiObjective, Alpha: 0.5}, 8},
	}
	for _, tc := range bad {
		if err := tc.spec.Validate(tc.n); err == nil {
			t.Errorf("%s: invalid spec accepted", tc.name)
		}
	}
}

// The headline invariant: MPQ over any worker count returns a plan with
// the same cost as the serial optimizer, in both plan spaces.
func TestMPQEqualsSerialAllWorkerCounts(t *testing.T) {
	cases := []struct {
		space partition.Space
		n     int
		ms    []int
	}{
		{partition.Linear, 8, []int{1, 2, 4, 8, 16}},
		{partition.Bushy, 7, []int{1, 2, 4}},
	}
	for _, c := range cases {
		for seed := int64(0); seed < 5; seed++ {
			q := gen(t, c.n, workload.Star, seed)
			serial, err := dp.Serial(q, c.space, dp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range c.ms {
				ans, err := Optimize(q, JobSpec{Space: c.space, Workers: m})
				if err != nil {
					t.Fatal(err)
				}
				if !approx(ans.Best.Cost, serial.Best().Cost) {
					t.Fatalf("%v n=%d m=%d seed=%d: MPQ %g != serial %g",
						c.space, c.n, m, seed, ans.Best.Cost, serial.Best().Cost)
				}
			}
		}
	}
}

func TestMPQMultiObjectiveExactMatchesSerialFrontier(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		q := gen(t, 7, workload.Star, seed)
		serial, err := dp.Serial(q, partition.Linear, dp.Options{Pruner: mo.ParetoPruner{Alpha: 1}})
		if err != nil {
			t.Fatal(err)
		}
		want := mo.ExactFrontier(serial.Plans)
		for _, m := range []int{2, 8} {
			ans, err := Optimize(q, JobSpec{
				Space: partition.Linear, Workers: m,
				Objective: MultiObjective, Alpha: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !mo.IsFrontier(ans.Frontier) {
				t.Fatalf("m=%d: merged frontier contains dominated plans", m)
			}
			if len(ans.Frontier) != len(want) {
				t.Fatalf("m=%d seed=%d: frontier size %d, serial %d", m, seed, len(ans.Frontier), len(want))
			}
			for i := range want {
				gv, wv := mo.VecOf(ans.Frontier[i]), mo.VecOf(want[i])
				if !approx(gv.Time, wv.Time) || !approx(gv.Buffer, wv.Buffer) {
					t.Fatalf("m=%d: frontier[%d] = %v want %v", m, i, gv, wv)
				}
			}
		}
	}
}

func TestMPQMultiObjectiveAlphaCoverage(t *testing.T) {
	q := gen(t, 7, workload.Star, 11)
	serial, err := dp.Serial(q, partition.Linear, dp.Options{Pruner: mo.ParetoPruner{Alpha: 1}})
	if err != nil {
		t.Fatal(err)
	}
	exact := mo.ExactFrontier(serial.Plans)
	for _, alpha := range []float64{1.01, 1.25, 2, 10} {
		ans, err := Optimize(q, JobSpec{
			Space: partition.Linear, Workers: 4,
			Objective: MultiObjective, Alpha: alpha,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Per-insertion α-pruning stacks across DP levels: the formal
		// bound is α^(levels). Verify the measured coverage respects it.
		levels := float64(q.N())
		bound := math.Pow(alpha, levels)
		covErr := mo.CoverageError(ans.Frontier, exact)
		if covErr > bound+eps {
			t.Fatalf("alpha=%g: coverage error %g exceeds bound %g", alpha, covErr, bound)
		}
	}
}

func TestAnswerAccounting(t *testing.T) {
	q := gen(t, 10, workload.Star, 1)
	m := 8
	ans, err := Optimize(q, JobSpec{Space: partition.Linear, Workers: m})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.PerWorker) != m {
		t.Fatalf("PerWorker = %d entries", len(ans.PerWorker))
	}
	var sumSets uint64
	for i, w := range ans.PerWorker {
		if w.PartID != i {
			t.Fatalf("PerWorker not ordered: %v", ans.PerWorker)
		}
		if w.Stats.SetsProcessed == 0 || w.Plans == 0 {
			t.Fatalf("worker %d reported no work: %+v", i, w)
		}
		sumSets += w.Stats.SetsProcessed
		if w.Stats.WorkUnits() > ans.MaxWorkerStats.WorkUnits() {
			t.Fatal("MaxWorkerStats not the max")
		}
	}
	if ans.Stats.SetsProcessed != sumSets {
		t.Fatal("aggregate stats mismatch")
	}
	if ans.MaxWorkerElapsed > ans.Elapsed {
		t.Fatal("worker elapsed exceeds master elapsed")
	}
	if ans.Frontier != nil {
		t.Fatal("single-objective answer has a frontier")
	}
}

// Skew-freedom (the paper's equal-partition-size claim): per-worker set
// counts are identical across workers.
func TestPartitionsAreSkewFree(t *testing.T) {
	q := gen(t, 12, workload.Star, 3)
	for _, tc := range []struct {
		space partition.Space
		m     int
	}{{partition.Linear, 16}, {partition.Bushy, 8}} {
		ans, err := Optimize(q, JobSpec{Space: tc.space, Workers: tc.m})
		if err != nil {
			t.Fatal(err)
		}
		first := ans.PerWorker[0].Stats.SetsProcessed
		for _, w := range ans.PerWorker[1:] {
			if w.Stats.SetsProcessed != first {
				t.Fatalf("%v m=%d: worker %d processed %d sets, worker 0 processed %d",
					tc.space, tc.m, w.PartID, w.Stats.SetsProcessed, first)
			}
		}
	}
}

func TestOptimizeParallelismCap(t *testing.T) {
	q := gen(t, 8, workload.Star, 0)
	for _, cap := range []int{-1, 1, 2, 100} {
		ans, err := OptimizeParallelism(q, JobSpec{Space: partition.Linear, Workers: 8}, cap)
		if err != nil {
			t.Fatalf("cap=%d: %v", cap, err)
		}
		serial, _ := dp.Serial(q, partition.Linear, dp.Options{})
		if !approx(ans.Best.Cost, serial.Best().Cost) {
			t.Fatalf("cap=%d: wrong optimum", cap)
		}
	}
}

func TestOptimizeRejectsInvalid(t *testing.T) {
	q := gen(t, 8, workload.Star, 0)
	if _, err := Optimize(q, JobSpec{Space: partition.Linear, Workers: 3}); err == nil {
		t.Error("non-power-of-two worker count accepted")
	}
	if _, err := Optimize(q, JobSpec{Space: partition.Bushy, Workers: 8}); err == nil {
		t.Error("too many bushy workers accepted for n=8 (max 4)")
	}
	bad := query.MustNew([]query.Table{{Cardinality: 1}, {Cardinality: 1}})
	bad.Preds = append(bad.Preds, query.Predicate{Left: 0, Right: 1, Selectivity: 7})
	if _, err := Optimize(bad, JobSpec{Space: partition.Linear, Workers: 1}); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestRunWorkerRespectsPartition(t *testing.T) {
	q := gen(t, 6, workload.Chain, 2)
	spec := JobSpec{Space: partition.Linear, Workers: 8}
	for partID := 0; partID < 8; partID++ {
		res, err := RunWorker(q, spec, partID)
		if err != nil {
			t.Fatal(err)
		}
		cs, _ := partition.ForPartition(partition.Linear, 6, partID, 8)
		order := res.Best().JoinOrder()
		pos := make(map[int]int, len(order))
		for i, tbl := range order {
			pos[tbl] = i
		}
		for _, c := range cs.List {
			if pos[c.X] > pos[c.Y] {
				t.Fatalf("partition %d: join order %v violates %v", partID, order, c)
			}
		}
	}
}

func TestInterestingOrdersNeverHurt(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		q := gen(t, 8, workload.Chain, seed)
		blind, err := Optimize(q, JobSpec{Space: partition.Linear, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		aware, err := Optimize(q, JobSpec{Space: partition.Linear, Workers: 4, InterestingOrders: true})
		if err != nil {
			t.Fatal(err)
		}
		if aware.Best.Cost > blind.Best.Cost+eps {
			t.Fatalf("seed=%d: order-aware %g worse than order-blind %g", seed, aware.Best.Cost, blind.Best.Cost)
		}
	}
}

func BenchmarkMPQLinear14Workers8(b *testing.B) {
	q := gen(b, 14, workload.Star, 0)
	spec := JobSpec{Space: partition.Linear, Workers: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(q, spec); err != nil {
			b.Fatal(err)
		}
	}
}
