package core

import (
	"testing"

	"mpq/internal/brute"
	"mpq/internal/dp"
	"mpq/internal/partition"
	"mpq/internal/workload"
)

// Bushy MPQ with interesting orders against the exhaustive oracle: the
// most feature-complete configuration must still tile the plan space.
func TestBushyOrdersMPQMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		q := workload.MustGenerate(workload.NewParams(5, workload.Chain), seed)
		want := brute.BestCost(q, partition.Bushy, brute.Options{InterestingOrders: true})
		for _, m := range []int{1, 2} {
			ans, err := Optimize(q, JobSpec{Space: partition.Bushy, Workers: m, InterestingOrders: true})
			if err != nil {
				t.Fatal(err)
			}
			if !approx(ans.Best.Cost, want) {
				t.Fatalf("seed=%d m=%d: MPQ %g != brute force %g", seed, m, ans.Best.Cost, want)
			}
		}
	}
}

// Multi-objective bushy MPQ equals the serial multi-objective DP.
func TestBushyMultiObjectiveEqualsSerial(t *testing.T) {
	q := workload.MustGenerate(workload.NewParams(7, workload.Star), 4)
	spec := JobSpec{Space: partition.Bushy, Workers: 4, Objective: MultiObjective, Alpha: 1}
	ans, err := Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	serialSpec := spec
	serialSpec.Workers = 1
	ref, err := Optimize(q, serialSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Frontier) != len(ref.Frontier) {
		t.Fatalf("frontier %d != serial %d", len(ans.Frontier), len(ref.Frontier))
	}
	for i := range ref.Frontier {
		if !approx(ans.Frontier[i].Cost, ref.Frontier[i].Cost) ||
			!approx(ans.Frontier[i].Buffer, ref.Frontier[i].Buffer) {
			t.Fatalf("frontier[%d] differs", i)
		}
	}
}

// The work-limit abort propagates cleanly through the worker entry point.
func TestWorkerRespectsWorkLimit(t *testing.T) {
	q := workload.MustGenerate(workload.NewParams(10, workload.Star), 0)
	spec := JobSpec{Space: partition.Linear, Workers: 1}
	opts := spec.DPOptions()
	opts.MaxWorkUnits = 10
	cs := partition.Unconstrained(partition.Linear, 10)
	if _, err := dp.Run(q, cs, opts); err == nil {
		t.Fatal("work limit not enforced")
	}
}
