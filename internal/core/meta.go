package core

import (
	"context"
	"time"
)

// RequestMeta is the serving-path metadata of one optimization request:
// who asked (tenant), through which front end (source), under what
// request ID, and when it entered the arrival queue. The resident
// daemon (internal/server) stamps it onto the request context before
// calling the engine, so every layer below — engines, caches, the plan
// log — can attribute work to a request without new parameters
// threading through the Engine interface. It deliberately carries no
// query content: the context is for attribution, the arguments are for
// computation.
type RequestMeta struct {
	// ID is the serving layer's unique request identifier (empty outside
	// a daemon).
	ID string
	// Tenant names the fairness bucket the request was admitted under.
	Tenant string
	// Source is the front end the request arrived through: "http",
	// "wire", or empty for direct library calls.
	Source string
	// EnqueuedAt is when the request entered the arrival queue; the
	// difference to serve time is the queueing delay.
	EnqueuedAt time.Time
}

// metaKey is the private context key for RequestMeta.
type metaKey struct{}

// WithRequestMeta returns a context carrying the request metadata.
func WithRequestMeta(ctx context.Context, m RequestMeta) context.Context {
	return context.WithValue(ctx, metaKey{}, m)
}

// RequestMetaFrom extracts the request metadata stamped by a serving
// layer, reporting whether any was present.
func RequestMetaFrom(ctx context.Context) (RequestMeta, bool) {
	m, ok := ctx.Value(metaKey{}).(RequestMeta)
	return m, ok
}
