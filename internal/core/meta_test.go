package core

import (
	"context"
	"testing"
	"time"
)

func TestRequestMetaRoundTrip(t *testing.T) {
	if _, ok := RequestMetaFrom(context.Background()); ok {
		t.Fatal("bare context claims to carry request metadata")
	}
	want := RequestMeta{ID: "r-17", Tenant: "acme", Source: "http", EnqueuedAt: time.Unix(100, 0)}
	ctx := WithRequestMeta(context.Background(), want)
	got, ok := RequestMetaFrom(ctx)
	if !ok || got != want {
		t.Fatalf("RequestMetaFrom = %+v, %v; want %+v, true", got, ok, want)
	}
	// Metadata survives derivation and is overridden, not merged, by a
	// closer stamp.
	inner := WithRequestMeta(ctx, RequestMeta{ID: "r-18"})
	if got, _ := RequestMetaFrom(inner); got.ID != "r-18" || got.Tenant != "" {
		t.Fatalf("inner stamp = %+v, want a full replacement", got)
	}
	ctx2, cancel := context.WithCancel(ctx)
	defer cancel()
	if got, ok := RequestMetaFrom(ctx2); !ok || got != want {
		t.Fatalf("metadata lost through derivation: %+v, %v", got, ok)
	}
}
