package core

import (
	"context"
	"runtime"
	"runtime/debug"
	"testing"

	"mpq/internal/partition"
	"mpq/internal/workload"
)

// allocBytesDuring measures the heap bytes fn allocates (global
// counter; the caller keeps the test single-flight). GC is assumed
// disabled by the caller so sync.Pool contents survive between
// measurements.
func allocBytesDuring(fn func()) uint64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// The worker pool must make the second identical job substantially
// cheaper than the first: runtimes (arena slabs + memo capacity) are
// recycled instead of re-grown. This is the in-process engine's
// OptimizeBatch steady state.
func TestWorkerPoolReusesRuntimes(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector makes sync.Pool drop items at random")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1)) // keep pool contents alive
	q := gen(t, 12, workload.Star, 3)
	spec := JobSpec{Space: partition.Linear, Workers: 4}
	ctx := context.Background()

	job := func() {
		if _, err := OptimizeContext(ctx, q, spec, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Two collections empty the pool including its victim cache, so the
	// first job below is genuinely cold even if earlier tests warmed the
	// pool; GC is then off (deferred restore above), so the runtimes the
	// first job grows survive for the second.
	runtime.GC()
	runtime.GC()
	// Parallelism 1 keeps worker goroutines sequential, so every worker
	// can reuse the runtime its predecessor returned to the pool. The
	// comparison is on bytes: the cold job grows arena slabs and memo
	// tables (hundreds of KiB), the warm job borrows them back and pays
	// only per-answer bookkeeping.
	first := allocBytesDuring(job)
	second := allocBytesDuring(job)
	if second*2 > first {
		t.Fatalf("second job allocated %d bytes, first %d — pool reuse should at least halve it", second, first)
	}
}

// Pooled runtimes carry state sized by earlier queries (bigger memo
// capacity, more slabs). Jobs must be bit-identical no matter which
// runtime history they land on: run a large query to fatten the pool,
// then verify a small query answers exactly like a cold process would.
func TestPooledRuntimeStaleCapacityBitIdentical(t *testing.T) {
	small := gen(t, 7, workload.Chain, 5)
	spec := JobSpec{Space: partition.Bushy, Workers: 4}
	ctx := context.Background()

	cold, err := OptimizeContext(ctx, small, spec, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Fatten the pool: a 14-table clique forces every pooled memo and
	// arena well past the small query's size.
	big := gen(t, 14, workload.Clique, 6)
	if _, err := OptimizeContext(ctx, big, JobSpec{Space: partition.Linear, Workers: 4}, 4); err != nil {
		t.Fatal(err)
	}

	warm, err := OptimizeContext(ctx, small, spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Best.String() != cold.Best.String() || !approx(warm.Best.Cost, cold.Best.Cost) {
		t.Fatalf("stale-capacity run changed the plan:\ncold %s (%g)\nwarm %s (%g)",
			cold.Best, cold.Best.Cost, warm.Best, warm.Best.Cost)
	}
	if warm.Stats != cold.Stats {
		t.Fatalf("stale-capacity run changed the stats:\ncold %+v\nwarm %+v", cold.Stats, warm.Stats)
	}
	// Per-worker reports must stay in partition-ID order regardless of
	// which pooled runtime served which partition.
	for i, wr := range warm.PerWorker {
		if wr.PartID != i {
			t.Fatalf("PerWorker[%d].PartID = %d — aggregation no longer partition-ID-ordered", i, wr.PartID)
		}
		if wr.Stats != cold.PerWorker[i].Stats {
			t.Fatalf("worker %d stats differ with pooled runtimes:\ncold %+v\nwarm %+v",
				i, cold.PerWorker[i].Stats, wr.Stats)
		}
	}
}
