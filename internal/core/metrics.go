package core

import (
	"time"

	"mpq/internal/plan"
)

// NetStats records the measured TCP traffic of one distributed
// optimization (or one query's share of a batch). It lives in core —
// rather than in the TCP runtime that fills it — so an engine-agnostic
// Answer can carry it without the algorithm layer importing a
// transport; internal/netrun aliases it.
type NetStats struct {
	// BytesSent is master → workers traffic: payloads plus frame headers.
	BytesSent uint64
	// BytesReceived is workers → master traffic, including frames the
	// master received but ignored (duplicates, stale responses).
	BytesReceived uint64
	// Messages counts point-to-point frames in both directions.
	Messages int
	// Dials counts TCP connections the master opened. A batch that
	// reuses keep-alive connections across queries dials once per
	// worker, not once per (query, worker).
	Dials int
	// IgnoredFrames counts well-formed frames the master discarded
	// because their sequence number did not match the job in flight —
	// duplicated or stale responses replayed by the network. Each is
	// attributed to the query whose request originally produced it. A
	// duplicate that arrives after the last job served on its
	// connection is never read (the master has nothing left to wait
	// for there) and therefore never counted.
	IgnoredFrames int
	// Redispatched counts job attempts that failed at the transport
	// level and were re-queued onto another worker (or retried). Zero in
	// a failure-free run.
	Redispatched int
	// Speculations counts speculative clones the master dispatched: a
	// partition whose elapsed time exceeded the straggler threshold was
	// re-sent to an idle worker, and the first answer won. Zero unless
	// speculation is enabled (netrun.Options.Speculate).
	Speculations int
	// SpeculationWasted counts discarded speculative-race outcomes: a
	// completed response for a partition the master had already
	// aggregated from the other racer, or an explicit ErrCanceled
	// acknowledgment from the loser. Wasted work is the price of the
	// latency win; this counter is how it is audited.
	SpeculationWasted int
	// Probes counts re-admission probes sent to excluded workers: after
	// Options.ReadmitAfter of exclusion, the master clones one pending
	// partition to the excluded worker as a low-priority health check.
	Probes int
	// Readmitted counts excluded workers that answered a probe correctly
	// and rejoined the pool.
	Readmitted int
}

// CacheStats records how a plan cache served one answer, plus a
// snapshot of the cache-wide counters at that moment. It lives in core
// — rather than in the cache that fills it — so the engine-agnostic
// Answer can carry it without the algorithm layer importing the cache;
// internal/cache fills it.
type CacheStats struct {
	// Hit reports that this answer was served from the cache without
	// running the dynamic program.
	Hit bool
	// Collapsed reports that this answer was shared from a concurrent
	// identical request's flight (singleflight): some other caller ran
	// the dynamic program, this caller only waited.
	Collapsed bool
	// Hits, Misses, Collapses and Evictions are the cache's cumulative
	// counters at the time the answer was served.
	Hits, Misses, Collapses, Evictions uint64
	// Entries and Bytes are the cache's occupancy at that time.
	Entries int
	Bytes   int64
}

// ClusterMetrics is the simulated shared-nothing cluster's measurement
// record — one row of the paper's figures. It lives in core so a
// simulator Answer can carry it; internal/cluster aliases it as
// cluster.Metrics.
type ClusterMetrics struct {
	// Bytes is the total traffic over the network (both directions),
	// the "Network (bytes)" axis.
	Bytes uint64
	// Messages is the number of point-to-point messages.
	Messages int
	// Rounds is the number of master↔worker communication rounds
	// (always 1 for MPQ; n-1 for SMA).
	Rounds int
	// VirtualTime is the master-observed end-to-end optimization time,
	// the "Time (ms)" axis.
	VirtualTime time.Duration
	// MaxWorkerTime is the slowest worker's busy time, the "W-Time" axis.
	MaxWorkerTime time.Duration
	// MaxMemoEntries is the peak per-worker memo size, the
	// "Memory (relations)" axis.
	MaxMemoEntries uint64
	// Work aggregates the DP work counters over all workers.
	Work plan.Stats
	// Redispatches counts partitions whose worker died and whose job was
	// re-sent to a survivor (zero in a failure-free run).
	Redispatches int
	// RecoveryOverhead is VirtualTime minus what the same run would have
	// taken failure-free — the cost of detection plus re-dispatch (zero
	// in a failure-free run). Computed from the schedule, not by
	// re-running the optimizer.
	RecoveryOverhead time.Duration
	// Speculations counts speculative clones the simulated master
	// dispatched under the adaptive scheduler (cluster.Faults.Speculate):
	// partitions whose elapsed time exceeded the straggler threshold and
	// were re-sent to an idle node.
	Speculations int
	// WastedWork is the DP work (in work units) burned by speculative-
	// race losers before their cancel arrived — compute that produced no
	// aggregated answer. Zero when nothing was speculated.
	WastedWork uint64
	// Probes counts re-admission probes sent to excluded nodes. The
	// one-round simulator only reports this when a fault script drives
	// exclusion and re-admission; the TCP runtime's equivalent lives on
	// NetStats.Probes.
	Probes int
}
