//go:build race

package core

// raceEnabled reports whether the race detector instruments this build.
// Under -race, sync.Pool intentionally drops items at random to shake
// out lifecycle races, so tests asserting pool reuse must skip.
const raceEnabled = true
