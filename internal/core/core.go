// Package core implements MPQ, the paper's massively-parallel query
// optimization algorithm (§4.1, Algorithm 1): the master hands each
// worker the query plus a plan-space partition ID, every worker
// independently finds the optimal plan(s) inside its partition with the
// shared dynamic-programming engine, and the master compares the
// partition-optimal plans to obtain the global optimum. Exactly one task
// per worker, one round of communication, no shared state.
//
// This package provides the job specification shared by all execution
// engines, the worker entry point, and the in-process engine that runs
// workers as goroutines (the shared-nothing analogue on a single
// machine). The cluster simulator (internal/cluster) and the TCP runtime
// (internal/netrun) reuse the same worker entry point.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"mpq/internal/cost"
	"mpq/internal/dp"
	"mpq/internal/mo"
	"mpq/internal/partition"
	"mpq/internal/plan"
	"mpq/internal/query"
)

// Objective selects between the paper's two experiment series.
type Objective int

const (
	// SingleObjective optimizes the time metric only (first series, §6.2).
	SingleObjective Objective = iota
	// MultiObjective approximates the Pareto frontier over (time, buffer)
	// with the α-pruning of [22, 23] (second series).
	MultiObjective
	// RobustObjective searches for the plan minimizing worst-case cost
	// over a selectivity-uncertainty band (JobSpec.RobustBand): the DP
	// runs the multi-objective machinery over (nominal cost, cost with
	// every selectivity inflated to the band's high endpoint) and Best
	// is the frontier member with the smallest worst-case cost. The
	// frontier itself — the nominal-vs-worst-case trade-off — is
	// returned like a multi-objective frontier.
	RobustObjective
)

// String names the objective mode.
func (o Objective) String() string {
	switch o {
	case SingleObjective:
		return "single-objective"
	case MultiObjective:
		return "multi-objective"
	case RobustObjective:
		return "robust"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// HasFrontier reports whether answers for this objective carry a plan
// frontier beyond Best — true for the frontier-producing modes
// (MultiObjective and RobustObjective). Serving paths use this to
// decide whether Plans[1:] of a wire response is a frontier.
func (o Objective) HasFrontier() bool {
	return o == MultiObjective || o == RobustObjective
}

// DefaultRobustBand is the selectivity-uncertainty band a
// RobustObjective job assumes when JobSpec.RobustBand is zero: the
// worst case guards against every selectivity estimate being low by up
// to a factor of two (q-error 2).
const DefaultRobustBand = 2.0

// JobSpec is the complete, serializable description of one optimization
// job. The master sends (JobSpec, partition ID, query) to each worker;
// nothing else is needed, which is what keeps the protocol to one round.
type JobSpec struct {
	// Space selects the linear or bushy plan space.
	Space partition.Space
	// Workers is the number of plan-space partitions m (a power of two).
	Workers int
	// Objective selects single- or multi-objective pruning.
	Objective Objective
	// Alpha is the approximation factor for multi-objective pruning
	// (ignored for single-objective jobs; the paper's default is 10).
	// Robust jobs honor it too — α > 1 trades frontier precision for
	// speed; the default 1 keeps robust answers exact and
	// engine-identical.
	Alpha float64
	// RobustBand is the selectivity-uncertainty band for
	// RobustObjective jobs: the worst case inflates every predicate
	// selectivity by this factor (clamped to 1). Must be ≥ 1; zero
	// means DefaultRobustBand. Ignored by the other objectives.
	RobustBand float64
	// InterestingOrders enables sort-order tracking in the DP.
	InterestingOrders bool
	// DisableCrossProducts is an ablation switch (off in the paper).
	DisableCrossProducts bool
	// CostModel overrides the cost model (zero value = cost.Default()).
	// Set cost.Parametric(spill) with MultiObjective for parametric
	// query optimization.
	CostModel cost.Model
}

// Validate checks the spec against an n-table query.
func (s JobSpec) Validate(n int) error {
	if !s.Space.Valid() {
		return fmt.Errorf("core: invalid plan space %d", int(s.Space))
	}
	if _, err := partition.NumConstraints(s.Workers); err != nil {
		return err
	}
	if max := partition.MaxWorkers(s.Space, n); s.Workers > max {
		return fmt.Errorf("core: %d workers exceed the maximum of %d for %v space and %d tables",
			s.Workers, max, s.Space, n)
	}
	switch s.Objective {
	case SingleObjective, MultiObjective, RobustObjective:
	default:
		return fmt.Errorf("core: invalid objective %d", int(s.Objective))
	}
	if s.Objective.HasFrontier() && s.Alpha != 0 && s.Alpha < 1 {
		return fmt.Errorf("core: approximation factor α=%g must be ≥ 1", s.Alpha)
	}
	if s.Objective == RobustObjective {
		if s.RobustBand != 0 && !(s.RobustBand >= 1) {
			return fmt.Errorf("core: robust band %g must be ≥ 1 (0 = default %g)", s.RobustBand, DefaultRobustBand)
		}
		if s.CostModel.Second != cost.BufferFootprint {
			return fmt.Errorf("core: robust jobs derive their own second metric; CostModel.Second must be left at the default")
		}
	}
	if s.CostModel != (cost.Model{}) {
		if err := s.CostModel.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Pruner builds the pruning function the spec asks for — the only thing
// that differs between the optimization variants (§4). All three
// families implement dp's two-phase cost-first contract: a scalar
// Admits check per candidate, node materialization only for survivors.
func (s JobSpec) Pruner() dp.Pruner {
	if s.Objective.HasFrontier() {
		// Robust jobs reuse the Pareto pruner unchanged: with the Buffer
		// slot carrying worst-case band cost, dominance over (Cost,
		// Buffer) is exactly "never better at either endpoint".
		alpha := s.Alpha
		if alpha < 1 {
			alpha = 1
		}
		return mo.ParetoPruner{Alpha: alpha}
	}
	if s.InterestingOrders {
		return dp.OrderAware{}
	}
	return dp.SingleBest{}
}

// EffectiveModel is the cost model the DP actually runs under: the
// spec's CostModel (zero value = cost.Default()), with the RobustCost
// second metric and band substituted in for RobustObjective jobs.
// Plan validation must use this model, not CostModel, for robust
// answers — their Buffer annotations are worst-case band costs.
func (s JobSpec) EffectiveModel() cost.Model {
	m := s.CostModel
	if s.Objective == RobustObjective {
		if m == (cost.Model{}) {
			m = cost.Default()
		}
		m.Second = cost.RobustCost
		m.RobustBand = s.RobustBand
		if m.RobustBand == 0 {
			m.RobustBand = DefaultRobustBand
		}
	}
	return m
}

// DPOptions assembles the DP engine options for this spec.
func (s JobSpec) DPOptions() dp.Options {
	return dp.Options{
		Model:                s.EffectiveModel(),
		Pruner:               s.Pruner(),
		InterestingOrders:    s.InterestingOrders,
		DisableCrossProducts: s.DisableCrossProducts,
	}
}

// workerPool recycles per-worker DP runtimes — a plan-node arena plus a
// memo table each — across worker tasks. Every execution path funnels
// through RunWorkerContext, so goroutine workers of the in-process
// engine, the virtual workers of the cluster simulator and long-lived
// TCP workers all reach the same steady state: repeated jobs borrow
// slabs and memo capacity sized by earlier jobs instead of re-growing
// them from scratch (the ROADMAP's NUMA-friendly memo pool — each
// goroutine gets its own memo shard and arena, never sharing hot
// memory with another worker). Pooling is safe because a dp.Result
// never references runtime memory: Finish deep-copies the surviving
// root plans out of the arena.
var workerPool = sync.Pool{New: func() any { return dp.NewRuntime() }}

// RunWorker executes one worker task (Algorithm 2): decode the partition
// ID into constraints, enumerate admissible join results, and run the
// constrained dynamic program. It is the single entry point shared by
// the goroutine engine, the cluster simulator and the TCP runtime.
func RunWorker(q *query.Query, spec JobSpec, partID int) (*dp.Result, error) {
	return RunWorkerContext(context.Background(), q, spec, partID)
}

// RunWorkerContext is RunWorker with cooperative cancellation: the
// dynamic program checks ctx between cardinality levels (and
// periodically within one) and returns an error wrapping ctx's cause.
func RunWorkerContext(ctx context.Context, q *query.Query, spec JobSpec, partID int) (*dp.Result, error) {
	if err := spec.Validate(q.N()); err != nil {
		return nil, err
	}
	cs, err := partition.ForPartition(spec.Space, q.N(), partID, spec.Workers)
	if err != nil {
		return nil, err
	}
	rt := workerPool.Get().(*dp.Runtime)
	defer workerPool.Put(rt)
	opts := spec.DPOptions()
	opts.Runtime = rt
	return dp.RunContext(ctx, q, cs, opts)
}

// WorkerReport is the master's record of one worker's contribution.
type WorkerReport struct {
	PartID  int
	Plans   int
	Stats   plan.Stats
	Elapsed time.Duration
}

// Answer is the master's final result.
type Answer struct {
	// Best is the cost-optimal plan (time metric). For multi-objective
	// jobs it is the minimum-time member of the frontier; for robust
	// jobs it is the member with the smallest worst-case band cost
	// (carried in its Buffer annotation).
	Best *plan.Node
	// Frontier is the merged α-approximate Pareto frontier
	// (multi-objective and robust jobs only; nil otherwise).
	Frontier []*plan.Node
	// Stats aggregates worker stats: work counters are summed,
	// MemoEntries is the per-worker maximum (the paper's memory metric).
	Stats plan.Stats
	// MaxWorkerStats is the largest per-worker work counter set — the
	// critical path of skew-free parallel execution.
	MaxWorkerStats plan.Stats
	// PerWorker lists each worker's report, ordered by partition ID.
	PerWorker []WorkerReport
	// Elapsed is the master's total wall-clock time for the job.
	Elapsed time.Duration
	// MaxWorkerElapsed is the slowest worker's wall-clock time
	// ("W-Time" in Figure 2).
	MaxWorkerElapsed time.Duration
	// Net holds the measured TCP traffic when the answer came from the
	// distributed runtime (the TCP engine); nil for other engines.
	Net *NetStats
	// Cluster holds the simulator's measurement record when the answer
	// came from the simulated cluster (the sim engine); nil otherwise.
	Cluster *ClusterMetrics
	// Cache records how a plan cache served this answer when the engine
	// wears one (mpq.WithCache); nil for uncached engines.
	Cache *CacheStats
}

// FinalPrune implements the master's second phase (Algorithm 1, lines
// 8-11): compare the partition-optimal plans returned by the workers and
// keep the global optimum — the single cheapest plan, or the merged
// α-approximate frontier for multi-objective and robust jobs. Best is
// the frontier's minimum-time member, except for robust jobs, where it
// is the member minimizing worst-case band cost (mo.MinWorstCase).
func FinalPrune(spec JobSpec, frontiers [][]*plan.Node) (best *plan.Node, frontier []*plan.Node, err error) {
	if spec.Objective.HasFrontier() {
		alpha := spec.Alpha
		if alpha < 1 {
			alpha = 1
		}
		frontier = mo.Merge(frontiers, alpha)
		if spec.Objective == RobustObjective {
			best = mo.MinWorstCase(frontier)
		} else {
			for _, p := range frontier {
				if best == nil || p.Cost < best.Cost {
					best = p
				}
			}
		}
	} else {
		for _, f := range frontiers {
			for _, p := range f {
				if best == nil || p.Cost < best.Cost {
					best = p
				}
			}
		}
	}
	if best == nil {
		return nil, nil, fmt.Errorf("core: no plan returned by any worker")
	}
	return best, frontier, nil
}

// Optimize runs MPQ with in-process goroutine workers: the Master
// function of Algorithm 1 with goroutines standing in for cluster nodes.
// Parallelism defaults to one goroutine per partition.
func Optimize(q *query.Query, spec JobSpec) (*Answer, error) {
	return OptimizeParallelism(q, spec, spec.Workers)
}

// OptimizeParallelism runs MPQ with at most maxParallel concurrent worker
// goroutines (the paper's executors-per-node knob). maxParallel < 1
// means one goroutine per partition.
func OptimizeParallelism(q *query.Query, spec JobSpec, maxParallel int) (*Answer, error) {
	return OptimizeContext(context.Background(), q, spec, maxParallel)
}

// OptimizeContext is OptimizeParallelism with cooperative cancellation:
// every worker goroutine checks ctx between cardinality levels (and
// periodically within one), queued workers never start once ctx is
// done, and the master returns an error wrapping ctx's cause after all
// workers have stopped — no goroutine outlives the call.
func OptimizeContext(ctx context.Context, q *query.Query, spec JobSpec, maxParallel int) (*Answer, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(q.N()); err != nil {
		return nil, err
	}
	q.Freeze() // freeze before sharing across goroutines

	start := time.Now()
	m := spec.Workers
	if maxParallel < 1 || maxParallel > m {
		maxParallel = m
	}

	type outcome struct {
		partID  int
		res     *dp.Result
		elapsed time.Duration
		err     error
	}
	results := make([]outcome, m)
	sem := make(chan struct{}, maxParallel)
	var wg sync.WaitGroup
	for partID := 0; partID < m; partID++ {
		wg.Add(1)
		go func(partID int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				results[partID] = outcome{partID: partID, err: ctx.Err()}
				return
			}
			defer func() { <-sem }()
			t0 := time.Now()
			res, err := RunWorkerContext(ctx, q, spec, partID)
			results[partID] = outcome{partID: partID, res: res, elapsed: time.Since(t0), err: err}
		}(partID)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: optimization canceled: %w", context.Cause(ctx))
	}

	ans := &Answer{}
	frontiers := make([][]*plan.Node, 0, m)
	for _, oc := range results {
		if oc.err != nil {
			return nil, fmt.Errorf("core: worker %d: %w", oc.partID, oc.err)
		}
		ans.PerWorker = append(ans.PerWorker, WorkerReport{
			PartID:  oc.partID,
			Plans:   len(oc.res.Plans),
			Stats:   oc.res.Stats,
			Elapsed: oc.elapsed,
		})
		ans.Stats.Add(oc.res.Stats)
		if oc.res.Stats.WorkUnits() > ans.MaxWorkerStats.WorkUnits() {
			ans.MaxWorkerStats = oc.res.Stats
		}
		if oc.elapsed > ans.MaxWorkerElapsed {
			ans.MaxWorkerElapsed = oc.elapsed
		}
		frontiers = append(frontiers, oc.res.Plans)
	}
	sort.Slice(ans.PerWorker, func(i, j int) bool { return ans.PerWorker[i].PartID < ans.PerWorker[j].PartID })

	best, frontier, err := FinalPrune(spec, frontiers)
	if err != nil {
		return nil, err
	}
	ans.Best, ans.Frontier = best, frontier
	ans.Elapsed = time.Since(start)
	return ans, nil
}
