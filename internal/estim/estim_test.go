package estim

import (
	"math"
	"testing"

	"mpq/internal/query"
	"mpq/internal/workload"
)

func genQuery(t *testing.T, n int, seed int64) *query.Query {
	t.Helper()
	_, q, err := workload.Generate(workload.NewParams(n, workload.Star), seed)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestPerturbZeroIdentity: Magnitude 0 returns the input query itself —
// not a copy — so the zero-noise path is bit-identical to never having
// called Perturb, regardless of seed.
func TestPerturbZeroIdentity(t *testing.T) {
	q := genQuery(t, 8, 1)
	for _, seed := range []int64{0, 1, 99} {
		out, err := Perturb(q, Noise{Magnitude: 0, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if out != q {
			t.Fatalf("seed %d: Magnitude 0 returned a copy, not the input", seed)
		}
	}
}

// TestPerturbDeterminismAndBounds: the same (query, Noise) reproduces
// the same estimates, a different seed moves them, and every perturbed
// selectivity stays in (0, 1] with per-predicate q-error at most 1+ε.
func TestPerturbDeterminismAndBounds(t *testing.T) {
	q := genQuery(t, 9, 3)
	const eps = 2.0
	a, err := Perturb(q, Noise{Magnitude: eps, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Perturb(q, Noise{Magnitude: eps, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Perturb(q, Noise{Magnitude: eps, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a == q {
		t.Fatal("nonzero noise returned the input query")
	}
	moved, differ := false, false
	for i := range q.Preds {
		sa, sb, sc, st := a.Preds[i].Selectivity, b.Preds[i].Selectivity, c.Preds[i].Selectivity, q.Preds[i].Selectivity
		if sa != sb {
			t.Fatalf("pred %d: same seed gave %g and %g", i, sa, sb)
		}
		if sa != st {
			moved = true
		}
		if sa != sc {
			differ = true
		}
		if !(sa > 0 && sa <= 1) {
			t.Fatalf("pred %d: selectivity %g out of (0, 1]", i, sa)
		}
		// Clamping to 1 can only shrink an overestimate, so the q-error
		// bound survives the clamp.
		if e := QError(sa, st); e > 1+eps+1e-12 {
			t.Fatalf("pred %d: q-error %g exceeds bound %g", i, e, 1+eps)
		}
	}
	if !moved {
		t.Fatal("noise did not move any selectivity")
	}
	if !differ {
		t.Fatal("different seeds produced identical estimates")
	}
}

// TestPerturbUnderestimate: with the bias folded in, no estimate
// exceeds its true selectivity and at least one falls strictly below.
func TestPerturbUnderestimate(t *testing.T) {
	q := genQuery(t, 9, 3)
	out, err := Perturb(q, Noise{Magnitude: 2, Seed: 11, Underestimate: true})
	if err != nil {
		t.Fatal(err)
	}
	below := false
	for i := range q.Preds {
		s, truth := out.Preds[i].Selectivity, q.Preds[i].Selectivity
		if s > truth {
			t.Fatalf("pred %d: underestimate mode produced %g > true %g", i, s, truth)
		}
		if s < truth {
			below = true
		}
	}
	if !below {
		t.Fatal("underestimate mode left every selectivity unchanged")
	}
}

func TestNoiseValidate(t *testing.T) {
	q := genQuery(t, 5, 1)
	for _, n := range []Noise{
		{Magnitude: -1},
		{Magnitude: math.NaN()},
		{Magnitude: math.Inf(1)},
	} {
		if _, err := Perturb(q, n); err == nil {
			t.Fatalf("noise %+v accepted", n)
		}
	}
}

// TestInflate: band 1 is the identity (same pointer); larger bands
// multiply every selectivity and clamp at 1; invalid bands error.
func TestInflate(t *testing.T) {
	q := genQuery(t, 8, 5)
	same, err := Inflate(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if same != q {
		t.Fatal("band 1 returned a copy, not the input")
	}
	const band = 3.0
	hi, err := Inflate(q, band)
	if err != nil {
		t.Fatal(err)
	}
	for i := range q.Preds {
		want := math.Min(1, q.Preds[i].Selectivity*band)
		if got := hi.Preds[i].Selectivity; got != want {
			t.Fatalf("pred %d: inflated to %g, want %g", i, got, want)
		}
	}
	for _, bad := range []float64{0.5, 0, -1, math.Inf(1), math.NaN()} {
		if _, err := Inflate(q, bad); err == nil {
			t.Fatalf("band %g accepted", bad)
		}
	}
}

func TestQError(t *testing.T) {
	if got := QError(2, 1); got != 2 {
		t.Fatalf("QError(2, 1) = %g", got)
	}
	if got := QError(1, 4); got != 4 {
		t.Fatalf("QError(1, 4) = %g", got)
	}
	if got := QError(0.25, 0.25); got != 1 {
		t.Fatalf("QError of equal values = %g", got)
	}
	if got := QError(0, 1); !math.IsInf(got, 1) {
		t.Fatalf("QError(0, 1) = %g, want +Inf", got)
	}
	if got := QError(1, -2); !math.IsInf(got, 1) {
		t.Fatalf("QError(1, -2) = %g, want +Inf", got)
	}
}
