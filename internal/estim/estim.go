// Package estim models cardinality-estimation error. Real optimizers
// never see true selectivities; they see estimates that are off by a
// multiplicative factor — the q-error of Moerkotte et al., the metric
// the robustness literature (Datta et al., "Query Optimization in the
// Wild") sweeps when it asks how bad chosen plans get as estimates
// degrade.
//
// Perturb injects that error synthetically: each predicate selectivity
// is multiplied by an independent factor (1+ε)^u with u uniform in
// [-1, 1], so every perturbed estimate has q-error at most 1+ε against
// the true value and the magnitude knob ε is the worst-case q-error
// minus one. Draws are seed-deterministic and Magnitude 0 takes no
// draws at all, returning the input query unchanged — the bit-identity
// guarantee the engine-equivalence tests pin.
//
// Inflate builds the high endpoint of the uncertainty band the robust
// planner optimizes against: every selectivity multiplied by the band
// and clamped to 1, matching query.SelBetweenInflated.
package estim

import (
	"fmt"
	"math"
	"math/rand"

	"mpq/internal/query"
)

// Noise parameterizes the q-error noise model.
type Noise struct {
	// Magnitude is ε: each selectivity is multiplied by (1+ε)^u with u
	// drawn uniformly from [-1, 1], so the per-predicate q-error is at
	// most 1+ε. 0 disables the model entirely (no draws).
	Magnitude float64
	// Seed drives the per-predicate draws. The same (query, Noise)
	// always yields the same perturbed query.
	Seed int64
	// Underestimate folds every draw to u ≤ 0, so the produced
	// estimates never exceed the true selectivities — the bias real
	// cardinality estimators exhibit (join estimates are predominantly
	// underestimates; Leis et al., VLDB 2015). Under this bias the true
	// selectivity always lies in the upward band [est, est·(1+ε)] that
	// a robust job with RobustBand 1+ε plans against.
	Underestimate bool
}

// Validate returns the first problem with the noise parameters.
func (n Noise) Validate() error {
	if n.Magnitude < 0 || math.IsNaN(n.Magnitude) || math.IsInf(n.Magnitude, 0) {
		return fmt.Errorf("estim: noise magnitude %g must be finite and non-negative", n.Magnitude)
	}
	return nil
}

// Perturb returns a copy of q whose predicate selectivities carry
// multiplicative q-error noise: one factor (1+ε)^u per predicate, u
// uniform in [-1, 1], drawn in predicate index order from a generator
// seeded with n.Seed, then clamped to (0, 1]. Tables and predicate
// structure are untouched — only the estimates move. Magnitude 0
// returns q itself with no random draws, so the zero-noise path is
// bit-identical to never having called Perturb.
func Perturb(q *query.Query, n Noise) (*query.Query, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if n.Magnitude == 0 {
		return q, nil
	}
	base := 1 + n.Magnitude
	rng := rand.New(rand.NewSource(n.Seed))
	out, err := query.New(q.Tables)
	if err != nil {
		return nil, err
	}
	for _, p := range q.Preds {
		u := 2*rng.Float64() - 1
		if n.Underestimate {
			u = -math.Abs(u)
		}
		p.Selectivity = math.Min(1, p.Selectivity*math.Pow(base, u))
		if err := out.AddPredicate(p); err != nil {
			return nil, err
		}
	}
	out.Freeze()
	return out, nil
}

// Inflate returns a copy of q with every predicate selectivity at the
// high endpoint of a multiplicative band: min(1, Selectivity·band).
// Costing a plan under Inflate(q, band) yields its worst-case cost over
// the band, because plan cost is monotone in every selectivity. band
// must be ≥ 1; band 1 returns q itself.
func Inflate(q *query.Query, band float64) (*query.Query, error) {
	if !(band >= 1) || math.IsInf(band, 0) {
		return nil, fmt.Errorf("estim: band %g must be finite and ≥ 1", band)
	}
	if band == 1 {
		return q, nil
	}
	out, err := query.New(q.Tables)
	if err != nil {
		return nil, err
	}
	for _, p := range q.Preds {
		p.Selectivity = math.Min(1, p.Selectivity*band)
		if err := out.AddPredicate(p); err != nil {
			return nil, err
		}
	}
	out.Freeze()
	return out, nil
}

// QError is the symmetric multiplicative error between an estimate and
// a true value: max(est/truth, truth/est) ≥ 1, the standard q-error.
func QError(est, truth float64) float64 {
	if est <= 0 || truth <= 0 {
		return math.Inf(1)
	}
	return math.Max(est/truth, truth/est)
}
