package partition

import (
	"testing"

	"mpq/internal/bitset"
)

// The naive enumerate-and-filter splitter must agree exactly with the
// constructive splitter on every admissible set.
func TestNaiveForEachLeftEquivalence(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{6, 4}, {7, 2}, {9, 8}} {
		for partID := 0; partID < tc.m; partID++ {
			cs, err := ForPartition(Bushy, tc.n, partID, tc.m)
			if err != nil {
				t.Fatal(err)
			}
			sp := cs.NewSplitter()
			for _, bucket := range cs.AdmissibleSets() {
				for _, u := range bucket {
					if u.Count() < 2 {
						continue
					}
					naive := map[bitset.Set]bool{}
					cs.NaiveForEachLeft(u, func(l bitset.Set) { naive[l] = true })
					count := 0
					sp.ForEachLeft(u, func(l bitset.Set) {
						if !naive[l] {
							t.Fatalf("constructive emitted %v, naive did not (u=%v)", l, u)
						}
						count++
					})
					if count != len(naive) {
						t.Fatalf("u=%v: constructive %d splits, naive %d", u, count, len(naive))
					}
				}
			}
		}
	}
}

// The design-choice ablation the paper argues for: constructive split
// enumeration touches only admissible splits; for a fully constrained
// partition the naive filter wastes work proportional to the number of
// *possible* splits. These benchmarks quantify the gap.
func BenchmarkSplitterConstructive(b *testing.B) {
	cs, err := ForPartition(Bushy, 15, 7, 32)
	if err != nil {
		b.Fatal(err)
	}
	sp := cs.NewSplitter()
	u := bitset.Range(15)
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		sp.ForEachLeft(u, func(bitset.Set) { n++ })
	}
	_ = n
}

func BenchmarkSplitterNaive(b *testing.B) {
	cs, err := ForPartition(Bushy, 15, 7, 32)
	if err != nil {
		b.Fatal(err)
	}
	u := bitset.Range(15)
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		cs.NaiveForEachLeft(u, func(bitset.Set) { n++ })
	}
	_ = n
}
