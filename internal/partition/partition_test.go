package partition

import (
	"math/rand"
	"testing"

	"mpq/internal/bitset"
)

func TestSpaceString(t *testing.T) {
	if Linear.String() != "Linear" || Bushy.String() != "Bushy" {
		t.Fatal("space names")
	}
	if Space(9).String() != "Space(9)" {
		t.Fatalf("unknown space string = %q", Space(9).String())
	}
	if !Linear.Valid() || !Bushy.Valid() || Space(9).Valid() {
		t.Fatal("Valid()")
	}
}

func TestMaxWorkers(t *testing.T) {
	cases := []struct {
		space Space
		n     int
		want  int
	}{
		{Linear, 4, 4},
		{Linear, 8, 16},
		{Linear, 9, 16},
		{Linear, 16, 256},
		{Bushy, 9, 8},
		{Bushy, 15, 32},
		{Bushy, 18, 64},
		{Bushy, 2, 1},
	}
	for _, c := range cases {
		if got := MaxWorkers(c.space, c.n); got != c.want {
			t.Errorf("MaxWorkers(%v,%d) = %d want %d", c.space, c.n, got, c.want)
		}
	}
}

func TestNumConstraints(t *testing.T) {
	for m, want := range map[int]int{1: 0, 2: 1, 4: 2, 128: 7} {
		got, err := NumConstraints(m)
		if err != nil || got != want {
			t.Errorf("NumConstraints(%d) = %d,%v want %d", m, got, err, want)
		}
	}
	for _, m := range []int{0, -2, 3, 6, 100} {
		if _, err := NumConstraints(m); err == nil {
			t.Errorf("NumConstraints(%d) accepted", m)
		}
	}
}

func TestForPartitionValidation(t *testing.T) {
	if _, err := ForPartition(Space(7), 8, 0, 2); err == nil {
		t.Error("invalid space accepted")
	}
	if _, err := ForPartition(Linear, 0, 0, 1); err == nil {
		t.Error("zero tables accepted")
	}
	if _, err := ForPartition(Linear, 8, 0, 3); err == nil {
		t.Error("non-power-of-two workers accepted")
	}
	if _, err := ForPartition(Linear, 8, 16, 16); err == nil {
		t.Error("partition ID == m accepted")
	}
	if _, err := ForPartition(Linear, 8, -1, 16); err == nil {
		t.Error("negative partition ID accepted")
	}
	if _, err := ForPartition(Linear, 4, 0, 8); err == nil {
		t.Error("m beyond MaxWorkers accepted (linear)")
	}
	if _, err := ForPartition(Bushy, 6, 0, 8); err == nil {
		t.Error("m beyond MaxWorkers accepted (bushy)")
	}
}

func TestConstraintDecodingLinear(t *testing.T) {
	// Example 1 of the paper: 4 tables, 4 workers, partition 0b10:
	// first bit 0 => Q0 ≺ Q1; second bit 1 => Q3 ≺ Q2.
	cs, err := ForPartition(Linear, 4, 0b10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.List) != 2 {
		t.Fatalf("constraints = %v", cs.List)
	}
	if cs.List[0] != (Constraint{X: 0, Y: 1, Z: -1}) {
		t.Fatalf("first constraint = %v", cs.List[0])
	}
	if cs.List[1] != (Constraint{X: 3, Y: 2, Z: -1}) {
		t.Fatalf("second constraint = %v", cs.List[1])
	}
}

func TestConstraintDecodingBushy(t *testing.T) {
	cs, err := ForPartition(Bushy, 9, 0b01, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cs.List[0] != (Constraint{X: 1, Y: 0, Z: 2}) {
		t.Fatalf("first constraint = %v", cs.List[0])
	}
	if cs.List[1] != (Constraint{X: 3, Y: 4, Z: 5}) {
		t.Fatalf("second constraint = %v", cs.List[1])
	}
}

func TestConstraintString(t *testing.T) {
	if got := (Constraint{X: 0, Y: 1, Z: -1}).String(); got != "Q0 ≺ Q1" {
		t.Fatalf("linear constraint string = %q", got)
	}
	if got := (Constraint{X: 0, Y: 1, Z: 2}).String(); got != "Q0 ⪯ Q1|Q2" {
		t.Fatalf("bushy constraint string = %q", got)
	}
}

func TestDescribe(t *testing.T) {
	cs := Unconstrained(Linear, 4)
	if cs.Describe() != "(unconstrained)" {
		t.Fatalf("Describe = %q", cs.Describe())
	}
	cs, _ = ForPartition(Linear, 4, 0, 2)
	if cs.Describe() != "Q0 ≺ Q1" {
		t.Fatalf("Describe = %q", cs.Describe())
	}
}

func TestAdmissibleLinearExample2(t *testing.T) {
	// Example 2 of the paper (renumbered to 0-based): constraints
	// Q0 ≺ Q1 and Q3 ≺ Q2 admit exactly these 9 join results.
	cs, err := ForPartition(Linear, 4, 0b10, 4)
	if err != nil {
		t.Fatal(err)
	}
	byCard := cs.AdmissibleSets()
	var all []bitset.Set
	for _, bucket := range byCard {
		all = append(all, bucket...)
	}
	want := map[bitset.Set]bool{
		bitset.Empty():        true,
		bitset.Of(0):          true,
		bitset.Of(0, 1):       true,
		bitset.Of(3):          true,
		bitset.Of(0, 3):       true,
		bitset.Of(0, 1, 3):    true,
		bitset.Of(2, 3):       true,
		bitset.Of(0, 2, 3):    true,
		bitset.Of(0, 1, 2, 3): true,
	}
	if len(all) != len(want) {
		t.Fatalf("got %d admissible sets want %d: %v", len(all), len(want), all)
	}
	for _, s := range all {
		if !want[s] {
			t.Errorf("unexpected admissible set %v", s)
		}
	}
}

// brute-force admissibility from first principles.
func bruteAdmissible(cs *ConstraintSet, s bitset.Set) bool {
	if s.Count() <= 1 {
		return true
	}
	for _, c := range cs.List {
		if cs.Space == Linear {
			if s.Contains(c.Y) && !s.Contains(c.X) {
				return false
			}
		} else {
			if s.Contains(c.Y) && s.Contains(c.Z) && !s.Contains(c.X) {
				return false
			}
		}
	}
	return true
}

func TestAdmissibleSetsMatchesPredicate(t *testing.T) {
	cases := []struct {
		space Space
		n, m  int
	}{
		{Linear, 6, 1}, {Linear, 6, 2}, {Linear, 6, 8},
		{Linear, 7, 4}, {Bushy, 6, 1}, {Bushy, 6, 4},
		{Bushy, 7, 2}, {Bushy, 8, 4},
	}
	for _, c := range cases {
		for partID := 0; partID < c.m; partID++ {
			cs, err := ForPartition(c.space, c.n, partID, c.m)
			if err != nil {
				t.Fatal(err)
			}
			got := map[bitset.Set]bool{}
			for _, bucket := range cs.AdmissibleSets() {
				for _, s := range bucket {
					if got[s] {
						t.Fatalf("%v n=%d m=%d part=%d: duplicate set %v", c.space, c.n, c.m, partID, s)
					}
					got[s] = true
				}
			}
			// Every set of cardinality >= 2 in the power set appears iff
			// it satisfies the constraint predicate.
			full := bitset.Range(c.n)
			full.Subsets(func(s bitset.Set) {
				if s.Count() < 2 {
					return
				}
				want := bruteAdmissible(cs, s)
				if got[s] != want {
					t.Fatalf("%v n=%d m=%d part=%d set %v: enumerated=%v predicate=%v",
						c.space, c.n, c.m, partID, s, got[s], want)
				}
				if cs.Admissible(s) != want {
					t.Fatalf("Admissible(%v) = %v want %v", s, cs.Admissible(s), want)
				}
			})
		}
	}
}

func TestCountAdmissibleClosedForm(t *testing.T) {
	cases := []struct {
		space Space
		n, m  int
	}{
		{Linear, 4, 1}, {Linear, 4, 4}, {Linear, 6, 2}, {Linear, 7, 8},
		{Linear, 9, 16}, {Bushy, 6, 1}, {Bushy, 6, 4}, {Bushy, 7, 2},
		{Bushy, 8, 4}, {Bushy, 9, 8},
	}
	for _, c := range cases {
		cs, err := ForPartition(c.space, c.n, c.m-1, c.m)
		if err != nil {
			t.Fatal(err)
		}
		count := uint64(0)
		for _, bucket := range cs.AdmissibleSets() {
			count += uint64(len(bucket))
		}
		if count != cs.CountAdmissible() {
			t.Errorf("%v n=%d m=%d: enumerated %d, closed form %d",
				c.space, c.n, c.m, count, cs.CountAdmissible())
		}
	}
}

// Theorem 2/3: each constraint reduces the admissible-set count by 3/4
// (linear) or 7/8 (bushy).
func TestReductionFactors(t *testing.T) {
	for _, space := range []Space{Linear, Bushy} {
		n := 12
		prev := Unconstrained(space, n).CountAdmissible()
		maxL := n / space.groupSize()
		for l := 1; l <= maxL && l <= 4; l++ {
			cs, err := ForPartition(space, n, 0, 1<<uint(l))
			if err != nil {
				t.Fatal(err)
			}
			cur := cs.CountAdmissible()
			var num, den uint64
			if space == Linear {
				num, den = 3, 4
			} else {
				num, den = 7, 8
			}
			if cur*den != prev*num {
				t.Fatalf("%v l=%d: count %d -> %d is not a %d/%d reduction", space, l, prev, cur, num, den)
			}
			prev = cur
		}
	}
}

// Partition coverage (the paper's completeness property): the union over
// all m partitions of admissible sets is the full power set, for every
// cardinality >= 2.
func TestPartitionsCoverPlanSpace(t *testing.T) {
	cases := []struct {
		space Space
		n, m  int
	}{
		{Linear, 6, 8}, {Linear, 8, 16}, {Linear, 7, 4},
		{Bushy, 6, 4}, {Bushy, 9, 8}, {Bushy, 8, 4},
	}
	for _, c := range cases {
		covered := map[bitset.Set]int{}
		for partID := 0; partID < c.m; partID++ {
			cs, err := ForPartition(c.space, c.n, partID, c.m)
			if err != nil {
				t.Fatal(err)
			}
			for _, bucket := range cs.AdmissibleSets() {
				for _, s := range bucket {
					covered[s]++
				}
			}
		}
		full := bitset.Range(c.n)
		full.Subsets(func(s bitset.Set) {
			if s.Count() < 2 {
				return
			}
			if covered[s] == 0 {
				t.Fatalf("%v n=%d m=%d: set %v not covered by any partition", c.space, c.n, c.m, s)
			}
		})
		// The full query set must be admissible in every partition.
		if covered[full] != c.m {
			t.Fatalf("%v n=%d m=%d: full set covered by %d/%d partitions", c.space, c.n, c.m, covered[full], c.m)
		}
	}
}

func TestInnerAllowedLinear(t *testing.T) {
	cs, err := ForPartition(Linear, 4, 0, 4) // Q0≺Q1, Q2≺Q3
	if err != nil {
		t.Fatal(err)
	}
	u := bitset.Of(0, 1, 2)
	// 0 cannot be inner while 1 is present.
	if cs.InnerAllowed(u, 0) {
		t.Error("0 allowed as inner despite Q0≺Q1 and 1 in set")
	}
	if !cs.InnerAllowed(u, 1) {
		t.Error("1 should be allowed as inner")
	}
	// 2 is constrained before 3, but 3 is absent from u.
	if !cs.InnerAllowed(u, 2) {
		t.Error("2 should be allowed as inner when 3 absent")
	}
	// Unconstrained partitions allow everything.
	un := Unconstrained(Linear, 4)
	for i := 0; i < 4; i++ {
		if !un.InnerAllowed(bitset.Range(4), i) {
			t.Errorf("unconstrained InnerAllowed(%d) = false", i)
		}
	}
}

// ForEachLeft must enumerate exactly the proper subsets L of u where both
// L and u\L are admissible.
func TestForEachLeftMatchesBruteForce(t *testing.T) {
	cases := []struct {
		n, m int
	}{{6, 1}, {6, 2}, {6, 4}, {7, 4}, {8, 4}, {9, 8}}
	for _, c := range cases {
		for partID := 0; partID < c.m; partID++ {
			cs, err := ForPartition(Bushy, c.n, partID, c.m)
			if err != nil {
				t.Fatal(err)
			}
			sp := cs.NewSplitter()
			for _, bucket := range cs.AdmissibleSets() {
				for _, u := range bucket {
					if u.Count() < 2 {
						continue
					}
					want := map[bitset.Set]bool{}
					u.ProperSubsets(func(l bitset.Set) {
						if cs.Admissible(l) && cs.Admissible(u.Minus(l)) {
							want[l] = true
						}
					})
					got := map[bitset.Set]bool{}
					sp.ForEachLeft(u, func(l bitset.Set) {
						if got[l] {
							t.Fatalf("duplicate left operand %v for %v", l, u)
						}
						got[l] = true
					})
					if len(got) != len(want) {
						t.Fatalf("n=%d m=%d part=%d u=%v: got %d splits want %d",
							c.n, c.m, partID, u, len(got), len(want))
					}
					for l := range want {
						if !got[l] {
							t.Fatalf("missing left operand %v for %v", l, u)
						}
					}
				}
			}
		}
	}
}

// Theorem 7's counting argument: summing (splits+2) over all admissible
// sets equals the per-group product of 27 (unconstrained triple), 21
// (constrained triple) and 3 (leftover table).
func TestBushySplitCountClosedForm(t *testing.T) {
	for _, tc := range []struct {
		n, m int
	}{{6, 1}, {6, 2}, {6, 4}, {7, 2}, {8, 4}, {9, 8}} {
		cs, err := ForPartition(Bushy, tc.n, tc.m-1, tc.m)
		if err != nil {
			t.Fatal(err)
		}
		sp := cs.NewSplitter()
		total := uint64(0)
		nSets := uint64(0)
		for _, bucket := range cs.AdmissibleSets() {
			for _, u := range bucket {
				if u.IsEmpty() {
					continue // the empty assignment is counted separately below
				}
				nSets++
				sp.ForEachLeft(u, func(bitset.Set) { total++ })
			}
		}
		l := len(cs.List)
		triples := tc.n / 3
		leftover := tc.n % 3
		want := uint64(1)
		for i := 0; i < triples-l; i++ {
			want *= 27
		}
		for i := 0; i < l; i++ {
			want *= 21
		}
		for i := 0; i < leftover; i++ {
			want *= 3
		}
		// Every (U, L) table-to-{left,right,absent} assignment is either an
		// enumerated split, one of the two degenerate splits (L=∅, L=U) of
		// a non-empty U, or the all-absent assignment (U=∅).
		if total+2*nSets+1 != want {
			t.Fatalf("n=%d m=%d: splits=%d sets=%d, splits+2*sets+1=%d want %d",
				tc.n, tc.m, total, nSets, total+2*nSets+1, want)
		}
	}
}

// Property test: random sets, Admissible is consistent with bruteAdmissible
// under random partitions.
func TestQuickAdmissibleConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 500; trial++ {
		space := Space(rng.Intn(2))
		n := 4 + rng.Intn(12)
		maxW := MaxWorkers(space, n)
		if maxW > 64 {
			maxW = 64
		}
		m := 1 << uint(rng.Intn(trailing(maxW)+1))
		partID := rng.Intn(m)
		cs, err := ForPartition(space, n, partID, m)
		if err != nil {
			t.Fatal(err)
		}
		s := bitset.Set(rng.Uint64()) & bitset.Range(n)
		if cs.Admissible(s) != bruteAdmissible(cs, s) {
			t.Fatalf("inconsistent admissibility for %v (space=%v n=%d part=%d/%d)", s, space, n, partID, m)
		}
	}
}

func trailing(m int) int {
	k := 0
	for m > 1 {
		m >>= 1
		k++
	}
	return k
}

func TestUnconstrainedCoversEverything(t *testing.T) {
	cs := Unconstrained(Linear, 5)
	count := uint64(0)
	for _, bucket := range cs.AdmissibleSets() {
		count += uint64(len(bucket))
	}
	if count != 32 {
		t.Fatalf("unconstrained 5-table query has %d admissible sets, want 2^5", count)
	}
}

func BenchmarkAdmissibleSetsLinear16(b *testing.B) {
	b.ReportAllocs()
	cs, err := ForPartition(Linear, 16, 5, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.AdmissibleSets()
	}
}

func BenchmarkForEachLeftBushy12(b *testing.B) {
	b.ReportAllocs()
	cs, err := ForPartition(Bushy, 12, 3, 16)
	if err != nil {
		b.Fatal(err)
	}
	sp := cs.NewSplitter()
	u := bitset.Range(12)
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		sp.ForEachLeft(u, func(bitset.Set) { n++ })
	}
	_ = n
}

// The streaming enumerator must yield, per cardinality, exactly the
// sets of that size violating no constraint (checked over the full
// powerset, independently of AdmissibleSets, which is now itself built
// on the enumerator). Note Admissible itself special-cases singletons;
// the enumeration, like the original Algorithm 4, does not.
func TestForEachAdmissibleMatchesPredicate(t *testing.T) {
	admissible := func(cs *ConstraintSet, s bitset.Set) bool {
		for _, c := range cs.List {
			if violates(cs.Space, c, s) {
				return false
			}
		}
		return true
	}
	for _, space := range []Space{Linear, Bushy} {
		for _, m := range []int{1, 2, 4} {
			for n := 2; n <= 8; n++ {
				if m > MaxWorkers(space, n) {
					continue
				}
				cs, err := ForPartition(space, n, m-1, m)
				if err != nil {
					t.Fatal(err)
				}
				en := cs.NewEnumerator()
				for k := 0; k <= n; k++ {
					want := map[bitset.Set]bool{}
					bitset.Range(n).Subsets(func(s bitset.Set) {
						if s.Count() == k && admissible(cs, s) {
							want[s] = true
						}
					})
					var got []bitset.Set
					if !en.ForEachAdmissible(k, func(u bitset.Set) bool {
						got = append(got, u)
						return true
					}) {
						t.Fatal("enumeration reported an early stop that never happened")
					}
					if len(got) != len(want) {
						t.Fatalf("%v n=%d m=%d k=%d: enumerated %d sets, predicate admits %d",
							space, n, m, k, len(got), len(want))
					}
					seen := map[bitset.Set]bool{}
					for _, u := range got {
						if u.Count() != k {
							t.Fatalf("%v n=%d m=%d k=%d: enumerated %v with wrong cardinality", space, n, m, k, u)
						}
						if seen[u] {
							t.Fatalf("%v n=%d m=%d k=%d: %v enumerated twice", space, n, m, k, u)
						}
						seen[u] = true
						if !want[u] {
							t.Fatalf("%v n=%d m=%d k=%d: %v violates a constraint", space, n, m, k, u)
						}
					}
				}
			}
		}
	}
}

// Returning false from the callback stops the enumeration immediately.
func TestForEachAdmissibleEarlyStop(t *testing.T) {
	cs := Unconstrained(Linear, 8)
	count := 0
	done := cs.ForEachAdmissible(3, func(bitset.Set) bool {
		count++
		return count < 5
	})
	if done {
		t.Fatal("stopped enumeration reported as complete")
	}
	if count != 5 {
		t.Fatalf("callback ran %d times, want 5", count)
	}
}
