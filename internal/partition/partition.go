// Package partition implements the paper's plan-space partitioning
// (§4.2, Algorithms 3–5): translating a partition ID into join-order
// constraints, deriving the admissible join results for a partition, and
// enumerating the admissible operand splits of a join result.
//
// Linear (left-deep) plan spaces are restricted by precedence constraints
// x ≺ y on disjoint consecutive table pairs: x must appear before y in
// the join order, so intermediate results containing y but not x are
// inadmissible. Bushy plan spaces are restricted by constraints
// x ⪯ y|z on disjoint consecutive table triples: among intermediate
// results containing z, y must not appear before x, so results containing
// y and z but not x are inadmissible.
//
// Every worker derives its constraint set deterministically from
// (partition ID, worker count); the union of all partitions' admissible
// plans is exactly the unconstrained plan space.
package partition

import (
	"fmt"
	"math/bits"
	"strings"

	"mpq/internal/bitset"
)

// Space identifies which plan space is being partitioned.
type Space int

const (
	// Linear is the space of left-deep plans (§3).
	Linear Space = iota
	// Bushy is the space of arbitrary binary join trees.
	Bushy
)

// String names the space as in the paper's figures ("Linear", "Bushy").
func (s Space) String() string {
	switch s {
	case Linear:
		return "Linear"
	case Bushy:
		return "Bushy"
	default:
		return fmt.Sprintf("Space(%d)", int(s))
	}
}

// Valid reports whether s names a real space.
func (s Space) Valid() bool { return s == Linear || s == Bushy }

// groupSize returns the number of tables per constrained group: pairs for
// the linear space, triples for the bushy space.
func (s Space) groupSize() int {
	if s == Linear {
		return 2
	}
	return 3
}

// Constraint is one join-order constraint.
//
// Linear space: X ≺ Y (Z is -1) — table X must be joined before table Y;
// join results containing Y but not X are inadmissible.
//
// Bushy space: X ⪯ Y|Z — following table Z's path to the plan root,
// X appears no later than Y; join results containing Y and Z but not X
// are inadmissible.
type Constraint struct {
	X, Y, Z int
}

// String renders the constraint in the paper's notation.
func (c Constraint) String() string {
	if c.Z < 0 {
		return fmt.Sprintf("Q%d ≺ Q%d", c.X, c.Y)
	}
	return fmt.Sprintf("Q%d ⪯ Q%d|Q%d", c.X, c.Y, c.Z)
}

// MaxWorkers returns the maximal number of workers (partitions) the
// paper's scheme supports for a query of n tables: 2^⌊n/2⌋ for linear
// and 2^⌊n/3⌋ for bushy plan spaces (§5). The result is capped at 2^62
// to stay in int range.
func MaxWorkers(space Space, n int) int {
	g := space.groupSize()
	exp := n / g
	if exp > 62 {
		exp = 62
	}
	return 1 << uint(exp)
}

// NumConstraints returns l = log2(m) and validates that m is a power of
// two (the paper assumes the worker count is a power of two; otherwise
// only a power-of-two subset of workers can be used).
func NumConstraints(m int) (int, error) {
	if m < 1 {
		return 0, fmt.Errorf("partition: worker count %d < 1", m)
	}
	if m&(m-1) != 0 {
		return 0, fmt.Errorf("partition: worker count %d is not a power of two", m)
	}
	return bits.TrailingZeros64(uint64(m)), nil
}

// ConstraintSet is the decoded form of one plan-space partition: the
// constraints plus indexes for fast admissibility checks. Build it with
// ForPartition. A ConstraintSet with no constraints (m = 1) represents
// the full, unpartitioned plan space.
type ConstraintSet struct {
	Space Space
	N     int // number of query tables
	List  []Constraint

	// laterTable[t] = v if a linear constraint t ≺ v exists, else -1.
	// Disjoint pairs guarantee at most one such v per table.
	laterTable []int

	// constrainedTables is the union of all tables mentioned by
	// constraints; groupOf[i] indexes List for the constraint whose
	// group contains table i (-1 if none).
	constrainedTables bitset.Set
	groupMask         []bitset.Set // per constraint: the pair/triple mask
}

// ForPartition translates partition ID partID (0-based, 0 ≤ partID < m)
// into the constraint set defining that partition of the plan space for
// an n-table query (Algorithm 3). Bit i of partID selects the direction
// of the constraint on the i-th disjoint table pair (linear) or triple
// (bushy).
func ForPartition(space Space, n, partID, m int) (*ConstraintSet, error) {
	if !space.Valid() {
		return nil, fmt.Errorf("partition: invalid space %d", int(space))
	}
	if n < 1 || n > bitset.MaxTables {
		return nil, fmt.Errorf("partition: table count %d out of range", n)
	}
	l, err := NumConstraints(m)
	if err != nil {
		return nil, err
	}
	if partID < 0 || partID >= m {
		return nil, fmt.Errorf("partition: partition ID %d outside [0,%d)", partID, m)
	}
	if max := MaxWorkers(space, n); m > max {
		return nil, fmt.Errorf("partition: %d workers exceed maximum %d for %v space with %d tables", m, max, space, n)
	}
	g := space.groupSize()
	cs := &ConstraintSet{Space: space, N: n, laterTable: make([]int, n)}
	for i := range cs.laterTable {
		cs.laterTable[i] = -1
	}
	for i := 0; i < l; i++ {
		precOrd := (partID >> uint(i)) & 1
		var c Constraint
		if space == Linear {
			x, y := g*i, g*i+1
			if precOrd == 0 {
				c = Constraint{X: x, Y: y, Z: -1}
			} else {
				c = Constraint{X: y, Y: x, Z: -1}
			}
			cs.laterTable[c.X] = c.Y
		} else {
			x, y, z := g*i, g*i+1, g*i+2
			if precOrd == 0 {
				c = Constraint{X: x, Y: y, Z: z}
			} else {
				c = Constraint{X: y, Y: x, Z: z}
			}
		}
		cs.List = append(cs.List, c)
		mask := bitset.Single(c.X).Add(c.Y)
		if c.Z >= 0 {
			mask = mask.Add(c.Z)
		}
		cs.groupMask = append(cs.groupMask, mask)
		cs.constrainedTables = cs.constrainedTables.Union(mask)
	}
	return cs, nil
}

// Unconstrained returns the constraint set of the full plan space
// (equivalent to ForPartition(space, n, 0, 1)).
func Unconstrained(space Space, n int) *ConstraintSet {
	cs, err := ForPartition(space, n, 0, 1)
	if err != nil {
		panic(err)
	}
	return cs
}

// violates reports whether join result s violates constraint c.
func violates(space Space, c Constraint, s bitset.Set) bool {
	if space == Linear {
		return s.Contains(c.Y) && !s.Contains(c.X)
	}
	return s.Contains(c.Y) && s.Contains(c.Z) && !s.Contains(c.X)
}

// Admissible reports whether join result s may appear in a plan of this
// partition. Singleton sets are always admissible: scan plans are needed
// by every partition (§4.2 notes singletons are treated separately).
func (cs *ConstraintSet) Admissible(s bitset.Set) bool {
	if s.Count() <= 1 {
		return true
	}
	for _, c := range cs.List {
		if violates(cs.Space, c, s) {
			return false
		}
	}
	return true
}

// InnerAllowed reports, for the linear space, whether table t may be the
// inner (last-joined) operand of join result u: it is forbidden iff a
// constraint t ≺ v exists with v ∈ u (Algorithm 5, line 7).
func (cs *ConstraintSet) InnerAllowed(u bitset.Set, t int) bool {
	v := cs.laterTable[t]
	return v < 0 || !u.Contains(v)
}

// groups returns, for every disjoint table group (constrained pairs or
// triples, then the unconstrained remainder as singleton groups), the
// admissible subsets of that group (Algorithm 4's ConstrainedPowerSet).
func (cs *ConstraintSet) groups() [][]bitset.Set {
	var out [][]bitset.Set
	covered := bitset.Empty()
	for ci, c := range cs.List {
		var subs []bitset.Set
		cs.groupMask[ci].Subsets(func(sub bitset.Set) {
			if !violates(cs.Space, c, sub) {
				subs = append(subs, sub)
			}
		})
		out = append(out, subs)
		covered = covered.Union(cs.groupMask[ci])
	}
	// Unconstrained groups: remaining pairs/triples carry no constraint,
	// so each remaining table contributes {∅, {t}} independently; we
	// group them per-table for a flatter product tree.
	for t := 0; t < cs.N; t++ {
		if !covered.Contains(t) {
			out = append(out, []bitset.Set{bitset.Empty(), bitset.Single(t)})
		}
	}
	return out
}

// Enumerator streams the admissible join results of one partition,
// cardinality by cardinality, without ever materializing the full
// ~4^(n/2) (linear) or ~8^(n/3) (bushy) admissible-set list — the
// O(per-partition) memory the paper's Theorem 4 assumes. It drives the
// same group-product recursion as Algorithm 4 (admissible subsets of
// each disjoint constrained group, crossed with the free tables) with
// cardinality bounds pruning branches that cannot reach the requested
// set size, so every visited branch yields at least one output.
//
// Build one Enumerator per DP run and reuse it across cardinalities:
//
//	en := cs.NewEnumerator()
//	for k := 2; k <= cs.N; k++ {
//		en.ForEachAdmissible(k, func(u bitset.Set) bool {
//			process(u) // e.g. dp's Engine.ProcessSet
//			return true
//		})
//	}
type Enumerator struct {
	groups [][]bitset.Set
	// maxTail[i] is the largest table count groups[i:] can contribute;
	// a partial product with cnt tables is pruned when cnt+maxTail < k.
	maxTail []int
}

// NewEnumerator returns a streaming enumerator for this partition's
// admissible join results. The enumerator is stateless between calls and
// safe to reuse, but not for concurrent use.
func (cs *ConstraintSet) NewEnumerator() *Enumerator {
	groups := cs.groups()
	maxTail := make([]int, len(groups)+1)
	for i := len(groups) - 1; i >= 0; i-- {
		max := 0
		for _, sub := range groups[i] {
			if c := sub.Count(); c > max {
				max = c
			}
		}
		maxTail[i] = maxTail[i+1] + max
	}
	return &Enumerator{groups: groups, maxTail: maxTail}
}

// ForEachAdmissible calls fn for every admissible join result with
// exactly k tables, in the same deterministic order in which
// AdmissibleSets fills its k-th bucket. fn returns whether enumeration
// should continue; ForEachAdmissible reports whether it ran to
// completion (false iff fn stopped it).
func (en *Enumerator) ForEachAdmissible(k int, fn func(u bitset.Set) bool) bool {
	var rec func(gi int, acc bitset.Set, cnt int) bool
	rec = func(gi int, acc bitset.Set, cnt int) bool {
		if cnt+en.maxTail[gi] < k {
			return true // this branch cannot reach k tables
		}
		if gi == len(en.groups) {
			return fn(acc) // cnt == k: <k pruned above, >k skipped below
		}
		for _, sub := range en.groups[gi] {
			c := sub.Count()
			if cnt+c > k {
				continue
			}
			if !rec(gi+1, acc.Union(sub), cnt+c) {
				return false
			}
		}
		return true
	}
	return rec(0, bitset.Empty(), 0)
}

// ForEachAdmissible streams the admissible join results with exactly k
// tables; see Enumerator.ForEachAdmissible. Callers iterating several
// cardinalities should build one Enumerator with NewEnumerator and reuse
// it instead.
func (cs *ConstraintSet) ForEachAdmissible(k int, fn func(u bitset.Set) bool) bool {
	return cs.NewEnumerator().ForEachAdmissible(k, fn)
}

// AdmissibleSets enumerates every admissible join result of the partition
// (Algorithm 4), bucketed by cardinality: the k-th slice holds all
// admissible table sets with exactly k tables. Bucket 0 holds the empty
// set and bucket 1 all singletons that survive the constraints.
//
// This eagerly materializes the whole admissible-set list and is kept
// for tests, tools and ablations; the DP and the SMA baseline stream the
// same sets per cardinality through Enumerator instead.
func (cs *ConstraintSet) AdmissibleSets() [][]bitset.Set {
	byCard := make([][]bitset.Set, cs.N+1)
	en := cs.NewEnumerator()
	for k := 0; k <= cs.N; k++ {
		en.ForEachAdmissible(k, func(u bitset.Set) bool {
			byCard[k] = append(byCard[k], u)
			return true
		})
	}
	return byCard
}

// CountAdmissible returns the exact number of admissible join results in
// closed form: 4^(p-l)·3^l·2^r for linear (p pairs, r leftover tables)
// and 8^(t-l)·7^l·2^r for bushy (t triples) — the finite-n counterparts
// of Theorems 2 and 3.
func (cs *ConstraintSet) CountAdmissible() uint64 {
	g := cs.Space.groupSize()
	groups := cs.N / g
	leftover := cs.N % g
	l := len(cs.List)
	full := uint64(1) << uint(g)
	constrained := full - 1
	count := uint64(1)
	for i := 0; i < groups-l; i++ {
		count *= full
	}
	for i := 0; i < l; i++ {
		count *= constrained
	}
	return count << uint(leftover)
}

// ForEachLeft enumerates every admissible left operand L of join result u
// in the bushy space (Algorithm 5, TrySplits[Bushy]): both L and u\L are
// admissible, L ≠ ∅ and L ≠ u. The enumeration constructs only
// admissible operands (its complexity is linear in the number of
// admissible rather than possible splits). With no constraints it yields
// every proper subset, i.e. the classical bushy DP split enumeration.
//
// For hot loops prefer NewSplitter, which reuses internal buffers.
func (cs *ConstraintSet) ForEachLeft(u bitset.Set, fn func(left bitset.Set)) {
	cs.NewSplitter().ForEachLeft(u, fn)
}

// Splitter enumerates admissible operand splits with reusable buffers;
// the per-partition dynamic program allocates one Splitter and calls
// ForEachLeft once per admissible join result. Not safe for concurrent
// use.
type Splitter struct {
	cs    *ConstraintSet
	parts [][]bitset.Set // scratch: admissible per-triple subsets
	buf   [][]bitset.Set // backing storage, one slice per constraint
}

// NewSplitter returns a Splitter for this partition.
func (cs *ConstraintSet) NewSplitter() *Splitter {
	sp := &Splitter{cs: cs}
	sp.buf = make([][]bitset.Set, len(cs.List))
	for i := range sp.buf {
		sp.buf[i] = make([]bitset.Set, 0, 8)
	}
	sp.parts = make([][]bitset.Set, 0, len(cs.List))
	return sp
}

// ForEachLeft enumerates the admissible left operands of u; see
// ConstraintSet.ForEachLeft.
func (sp *Splitter) ForEachLeft(u bitset.Set, fn func(left bitset.Set)) {
	cs := sp.cs
	free := u.Minus(cs.constrainedTables)
	sp.parts = sp.parts[:0]
	for ci, c := range cs.List {
		s := cs.groupMask[ci].Intersect(u)
		if s.IsEmpty() {
			continue
		}
		subs := sp.buf[ci][:0]
		s.Subsets(func(sub bitset.Set) {
			rest := s.Minus(sub)
			if violates(cs.Space, c, sub) || violates(cs.Space, c, rest) {
				return
			}
			subs = append(subs, sub)
		})
		sp.buf[ci] = subs
		sp.parts = append(sp.parts, subs)
	}
	parts := sp.parts
	var rec func(pi int, acc bitset.Set)
	rec = func(pi int, acc bitset.Set) {
		if pi == len(parts) {
			free.Subsets(func(fs bitset.Set) {
				left := acc.Union(fs)
				if !left.IsEmpty() && left != u {
					fn(left)
				}
			})
			return
		}
		for _, sub := range parts[pi] {
			rec(pi+1, acc.Union(sub))
		}
	}
	rec(0, bitset.Empty())
}

// NaiveForEachLeft enumerates the same admissible left operands as
// ForEachLeft by generating every proper subset of u and filtering — the
// approach the paper deliberately avoids for bushy spaces because its
// complexity is linear in the number of possible rather than admissible
// splits (§4.2). It exists as the ablation baseline for that design
// choice; see the benchmarks.
func (cs *ConstraintSet) NaiveForEachLeft(u bitset.Set, fn func(left bitset.Set)) {
	u.ProperSubsets(func(left bitset.Set) {
		if cs.Admissible(left) && cs.Admissible(u.Minus(left)) {
			fn(left)
		}
	})
}

// Describe renders the constraint list for logs and CLI output.
func (cs *ConstraintSet) Describe() string {
	if len(cs.List) == 0 {
		return "(unconstrained)"
	}
	parts := make([]string, len(cs.List))
	for i, c := range cs.List {
		parts[i] = c.String()
	}
	return strings.Join(parts, ", ")
}
