// Package cliutil provides the -engine flag shared by the mpq command
// line tools and the examples: one way to name an execution engine
// (serial, local, sim, tcp, daemon), one set of tuning flags per
// engine, and one constructor turning the selection into an
// mpq.Engine. Every tool that optimizes a query offers the same
// choices with the same spellings, which is what makes engine
// equivalence a user-visible property rather than a test-suite secret.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mpq"
	"mpq/internal/server"
)

// EngineNames lists the accepted -engine values.
func EngineNames() []string { return []string{"serial", "local", "sim", "tcp", "daemon"} }

// EngineFlags collects the shared engine-selection flags after
// parsing. Zero values mean engine defaults.
type EngineFlags struct {
	// Engine is the -engine value: serial, local, sim or tcp.
	Engine string
	// Parallelism caps concurrent goroutine workers (local engine).
	Parallelism int
	// TCPWorkers is the comma-separated worker address list (tcp engine).
	TCPWorkers string
	// Timeout is the per-attempt deadline (tcp engine).
	Timeout time.Duration
	// Retries is the per-partition attempt budget (tcp engine).
	Retries int
	// WorkerFailures is the exclusion threshold (tcp engine).
	WorkerFailures int
	// Kill crashes this many simulated workers mid-query (sim engine).
	Kill int
	// Detect is the failure-detection timeout for Kill (sim engine).
	Detect time.Duration
	// Speculate races straggling partitions against speculative clones
	// (tcp and sim engines).
	Speculate bool
	// SpecMultiplier scales the straggler threshold (tcp and sim).
	SpecMultiplier float64
	// SpecFloor bounds the straggler threshold from below (tcp and sim).
	SpecFloor time.Duration
	// ReadmitAfter probes excluded workers after this backoff (tcp engine).
	ReadmitAfter time.Duration
	// Stall slows this many simulated workers by StallFactor (sim engine).
	Stall int
	// StallFactor is the stalled workers' slowdown (sim engine).
	StallFactor float64
	// Nodes bounds the simulated node pool (sim engine; 0 = one node per
	// partition).
	Nodes int
	// DaemonAddr is a resident mpqd's wire address (daemon engine).
	DaemonAddr string
}

// Register installs the shared flags on fs with the given default
// engine and returns the destination struct; call Build after parsing.
func Register(fs *flag.FlagSet, def string) *EngineFlags {
	ef := &EngineFlags{}
	fs.StringVar(&ef.Engine, "engine", def,
		"execution engine: "+strings.Join(EngineNames(), ", ")+
			" (serial DP, goroutine workers, cluster simulation, remote TCP workers)")
	fs.IntVar(&ef.Parallelism, "parallelism", 0,
		"local engine: cap on concurrent worker goroutines (0 = one per partition)")
	fs.StringVar(&ef.TCPWorkers, "tcp-workers", "",
		"tcp engine: comma-separated worker addresses (start them with: mpqnode worker)")
	fs.DurationVar(&ef.Timeout, "timeout", 0,
		"tcp engine: per-job-attempt deadline, also bounding the dial (0 = default 2m); daemon engine: dial timeout (0 = 10s)")
	fs.IntVar(&ef.Retries, "retries", 0,
		"tcp engine: attempts per partition before giving up (0 = default)")
	fs.IntVar(&ef.WorkerFailures, "max-worker-failures", 0,
		"tcp engine: consecutive failures before a worker is excluded (0 = default)")
	fs.IntVar(&ef.Kill, "kill", 0,
		"sim engine: crash this many workers mid-query and measure recovery")
	fs.DurationVar(&ef.Detect, "detect", 0,
		"sim engine: failure-detection timeout for -kill (default 10s)")
	fs.BoolVar(&ef.Speculate, "speculate", false,
		"tcp/sim engine: race straggling partitions against speculative clones on idle workers")
	fs.Float64Var(&ef.SpecMultiplier, "spec-multiplier", 0,
		"tcp/sim engine: straggler threshold as a multiple of the median service time (0 = default)")
	fs.DurationVar(&ef.SpecFloor, "spec-floor", 0,
		"tcp/sim engine: lower bound on the straggler threshold (0 = default)")
	fs.DurationVar(&ef.ReadmitAfter, "readmit-after", 0,
		"tcp engine: probe excluded workers with a pending partition after this backoff (0 = never)")
	fs.IntVar(&ef.Stall, "stall", 0,
		"sim engine: slow this many simulated workers by -stall-factor")
	fs.Float64Var(&ef.StallFactor, "stall-factor", 0,
		"sim engine: compute slowdown of -stall workers (0 = default 100)")
	fs.IntVar(&ef.Nodes, "nodes", 0,
		"sim engine: bound the simulated node pool (0 = one node per partition)")
	fs.StringVar(&ef.DaemonAddr, "daemon-addr", "",
		"daemon engine: wire address of a running mpqd (start one with: mpqd -wire ADDR)")
	return ef
}

// Build constructs the selected engine. partitions is the job's worker
// count, used to validate -kill (pass a large value when it varies).
func (ef *EngineFlags) Build(partitions int) (mpq.Engine, error) {
	switch strings.ToLower(ef.Engine) {
	case "serial":
		return mpq.NewSerialEngine(), nil
	case "local", "inprocess":
		return mpq.NewInProcessEngine(mpq.WithParallelism(ef.Parallelism)), nil
	case "sim":
		model := mpq.DefaultClusterModel()
		if ef.Nodes < 0 {
			return nil, fmt.Errorf("-nodes %d must not be negative", ef.Nodes)
		}
		model.Nodes = ef.Nodes
		opts := []mpq.EngineOption{mpq.WithClusterModel(model)}
		if ef.Kill < 0 {
			return nil, fmt.Errorf("-kill %d must not be negative", ef.Kill)
		}
		if ef.Stall < 0 {
			return nil, fmt.Errorf("-stall %d must not be negative", ef.Stall)
		}
		pool := partitions
		if ef.Nodes > 0 {
			pool = ef.Nodes
		}
		if ef.Kill+ef.Stall > 0 || ef.Speculate {
			if ef.Kill >= pool {
				return nil, fmt.Errorf("-kill %d must leave at least one of %d nodes alive", ef.Kill, pool)
			}
			if ef.Kill+ef.Stall > pool {
				return nil, fmt.Errorf("-kill %d plus -stall %d exceeds the %d-node pool", ef.Kill, ef.Stall, pool)
			}
			faults := mpq.ClusterFaults{
				DetectTimeout:  ef.Detect,
				StallFactor:    ef.StallFactor,
				Speculate:      ef.Speculate,
				SpecMultiplier: ef.SpecMultiplier,
				SpecFloor:      ef.SpecFloor,
			}
			for i := 0; i < ef.Kill; i++ {
				faults.Dead = append(faults.Dead, i)
			}
			// Stalled nodes follow the dead ones so the scripts don't overlap.
			for i := 0; i < ef.Stall; i++ {
				faults.Stalled = append(faults.Stalled, ef.Kill+i)
			}
			opts = append(opts, mpq.WithClusterFaults(faults))
		}
		return mpq.NewSimEngine(opts...), nil
	case "tcp":
		if ef.TCPWorkers == "" {
			return nil, fmt.Errorf("-engine tcp requires -tcp-workers host:port[,host:port...]")
		}
		return mpq.NewTCPEngine(strings.Split(ef.TCPWorkers, ","),
			mpq.WithMasterOptions(mpq.MasterOptions{
				Timeout:               ef.Timeout,
				MaxAttempts:           ef.Retries,
				MaxWorkerFailures:     ef.WorkerFailures,
				Speculate:             ef.Speculate,
				SpeculationMultiplier: ef.SpecMultiplier,
				SpeculationFloor:      ef.SpecFloor,
				ReadmitAfter:          ef.ReadmitAfter,
			}))
	case "daemon":
		if ef.DaemonAddr == "" {
			return nil, fmt.Errorf("-engine daemon requires -daemon-addr host:port")
		}
		timeout := ef.Timeout
		if timeout == 0 {
			timeout = 10 * time.Second
		}
		c, err := server.Dial(ef.DaemonAddr, timeout)
		if err != nil {
			return nil, err
		}
		return c, nil
	default:
		return nil, fmt.Errorf("unknown engine %q (want %s)", ef.Engine, strings.Join(EngineNames(), ", "))
	}
}

// Describe renders one answer line for the engine that produced ans:
// the simulator's virtual time and traffic, the TCP runtime's measured
// network stats, or the in-process wall clock.
func Describe(ans *mpq.Answer) string {
	switch {
	case ans.Cluster != nil:
		line := fmt.Sprintf("virtual %v, network %d bytes in %d messages, peak memo %d relations",
			ans.Cluster.VirtualTime.Round(1000), ans.Cluster.Bytes, ans.Cluster.Messages, ans.Cluster.MaxMemoEntries)
		if ans.Cluster.Redispatches > 0 {
			line += fmt.Sprintf("; %d re-dispatches, recovery overhead %v",
				ans.Cluster.Redispatches, ans.Cluster.RecoveryOverhead.Round(1000))
		}
		if ans.Cluster.Speculations > 0 {
			line += fmt.Sprintf("; %d speculations, %d work units wasted",
				ans.Cluster.Speculations, ans.Cluster.WastedWork)
		}
		return line
	case ans.Net != nil:
		line := fmt.Sprintf("wall %v; network %d bytes sent, %d received, %d messages over %d connections",
			ans.Elapsed.Round(1000), ans.Net.BytesSent, ans.Net.BytesReceived, ans.Net.Messages, ans.Net.Dials)
		if ans.Net.Redispatched > 0 {
			line += fmt.Sprintf("; recovered from failures: %d re-dispatched", ans.Net.Redispatched)
		}
		if ans.Net.Speculations > 0 {
			line += fmt.Sprintf("; %d speculations (%d wasted)", ans.Net.Speculations, ans.Net.SpeculationWasted)
		}
		if ans.Net.Probes > 0 {
			line += fmt.Sprintf("; %d probes, %d workers readmitted", ans.Net.Probes, ans.Net.Readmitted)
		}
		return line
	default:
		return fmt.Sprintf("wall %v (slowest worker %v)",
			ans.Elapsed.Round(1000), ans.MaxWorkerElapsed.Round(1000))
	}
}

// MustParseEngine is the examples' one-liner: it registers the shared
// flags on the default flag set with the given default engine, parses
// the command line, and builds the engine. Errors are fatal.
func MustParseEngine(def string) mpq.Engine {
	ef := Register(flag.CommandLine, def)
	flag.Parse()
	eng, err := ef.Build(1 << 20)
	if err != nil {
		fmt.Fprintln(os.Stderr, "engine:", err)
		os.Exit(1)
	}
	return eng
}
