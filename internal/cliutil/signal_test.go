package cliutil

import (
	"context"
	"syscall"
	"testing"
	"time"
)

// TestSignalContextFirstSignalCancels: one SIGINT cancels the context.
// (The second-signal force-kill path necessarily terminates the
// process and cannot run in-process; what this pins is that the first
// stage still works after the registration-release change.)
func TestSignalContextFirstSignalCancels(t *testing.T) {
	ctx, stop := SignalContext(context.Background())
	defer stop()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGINT did not cancel the context")
	}
	// Releasing twice must be harmless.
	stop()
	stop()
}

// TestSignalContextParentCancel: parent cancellation propagates and
// releases the registration without a signal ever arriving.
func TestSignalContextParentCancel(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	ctx, stop := SignalContext(parent)
	defer stop()
	cancel()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("parent cancellation did not propagate")
	}
}
