package cliutil

import (
	"flag"
	"fmt"

	"mpq"
)

// NoiseFlags collects the shared estimation-noise flags after parsing.
// Every tool that optimizes a query offers the same -noise/-noise-seed
// pair with the same semantics: multiplicative q-error-style noise on
// predicate selectivities, applied before optimization.
type NoiseFlags struct {
	// Magnitude is the -noise value ε ≥ 0: each selectivity is
	// multiplied by (1+ε)^u with u uniform on [-1, 1]. Zero disables
	// noise entirely (no random draws, bit-identical plans).
	Magnitude float64
	// Seed is the -noise-seed value; same (query, ε, seed) — same
	// perturbed query.
	Seed int64
}

// RegisterNoise installs the shared noise flags on fs and returns the
// destination struct; call Apply after parsing.
func RegisterNoise(fs *flag.FlagSet) *NoiseFlags {
	nf := &NoiseFlags{}
	fs.Float64Var(&nf.Magnitude, "noise", 0,
		"q-error-style estimation noise ε: multiply each predicate selectivity by (1+ε)^u, u uniform on [-1,1] (0 = off)")
	fs.Int64Var(&nf.Seed, "noise-seed", 1,
		"seed of the -noise perturbation (same query, noise, and seed give the same noisy estimates)")
	return nf
}

// Apply perturbs q under the parsed flags. With -noise 0 it returns q
// itself, so unconditional use preserves bit-identical plans.
func (nf *NoiseFlags) Apply(q *mpq.Query) (*mpq.Query, error) {
	out, err := mpq.PerturbQuery(q, nf.Magnitude, nf.Seed)
	if err != nil {
		return nil, fmt.Errorf("-noise: %w", err)
	}
	return out, nil
}
