package cliutil

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context canceled by the first SIGINT or
// SIGTERM — and, crucially, releases the signal registration the
// moment the context ends, restoring the OS default disposition. The
// result is two-stage shutdown: the first Ctrl-C cancels the context
// so the program can drain cleanly; a second Ctrl-C, instead of being
// swallowed by a still-installed handler guarding an already-canceled
// context, kills the process outright.
//
// signal.NotifyContext alone does not do this: its registration stays
// installed until the returned stop function runs, which in the usual
// `defer stop()` pattern is only after the cleanup the user is trying
// to skip. Every mpq command uses SignalContext instead.
//
// The returned stop releases the registration early (idempotent, safe
// to defer); after the context ends it is a no-op.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	// The moment ctx ends — first signal, parent cancellation, or an
	// explicit stop — unregister, so the next signal gets the default
	// treatment (terminate).
	context.AfterFunc(ctx, stop)
	return ctx, stop
}
