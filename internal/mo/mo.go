// Package mo implements multi-objective query optimization: cost vectors,
// Pareto frontiers, and the α-approximate pruning function of Trummer &
// Koch [22, 23] that the paper plugs into the shared dynamic-programming
// scheme for its second experiment series (§6).
//
// The two metrics are the paper's: execution time (plan.Node.Cost) and
// buffer space (plan.Node.Buffer). A plan p α-dominates q iff
// p.time ≤ α·q.time and p.buffer ≤ α·q.buffer (and p's output order can
// substitute for q's). With α = 1 the pruner retains the exact Pareto
// frontier; α > 1 coarsens the frontier, trading precision for speed with
// the formal guarantee that every discarded vector has an α-dominating
// witness among the retained plans.
package mo

import (
	"fmt"
	"sort"

	"mpq/internal/dp"
	"mpq/internal/plan"
	"mpq/internal/query"
)

// Vector is a plan's cost in the two objectives.
type Vector struct {
	Time   float64
	Buffer float64
}

// VecOf extracts the cost vector of a plan.
func VecOf(p *plan.Node) Vector { return Vector{Time: p.Cost, Buffer: p.Buffer} }

// Dominates reports whether v is at least as good as w in every metric
// (weak Pareto dominance).
func (v Vector) Dominates(w Vector) bool {
	return v.Time <= w.Time && v.Buffer <= w.Buffer
}

// AlphaDominates reports whether v is within factor alpha of beating w in
// every metric: v ≤ α·w component-wise.
func (v Vector) AlphaDominates(w Vector, alpha float64) bool {
	return v.Time <= alpha*w.Time && v.Buffer <= alpha*w.Buffer
}

// String renders the vector for logs.
func (v Vector) String() string { return fmt.Sprintf("(time=%.4g, buffer=%.4g)", v.Time, v.Buffer) }

// orderDominates mirrors dp's order-compatibility rule: a plan with order
// qo can substitute for one with order po iff the orders match or po is
// "no order".
func orderDominates(qo, po int) bool {
	return qo == po || po == query.NoOrder
}

// ParetoPruner retains an α-approximate Pareto frontier per table set and
// implements dp.Pruner, turning the shared DP engine into the
// multi-objective optimizer of [22].
type ParetoPruner struct {
	// Alpha ≥ 1 is the approximation factor; 1 keeps the exact frontier.
	Alpha float64
}

var _ dp.Pruner = ParetoPruner{}

// Admits implements dp.Pruner's cost-first admission check: the
// candidate is discarded iff an incumbent α-dominates its scalars (and
// the incumbent's order can substitute for the candidate's). It performs
// no allocations — the DP calls it once per generated candidate.
func (pp ParetoPruner) Admits(f *dp.Frontier, cand dp.Candidate) bool {
	alpha := pp.Alpha
	if alpha < 1 {
		alpha = 1
	}
	cv := Vector{Time: cand.Cost, Buffer: cand.Buffer}
	for i, n := 0, f.Len(); i < n; i++ {
		q := f.At(i)
		if VecOf(q).AlphaDominates(cv, alpha) && orderDominates(q.Order, cand.Order) {
			return false
		}
	}
	return true
}

// Insert implements dp.Pruner: p was admitted, so it joins the frontier
// and evicts incumbents it exactly dominates. Most table sets keep 1–2
// plans, which the frontier stores inline; only wider Pareto frontiers
// spill to a slice.
func (pp ParetoPruner) Insert(f *dp.Frontier, p *plan.Node) {
	pv := VecOf(p)
	f.Filter(func(q *plan.Node) bool {
		return !(pv.Dominates(VecOf(q)) && orderDominates(p.Order, q.Order))
	})
	f.Append(p)
}

// Merge combines per-partition frontiers into one (the master's
// FinalPrune for multi-objective optimization): every plan is offered to
// a fresh pruner with the same α. Orders are ignored at the root — a
// completed plan's tuple order no longer matters (§4.2).
func Merge(frontiers [][]*plan.Node, alpha float64) []*plan.Node {
	if alpha < 1 {
		alpha = 1
	}
	var out []*plan.Node
	for _, f := range frontiers {
		for _, p := range f {
			out = insertRootPlan(out, p, alpha)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cost < out[j].Cost })
	return out
}

// insertRootPlan is ParetoPruner.Insert without order compatibility.
func insertRootPlan(plans []*plan.Node, p *plan.Node, alpha float64) []*plan.Node {
	pv := VecOf(p)
	for _, q := range plans {
		if VecOf(q).AlphaDominates(pv, alpha) {
			return plans
		}
	}
	out := plans[:0]
	for _, q := range plans {
		if !pv.Dominates(VecOf(q)) {
			out = append(out, q)
		}
	}
	return append(out, p)
}

// MinWorstCase selects the robust winner from a merged frontier: the
// plan with the smallest Buffer annotation — under a RobustCost model
// that slot holds the plan's worst-case cost over the selectivity
// band — breaking ties toward the lower nominal Cost, then toward the
// earlier frontier position. The tie-breaks keep the choice
// deterministic across engines, which aggregate partition frontiers in
// partition-ID order. Returns nil for an empty frontier.
func MinWorstCase(plans []*plan.Node) *plan.Node {
	var best *plan.Node
	for _, p := range plans {
		if best == nil || p.Buffer < best.Buffer ||
			(p.Buffer == best.Buffer && p.Cost < best.Cost) {
			best = p
		}
	}
	return best
}

// ExactFrontier filters an arbitrary plan list down to its exact Pareto
// frontier (no α coarsening, orders ignored). Used by tests and by the
// precision measurement of Table 1.
func ExactFrontier(plans []*plan.Node) []*plan.Node {
	var out []*plan.Node
	for _, p := range plans {
		out = insertRootPlan(out, p, 1)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cost < out[j].Cost })
	return out
}

// IsFrontier reports whether no plan in the list dominates another —
// the structural invariant of a Pareto set. Plans with equal vectors
// count as mutual domination.
func IsFrontier(plans []*plan.Node) bool {
	for i, p := range plans {
		for j, q := range plans {
			if i != j && VecOf(p).Dominates(VecOf(q)) {
				return false
			}
		}
	}
	return true
}

// CoverageError returns the worst-case factor by which frontier "approx"
// fails to α-cover the reference frontier "exact": for every exact plan,
// the smallest factor f such that some approximate plan f-dominates it;
// the maximum of those over the exact frontier. 1 means perfect coverage.
func CoverageError(approx, exact []*plan.Node) float64 {
	worst := 1.0
	for _, e := range exact {
		ev := VecOf(e)
		best := -1.0
		for _, a := range approx {
			av := VecOf(a)
			f := 1.0
			if ev.Time > 0 && av.Time/ev.Time > f {
				f = av.Time / ev.Time
			}
			if ev.Buffer > 0 && av.Buffer/ev.Buffer > f {
				f = av.Buffer / ev.Buffer
			}
			if best < 0 || f < best {
				best = f
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst
}
