package mo

import (
	"math/rand"
	"sort"
	"testing"

	"mpq/internal/cost"
	"mpq/internal/dp"
	"mpq/internal/plan"
	"mpq/internal/query"
)

// offerTo drives the two-phase dp.Pruner protocol the way the DP engine
// does: admission on the scalars first, insert only for survivors.
func offerTo(pp ParetoPruner, f *dp.Frontier, p *plan.Node) bool {
	if !pp.Admits(f, dp.Candidate{Cost: p.Cost, Buffer: p.Buffer, Order: p.Order}) {
		return false
	}
	pp.Insert(f, p)
	return true
}

func vecPlan(time, buffer float64, order int) *plan.Node {
	return &plan.Node{Cost: time, Buffer: buffer, Order: order}
}

func TestVectorDominance(t *testing.T) {
	a := Vector{Time: 1, Buffer: 1}
	b := Vector{Time: 2, Buffer: 2}
	c := Vector{Time: 1, Buffer: 3}
	if !a.Dominates(b) || b.Dominates(a) {
		t.Fatal("basic dominance")
	}
	if !a.Dominates(a) {
		t.Fatal("weak dominance must be reflexive")
	}
	if a.Dominates(c) && c.Dominates(a) {
		t.Fatal("incomparable vectors both dominate")
	}
	if c.Dominates(b) || b.Dominates(c) {
		t.Fatal("incomparable vectors should not dominate")
	}
}

func TestAlphaDominance(t *testing.T) {
	a := Vector{Time: 10, Buffer: 10}
	b := Vector{Time: 6, Buffer: 6}
	if a.AlphaDominates(b, 1) {
		t.Fatal("worse vector cannot 1-dominate")
	}
	if !a.AlphaDominates(b, 2) {
		t.Fatal("10 <= 2*6 should alpha-dominate")
	}
	if !b.AlphaDominates(a, 1) {
		t.Fatal("better vector dominates at alpha=1")
	}
}

func TestVectorString(t *testing.T) {
	if got := (Vector{Time: 1, Buffer: 2}).String(); got != "(time=1, buffer=2)" {
		t.Fatalf("String = %q", got)
	}
}

func TestParetoPrunerKeepsIncomparable(t *testing.T) {
	pp := ParetoPruner{Alpha: 1}
	var f dp.Frontier
	if kept := offerTo(pp, &f, vecPlan(10, 1, query.NoOrder)); !kept {
		t.Fatal("first plan dropped")
	}
	if kept := offerTo(pp, &f, vecPlan(1, 10, query.NoOrder)); !kept || f.Len() != 2 {
		t.Fatal("incomparable plan dropped")
	}
	// Dominated candidate dropped.
	if kept := offerTo(pp, &f, vecPlan(11, 2, query.NoOrder)); kept || f.Len() != 2 {
		t.Fatal("dominated plan kept")
	}
	// Dominating candidate evicts.
	if kept := offerTo(pp, &f, vecPlan(0.5, 0.5, query.NoOrder)); !kept || f.Len() != 1 {
		t.Fatalf("dominating plan should evict all: %d plans", f.Len())
	}
}

func TestParetoPrunerAlphaCoarsens(t *testing.T) {
	exactP := ParetoPruner{Alpha: 1}
	coarseP := ParetoPruner{Alpha: 10}
	var exact, coarse dp.Frontier
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		p := vecPlan(rng.Float64()*1000+1, rng.Float64()*1000+1, query.NoOrder)
		offerTo(exactP, &exact, p)
		offerTo(coarseP, &coarse, p)
	}
	if coarse.Len() > exact.Len() {
		t.Fatalf("alpha=10 retained %d > exact %d", coarse.Len(), exact.Len())
	}
	// Every exact-frontier plan must be alpha-covered by the coarse set.
	for _, e := range exact.Slice() {
		covered := false
		for _, c := range coarse.Slice() {
			if VecOf(c).AlphaDominates(VecOf(e), 10) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("plan %v not 10-covered", VecOf(e))
		}
	}
}

func TestParetoPrunerOrderCompatibility(t *testing.T) {
	pp := ParetoPruner{Alpha: 1}
	var f dp.Frontier
	offerTo(pp, &f, vecPlan(5, 5, query.NoOrder))
	// Same vector but with an order: not dominated (order may help later).
	kept := offerTo(pp, &f, vecPlan(5, 5, 42))
	if !kept || f.Len() != 1 {
		// The ordered plan dominates the unordered one with equal cost:
		// it evicts it and takes its place.
		t.Fatalf("ordered plan insert: kept=%v len=%d", kept, f.Len())
	}
	if f.At(0).Order != 42 {
		t.Fatal("ordered plan should have replaced unordered equal-cost plan")
	}
	// Unordered plan with equal cost is dominated by the ordered one.
	if kept := offerTo(pp, &f, vecPlan(5, 5, query.NoOrder)); kept || f.Len() != 1 {
		t.Fatal("unordered equal-cost plan should be pruned")
	}
	// A different order with equal cost is incomparable.
	if kept := offerTo(pp, &f, vecPlan(5, 5, 43)); !kept || f.Len() != 2 {
		t.Fatal("differently-ordered plan should be retained")
	}
}

func TestMergeProducesSortedFrontier(t *testing.T) {
	f1 := []*plan.Node{vecPlan(10, 1, query.NoOrder), vecPlan(1, 10, query.NoOrder)}
	f2 := []*plan.Node{vecPlan(5, 5, query.NoOrder), vecPlan(20, 20, query.NoOrder)}
	merged := Merge([][]*plan.Node{f1, f2}, 1)
	if len(merged) != 3 {
		t.Fatalf("merged size = %d want 3 (20,20 dominated)", len(merged))
	}
	if !sort.SliceIsSorted(merged, func(i, j int) bool { return merged[i].Cost < merged[j].Cost }) {
		t.Fatal("merged frontier not sorted by time")
	}
	if !IsFrontier(merged) {
		t.Fatal("merged result is not a frontier")
	}
}

func TestMergeAlphaBelowOneClamped(t *testing.T) {
	f := []*plan.Node{vecPlan(1, 1, query.NoOrder)}
	if got := Merge([][]*plan.Node{f}, 0); len(got) != 1 {
		t.Fatal("alpha=0 should clamp to 1")
	}
}

func TestExactFrontier(t *testing.T) {
	plans := []*plan.Node{
		vecPlan(1, 10, query.NoOrder),
		vecPlan(10, 1, query.NoOrder),
		vecPlan(5, 5, query.NoOrder),
		vecPlan(6, 6, query.NoOrder), // dominated by (5,5)
		vecPlan(1, 10, 3),            // duplicate vector, order ignored at root
	}
	f := ExactFrontier(plans)
	if len(f) != 3 {
		t.Fatalf("frontier size = %d want 3: %v", len(f), f)
	}
	if !IsFrontier(f) {
		t.Fatal("not a frontier")
	}
}

func TestIsFrontier(t *testing.T) {
	if !IsFrontier(nil) {
		t.Fatal("empty set is a frontier")
	}
	if !IsFrontier([]*plan.Node{vecPlan(1, 2, 0), vecPlan(2, 1, 0)}) {
		t.Fatal("incomparable pair rejected")
	}
	if IsFrontier([]*plan.Node{vecPlan(1, 1, 0), vecPlan(2, 2, 0)}) {
		t.Fatal("dominated pair accepted")
	}
	if IsFrontier([]*plan.Node{vecPlan(1, 1, 0), vecPlan(1, 1, 0)}) {
		t.Fatal("duplicate vectors accepted")
	}
}

func TestCoverageError(t *testing.T) {
	exact := []*plan.Node{vecPlan(10, 10, 0)}
	if got := CoverageError(exact, exact); got != 1 {
		t.Fatalf("self coverage = %g", got)
	}
	approx := []*plan.Node{vecPlan(20, 10, 0)}
	if got := CoverageError(approx, exact); got != 2 {
		t.Fatalf("coverage error = %g want 2", got)
	}
	// Best cover among several approximations is used.
	approx2 := []*plan.Node{vecPlan(20, 10, 0), vecPlan(11, 10, 0)}
	if got := CoverageError(approx2, exact); got != 1.1 {
		t.Fatalf("coverage error = %g want 1.1", got)
	}
}

// Property: after any insertion sequence the retained set is always a
// frontier (no mutual dominance, up to order compatibility).
func TestQuickPrunerFrontierInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		alpha := 1 + rng.Float64()*4
		pp := ParetoPruner{Alpha: alpha}
		var f dp.Frontier
		var inserted []*plan.Node
		for i := 0; i < 200; i++ {
			p := vecPlan(rng.Float64()*100+1, rng.Float64()*100+1, query.NoOrder)
			inserted = append(inserted, p)
			offerTo(pp, &f, p)
		}
		plans := f.Slice()
		if !IsFrontier(plans) {
			t.Fatalf("alpha=%g: retained set is not a frontier", alpha)
		}
		// Alpha-coverage of every inserted plan.
		for _, p := range inserted {
			covered := false
			for _, q := range plans {
				if VecOf(q).AlphaDominates(VecOf(p), alpha) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("alpha=%g: inserted plan %v not covered", alpha, VecOf(p))
			}
		}
	}
}

func TestVecOf(t *testing.T) {
	q := query.MustNew([]query.Table{{Cardinality: 10}})
	p := plan.Scan(cost.Default(), q, 0)
	v := VecOf(p)
	if v.Time != p.Cost || v.Buffer != p.Buffer {
		t.Fatal("VecOf mismatch")
	}
}

// Admission must be allocation-free: the DP calls it once per generated
// candidate, and the multi-objective frontier makes that loop cubic in
// the plans per table set (§5.4).
func TestParetoAdmitsAllocFree(t *testing.T) {
	pp := ParetoPruner{Alpha: 2}
	f := dp.FrontierOf(vecPlan(10, 1, query.NoOrder), vecPlan(1, 10, query.NoOrder))
	cand := dp.Candidate{Cost: 50, Buffer: 50, Order: query.NoOrder}
	var sink bool
	if allocs := testing.AllocsPerRun(1000, func() { sink = pp.Admits(&f, cand) }); allocs != 0 {
		t.Errorf("ParetoPruner.Admits allocates %.1f times per call", allocs)
	}
	_ = sink
}

// Insert through a frontier that stays within its two inline slots must
// not allocate either — the per-table-set slice header the pre-frontier
// code paid for every set is gone.
func TestParetoInsertInlineAllocFree(t *testing.T) {
	pp := ParetoPruner{Alpha: 1}
	a := vecPlan(10, 1, query.NoOrder)
	b := vecPlan(1, 10, query.NoOrder)
	var f dp.Frontier
	allocs := testing.AllocsPerRun(1000, func() {
		f = dp.Frontier{}
		pp.Insert(&f, a)
		pp.Insert(&f, b)
	})
	if allocs != 0 {
		t.Errorf("inline ParetoPruner.Insert allocates %.1f times per run", allocs)
	}
	_ = f
}
