package sma

import (
	"math"
	"testing"

	"mpq/internal/cluster"
	"mpq/internal/core"
	"mpq/internal/dp"
	"mpq/internal/mo"
	"mpq/internal/partition"
	"mpq/internal/query"
	"mpq/internal/workload"
)

func gen(t testing.TB, n int, seed int64) *query.Query {
	t.Helper()
	return workload.MustGenerate(workload.NewParams(n, workload.Star), seed)
}

func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// SMA and the serial DP must agree on the optimum: the schedulers differ,
// the algebra does not.
func TestSMAMatchesSerialDP(t *testing.T) {
	for _, space := range []partition.Space{partition.Linear, partition.Bushy} {
		n := 8
		if space == partition.Bushy {
			n = 7
		}
		for seed := int64(0); seed < 3; seed++ {
			q := gen(t, n, seed)
			serial, err := dp.Serial(q, space, dp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range []int{1, 3, 8} {
				res, err := Run(cluster.Default(), q, core.JobSpec{Space: space, Workers: m})
				if err != nil {
					t.Fatal(err)
				}
				if !approx(res.Best.Cost, serial.Best().Cost) {
					t.Fatalf("%v n=%d m=%d: SMA %g != serial %g", space, n, m, res.Best.Cost, serial.Best().Cost)
				}
			}
		}
	}
}

func TestSMAMatchesMPQ(t *testing.T) {
	q := gen(t, 9, 5)
	spec := core.JobSpec{Space: partition.Linear, Workers: 8}
	smaRes, err := Run(cluster.Default(), q, spec)
	if err != nil {
		t.Fatal(err)
	}
	mpqRes, err := cluster.RunMPQ(cluster.Default(), q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(smaRes.Best.Cost, mpqRes.Best.Cost) {
		t.Fatalf("SMA %g != MPQ %g", smaRes.Best.Cost, mpqRes.Best.Cost)
	}
}

// The structural claim of Figure 1: SMA moves orders of magnitude more
// bytes than MPQ, and its traffic grows with the worker count.
func TestSMATrafficDwarfsMPQ(t *testing.T) {
	q := gen(t, 10, 1)
	for _, m := range []int{4, 16} {
		spec := core.JobSpec{Space: partition.Linear, Workers: m}
		smaRes, err := Run(cluster.Default(), q, spec)
		if err != nil {
			t.Fatal(err)
		}
		mpqRes, err := cluster.RunMPQ(cluster.Default(), q, spec)
		if err != nil {
			t.Fatal(err)
		}
		if smaRes.Metrics.Bytes < 10*mpqRes.Metrics.Bytes {
			t.Fatalf("m=%d: SMA bytes %d not >> MPQ bytes %d", m, smaRes.Metrics.Bytes, mpqRes.Metrics.Bytes)
		}
	}
}

func TestSMATrafficGrowsWithWorkers(t *testing.T) {
	q := gen(t, 10, 2)
	var prev uint64
	for i, m := range []int{1, 2, 4, 8, 16} {
		res, err := Run(cluster.Default(), q, core.JobSpec{Space: partition.Linear, Workers: m})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.Metrics.Bytes <= prev {
			t.Fatalf("m=%d: bytes %d did not grow from %d", m, res.Metrics.Bytes, prev)
		}
		prev = res.Metrics.Bytes
	}
}

func TestSMARoundsAndMessages(t *testing.T) {
	q := gen(t, 8, 0)
	m := 4
	res, err := Run(cluster.Default(), q, core.JobSpec{Space: partition.Linear, Workers: m})
	if err != nil {
		t.Fatal(err)
	}
	// One round per join-result cardinality: 2..n.
	if res.Metrics.Rounds != 7 {
		t.Fatalf("rounds = %d want 7", res.Metrics.Rounds)
	}
	// Per round: m task/delta messages down + m responses up.
	if res.Metrics.Messages != res.Metrics.Rounds*2*m {
		t.Fatalf("messages = %d want %d", res.Metrics.Messages, res.Metrics.Rounds*2*m)
	}
}

// SMA's memory metric does not shrink with parallelism (full replicas),
// in contrast to MPQ.
func TestSMAMemoryConstantInWorkers(t *testing.T) {
	q := gen(t, 9, 3)
	var first uint64
	for i, m := range []int{1, 4, 16} {
		res, err := Run(cluster.Default(), q, core.JobSpec{Space: partition.Linear, Workers: m})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res.Metrics.MaxMemoEntries
		} else if res.Metrics.MaxMemoEntries != first {
			t.Fatalf("m=%d: memo %d != %d", m, res.Metrics.MaxMemoEntries, first)
		}
	}
	if first != uint64(1<<9-1) {
		t.Fatalf("full memo = %d want %d", first, 1<<9-1)
	}
}

func TestSMAMultiObjective(t *testing.T) {
	q := gen(t, 7, 4)
	spec := core.JobSpec{
		Space: partition.Linear, Workers: 4,
		Objective: core.MultiObjective, Alpha: 1,
	}
	res, err := Run(cluster.Default(), q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !mo.IsFrontier(res.Frontier) {
		t.Fatal("SMA frontier contains dominated plans")
	}
	mpqRes, err := core.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) != len(mpqRes.Frontier) {
		t.Fatalf("SMA frontier %d != MPQ frontier %d", len(res.Frontier), len(mpqRes.Frontier))
	}
}

func TestSMAValidation(t *testing.T) {
	q := gen(t, 6, 0)
	if _, err := Run(cluster.Default(), q, core.JobSpec{Space: partition.Linear, Workers: 0}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := Run(cluster.Default(), q, core.JobSpec{Space: partition.Space(9), Workers: 2}); err == nil {
		t.Fatal("invalid space accepted")
	}
	if _, err := Run(cluster.Model{}, q, core.JobSpec{Space: partition.Linear, Workers: 2}); err == nil {
		t.Fatal("invalid model accepted")
	}
	if _, err := Run(cluster.Default(), q, core.JobSpec{
		Space: partition.Linear, Workers: 2, Objective: core.MultiObjective, Alpha: 0.2,
	}); err == nil {
		t.Fatal("alpha < 1 accepted")
	}
	// Non-power-of-two worker counts are fine for SMA.
	if _, err := Run(cluster.Default(), q, core.JobSpec{Space: partition.Linear, Workers: 5}); err != nil {
		t.Fatalf("m=5 rejected: %v", err)
	}
}

func TestEncodeDeltaSize(t *testing.T) {
	q := gen(t, 4, 0)
	res, err := dp.Serial(q, partition.Linear, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	entries := []deltaEntry{{set: q.All(), plan: res.Best()}}
	b := encodeDelta(entries)
	if len(b) != 57 {
		t.Fatalf("delta entry size = %d want 57", len(b))
	}
	if len(encodeDelta(nil)) != 0 {
		t.Fatal("empty delta should be empty")
	}
}
