// Package sma implements the paper's competitor: the fine-grained
// approach to parallelizing dynamic-programming query optimization in
// the style of Han et al. [9, 10], adapted — as the paper's §6.1 does —
// to a shared-nothing cluster.
//
// SMA enumerates table sets in size order. In each round the master
// assigns the sets of the current cardinality to workers round-robin and
// must broadcast all memotable entries produced in the previous round to
// every worker, because workers share no memory and any worker may need
// any sub-plan. Workers compute optimal plans for their assigned sets and
// send the new entries back. This yields n-1 communication rounds,
// broadcast traffic that grows with both the query size (memo size is
// exponential in n) and the worker count, and per-round barriers — the
// structural reasons MPQ outperforms it by orders of magnitude in
// Figures 1 and 4.
//
// Plan generation and pruning reuse the exact DP engine of internal/dp,
// so SMA and MPQ always agree on the optimal plan; only the schedule and
// the communication pattern differ.
package sma

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"mpq/internal/bitset"
	"mpq/internal/cluster"
	"mpq/internal/core"
	"mpq/internal/dp"
	"mpq/internal/mo"
	"mpq/internal/partition"
	"mpq/internal/plan"
	"mpq/internal/query"
)

// deltaEntry is one new memotable record shipped between master and
// workers: the table set plus a compact fixed-size plan record (operand
// sets are referenced by key, as a real shared-memotable implementation
// would do, rather than shipping whole subtrees).
type deltaEntry struct {
	set  bitset.Set
	plan *plan.Node
}

// encodeDelta produces the real broadcast bytes for a batch of new
// memotable entries. Layout per plan: set key (8) + kind/alg (1) +
// pred (4) + order (4) + card/cost/buffer (24) + left key (8) +
// right key (8).
func encodeDelta(entries []deltaEntry) []byte {
	buf := make([]byte, 0, len(entries)*57)
	for _, e := range entries {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.set))
		p := e.plan
		kind := uint8(0)
		if !p.IsScan {
			kind = 1 + uint8(p.Alg)
		}
		buf = append(buf, kind)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(p.Pred)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(p.Order)))
		for _, f := range [3]float64{p.Card, p.Cost, p.Buffer} {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
		var lk, rk uint64
		if !p.IsScan {
			lk, rk = uint64(p.Left.Tables), uint64(p.Right.Tables)
		}
		buf = binary.LittleEndian.AppendUint64(buf, lk)
		buf = binary.LittleEndian.AppendUint64(buf, rk)
	}
	return buf
}

// Run simulates SMA on the cluster described by model. spec.Workers may
// be any count ≥ 1 (SMA has no power-of-two restriction); spec.Space,
// Objective, Alpha and InterestingOrders mean the same as for MPQ.
func Run(model cluster.Model, q *query.Query, spec core.JobSpec) (*cluster.Result, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := validateSpec(q, spec); err != nil {
		return nil, err
	}
	q.Freeze()
	n := q.N()
	m := spec.Workers

	// The shared memotable lives on the master; the DP engine below is
	// the canonical copy every worker's local replica mirrors.
	cs := partition.Unconstrained(spec.Space, n)
	eng, err := dp.NewEngine(q, cs, spec.DPOptions())
	if err != nil {
		return nil, err
	}

	met := cluster.Metrics{}
	// Round 0 delta: the scan plans every worker needs.
	var delta []deltaEntry
	for t := 0; t < n; t++ {
		eng.ForEachPlan(bitset.Single(t), func(p *plan.Node) {
			delta = append(delta, deltaEntry{set: bitset.Single(t), plan: p})
		})
	}

	// Stream the admissible sets of each round's cardinality instead of
	// materializing all ~2^n of them up front: the master only ever holds
	// one round's task list in memory.
	enum := cs.NewEnumerator()
	var sets []bitset.Set
	var virtual time.Duration
	// Initial statistics distribution (query + selectivities), like MPQ.
	for k := 2; k <= n; k++ {
		sets = sets[:0]
		enum.ForEachAdmissible(k, func(u bitset.Set) bool {
			sets = append(sets, u)
			return true
		})
		if len(sets) == 0 {
			continue
		}
		met.Rounds++
		// Master -> workers: fine-grained per-set tasks (the master pays
		// dispatch for every task it creates — its §2 bottleneck) plus
		// the previous round's memotable delta broadcast to everyone.
		deltaBytes := len(encodeDelta(delta))
		taskHeader := 16
		var masterSendBusy time.Duration
		workerUnits := make([]uint64, m)
		for w := 0; w < m; w++ {
			tasks := 0
			for j := w; j < len(sets); j += m {
				tasks++
			}
			msg := taskHeader + 8*tasks + deltaBytes
			met.Bytes += uint64(msg)
			met.Messages++
			masterSendBusy += time.Duration(tasks)*model.DispatchPerTask + transfer(model, msg)
		}

		// Workers compute their assigned sets. Each set is processed once
		// (all replicas are identical); work is attributed to its worker.
		delta = delta[:0]
		for j, u := range sets {
			units := eng.ProcessSet(u)
			workerUnits[j%m] += units
			eng.ForEachPlan(u, func(p *plan.Node) {
				delta = append(delta, deltaEntry{set: u, plan: p})
			})
		}

		// Workers -> master: the new entries each worker produced.
		// Attribute response bytes by assigned sets (round-robin).
		respTotal := len(encodeDelta(delta))
		var maxCompute time.Duration
		for w := 0; w < m; w++ {
			if c := compute(model, workerUnits[w]); c > maxCompute {
				maxCompute = c
			}
			met.Messages++
		}
		met.Bytes += uint64(respTotal + m*taskHeader)
		// Workers launch their round tasks in parallel (one TaskSetup per
		// round), compute, and return; the round is a barrier.
		virtual += masterSendBusy + model.Latency + model.TaskSetup + maxCompute +
			model.Latency + transfer(model, respTotal+m*taskHeader)
	}

	res, err := eng.Finish()
	if err != nil {
		return nil, err
	}
	met.Work = res.Stats
	// Every worker holds a full replica of the memotable — the paper's
	// point about SMA's memory footprint not shrinking with parallelism.
	met.MaxMemoEntries = uint64(eng.MemoLen())
	met.VirtualTime = virtual + time.Duration(len(res.Plans))*model.FinalPrunePerPlan
	met.MaxWorkerTime = virtual // workers are barrier-synchronized every round

	out := &cluster.Result{Metrics: met}
	if spec.Objective == core.MultiObjective {
		alpha := spec.Alpha
		if alpha < 1 {
			alpha = 1
		}
		out.Frontier = mo.Merge([][]*plan.Node{res.Plans}, alpha)
		for _, p := range out.Frontier {
			if out.Best == nil || p.Cost < out.Best.Cost {
				out.Best = p
			}
		}
	} else {
		out.Best = res.Best()
	}
	if out.Best == nil {
		return nil, fmt.Errorf("sma: no plan found")
	}
	return out, nil
}

func validateSpec(q *query.Query, spec core.JobSpec) error {
	if !spec.Space.Valid() {
		return fmt.Errorf("sma: invalid plan space %d", int(spec.Space))
	}
	if spec.Workers < 1 {
		return fmt.Errorf("sma: worker count %d < 1", spec.Workers)
	}
	switch spec.Objective {
	case core.SingleObjective, core.MultiObjective:
	default:
		return fmt.Errorf("sma: invalid objective %d", int(spec.Objective))
	}
	if spec.Objective == core.MultiObjective && spec.Alpha != 0 && spec.Alpha < 1 {
		return fmt.Errorf("sma: approximation factor α=%g must be ≥ 1", spec.Alpha)
	}
	return nil
}

func transfer(m cluster.Model, bytes int) time.Duration {
	return time.Duration(float64(bytes) / m.Bandwidth * float64(time.Second))
}

func compute(m cluster.Model, units uint64) time.Duration {
	return time.Duration(float64(units) * m.NsPerWorkUnit)
}
