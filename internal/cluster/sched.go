package cluster

import (
	"fmt"
	"slices"
	"time"
)

// This file is the adaptive virtual-time scheduler: an event-driven
// mirror of the netrun master's straggler handling, driven entirely by
// the deterministic cluster model. It activates when the run needs more
// than the closed-form one-round schedule — a bounded node pool
// (Model.Nodes), per-node resource capacities (Model.Resources), a
// stall script (Faults.Stalled), or speculation (Faults.Speculate).
// Without any of those, RunMPQWithFaultsContext keeps using the legacy
// MPQTime/faultSchedule formulas bit for bit.

// NodeResources describes one simulated node's capacities for the
// multi-resource cluster model (after Garofalakis & Ioannidis: a
// schedule should respect CPU, memory and network dimensions, not a
// scalar speed).
type NodeResources struct {
	// CPU is the node's relative compute speed: compute time for a
	// partition is divided by it. Must be positive; 1 is the baseline
	// rate (Model.NsPerWorkUnit per work unit).
	CPU float64
	// MemoryBytes caps the memo a partition's DP can hold resident.
	// A partition whose memo footprint (MemoEntries × an assumed entry
	// size) exceeds it computes slower by footprint/capacity — a crude
	// spill model. Zero means unlimited.
	MemoryBytes uint64
	// Bandwidth is the node's NIC throughput in bytes/second; transfers
	// to and from the node run at min(link, node) speed. Zero means the
	// model's link bandwidth.
	Bandwidth float64
}

// memoEntryBytes is the assumed resident size of one memo entry when
// checking a partition's footprint against NodeResources.MemoryBytes.
const memoEntryBytes = 64

// Defaults for adaptive-scheduling fault fields left at zero.
const (
	// DefaultStallFactor is the compute slowdown of a node listed in
	// Faults.Stalled when StallFactor is zero.
	DefaultStallFactor = 100
	// DefaultSpeculationMultiplier mirrors the TCP master's straggler
	// threshold: speculate once a partition's master-observed elapsed
	// time exceeds this multiple of the median completed service time.
	DefaultSpeculationMultiplier = 2
	// DefaultSpeculationFloor bounds the virtual straggler threshold
	// from below, mirroring netrun.DefaultSpeculationFloor.
	DefaultSpeculationFloor = 250 * time.Millisecond
)

// simInput is the per-partition data the scheduler needs: exact message
// sizes, the DP's work meter, and its memo size (for the spill model).
type simInput struct {
	reqBytes  []int
	respBytes []int
	units     []uint64
	memo      []uint64
}

// simOutcome aggregates what the event simulation measured.
type simOutcome struct {
	total        time.Duration // master-observed completion of the last partition
	maxWorker    time.Duration // slowest node's busy compute time
	bytes        uint64
	messages     int
	speculations int
	wasted       uint64 // work units burned by race losers
	redispatches int
}

// simCopy is one dispatched instance of a partition: the original, a
// post-detection re-dispatch, or a speculative clone.
type simCopy struct {
	part     int
	node     int
	sendDone time.Duration // request fully serialized out of the master
	arrive   time.Duration // request arrival at the node
	start    time.Duration // compute start (post task setup)
	finish   time.Duration // compute completion at the node
	computeT time.Duration
	gen      int  // invalidates stale scheduled events
	canceled bool // master canceled it (speculative race loser)
	truncAt  time.Duration
	occupies bool // the cancel landed mid-compute, not pre-start
	done     bool // its response was processed by the master
}

// effFinish is when the copy stops occupying its node.
func (c *simCopy) effFinish() time.Duration {
	if c.canceled {
		return c.truncAt
	}
	return c.finish
}

const (
	evArrive = iota // a response reached the master NIC
	evDetect        // a dead node's silence crossed the detection timeout
	evSpec          // a straggler threshold may have been crossed
)

type simEvent struct {
	t    time.Duration
	kind int
	copy int
	gen  int
}

// adaptiveSchedule runs the event-driven simulation. Everything is
// deterministic: ties break on (time, kind, copy index), node choices
// break on the lowest index.
func (m Model) adaptiveSchedule(in simInput, f Faults) (simOutcome, error) {
	nParts := len(in.units)
	n := m.Nodes
	if n <= 0 {
		n = nParts
	}
	if len(m.Resources) > 0 && len(m.Resources) != n {
		return simOutcome{}, fmt.Errorf("cluster: %d resource entries for %d nodes", len(m.Resources), n)
	}
	res := func(ni int) NodeResources {
		if len(m.Resources) > 0 {
			return m.Resources[ni]
		}
		return NodeResources{CPU: 1}
	}
	detect := f.DetectTimeout
	if detect == 0 {
		detect = DefaultDetectTimeout
	}
	stallFactor := f.StallFactor
	if stallFactor == 0 {
		stallFactor = DefaultStallFactor
	}
	specMult := f.SpecMultiplier
	if specMult == 0 {
		specMult = DefaultSpeculationMultiplier
	}
	specFloor := f.SpecFloor
	if specFloor == 0 {
		specFloor = DefaultSpeculationFloor
	}
	dead := make([]bool, n)
	for _, d := range f.Dead {
		dead[d] = true
	}
	stalled := make([]bool, n)
	for _, s := range f.Stalled {
		stalled[s] = true
	}

	// estPerUnit is the master's cost estimate for one work unit of a
	// partition on a node: baseline rate over CPU speed, inflated by the
	// memory spill multiplier. Declared resources are knowable; faults
	// are not — the estimate deliberately ignores stalls and deaths.
	estPerUnit := func(part, ni int) float64 {
		r := res(ni)
		pu := m.NsPerWorkUnit / r.CPU
		if r.MemoryBytes > 0 {
			if fp := float64(in.memo[part]) * memoEntryBytes; fp > float64(r.MemoryBytes) {
				pu *= fp / float64(r.MemoryBytes)
			}
		}
		return pu
	}
	// perUnit is the node's actual effective rate, stall included.
	perUnit := func(part, ni int) float64 {
		pu := estPerUnit(part, ni)
		if stalled[ni] {
			pu *= stallFactor
		}
		return pu
	}
	computeT := func(part, ni int) time.Duration {
		return time.Duration(float64(in.units[part]) * perUnit(part, ni))
	}
	estimateT := func(part, ni int) time.Duration {
		return time.Duration(float64(in.units[part]) * estPerUnit(part, ni))
	}
	// nodeTransfer is a transfer capped by the node's NIC.
	nodeTransfer := func(bytes, ni int) time.Duration {
		bw := m.Bandwidth
		if r := res(ni); r.Bandwidth > 0 && r.Bandwidth < bw {
			bw = r.Bandwidth
		}
		return time.Duration(float64(bytes) / bw * float64(time.Second))
	}

	// Assignment: largest partition first (by the master's cost
	// estimate — the work meter), each to the node with the earliest
	// projected finish given what it already holds. The master does not
	// know which nodes are dead or stalled, so they participate.
	order := make([]int, nParts)
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		if in.units[a] != in.units[b] {
			if in.units[a] > in.units[b] {
				return -1
			}
			return 1
		}
		return a - b
	})
	avail := make([]time.Duration, n)
	var copies []*simCopy
	queues := make([][]int, n) // copy indices per node, dispatch order
	var sendFree time.Duration
	dispatchTo := func(part, ni int, at time.Duration) *simCopy {
		if at > sendFree {
			sendFree = at
		}
		sendFree += m.DispatchPerTask + nodeTransfer(in.reqBytes[part], ni)
		c := &simCopy{part: part, node: ni, sendDone: sendFree, computeT: computeT(part, ni)}
		c.arrive = c.sendDone + m.Latency
		prevFree := time.Duration(0)
		if q := queues[ni]; len(q) > 0 {
			prevFree = copies[q[len(q)-1]].effFinish()
		}
		c.start = max(c.arrive, prevFree) + m.TaskSetup
		c.finish = c.start + c.computeT
		copies = append(copies, c)
		queues[ni] = append(queues[ni], len(copies)-1)
		return c
	}
	for _, part := range order {
		best, bestFin := -1, time.Duration(0)
		for ni := 0; ni < n; ni++ {
			fin := avail[ni] + estimateT(part, ni)
			if best < 0 || fin < bestFin {
				best, bestFin = ni, fin
			}
		}
		avail[best] += m.TaskSetup + estimateT(part, best)
		dispatchTo(part, best, 0)
	}

	out := simOutcome{}
	var events []simEvent
	push := func(e simEvent) { events = append(events, e) }
	pop := func() (simEvent, bool) {
		if len(events) == 0 {
			return simEvent{}, false
		}
		bi := 0
		for i := 1; i < len(events); i++ {
			e, b := events[i], events[bi]
			if e.t < b.t || (e.t == b.t && (e.kind < b.kind || (e.kind == b.kind && e.copy < b.copy))) {
				bi = i
			}
		}
		e := events[bi]
		events = append(events[:bi], events[bi+1:]...)
		return e, true
	}
	scheduleCopy := func(ci int) {
		c := copies[ci]
		out.bytes += uint64(in.reqBytes[c.part])
		out.messages++
		if dead[c.node] {
			push(simEvent{t: c.arrive + detect, kind: evDetect, copy: ci, gen: c.gen})
		} else {
			push(simEvent{t: c.finish + m.Latency, kind: evArrive, copy: ci, gen: c.gen})
		}
	}
	for ci := range copies {
		scheduleCopy(ci)
	}

	firstDone := make([]time.Duration, nParts)
	for i := range firstDone {
		firstDone[i] = -1
	}
	nDone := 0
	var svcTimes []time.Duration
	threshold := func() (time.Duration, bool) {
		if len(svcTimes) == 0 {
			return 0, false
		}
		sorted := slices.Clone(svcTimes)
		slices.Sort(sorted)
		thr := time.Duration(float64(sorted[len(sorted)/2]) * specMult)
		return max(thr, specFloor), true
	}
	// liveCopies reports the in-flight (not done, not canceled) copies
	// of a partition.
	liveCopies := func(part int) []int {
		var out []int
		for ci, c := range copies {
			if c.part == part && !c.done && !c.canceled {
				out = append(out, ci)
			}
		}
		return out
	}
	nodeFree := func(ni int) time.Duration {
		var t time.Duration
		for _, ci := range queues[ni] {
			c := copies[ci]
			if c.canceled && !c.occupies {
				continue
			}
			if f := c.effFinish(); f > t {
				t = f
			}
		}
		return t
	}
	// recomputeNode replays a node's queue after a truncation shifted it.
	recomputeNode := func(ni int) {
		prevFree := time.Duration(0)
		for _, ci := range queues[ni] {
			c := copies[ci]
			if c.canceled {
				if c.occupies && c.truncAt > prevFree {
					prevFree = c.truncAt
				}
				continue
			}
			start := max(c.arrive, prevFree) + m.TaskSetup
			if start != c.start {
				c.start = start
				c.finish = start + c.computeT
				c.gen++
				if !c.done && !dead[ni] {
					push(simEvent{t: c.finish + m.Latency, kind: evArrive, copy: ci, gen: c.gen})
				}
			}
			prevFree = c.finish
		}
	}
	scheduleSpecChecks := func(now time.Duration) {
		if !f.Speculate {
			return
		}
		thr, ok := threshold()
		if !ok {
			return
		}
		for ci, c := range copies {
			if c.done || c.canceled || len(liveCopies(c.part)) > 1 || firstDone[c.part] >= 0 {
				continue
			}
			push(simEvent{t: max(now, c.sendDone+thr), kind: evSpec, copy: ci, gen: c.gen})
		}
	}
	cancelFrameBytes := 8 // header (4) + sequence number (4)

	var recvFree time.Duration
	for nDone < nParts {
		e, ok := pop()
		if !ok {
			return simOutcome{}, fmt.Errorf("cluster: adaptive schedule stalled with %d of %d partitions unanswered", nParts-nDone, nParts)
		}
		c := copies[e.copy]
		if e.gen != c.gen || c.canceled || c.done {
			continue
		}
		switch e.kind {
		case evArrive:
			c.done = true
			done := max(e.t, recvFree) + nodeTransfer(in.respBytes[c.part], c.node)
			recvFree = done
			out.bytes += uint64(in.respBytes[c.part])
			out.messages++
			if firstDone[c.part] >= 0 {
				// A race loser that outran its cancel: full compute burned.
				out.wasted += in.units[c.part]
				continue
			}
			firstDone[c.part] = done
			nDone++
			if done > out.total {
				out.total = done
			}
			svcTimes = append(svcTimes, done-c.sendDone)
			// Cancel any sibling still running the same partition.
			for _, li := range liveCopies(c.part) {
				l := copies[li]
				out.bytes += uint64(cancelFrameBytes)
				out.messages++
				cancelArrive := done + m.Latency
				if cancelArrive >= l.finish {
					continue // its response is already on the wire; it delivers and is counted wasted
				}
				l.canceled = true
				l.gen++
				l.truncAt = cancelArrive
				l.occupies = cancelArrive > l.start
				if l.occupies {
					burned := uint64(float64(cancelArrive-l.start) / perUnit(l.part, l.node))
					out.wasted += min(burned, in.units[l.part])
				}
				recomputeNode(l.node)
			}
			scheduleSpecChecks(done)
		case evDetect:
			if firstDone[c.part] >= 0 || len(liveCopies(c.part)) > 1 {
				continue // a clone beat the detector to it
			}
			c.canceled = true // the dead node burned nothing observable
			out.redispatches++
			// Re-dispatch to the live node with the earliest projected finish.
			best, bestFin := -1, time.Duration(0)
			for ni := 0; ni < n; ni++ {
				if dead[ni] {
					continue
				}
				fin := max(nodeFree(ni), e.t) + m.TaskSetup + estimateT(c.part, ni)
				if best < 0 || fin < bestFin {
					best, bestFin = ni, fin
				}
			}
			nc := dispatchTo(c.part, best, e.t)
			scheduleCopy(len(copies) - 1)
			if f.Speculate {
				if thr, ok := threshold(); ok {
					push(simEvent{t: nc.sendDone + thr, kind: evSpec, copy: len(copies) - 1, gen: nc.gen})
				}
			}
		case evSpec:
			if firstDone[c.part] >= 0 || len(liveCopies(c.part)) > 1 {
				continue
			}
			thr, ok := threshold()
			if !ok {
				continue
			}
			if e.t < c.sendDone+thr {
				push(simEvent{t: c.sendDone + thr, kind: evSpec, copy: e.copy, gen: c.gen})
				continue
			}
			// Clone to the idle live node with the best projected finish.
			best, bestFin := -1, time.Duration(0)
			for ni := 0; ni < n; ni++ {
				if ni == c.node || dead[ni] || nodeFree(ni) > e.t {
					continue
				}
				fin := e.t + m.TaskSetup + estimateT(c.part, ni)
				if best < 0 || fin < bestFin {
					best, bestFin = ni, fin
				}
			}
			if best < 0 {
				continue // no idle node; a completion will re-trigger the check
			}
			out.speculations++
			dispatchTo(c.part, best, e.t)
			scheduleCopy(len(copies) - 1)
		}
	}

	busy := make([]time.Duration, n)
	for _, c := range copies {
		switch {
		case c.canceled && c.occupies:
			busy[c.node] += c.truncAt - c.start
		case !c.canceled && !dead[c.node]:
			busy[c.node] += c.computeT
		}
	}
	for _, b := range busy {
		if b > out.maxWorker {
			out.maxWorker = b
		}
	}
	return out, nil
}
