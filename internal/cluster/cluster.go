// Package cluster simulates MPQ on a shared-nothing cluster.
//
// The paper evaluates on 100 nodes running Spark on Yarn (§6.1) — a
// testbed we substitute with a deterministic simulator that preserves the
// behaviours the evaluation measures:
//
//   - Network bytes are exact: every master↔worker message is serialized
//     by internal/wire and its real length is accounted.
//   - Virtual time follows the cluster cost structure the paper
//     describes: per-message latency, link bandwidth, per-task assignment
//     (executor setup) overhead, and per-worker compute derived from the
//     DP's deterministic work meter — which the paper shows is
//     proportional to running time and skew-free.
//
// The simulator runs the real optimizer (workers decode their request
// bytes and run the full constrained DP), so results are bit-identical
// to the in-process engine; only the clock is virtual.
package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mpq/internal/core"
	"mpq/internal/plan"
	"mpq/internal/query"
	"mpq/internal/wire"
)

// Model parameterizes the simulated cluster.
type Model struct {
	// Latency is the one-way delay of a message between two nodes.
	Latency time.Duration
	// Bandwidth is the link throughput in bytes per second.
	Bandwidth float64
	// TaskSetup is the per-task launch overhead paid on the executing
	// worker (Spark-style task scheduling and JVM dispatch); workers pay
	// it in parallel.
	TaskSetup time.Duration
	// DispatchPerTask is the master-side serial cost of creating and
	// enqueuing one task — the fine-grained-management overhead the
	// paper's §2 identifies as the master's bottleneck for SMA.
	DispatchPerTask time.Duration
	// NsPerWorkUnit converts one DP work unit (set processed, split
	// tried, or plan generated) into nanoseconds of worker compute.
	NsPerWorkUnit float64
	// FinalPrunePerPlan is the master-side cost of comparing one
	// returned plan during FinalPrune.
	FinalPrunePerPlan time.Duration
	// Nodes bounds the simulated node pool. Zero keeps the classic
	// one-node-per-partition layout; a positive value runs the adaptive
	// scheduler, which interleaves partitions over the pool largest-
	// estimated-cost first (each to the node with the earliest projected
	// finish).
	Nodes int
	// Resources gives per-node capacities for the multi-resource model;
	// non-empty Resources also selects the adaptive scheduler, and the
	// slice length must equal the node count (Nodes, or the partition
	// count when Nodes is zero). Empty means homogeneous unit-CPU nodes.
	Resources []NodeResources
}

// Default returns the model used by the experiment harness: 1 ms
// latency, 100 MB/s links, 100 ms task launch (Spark-like), 200 µs
// master-side dispatch per task, 2 µs per work unit. The compute rate is
// calibrated so the paper-scale queries (Linear-20/24) take on the order
// of a minute on one worker — the "optimization takes minutes on a
// single node" regime in which the paper reports its speedups.
func Default() Model {
	return Model{
		Latency:           time.Millisecond,
		Bandwidth:         100e6,
		TaskSetup:         100 * time.Millisecond,
		DispatchPerTask:   200 * time.Microsecond,
		NsPerWorkUnit:     2000,
		FinalPrunePerPlan: 200 * time.Nanosecond,
	}
}

// Validate reports whether the model is usable.
func (m Model) Validate() error {
	if m.Latency < 0 || m.Bandwidth <= 0 || m.TaskSetup < 0 || m.DispatchPerTask < 0 ||
		m.NsPerWorkUnit < 0 || m.FinalPrunePerPlan < 0 {
		return fmt.Errorf("cluster: invalid model %+v", m)
	}
	if m.Nodes < 0 {
		return fmt.Errorf("cluster: negative node count %d", m.Nodes)
	}
	for i, r := range m.Resources {
		if !(r.CPU > 0) {
			return fmt.Errorf("cluster: node %d CPU %g, must be positive", i, r.CPU)
		}
		if r.Bandwidth < 0 {
			return fmt.Errorf("cluster: node %d negative bandwidth %g", i, r.Bandwidth)
		}
	}
	return nil
}

// transfer returns the time to push n bytes through one link.
func (m Model) transfer(n int) time.Duration {
	return time.Duration(float64(n) / m.Bandwidth * float64(time.Second))
}

// compute converts work units into virtual compute time.
func (m Model) compute(units uint64) time.Duration {
	return time.Duration(float64(units) * m.NsPerWorkUnit)
}

// MPQTime evaluates the one-round MPQ schedule on this cluster model:
// reqBytes[i] and respBytes[i] are worker i's request and response sizes,
// units[i] its compute work. It returns the master-observed total time
// (excluding FinalPrune, which the caller adds per returned plan) and the
// slowest worker's compute time. The master NIC serializes sends and
// receives, making the master's share linear in the worker count
// (Theorem 5).
func (m Model) MPQTime(reqBytes, respBytes []int, units []uint64) (total, maxWorker time.Duration) {
	var masterSendBusy, masterRecvBusy time.Duration
	starts := make([]time.Duration, len(reqBytes))
	for i, rb := range reqBytes {
		masterSendBusy += m.DispatchPerTask + m.transfer(rb)
		// Task launch happens on the workers, concurrently.
		starts[i] = masterSendBusy + m.Latency + m.TaskSetup
	}
	for i := range reqBytes {
		computeT := m.compute(units[i])
		if computeT > maxWorker {
			maxWorker = computeT
		}
		arrival := starts[i] + computeT + m.Latency
		if arrival > masterRecvBusy {
			masterRecvBusy = arrival
		}
		masterRecvBusy += m.transfer(respBytes[i])
	}
	return masterRecvBusy, maxWorker
}

// Faults mirrors the failure model of the TCP runtime (internal/netrun)
// in virtual time: scripted worker deaths plus the master's detection
// timeout, so Fig-style experiments can quantify recovery overhead
// without a wall clock.
type Faults struct {
	// Dead lists virtual nodes that crash after receiving their request
	// and never answer. With Model.Nodes zero, nodes and partition
	// indices coincide (the classic layout). At least one node must
	// survive.
	Dead []int
	// DetectTimeout is the virtual time after a request's arrival at
	// which the master declares an unanswered worker dead and
	// re-dispatches its partition to a survivor. Zero means
	// DefaultDetectTimeout.
	DetectTimeout time.Duration
	// Stalled lists nodes that compute StallFactor× slower than the
	// model's rate — the straggler script. A non-empty Stalled selects
	// the adaptive scheduler.
	Stalled []int
	// StallFactor is the stalled nodes' compute slowdown. Zero means
	// DefaultStallFactor; values below 1 are an error.
	StallFactor float64
	// Speculate enables speculative re-dispatch in the simulated master,
	// mirroring netrun.Options.Speculate: a partition whose master-
	// observed elapsed time exceeds the straggler threshold is cloned to
	// an idle node, the first answer wins, the loser is canceled and its
	// burned work recorded in Metrics.WastedWork.
	Speculate bool
	// SpecMultiplier scales the straggler threshold (multiple of the
	// median completed service time). Zero means
	// DefaultSpeculationMultiplier; values below 1 are an error.
	SpecMultiplier float64
	// SpecFloor bounds the straggler threshold from below. Zero means
	// DefaultSpeculationFloor; negative is an error.
	SpecFloor time.Duration
}

// DefaultDetectTimeout is the virtual failure-detection timeout used
// when Faults.DetectTimeout is zero.
const DefaultDetectTimeout = 10 * time.Second

// Validate checks the fault script against m nodes.
func (f Faults) Validate(m int) error {
	if f.DetectTimeout < 0 {
		return fmt.Errorf("cluster: negative detect timeout %v", f.DetectTimeout)
	}
	seen := make(map[int]bool, len(f.Dead))
	for _, d := range f.Dead {
		if d < 0 || d >= m {
			return fmt.Errorf("cluster: dead worker %d out of range [0,%d)", d, m)
		}
		if seen[d] {
			return fmt.Errorf("cluster: worker %d listed dead twice", d)
		}
		seen[d] = true
	}
	if len(seen) >= m {
		return fmt.Errorf("cluster: all %d workers dead, nothing can recover", m)
	}
	stalledSeen := make(map[int]bool, len(f.Stalled))
	for _, s := range f.Stalled {
		if s < 0 || s >= m {
			return fmt.Errorf("cluster: stalled worker %d out of range [0,%d)", s, m)
		}
		if stalledSeen[s] {
			return fmt.Errorf("cluster: worker %d listed stalled twice", s)
		}
		if seen[s] {
			return fmt.Errorf("cluster: worker %d both dead and stalled", s)
		}
		stalledSeen[s] = true
	}
	if f.StallFactor != 0 && f.StallFactor < 1 {
		return fmt.Errorf("cluster: stall factor %g below 1", f.StallFactor)
	}
	if f.SpecMultiplier != 0 && f.SpecMultiplier < 1 {
		return fmt.Errorf("cluster: speculation multiplier %g below 1", f.SpecMultiplier)
	}
	if f.SpecFloor < 0 {
		return fmt.Errorf("cluster: negative speculation floor %v", f.SpecFloor)
	}
	return nil
}

// adaptive reports whether the fault script needs the event-driven
// adaptive scheduler rather than the closed-form one-round formulas.
func (f Faults) adaptive() bool {
	return len(f.Stalled) > 0 || f.Speculate
}

// faultSchedule evaluates the MPQ schedule with scripted worker deaths:
// round one is MPQTime's schedule restricted to the survivors; each dead
// partition is then re-dispatched — the master's send NIC becomes free,
// waits for the detection timeout, re-serializes the request to a
// survivor chosen round-robin, and the survivor runs the extra partition
// after finishing its own share. With no deaths this reduces exactly to
// MPQTime.
func (m Model) faultSchedule(reqBytes, respBytes []int, units []uint64, dead map[int]bool, detect time.Duration) (total, maxWorker time.Duration) {
	n := len(reqBytes)
	var masterSendBusy, masterRecvBusy time.Duration
	starts := make([]time.Duration, n)
	arrivals := make([]time.Duration, n) // request arrival, before task setup
	for i, rb := range reqBytes {
		masterSendBusy += m.DispatchPerTask + m.transfer(rb)
		arrivals[i] = masterSendBusy + m.Latency
		starts[i] = arrivals[i] + m.TaskSetup
	}
	// Round one: responses from the survivors only.
	computeBusy := make([]time.Duration, n) // per-worker total busy time
	free := make([]time.Duration, n)        // when a survivor finishes its share
	survivors := make([]int, 0, n)
	for i := range reqBytes {
		if dead[i] {
			continue
		}
		survivors = append(survivors, i)
		computeT := m.compute(units[i])
		computeBusy[i] = computeT
		free[i] = starts[i] + computeT
		arrival := free[i] + m.Latency
		if arrival > masterRecvBusy {
			masterRecvBusy = arrival
		}
		masterRecvBusy += m.transfer(respBytes[i])
	}
	// Recovery round: re-dispatch each dead partition.
	sendFree := masterSendBusy
	si := 0
	for i := range reqBytes {
		if !dead[i] {
			continue
		}
		// Detection runs from the request's arrival at the (crashed)
		// worker, as documented on Faults.DetectTimeout — not from the end
		// of its task setup, which the crash may have interrupted.
		detectAt := arrivals[i] + detect
		if detectAt > sendFree {
			sendFree = detectAt
		}
		sendFree += m.DispatchPerTask + m.transfer(reqBytes[i])
		s := survivors[si%len(survivors)]
		si++
		begin := sendFree + m.Latency + m.TaskSetup
		if free[s] > begin {
			begin = free[s]
		}
		fin := begin + m.compute(units[i])
		free[s] = fin
		computeBusy[s] += m.compute(units[i])
		arrival := fin + m.Latency
		if arrival > masterRecvBusy {
			masterRecvBusy = arrival
		}
		masterRecvBusy += m.transfer(respBytes[i])
	}
	for _, cb := range computeBusy {
		if cb > maxWorker {
			maxWorker = cb
		}
	}
	return masterRecvBusy, maxWorker
}

// Metrics is the simulator's measurement record — one row of the paper's
// figures. It is an alias of core.ClusterMetrics so engine-agnostic
// answers can carry it without importing this package.
type Metrics = core.ClusterMetrics

// Result is the outcome of one simulated optimization.
type Result struct {
	Best     *plan.Node
	Frontier []*plan.Node // multi-objective only
	Metrics  Metrics
	// PerWorker lists each virtual worker's report in partition-ID
	// order; Elapsed is the worker's virtual compute time under the
	// model's work-unit rate.
	PerWorker []core.WorkerReport
	// MaxWorkerStats is the largest per-worker work counter set — the
	// critical path of skew-free parallel execution.
	MaxWorkerStats plan.Stats
}

// RunMPQ simulates Algorithm 1: the master serializes (query, partition
// ID, m) for each worker; workers decode their request bytes, run the
// real constrained DP, and serialize their partition-optimal plans back;
// the master decodes and FinalPrunes. One round, no worker↔worker
// traffic.
func RunMPQ(model Model, q *query.Query, spec core.JobSpec) (*Result, error) { //lint:allow ctxflow deprecated no-ctx wrapper, frozen by api_compat_test; use RunMPQContext
	return RunMPQWithFaultsContext(context.Background(), model, q, spec, Faults{})
}

// RunMPQContext is RunMPQ with cooperative cancellation: every virtual
// worker's dynamic program checks ctx, and the run returns an error
// wrapping ctx's cause once all workers have stopped.
func RunMPQContext(ctx context.Context, model Model, q *query.Query, spec core.JobSpec) (*Result, error) {
	return RunMPQWithFaultsContext(ctx, model, q, spec, Faults{})
}

// RunMPQWithFaults simulates Algorithm 1 under the scripted failure
// model: dead workers receive their request, crash, and never answer;
// the master detects each death DetectTimeout after the request arrived
// and re-dispatches the partition to a surviving worker (round-robin),
// which runs it after its own share. The chosen plans are bit-identical
// to the failure-free run — partitions are disjoint and workers
// stateless — while VirtualTime, traffic, and Redispatches expose the
// recovery overhead.
func RunMPQWithFaults(model Model, q *query.Query, spec core.JobSpec, faults Faults) (*Result, error) { //lint:allow ctxflow deprecated no-ctx wrapper, frozen by api_compat_test; use RunMPQWithFaultsContext
	return RunMPQWithFaultsContext(context.Background(), model, q, spec, faults)
}

// RunMPQWithFaultsContext is RunMPQWithFaults with cooperative
// cancellation (see RunMPQContext).
func RunMPQWithFaultsContext(ctx context.Context, model Model, q *query.Query, spec core.JobSpec, faults Faults) (*Result, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(q.N()); err != nil {
		return nil, err
	}
	nodeCount := model.Nodes
	if nodeCount <= 0 {
		nodeCount = spec.Workers
	}
	if err := faults.Validate(nodeCount); err != nil {
		return nil, err
	}
	q.Freeze()
	m := spec.Workers
	// The closed-form one-round formulas cover the classic layout; a
	// bounded node pool, per-node resources, stall scripts or
	// speculation need the event-driven adaptive scheduler (sched.go).
	adaptive := model.Nodes > 0 || len(model.Resources) > 0 || faults.adaptive()

	// Master builds and "sends" one request per worker. The master NIC
	// serializes outbound messages, so send completions are cumulative
	// (Theorem 5's O(m·bq) master time).
	type workerRun struct {
		req       []byte
		respBytes int
		resp      *wire.JobResponse
		err       error
	}
	runs := make([]workerRun, m)
	for partID := 0; partID < m; partID++ {
		b := wire.EncodeJobRequest(&wire.JobRequest{Spec: spec, PartID: partID, Query: q})
		runs[partID] = workerRun{req: b}
	}

	// Workers decode and run the real DP concurrently (wall-clock
	// speedup for the simulation itself; virtual time uses work units).
	var wg sync.WaitGroup
	for partID := 0; partID < m; partID++ {
		wg.Add(1)
		go func(partID int) {
			defer wg.Done()
			decoded, err := wire.DecodeJobRequest(runs[partID].req)
			if err != nil {
				runs[partID].err = err
				return
			}
			res, err := core.RunWorkerContext(ctx, decoded.Query, decoded.Spec, decoded.PartID)
			if err != nil {
				runs[partID].err = err
				return
			}
			resp := &wire.JobResponse{Plans: res.Plans, Stats: res.Stats}
			rb := wire.EncodeJobResponse(resp)
			// Decode on the master side to stay honest about the protocol.
			back, err := wire.DecodeJobResponse(rb)
			if err != nil {
				runs[partID].err = err
				return
			}
			runs[partID].resp = back
			runs[partID].respBytes = len(rb)
		}(partID)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cluster: simulation canceled: %w", context.Cause(ctx))
	}

	dead := make(map[int]bool, len(faults.Dead))
	for _, d := range faults.Dead {
		dead[d] = true
	}
	detect := faults.DetectTimeout
	if detect == 0 {
		detect = DefaultDetectTimeout
	}

	met := Metrics{Rounds: 1, Redispatches: len(dead)}
	if len(dead) > 0 {
		met.Rounds = 2 // the re-dispatch adds one extra communication round
	}
	out := &Result{}
	frontiers := make([][]*plan.Node, 0, m)
	reqBytes := make([]int, m)
	respBytes := make([]int, m)
	units := make([]uint64, m)
	memo := make([]uint64, m)
	var planCount int
	for partID := 0; partID < m; partID++ {
		r := runs[partID]
		if r.err != nil {
			return nil, fmt.Errorf("cluster: worker %d: %w", partID, r.err)
		}
		met.Bytes += uint64(len(r.req) + r.respBytes)
		met.Messages += 2
		if dead[partID] {
			// The job is sent twice: the crashed worker got the request but
			// never answered, and the survivor both receives the request
			// again and sends the one response.
			met.Bytes += uint64(len(r.req))
			met.Messages++
		}
		met.Work.Add(r.resp.Stats)
		if r.resp.Stats.MemoEntries > met.MaxMemoEntries {
			met.MaxMemoEntries = r.resp.Stats.MemoEntries
		}
		reqBytes[partID] = len(r.req)
		respBytes[partID] = r.respBytes
		units[partID] = r.resp.Stats.WorkUnits()
		memo[partID] = r.resp.Stats.MemoEntries
		frontiers = append(frontiers, r.resp.Plans)
		planCount += len(r.resp.Plans)
		out.PerWorker = append(out.PerWorker, core.WorkerReport{
			PartID: partID, Plans: len(r.resp.Plans), Stats: r.resp.Stats,
			Elapsed: model.compute(r.resp.Stats.WorkUnits()),
		})
		if r.resp.Stats.WorkUnits() > out.MaxWorkerStats.WorkUnits() {
			out.MaxWorkerStats = r.resp.Stats
		}
	}
	if adaptive {
		in := simInput{reqBytes: reqBytes, respBytes: respBytes, units: units, memo: memo}
		sim, err := model.adaptiveSchedule(in, faults)
		if err != nil {
			return nil, err
		}
		// The event simulation accounts traffic itself (clones, cancels
		// and re-dispatches included): override the per-partition tallies.
		met.Bytes = sim.bytes
		met.Messages = sim.messages
		met.Redispatches = sim.redispatches
		met.Rounds = 1
		if sim.redispatches > 0 {
			met.Rounds = 2
		}
		met.VirtualTime = sim.total + time.Duration(planCount)*model.FinalPrunePerPlan
		met.MaxWorkerTime = sim.maxWorker
		met.Speculations = sim.speculations
		met.WastedWork = sim.wasted
		if len(dead) > 0 || len(faults.Stalled) > 0 {
			clean, err := model.adaptiveSchedule(in, Faults{})
			if err != nil {
				return nil, err
			}
			met.RecoveryOverhead = sim.total - clean.total
		}
	} else {
		total, maxWorker := model.faultSchedule(reqBytes, respBytes, units, dead, detect)
		met.VirtualTime = total + time.Duration(planCount)*model.FinalPrunePerPlan
		met.MaxWorkerTime = maxWorker
		if len(dead) > 0 {
			cleanTotal, _ := model.MPQTime(reqBytes, respBytes, units)
			met.RecoveryOverhead = total - cleanTotal
		}
	}

	best, frontier, err := core.FinalPrune(spec, frontiers)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	out.Best, out.Frontier = best, frontier
	out.Metrics = met
	return out, nil
}
