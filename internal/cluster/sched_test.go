package cluster

import (
	"testing"
	"time"

	"mpq/internal/core"
	"mpq/internal/partition"
	"mpq/internal/wire"
)

// The adaptive scheduler must not change what is computed — only when.
// Fault-free, with a bounded node pool, the chosen plan is fingerprint-
// identical to the classic one-node-per-partition run.
func TestAdaptivePlanMatchesLegacy(t *testing.T) {
	q := gen(t, 10, 7)
	spec := core.JobSpec{Space: partition.Linear, Workers: 8}
	legacy, err := RunMPQ(Default(), q, spec)
	if err != nil {
		t.Fatal(err)
	}
	model := Default()
	model.Nodes = 3
	adaptive, err := RunMPQ(model, q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if lf, af := wire.PlanFingerprint(legacy.Best), wire.PlanFingerprint(adaptive.Best); lf != af {
		t.Fatalf("adaptive plan diverged: %s != %s", af, lf)
	}
	if adaptive.Metrics.Speculations != 0 || adaptive.Metrics.WastedWork != 0 {
		t.Fatalf("fault-free adaptive run speculated: %+v", adaptive.Metrics)
	}
}

// The acceptance criterion of the adaptive scheduler: under a scripted
// stall, a speculative run completes in less than 60% of the
// non-speculative virtual wall-time, and the chosen plan stays
// fingerprint-identical to the fault-free run. Virtual time makes this
// fully deterministic.
func TestStallSpeculationBeatsWaitingDeterministically(t *testing.T) {
	q := gen(t, 12, 3)
	spec := core.JobSpec{Space: partition.Linear, Workers: 8}
	model := Default()
	model.Nodes = 4

	clean, err := RunMPQ(model, q, spec)
	if err != nil {
		t.Fatal(err)
	}
	stall := Faults{Stalled: []int{0}, StallFactor: 50}
	slow, err := RunMPQWithFaults(model, q, spec, stall)
	if err != nil {
		t.Fatal(err)
	}
	stallSpec := stall
	stallSpec.Speculate = true
	fast, err := RunMPQWithFaults(model, q, spec, stallSpec)
	if err != nil {
		t.Fatal(err)
	}

	cf := wire.PlanFingerprint(clean.Best)
	for name, r := range map[string]*Result{"stalled": slow, "speculative": fast} {
		if f := wire.PlanFingerprint(r.Best); f != cf {
			t.Fatalf("%s plan diverged from fault-free run: %s != %s", name, f, cf)
		}
	}
	if slow.Metrics.VirtualTime <= clean.Metrics.VirtualTime {
		t.Fatalf("stall had no effect: stalled %v <= clean %v", slow.Metrics.VirtualTime, clean.Metrics.VirtualTime)
	}
	if limit := slow.Metrics.VirtualTime * 6 / 10; fast.Metrics.VirtualTime >= limit {
		t.Fatalf("speculation too slow: %v, want < 60%% of %v (= %v)",
			fast.Metrics.VirtualTime, slow.Metrics.VirtualTime, limit)
	}
	if fast.Metrics.Speculations == 0 {
		t.Fatal("speculative run recorded no speculations")
	}
	if fast.Metrics.WastedWork == 0 {
		t.Fatal("speculative run recorded no wasted work — the canceled straggler burned compute")
	}
	if fast.Metrics.RecoveryOverhead <= 0 {
		t.Fatalf("speculative run under a stall should still report overhead, got %v", fast.Metrics.RecoveryOverhead)
	}

	// Determinism: the virtual schedule must replay bit for bit.
	again, err := RunMPQWithFaults(model, q, spec, stallSpec)
	if err != nil {
		t.Fatal(err)
	}
	if again.Metrics != fast.Metrics {
		t.Fatalf("speculative schedule not deterministic:\n first %+v\nsecond %+v", fast.Metrics, again.Metrics)
	}
}

// A dead node under the adaptive scheduler recovers through detection +
// re-dispatch, and speculation can even pre-empt the detector; either
// way the plan is unchanged.
func TestAdaptiveDeadNodeRecovers(t *testing.T) {
	q := gen(t, 10, 5)
	spec := core.JobSpec{Space: partition.Linear, Workers: 8}
	model := Default()
	model.Nodes = 3
	clean, err := RunMPQ(model, q, spec)
	if err != nil {
		t.Fatal(err)
	}
	dead, err := RunMPQWithFaults(model, q, spec, Faults{Dead: []int{1}, DetectTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if cf, df := wire.PlanFingerprint(clean.Best), wire.PlanFingerprint(dead.Best); cf != df {
		t.Fatalf("dead-node plan diverged: %s != %s", df, cf)
	}
	if dead.Metrics.Redispatches == 0 {
		t.Fatal("dead node produced no re-dispatches")
	}
	if dead.Metrics.VirtualTime <= clean.Metrics.VirtualTime {
		t.Fatal("death and recovery cost no virtual time")
	}
}

// Per-node CPU capacities shape the schedule: doubling every node's CPU
// halves compute, and a pool with one fast node beats an all-slow pool.
func TestMultiResourceCPUShapesSchedule(t *testing.T) {
	q := gen(t, 10, 11)
	spec := core.JobSpec{Space: partition.Linear, Workers: 8}
	model := Default()
	model.Nodes = 2
	model.Resources = []NodeResources{{CPU: 1}, {CPU: 1}}
	base, err := RunMPQ(model, q, spec)
	if err != nil {
		t.Fatal(err)
	}
	fast := model
	fast.Resources = []NodeResources{{CPU: 4}, {CPU: 4}}
	quick, err := RunMPQ(fast, q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if quick.Metrics.VirtualTime >= base.Metrics.VirtualTime {
		t.Fatalf("4x CPUs did not shorten the schedule: %v >= %v",
			quick.Metrics.VirtualTime, base.Metrics.VirtualTime)
	}
	if bf, qf := wire.PlanFingerprint(base.Best), wire.PlanFingerprint(quick.Best); bf != qf {
		t.Fatalf("resource model changed the plan: %s != %s", qf, bf)
	}
}

// A node whose memory cannot hold a partition's memo spills and slows
// down; the schedule reflects it, the plan does not.
func TestMultiResourceMemorySpill(t *testing.T) {
	q := gen(t, 10, 13)
	spec := core.JobSpec{Space: partition.Linear, Workers: 4}
	model := Default()
	model.Nodes = 2
	model.Resources = []NodeResources{{CPU: 1}, {CPU: 1}}
	roomy, err := RunMPQ(model, q, spec)
	if err != nil {
		t.Fatal(err)
	}
	tight := model
	tight.Resources = []NodeResources{{CPU: 1, MemoryBytes: 256}, {CPU: 1, MemoryBytes: 256}}
	spilled, err := RunMPQ(tight, q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if spilled.Metrics.VirtualTime <= roomy.Metrics.VirtualTime {
		t.Fatalf("spill cost no time: %v <= %v", spilled.Metrics.VirtualTime, roomy.Metrics.VirtualTime)
	}
	if rf, sf := wire.PlanFingerprint(roomy.Best), wire.PlanFingerprint(spilled.Best); rf != sf {
		t.Fatalf("spill changed the plan: %s != %s", sf, rf)
	}
}

// Resource slices must match the node pool, and fault scripts must be
// internally consistent.
func TestAdaptiveValidation(t *testing.T) {
	q := gen(t, 8, 1)
	spec := core.JobSpec{Space: partition.Linear, Workers: 4}
	model := Default()
	model.Nodes = 3
	model.Resources = []NodeResources{{CPU: 1}, {CPU: 1}} // 2 entries, 3 nodes
	if _, err := RunMPQ(model, q, spec); err == nil {
		t.Fatal("mismatched resource slice accepted")
	}
	if err := (Faults{Stalled: []int{0}, StallFactor: 0.5}).Validate(4); err == nil {
		t.Fatal("stall factor below 1 accepted")
	}
	if err := (Faults{Dead: []int{1}, Stalled: []int{1}}).Validate(4); err == nil {
		t.Fatal("node both dead and stalled accepted")
	}
	if err := (Faults{Stalled: []int{9}}).Validate(4); err == nil {
		t.Fatal("out-of-range stalled node accepted")
	}
	if err := (Faults{Speculate: true, SpecMultiplier: 0.3}).Validate(4); err == nil {
		t.Fatal("speculation multiplier below 1 accepted")
	}
}
