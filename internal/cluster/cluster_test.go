package cluster

import (
	"math"
	"testing"
	"time"

	"mpq/internal/core"
	"mpq/internal/dp"
	"mpq/internal/partition"
	"mpq/internal/query"
	"mpq/internal/workload"
)

func gen(t testing.TB, n int, seed int64) *query.Query {
	t.Helper()
	return workload.MustGenerate(workload.NewParams(n, workload.Star), seed)
}

func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestModelValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Default()
	bad.Bandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	bad = Default()
	bad.Latency = -time.Second
	if err := bad.Validate(); err == nil {
		t.Fatal("negative latency accepted")
	}
}

// The simulator must return exactly the same plan cost as the in-process
// engine: only the clock is virtual.
func TestSimulationMatchesInProcess(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		q := gen(t, 8, seed)
		for _, m := range []int{1, 4, 16} {
			spec := core.JobSpec{Space: partition.Linear, Workers: m}
			sim, err := RunMPQ(Default(), q, spec)
			if err != nil {
				t.Fatal(err)
			}
			local, err := core.Optimize(q, spec)
			if err != nil {
				t.Fatal(err)
			}
			if !approx(sim.Best.Cost, local.Best.Cost) {
				t.Fatalf("m=%d seed=%d: sim %g != local %g", m, seed, sim.Best.Cost, local.Best.Cost)
			}
		}
	}
}

func TestNetworkBytesLinearInWorkers(t *testing.T) {
	q := gen(t, 12, 1)
	var bytesPerWorker []float64
	for _, m := range []int{2, 4, 8, 16} {
		res, err := RunMPQ(Default(), q, core.JobSpec{Space: partition.Linear, Workers: m})
		if err != nil {
			t.Fatal(err)
		}
		bytesPerWorker = append(bytesPerWorker, float64(res.Metrics.Bytes)/float64(m))
	}
	// Theorem 1: traffic is O(m · (bq + bp)) — per-worker bytes are flat.
	for i := 1; i < len(bytesPerWorker); i++ {
		ratio := bytesPerWorker[i] / bytesPerWorker[0]
		if ratio > 1.1 || ratio < 0.9 {
			t.Fatalf("per-worker bytes not flat: %v", bytesPerWorker)
		}
	}
}

func TestOneRoundTwoMessagesPerWorker(t *testing.T) {
	q := gen(t, 8, 0)
	res, err := RunMPQ(Default(), q, core.JobSpec{Space: partition.Linear, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Rounds != 1 {
		t.Fatalf("rounds = %d", res.Metrics.Rounds)
	}
	if res.Metrics.Messages != 16 {
		t.Fatalf("messages = %d want 16", res.Metrics.Messages)
	}
}

// W-Time (max per-worker compute) must decrease monotonically in the
// worker count — the paper's central scaling claim.
func TestWorkerTimeDecreasesWithParallelism(t *testing.T) {
	q := gen(t, 14, 2)
	var prev time.Duration = 1<<62 - 1
	for _, m := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		res, err := RunMPQ(Default(), q, core.JobSpec{Space: partition.Linear, Workers: m})
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics.MaxWorkerTime >= prev {
			t.Fatalf("m=%d: W-time %v did not decrease from %v", m, res.Metrics.MaxWorkerTime, prev)
		}
		prev = res.Metrics.MaxWorkerTime
	}
}

// Theorem 6: per-worker work shrinks by 3/4 per doubling (linear space).
func TestWorkReductionMatchesTheory(t *testing.T) {
	q := gen(t, 14, 3)
	model := Default()
	var prevMax uint64
	for i, m := range []int{1, 2, 4, 8, 16} {
		res, err := RunMPQ(model, q, core.JobSpec{Space: partition.Linear, Workers: m})
		if err != nil {
			t.Fatal(err)
		}
		// Recover the slowest worker's units from its virtual compute time.
		maxUnits := uint64(float64(res.Metrics.MaxWorkerTime.Nanoseconds()) / model.NsPerWorkUnit)
		if i > 0 {
			ratio := float64(maxUnits) / float64(prevMax)
			if ratio < 0.70 || ratio > 0.80 {
				t.Fatalf("m=%d: work ratio %.3f outside [0.70, 0.80]", m, ratio)
			}
		}
		prevMax = maxUnits
	}
}

func TestMultiObjectiveSimulation(t *testing.T) {
	q := gen(t, 8, 4)
	spec := core.JobSpec{
		Space: partition.Linear, Workers: 4,
		Objective: core.MultiObjective, Alpha: 1,
	}
	sim, err := RunMPQ(Default(), q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.Frontier) == 0 {
		t.Fatal("no frontier")
	}
	local, err := core.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.Frontier) != len(local.Frontier) {
		t.Fatalf("sim frontier %d != local %d", len(sim.Frontier), len(local.Frontier))
	}
	// MO responses carry whole frontiers, so traffic exceeds the
	// single-objective run's.
	single, err := RunMPQ(Default(), q, core.JobSpec{Space: partition.Linear, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Metrics.Bytes <= single.Metrics.Bytes {
		t.Fatalf("MO bytes %d not above single-objective %d", sim.Metrics.Bytes, single.Metrics.Bytes)
	}
}

func TestMemoryMetricMatchesDP(t *testing.T) {
	q := gen(t, 10, 5)
	res, err := RunMPQ(Default(), q, core.JobSpec{Space: partition.Linear, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Worker memo size equals the DP's count for one partition.
	cs, _ := partition.ForPartition(partition.Linear, 10, 0, 4)
	ref, err := dp.Run(q, cs, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.MaxMemoEntries != ref.Stats.MemoEntries {
		t.Fatalf("memory metric %d != DP %d", res.Metrics.MaxMemoEntries, ref.Stats.MemoEntries)
	}
}

func TestRunMPQRejectsInvalid(t *testing.T) {
	q := gen(t, 8, 0)
	if _, err := RunMPQ(Model{}, q, core.JobSpec{Space: partition.Linear, Workers: 2}); err == nil {
		t.Fatal("invalid model accepted")
	}
	if _, err := RunMPQ(Default(), q, core.JobSpec{Space: partition.Linear, Workers: 3}); err == nil {
		t.Fatal("invalid worker count accepted")
	}
}

func TestVirtualTimeIncludesLatencyFloor(t *testing.T) {
	q := gen(t, 6, 0)
	model := Default()
	res, err := RunMPQ(model, q, core.JobSpec{Space: partition.Linear, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// At minimum: task setup + 2 latencies must be present.
	floor := model.TaskSetup + 2*model.Latency
	if res.Metrics.VirtualTime < floor {
		t.Fatalf("virtual time %v below floor %v", res.Metrics.VirtualTime, floor)
	}
}
