package cluster

import (
	"math"
	"testing"
	"time"

	"mpq/internal/catalog"
	"mpq/internal/core"
	"mpq/internal/dp"
	"mpq/internal/partition"
	"mpq/internal/query"
	"mpq/internal/wire"
	"mpq/internal/workload"
)

func gen(t testing.TB, n int, seed int64) *query.Query {
	t.Helper()
	return workload.MustGenerate(workload.NewParams(n, workload.Star), seed)
}

func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestModelValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Default()
	bad.Bandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	bad = Default()
	bad.Latency = -time.Second
	if err := bad.Validate(); err == nil {
		t.Fatal("negative latency accepted")
	}
}

// The simulator must return exactly the same plan cost as the in-process
// engine: only the clock is virtual.
func TestSimulationMatchesInProcess(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		q := gen(t, 8, seed)
		for _, m := range []int{1, 4, 16} {
			spec := core.JobSpec{Space: partition.Linear, Workers: m}
			sim, err := RunMPQ(Default(), q, spec)
			if err != nil {
				t.Fatal(err)
			}
			local, err := core.Optimize(q, spec)
			if err != nil {
				t.Fatal(err)
			}
			if !approx(sim.Best.Cost, local.Best.Cost) {
				t.Fatalf("m=%d seed=%d: sim %g != local %g", m, seed, sim.Best.Cost, local.Best.Cost)
			}
		}
	}
}

// The equivalence must hold on every workload family: all join-graph
// shapes (including the snowflake fan-out), correlated selectivities,
// and the fixed TPC-style schema queries.
func TestSimulationMatchesInProcessOnAllWorkloads(t *testing.T) {
	var queries []*query.Query
	for _, shape := range workload.Shapes {
		params := workload.NewParams(9, shape)
		queries = append(queries, workload.MustGenerate(params, 7))
		params.Correlation = 0.8
		queries = append(queries, workload.MustGenerate(params, 7))
	}
	for _, name := range catalog.SchemaNames() {
		sch, err := catalog.BuiltinSchema(name)
		if err != nil {
			t.Fatal(err)
		}
		_, q, err := workload.FromSchema(sch, 1)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q)
	}
	for i, q := range queries {
		spec := core.JobSpec{Space: partition.Linear, Workers: 4}
		sim, err := RunMPQ(Default(), q, spec)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		local, err := core.Optimize(q, spec)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if wire.PlanFingerprint(sim.Best) != wire.PlanFingerprint(local.Best) {
			t.Fatalf("query %d: simulated and in-process plans differ", i)
		}
	}
}

func TestNetworkBytesLinearInWorkers(t *testing.T) {
	q := gen(t, 12, 1)
	var bytesPerWorker []float64
	for _, m := range []int{2, 4, 8, 16} {
		res, err := RunMPQ(Default(), q, core.JobSpec{Space: partition.Linear, Workers: m})
		if err != nil {
			t.Fatal(err)
		}
		bytesPerWorker = append(bytesPerWorker, float64(res.Metrics.Bytes)/float64(m))
	}
	// Theorem 1: traffic is O(m · (bq + bp)) — per-worker bytes are flat.
	for i := 1; i < len(bytesPerWorker); i++ {
		ratio := bytesPerWorker[i] / bytesPerWorker[0]
		if ratio > 1.1 || ratio < 0.9 {
			t.Fatalf("per-worker bytes not flat: %v", bytesPerWorker)
		}
	}
}

func TestOneRoundTwoMessagesPerWorker(t *testing.T) {
	q := gen(t, 8, 0)
	res, err := RunMPQ(Default(), q, core.JobSpec{Space: partition.Linear, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Rounds != 1 {
		t.Fatalf("rounds = %d", res.Metrics.Rounds)
	}
	if res.Metrics.Messages != 16 {
		t.Fatalf("messages = %d want 16", res.Metrics.Messages)
	}
}

// W-Time (max per-worker compute) must decrease monotonically in the
// worker count — the paper's central scaling claim.
func TestWorkerTimeDecreasesWithParallelism(t *testing.T) {
	q := gen(t, 14, 2)
	var prev time.Duration = 1<<62 - 1
	for _, m := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		res, err := RunMPQ(Default(), q, core.JobSpec{Space: partition.Linear, Workers: m})
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics.MaxWorkerTime >= prev {
			t.Fatalf("m=%d: W-time %v did not decrease from %v", m, res.Metrics.MaxWorkerTime, prev)
		}
		prev = res.Metrics.MaxWorkerTime
	}
}

// Theorem 6: per-worker work shrinks by 3/4 per doubling (linear space).
func TestWorkReductionMatchesTheory(t *testing.T) {
	q := gen(t, 14, 3)
	model := Default()
	var prevMax uint64
	for i, m := range []int{1, 2, 4, 8, 16} {
		res, err := RunMPQ(model, q, core.JobSpec{Space: partition.Linear, Workers: m})
		if err != nil {
			t.Fatal(err)
		}
		// Recover the slowest worker's units from its virtual compute time.
		maxUnits := uint64(float64(res.Metrics.MaxWorkerTime.Nanoseconds()) / model.NsPerWorkUnit)
		if i > 0 {
			ratio := float64(maxUnits) / float64(prevMax)
			if ratio < 0.70 || ratio > 0.80 {
				t.Fatalf("m=%d: work ratio %.3f outside [0.70, 0.80]", m, ratio)
			}
		}
		prevMax = maxUnits
	}
}

func TestMultiObjectiveSimulation(t *testing.T) {
	q := gen(t, 8, 4)
	spec := core.JobSpec{
		Space: partition.Linear, Workers: 4,
		Objective: core.MultiObjective, Alpha: 1,
	}
	sim, err := RunMPQ(Default(), q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.Frontier) == 0 {
		t.Fatal("no frontier")
	}
	local, err := core.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.Frontier) != len(local.Frontier) {
		t.Fatalf("sim frontier %d != local %d", len(sim.Frontier), len(local.Frontier))
	}
	// MO responses carry whole frontiers, so traffic exceeds the
	// single-objective run's.
	single, err := RunMPQ(Default(), q, core.JobSpec{Space: partition.Linear, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Metrics.Bytes <= single.Metrics.Bytes {
		t.Fatalf("MO bytes %d not above single-objective %d", sim.Metrics.Bytes, single.Metrics.Bytes)
	}
}

func TestMemoryMetricMatchesDP(t *testing.T) {
	q := gen(t, 10, 5)
	res, err := RunMPQ(Default(), q, core.JobSpec{Space: partition.Linear, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Worker memo size equals the DP's count for one partition.
	cs, _ := partition.ForPartition(partition.Linear, 10, 0, 4)
	ref, err := dp.Run(q, cs, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.MaxMemoEntries != ref.Stats.MemoEntries {
		t.Fatalf("memory metric %d != DP %d", res.Metrics.MaxMemoEntries, ref.Stats.MemoEntries)
	}
}

func TestFaultsValidate(t *testing.T) {
	cases := []struct {
		name   string
		faults Faults
		m      int
		ok     bool
	}{
		{"no faults", Faults{}, 4, true},
		{"one death", Faults{Dead: []int{2}}, 4, true},
		{"minority dead", Faults{Dead: []int{0, 1, 2}}, 4, true},
		{"out of range", Faults{Dead: []int{4}}, 4, false},
		{"negative index", Faults{Dead: []int{-1}}, 4, false},
		{"duplicate", Faults{Dead: []int{1, 1}}, 4, false},
		{"all dead", Faults{Dead: []int{0, 1, 2, 3}}, 4, false},
		{"negative detect", Faults{DetectTimeout: -time.Second}, 4, false},
	}
	for _, c := range cases {
		err := c.faults.Validate(c.m)
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// Dead workers change the schedule, never the answer: the recovered run
// must return bit-identical plans while exposing the overhead in the
// virtual-time and traffic metrics.
func TestFaultedSimulationBitIdentical(t *testing.T) {
	q := gen(t, 10, 7)
	spec := core.JobSpec{Space: partition.Linear, Workers: 8}
	clean, err := RunMPQ(Default(), q, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, deadSet := range [][]int{{0}, {3, 5}, {0, 1, 2, 3, 4, 5, 6}} {
		faults := Faults{Dead: deadSet, DetectTimeout: 5 * time.Second}
		res, err := RunMPQWithFaults(Default(), q, spec, faults)
		if err != nil {
			t.Fatal(err)
		}
		if wire.PlanFingerprint(res.Best) != wire.PlanFingerprint(clean.Best) {
			t.Fatalf("dead=%v: recovered plan differs", deadSet)
		}
		if res.Metrics.Redispatches != len(deadSet) {
			t.Fatalf("dead=%v: Redispatches = %d", deadSet, res.Metrics.Redispatches)
		}
		if res.Metrics.Rounds != 2 {
			t.Fatalf("dead=%v: rounds = %d, want 2", deadSet, res.Metrics.Rounds)
		}
		if res.Metrics.VirtualTime <= clean.Metrics.VirtualTime {
			t.Fatalf("dead=%v: recovery is free: %v <= %v",
				deadSet, res.Metrics.VirtualTime, clean.Metrics.VirtualTime)
		}
		if got, want := res.Metrics.RecoveryOverhead, res.Metrics.VirtualTime-clean.Metrics.VirtualTime; got != want {
			t.Fatalf("dead=%v: RecoveryOverhead = %v, want %v", deadSet, got, want)
		}
		if res.Metrics.Bytes <= clean.Metrics.Bytes {
			t.Fatalf("dead=%v: no re-dispatch traffic accounted", deadSet)
		}
		if want := 2*spec.Workers + len(deadSet); res.Metrics.Messages != want {
			t.Fatalf("dead=%v: messages = %d, want %d", deadSet, res.Metrics.Messages, want)
		}
	}
}

// The survivors absorb the dead workers' partitions, so the slowest
// worker's busy time grows with the death count — the recovery-overhead
// curve a Fig-style experiment would plot.
func TestRecoveryOverheadGrowsWithDeaths(t *testing.T) {
	q := gen(t, 12, 2)
	spec := core.JobSpec{Space: partition.Linear, Workers: 8}
	var baseline, prev time.Duration = -1, -1
	for _, k := range []int{0, 1, 2, 4} {
		dead := make([]int, k)
		for i := range dead {
			dead[i] = i
		}
		res, err := RunMPQWithFaults(Default(), q, spec, Faults{Dead: dead})
		if err != nil {
			t.Fatal(err)
		}
		wtime := res.Metrics.MaxWorkerTime
		if k == 0 {
			baseline = wtime
		} else if wtime <= baseline {
			t.Fatalf("k=%d: W-time %v not above failure-free %v", k, wtime, baseline)
		}
		// Symmetric partitions can tie across k, but recovery never gets
		// cheaper with more deaths.
		if wtime < prev {
			t.Fatalf("k=%d: W-time %v fell from %v", k, wtime, prev)
		}
		prev = wtime
	}
}

// With no deaths the fault-aware schedule must reduce exactly to
// MPQTime — the failure-free figures may not shift.
func TestFaultScheduleReducesToMPQTime(t *testing.T) {
	model := Default()
	reqs := []int{300, 310, 290, 305}
	resps := []int{120, 800, 95, 400}
	units := []uint64{1000, 50000, 800, 20000}
	wantTotal, wantMax := model.MPQTime(reqs, resps, units)
	gotTotal, gotMax := model.faultSchedule(reqs, resps, units, nil, DefaultDetectTimeout)
	if gotTotal != wantTotal || gotMax != wantMax {
		t.Fatalf("faultSchedule (%v, %v) != MPQTime (%v, %v)", gotTotal, gotMax, wantTotal, wantMax)
	}
}

func TestRunMPQRejectsInvalid(t *testing.T) {
	q := gen(t, 8, 0)
	if _, err := RunMPQ(Model{}, q, core.JobSpec{Space: partition.Linear, Workers: 2}); err == nil {
		t.Fatal("invalid model accepted")
	}
	if _, err := RunMPQ(Default(), q, core.JobSpec{Space: partition.Linear, Workers: 3}); err == nil {
		t.Fatal("invalid worker count accepted")
	}
}

func TestVirtualTimeIncludesLatencyFloor(t *testing.T) {
	q := gen(t, 6, 0)
	model := Default()
	res, err := RunMPQ(model, q, core.JobSpec{Space: partition.Linear, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// At minimum: task setup + 2 latencies must be present.
	floor := model.TaskSetup + 2*model.Latency
	if res.Metrics.VirtualTime < floor {
		t.Fatalf("virtual time %v below floor %v", res.Metrics.VirtualTime, floor)
	}
}
