// Package dp implements the dynamic-programming plan search executed by
// each worker (Algorithm 2): Selinger-style enumeration of admissible join
// results in ascending cardinality, trying all admissible operand splits
// and pruning dominated plans.
//
// The engine is parameterized by a Pruner, mirroring the paper's
// observation (§4) that single-objective, multi-objective and parametric
// query optimization share the same dynamic-programming scheme and differ
// only in the pruning function. Running the engine on the unconstrained
// partition with one worker reproduces the classical serial algorithm
// ([17] for left-deep, [25] for bushy spaces).
//
// # Cost-first candidate evaluation
//
// Pruning is a two-phase, cost-first protocol. For every candidate join
// the engine first computes only the scalar annotations a plan node would
// carry — cost, buffer and output order, via plan.JoinScalars — and asks
// the Pruner's Admits whether a plan with those scalars would survive
// against the plans already retained for the table set. Only admitted
// candidates are materialized as plan.Node values (plan.Join) and handed
// to Insert. Since the vast majority of candidates are pruned (for
// SingleBest, all but the running minimum), the hot loop performs pure
// float arithmetic with zero heap allocations per pruned candidate; node
// construction cost is paid only for survivors. The split between Admits
// and Insert must agree — Admits answers exactly "would Insert keep this
// plan?" — which the engine relies on for its kept/pruned accounting.
//
// The admissible join results themselves are streamed per cardinality
// from partition.Enumerator instead of being materialized up front,
// keeping the master/worker memory footprint within the paper's
// per-partition bounds (Theorem 4).
//
// # Memory locality
//
// The survivor side is allocation-free too: admitted plans are
// materialized into a per-run plan.Arena (contiguous slabs), the memo
// stores its entries by value in an open-addressing table presized from
// the closed-form admissible-set count, and each entry's 1–2-plan
// frontier lives inline in the entry (Frontier). A Runtime bundles the
// arena and memo so a worker optimizing a batch of queries recycles
// both — the steady state performs (almost) no heap allocation. See
// docs/perf.md for the design and the measured trajectory.
package dp

import (
	"context"
	"errors"
	"fmt"

	"mpq/internal/bitset"
	"mpq/internal/cost"
	"mpq/internal/partition"
	"mpq/internal/plan"
	"mpq/internal/query"
	"mpq/internal/setmap"
)

// Candidate is the scalar summary of a prospective join plan: exactly the
// annotations pruning decisions depend on, precomputed by the engine via
// plan.JoinScalars without building the plan.Node.
type Candidate struct {
	// Cost is the cumulative time-metric cost the plan would have.
	Cost float64
	// Buffer is the cumulative second-metric value (buffer footprint, or
	// the θ=1 cost under a parametric model).
	Buffer float64
	// Order is the output sort order (query.AttrID or query.NoOrder).
	Order int
}

// Pruner decides which plans to retain per table set, in two phases.
//
// Admits is the cost-first admission check: it reports whether a plan
// with cand's scalars would survive against the already-retained
// frontier. It is called once per generated candidate — the optimizer's
// hottest path — and must not allocate or mutate the frontier.
//
// Insert adds p, a materialized plan for which Admits just returned
// true against the same frontier, to the retained set, evicting any
// retained plans p dominates (Frontier.Filter + Frontier.Append is the
// canonical shape). The engine only calls Insert after a successful
// Admits, so implementations may assume p survives. Implementations
// must keep the invariant that no retained plan dominates another (for
// their notion of dominance).
type Pruner interface {
	Admits(f *Frontier, cand Candidate) bool
	Insert(f *Frontier, p *plan.Node)
}

// SingleBest retains exactly one plan: the cheapest by the time metric.
// This is the classical pruning function of [17] without interesting
// orders.
type SingleBest struct{}

// Admits implements Pruner: only a new strict minimum survives.
func (SingleBest) Admits(f *Frontier, cand Candidate) bool {
	return f.Len() == 0 || cand.Cost < f.At(0).Cost
}

// Insert implements Pruner.
func (SingleBest) Insert(f *Frontier, p *plan.Node) {
	if f.Len() == 0 {
		f.Append(p)
		return
	}
	f.Set(0, p)
}

// OrderAware retains the cheapest plan per distinct output order: a plan
// is dominated iff another plan is at most as expensive and produces the
// same tuples in the same (or a strictly more useful) order — the
// comparison the paper's Prune function performs [17].
type OrderAware struct{}

// orderDominates reports whether a plan with order qo can substitute for
// one with order po in any context: equal orders always can, and any
// order can substitute for "no order" (sortedness only ever reduces
// downstream cost).
func orderDominates(qo, po int) bool {
	return qo == po || po == query.NoOrder
}

// Admits implements Pruner: the candidate is dominated iff a retained
// plan is at most as expensive and its order can substitute.
func (OrderAware) Admits(f *Frontier, cand Candidate) bool {
	for i, n := 0, f.Len(); i < n; i++ {
		q := f.At(i)
		if q.Cost <= cand.Cost && orderDominates(q.Order, cand.Order) {
			return false
		}
	}
	return true
}

// Insert implements Pruner: p survives; evict plans it dominates.
func (OrderAware) Insert(f *Frontier, p *plan.Node) {
	f.Filter(func(q *plan.Node) bool {
		return !(p.Cost <= q.Cost && orderDominates(p.Order, q.Order))
	})
	f.Append(p)
}

// Options configures one dynamic-programming run.
type Options struct {
	// Model is the cost model; zero value is replaced by cost.Default().
	Model cost.Model
	// Pruner defaults to SingleBest.
	Pruner Pruner
	// InterestingOrders enables sort-order tracking: sort-merge joins
	// produce ordered output and pre-sorted inputs skip sort passes.
	// Off by default, matching the paper's complexity analysis (§5).
	InterestingOrders bool
	// DisableCrossProducts heuristically skips disconnected join results
	// (an ablation switch; the paper deliberately allows cross products).
	DisableCrossProducts bool
	// MaxWorkUnits aborts the search once the work meter exceeds this
	// bound (0 = unlimited). Used by time-budgeted experiments
	// (Table 1): work is deterministic, so exceeding the unit budget is
	// exactly "the time budget ran out".
	MaxWorkUnits uint64
	// Runtime supplies reusable per-run memory (plan-node arena + memo
	// table). nil means the run builds a private runtime; supplying one
	// lets a worker recycle slabs and memo capacity across queries. The
	// run resets the runtime, so a Runtime may back at most one engine
	// at a time. Ignored when DisableArena is set.
	Runtime *Runtime
	// DisableArena forces heap-allocated plan nodes and a fresh memo —
	// the pre-arena allocation behaviour. Plans are bit-identical either
	// way (the constructors share their code); the bit-identity tests
	// pin that, and it remains as the escape hatch should an embedder
	// need survivor nodes with independent lifetimes.
	DisableArena bool
}

func (o Options) withDefaults() Options {
	if o.Model == (cost.Model{}) {
		o.Model = cost.Default()
	}
	if o.Pruner == nil {
		o.Pruner = SingleBest{}
	}
	return o
}

// Result is the outcome of searching one plan-space partition.
type Result struct {
	// Plans holds the retained plans for the full query: exactly one for
	// SingleBest, one per useful order for OrderAware, a Pareto frontier
	// for multi-objective pruners. Empty only if the partition admits no
	// complete plan (cannot happen for valid partitions).
	Plans []*plan.Node
	// Stats is the work and memory accounting for this run.
	Stats plan.Stats
}

// Best returns the cheapest plan by the time metric (the master-side
// FinalPrune for single-objective optimization).
func (r *Result) Best() *plan.Node {
	var best *plan.Node
	for _, p := range r.Plans {
		if best == nil || p.Cost < best.Cost {
			best = p
		}
	}
	return best
}

// entry is the memo record for one table set. It is stored by value in
// the memo (no per-set heap allocation) and holds its 1–2-plan frontier
// inline, so looking a set up touches one contiguous slot instead of
// chasing an entry pointer and a slice header.
type entry struct {
	card float64
	// cardHi is the set's cardinality at the high endpoint of the
	// selectivity-uncertainty band (RobustCost models); equal to card
	// otherwise. Tracked once per set, like card, so robust candidate
	// evaluation stays pure float arithmetic per split.
	cardHi float64
	f      Frontier
}

// Run searches the plan-space partition cs of query q and returns the
// retained plans for the full query set (Algorithm 2). cs determines the
// plan space (Linear or Bushy) and the join-order constraints; use
// partition.Unconstrained for the classical serial algorithm.
func Run(q *query.Query, cs *partition.ConstraintSet, opts Options) (*Result, error) {
	return RunContext(context.Background(), q, cs, opts)
}

// cancelPollInterval is how many processed sets may pass between two
// context-cancellation checks inside one cardinality level. Checking
// ctx.Err() takes a mutex, so the hot loop amortizes it; a level's tail
// is always bounded by this many sets plus the set in flight.
const cancelPollInterval = 256

// RunContext is Run with cooperative cancellation: the search checks
// ctx between cardinality levels and every cancelPollInterval table
// sets within a level, returning an error wrapping ctx's cause as soon
// as the current set finishes. Partial results are discarded — a
// canceled partition search yields no plans.
func RunContext(ctx context.Context, q *query.Query, cs *partition.ConstraintSet, opts Options) (*Result, error) {
	eng, err := NewEngine(q, cs, opts)
	if err != nil {
		return nil, err
	}
	n := q.N()
	enum := cs.NewEnumerator()
	sincePoll := 0
	for k := 2; k <= n; k++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("dp: canceled at cardinality %d: %w", k, context.Cause(ctx))
		}
		done := enum.ForEachAdmissible(k, func(u bitset.Set) bool {
			eng.ProcessSet(u)
			if sincePoll++; sincePoll >= cancelPollInterval {
				sincePoll = 0
				if ctx.Err() != nil {
					return false
				}
			}
			return !eng.LimitExceeded()
		})
		if !done {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("dp: canceled at cardinality %d: %w", k, context.Cause(ctx))
			}
			return nil, fmt.Errorf("%w after %d units", ErrWorkLimit, eng.Stats().WorkUnits())
		}
	}
	return eng.Finish()
}

// ErrWorkLimit is returned when Options.MaxWorkUnits is exceeded.
var ErrWorkLimit = errors.New("dp: work limit exceeded")

// Engine exposes the dynamic program one table set at a time, so that
// schedulers other than the straight Algorithm 2 loop — in particular
// the SMA baseline, which assigns sets to workers in rounds — drive the
// exact same plan generation and pruning logic.
type Engine struct {
	w *worker
	n int
}

// NewEngine validates the inputs and initializes the memo with scan
// plans for every table.
func NewEngine(q *query.Query, cs *partition.ConstraintSet, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Model.Validate(); err != nil {
		return nil, err
	}
	if cs.N != q.N() {
		return nil, fmt.Errorf("dp: constraint set is for %d tables, query has %d", cs.N, q.N())
	}
	q.Freeze()

	n := q.N()
	res := &Result{}
	// Size the memo from the closed-form admissible-set count so it never
	// rehashes mid-run: the memo stores at most one entry per admissible
	// set (the empty set lives out of line in the map). With a runtime
	// the memo and the arena are borrowed (and reset) instead of built,
	// so a worker recycles both across the queries of a batch.
	hint := int(cs.CountAdmissible())
	var memo *setmap.Map[entry]
	var arena *plan.Arena
	var spills *spillArena
	if opts.DisableArena {
		memo = setmap.New[entry](hint)
	} else {
		rt := opts.Runtime
		if rt == nil {
			rt = NewRuntime()
		}
		arena = rt.arena
		arena.Reset()
		rt.spills.reset()
		spills = &rt.spills
		memo = rt.memoFor(hint)
	}
	for t := 0; t < n; t++ {
		var sp *plan.Node
		if arena != nil {
			sp = arena.Scan(opts.Model, q, t)
		} else {
			sp = plan.Scan(opts.Model, q, t)
		}
		memo.Put(sp.Tables, entry{card: sp.Card, cardHi: sp.Card, f: FrontierOf(sp)})
		res.Stats.PlansKept++
	}
	w := &worker{q: q, cs: cs, opts: opts, memo: memo, arena: arena, spills: spills, res: res,
		robust: opts.Model.Second == cost.RobustCost}
	if cs.Space == partition.Bushy {
		w.splitter = cs.NewSplitter()
	}
	return &Engine{w: w, n: n}, nil
}

// ProcessSet treats one admissible join result: all admissible splits
// are tried and surviving plans stored in the memo. Sets must be
// processed in non-decreasing cardinality. It returns the work units
// (1 + splits tried) this set cost.
func (e *Engine) ProcessSet(u bitset.Set) uint64 {
	if e.w.opts.DisableCrossProducts && !e.w.q.Connected(u) {
		return 0
	}
	before := e.w.res.Stats.WorkUnits()
	e.w.trySplits(u)
	return e.w.res.Stats.WorkUnits() - before
}

// PlansFor returns the retained plans for table set u (nil if u is not
// in the memo) as a fresh slice. Plans may live in the engine's arena:
// they are valid for the engine's lifetime but must not be retained
// past it (Finish returns recycling-safe copies of the root plans).
func (e *Engine) PlansFor(u bitset.Set) []*plan.Node {
	ent, ok := e.w.memo.GetRef(u)
	if !ok {
		return nil
	}
	return ent.f.Slice()
}

// ForEachPlan calls fn for each retained plan of table set u, in
// frontier order, without allocating (the streaming form of PlansFor —
// the SMA driver reads every set's plans once per round through this).
func (e *Engine) ForEachPlan(u bitset.Set, fn func(*plan.Node)) {
	ent, ok := e.w.memo.GetRef(u)
	if !ok {
		return
	}
	for i, n := 0, ent.f.Len(); i < n; i++ {
		fn(ent.f.At(i))
	}
}

// MemoLen returns the number of table sets currently in the memo.
func (e *Engine) MemoLen() int { return e.w.memo.Len() }

// LimitExceeded reports whether the work meter has passed
// Options.MaxWorkUnits.
func (e *Engine) LimitExceeded() bool {
	return e.w.opts.MaxWorkUnits > 0 && e.w.res.Stats.WorkUnits() > e.w.opts.MaxWorkUnits
}

// Stats returns the cumulative work counters so far.
func (e *Engine) Stats() plan.Stats {
	s := e.w.res.Stats
	s.MemoEntries = uint64(e.w.memo.Len())
	return s
}

// Finish validates that a complete plan exists and returns the result.
// When the run allocated from an arena, the surviving root plans are
// deep-copied onto the heap: the Result then shares no memory with the
// engine, so a pooled Runtime can be recycled (and the arena's slabs
// are not pinned by a handful of returned plans).
func (e *Engine) Finish() (*Result, error) {
	q := e.w.q
	root, ok := e.w.memo.GetRef(q.All())
	if !ok || root.f.Len() == 0 {
		return nil, fmt.Errorf("dp: no complete plan found (n=%d, partition %s)", e.n, e.w.cs.Describe())
	}
	res := e.w.res
	res.Plans = root.f.Slice()
	if e.w.arena != nil {
		for i, p := range res.Plans {
			res.Plans[i] = plan.CloneTree(p)
		}
	}
	res.Stats.MemoEntries = uint64(e.w.memo.Len())
	return res, nil
}

// worker carries the per-run state of the split enumeration.
type worker struct {
	q        *query.Query
	cs       *partition.ConstraintSet
	opts     Options
	memo     *setmap.Map[entry]
	arena    *plan.Arena // nil iff Options.DisableArena
	spills   *spillArena // nil iff Options.DisableArena
	res      *Result
	splitter *partition.Splitter
	predBuf  []int
	// robust caches Model.Second == cost.RobustCost: candidate scalars
	// then come from plan.JoinScalarsRobust over the operands'
	// high-endpoint cardinalities.
	robust bool
	// scratch is the entry under construction. It lives in the worker —
	// not on trySplits' stack — because its frontier's address crosses
	// the Pruner interface, which would force a per-set heap escape.
	scratch entry
}

// trySplits generates and prunes all plans for join result u
// (Algorithm 5, both variants). The entry is assembled in the worker's
// scratch slot and stored by value once complete; memo entries are read
// through GetRef (no copy — the memo is presized and never rehashes
// mid-run, so the references stay put).
func (w *worker) trySplits(u bitset.Set) {
	w.res.Stats.SetsProcessed++
	e := &w.scratch
	e.card = -1
	e.f.reset()
	if w.cs.Space == partition.Linear {
		u.ForEach(func(t int) {
			if !w.cs.InnerAllowed(u, t) {
				return
			}
			rest := u.Remove(t)
			le, ok := w.memo.GetRef(rest)
			if !ok || le.f.Len() == 0 {
				return
			}
			re, _ := w.memo.GetRef(bitset.Single(t))
			w.combine(e, u, rest, bitset.Single(t), le, re)
		})
	} else {
		w.splitter.ForEachLeft(u, func(left bitset.Set) {
			right := u.Minus(left)
			le, lok := w.memo.GetRef(left)
			re, rok := w.memo.GetRef(right)
			if !lok || !rok || le.f.Len() == 0 || re.f.Len() == 0 {
				return
			}
			w.combine(e, u, left, right, le, re)
		})
	}
	if e.f.Len() > 0 {
		stored := *e
		if len(stored.f.spill) > 0 {
			// The scratch frontier keeps its spill array for the next set,
			// so the memo's copy gets its own exact-size region — from the
			// runtime's recyclable spill slabs when available.
			if w.spills != nil {
				stored.f.spill = w.spills.clone(e.f.spill)
			} else {
				stored.f.spill = append([]*plan.Node(nil), e.f.spill...)
			}
		}
		w.memo.Put(u, stored)
	}
}

// combine generates candidate plans for every operand-plan pair and join
// algorithm of the split (left, right) and offers them to the pruner.
func (w *worker) combine(e *entry, u, left, right bitset.Set, le, re *entry) {
	w.res.Stats.SplitsTried++
	if e.card < 0 {
		e.card = le.card * re.card * w.q.SelBetween(left, right)
		e.cardHi = e.card
		if w.robust {
			e.cardHi = le.cardHi * re.cardHi *
				w.q.SelBetweenInflated(left, right, w.opts.Model.RobustBand)
		}
	}
	w.predBuf = w.q.ConnectingPreds(w.predBuf[:0], left, right)
	preds := w.predBuf
	hasPred := len(preds) > 0

	for li, ln := 0, le.f.Len(); li < ln; li++ {
		lp := le.f.At(li)
		for ri, rn := 0, re.f.Len(); ri < rn; ri++ {
			rp := re.f.At(ri)
			// Nested-loop join: preserves the outer order.
			w.offer(e, lp, rp, le, re, plan.JoinSpec{
				Alg: cost.NestedLoop, OutCard: e.card, Pred: plan.NoPred, Order: lp.Order,
			})
			// Hash join: order destroyed.
			w.offer(e, lp, rp, le, re, plan.JoinSpec{
				Alg: cost.Hash, OutCard: e.card, Pred: plan.NoPred, Order: query.NoOrder,
			})
			// Sort-merge join: needs a merge predicate.
			if !hasPred {
				continue
			}
			if !w.opts.InterestingOrders {
				w.offer(e, lp, rp, le, re, plan.JoinSpec{
					Alg: cost.SortMerge, OutCard: e.card, Pred: plan.NoPred, Order: query.NoOrder,
				})
				continue
			}
			for _, pi := range preds {
				p := w.q.Preds[pi]
				la, ra := plan.MergeAttrs(p, left)
				order := plan.CanonicalMergeOrder(p)
				w.offer(e, lp, rp, le, re, plan.JoinSpec{
					Alg: cost.SortMerge, OutCard: e.card, Pred: pi, Order: order,
					LSorted: lp.Order == la, RSorted: rp.Order == ra,
				})
			}
		}
	}
}

// offer evaluates one candidate join cost-first: the scalar annotations
// are computed without building a node and checked against the pruner;
// only admitted candidates are materialized — from the arena's slabs,
// so survivors cost no individual heap allocation either. Pruned
// candidates cost zero heap allocations.
func (w *worker) offer(e *entry, lp, rp *plan.Node, le, re *entry, spec plan.JoinSpec) {
	var c, buf float64
	if w.robust {
		c, buf = plan.JoinScalarsRobust(w.opts.Model, lp, rp, spec, le.cardHi, re.cardHi)
	} else {
		c, buf = plan.JoinScalars(w.opts.Model, lp, rp, spec)
	}
	if !w.opts.Pruner.Admits(&e.f, Candidate{Cost: c, Buffer: buf, Order: spec.Order}) {
		w.res.Stats.PlansPruned++
		return
	}
	var p *plan.Node
	if w.arena != nil {
		p = w.arena.JoinWithScalars(lp, rp, spec, c, buf)
	} else {
		p = plan.JoinWithScalars(lp, rp, spec, c, buf)
	}
	w.opts.Pruner.Insert(&e.f, p)
	w.res.Stats.PlansKept++
}

// Serial runs the classical (unpartitioned) dynamic program for the given
// plan space — the single-worker baseline all speedups are measured
// against (§6.2).
func Serial(q *query.Query, space partition.Space, opts Options) (*Result, error) {
	return Run(q, partition.Unconstrained(space, q.N()), opts)
}
