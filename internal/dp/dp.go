// Package dp implements the dynamic-programming plan search executed by
// each worker (Algorithm 2): Selinger-style enumeration of admissible join
// results in ascending cardinality, trying all admissible operand splits
// and pruning dominated plans.
//
// The engine is parameterized by a Pruner, mirroring the paper's
// observation (§4) that single-objective, multi-objective and parametric
// query optimization share the same dynamic-programming scheme and differ
// only in the pruning function. Running the engine on the unconstrained
// partition with one worker reproduces the classical serial algorithm
// ([17] for left-deep, [25] for bushy spaces).
package dp

import (
	"errors"
	"fmt"

	"mpq/internal/bitset"
	"mpq/internal/cost"
	"mpq/internal/partition"
	"mpq/internal/plan"
	"mpq/internal/query"
	"mpq/internal/setmap"
)

// Pruner decides which plans to retain per table set. Insert offers p to
// the retained set and returns the updated slice plus whether p survived.
// Implementations must keep the invariant that no retained plan dominates
// another (for their notion of dominance).
type Pruner interface {
	Insert(plans []*plan.Node, p *plan.Node) ([]*plan.Node, bool)
}

// SingleBest retains exactly one plan: the cheapest by the time metric.
// This is the classical pruning function of [17] without interesting
// orders.
type SingleBest struct{}

// Insert implements Pruner.
func (SingleBest) Insert(plans []*plan.Node, p *plan.Node) ([]*plan.Node, bool) {
	if len(plans) == 0 {
		return append(plans, p), true
	}
	if p.Cost < plans[0].Cost {
		plans[0] = p
		return plans, true
	}
	return plans, false
}

// OrderAware retains the cheapest plan per distinct output order: a plan
// is dominated iff another plan is at most as expensive and produces the
// same tuples in the same (or a strictly more useful) order — the
// comparison the paper's Prune function performs [17].
type OrderAware struct{}

// orderDominates reports whether a plan with order qo can substitute for
// one with order po in any context: equal orders always can, and any
// order can substitute for "no order" (sortedness only ever reduces
// downstream cost).
func orderDominates(qo, po int) bool {
	return qo == po || po == query.NoOrder
}

// Insert implements Pruner.
func (OrderAware) Insert(plans []*plan.Node, p *plan.Node) ([]*plan.Node, bool) {
	for _, q := range plans {
		if q.Cost <= p.Cost && orderDominates(q.Order, p.Order) {
			return plans, false
		}
	}
	// p survives; evict plans it dominates.
	out := plans[:0]
	for _, q := range plans {
		if !(p.Cost <= q.Cost && orderDominates(p.Order, q.Order)) {
			out = append(out, q)
		}
	}
	return append(out, p), true
}

// Options configures one dynamic-programming run.
type Options struct {
	// Model is the cost model; zero value is replaced by cost.Default().
	Model cost.Model
	// Pruner defaults to SingleBest.
	Pruner Pruner
	// InterestingOrders enables sort-order tracking: sort-merge joins
	// produce ordered output and pre-sorted inputs skip sort passes.
	// Off by default, matching the paper's complexity analysis (§5).
	InterestingOrders bool
	// DisableCrossProducts heuristically skips disconnected join results
	// (an ablation switch; the paper deliberately allows cross products).
	DisableCrossProducts bool
	// MaxWorkUnits aborts the search once the work meter exceeds this
	// bound (0 = unlimited). Used by time-budgeted experiments
	// (Table 1): work is deterministic, so exceeding the unit budget is
	// exactly "the time budget ran out".
	MaxWorkUnits uint64
}

func (o Options) withDefaults() Options {
	if o.Model == (cost.Model{}) {
		o.Model = cost.Default()
	}
	if o.Pruner == nil {
		o.Pruner = SingleBest{}
	}
	return o
}

// Result is the outcome of searching one plan-space partition.
type Result struct {
	// Plans holds the retained plans for the full query: exactly one for
	// SingleBest, one per useful order for OrderAware, a Pareto frontier
	// for multi-objective pruners. Empty only if the partition admits no
	// complete plan (cannot happen for valid partitions).
	Plans []*plan.Node
	// Stats is the work and memory accounting for this run.
	Stats plan.Stats
}

// Best returns the cheapest plan by the time metric (the master-side
// FinalPrune for single-objective optimization).
func (r *Result) Best() *plan.Node {
	var best *plan.Node
	for _, p := range r.Plans {
		if best == nil || p.Cost < best.Cost {
			best = p
		}
	}
	return best
}

// entry is the memo record for one table set.
type entry struct {
	card  float64
	plans []*plan.Node
}

// Run searches the plan-space partition cs of query q and returns the
// retained plans for the full query set (Algorithm 2). cs determines the
// plan space (Linear or Bushy) and the join-order constraints; use
// partition.Unconstrained for the classical serial algorithm.
func Run(q *query.Query, cs *partition.ConstraintSet, opts Options) (*Result, error) {
	eng, err := NewEngine(q, cs, opts)
	if err != nil {
		return nil, err
	}
	n := q.N()
	byCard := cs.AdmissibleSets()
	for k := 2; k <= n; k++ {
		for _, u := range byCard[k] {
			eng.ProcessSet(u)
			if eng.LimitExceeded() {
				return nil, fmt.Errorf("%w after %d units", ErrWorkLimit, eng.Stats().WorkUnits())
			}
		}
	}
	return eng.Finish()
}

// ErrWorkLimit is returned when Options.MaxWorkUnits is exceeded.
var ErrWorkLimit = errors.New("dp: work limit exceeded")

// Engine exposes the dynamic program one table set at a time, so that
// schedulers other than the straight Algorithm 2 loop — in particular
// the SMA baseline, which assigns sets to workers in rounds — drive the
// exact same plan generation and pruning logic.
type Engine struct {
	w *worker
	n int
}

// NewEngine validates the inputs and initializes the memo with scan
// plans for every table.
func NewEngine(q *query.Query, cs *partition.ConstraintSet, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Model.Validate(); err != nil {
		return nil, err
	}
	if cs.N != q.N() {
		return nil, fmt.Errorf("dp: constraint set is for %d tables, query has %d", cs.N, q.N())
	}
	q.Freeze()

	n := q.N()
	res := &Result{}
	memo := setmap.New[*entry](int(cs.CountAdmissible()))
	for t := 0; t < n; t++ {
		sp := plan.Scan(opts.Model, q, t)
		memo.Put(sp.Tables, &entry{card: sp.Card, plans: []*plan.Node{sp}})
		res.Stats.PlansKept++
	}
	w := &worker{q: q, cs: cs, opts: opts, memo: memo, res: res}
	if cs.Space == partition.Bushy {
		w.splitter = cs.NewSplitter()
	}
	return &Engine{w: w, n: n}, nil
}

// ProcessSet treats one admissible join result: all admissible splits
// are tried and surviving plans stored in the memo. Sets must be
// processed in non-decreasing cardinality. It returns the work units
// (1 + splits tried) this set cost.
func (e *Engine) ProcessSet(u bitset.Set) uint64 {
	if e.w.opts.DisableCrossProducts && !e.w.q.Connected(u) {
		return 0
	}
	before := e.w.res.Stats.WorkUnits()
	e.w.trySplits(u)
	return e.w.res.Stats.WorkUnits() - before
}

// PlansFor returns the retained plans for table set u (nil if u is not
// in the memo). The caller must not mutate the slice.
func (e *Engine) PlansFor(u bitset.Set) []*plan.Node {
	ent, ok := e.w.memo.Get(u)
	if !ok {
		return nil
	}
	return ent.plans
}

// MemoLen returns the number of table sets currently in the memo.
func (e *Engine) MemoLen() int { return e.w.memo.Len() }

// LimitExceeded reports whether the work meter has passed
// Options.MaxWorkUnits.
func (e *Engine) LimitExceeded() bool {
	return e.w.opts.MaxWorkUnits > 0 && e.w.res.Stats.WorkUnits() > e.w.opts.MaxWorkUnits
}

// Stats returns the cumulative work counters so far.
func (e *Engine) Stats() plan.Stats {
	s := e.w.res.Stats
	s.MemoEntries = uint64(e.w.memo.Len())
	return s
}

// Finish validates that a complete plan exists and returns the result.
func (e *Engine) Finish() (*Result, error) {
	q := e.w.q
	root, ok := e.w.memo.Get(q.All())
	if !ok || len(root.plans) == 0 {
		return nil, fmt.Errorf("dp: no complete plan found (n=%d, partition %s)", e.n, e.w.cs.Describe())
	}
	res := e.w.res
	res.Plans = root.plans
	res.Stats.MemoEntries = uint64(e.w.memo.Len())
	return res, nil
}

// worker carries the per-run state of the split enumeration.
type worker struct {
	q        *query.Query
	cs       *partition.ConstraintSet
	opts     Options
	memo     *setmap.Map[*entry]
	res      *Result
	splitter *partition.Splitter
	predBuf  []int
}

// trySplits generates and prunes all plans for join result u
// (Algorithm 5, both variants).
func (w *worker) trySplits(u bitset.Set) {
	w.res.Stats.SetsProcessed++
	e := &entry{card: -1}
	if w.cs.Space == partition.Linear {
		u.ForEach(func(t int) {
			if !w.cs.InnerAllowed(u, t) {
				return
			}
			rest := u.Remove(t)
			le, ok := w.memo.Get(rest)
			if !ok || len(le.plans) == 0 {
				return
			}
			re, _ := w.memo.Get(bitset.Single(t))
			w.combine(e, u, rest, bitset.Single(t), le, re)
		})
	} else {
		w.splitter.ForEachLeft(u, func(left bitset.Set) {
			right := u.Minus(left)
			le, lok := w.memo.Get(left)
			re, rok := w.memo.Get(right)
			if !lok || !rok || len(le.plans) == 0 || len(re.plans) == 0 {
				return
			}
			w.combine(e, u, left, right, le, re)
		})
	}
	if len(e.plans) > 0 {
		w.memo.Put(u, e)
	}
}

// combine generates plans for every operand-plan pair and join algorithm
// of the split (left, right) and offers them to the pruner.
func (w *worker) combine(e *entry, u, left, right bitset.Set, le, re *entry) {
	w.res.Stats.SplitsTried++
	if e.card < 0 {
		e.card = le.card * re.card * w.q.SelBetween(left, right)
	}
	w.predBuf = w.q.ConnectingPreds(w.predBuf[:0], left, right)
	preds := w.predBuf
	hasPred := len(preds) > 0

	for _, lp := range le.plans {
		for _, rp := range re.plans {
			// Nested-loop join: preserves the outer order.
			w.offer(e, plan.Join(w.opts.Model, lp, rp, plan.JoinSpec{
				Alg: cost.NestedLoop, OutCard: e.card, Pred: plan.NoPred, Order: lp.Order,
			}))
			// Hash join: order destroyed.
			w.offer(e, plan.Join(w.opts.Model, lp, rp, plan.JoinSpec{
				Alg: cost.Hash, OutCard: e.card, Pred: plan.NoPred, Order: query.NoOrder,
			}))
			// Sort-merge join: needs a merge predicate.
			if !hasPred {
				continue
			}
			if !w.opts.InterestingOrders {
				w.offer(e, plan.Join(w.opts.Model, lp, rp, plan.JoinSpec{
					Alg: cost.SortMerge, OutCard: e.card, Pred: plan.NoPred, Order: query.NoOrder,
				}))
				continue
			}
			for _, pi := range preds {
				p := w.q.Preds[pi]
				la, ra := plan.MergeAttrs(p, left)
				order := plan.CanonicalMergeOrder(p)
				w.offer(e, plan.Join(w.opts.Model, lp, rp, plan.JoinSpec{
					Alg: cost.SortMerge, OutCard: e.card, Pred: pi, Order: order,
					LSorted: lp.Order == la, RSorted: rp.Order == ra,
				}))
			}
		}
	}
}

func (w *worker) offer(e *entry, p *plan.Node) {
	var kept bool
	e.plans, kept = w.opts.Pruner.Insert(e.plans, p)
	if kept {
		w.res.Stats.PlansKept++
	} else {
		w.res.Stats.PlansPruned++
	}
}

// Serial runs the classical (unpartitioned) dynamic program for the given
// plan space — the single-worker baseline all speedups are measured
// against (§6.2).
func Serial(q *query.Query, space partition.Space, opts Options) (*Result, error) {
	return Run(q, partition.Unconstrained(space, q.N()), opts)
}
