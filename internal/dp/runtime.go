package dp

import (
	"mpq/internal/plan"
	"mpq/internal/setmap"
)

// Runtime bundles the reusable per-run memory of one DP worker: the
// plan-node arena survivors are allocated from and the memo table. A
// fresh run borrows both through Options.Runtime instead of growing
// them from scratch, so a worker that optimizes a stream of queries —
// the in-process engine's goroutine pool, a long-lived TCP worker —
// reaches a steady state where the dynamic program performs (almost) no
// heap allocation at all: candidates were already free (PR 1),
// survivors come out of recycled slabs, and the memo reuses its
// capacity.
//
// A Runtime may back at most one engine at a time: NewEngine resets the
// arena and memo, invalidating every node of the previous run. The
// engine's Finish therefore deep-copies the surviving root plans out of
// the arena (plan.CloneTree) before returning them, which is what makes
// pooling runtimes safe — a returned Result never references runtime
// memory.
//
// Not safe for concurrent use; pool Runtimes (sync.Pool) to share them
// across goroutine workers.
type Runtime struct {
	arena  *plan.Arena
	memo   *setmap.Map[entry]
	spills spillArena
}

// NewRuntime returns an empty runtime; the arena and memo grow on
// first use and are recycled afterwards.
func NewRuntime() *Runtime { return &Runtime{arena: plan.NewArena()} }

// memoFor returns the runtime's memo reset for a run of sizeHint
// entries, building it on first use. Reused backing arrays may be
// larger than a fresh map's ("stale capacity"); setmap.Reset documents
// the iteration-order consequences.
func (rt *Runtime) memoFor(sizeHint int) *setmap.Map[entry] {
	if rt.memo == nil {
		rt.memo = setmap.New[entry](sizeHint)
	} else {
		rt.memo.Reset(sizeHint)
	}
	return rt.memo
}

// Arena exposes the runtime's arena for tests that assert slab
// recycling.
func (rt *Runtime) Arena() *plan.Arena { return rt.arena }

// spillSlabLen is the pointer count per spill slab (8 KiB of plan
// pointers).
const spillSlabLen = 1024

// spillArena hands out the memo's spilled-frontier storage from
// contiguous, recyclable slabs, mirroring what plan.Arena does for
// nodes: most table sets keep ≤ frontierInline plans and never touch
// it, but order-aware and multi-objective runs spill often enough that
// per-set spill slices would dominate the steady-state allocation
// count.
type spillArena struct {
	slabs [][]*plan.Node
	si    int // slab currently being carved
	used  int // pointers handed out from slabs[si]
}

// clone copies src into a fresh region. The region's capacity is
// clamped to its length, so an append to the copy can never run into a
// neighbouring region.
func (a *spillArena) clone(src []*plan.Node) []*plan.Node {
	n := len(src)
	if n > spillSlabLen { // degenerate frontier wider than a slab
		out := make([]*plan.Node, n)
		copy(out, src)
		return out
	}
	for {
		if a.si < len(a.slabs) {
			if slab := a.slabs[a.si]; a.used+n <= len(slab) {
				out := slab[a.used : a.used+n : a.used+n]
				a.used += n
				copy(out, src)
				return out
			}
			a.si++ // tail too small; waste it and carve the next slab
			a.used = 0
			continue
		}
		a.slabs = append(a.slabs, make([]*plan.Node, spillSlabLen))
	}
}

// reset recycles every slab; regions handed out so far are invalidated.
func (a *spillArena) reset() { a.si, a.used = 0, 0 }
