package dp

import (
	"fmt"
	"testing"

	"mpq/internal/partition"
	"mpq/internal/plan"
	"mpq/internal/workload"
)

// planKey renders everything a wire fingerprint would capture: tree
// shape, algorithms, predicates and the scalar annotations.
func planKey(p *plan.Node) string {
	return fmt.Sprintf("%s|card=%b|cost=%b|buf=%b|ord=%d", p, p.Card, p.Cost, p.Buffer, p.Order)
}

// Arena-backed runs must be bit-identical to heap-backed runs — same
// plans, same scalars, same work counters — including when one Runtime
// is reused across queries of different sizes and spaces, so its memo
// carries stale capacity and its arena recycled slabs.
func TestArenaOnOffBitIdentical(t *testing.T) {
	rt := NewRuntime()
	cases := []struct {
		n     int
		shape workload.Shape
		space partition.Space
		opts  Options
	}{
		{11, workload.Star, partition.Linear, Options{}}, // big first: leaves stale capacity behind
		{7, workload.Chain, partition.Bushy, Options{}},  // smaller, different space, stale memo
		{8, workload.Cycle, partition.Linear, Options{InterestingOrders: true, Pruner: OrderAware{}}},
		{7, workload.Clique, partition.Bushy, Options{}},
		{9, workload.Snowflake, partition.Linear, Options{}},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%v-%v-n%d", tc.shape, tc.space, tc.n), func(t *testing.T) {
			q := genQuery(t, tc.n, tc.shape, 3)
			cs := partition.Unconstrained(tc.space, tc.n)

			off := tc.opts
			off.DisableArena = true
			want, err := Run(q, cs, off)
			if err != nil {
				t.Fatal(err)
			}

			on := tc.opts
			on.Runtime = rt // shared and reused across all cases
			got, err := Run(q, cs, on)
			if err != nil {
				t.Fatal(err)
			}

			if got.Stats != want.Stats {
				t.Fatalf("stats differ:\narena %+v\nheap  %+v", got.Stats, want.Stats)
			}
			if len(got.Plans) != len(want.Plans) {
				t.Fatalf("plan count %d != %d", len(got.Plans), len(want.Plans))
			}
			for i := range got.Plans {
				g, w := planKey(got.Plans[i]), planKey(want.Plans[i])
				if g != w {
					t.Fatalf("plan %d differs:\narena %s\nheap  %s", i, g, w)
				}
			}
		})
	}
}

// Finished results must not reference runtime memory: recycling the
// runtime for another (different) query must leave earlier plans
// untouched.
func TestResultSurvivesRuntimeRecycling(t *testing.T) {
	rt := NewRuntime()
	q1 := genQuery(t, 9, workload.Star, 1)
	res, err := Run(q1, partition.Unconstrained(partition.Linear, 9), Options{Runtime: rt})
	if err != nil {
		t.Fatal(err)
	}
	want := planKey(res.Best())

	// Recycle the runtime with other queries, overwriting every slab.
	for seed := int64(0); seed < 3; seed++ {
		q2 := genQuery(t, 10, workload.Clique, seed)
		if _, err := Run(q2, partition.Unconstrained(partition.Bushy, 10), Options{Runtime: rt}); err != nil {
			t.Fatal(err)
		}
	}

	if got := planKey(res.Best()); got != want {
		t.Fatalf("earlier result mutated by runtime recycling:\nbefore %s\nafter  %s", want, got)
	}
	if err := res.Best().Validate(q1, Options{}.withDefaults().Model); err != nil {
		t.Fatalf("recycled-over plan fails validation: %v", err)
	}
}

// A reused runtime brings repeated runs to a near-zero-allocation
// steady state: bookkeeping and the cloned root plans only — nothing
// proportional to the number of sets, splits or survivors.
func TestRuntimeReuseSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name  string
		space partition.Space
		opts  Options
	}{
		{"Linear-SingleBest", partition.Linear, Options{}},
		{"Bushy-SingleBest", partition.Bushy, Options{}},
		{"Linear-OrderAware", partition.Linear, Options{InterestingOrders: true, Pruner: OrderAware{}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			q := genQuery(t, 10, workload.Star, 0)
			cs := partition.Unconstrained(tc.space, 10)
			rt := NewRuntime()
			opts := tc.opts
			opts.Runtime = rt
			var plans int
			run := func() {
				res, err := Run(q, cs, opts)
				if err != nil {
					t.Fatal(err)
				}
				plans = len(res.Plans)
			}
			run() // warm: slabs and memo sized by the first run
			allocs := testing.AllocsPerRun(10, run)
			// Budget: engine/worker/result structs, enumerator, splitter,
			// predicate buffer, and the root frontier's escape from the
			// arena — one clone (2n−1 nodes) per retained root plan.
			// Nothing may scale with the number of sets, splits or
			// interior survivors (hundreds to thousands here before the
			// runtime existed).
			budget := float64(60 + plans*(2*10-1))
			if allocs > budget {
				t.Errorf("steady-state run allocates %.0f times (budget %.0f, %d root plans)", allocs, budget, plans)
			}
		})
	}
}
