package dp

import (
	"testing"

	"mpq/internal/bitset"
	"mpq/internal/cost"
	"mpq/internal/partition"
	"mpq/internal/plan"
	"mpq/internal/query"
	"mpq/internal/workload"
)

// Admission is called once per generated candidate — the optimizer's
// hottest path — and must never allocate.
func TestAdmitsAllocFree(t *testing.T) {
	q := genQuery(t, 4, workload.Star, 0)
	a := plan.Scan(cost.Default(), q, 0)
	b := plan.Scan(cost.Default(), q, 1)
	f := FrontierOf(a, b)
	cand := Candidate{Cost: a.Cost * 2, Buffer: a.Buffer, Order: query.NoOrder}
	var sink bool
	for _, pr := range []Pruner{SingleBest{}, OrderAware{}} {
		if allocs := testing.AllocsPerRun(1000, func() { sink = pr.Admits(&f, cand) }); allocs != 0 {
			t.Errorf("%T.Admits allocates %.1f times per call", pr, allocs)
		}
	}
	_ = sink
}

// Computing a candidate's scalars must not allocate either: together
// with Admits this makes the whole pruned-candidate path free.
func TestJoinScalarsAllocFree(t *testing.T) {
	q := genQuery(t, 4, workload.Star, 0)
	m := cost.Default()
	l, r := plan.Scan(m, q, 0), plan.Scan(m, q, 1)
	spec := plan.JoinSpec{Alg: cost.Hash, OutCard: 100, Pred: plan.NoPred, Order: query.NoOrder}
	var c, b float64
	if allocs := testing.AllocsPerRun(1000, func() { c, b = plan.JoinScalars(m, l, r, spec) }); allocs != 0 {
		t.Errorf("JoinScalars allocates %.1f times per call", allocs)
	}
	_, _ = c, b
}

// End-to-end allocation regression for the DP inner loop: treating a
// join result allocates for the memo entry and the kept plans only —
// nothing per pruned candidate.
func TestProcessSetPrunedCandidatesAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"SingleBest", Options{}},
		{"OrderAware", Options{InterestingOrders: true, Pruner: OrderAware{}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			q := genQuery(t, 12, workload.Star, 0)
			cs := partition.Unconstrained(partition.Linear, 12)
			eng, err := NewEngine(q, cs, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			enum := cs.NewEnumerator()
			for k := 2; k < 12; k++ {
				enum.ForEachAdmissible(k, func(u bitset.Set) bool {
					eng.ProcessSet(u)
					return true
				})
			}
			// Re-processing the full set replaces its memo entry; the
			// sub-plans it combines are unchanged, so every run generates
			// the same candidates and keeps the same number of plans.
			all := q.All()
			before := eng.Stats()
			eng.ProcessSet(all)
			after := eng.Stats()
			kept := after.PlansKept - before.PlansKept
			pruned := after.PlansPruned - before.PlansPruned
			if pruned < 10 {
				t.Fatalf("only %d pruned candidates; measurement would be vacuous", pruned)
			}
			allocs := testing.AllocsPerRun(20, func() { eng.ProcessSet(all) })
			// Budget: the memo entry, a few slice growths for the retained
			// plans, and one node per kept plan. Anything scaling with
			// pruned (here %d ≫ kept) would blow this bound.
			budget := float64(kept) + 5
			if allocs > budget {
				t.Fatalf("ProcessSet allocates %.1f times per run (kept=%d, pruned=%d, budget=%.0f): pruned candidates are not allocation-free",
					allocs, kept, pruned, budget)
			}
		})
	}
}
