package dp

import (
	"testing"

	"mpq/internal/plan"
)

func fp(cost float64) *plan.Node { return &plan.Node{Cost: cost} }

// The frontier must behave like a plain ordered list across the
// inline→spill boundary: Append/At/Set/Filter agree with a reference
// slice for every transition size.
func TestFrontierMatchesReferenceSlice(t *testing.T) {
	for size := 0; size <= 2*frontierInline+1; size++ {
		var f Frontier
		var ref []*plan.Node
		for i := 0; i < size; i++ {
			p := fp(float64(i))
			f.Append(p)
			ref = append(ref, p)
		}
		if f.Len() != len(ref) {
			t.Fatalf("size %d: Len = %d", size, f.Len())
		}
		for i, p := range ref {
			if f.At(i) != p {
				t.Fatalf("size %d: At(%d) mismatch", size, i)
			}
		}
		got := f.Slice()
		if len(got) != len(ref) {
			t.Fatalf("size %d: Slice len %d", size, len(got))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("size %d: Slice[%d] mismatch", size, i)
			}
		}

		// Filter to the odd-cost plans, preserving order.
		f.Filter(func(p *plan.Node) bool { return int(p.Cost)%2 == 1 })
		var want []*plan.Node
		for _, p := range ref {
			if int(p.Cost)%2 == 1 {
				want = append(want, p)
			}
		}
		if f.Len() != len(want) {
			t.Fatalf("size %d: filtered Len = %d want %d", size, f.Len(), len(want))
		}
		for i, p := range want {
			if f.At(i) != p {
				t.Fatalf("size %d: filtered At(%d) mismatch", size, i)
			}
		}

		// Appending after a filter must not disturb surviving plans.
		extra := fp(1000)
		f.Append(extra)
		if f.At(f.Len()-1) != extra {
			t.Fatal("append after filter lost the new plan")
		}
	}
}

func TestFrontierSetReplaces(t *testing.T) {
	a, b, c, d := fp(1), fp(2), fp(3), fp(4)
	f := FrontierOf(a, b, c)
	f.Set(0, d)
	f.Set(2, a)
	if f.At(0) != d || f.At(1) != b || f.At(2) != a {
		t.Fatalf("Set misplaced plans: %v %v %v", f.At(0), f.At(1), f.At(2))
	}
}

// Filter to empty must release the retained plans (no stale inline
// pointers pinning evicted nodes) and leave a reusable frontier.
func TestFrontierFilterToEmpty(t *testing.T) {
	f := FrontierOf(fp(1), fp(2), fp(3))
	f.Filter(func(*plan.Node) bool { return false })
	if f.Len() != 0 {
		t.Fatalf("Len after empty filter = %d", f.Len())
	}
	for i := range f.inline {
		if f.inline[i] != nil {
			t.Fatalf("inline slot %d not released", i)
		}
	}
	if f.Slice() != nil {
		t.Fatal("Slice of empty frontier should be nil")
	}
	f.Append(fp(9))
	if f.Len() != 1 || f.At(0).Cost != 9 {
		t.Fatal("frontier unusable after empty filter")
	}
}

// An inline-resident frontier performs no heap allocation for Append or
// Filter — the point of the 2-slot inline storage.
func TestFrontierInlineAllocFree(t *testing.T) {
	a, b := fp(1), fp(2)
	var f Frontier
	allocs := testing.AllocsPerRun(1000, func() {
		f.reset()
		f.Append(a)
		f.Append(b)
		f.Filter(func(p *plan.Node) bool { return p.Cost < 2 })
	})
	if allocs != 0 {
		t.Errorf("inline frontier allocates %.1f times per run", allocs)
	}
}

// The spill arena must hand back copies that cannot alias each other or
// the scratch frontier: appending to the source after a clone, or
// cloning again, must leave earlier clones untouched — this is what
// protects memo entries from the worker's scratch reuse.
func TestSpillArenaCloneIsolation(t *testing.T) {
	var sa spillArena
	var f Frontier
	for i := 0; i < frontierInline+2; i++ {
		f.Append(fp(float64(i)))
	}
	stored := f
	stored.spill = sa.clone(f.spill)

	f.reset()
	for i := 0; i < frontierInline+3; i++ {
		f.Append(fp(float64(100 + i)))
	}
	other := f
	other.spill = sa.clone(f.spill)

	if got := stored.At(frontierInline).Cost; got != frontierInline {
		t.Fatalf("stored copy mutated through scratch reuse: spill[0] cost = %g", got)
	}
	if got := other.At(frontierInline + 2).Cost; got != 100+frontierInline+2 {
		t.Fatalf("second clone wrong: %g", got)
	}
	// A clone's capacity is clamped: appending must not overwrite the
	// neighbouring region.
	grown := stored
	grown.Append(fp(-1))
	if got := other.At(frontierInline).Cost; got != 102 {
		t.Fatalf("append to one clone scribbled over another: %g", got)
	}

	// Oversized frontiers fall back to a dedicated allocation.
	big := make([]*plan.Node, spillSlabLen+5)
	for i := range big {
		big[i] = fp(float64(i))
	}
	got := sa.clone(big)
	if len(got) != len(big) || got[len(got)-1].Cost != float64(spillSlabLen+4) {
		t.Fatal("oversized clone wrong")
	}

	// Reset recycles regions: same-size clones after reset add no slab.
	slabs := len(sa.slabs)
	sa.reset()
	sa.clone(f.spill)
	if len(sa.slabs) != slabs {
		t.Fatalf("reset did not recycle spill slabs: %d != %d", len(sa.slabs), slabs)
	}
}
