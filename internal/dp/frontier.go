package dp

import "mpq/internal/plan"

// frontierInline is the number of plans a Frontier stores without
// touching the heap. Single-objective pruning retains exactly one plan
// per table set and order-aware pruning rarely more than two, so two
// inline slots eliminate the per-table-set slice allocation for the
// dominant case; multi-objective frontiers spill.
const frontierInline = 2

// Frontier is the per-table-set store of retained plans, in insertion
// order. The first frontierInline plans live inline in the value (no
// heap allocation), further plans spill to a slice. The zero value is
// an empty frontier.
//
// A Frontier is a value type so the memo can embed it directly in its
// entries; copies share the spill slice, so after copying only one of
// the copies may keep mutating (the DP builds each entry once and then
// only reads it).
type Frontier struct {
	n      int
	inline [frontierInline]*plan.Node
	spill  []*plan.Node
}

// FrontierOf builds a frontier holding the given plans, in order.
func FrontierOf(plans ...*plan.Node) Frontier {
	var f Frontier
	for _, p := range plans {
		f.Append(p)
	}
	return f
}

// Len returns the number of retained plans.
func (f *Frontier) Len() int { return f.n }

// At returns the i-th retained plan (0 ≤ i < Len).
func (f *Frontier) At(i int) *plan.Node {
	if i < frontierInline {
		return f.inline[i]
	}
	return f.spill[i-frontierInline]
}

// Set replaces the i-th retained plan (0 ≤ i < Len).
func (f *Frontier) Set(i int, p *plan.Node) {
	if i < frontierInline {
		f.inline[i] = p
		return
	}
	f.spill[i-frontierInline] = p
}

// Append adds p after the retained plans.
func (f *Frontier) Append(p *plan.Node) {
	if f.n < frontierInline {
		f.inline[f.n] = p
	} else {
		f.spill = append(f.spill, p)
	}
	f.n++
}

// Filter retains, in order, exactly the plans keep reports true for —
// the eviction primitive Insert implementations compact the frontier
// with. It never allocates.
func (f *Frontier) Filter(keep func(*plan.Node) bool) {
	w := 0
	for i := 0; i < f.n; i++ {
		p := f.At(i)
		if keep(p) {
			f.Set(w, p)
			w++
		}
	}
	// Drop evicted plans from the live region — inline and spilled — so
	// the frontier does not pin them.
	for i := w; i < f.n && i < frontierInline; i++ {
		f.inline[i] = nil
	}
	if w > frontierInline {
		clear(f.spill[w-frontierInline:])
		f.spill = f.spill[:w-frontierInline]
	} else if f.spill != nil {
		clear(f.spill)
		f.spill = f.spill[:0]
	}
	f.n = w
}

// reset empties the frontier for reuse, keeping any spill capacity it
// still owns.
func (f *Frontier) reset() {
	for i := range f.inline {
		f.inline[i] = nil
	}
	f.n = 0
	if f.spill != nil {
		f.spill = f.spill[:0]
	}
}

// Slice returns the retained plans as a freshly allocated slice.
func (f *Frontier) Slice() []*plan.Node {
	if f.n == 0 {
		return nil
	}
	out := make([]*plan.Node, f.n)
	for i := range out {
		out[i] = f.At(i)
	}
	return out
}
