package dp

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"mpq/internal/brute"
	"mpq/internal/cost"
	"mpq/internal/partition"
	"mpq/internal/plan"
	"mpq/internal/query"
	"mpq/internal/workload"
)

const costEps = 1e-9

func approx(a, b float64) bool {
	return math.Abs(a-b) <= costEps*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func genQuery(t testing.TB, n int, shape workload.Shape, seed int64) *query.Query {
	t.Helper()
	return workload.MustGenerate(workload.NewParams(n, shape), seed)
}

func TestSerialMatchesBruteForceLinear(t *testing.T) {
	for _, shape := range workload.Shapes {
		for seed := int64(0); seed < 4; seed++ {
			q := genQuery(t, 6, shape, seed)
			for _, orders := range []bool{false, true} {
				res, err := Serial(q, partition.Linear, Options{
					InterestingOrders: orders,
					Pruner:            prunerFor(orders),
				})
				if err != nil {
					t.Fatal(err)
				}
				got := res.Best().Cost
				want := brute.BestCost(q, partition.Linear, brute.Options{InterestingOrders: orders})
				if !approx(got, want) {
					t.Fatalf("%v seed=%d orders=%v: DP cost %g, brute force %g", shape, seed, orders, got, want)
				}
				if !res.Best().IsLeftDeep() {
					t.Fatalf("linear DP returned bushy plan %v", res.Best())
				}
				if err := res.Best().Validate(q, cost.Default()); err != nil {
					t.Fatalf("invalid plan: %v", err)
				}
			}
		}
	}
}

func TestSerialMatchesBruteForceBushy(t *testing.T) {
	for _, shape := range workload.Shapes {
		for seed := int64(0); seed < 4; seed++ {
			q := genQuery(t, 5, shape, seed)
			for _, orders := range []bool{false, true} {
				res, err := Serial(q, partition.Bushy, Options{
					InterestingOrders: orders,
					Pruner:            prunerFor(orders),
				})
				if err != nil {
					t.Fatal(err)
				}
				got := res.Best().Cost
				want := brute.BestCost(q, partition.Bushy, brute.Options{InterestingOrders: orders})
				if !approx(got, want) {
					t.Fatalf("%v seed=%d orders=%v: DP cost %g, brute force %g", shape, seed, orders, got, want)
				}
				if err := res.Best().Validate(q, cost.Default()); err != nil {
					t.Fatalf("invalid plan: %v", err)
				}
			}
		}
	}
}

func prunerFor(orders bool) Pruner {
	if orders {
		return OrderAware{}
	}
	return SingleBest{}
}

// The core correctness property of the paper: for every worker count m,
// the minimum over partition-optimal plans equals the serial optimum
// (partitions tile the plan space).
func TestPartitionsTileThePlanSpace(t *testing.T) {
	cases := []struct {
		space partition.Space
		n     int
		ms    []int
	}{
		{partition.Linear, 6, []int{1, 2, 4, 8}},
		{partition.Linear, 7, []int{2, 8}},
		{partition.Bushy, 6, []int{1, 2, 4}},
		{partition.Bushy, 7, []int{2, 4}},
	}
	for _, c := range cases {
		for _, shape := range []workload.Shape{workload.Star, workload.Chain} {
			for seed := int64(0); seed < 3; seed++ {
				q := genQuery(t, c.n, shape, seed)
				serial, err := Serial(q, c.space, Options{})
				if err != nil {
					t.Fatal(err)
				}
				for _, m := range c.ms {
					best := math.Inf(1)
					for partID := 0; partID < m; partID++ {
						cs, err := partition.ForPartition(c.space, c.n, partID, m)
						if err != nil {
							t.Fatal(err)
						}
						res, err := Run(q, cs, Options{})
						if err != nil {
							t.Fatal(err)
						}
						p := res.Best()
						if err := p.Validate(q, cost.Default()); err != nil {
							t.Fatalf("partition %d/%d returned invalid plan: %v", partID, m, err)
						}
						if !brute.RespectsConstraints(p, cs) {
							t.Fatalf("partition %d/%d returned plan violating its constraints: %v", partID, m, p)
						}
						if p.Cost < best {
							best = p.Cost
						}
					}
					if !approx(best, serial.Best().Cost) {
						t.Fatalf("%v n=%d m=%d %v seed=%d: partition best %g != serial %g",
							c.space, c.n, m, shape, seed, best, serial.Best().Cost)
					}
				}
			}
		}
	}
}

// Each partition's optimum equals the brute-force optimum over exactly
// the plans whose intermediate results are admissible in that partition.
func TestPartitionOptimumMatchesConstrainedBruteForce(t *testing.T) {
	q := genQuery(t, 5, workload.Star, 7)
	for _, space := range []partition.Space{partition.Linear, partition.Bushy} {
		m := 2
		if space == partition.Linear {
			m = 4
		}
		all := brute.AllPlans(q, space, brute.Options{})
		for partID := 0; partID < m; partID++ {
			cs, err := partition.ForPartition(space, 5, partID, m)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(q, cs, Options{})
			if err != nil {
				t.Fatal(err)
			}
			inPart := brute.Filter(all, func(p *plan.Node) bool {
				return brute.RespectsConstraints(p, cs)
			})
			if len(inPart) == 0 {
				t.Fatalf("%v partition %d admits no plans", space, partID)
			}
			want := math.Inf(1)
			for _, p := range inPart {
				if p.Cost < want {
					want = p.Cost
				}
			}
			if !approx(res.Best().Cost, want) {
				t.Fatalf("%v partition %d/%d: DP %g, constrained brute force %g",
					space, partID, m, res.Best().Cost, want)
			}
		}
	}
}

// Every complete plan of the space is admissible in at least one
// partition (plan-level coverage, complementing the set-level test in
// package partition).
func TestEveryPlanCoveredBySomePartition(t *testing.T) {
	q := genQuery(t, 5, workload.Chain, 3)
	for _, tc := range []struct {
		space partition.Space
		m     int
	}{{partition.Linear, 4}, {partition.Bushy, 2}} {
		var css []*partition.ConstraintSet
		for partID := 0; partID < tc.m; partID++ {
			cs, err := partition.ForPartition(tc.space, 5, partID, tc.m)
			if err != nil {
				t.Fatal(err)
			}
			css = append(css, cs)
		}
		for _, p := range brute.AllPlans(q, tc.space, brute.Options{}) {
			covered := false
			for _, cs := range css {
				if brute.RespectsConstraints(p, cs) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("%v m=%d: plan %v not covered by any partition", tc.space, tc.m, p)
			}
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	q := genQuery(t, 8, workload.Star, 1)
	cs := partition.Unconstrained(partition.Linear, 8)
	res, err := Run(q, cs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Unconstrained linear: 2^8 - 8 - 1 sets of cardinality >= 2.
	wantSets := uint64(1<<8 - 8 - 1)
	if res.Stats.SetsProcessed != wantSets {
		t.Fatalf("SetsProcessed = %d want %d", res.Stats.SetsProcessed, wantSets)
	}
	// Splits: for each set of cardinality k, k inner candidates.
	var wantSplits uint64
	for k := 2; k <= 8; k++ {
		wantSplits += uint64(k) * uint64(binom(8, k))
	}
	if res.Stats.SplitsTried != wantSplits {
		t.Fatalf("SplitsTried = %d want %d", res.Stats.SplitsTried, wantSplits)
	}
	if res.Stats.MemoEntries != uint64(1<<8-1) {
		t.Fatalf("MemoEntries = %d want %d", res.Stats.MemoEntries, 1<<8-1)
	}
	want := wantSets + wantSplits + res.Stats.PlansKept + res.Stats.PlansPruned
	if res.Stats.WorkUnits() != want {
		t.Fatalf("WorkUnits = %d want %d", res.Stats.WorkUnits(), want)
	}
	// Every generated plan is either kept or pruned; per split up to
	// three operators are tried.
	generated := res.Stats.PlansKept + res.Stats.PlansPruned
	if generated < 2*wantSplits || generated > 3*wantSplits+uint64(8) {
		t.Fatalf("generated plans %d outside [2, 3] x splits %d", generated, wantSplits)
	}
}

// Theorem 6's driver: the per-worker set count shrinks by exactly 3/4
// per constraint (memo entries shrink accordingly).
func TestPartitioningReducesWork(t *testing.T) {
	q := genQuery(t, 10, workload.Star, 2)
	var prevSets uint64
	for _, m := range []int{1, 2, 4, 8, 16, 32} {
		cs, err := partition.ForPartition(partition.Linear, 10, m-1, m)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(q, cs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sets := res.Stats.SetsProcessed
		if m > 1 {
			// sets(m) / sets(m/2) == 3/4 exactly for counts of sets with
			// cardinality >= 2 only up to the excluded singletons; compare
			// against the closed-form count instead.
			_ = prevSets
		}
		adm := cs.CountAdmissible()
		// Admissible sets include the empty set and some singletons,
		// which the DP does not process.
		small := uint64(0)
		for _, b := range cs.AdmissibleSets()[:2] {
			small += uint64(len(b))
		}
		if sets != adm-small {
			t.Fatalf("m=%d: processed %d sets, admissible %d minus %d small = %d",
				m, sets, adm, small, adm-small)
		}
		prevSets = sets
	}
}

func TestWorkerMemoryDecreasesWithParallelism(t *testing.T) {
	q := genQuery(t, 12, workload.Star, 5)
	var prev uint64 = math.MaxUint64
	for _, m := range []int{1, 4, 16, 64} {
		cs, err := partition.ForPartition(partition.Linear, 12, 0, m)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(q, cs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.MemoEntries >= prev {
			t.Fatalf("m=%d: memo %d did not shrink from %d", m, res.Stats.MemoEntries, prev)
		}
		prev = res.Stats.MemoEntries
	}
}

func TestOrderAwarePrunerInvariants(t *testing.T) {
	q := genQuery(t, 6, workload.Chain, 9)
	res, err := Serial(q, partition.Linear, Options{InterestingOrders: true, Pruner: OrderAware{}})
	if err != nil {
		t.Fatal(err)
	}
	// No retained plan may dominate another.
	for i, p := range res.Plans {
		for j, o := range res.Plans {
			if i == j {
				continue
			}
			if o.Cost <= p.Cost && orderDominates(o.Order, p.Order) && (o.Cost < p.Cost || o.Order != p.Order) {
				t.Fatalf("retained plan %d dominates plan %d", j, i)
			}
		}
	}
	// Orders can only help: the order-aware best must not exceed the
	// order-blind best.
	blind, err := Serial(q, partition.Linear, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best().Cost > blind.Best().Cost+costEps {
		t.Fatalf("order-aware best %g worse than order-blind %g", res.Best().Cost, blind.Best().Cost)
	}
}

func TestDisableCrossProducts(t *testing.T) {
	// A chain query optimized without cross products must still find a
	// plan, and never produce a disconnected intermediate result.
	q := genQuery(t, 7, workload.Chain, 4)
	res, err := Serial(q, partition.Linear, Options{DisableCrossProducts: true})
	if err != nil {
		t.Fatal(err)
	}
	var walk func(p *plan.Node)
	walk = func(p *plan.Node) {
		if p.IsScan {
			return
		}
		if !q.Connected(p.Tables) {
			t.Fatalf("cross-product-free plan has disconnected result %v", p.Tables)
		}
		walk(p.Left)
		walk(p.Right)
	}
	walk(res.Best())
	// The restricted optimum cannot beat the unrestricted one.
	full, err := Serial(q, partition.Linear, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best().Cost < full.Best().Cost-costEps {
		t.Fatal("heuristic search found a better plan than full search")
	}
}

func TestRunValidation(t *testing.T) {
	q := genQuery(t, 6, workload.Star, 0)
	csWrongN := partition.Unconstrained(partition.Linear, 5)
	if _, err := Run(q, csWrongN, Options{}); err == nil {
		t.Error("mismatched constraint set accepted")
	}
	bad := query.MustNew([]query.Table{{Cardinality: 1}, {Cardinality: 2}})
	bad.Preds = append(bad.Preds, query.Predicate{Left: 0, Right: 0, Selectivity: 0.5})
	if _, err := Run(bad, partition.Unconstrained(partition.Linear, 2), Options{}); err == nil {
		t.Error("invalid query accepted")
	}
	if _, err := Run(q, partition.Unconstrained(partition.Linear, 6), Options{
		Model: cost.Model{HashFactor: -1, SortFactor: 1, NLBlock: 1},
	}); err == nil {
		t.Error("invalid cost model accepted")
	}
}

func TestSingleTableQuery(t *testing.T) {
	q := query.MustNew([]query.Table{{Name: "only", Cardinality: 42}})
	res, err := Serial(q, partition.Linear, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best().IsScan || res.Best().Card != 42 {
		t.Fatalf("single-table plan = %+v", res.Best())
	}
}

func TestTwoTableQuery(t *testing.T) {
	q := query.MustNew([]query.Table{{Cardinality: 100}, {Cardinality: 10}})
	q.MustAddPredicate(query.Predicate{Left: 0, Right: 1, Selectivity: 0.1})
	q.Freeze()
	for _, space := range []partition.Space{partition.Linear, partition.Bushy} {
		res, err := Serial(q, space, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Best().CountJoins() != 1 {
			t.Fatalf("%v: joins = %d", space, res.Best().CountJoins())
		}
		// Both join orders and all operators were considered: best cost
		// is min over 2 orders x 3 algs (SMJ has a predicate).
		want := brute.BestCost(q, space, brute.Options{})
		if !approx(res.Best().Cost, want) {
			t.Fatalf("%v: cost %g want %g", space, res.Best().Cost, want)
		}
	}
}

func TestBestOnEmptyResult(t *testing.T) {
	r := &Result{}
	if r.Best() != nil {
		t.Fatal("Best of empty result should be nil")
	}
}

// offerTo drives the two-phase Pruner protocol the way the engine does:
// admission on the scalars first, materialized insert only for survivors.
func offerTo(pr Pruner, f *Frontier, p *plan.Node) bool {
	if !pr.Admits(f, Candidate{Cost: p.Cost, Buffer: p.Buffer, Order: p.Order}) {
		return false
	}
	pr.Insert(f, p)
	return true
}

func TestSingleBestKeepsCheapest(t *testing.T) {
	q := genQuery(t, 4, workload.Star, 0)
	a := plan.Scan(cost.Default(), q, 0)
	b := plan.Scan(cost.Default(), q, 1)
	var f Frontier
	if kept := offerTo(SingleBest{}, &f, a); !kept || f.Len() != 1 {
		t.Fatal("first insert")
	}
	cheaper := *b
	cheaper.Cost = a.Cost / 2
	if kept := offerTo(SingleBest{}, &f, &cheaper); !kept || f.Len() != 1 || f.At(0) != &cheaper {
		t.Fatal("cheaper plan should replace")
	}
	expensive := *b
	expensive.Cost = a.Cost * 2
	if kept := offerTo(SingleBest{}, &f, &expensive); kept || f.At(0) != &cheaper {
		t.Fatal("more expensive plan should be pruned")
	}
	equal := *b
	equal.Cost = cheaper.Cost
	if kept := offerTo(SingleBest{}, &f, &equal); kept {
		t.Fatal("equal-cost plan should be pruned (strict minimum)")
	}
}

func binom(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}

func BenchmarkSerialLinear12(b *testing.B) {
	b.ReportAllocs()
	q := genQuery(b, 12, workload.Star, 0)
	for i := 0; i < b.N; i++ {
		if _, err := Serial(q, partition.Linear, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// RunContext aborts between cardinality levels (and periodically
// within one) once the context is canceled, wrapping the cause.
func TestRunContextCanceled(t *testing.T) {
	q := genQuery(t, 14, workload.Clique, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, q, partition.Unconstrained(partition.Linear, q.N()), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Mid-run: cancel shortly after the search starts.
	ctx, cancel = context.WithCancel(context.Background())
	timer := time.AfterFunc(2*time.Millisecond, cancel)
	defer timer.Stop()
	if _, err := RunContext(ctx, q, partition.Unconstrained(partition.Linear, q.N()), Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run err = %v, want context.Canceled", err)
	}
	cancel()
	// A background context changes nothing.
	res, err := RunContext(context.Background(), genQuery(t, 6, workload.Star, 1),
		partition.Unconstrained(partition.Linear, 6), Options{})
	if err != nil || len(res.Plans) == 0 {
		t.Fatalf("background run: %v", err)
	}
}

func BenchmarkPartitionedLinear12m16(b *testing.B) {
	b.ReportAllocs()
	q := genQuery(b, 12, workload.Star, 0)
	cs, err := partition.ForPartition(partition.Linear, 12, 3, 16)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := Run(q, cs, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialBushy10(b *testing.B) {
	b.ReportAllocs()
	q := genQuery(b, 10, workload.Star, 0)
	for i := 0; i < b.N; i++ {
		if _, err := Serial(q, partition.Bushy, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
