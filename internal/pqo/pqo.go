// Package pqo implements parametric query optimization on top of the
// shared dynamic-programming scheme — one of the optimization variants
// the paper's §2 and §4 name as covered by the generic plan-space
// partitioning ("parametric query optimization [7, 13]"; only the
// pruning function differs).
//
// The parameter θ ∈ [0, 1] models run-time memory pressure: at θ=0 hash
// joins run in memory at their nominal cost, at θ=1 they spill and cost
// cost.Model.HashSpillFactor times more; every operator cost is linear
// in θ, so a plan's cost is the line c(θ) = (1-θ)·c0 + θ·c1. A plan can
// be optimal for some θ iff the pair (c0, c1) is Pareto-optimal, so the
// exact parametric-optimal plan set is obtained by running the engine
// with the ParametricCost second metric and α=1 Pareto pruning. MPQ
// parallelizes it unchanged.
package pqo

import (
	"fmt"
	"math"

	"mpq/internal/core"
	"mpq/internal/cost"
	"mpq/internal/partition"
	"mpq/internal/plan"
	"mpq/internal/query"
)

// DefaultSpill is the default θ=1 hash-join cost multiplier.
const DefaultSpill = 3.0

// JobSpec builds the MPQ job specification for parametric optimization
// over m workers: multi-objective exact pruning over (cost(0), cost(1))
// with the parametric cost model.
func JobSpec(space partition.Space, workers int, spill float64) core.JobSpec {
	return core.JobSpec{
		Space:     space,
		Workers:   workers,
		Objective: core.MultiObjective,
		Alpha:     1,
		CostModel: cost.Parametric(spill),
	}
}

// CostAt evaluates a parametric plan's cost at parameter value theta.
// The plan must have been built with the ParametricCost second metric
// (Node.Cost is c0, Node.Buffer is c1).
func CostAt(p *plan.Node, theta float64) float64 {
	return (1-theta)*p.Cost + theta*p.Buffer
}

// Best returns the frontier plan with minimal cost at theta — the plan
// the executor would pick once the parameter becomes known at run time.
// Ties within float noise resolve to the earliest frontier plan, so that
// nearly identical cost lines cannot produce spurious plan switches.
func Best(frontier []*plan.Node, theta float64) (*plan.Node, error) {
	if len(frontier) == 0 {
		return nil, fmt.Errorf("pqo: empty plan set")
	}
	if theta < 0 || theta > 1 || math.IsNaN(theta) {
		return nil, fmt.Errorf("pqo: parameter %g outside [0,1]", theta)
	}
	best := frontier[0]
	bestCost := CostAt(best, theta)
	for _, p := range frontier[1:] {
		if c := CostAt(p, theta); c < bestCost*(1-1e-12) {
			best, bestCost = p, c
		}
	}
	return best, nil
}

// Breakpoints returns the parameter values where the lower envelope of
// the frontier switches plans, in ascending order including the
// endpoints 0 and 1. Consecutive breakpoints delimit the parameter
// regions with a constant optimal plan — the classical PQO output [13].
func Breakpoints(frontier []*plan.Node) ([]float64, error) {
	if len(frontier) == 0 {
		return nil, fmt.Errorf("pqo: empty plan set")
	}
	points := []float64{0, 1}
	for i, p := range frontier {
		for _, q := range frontier[i+1:] {
			// Intersection of the two cost lines.
			da := p.Buffer - p.Cost // slope of p
			db := q.Buffer - q.Cost
			if da == db {
				continue
			}
			theta := (q.Cost - p.Cost) / (da - db)
			if theta > 0 && theta < 1 {
				points = append(points, theta)
			}
		}
	}
	sortFloats(points)
	// Merge breakpoints that coincide within float noise, keeping the
	// first of each cluster.
	const minWidth = 1e-9
	merged := points[:1]
	for _, p := range points[1:] {
		if p-merged[len(merged)-1] > minWidth {
			merged = append(merged, p)
		}
	}
	if merged[len(merged)-1] != 1 {
		merged = append(merged, 1)
	}
	points = merged
	// Keep only breakpoints where the argmin actually changes.
	out := points[:1]
	prevBest, err := Best(frontier, mid(points[0], points[1]))
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(points)-1; i++ {
		curBest, err := Best(frontier, mid(points[i], points[i+1]))
		if err != nil {
			return nil, err
		}
		if curBest != prevBest {
			out = append(out, points[i])
			prevBest = curBest
		}
	}
	return append(out, 1), nil
}

func mid(a, b float64) float64 { return (a + b) / 2 }

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// SpecializedModel returns the scalar cost model at a fixed parameter
// value: hash joins cost (1 + θ·(spill-1)) times their nominal cost.
// A scalar DP under this model is the oracle the parametric optimizer's
// envelope is tested against.
func SpecializedModel(spill, theta float64) cost.Model {
	m := cost.Default()
	m.HashFactor *= 1 + theta*(spill-1)
	return m
}

// Optimize runs parametric MPQ and returns the frontier of
// parametric-optimal plans (sorted by c0).
func Optimize(q *query.Query, space partition.Space, workers int, spill float64) ([]*plan.Node, error) {
	ans, err := core.Optimize(q, JobSpec(space, workers, spill))
	if err != nil {
		return nil, err
	}
	return ans.Frontier, nil
}
