package pqo

import (
	"math"
	"testing"

	"mpq/internal/partition"
	"mpq/internal/plan"
	"mpq/internal/wire"
	"mpq/internal/workload"
)

// TestBestExactTieKeepsEarliest pins Best's tie-break on a synthetic
// frontier whose two cost lines cross exactly at θ=0.5: CostAt there is
// 1.0 for both plans, representable exactly, so the comparison is a
// true tie and Best must keep the earlier frontier plan.
func TestBestExactTieKeepsEarliest(t *testing.T) {
	p0 := &plan.Node{Cost: 0, Buffer: 2}
	p1 := &plan.Node{Cost: 1, Buffer: 1}
	frontier := []*plan.Node{p0, p1}

	cases := []struct {
		theta float64
		want  *plan.Node
	}{
		{0, p0},                      // left endpoint: p0 strictly cheaper
		{0.5, p0},                    // exact crossing: tie → earliest plan
		{math.Nextafter(0.5, 1), p0}, // one ulp above: still inside the 1e-12 band
		{math.Nextafter(0.5, 0), p0}, // one ulp below: p0 strictly cheaper
		{1, p1},                      // right endpoint: p1 strictly cheaper
	}
	for _, tc := range cases {
		got, err := Best(frontier, tc.theta)
		if err != nil {
			t.Fatalf("Best(θ=%v): %v", tc.theta, err)
		}
		if got != tc.want {
			t.Errorf("Best(θ=%.20g) = plan with cost line (%g,%g), want (%g,%g)",
				tc.theta, got.Cost, got.Buffer, tc.want.Cost, tc.want.Buffer)
		}
	}
}

// TestCellCacheBoundaryAgreesWithBest sweeps every interior breakpoint
// of real frontiers — at the exact break value, one ulp below, and one
// ulp above — and requires CellCache.BestAt to return a plan
// wire-identical to Best's pick at the same θ. The one-ulp-above probes
// are the sharp case: the cell search alone switches cells there while
// Best's relative tie band still keeps the earlier plan.
func TestCellCacheBoundaryAgreesWithBest(t *testing.T) {
	combos := []struct {
		tables int
		shape  workload.Shape
		seed   int64
		space  partition.Space
		spill  float64
	}{
		{7, workload.Star, 8, partition.Linear, 8},
		{6, workload.Chain, 3, partition.Linear, 2},
		{6, workload.Star, 5, partition.Bushy, 5},
	}
	for _, cb := range combos {
		_, q, err := workload.Generate(workload.NewParams(cb.tables, cb.shape), cb.seed)
		if err != nil {
			t.Fatal(err)
		}
		frontier, err := Optimize(q, cb.space, 2, cb.spill)
		if err != nil {
			t.Fatal(err)
		}
		breaks, err := Breakpoints(frontier)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCellCache()
		probes := []float64{0, 1}
		for _, b := range breaks[1 : len(breaks)-1] {
			probes = append(probes, b, math.Nextafter(b, 0), math.Nextafter(b, 1))
		}
		for _, theta := range probes {
			want, err := Best(frontier, theta)
			if err != nil {
				t.Fatalf("Best(θ=%v): %v", theta, err)
			}
			got, err := c.BestAt(q, cb.space, 2, cb.spill, theta)
			if err != nil {
				t.Fatalf("BestAt(θ=%v): %v", theta, err)
			}
			if wire.PlanFingerprint(got) != wire.PlanFingerprint(want) {
				t.Errorf("%d-table %v seed %d spill %g: θ=%.20g: BestAt=%s (cost %g) but Best=%s (cost %g)",
					cb.tables, cb.shape, cb.seed, cb.spill, theta,
					got, CostAt(got, theta), want, CostAt(want, theta))
			}
		}
	}
}
