package pqo

import (
	"fmt"
	"sort"
	"sync"

	"mpq/internal/partition"
	"mpq/internal/plan"
	"mpq/internal/query"
	"mpq/internal/wire"
)

// CellCache caches parametric optimization results per parameter-space
// cell: one parametric MPQ run per (query, space, workers, spill)
// yields the frontier and its breakpoints, which partition θ ∈ [0,1]
// into cells with a constant optimal plan. Point queries — "the plan
// for this query at this θ" — are then served from the covering cell
// without touching the dynamic program, which is the classical payoff
// of parametric query optimization [13]: optimize once per cell, not
// once per parameter value.
//
// The cache key is the wire encoding of the parametric job (the same
// canonical keying contract as internal/cache), so any change to the
// query statistics, plan space, worker count or spill factor computes a
// fresh frontier. Entries are never evicted: one entry per distinct
// parametric job, each a few plans — callers with unbounded distinct
// queries should bound their own key population.
//
// All methods are safe for concurrent use; concurrent point queries for
// the same uncomputed entry run one optimization (later callers block
// until the first finishes).
type CellCache struct {
	mu      sync.Mutex
	entries map[string]*cellEntry
	hits    uint64
	misses  uint64
}

// cellEntry is one parametric job's frontier, cut into cells.
type cellEntry struct {
	mu       sync.Mutex // held while computing; lookups block on it
	computed bool
	frontier []*plan.Node
	breaks   []float64    // ascending, breaks[0]=0, breaks[len-1]=1
	plans    []*plan.Node // plans[i] is optimal on [breaks[i], breaks[i+1]]
	err      error
}

// CellCacheStats is a snapshot of a CellCache's counters.
type CellCacheStats struct {
	// Hits counts point queries served from an already-computed entry.
	Hits uint64
	// Misses counts parametric optimizations actually run.
	Misses uint64
	// Entries is the number of cached parametric jobs.
	Entries int
	// Cells is the total number of parameter-space cells across entries.
	Cells int
}

// NewCellCache returns an empty parametric plan cache.
func NewCellCache() *CellCache {
	return &CellCache{entries: make(map[string]*cellEntry)}
}

// Stats returns a snapshot of the cache counters.
func (c *CellCache) Stats() CellCacheStats {
	c.mu.Lock()
	s := CellCacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries)}
	entries := make([]*cellEntry, 0, len(c.entries))
	for _, e := range c.entries {
		entries = append(entries, e)
	}
	c.mu.Unlock()
	// Entry locks are taken only after releasing c.mu: BestAt holds an
	// entry's lock while bumping the counters under c.mu, so acquiring
	// them in the opposite order here would deadlock against it.
	for _, e := range entries {
		e.mu.Lock()
		if e.computed && e.err == nil {
			s.Cells += len(e.plans)
		}
		e.mu.Unlock()
	}
	return s
}

// BestAt returns the optimal plan for the query at parameter value
// theta, running parametric MPQ only if this (query, space, workers,
// spill) combination has not been optimized before. The returned plan
// is the covering cell's optimal plan — bit-identical (wire encoding)
// to what Best(Optimize(...), theta) selects, with exact-breakpoint
// ties resolving to the lower cell exactly as Best resolves them. The
// cache changes when work happens, never the answer.
func (c *CellCache) BestAt(q *query.Query, space partition.Space, workers int, spill, theta float64) (*plan.Node, error) {
	if theta < 0 || theta > 1 || theta != theta {
		return nil, fmt.Errorf("pqo: parameter %g outside [0,1]", theta)
	}
	spec := JobSpec(space, workers, spill)
	key := string(wire.EncodeJobRequest(&wire.JobRequest{Spec: spec, Query: q}))

	c.mu.Lock()
	e := c.entries[key]
	hit := e != nil
	if !hit {
		e = &cellEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.computed {
		e.compute(q, space, workers, spill)
		e.computed = true
		hit = false // this caller paid for the optimization
	}
	c.mu.Lock()
	if hit {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	if e.err != nil {
		return nil, e.err
	}

	// The covering cell. Cells are right-closed — cell j covers
	// (breaks[j], breaks[j+1]], with θ=0 in cell 0 — so a point query at
	// an exact breakpoint resolves to the lower cell, matching Best's
	// earliest-frontier-plan tie-break (the frontier is sorted by c0,
	// and the lower cell's plan has the lower c0).
	j := sort.SearchFloat64s(e.breaks, theta) - 1
	if j < 0 {
		j = 0
	}
	if j >= len(e.plans) {
		j = len(e.plans) - 1
	}
	// Just above a breakpoint the two cost lines still differ by less
	// than Best's 1e-12 relative noise floor, and Best keeps the earlier
	// frontier plan on such ties; the raw cell search would switch one
	// ulp too early. Walk left while the earlier cell's plan still ties,
	// so the answer stays bit-identical to Best throughout the band.
	for j > 0 && !(CostAt(e.plans[j], theta) < CostAt(e.plans[j-1], theta)*(1-1e-12)) {
		j--
	}
	return e.plans[j], nil
}

// compute runs the parametric optimization and cuts the frontier into
// cells, materializing one representative optimal plan per cell.
func (e *cellEntry) compute(q *query.Query, space partition.Space, workers int, spill float64) {
	frontier, err := Optimize(q, space, workers, spill)
	if err != nil {
		e.err = err
		return
	}
	breaks, err := Breakpoints(frontier)
	if err != nil {
		e.err = err
		return
	}
	plans := make([]*plan.Node, len(breaks)-1)
	for i := range plans {
		p, err := Best(frontier, mid(breaks[i], breaks[i+1]))
		if err != nil {
			e.err = err
			return
		}
		plans[i] = p
	}
	e.frontier, e.breaks, e.plans = frontier, breaks, plans
}
