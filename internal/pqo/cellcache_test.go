package pqo

import (
	"sync"
	"testing"

	"mpq/internal/partition"
	"mpq/internal/wire"
	"mpq/internal/workload"
)

// TestCellCacheBitIdentical: every point query through the cell cache
// returns exactly the plan a fresh parametric run selects — including
// at the breakpoints themselves, where ties must resolve the way Best
// resolves them.
func TestCellCacheBitIdentical(t *testing.T) {
	// Star 7, seed 8, spill 8 yields a multi-plan frontier with several
	// interior breakpoints — the interesting tie cases.
	_, q, err := workload.Generate(workload.NewParams(7, workload.Star), 8)
	if err != nil {
		t.Fatal(err)
	}
	const spill = 8.0
	frontier, err := Optimize(q, partition.Linear, 2, spill)
	if err != nil {
		t.Fatal(err)
	}
	breaks, err := Breakpoints(frontier)
	if err != nil {
		t.Fatal(err)
	}
	if len(breaks) < 3 {
		t.Fatalf("want a frontier with interior breakpoints, got %v", breaks)
	}

	thetas := append([]float64{}, breaks...) // exact breakpoints: the tie cases
	for i := 0; i <= 10; i++ {
		thetas = append(thetas, float64(i)/10)
	}
	c := NewCellCache()
	for _, theta := range thetas {
		want, err := Best(frontier, theta)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.BestAt(q, partition.Linear, 2, spill, theta)
		if err != nil {
			t.Fatalf("theta=%g: %v", theta, err)
		}
		if wire.PlanFingerprint(got) != wire.PlanFingerprint(want) {
			t.Fatalf("theta=%g: cell-cache plan differs from fresh parametric run", theta)
		}
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Fatalf("%d point queries ran %d parametric optimizations, want 1", len(thetas), s.Misses)
	}
	if s.Hits != uint64(len(thetas)-1) {
		t.Fatalf("hits = %d, want %d", s.Hits, len(thetas)-1)
	}
	if s.Entries != 1 || s.Cells != len(breaks)-1 {
		t.Fatalf("stats = %+v, want 1 entry with %d cells", s, len(breaks)-1)
	}
}

// TestCellCacheKeySeparation: a different spill factor or worker count
// is a different parametric job and computes its own frontier.
func TestCellCacheKeySeparation(t *testing.T) {
	_, q, err := workload.Generate(workload.NewParams(7, workload.Chain), 32)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCellCache()
	if _, err := c.BestAt(q, partition.Linear, 2, 3.0, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := c.BestAt(q, partition.Linear, 2, 8.0, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := c.BestAt(q, partition.Linear, 4, 3.0, 0.5); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Misses != 3 || s.Entries != 3 {
		t.Fatalf("stats = %+v, want 3 distinct parametric jobs", s)
	}
}

// TestCellCacheInvalidTheta rejects parameters outside [0,1].
func TestCellCacheInvalidTheta(t *testing.T) {
	_, q, err := workload.Generate(workload.NewParams(6, workload.Star), 33)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCellCache()
	for _, theta := range []float64{-0.1, 1.1} {
		if _, err := c.BestAt(q, partition.Linear, 2, 3.0, theta); err == nil {
			t.Fatalf("theta=%g accepted", theta)
		}
	}
}

// TestCellCacheConcurrentPointQueries: concurrent first-touch point
// queries for one parametric job run a single optimization (run under
// -race).
func TestCellCacheConcurrentPointQueries(t *testing.T) {
	_, q, err := workload.Generate(workload.NewParams(8, workload.Cycle), 34)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCellCache()
	const n = 16
	fps := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := c.BestAt(q, partition.Linear, 2, 3.0, float64(i)/n)
			if err != nil {
				t.Error(err)
				return
			}
			fps[i] = wire.PlanFingerprint(p)
		}(i)
	}
	wg.Wait()
	if s := c.Stats(); s.Misses != 1 || s.Hits != n-1 {
		t.Fatalf("stats = %+v, want exactly one optimization", s)
	}
	// Spot-check against the fresh run now that the dust settled.
	frontier, err := Optimize(q, partition.Linear, 2, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want, err := Best(frontier, float64(i)/n)
		if err != nil {
			t.Fatal(err)
		}
		if fps[i] != wire.PlanFingerprint(want) {
			t.Fatalf("theta=%g: concurrent answer differs", float64(i)/n)
		}
	}
}
