package pqo

import (
	"sync"
	"testing"
	"time"

	"mpq/internal/partition"
	"mpq/internal/query"
	"mpq/internal/wire"
	"mpq/internal/workload"
)

// TestCellCacheBitIdentical: every point query through the cell cache
// returns exactly the plan a fresh parametric run selects — including
// at the breakpoints themselves, where ties must resolve the way Best
// resolves them.
func TestCellCacheBitIdentical(t *testing.T) {
	// Star 7, seed 8, spill 8 yields a multi-plan frontier with several
	// interior breakpoints — the interesting tie cases.
	_, q, err := workload.Generate(workload.NewParams(7, workload.Star), 8)
	if err != nil {
		t.Fatal(err)
	}
	const spill = 8.0
	frontier, err := Optimize(q, partition.Linear, 2, spill)
	if err != nil {
		t.Fatal(err)
	}
	breaks, err := Breakpoints(frontier)
	if err != nil {
		t.Fatal(err)
	}
	if len(breaks) < 3 {
		t.Fatalf("want a frontier with interior breakpoints, got %v", breaks)
	}

	thetas := append([]float64{}, breaks...) // exact breakpoints: the tie cases
	for i := 0; i <= 10; i++ {
		thetas = append(thetas, float64(i)/10)
	}
	c := NewCellCache()
	for _, theta := range thetas {
		want, err := Best(frontier, theta)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.BestAt(q, partition.Linear, 2, spill, theta)
		if err != nil {
			t.Fatalf("theta=%g: %v", theta, err)
		}
		if wire.PlanFingerprint(got) != wire.PlanFingerprint(want) {
			t.Fatalf("theta=%g: cell-cache plan differs from fresh parametric run", theta)
		}
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Fatalf("%d point queries ran %d parametric optimizations, want 1", len(thetas), s.Misses)
	}
	if s.Hits != uint64(len(thetas)-1) {
		t.Fatalf("hits = %d, want %d", s.Hits, len(thetas)-1)
	}
	if s.Entries != 1 || s.Cells != len(breaks)-1 {
		t.Fatalf("stats = %+v, want 1 entry with %d cells", s, len(breaks)-1)
	}
}

// TestCellCacheKeySeparation: a different spill factor or worker count
// is a different parametric job and computes its own frontier.
func TestCellCacheKeySeparation(t *testing.T) {
	_, q, err := workload.Generate(workload.NewParams(7, workload.Chain), 32)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCellCache()
	if _, err := c.BestAt(q, partition.Linear, 2, 3.0, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := c.BestAt(q, partition.Linear, 2, 8.0, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := c.BestAt(q, partition.Linear, 4, 3.0, 0.5); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Misses != 3 || s.Entries != 3 {
		t.Fatalf("stats = %+v, want 3 distinct parametric jobs", s)
	}
}

// TestCellCacheInvalidTheta rejects parameters outside [0,1].
func TestCellCacheInvalidTheta(t *testing.T) {
	_, q, err := workload.Generate(workload.NewParams(6, workload.Star), 33)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCellCache()
	for _, theta := range []float64{-0.1, 1.1} {
		if _, err := c.BestAt(q, partition.Linear, 2, 3.0, theta); err == nil {
			t.Fatalf("theta=%g accepted", theta)
		}
	}
}

// TestCellCacheConcurrentPointQueries: concurrent first-touch point
// queries for one parametric job run a single optimization (run under
// -race).
func TestCellCacheConcurrentPointQueries(t *testing.T) {
	_, q, err := workload.Generate(workload.NewParams(8, workload.Cycle), 34)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCellCache()
	const n = 16
	fps := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := c.BestAt(q, partition.Linear, 2, 3.0, float64(i)/n)
			if err != nil {
				t.Error(err)
				return
			}
			fps[i] = wire.PlanFingerprint(p)
		}(i)
	}
	wg.Wait()
	if s := c.Stats(); s.Misses != 1 || s.Hits != n-1 {
		t.Fatalf("stats = %+v, want exactly one optimization", s)
	}
	// Spot-check against the fresh run now that the dust settled.
	frontier, err := Optimize(q, partition.Linear, 2, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want, err := Best(frontier, float64(i)/n)
		if err != nil {
			t.Fatal(err)
		}
		if fps[i] != wire.PlanFingerprint(want) {
			t.Fatalf("theta=%g: concurrent answer differs", float64(i)/n)
		}
	}
}

// TestCellCacheConcurrentMixedCellsConsistency extends the single-cell
// race above to the serving shape the daemon sees, mirroring the
// invariants of the engine-level TestCachedEngineConcurrentConsistency
// (run under -race, this is the cell cache's data-race canary):
//
//   - goroutines mix first touches, hits and distinct cells over a
//     small pool of parametric jobs;
//   - all answers for the same (job, theta) are fingerprint-identical
//     and match a fresh uncached run;
//   - a concurrent Stats poller never observes counters decrease;
//   - at the end, every cell ran its optimization exactly once
//     (singleflight) and Hits+Misses equals the number of calls.
func TestCellCacheConcurrentMixedCellsConsistency(t *testing.T) {
	type job struct {
		q       *query.Query
		space   partition.Space
		workers int
		spill   float64
	}
	jobs := make([]job, 3)
	for i := range jobs {
		_, q, err := workload.Generate(workload.NewParams(7+i%2, workload.Cycle), int64(40+i))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = job{q: q, space: partition.Linear, workers: 2, spill: 3.0 + float64(i)}
	}
	thetas := []float64{0, 0.25, 0.5, 0.75, 1}

	c := NewCellCache()
	stop := make(chan struct{})
	pollerDone := make(chan struct{})
	go func() { // Stats must be safe and monotonic concurrently with BestAt
		defer close(pollerDone)
		var prev CellCacheStats
		for {
			s := c.Stats()
			if s.Hits < prev.Hits || s.Misses < prev.Misses {
				t.Errorf("stats went backwards: %+v then %+v", prev, s)
				return
			}
			prev = s
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond): // poll, don't starve BestAt of the lock
			}
		}
	}()

	const goroutines = 8
	const iters = 20
	var (
		mu  sync.Mutex
		fps = map[[2]int]string{} // (job, theta index) → fingerprint
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ji := (g + i) % len(jobs)
				ti := (g * iters) % len(thetas)
				if i%2 == 0 {
					ti = i % len(thetas)
				}
				j := jobs[ji]
				p, err := c.BestAt(j.q, j.space, j.workers, j.spill, thetas[ti])
				if err != nil {
					t.Error(err)
					return
				}
				fp := wire.PlanFingerprint(p)
				mu.Lock()
				key := [2]int{ji, ti}
				if want, ok := fps[key]; !ok {
					fps[key] = fp
				} else if fp != want {
					t.Errorf("job %d theta %g: fingerprint %s differs from first answer's %s",
						ji, thetas[ti], fp, want)
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-pollerDone

	s := c.Stats()
	if s.Misses != uint64(len(jobs)) {
		t.Fatalf("Misses = %d, want exactly one optimization per cell (%d)", s.Misses, len(jobs))
	}
	if s.Entries != len(jobs) {
		t.Fatalf("Entries = %d, want %d", s.Entries, len(jobs))
	}
	if total := s.Hits + s.Misses; total != goroutines*iters {
		t.Fatalf("Hits+Misses = %d, want %d: every call classified exactly once", total, goroutines*iters)
	}

	// Every concurrently-served answer must match the fresh run.
	for key, fp := range fps {
		j := jobs[key[0]]
		frontier, err := Optimize(j.q, j.space, j.workers, j.spill)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Best(frontier, thetas[key[1]])
		if err != nil {
			t.Fatal(err)
		}
		if fp != wire.PlanFingerprint(want) {
			t.Fatalf("job %d theta %g: cached answer differs from fresh run", key[0], thetas[key[1]])
		}
	}
}
