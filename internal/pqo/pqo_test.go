package pqo

import (
	"math"
	"testing"

	"mpq/internal/core"
	"mpq/internal/dp"
	"mpq/internal/partition"
	"mpq/internal/plan"
	"mpq/internal/query"
	"mpq/internal/workload"
)

func gen(t testing.TB, n int, seed int64) *query.Query {
	t.Helper()
	return workload.MustGenerate(workload.NewParams(n, workload.Star), seed)
}

func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// The central PQO correctness property: for every parameter value θ, the
// envelope of the parametric frontier matches the optimum of a scalar DP
// specialized to θ.
func TestEnvelopeMatchesSpecializedDP(t *testing.T) {
	const spill = DefaultSpill
	for seed := int64(0); seed < 4; seed++ {
		q := gen(t, 7, seed)
		frontier, err := Optimize(q, partition.Linear, 4, spill)
		if err != nil {
			t.Fatal(err)
		}
		if len(frontier) == 0 {
			t.Fatal("empty frontier")
		}
		for _, theta := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			best, err := Best(frontier, theta)
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := dp.Serial(q, partition.Linear, dp.Options{
				Model: SpecializedModel(spill, theta),
			})
			if err != nil {
				t.Fatal(err)
			}
			if !approx(CostAt(best, theta), oracle.Best().Cost) {
				t.Fatalf("seed=%d θ=%g: envelope %g != specialized DP %g",
					seed, theta, CostAt(best, theta), oracle.Best().Cost)
			}
		}
	}
}

// Parallelization invariance: the parametric frontier is identical for
// every worker count.
func TestParametricMPQIndependentOfWorkers(t *testing.T) {
	q := gen(t, 8, 5)
	ref, err := Optimize(q, partition.Linear, 1, DefaultSpill)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{2, 8, 16} {
		got, err := Optimize(q, partition.Linear, m, DefaultSpill)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("m=%d: frontier size %d != %d", m, len(got), len(ref))
		}
		for i := range ref {
			if !approx(got[i].Cost, ref[i].Cost) || !approx(got[i].Buffer, ref[i].Buffer) {
				t.Fatalf("m=%d: frontier[%d] differs", m, i)
			}
		}
	}
}

func TestCostAtLinearInterpolation(t *testing.T) {
	p := &plan.Node{Cost: 10, Buffer: 30}
	if CostAt(p, 0) != 10 || CostAt(p, 1) != 30 || CostAt(p, 0.5) != 20 {
		t.Fatal("CostAt interpolation")
	}
}

func TestBestValidation(t *testing.T) {
	if _, err := Best(nil, 0.5); err == nil {
		t.Fatal("empty frontier accepted")
	}
	p := &plan.Node{Cost: 1, Buffer: 1}
	if _, err := Best([]*plan.Node{p}, -0.1); err == nil {
		t.Fatal("theta < 0 accepted")
	}
	if _, err := Best([]*plan.Node{p}, 1.5); err == nil {
		t.Fatal("theta > 1 accepted")
	}
	if _, err := Best([]*plan.Node{p}, math.NaN()); err == nil {
		t.Fatal("NaN theta accepted")
	}
}

func TestBreakpoints(t *testing.T) {
	// Two lines crossing at θ=0.5: c_a(θ)=10+20θ, c_b(θ)=20.
	a := &plan.Node{Cost: 10, Buffer: 30}
	b := &plan.Node{Cost: 20, Buffer: 20}
	bps, err := Breakpoints([]*plan.Node{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(bps) != 3 || bps[0] != 0 || bps[2] != 1 || math.Abs(bps[1]-0.5) > 1e-12 {
		t.Fatalf("breakpoints = %v", bps)
	}
	// Single plan: no interior breakpoints.
	bps, err = Breakpoints([]*plan.Node{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(bps) != 2 {
		t.Fatalf("breakpoints = %v", bps)
	}
	if _, err := Breakpoints(nil); err == nil {
		t.Fatal("empty frontier accepted")
	}
}

// Each parameter region delimited by breakpoints has a constant optimal
// plan, and adjacent regions have different ones.
func TestBreakpointsDelimitConstantRegions(t *testing.T) {
	q := gen(t, 7, 2)
	frontier, err := Optimize(q, partition.Linear, 4, DefaultSpill)
	if err != nil {
		t.Fatal(err)
	}
	bps, err := Breakpoints(frontier)
	if err != nil {
		t.Fatal(err)
	}
	var regionPlans []*plan.Node
	for i := 0; i+1 < len(bps); i++ {
		lo, hi := bps[i], bps[i+1]
		var regionBest *plan.Node
		for k := 0; k <= 4; k++ {
			theta := lo + (hi-lo)*(float64(k)+0.5)/5.5
			best, err := Best(frontier, theta)
			if err != nil {
				t.Fatal(err)
			}
			if regionBest == nil {
				regionBest = best
			} else if !approx(CostAt(best, theta), CostAt(regionBest, theta)) {
				t.Fatalf("region [%g,%g]: optimal plan changed inside region", lo, hi)
			}
		}
		regionPlans = append(regionPlans, regionBest)
	}
	for i := 1; i < len(regionPlans); i++ {
		if regionPlans[i] == regionPlans[i-1] {
			t.Fatalf("regions %d and %d share a plan — spurious breakpoint %g", i-1, i, bps[i])
		}
	}
}

// Spill factor 1 collapses the parametric problem to the scalar one.
func TestSpillOneIsScalar(t *testing.T) {
	q := gen(t, 6, 1)
	frontier, err := Optimize(q, partition.Linear, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(frontier) != 1 {
		t.Fatalf("spill=1 frontier has %d plans", len(frontier))
	}
	serial, err := dp.Serial(q, partition.Linear, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(frontier[0].Cost, serial.Best().Cost) {
		t.Fatal("spill=1 optimum differs from scalar DP")
	}
}

func TestJobSpecShape(t *testing.T) {
	s := JobSpec(partition.Bushy, 4, 2.5)
	if s.Objective != core.MultiObjective || s.Alpha != 1 {
		t.Fatalf("spec %+v", s)
	}
	if s.CostModel.HashSpillFactor != 2.5 {
		t.Fatal("spill not plumbed")
	}
	if err := s.Validate(9); err != nil {
		t.Fatal(err)
	}
}
