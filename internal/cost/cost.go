// Package cost implements the plan cost model: Steinbrunn-style formulas
// for scans and the three standard join operators the paper benchmarks
// (block-nested-loop, hash, sort-merge), a cardinality estimator hook,
// and the buffer-space metric used as the second objective in the
// multi-objective experiments (§6.1).
//
// Costs are abstract work units proportional to tuples processed. The
// paper compares plans by relative cost only, so units cancel out.
package cost

import (
	"fmt"
	"math"
)

// JoinAlg identifies a join operator implementation.
type JoinAlg int

const (
	// NestedLoop is the block-nested-loop join: every outer/inner tuple
	// pair is inspected.
	NestedLoop JoinAlg = iota
	// Hash is the (in-memory GRACE-style) hash join: both inputs are
	// scanned a constant number of times.
	Hash
	// SortMerge sorts both inputs on the join attribute and merges.
	// A side that is already sorted on the join attribute skips its
	// sort term (interesting orders).
	SortMerge
	numAlgs
)

// Algs lists all join algorithms in a stable order.
var Algs = [...]JoinAlg{NestedLoop, Hash, SortMerge}

// String returns the conventional operator name.
func (a JoinAlg) String() string {
	switch a {
	case NestedLoop:
		return "NLJ"
	case Hash:
		return "HJ"
	case SortMerge:
		return "SMJ"
	default:
		return fmt.Sprintf("JoinAlg(%d)", int(a))
	}
}

// Valid reports whether a names a real algorithm.
func (a JoinAlg) Valid() bool { return a >= 0 && a < numAlgs }

// SecondMetric selects what a plan's second cost annotation
// (plan.Node.Buffer) measures.
type SecondMetric int

const (
	// BufferFootprint is the paper's second objective (§6.1): the
	// operator's buffer-space requirement, combined with max up the
	// plan tree.
	BufferFootprint SecondMetric = iota
	// ParametricCost makes the second annotation the plan's execution
	// cost at parameter value θ=1 (memory pressure: hash joins spill
	// and cost HashSpillFactor times more), combined additively. With
	// plan cost linear in θ, Pareto pruning over (cost(0), cost(1)) is
	// exact parametric query optimization — the [7, 13] variant the
	// paper's §2 says the partitioning covers.
	ParametricCost
	// RobustCost makes the second annotation the plan's execution cost
	// at the high endpoint of a multiplicative selectivity-uncertainty
	// band (every selectivity inflated by RobustBand, clamped to 1),
	// combined additively. Cost is monotone in every selectivity, so
	// the high corner is the worst case over the whole band and Pareto
	// pruning over (nominal cost, worst-case cost) is exact robust plan
	// search. The DP supplies the inflated operand cardinalities; the
	// formulas themselves are unchanged.
	RobustCost
)

// Model parameterizes the cost formulas. The zero value is not valid;
// use Default().
type Model struct {
	// HashFactor scales the hash join's linear passes (build + probe).
	HashFactor float64
	// SortFactor scales the n·log2(n) sort terms of the sort-merge join.
	SortFactor float64
	// NLBlock models blocking in the nested-loop join: the effective
	// cost is outer·inner/NLBlock (one inner scan per outer block).
	NLBlock float64
	// Second selects the second metric (default BufferFootprint).
	Second SecondMetric
	// HashSpillFactor is the θ=1 hash-join cost multiplier for
	// ParametricCost (ignored otherwise; must be ≥ 1).
	HashSpillFactor float64
	// RobustBand is the selectivity-uncertainty band for RobustCost:
	// the high endpoint inflates every predicate selectivity by this
	// factor (clamped to 1). Ignored by the other metrics; must be ≥ 1.
	RobustBand float64
}

// Default returns the model used throughout the experiments.
func Default() Model {
	return Model{HashFactor: 1.2, SortFactor: 1.0, NLBlock: 1.0}
}

// Parametric returns the model for parametric query optimization: the
// second metric is the plan cost under full memory pressure (hash joins
// cost spill times more).
func Parametric(spill float64) Model {
	m := Default()
	m.Second = ParametricCost
	m.HashSpillFactor = spill
	return m
}

// Robust returns the model for robust plan search: the second metric
// is the plan cost at the high endpoint of a selectivity-uncertainty
// band of the given width (≥ 1).
func Robust(band float64) Model {
	m := Default()
	m.Second = RobustCost
	m.RobustBand = band
	return m
}

// Validate reports whether the model parameters are usable.
func (m Model) Validate() error {
	if !(m.HashFactor > 0) || !(m.SortFactor > 0) || !(m.NLBlock > 0) {
		return fmt.Errorf("cost: non-positive model parameter: %+v", m)
	}
	switch m.Second {
	case BufferFootprint:
	case ParametricCost:
		if !(m.HashSpillFactor >= 1) {
			return fmt.Errorf("cost: HashSpillFactor %g must be >= 1 for ParametricCost", m.HashSpillFactor)
		}
	case RobustCost:
		if !(m.RobustBand >= 1) || math.IsInf(m.RobustBand, 0) {
			return fmt.Errorf("cost: RobustBand %g must be finite and >= 1 for RobustCost", m.RobustBand)
		}
	default:
		return fmt.Errorf("cost: invalid second metric %d", int(m.Second))
	}
	return nil
}

// ScanCost is the cost of producing a base relation of the given
// cardinality.
func (m Model) ScanCost(card float64) float64 { return card }

// ScanBuffer is the buffer footprint of a scan (a constant page).
func (m Model) ScanBuffer(card float64) float64 { return 1 }

func log2(x float64) float64 {
	if x < 2 {
		return 1 // clamp: sorting a tiny input still touches it once
	}
	return math.Log2(x)
}

// JoinCost returns the cost of joining an outer input of cardinality l
// with an inner input of cardinality r using algorithm alg.
// leftSorted/rightSorted report whether the respective input is already
// sorted on the join attribute (only SortMerge cares).
func (m Model) JoinCost(alg JoinAlg, l, r float64, leftSorted, rightSorted bool) float64 {
	switch alg {
	case NestedLoop:
		return l * r / m.NLBlock
	case Hash:
		return m.HashFactor * (l + r)
	case SortMerge:
		c := l + r
		if !leftSorted {
			c += m.SortFactor * l * log2(l)
		}
		if !rightSorted {
			c += m.SortFactor * r * log2(r)
		}
		return c
	default:
		panic(fmt.Sprintf("cost: unknown join algorithm %d", int(alg)))
	}
}

// JoinBuffer returns the buffer-space footprint of the operator itself
// (not including its inputs): the hash join materializes a build table on
// the inner side; the sort-merge join needs sort space for both unsorted
// inputs; the nested-loop join streams with a constant footprint.
func (m Model) JoinBuffer(alg JoinAlg, l, r float64, leftSorted, rightSorted bool) float64 {
	switch alg {
	case NestedLoop:
		return 2
	case Hash:
		return r + 1
	case SortMerge:
		b := 2.0
		if !leftSorted {
			b += l
		}
		if !rightSorted {
			b += r
		}
		return b
	default:
		panic(fmt.Sprintf("cost: unknown join algorithm %d", int(alg)))
	}
}

// ScanSecond returns a scan's second-metric value. Scan cost does not
// depend on selectivities, so for RobustCost it equals the nominal scan
// cost.
func (m Model) ScanSecond(card float64) float64 {
	if m.Second == ParametricCost || m.Second == RobustCost {
		return m.ScanCost(card)
	}
	return m.ScanBuffer(card)
}

// JoinSecond returns the operator's second-metric value: buffer
// footprint, the θ=1 operator cost for ParametricCost, or the
// worst-case operator cost for RobustCost. For RobustCost the caller
// must pass the operands' high-endpoint (band-inflated) cardinalities
// as l and r — the DP tracks them per relation set (see
// plan.JoinScalarsRobust).
func (m Model) JoinSecond(alg JoinAlg, l, r float64, leftSorted, rightSorted bool) float64 {
	switch m.Second {
	case ParametricCost:
		c := m.JoinCost(alg, l, r, leftSorted, rightSorted)
		if alg == Hash {
			c *= m.HashSpillFactor
		}
		return c
	case RobustCost:
		return m.JoinCost(alg, l, r, leftSorted, rightSorted)
	}
	return m.JoinBuffer(alg, l, r, leftSorted, rightSorted)
}

// CombineSecond folds operand second-metric values with the operator's:
// max for buffer footprints (concurrent pipeline peak), sum for
// parametric and robust costs (total work). All are monotone,
// preserving the DP's principle of optimality.
func (m Model) CombineSecond(left, right, op float64) float64 {
	if m.Second == ParametricCost || m.Second == RobustCost {
		return left + right + op
	}
	b := op
	if left > b {
		b = left
	}
	if right > b {
		b = right
	}
	return b
}
