package cost

import (
	"math"
	"math/rand"
	"testing"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	bad := []Model{
		{},
		{HashFactor: 0, SortFactor: 1, NLBlock: 1},
		{HashFactor: 1, SortFactor: -1, NLBlock: 1},
		{HashFactor: 1, SortFactor: 1, NLBlock: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: bad model %+v validated", i, m)
		}
	}
}

func TestJoinAlgString(t *testing.T) {
	want := map[JoinAlg]string{NestedLoop: "NLJ", Hash: "HJ", SortMerge: "SMJ"}
	for alg, s := range want {
		if alg.String() != s {
			t.Errorf("%d.String() = %q want %q", int(alg), alg.String(), s)
		}
		if !alg.Valid() {
			t.Errorf("%s not valid", s)
		}
	}
	if JoinAlg(99).Valid() {
		t.Error("JoinAlg(99) reported valid")
	}
	if JoinAlg(99).String() != "JoinAlg(99)" {
		t.Errorf("unknown alg string = %q", JoinAlg(99).String())
	}
}

func TestNestedLoopCost(t *testing.T) {
	m := Default()
	if got := m.JoinCost(NestedLoop, 10, 20, false, false); got != 200 {
		t.Fatalf("NLJ cost = %g", got)
	}
	// Sortedness is irrelevant to NLJ.
	if m.JoinCost(NestedLoop, 10, 20, true, true) != 200 {
		t.Fatal("NLJ cost depends on sortedness")
	}
	m.NLBlock = 10
	if got := m.JoinCost(NestedLoop, 10, 20, false, false); got != 20 {
		t.Fatalf("blocked NLJ cost = %g", got)
	}
}

func TestHashCost(t *testing.T) {
	m := Default()
	if got := m.JoinCost(Hash, 100, 50, false, false); math.Abs(got-1.2*150) > 1e-12 {
		t.Fatalf("HJ cost = %g", got)
	}
}

func TestSortMergeCostAndOrders(t *testing.T) {
	m := Default()
	l, r := 64.0, 256.0
	full := m.JoinCost(SortMerge, l, r, false, false)
	want := l*math.Log2(l) + r*math.Log2(r) + l + r
	if math.Abs(full-want) > 1e-9 {
		t.Fatalf("SMJ cost = %g want %g", full, want)
	}
	lSorted := m.JoinCost(SortMerge, l, r, true, false)
	if math.Abs(lSorted-(r*math.Log2(r)+l+r)) > 1e-9 {
		t.Fatalf("SMJ left-sorted cost = %g", lSorted)
	}
	both := m.JoinCost(SortMerge, l, r, true, true)
	if both != l+r {
		t.Fatalf("SMJ both-sorted cost = %g", both)
	}
	if !(both < lSorted && lSorted < full) {
		t.Fatal("sortedness should monotonically reduce SMJ cost")
	}
}

func TestSortMergeTinyInputsClamped(t *testing.T) {
	m := Default()
	got := m.JoinCost(SortMerge, 1, 1, false, false)
	if math.IsNaN(got) || got < 0 {
		t.Fatalf("SMJ cost on tiny inputs = %g", got)
	}
}

func TestScan(t *testing.T) {
	m := Default()
	if m.ScanCost(123) != 123 {
		t.Fatalf("ScanCost = %g", m.ScanCost(123))
	}
	if m.ScanBuffer(1e9) != 1 {
		t.Fatalf("ScanBuffer = %g", m.ScanBuffer(1e9))
	}
}

func TestJoinBuffer(t *testing.T) {
	m := Default()
	if m.JoinBuffer(NestedLoop, 100, 200, false, false) != 2 {
		t.Fatal("NLJ buffer")
	}
	if m.JoinBuffer(Hash, 100, 200, false, false) != 201 {
		t.Fatalf("HJ buffer = %g", m.JoinBuffer(Hash, 100, 200, false, false))
	}
	if got := m.JoinBuffer(SortMerge, 100, 200, false, false); got != 302 {
		t.Fatalf("SMJ buffer = %g", got)
	}
	if got := m.JoinBuffer(SortMerge, 100, 200, true, false); got != 202 {
		t.Fatalf("SMJ buffer left-sorted = %g", got)
	}
	if got := m.JoinBuffer(SortMerge, 100, 200, true, true); got != 2 {
		t.Fatalf("SMJ buffer both-sorted = %g", got)
	}
}

func TestUnknownAlgPanics(t *testing.T) {
	m := Default()
	for name, fn := range map[string]func(){
		"JoinCost":   func() { m.JoinCost(JoinAlg(42), 1, 1, false, false) },
		"JoinBuffer": func() { m.JoinBuffer(JoinAlg(42), 1, 1, false, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with unknown alg did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: all costs are non-negative and monotone in both input
// cardinalities, for all algorithms and sortedness combinations.
func TestCostMonotonicity(t *testing.T) {
	m := Default()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		l := rng.Float64() * 1e6
		r := rng.Float64() * 1e6
		dl := rng.Float64() * 1e5
		dr := rng.Float64() * 1e5
		for _, alg := range Algs {
			for _, ls := range []bool{false, true} {
				for _, rs := range []bool{false, true} {
					c0 := m.JoinCost(alg, l, r, ls, rs)
					if c0 < 0 || math.IsNaN(c0) {
						t.Fatalf("%v cost(%g,%g) = %g", alg, l, r, c0)
					}
					if m.JoinCost(alg, l+dl, r, ls, rs) < c0-1e-9 {
						t.Fatalf("%v cost not monotone in left", alg)
					}
					if m.JoinCost(alg, l, r+dr, ls, rs) < c0-1e-9 {
						t.Fatalf("%v cost not monotone in right", alg)
					}
					b0 := m.JoinBuffer(alg, l, r, ls, rs)
					if b0 < 0 || math.IsNaN(b0) {
						t.Fatalf("%v buffer = %g", alg, b0)
					}
				}
			}
		}
	}
}
