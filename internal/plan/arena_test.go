package plan

import (
	"testing"

	"mpq/internal/cost"
	"mpq/internal/query"
)

func arenaQuery(t testing.TB) *query.Query {
	t.Helper()
	q := query.MustNew([]query.Table{
		{Cardinality: 100}, {Cardinality: 200}, {Cardinality: 50},
	})
	q.MustAddPredicate(query.Predicate{Left: 0, Right: 1, Selectivity: 0.1})
	q.MustAddPredicate(query.Predicate{Left: 1, Right: 2, Selectivity: 0.5})
	q.Freeze()
	return q
}

// Arena constructors must produce nodes bit-identical to the heap
// constructors: they share the construction code, and the DP's
// bit-identity guarantee across arena-on/arena-off runs rests on it.
func TestArenaConstructorsMatchHeap(t *testing.T) {
	q := arenaQuery(t)
	m := cost.Default()
	a := NewArena()

	for tbl := 0; tbl < q.N(); tbl++ {
		heap := Scan(m, q, tbl)
		got := a.Scan(m, q, tbl)
		if *got != *heap {
			t.Fatalf("arena scan %d = %+v, heap %+v", tbl, got, heap)
		}
	}

	l, r := Scan(m, q, 0), Scan(m, q, 1)
	spec := JoinSpec{Alg: cost.Hash, OutCard: 100 * 200 * 0.1, Pred: NoPred, Order: query.NoOrder}
	heap := Join(m, l, r, spec)
	got := a.Join(m, l, r, spec)
	if got.Card != heap.Card || got.Cost != heap.Cost || got.Buffer != heap.Buffer ||
		got.Tables != heap.Tables || got.Order != heap.Order || got.Alg != heap.Alg {
		t.Fatalf("arena join = %+v, heap %+v", got, heap)
	}

	c, buf := JoinScalars(m, l, r, spec)
	heap2 := JoinWithScalars(l, r, spec, c, buf)
	got2 := a.JoinWithScalars(l, r, spec, c, buf)
	if got2.Cost != heap2.Cost || got2.Buffer != heap2.Buffer {
		t.Fatalf("arena JoinWithScalars = %+v, heap %+v", got2, heap2)
	}
}

// Reset must recycle slabs: a second run of the same size allocates no
// new slab, and Allocated tracks the hand-out count.
func TestArenaResetRecyclesSlabs(t *testing.T) {
	q := arenaQuery(t)
	m := cost.Default()
	a := NewArena()

	const nodes = 3 * slabNodes / 2 // force a second slab
	for i := 0; i < nodes; i++ {
		a.Scan(m, q, i%q.N())
	}
	if got := a.Allocated(); got != nodes {
		t.Fatalf("Allocated = %d, want %d", got, nodes)
	}
	slabs := a.Slabs()
	if slabs < 2 {
		t.Fatalf("expected ≥2 slabs after %d nodes, got %d", nodes, slabs)
	}

	for round := 0; round < 3; round++ {
		a.Reset()
		if got := a.Allocated(); got != 0 {
			t.Fatalf("Allocated after Reset = %d", got)
		}
		for i := 0; i < nodes; i++ {
			a.Scan(m, q, i%q.N())
		}
		if a.Slabs() != slabs {
			t.Fatalf("round %d: slab count grew from %d to %d — Reset did not recycle", round, slabs, a.Slabs())
		}
	}
}

// A warm arena hands out nodes without allocating (slab allocation is
// amortized away entirely once the slabs exist).
func TestArenaAllocFreeWhenWarm(t *testing.T) {
	q := arenaQuery(t)
	m := cost.Default()
	a := NewArena()
	for i := 0; i < slabNodes; i++ { // warm one slab
		a.Scan(m, q, 0)
	}
	allocs := testing.AllocsPerRun(10, func() {
		a.Reset()
		for i := 0; i < slabNodes; i++ {
			a.Scan(m, q, 0)
		}
	})
	if allocs != 0 {
		t.Errorf("warm arena allocates %.1f times per %d nodes", allocs, slabNodes)
	}
}

// CloneTree must produce an equal tree sharing no nodes with the
// original — the copy stays valid after the arena recycles its slabs.
func TestCloneTreeEscapesArena(t *testing.T) {
	q := arenaQuery(t)
	m := cost.Default()
	a := NewArena()

	l := a.Scan(m, q, 0)
	r := a.Scan(m, q, 1)
	join := a.Join(m, l, r, JoinSpec{Alg: cost.Hash, OutCard: 2000, Pred: NoPred, Order: query.NoOrder})
	// card = 2000 · 50 · sel(1,2) = 2000 · 50 · 0.5
	root := a.Join(m, join, a.Scan(m, q, 2), JoinSpec{Alg: cost.NestedLoop, OutCard: 50000, Pred: NoPred, Order: query.NoOrder})

	clone := CloneTree(root)
	want := root.String()
	wantCost := root.Cost

	// Recycle the arena and scribble over every slab slot.
	a.Reset()
	for i := 0; i < 4*slabNodes; i++ {
		a.Scan(m, q, 0)
	}

	if clone.String() != want || clone.Cost != wantCost {
		t.Fatalf("clone changed after arena reuse: %s (cost %g), want %s (cost %g)",
			clone.String(), clone.Cost, want, wantCost)
	}
	if err := clone.Validate(q, m); err != nil {
		t.Fatalf("clone fails validation: %v", err)
	}
	if CloneTree(nil) != nil {
		t.Fatal("CloneTree(nil) != nil")
	}
}
