// Package plan defines query-plan trees (§3 of the paper): scan leaves
// and binary join nodes annotated with the table set they produce,
// cardinality and cost estimates, and the physical sort order of their
// output (interesting orders).
//
// A plan node is immutable after construction and shares operand subtrees
// with other plans, so a memo entry costs O(1) space as assumed by the
// paper's memory analysis (Theorem 4).
package plan

import (
	"fmt"
	"math"
	"strings"

	"mpq/internal/bitset"
	"mpq/internal/cost"
	"mpq/internal/query"
)

// NoPred marks a join that uses no merge predicate (cross product or
// non-sort-merge operator).
const NoPred = -1

// Node is one operator of a query plan.
type Node struct {
	// IsScan distinguishes leaves from joins.
	IsScan bool
	// Table is the scanned table index (scan nodes only).
	Table int
	// Alg is the join algorithm (join nodes only).
	Alg cost.JoinAlg
	// Pred is the predicate index a sort-merge join merges on, or NoPred.
	Pred int
	// Left is the outer operand, Right the inner operand (join only).
	Left, Right *Node

	// Tables is the set of tables this subtree joins.
	Tables bitset.Set
	// Card is the estimated output cardinality.
	Card float64
	// Cost is the cumulative time-metric cost of the subtree.
	Cost float64
	// Buffer is the cumulative buffer-space metric (max over operators).
	Buffer float64
	// Order is the attribute the output is sorted on (query.AttrID), or
	// query.NoOrder.
	Order int
}

// Scan builds a scan leaf for table t of q.
func Scan(m cost.Model, q *query.Query, t int) *Node {
	n := scanNode(m, q, t)
	return &n
}

// scanNode is the shared scan constructor: Scan heap-allocates the value
// it returns, Arena.Scan writes it into a slab slot. Both paths must
// produce bit-identical annotations, which sharing this function
// guarantees.
func scanNode(m cost.Model, q *query.Query, t int) Node {
	card := q.Card(t)
	return Node{
		IsScan: true,
		Table:  t,
		Pred:   NoPred,
		Tables: bitset.Single(t),
		Card:   card,
		Cost:   m.ScanCost(card),
		Buffer: m.ScanSecond(card),
		Order:  query.NoOrder,
	}
}

// JoinSpec carries the precomputed facts a join constructor needs. The
// dynamic program computes output cardinality once per table set, so the
// constructor takes it as an input instead of recomputing it per split.
type JoinSpec struct {
	Alg     cost.JoinAlg
	OutCard float64
	Pred    int  // merge predicate for SortMerge, else NoPred
	Order   int  // output order (query.AttrID or query.NoOrder)
	LSorted bool // left input already sorted on the merge attribute
	RSorted bool // right input already sorted on the merge attribute
}

// JoinScalars returns the Cost and Buffer annotations the node built by
// Join(m, l, r, spec) would carry, without constructing it. The dynamic
// program's cost-first pruning protocol evaluates every candidate join
// through this function and materializes a Node only for candidates that
// survive admission, so the two must (and, by sharing this code path, do)
// agree bit for bit.
func JoinScalars(m cost.Model, l, r *Node, spec JoinSpec) (costv, buffer float64) {
	opCost := m.JoinCost(spec.Alg, l.Card, r.Card, spec.LSorted, spec.RSorted)
	opBuf := m.JoinSecond(spec.Alg, l.Card, r.Card, spec.LSorted, spec.RSorted)
	return l.Cost + r.Cost + opCost, m.CombineSecond(l.Buffer, r.Buffer, opBuf)
}

// JoinScalarsRobust is JoinScalars for RobustCost models: the Buffer
// slot accumulates the plan's worst-case cumulative cost over the
// selectivity-uncertainty band, which requires the operands'
// high-endpoint cardinalities lHi and rHi (tracked once per relation
// set by the DP, like nominal cardinalities). Cost stays the nominal
// cumulative cost, so Pareto pruning over (Cost, Buffer) explores the
// nominal-vs-worst-case trade-off.
func JoinScalarsRobust(m cost.Model, l, r *Node, spec JoinSpec, lHi, rHi float64) (costv, buffer float64) {
	opCost := m.JoinCost(spec.Alg, l.Card, r.Card, spec.LSorted, spec.RSorted)
	opHi := m.JoinSecond(spec.Alg, lHi, rHi, spec.LSorted, spec.RSorted)
	return l.Cost + r.Cost + opCost, m.CombineSecond(l.Buffer, r.Buffer, opHi)
}

// Join builds a join node over operands l (outer) and r (inner).
func Join(m cost.Model, l, r *Node, spec JoinSpec) *Node {
	c, buf := JoinScalars(m, l, r, spec)
	return JoinWithScalars(l, r, spec, c, buf)
}

// JoinWithScalars builds the node Join would, reusing cost and buffer
// values the caller already obtained from JoinScalars for this exact
// (l, r, spec) — the DP's survivor path, which has just admitted the
// candidate on those scalars and need not recompute them.
func JoinWithScalars(l, r *Node, spec JoinSpec, costv, buffer float64) *Node {
	n := joinNode(l, r, spec, costv, buffer)
	return &n
}

// joinNode is the shared join constructor backing JoinWithScalars and
// Arena.JoinWithScalars (see scanNode).
func joinNode(l, r *Node, spec JoinSpec, costv, buffer float64) Node {
	return Node{
		Alg:    spec.Alg,
		Pred:   spec.Pred,
		Left:   l,
		Right:  r,
		Tables: l.Tables.Union(r.Tables),
		Card:   spec.OutCard,
		Cost:   costv,
		Buffer: buffer,
		Order:  spec.Order,
	}
}

// IsLeftDeep reports whether every join's inner (right) operand is a
// scan, i.e. the plan lies in the linear plan space of §3.
func (n *Node) IsLeftDeep() bool {
	if n.IsScan {
		return true
	}
	return n.Right.IsScan && n.Left.IsLeftDeep()
}

// CountJoins returns the number of join operators in the subtree.
func (n *Node) CountJoins() int {
	if n.IsScan {
		return 0
	}
	return 1 + n.Left.CountJoins() + n.Right.CountJoins()
}

// Height returns the operator-tree height (a scan has height 1).
func (n *Node) Height() int {
	if n.IsScan {
		return 1
	}
	lh, rh := n.Left.Height(), n.Right.Height()
	if rh > lh {
		lh = rh
	}
	return lh + 1
}

// JoinOrder returns the table indices in the order scan leaves are
// encountered in a post-order traversal. For left-deep plans this is the
// join order of §3.
func (n *Node) JoinOrder() []int {
	var out []int
	var walk func(*Node)
	walk = func(p *Node) {
		if p.IsScan {
			out = append(out, p.Table)
			return
		}
		walk(p.Left)
		walk(p.Right)
	}
	walk(n)
	return out
}

// String renders the plan as a one-line expression, e.g.
// "((T0 HJ T1) NLJ T2)".
func (n *Node) String() string {
	var b strings.Builder
	n.writeExpr(&b)
	return b.String()
}

func (n *Node) writeExpr(b *strings.Builder) {
	if n.IsScan {
		fmt.Fprintf(b, "T%d", n.Table)
		return
	}
	b.WriteByte('(')
	n.Left.writeExpr(b)
	b.WriteByte(' ')
	b.WriteString(n.Alg.String())
	b.WriteByte(' ')
	n.Right.writeExpr(b)
	b.WriteByte(')')
}

// Format renders an indented operator tree with estimates, suitable for
// CLI output.
func (n *Node) Format() string {
	var b strings.Builder
	n.format(&b, 0)
	return b.String()
}

func (n *Node) format(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.IsScan {
		fmt.Fprintf(b, "%sScan(T%d) card=%.3g cost=%.4g\n", indent, n.Table, n.Card, n.Cost)
		return
	}
	order := ""
	if n.Order != query.NoOrder {
		order = fmt.Sprintf(" order=%d", n.Order)
	}
	fmt.Fprintf(b, "%s%s card=%.3g cost=%.4g buffer=%.4g%s\n", indent, n.Alg, n.Card, n.Cost, n.Buffer, order)
	n.Left.format(b, depth+1)
	n.Right.format(b, depth+1)
}

const eps = 1e-6

func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= eps*scale
}

// Validate checks the structural and arithmetic integrity of the plan
// against query q and cost model m: operand table sets are disjoint,
// unions and the root table set are correct, and cardinality, cost,
// buffer and order annotations recompute to the stored values. It
// returns the first violation found.
func (n *Node) Validate(q *query.Query, m cost.Model) error {
	_, _, err := n.rebuild(q, m, true)
	return err
}

// Reannotate rebuilds the plan's annotations (cardinality, cost,
// buffer, order) from its structure under a different query and/or
// cost model: same tables, join algorithms and merge predicates, fresh
// estimates. This is how the regret experiments cost a plan chosen
// under noisy estimates against the true statistics, and how a plan's
// worst-case band cost is computed by re-annotating under an inflated
// query (estim.Inflate). n is not modified; q must have the same table
// count and predicate list as the query the plan was built against.
// Note the per-set cardinalities are recomputed per tree here, so
// annotations can differ from the DP's by float association — compare
// with a relative tolerance, as Validate does.
func (n *Node) Reannotate(q *query.Query, m cost.Model) (*Node, error) {
	rebuilt, _, err := n.rebuild(q, m, false)
	return rebuilt, err
}

// rebuild recomputes the subtree's annotations from its structure under
// (q, m) and returns the rebuilt node plus its high-endpoint
// cardinality (equal to Card for non-robust models). With check set it
// also compares every recomputed annotation against the stored one —
// the Validate path; Reannotate skips the comparisons because its whole
// point is annotating the structure under different statistics.
func (n *Node) rebuild(q *query.Query, m cost.Model, check bool) (*Node, float64, error) {
	if n.IsScan {
		if n.Table < 0 || n.Table >= q.N() {
			return nil, 0, fmt.Errorf("plan: scan table %d out of range", n.Table)
		}
		want := Scan(m, q, n.Table)
		if check && (n.Tables != want.Tables || !approxEq(n.Card, want.Card) || !approxEq(n.Cost, want.Cost)) {
			return nil, 0, fmt.Errorf("plan: scan T%d annotations inconsistent: %+v", n.Table, n)
		}
		return want, want.Card, nil
	}
	if n.Left == nil || n.Right == nil {
		return nil, 0, fmt.Errorf("plan: join with nil operand")
	}
	if n.Left.Tables.Intersects(n.Right.Tables) {
		return nil, 0, fmt.Errorf("plan: operands overlap: %v and %v", n.Left.Tables, n.Right.Tables)
	}
	if n.Left.Tables.Union(n.Right.Tables) != n.Tables {
		return nil, 0, fmt.Errorf("plan: table set %v != union of operands", n.Tables)
	}
	l, lHi, err := n.Left.rebuild(q, m, check)
	if err != nil {
		return nil, 0, err
	}
	r, rHi, err := n.Right.rebuild(q, m, check)
	if err != nil {
		return nil, 0, err
	}
	if !n.Alg.Valid() {
		return nil, 0, fmt.Errorf("plan: invalid join algorithm %d", int(n.Alg))
	}
	wantCard := l.Card * r.Card * q.SelBetween(n.Left.Tables, n.Right.Tables)
	lSorted, rSorted := false, false
	order := query.NoOrder
	pred := NoPred
	if n.Alg == cost.SortMerge && n.Pred != NoPred {
		if n.Pred < 0 || n.Pred >= len(q.Preds) {
			return nil, 0, fmt.Errorf("plan: merge predicate %d out of range", n.Pred)
		}
		p := q.Preds[n.Pred]
		la, ra := mergeAttrs(p, n.Left.Tables)
		if la == query.NoOrder {
			return nil, 0, fmt.Errorf("plan: merge predicate %d does not straddle operands", n.Pred)
		}
		lSorted = l.Order == la
		rSorted = r.Order == ra
		order = minOrder(la, ra)
		pred = n.Pred
	} else if n.Alg == cost.NestedLoop {
		order = l.Order // NLJ preserves outer order
	}
	spec := JoinSpec{
		Alg: n.Alg, OutCard: wantCard, Pred: pred, Order: order,
		LSorted: lSorted, RSorted: rSorted,
	}
	hi := wantCard
	var rebuilt *Node
	if m.Second == cost.RobustCost {
		hi = lHi * rHi * q.SelBetweenInflated(n.Left.Tables, n.Right.Tables, m.RobustBand)
		c, buf := JoinScalarsRobust(m, l, r, spec, lHi, rHi)
		rebuilt = JoinWithScalars(l, r, spec, c, buf)
	} else {
		rebuilt = Join(m, l, r, spec)
	}
	if check {
		if !approxEq(n.Card, rebuilt.Card) {
			return nil, 0, fmt.Errorf("plan: card %g, recomputed %g for %v", n.Card, rebuilt.Card, n.Tables)
		}
		if !approxEq(n.Cost, rebuilt.Cost) {
			return nil, 0, fmt.Errorf("plan: cost %g, recomputed %g for %v", n.Cost, rebuilt.Cost, n.Tables)
		}
		if !approxEq(n.Buffer, rebuilt.Buffer) {
			return nil, 0, fmt.Errorf("plan: buffer %g, recomputed %g for %v", n.Buffer, rebuilt.Buffer, n.Tables)
		}
		if n.Order != rebuilt.Order {
			return nil, 0, fmt.Errorf("plan: order %d, recomputed %d for %v", n.Order, rebuilt.Order, n.Tables)
		}
	}
	return rebuilt, hi, nil
}

// mergeAttrs returns the order (attribute) IDs of predicate p as seen
// from an operand pair where leftTables holds the left operand's tables:
// the first return is the attribute on the left side, the second on the
// right side. Returns (NoOrder, NoOrder) if p does not straddle.
func mergeAttrs(p query.Predicate, leftTables bitset.Set) (int, int) {
	la := query.AttrID(p.Left, p.LeftAttr)
	ra := query.AttrID(p.Right, p.RightAttr)
	if leftTables.Contains(p.Left) {
		return la, ra
	}
	if leftTables.Contains(p.Right) {
		return ra, la
	}
	return query.NoOrder, query.NoOrder
}

// MergeAttrs is the exported form used by the DP when enumerating
// sort-merge joins.
func MergeAttrs(p query.Predicate, leftTables bitset.Set) (int, int) {
	return mergeAttrs(p, leftTables)
}

func minOrder(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// CanonicalMergeOrder returns the canonical output order of a sort-merge
// join on predicate p: the smaller of the two endpoint attribute IDs
// (both columns are equal after the join, so one canonical id suffices).
func CanonicalMergeOrder(p query.Predicate) int {
	return minOrder(query.AttrID(p.Left, p.LeftAttr), query.AttrID(p.Right, p.RightAttr))
}

// Stats counts optimizer work. It doubles as the deterministic work meter
// that the cluster simulator converts into virtual compute time.
type Stats struct {
	// SetsProcessed is the number of admissible join-result sets treated.
	SetsProcessed uint64
	// SplitsTried is the number of operand pairs considered.
	SplitsTried uint64
	// PlansKept is the number of plans that survived pruning.
	PlansKept uint64
	// PlansPruned is the number of generated plans discarded by pruning.
	PlansPruned uint64
	// MemoEntries is the number of table sets held in the memo at the
	// end of optimization (the paper's "memory (relations)" metric).
	MemoEntries uint64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.SetsProcessed += o.SetsProcessed
	s.SplitsTried += o.SplitsTried
	s.PlansKept += o.PlansKept
	s.PlansPruned += o.PlansPruned
	if o.MemoEntries > s.MemoEntries {
		s.MemoEntries = o.MemoEntries
	}
}

// WorkUnits is the deterministic abstract work performed: one unit per
// treated set, per considered split, and per generated plan (kept or
// pruned). Proportional to the DP's running time (Theorems 6 and 7);
// the plan term captures the frontier-size blowup of multi-objective
// pruning (§5.4: time grows with the cube of plans per table set).
func (s Stats) WorkUnits() uint64 {
	return s.SetsProcessed + s.SplitsTried + s.PlansKept + s.PlansPruned
}
