package plan

import (
	"strings"
	"testing"

	"mpq/internal/cost"
	"mpq/internal/query"
)

func TestDOT(t *testing.T) {
	q := query.MustNew([]query.Table{
		{Name: "A", Cardinality: 100},
		{Name: "B", Cardinality: 200},
	})
	q.MustAddPredicate(query.Predicate{Left: 0, Right: 1, Selectivity: 0.01})
	q.Freeze()
	m := cost.Default()
	j := Join(m, Scan(m, q, 0), Scan(m, q, 1), JoinSpec{
		Alg: cost.Hash, OutCard: q.CardOf(q.All()), Pred: NoPred, Order: query.NoOrder,
	})
	dot := j.DOT("test")
	for _, want := range []string{
		"digraph \"test\"",
		"Scan T0", "Scan T1", "HJ",
		"outer", "inner",
		"}",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Three nodes, two edges.
	if got := strings.Count(dot, "->"); got != 2 {
		t.Fatalf("%d edges", got)
	}
	if got := strings.Count(dot, "label="); got != 5 {
		t.Fatalf("%d labels", got)
	}
}
