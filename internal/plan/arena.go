// Plan-node arena: a slab allocator that backs the dynamic program's
// surviving plans with contiguous memory.
//
// The DP's cost-first pruning (PR 1) made *pruned* candidates free, but
// every *survivor* still cost one heap-allocated Node, and large runs
// keep tens of thousands of survivors. Handing survivors out of chunked
// slabs removes the per-node allocation, keeps plans that reference each
// other adjacent in memory (operand pointers almost always point into
// the same or a neighbouring slab), and lets a batch of queries recycle
// the slabs via Reset instead of re-growing the heap — the discipline
// production optimizers (DuckDB's arena-backed join-order DP, Umbra's
// region allocators) use to keep large-clique DP runs off the allocator.
package plan

import (
	"mpq/internal/cost"
	"mpq/internal/query"
)

// slabNodes is the number of nodes per slab. At roughly 100 bytes per
// Node a slab is ~100 KiB: big enough that slab allocation is noise
// even for million-survivor runs, small enough that tiny partitions
// don't hold megabytes hostage in a pooled runtime.
const slabNodes = 1024

// Arena hands out plan nodes from contiguous slabs. Node values built
// through an arena are bit-identical to the heap constructors' (they
// share the construction code); only the allocation site differs.
//
// An arena is not safe for concurrent use; each DP worker owns one.
// All nodes handed out since the last Reset remain valid until the next
// Reset — callers that retain plans past a Reset (e.g. a pooled runtime
// recycling slabs between queries) must copy them out first, see
// CloneTree.
type Arena struct {
	slabs [][]Node
	si    int // slab currently being filled
	used  int // nodes handed out from slabs[si]
}

// NewArena returns an empty arena; slabs are allocated on demand.
func NewArena() *Arena { return &Arena{} }

// alloc returns a pointer to the next free slab slot, growing by one
// slab when the recycled ones are exhausted.
func (a *Arena) alloc() *Node {
	for {
		if a.si < len(a.slabs) {
			if slab := a.slabs[a.si]; a.used < len(slab) {
				n := &slab[a.used]
				a.used++
				return n
			}
			a.si++
			a.used = 0
			continue
		}
		a.slabs = append(a.slabs, make([]Node, slabNodes))
	}
}

// Scan is Scan allocating from the arena.
func (a *Arena) Scan(m cost.Model, q *query.Query, t int) *Node {
	n := a.alloc()
	*n = scanNode(m, q, t)
	return n
}

// Join is Join allocating from the arena.
func (a *Arena) Join(m cost.Model, l, r *Node, spec JoinSpec) *Node {
	c, buf := JoinScalars(m, l, r, spec)
	return a.JoinWithScalars(l, r, spec, c, buf)
}

// JoinWithScalars is JoinWithScalars allocating from the arena — the
// DP's survivor path.
func (a *Arena) JoinWithScalars(l, r *Node, spec JoinSpec, costv, buffer float64) *Node {
	n := a.alloc()
	*n = joinNode(l, r, spec, costv, buffer)
	return n
}

// Reset recycles every slab for a new run: nodes handed out so far are
// invalidated (their memory will be overwritten) but no slab memory is
// released, so a run of similar size allocates nothing. Slot contents
// are not zeroed — every alloc writes a complete Node value.
func (a *Arena) Reset() {
	a.si, a.used = 0, 0
}

// Allocated returns the number of nodes handed out since the last
// Reset.
func (a *Arena) Allocated() int {
	n := a.used
	for i := 0; i < a.si && i < len(a.slabs); i++ {
		n += len(a.slabs[i])
	}
	return n
}

// Slabs returns the number of slabs the arena owns (allocation-reuse
// tests assert this stops growing across Resets).
func (a *Arena) Slabs() int { return len(a.slabs) }

// CloneTree deep-copies a plan into fresh heap nodes. It is how
// surviving plans escape an arena whose slabs are about to be recycled:
// the copy carries identical annotations (wire fingerprints are
// unchanged) but shares no memory with the arena. A plan is a proper
// tree (operand table sets are disjoint), so the copy has exactly one
// node per operator.
func CloneTree(n *Node) *Node {
	if n == nil {
		return nil
	}
	c := *n
	if !n.IsScan {
		c.Left = CloneTree(n.Left)
		c.Right = CloneTree(n.Right)
	}
	return &c
}
