package plan

import (
	"fmt"
	"strings"
)

// DOT renders the plan as a Graphviz digraph for visual inspection
// (`mpqopt -dot | dot -Tsvg`). Scans are boxes, joins are ellipses
// labeled with the operator and its estimates.
func (n *Node) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  node [fontname=\"Helvetica\"];\n")
	id := 0
	var walk func(p *Node) int
	walk = func(p *Node) int {
		my := id
		id++
		if p.IsScan {
			fmt.Fprintf(&b, "  n%d [shape=box, label=\"Scan T%d\\ncard=%.3g\"];\n", my, p.Table, p.Card)
			return my
		}
		fmt.Fprintf(&b, "  n%d [shape=ellipse, label=\"%s\\ncard=%.3g cost=%.3g\"];\n", my, p.Alg, p.Card, p.Cost)
		l := walk(p.Left)
		r := walk(p.Right)
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"outer\"];\n", my, l)
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"inner\"];\n", my, r)
		return my
	}
	walk(n)
	b.WriteString("}\n")
	return b.String()
}
