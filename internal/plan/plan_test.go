package plan

import (
	"math"
	"strings"
	"testing"

	"mpq/internal/bitset"
	"mpq/internal/cost"
	"mpq/internal/query"
)

func testQuery(t *testing.T) *query.Query {
	t.Helper()
	q := query.MustNew([]query.Table{
		{Name: "A", Cardinality: 100},
		{Name: "B", Cardinality: 200},
		{Name: "C", Cardinality: 50},
	})
	q.MustAddPredicate(query.Predicate{Left: 0, Right: 1, Selectivity: 0.01})
	q.MustAddPredicate(query.Predicate{Left: 1, Right: 2, Selectivity: 0.1, LeftAttr: 1})
	q.Freeze()
	return q
}

func TestScanNode(t *testing.T) {
	q := testQuery(t)
	m := cost.Default()
	s := Scan(m, q, 1)
	if !s.IsScan || s.Table != 1 {
		t.Fatalf("scan node %+v", s)
	}
	if s.Tables != bitset.Single(1) {
		t.Fatalf("tables = %v", s.Tables)
	}
	if s.Card != 200 || s.Cost != 200 {
		t.Fatalf("card/cost = %g/%g", s.Card, s.Cost)
	}
	if s.Order != query.NoOrder {
		t.Fatalf("order = %d", s.Order)
	}
	if err := s.Validate(q, m); err != nil {
		t.Fatal(err)
	}
}

// buildAB joins scan(0) with scan(1) using the given algorithm.
func buildAB(q *query.Query, m cost.Model, alg cost.JoinAlg) *Node {
	l, r := Scan(m, q, 0), Scan(m, q, 1)
	card := q.CardOf(bitset.Of(0, 1))
	spec := JoinSpec{Alg: alg, OutCard: card, Pred: NoPred, Order: query.NoOrder}
	if alg == cost.SortMerge {
		spec.Pred = 0
		spec.Order = CanonicalMergeOrder(q.Preds[0])
	}
	return Join(m, l, r, spec)
}

func TestJoinNodeAccounting(t *testing.T) {
	q := testQuery(t)
	m := cost.Default()
	j := buildAB(q, m, cost.Hash)
	if j.Tables != bitset.Of(0, 1) {
		t.Fatalf("tables = %v", j.Tables)
	}
	wantCard := 100.0 * 200 * 0.01
	if math.Abs(j.Card-wantCard) > 1e-9 {
		t.Fatalf("card = %g want %g", j.Card, wantCard)
	}
	wantCost := 100 + 200 + 1.2*(100+200)
	if math.Abs(j.Cost-wantCost) > 1e-9 {
		t.Fatalf("cost = %g want %g", j.Cost, wantCost)
	}
	// Buffer: max(scan bufs (1), hash build 200+1) = 201.
	if j.Buffer != 201 {
		t.Fatalf("buffer = %g", j.Buffer)
	}
	if err := j.Validate(q, m); err != nil {
		t.Fatal(err)
	}
}

func TestSortMergeOrderPropagation(t *testing.T) {
	q := testQuery(t)
	m := cost.Default()
	j := buildAB(q, m, cost.SortMerge)
	want := CanonicalMergeOrder(q.Preds[0])
	if j.Order != want {
		t.Fatalf("order = %d want %d", j.Order, want)
	}
	if err := j.Validate(q, m); err != nil {
		t.Fatal(err)
	}
	// Hash join destroys order.
	h := buildAB(q, m, cost.Hash)
	if h.Order != query.NoOrder {
		t.Fatalf("hash join order = %d", h.Order)
	}
}

func TestNestedLoopPreservesOuterOrder(t *testing.T) {
	q := testQuery(t)
	m := cost.Default()
	ab := buildAB(q, m, cost.SortMerge) // sorted output
	c := Scan(m, q, 2)
	card := q.CardOf(q.All())
	j := Join(m, ab, c, JoinSpec{Alg: cost.NestedLoop, OutCard: card, Pred: NoPred, Order: ab.Order})
	if j.Order != ab.Order {
		t.Fatalf("NLJ order = %d want %d", j.Order, ab.Order)
	}
	if err := j.Validate(q, m); err != nil {
		t.Fatal(err)
	}
}

func TestSortedInputReducesSMJCost(t *testing.T) {
	q := testQuery(t)
	m := cost.Default()
	// AB sorted on pred0's canonical attribute == AttrID(0,0) or (1,0).
	ab := buildAB(q, m, cost.SortMerge)
	c := Scan(m, q, 2)
	card := q.CardOf(q.All())
	// Merge on predicate 1 (B.attr1 = C.attr0). AB is sorted on pred0's
	// attr, not pred1's, so no discount applies.
	p1 := q.Preds[1]
	la, ra := MergeAttrs(p1, ab.Tables)
	lSorted := ab.Order == la
	if lSorted {
		t.Fatal("test setup: AB should not be sorted on pred1's attribute")
	}
	full := Join(m, ab, c, JoinSpec{
		Alg: cost.SortMerge, OutCard: card, Pred: 1,
		Order: minOrder(la, ra), LSorted: lSorted,
	})
	// Now pretend AB were sorted on pred1's left attribute.
	discounted := Join(m, ab, c, JoinSpec{
		Alg: cost.SortMerge, OutCard: card, Pred: 1,
		Order: minOrder(la, ra), LSorted: true,
	})
	if !(discounted.Cost < full.Cost) {
		t.Fatalf("sorted input did not reduce cost: %g vs %g", discounted.Cost, full.Cost)
	}
}

func TestIsLeftDeep(t *testing.T) {
	q := testQuery(t)
	m := cost.Default()
	ab := buildAB(q, m, cost.Hash)
	c := Scan(m, q, 2)
	card := q.CardOf(q.All())
	leftDeep := Join(m, ab, c, JoinSpec{Alg: cost.Hash, OutCard: card, Pred: NoPred, Order: query.NoOrder})
	if !leftDeep.IsLeftDeep() {
		t.Fatal("left-deep plan misclassified")
	}
	bushy := Join(m, c, ab, JoinSpec{Alg: cost.Hash, OutCard: card, Pred: NoPred, Order: query.NoOrder})
	if bushy.IsLeftDeep() {
		t.Fatal("bushy plan classified as left-deep")
	}
	if leftDeep.CountJoins() != 2 {
		t.Fatalf("CountJoins = %d", leftDeep.CountJoins())
	}
	if leftDeep.Height() != 3 {
		t.Fatalf("Height = %d", leftDeep.Height())
	}
}

func TestJoinOrder(t *testing.T) {
	q := testQuery(t)
	m := cost.Default()
	ab := buildAB(q, m, cost.Hash)
	c := Scan(m, q, 2)
	j := Join(m, ab, c, JoinSpec{Alg: cost.Hash, OutCard: q.CardOf(q.All()), Pred: NoPred, Order: query.NoOrder})
	got := j.JoinOrder()
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("JoinOrder = %v", got)
		}
	}
}

func TestStringAndFormat(t *testing.T) {
	q := testQuery(t)
	m := cost.Default()
	j := buildAB(q, m, cost.Hash)
	if got := j.String(); got != "(T0 HJ T1)" {
		t.Fatalf("String = %q", got)
	}
	f := j.Format()
	if !strings.Contains(f, "HJ") || !strings.Contains(f, "Scan(T0)") {
		t.Fatalf("Format = %q", f)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	q := testQuery(t)
	m := cost.Default()

	corrupt := func(mut func(*Node)) *Node {
		j := buildAB(q, m, cost.Hash)
		cp := *j
		mut(&cp)
		return &cp
	}
	cases := map[string]*Node{
		"cost":   corrupt(func(n *Node) { n.Cost *= 2 }),
		"card":   corrupt(func(n *Node) { n.Card += 1 }),
		"buffer": corrupt(func(n *Node) { n.Buffer = 0 }),
		"tables": corrupt(func(n *Node) { n.Tables = bitset.Of(0, 2) }),
		"order":  corrupt(func(n *Node) { n.Order = 5 }),
		"alg":    corrupt(func(n *Node) { n.Alg = cost.JoinAlg(9) }),
	}
	for name, n := range cases {
		if err := n.Validate(q, m); err == nil {
			t.Errorf("%s corruption not detected", name)
		}
	}
	// Overlapping operands.
	a := Scan(m, q, 0)
	bad := &Node{Left: a, Right: a, Tables: a.Tables, Alg: cost.Hash, Pred: NoPred, Order: query.NoOrder}
	if err := bad.Validate(q, m); err == nil {
		t.Error("overlapping operands not detected")
	}
	// Nil operand.
	nilOp := &Node{Left: a, Right: nil, Tables: a.Tables, Alg: cost.Hash}
	if err := nilOp.Validate(q, m); err == nil {
		t.Error("nil operand not detected")
	}
	// Scan out of range.
	oob := &Node{IsScan: true, Table: 9, Tables: bitset.Single(9)}
	if err := oob.Validate(q, m); err == nil {
		t.Error("scan out of range not detected")
	}
}

func TestMergeAttrs(t *testing.T) {
	q := testQuery(t)
	p := q.Preds[1] // B.1 = C.0
	la, ra := MergeAttrs(p, bitset.Of(0, 1))
	if la != query.AttrID(1, 1) || ra != query.AttrID(2, 0) {
		t.Fatalf("MergeAttrs = %d,%d", la, ra)
	}
	// Swapped sides.
	la, ra = MergeAttrs(p, bitset.Of(2))
	if la != query.AttrID(2, 0) || ra != query.AttrID(1, 1) {
		t.Fatalf("MergeAttrs swapped = %d,%d", la, ra)
	}
	// Not straddling.
	la, ra = MergeAttrs(p, bitset.Of(0))
	if la != query.NoOrder || ra != query.NoOrder {
		t.Fatalf("MergeAttrs non-straddling = %d,%d", la, ra)
	}
}

func TestStatsAddAndWorkUnits(t *testing.T) {
	a := Stats{SetsProcessed: 10, SplitsTried: 100, PlansKept: 5, PlansPruned: 95, MemoEntries: 7}
	b := Stats{SetsProcessed: 1, SplitsTried: 2, PlansKept: 3, PlansPruned: 4, MemoEntries: 9}
	a.Add(b)
	if a.SetsProcessed != 11 || a.SplitsTried != 102 || a.PlansKept != 8 || a.PlansPruned != 99 {
		t.Fatalf("Add result %+v", a)
	}
	if a.MemoEntries != 9 {
		t.Fatalf("MemoEntries should take max, got %d", a.MemoEntries)
	}
	if a.WorkUnits() != 11+102+8+99 {
		t.Fatalf("WorkUnits = %d", a.WorkUnits())
	}
}
