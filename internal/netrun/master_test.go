package netrun

import (
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"mpq/internal/core"
	"mpq/internal/partition"
)

// Table-driven constructor validation: these error strings are part of
// the operational surface (they show up in mpqnode logs), so pin them.
func TestNewMasterValidationTable(t *testing.T) {
	cases := []struct {
		name    string
		addrs   []string
		opts    Options
		wantErr string
	}{
		{
			name:    "no addresses",
			addrs:   nil,
			wantErr: "netrun: no worker addresses",
		},
		{
			name:    "duplicate address",
			addrs:   []string{"a:1", "b:1", "a:1"},
			wantErr: `netrun: duplicate worker address "a:1"`,
		},
		{
			name:    "negative timeout",
			addrs:   []string{"a:1"},
			opts:    Options{Timeout: -time.Second},
			wantErr: "netrun: negative timeout -1s",
		},
		{
			name:    "negative attempt budget",
			addrs:   []string{"a:1"},
			opts:    Options{MaxAttempts: -1},
			wantErr: "netrun: negative attempt budget -1",
		},
		{
			name:    "negative worker failure limit",
			addrs:   []string{"a:1"},
			opts:    Options{MaxWorkerFailures: -2},
			wantErr: "netrun: negative worker failure limit -2",
		},
		{
			name:    "weight count mismatch",
			addrs:   []string{"a:1"},
			opts:    Options{Weights: []float64{1, 2}},
			wantErr: "netrun: 2 weights for 1 workers",
		},
		{
			name:    "zero weight",
			addrs:   []string{"a:1", "b:1"},
			opts:    Options{Weights: []float64{1, 0}},
			wantErr: "netrun: weight 1 is 0, must be positive",
		},
		{
			name:    "NaN weight",
			addrs:   []string{"a:1", "b:1"},
			opts:    Options{Weights: []float64{1, nan()}},
			wantErr: "netrun: weight 1 is NaN, must be positive",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewMasterWithOptions(c.addrs, c.opts)
			if err == nil {
				t.Fatalf("invalid config accepted: %+v", c.opts)
			}
			if err.Error() != c.wantErr {
				t.Fatalf("error %q, want %q", err.Error(), c.wantErr)
			}
		})
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

// Zero values mean defaults, not zero budgets.
func TestNewMasterDefaults(t *testing.T) {
	ms, err := NewMaster([]string{"a:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ms.timeout != DefaultTimeout {
		t.Fatalf("timeout = %v, want %v", ms.timeout, DefaultTimeout)
	}
	if ms.maxAttempts != DefaultMaxAttempts {
		t.Fatalf("maxAttempts = %d, want %d", ms.maxAttempts, DefaultMaxAttempts)
	}
	if ms.maxWorkerFailures != DefaultMaxWorkerFailures {
		t.Fatalf("maxWorkerFailures = %d, want %d", ms.maxWorkerFailures, DefaultMaxWorkerFailures)
	}
	// Explicit values survive.
	ms, err = NewMasterWithOptions([]string{"a:1"}, Options{
		Timeout: time.Second, MaxAttempts: 7, MaxWorkerFailures: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ms.timeout != time.Second || ms.maxAttempts != 7 || ms.maxWorkerFailures != 4 {
		t.Fatalf("options not applied: %+v", ms)
	}
}

// With every worker dead the master reports the aggregate failure, not
// a hang.
func TestOptimizeAllWorkersDead(t *testing.T) {
	addrs := make([]string, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	ms, err := NewMaster(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	q := gen(t, 6, 0)
	_, err = ms.Optimize(q, core.JobSpec{Space: partition.Linear, Workers: 2})
	if err == nil {
		t.Fatal("all-dead cluster not reported")
	}
	if !strings.Contains(err.Error(), "all 2 workers failed") {
		t.Fatalf("error %q does not report the dead cluster", err)
	}
}

// A worker that accepts the connection and the request but never
// responds leaves a half-open connection; after the master gives up it
// must have closed every connection it opened.
func TestOptimizeClosesHalfOpenConnections(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	closed := make(chan struct{}, 16)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				// Swallow everything, answer nothing; unblocks only when the
				// peer closes or resets.
				io.Copy(io.Discard, conn)
				conn.Close()
				closed <- struct{}{}
			}(conn)
		}
	}()

	ms, err := NewMasterWithOptions([]string{ln.Addr().String()}, Options{
		Timeout:           300 * time.Millisecond,
		MaxAttempts:       2,
		MaxWorkerFailures: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := gen(t, 6, 0)
	if _, err := ms.Optimize(q, core.JobSpec{Space: partition.Linear, Workers: 2}); err == nil {
		t.Fatal("mute worker not reported")
	}
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("master left a half-open connection dangling")
	}
}
