package netrun

import (
	"net"
	"testing"
	"time"

	"mpq/internal/core"
	"mpq/internal/partition"
	"mpq/internal/wire"
	"mpq/internal/workload"
)

// TestWorkerCancelsOnDisconnect: a worker whose master disconnects
// mid-compute must abort the dynamic program instead of finishing a job
// nobody will read. Observable through Close(): it waits for the
// connection handler, so if the in-flight job kept running, Close would
// block for the job's full duration (~9s for this query); with
// cancel-on-disconnect it returns as soon as the DP notices the
// canceled context.
func TestWorkerCancelsOnDisconnect(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a multi-second optimization to observe its abort")
	}
	w, err := ListenWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// ~9s of single-partition bushy-clique DP (calibrated; the exact
	// figure only needs to dwarf the shutdown bound asserted below).
	q := workload.MustGenerate(workload.NewParams(15, workload.Clique), 1)
	req := wire.EncodeJobRequest(&wire.JobRequest{
		Seq:   1,
		Spec:  core.JobSpec{Space: partition.Bushy, Workers: 1},
		Query: q,
	})

	conn, err := net.Dial("tcp", w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, req); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let the worker start computing
	conn.Close()                       // master gone

	start := time.Now()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close took %v after a disconnect mid-compute; the job was not canceled", elapsed)
	}
}

// TestWorkerStillAnswersAfterDisconnectOfOtherConn: canceling one
// connection's work must not disturb another connection's job.
func TestWorkerStillAnswersAfterDisconnectOfOtherConn(t *testing.T) {
	w, err := ListenWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// A connection that sends nothing and drops.
	ghost, err := net.Dial("tcp", w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	ghost.Close()

	q := workload.MustGenerate(workload.NewParams(6, workload.Star), 2)
	conn, err := net.Dial("tcp", w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := wire.EncodeJobRequest(&wire.JobRequest{
		Seq:   7,
		Spec:  core.JobSpec{Space: partition.Linear, Workers: 2},
		Query: q,
	})
	if err := WriteFrame(conn, req); err != nil {
		t.Fatal(err)
	}
	respB, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := wire.DecodeJobResponse(respB)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 7 || len(resp.Plans) == 0 {
		t.Fatalf("resp seq=%d plans=%d, want seq=7 with plans", resp.Seq, len(resp.Plans))
	}
}
