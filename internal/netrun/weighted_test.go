package netrun

import (
	"math"
	"testing"
	"time"

	"mpq/internal/core"
	"mpq/internal/partition"
)

func TestWeightedMasterValidation(t *testing.T) {
	if _, err := NewWeightedMaster([]string{"a:1"}, []float64{1, 2}, 0); err == nil {
		t.Fatal("mismatched weight count accepted")
	}
	if _, err := NewWeightedMaster([]string{"a:1", "b:1"}, []float64{1, 0}, 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := NewWeightedMaster([]string{"a:1", "b:1"}, []float64{1, -2}, 0); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewWeightedMaster([]string{"a:1", "b:1"}, nil, 0); err != nil {
		t.Fatalf("nil weights rejected: %v", err)
	}
}

func TestAssignPartitionsRoundRobin(t *testing.T) {
	ms, err := NewMaster([]string{"a:1", "b:1", "c:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	parts := ms.assignPartitions(8)
	if len(parts[0]) != 3 || len(parts[1]) != 3 || len(parts[2]) != 2 {
		t.Fatalf("round robin = %v", parts)
	}
	checkCoverage(t, parts, 8)
}

func TestAssignPartitionsProportional(t *testing.T) {
	// A worker that is 3x as fast gets ~3x the partitions (footnote 1).
	ms, err := NewWeightedMaster([]string{"fast:1", "slow:1"}, []float64{3, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	parts := ms.assignPartitions(16)
	if len(parts[0]) != 12 || len(parts[1]) != 4 {
		t.Fatalf("proportional assignment = %d/%d want 12/4", len(parts[0]), len(parts[1]))
	}
	checkCoverage(t, parts, 16)

	// Largest-remainder rounding: 3 partitions over weights 1:1 gives
	// 2:1 or 1:2, never 3:0.
	ms2, err := NewWeightedMaster([]string{"a:1", "b:1"}, []float64{1, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	parts = ms2.assignPartitions(3)
	if len(parts[0])+len(parts[1]) != 3 || len(parts[0]) == 0 || len(parts[1]) == 0 {
		t.Fatalf("remainder assignment = %v", parts)
	}
	checkCoverage(t, parts, 3)
}

func checkCoverage(t *testing.T, parts [][]int, m int) {
	t.Helper()
	seen := map[int]bool{}
	for _, ps := range parts {
		for _, p := range ps {
			if seen[p] {
				t.Fatalf("partition %d assigned twice", p)
			}
			seen[p] = true
		}
	}
	if len(seen) != m {
		t.Fatalf("covered %d of %d partitions", len(seen), m)
	}
}

// End-to-end: a weighted master returns the same optimum.
func TestWeightedMasterEndToEnd(t *testing.T) {
	addrs := startWorkers(t, 2)
	ms, err := NewWeightedMaster(addrs, []float64{3, 1}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	q := gen(t, 8, 3)
	spec := core.JobSpec{Space: partition.Linear, Workers: 16}
	dist, err := ms.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	local, err := core.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dist.Best.Cost-local.Best.Cost) > 1e-9*local.Best.Cost {
		t.Fatal("weighted master returned a different optimum")
	}
	if len(dist.PerWorker) != 16 {
		t.Fatalf("reports for %d partitions", len(dist.PerWorker))
	}
}
