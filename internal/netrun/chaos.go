package netrun

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"
)

// FaultAction selects what the chaos proxy does to one relayed job.
type FaultAction int

const (
	// Pass relays the job and its response untouched.
	Pass FaultAction = iota
	// KillBeforeResponse drops both connections after reading the request
	// and before any response byte — a worker crash mid-job. The master
	// sees EOF (or a reset) on its read.
	KillBeforeResponse
	// Stall reads the request and then never answers, holding the
	// connection open until the master gives up (its per-job deadline) or
	// the proxy is closed — a hung worker.
	Stall
	// TruncateResponse forwards the job, then sends the length prefix and
	// only half the response payload before dropping the connection — a
	// worker dying mid-send.
	TruncateResponse
	// CorruptResponse forwards the job but flips the first payload byte of
	// the response (the wire magic), so the master receives a well-framed
	// but undecodable message — bit rot on the wire.
	CorruptResponse
	// CorruptRequest flips the first payload byte of the request before
	// forwarding, so the worker rejects it with an explicit
	// wire.ErrBadRequest error frame — bit rot in the other direction.
	CorruptRequest
	// SlowDrip forwards the job, then dribbles the response out a few
	// bytes at a time with Drip pauses in between — a congested link. The
	// master succeeds if its deadline outlasts the drip, times out
	// otherwise.
	SlowDrip
	// DuplicateResponse forwards the job, then sends the worker's
	// response frame twice — a retransmission bug or a replaying
	// middlebox. The duplicate sits in the connection buffer where a
	// naive master would read it as the answer to its *next* request;
	// the sequence echo lets the master detect and discard it.
	DuplicateResponse
)

// String names the action.
func (a FaultAction) String() string {
	switch a {
	case Pass:
		return "pass"
	case KillBeforeResponse:
		return "kill-before-response"
	case Stall:
		return "stall"
	case TruncateResponse:
		return "truncate-response"
	case CorruptResponse:
		return "corrupt-response"
	case CorruptRequest:
		return "corrupt-request"
	case SlowDrip:
		return "slow-drip"
	case DuplicateResponse:
		return "duplicate-response"
	default:
		return fmt.Sprintf("FaultAction(%d)", int(a))
	}
}

// FaultPlan scripts a ChaosProxy: the action applied to the i-th job
// frame the proxy relays (0-based, in arrival order, across all master
// connections). Jobs without an entry pass through untouched. Because
// the script keys on job arrival order rather than wall-clock time,
// every recovery path it drives is reproducible.
type FaultPlan map[int]FaultAction

// ChaosProxy is a deterministic fault-injecting TCP proxy in front of a
// single worker. The master connects to the proxy instead of the worker;
// the proxy relays length-prefixed frames and applies the scripted
// FaultPlan at frame granularity, which is what makes kill/stall/
// truncate/corrupt injections exact rather than timing-dependent.
type ChaosProxy struct {
	ln      net.Listener
	backend string
	plan    FaultPlan

	// Drip is the pause between chunks of a SlowDrip response (default
	// 2ms). Set before the first connection arrives.
	Drip time.Duration
	// DripChunk is the number of bytes written per drip (default 16).
	DripChunk int

	mu     sync.Mutex
	jobs   int
	conns  map[net.Conn]struct{}
	closed bool
	stop   chan struct{}
	wg     sync.WaitGroup
}

// NewChaosProxy starts a proxy in front of the worker at backend,
// listening on an ephemeral loopback port.
func NewChaosProxy(backend string, plan FaultPlan) (*ChaosProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netrun: chaos listen: %w", err)
	}
	p := &ChaosProxy{
		ln:        ln,
		backend:   backend,
		plan:      plan,
		Drip:      2 * time.Millisecond,
		DripChunk: 16,
		conns:     map[net.Conn]struct{}{},
		stop:      make(chan struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address; hand this to the master in
// place of the worker's address.
func (p *ChaosProxy) Addr() string { return p.ln.Addr().String() }

// Jobs reports how many job frames the proxy has seen so far.
func (p *ChaosProxy) Jobs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.jobs
}

// nextAction consumes the next job slot from the plan.
func (p *ChaosProxy) nextAction() FaultAction {
	p.mu.Lock()
	defer p.mu.Unlock()
	a := p.plan[p.jobs]
	p.jobs++
	return a
}

func (p *ChaosProxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *ChaosProxy) untrack(c net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.conns, c)
}

func (p *ChaosProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !p.track(conn) {
			return
		}
		p.wg.Add(1)
		go p.serve(conn)
	}
}

// serve relays frames between one master connection and a fresh backend
// connection, applying the scripted fault for each job frame.
func (p *ChaosProxy) serve(master net.Conn) {
	defer p.wg.Done()
	defer func() {
		p.untrack(master)
		master.Close()
	}()
	backend, err := net.Dial("tcp", p.backend)
	if err != nil {
		return
	}
	if !p.track(backend) {
		return
	}
	defer func() {
		p.untrack(backend)
		backend.Close()
	}()
	for {
		req, err := ReadFrame(master)
		if err != nil {
			return
		}
		action := p.nextAction()
		switch action {
		case KillBeforeResponse:
			return // defers close both conns; master reads EOF
		case Stall:
			p.hold(master)
			return
		case CorruptRequest:
			req[0] ^= 0xFF // breaks the wire magic: deterministic reject
		}
		if err := WriteFrame(backend, req); err != nil {
			return
		}
		resp, err := ReadFrame(backend)
		if err != nil {
			return
		}
		switch action {
		case TruncateResponse:
			hdr := frameHeader(len(resp))
			master.Write(hdr[:])
			master.Write(resp[:len(resp)/2])
			return
		case CorruptResponse:
			resp[0] ^= 0xFF
			if err := WriteFrame(master, resp); err != nil {
				return
			}
		case SlowDrip:
			if !p.drip(master, resp) {
				return
			}
		case DuplicateResponse:
			if err := WriteFrame(master, resp); err != nil {
				return
			}
			if err := WriteFrame(master, resp); err != nil {
				return
			}
		default:
			if err := WriteFrame(master, resp); err != nil {
				return
			}
		}
	}
}

// hold keeps a stalled connection open until the master hangs up or the
// proxy is closed.
func (p *ChaosProxy) hold(master net.Conn) {
	hung := make(chan struct{})
	go func() {
		// The master sends nothing else on this connection until it gets a
		// response, so a read only returns once the master closes it.
		var b [1]byte
		master.Read(b[:])
		close(hung)
	}()
	select {
	case <-hung:
	case <-p.stop:
	}
}

// drip writes one frame in small chunks with pauses, honoring Close.
func (p *ChaosProxy) drip(master net.Conn, resp []byte) bool {
	hdr := frameHeader(len(resp))
	if _, err := master.Write(hdr[:]); err != nil {
		return false
	}
	for off := 0; off < len(resp); off += p.DripChunk {
		end := off + p.DripChunk
		if end > len(resp) {
			end = len(resp)
		}
		if _, err := master.Write(resp[off:end]); err != nil {
			return false
		}
		select {
		case <-p.stop:
			return false
		case <-time.After(p.Drip):
		}
	}
	return true
}

// frameHeader is the same length prefix WriteFrame produces; the proxy
// needs it bare to send headers that lie about the bytes that follow.
func frameHeader(n int) [4]byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(n))
	return hdr
}

// Close tears the proxy down: the listener, every relayed connection,
// and any held (stalled) connections.
func (p *ChaosProxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.stop)
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
	return err
}
