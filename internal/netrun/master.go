package netrun

import (
	"context"
	"errors"
	"fmt"
	"net"
	"slices"
	"sort"
	"sync"
	"time"

	"mpq/internal/core"
	"mpq/internal/plan"
	"mpq/internal/query"
	"mpq/internal/wire"
)

// Defaults for Options fields left at zero.
const (
	DefaultTimeout           = 2 * time.Minute
	DefaultMaxAttempts       = 3
	DefaultMaxWorkerFailures = 2
)

// Options configures a Master beyond its worker addresses.
type Options struct {
	// Weights are per-worker performance weights: when there are more
	// plan-space partitions than workers, worker i is assigned a share of
	// partitions proportional to Weights[i] — the paper's provision for
	// heterogeneous nodes (§4.1, footnote 1). nil means homogeneous.
	Weights []float64
	// Timeout bounds one job attempt end-to-end: dialing the worker,
	// sending the request, worker compute, and receiving the response.
	// Zero means DefaultTimeout; negative is an error.
	Timeout time.Duration
	// MaxAttempts is the per-partition attempt budget: a partition that
	// fails this many times (across all workers) aborts the query. Zero
	// means DefaultMaxAttempts; negative is an error.
	MaxAttempts int
	// MaxWorkerFailures is the number of consecutive job failures after
	// which a worker is excluded from the rest of the query. Zero means
	// DefaultMaxWorkerFailures; negative is an error.
	MaxWorkerFailures int
}

// NetStats records measured traffic of one distributed optimization.
type NetStats struct {
	BytesSent     uint64 // master → workers, payloads + frame headers
	BytesReceived uint64 // workers → master
	Messages      int
}

// Answer extends the in-process answer with measured network statistics.
type Answer struct {
	core.Answer
	Net NetStats
	// Redispatched counts job attempts that failed at the transport level
	// and were re-queued onto another worker (or retried). Zero in a
	// failure-free run.
	Redispatched int
}

// Master coordinates remote workers.
type Master struct {
	addrs             []string
	weights           []float64
	timeout           time.Duration
	maxAttempts       int
	maxWorkerFailures int
}

// NewMaster returns a master that will distribute work over the given
// worker addresses. timeout bounds each worker's end-to-end job time
// (zero means DefaultTimeout).
func NewMaster(addrs []string, timeout time.Duration) (*Master, error) {
	return NewMasterWithOptions(addrs, Options{Timeout: timeout})
}

// NewWeightedMaster additionally takes per-worker performance weights;
// see Options.Weights. nil weights mean homogeneous workers.
func NewWeightedMaster(addrs []string, weights []float64, timeout time.Duration) (*Master, error) {
	return NewMasterWithOptions(addrs, Options{Weights: weights, Timeout: timeout})
}

// NewMasterWithOptions returns a master with full fault-tolerance
// configuration.
func NewMasterWithOptions(addrs []string, opts Options) (*Master, error) {
	if len(addrs) == 0 {
		return nil, errors.New("netrun: no worker addresses")
	}
	seen := make(map[string]struct{}, len(addrs))
	for _, a := range addrs {
		if _, dup := seen[a]; dup {
			return nil, fmt.Errorf("netrun: duplicate worker address %q", a)
		}
		seen[a] = struct{}{}
	}
	if opts.Weights != nil {
		if len(opts.Weights) != len(addrs) {
			return nil, fmt.Errorf("netrun: %d weights for %d workers", len(opts.Weights), len(addrs))
		}
		for i, w := range opts.Weights {
			if !(w > 0) {
				return nil, fmt.Errorf("netrun: weight %d is %g, must be positive", i, w)
			}
		}
	}
	if opts.Timeout < 0 {
		return nil, fmt.Errorf("netrun: negative timeout %v", opts.Timeout)
	}
	if opts.MaxAttempts < 0 {
		return nil, fmt.Errorf("netrun: negative attempt budget %d", opts.MaxAttempts)
	}
	if opts.MaxWorkerFailures < 0 {
		return nil, fmt.Errorf("netrun: negative worker failure limit %d", opts.MaxWorkerFailures)
	}
	ms := &Master{
		addrs:             addrs,
		weights:           opts.Weights,
		timeout:           opts.Timeout,
		maxAttempts:       opts.MaxAttempts,
		maxWorkerFailures: opts.MaxWorkerFailures,
	}
	if ms.timeout == 0 {
		ms.timeout = DefaultTimeout
	}
	if ms.maxAttempts == 0 {
		ms.maxAttempts = DefaultMaxAttempts
	}
	if ms.maxWorkerFailures == 0 {
		ms.maxWorkerFailures = DefaultMaxWorkerFailures
	}
	return ms, nil
}

// assignPartitions splits partition IDs 0..m-1 over the workers. With
// nil weights it round-robins; with weights it hands out contiguous
// shares proportional to each worker's performance (largest-remainder
// rounding, every worker with weight > 0 and m >= workers gets at least
// one partition when possible).
func (ms *Master) assignPartitions(m int) [][]int {
	k := len(ms.addrs)
	out := make([][]int, k)
	if ms.weights == nil {
		for p := 0; p < m; p++ {
			out[p%k] = append(out[p%k], p)
		}
		return out
	}
	var total float64
	for _, w := range ms.weights {
		total += w
	}
	// Largest-remainder apportionment of m partitions.
	counts := make([]int, k)
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, k)
	assigned := 0
	for i, w := range ms.weights {
		exact := float64(m) * w / total
		counts[i] = int(exact)
		rems[i] = rem{idx: i, frac: exact - float64(counts[i])}
		assigned += counts[i]
	}
	sort.Slice(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for i := 0; assigned < m; i++ {
		counts[rems[i%k].idx]++
		assigned++
	}
	p := 0
	for i, c := range counts {
		for j := 0; j < c; j++ {
			out[i] = append(out[i], p)
			p++
		}
	}
	return out
}

// job is one (partition, retry state) unit of work.
type job struct {
	partID   int
	attempts int   // failed attempts so far
	failedOn []int // workers that already failed this partition
}

// jobResult is one job attempt's outcome, reported by a worker loop.
type jobResult struct {
	worker  int
	job     job
	resp    *wire.JobResponse
	elapsed time.Duration
	sent    uint64
	rcvd    uint64
	msgs    int
	err     error
	fatal   bool // deterministic failure: retrying cannot help
}

// connReg tracks the master's live connections so an aborting
// coordinator can force-close them and unblock worker loops stuck in
// read; ctx cancellation aborts dials still in flight (a dialing
// connection is not yet in the registry).
type connReg struct {
	ctx    context.Context
	cancel context.CancelFunc
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

func (r *connReg) add(c net.Conn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		c.Close()
		return
	}
	r.conns[c] = struct{}{}
}

func (r *connReg) drop(c net.Conn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.conns, c)
}

func (r *connReg) closeAll() {
	r.cancel()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	for c := range r.conns {
		c.Close()
	}
	r.conns = map[net.Conn]struct{}{}
}

// workerLoop executes jobs for one worker address: it dials lazily,
// keeps the connection across jobs, and reports every outcome on
// results. At most one job is in flight per worker, so a results buffer
// with one slot per worker can never block a loop after the coordinator
// stops receiving.
func (ms *Master) workerLoop(ni int, q *query.Query, spec core.JobSpec, give <-chan job, results chan<- jobResult, reg *connReg) {
	var conn net.Conn
	defer func() {
		if conn != nil {
			reg.drop(conn)
			conn.Close()
		}
	}()
	for jb := range give {
		results <- ms.runJob(ni, q, spec, jb, &conn, reg)
	}
}

// runJob performs one job attempt under the per-job deadline.
func (ms *Master) runJob(ni int, q *query.Query, spec core.JobSpec, jb job, connp *net.Conn, reg *connReg) jobResult {
	addr := ms.addrs[ni]
	res := jobResult{worker: ni, job: jb}
	t0 := time.Now()
	deadline := t0.Add(ms.timeout)
	// fail records a transport-level error and drops the connection: the
	// stream may be out of sync, and the next attempt should redial.
	fail := func(err error) jobResult {
		res.err = err
		res.elapsed = time.Since(t0)
		if *connp != nil {
			reg.drop(*connp)
			(*connp).Close()
			*connp = nil
		}
		return res
	}
	if *connp == nil {
		d := net.Dialer{Deadline: deadline}
		c, err := d.DialContext(reg.ctx, "tcp", addr)
		if err != nil {
			return fail(fmt.Errorf("dial %s: %w", addr, err))
		}
		*connp = c
		reg.add(c)
	}
	conn := *connp
	payload := wire.EncodeJobRequest(&wire.JobRequest{Spec: spec, PartID: jb.partID, Query: q})
	conn.SetDeadline(deadline)
	if err := WriteFrame(conn, payload); err != nil {
		return fail(fmt.Errorf("send to %s: %w", addr, err))
	}
	res.sent = uint64(len(payload) + 4)
	res.msgs++
	respB, err := ReadFrame(conn)
	if err != nil {
		return fail(fmt.Errorf("receive from %s: %w", addr, err))
	}
	res.rcvd = uint64(len(respB) + 4)
	res.msgs++
	tag, err := wire.MessageTag(respB)
	if err != nil {
		return fail(fmt.Errorf("from %s: %w", addr, err))
	}
	switch tag {
	case wire.TagWorkerError:
		we, err := wire.DecodeWorkerError(respB)
		if err != nil {
			return fail(fmt.Errorf("decode from %s: %w", addr, err))
		}
		// The frame itself arrived intact, so the connection stays usable.
		res.err = fmt.Errorf("worker %s partition %d: %w", addr, jb.partID, we)
		res.fatal = we.Code == wire.ErrJobFailed
		res.elapsed = time.Since(t0)
		return res
	case wire.TagJobResponse:
		resp, err := wire.DecodeJobResponse(respB)
		if err != nil {
			return fail(fmt.Errorf("decode from %s: %w", addr, err))
		}
		if resp.Err != "" {
			// Legacy in-band error. Current workers always use the explicit
			// WorkerError frame, so this only fires on version skew; without
			// an error code we cannot tell transit damage from a
			// deterministic failure, and guessing "retryable" could burn the
			// whole retry budget on a job every worker rejects. Fail fast.
			res.err = fmt.Errorf("worker %s partition %d: %s", addr, jb.partID, resp.Err)
			res.fatal = true
			res.elapsed = time.Since(t0)
			return res
		}
		res.resp = resp
		res.elapsed = time.Since(t0)
		return res
	default:
		return fail(fmt.Errorf("unexpected message tag %d from %s", tag, addr))
	}
}

// Optimize runs MPQ over the remote workers. The spec's Workers field
// sets the number of plan-space partitions; if it exceeds the number of
// worker addresses, partitions are assigned round-robin (or by weight)
// and executed sequentially per worker.
//
// Optimize survives worker failures: see the package comment for the
// failure model. Whenever at least one worker survives and the retry
// budget suffices, the returned plan is bit-identical to a failure-free
// run, because responses are aggregated in partition-ID order.
func (ms *Master) Optimize(q *query.Query, spec core.JobSpec) (*Answer, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(q.N()); err != nil {
		return nil, err
	}
	q.Freeze() // the query is shared across worker goroutines
	start := time.Now()
	m := spec.Workers
	k := len(ms.addrs)

	// Seed each worker's own queue with its static share — preserving the
	// weighted apportionment — and re-dispatch failures dynamically.
	queues := make([][]job, k)
	for ni, parts := range ms.assignPartitions(m) {
		for _, p := range parts {
			queues[ni] = append(queues[ni], job{partID: p})
		}
	}

	gives := make([]chan job, k)
	results := make(chan jobResult, k)
	regCtx, regCancel := context.WithCancel(context.Background())
	reg := &connReg{ctx: regCtx, cancel: regCancel, conns: map[net.Conn]struct{}{}}
	var wg sync.WaitGroup
	for ni := 0; ni < k; ni++ {
		gives[ni] = make(chan job, 1)
		wg.Add(1)
		go func(ni int) {
			defer wg.Done()
			ms.workerLoop(ni, q, spec, gives[ni], results, reg)
		}(ni)
	}
	defer func() {
		for _, g := range gives {
			close(g)
		}
		reg.closeAll() // cancels in-flight dials, closes open conns
		wg.Wait()
	}()

	type partDone struct {
		resp    *wire.JobResponse
		elapsed time.Duration
	}
	done := make([]partDone, m)
	nDone := 0
	alive := make([]bool, k)
	idle := make([]bool, k)
	for i := range alive {
		alive[i], idle[i] = true, true
	}
	aliveCount := k
	consecFails := make([]int, k)
	var retryQ []job
	outstanding := 0
	ans := &Answer{}

	// failedOnAllAlive reports whether every surviving worker has already
	// failed this job; if so, any survivor may retry it (the alternative
	// is giving up while budget remains).
	failedOnAllAlive := func(jb job) bool {
		for ni := 0; ni < k; ni++ {
			if alive[ni] && !slices.Contains(jb.failedOn, ni) {
				return false
			}
		}
		return true
	}

	dispatch := func() {
		for ni := 0; ni < k; ni++ {
			if !alive[ni] || !idle[ni] {
				continue
			}
			var jb job
			ok := false
			if len(queues[ni]) > 0 {
				jb, queues[ni] = queues[ni][0], queues[ni][1:]
				ok = true
			} else {
				for i := range retryQ {
					r := retryQ[i]
					if !slices.Contains(r.failedOn, ni) || failedOnAllAlive(r) {
						jb = r
						retryQ = append(retryQ[:i], retryQ[i+1:]...)
						ok = true
						break
					}
				}
			}
			if ok {
				idle[ni] = false
				outstanding++
				gives[ni] <- jb
			}
		}
	}

	for nDone < m {
		if aliveCount == 0 {
			return nil, fmt.Errorf("netrun: all %d workers failed with %d of %d partitions unanswered",
				k, m-nDone, m)
		}
		dispatch()
		if outstanding == 0 {
			// Unreachable while a worker is alive: an idle survivor always
			// accepts pending work. Guard against coordination bugs anyway.
			return nil, fmt.Errorf("netrun: stalled with %d of %d partitions unanswered", m-nDone, m)
		}
		res := <-results
		outstanding--
		idle[res.worker] = true
		ans.Net.BytesSent += res.sent
		ans.Net.BytesReceived += res.rcvd
		ans.Net.Messages += res.msgs
		if res.err == nil {
			consecFails[res.worker] = 0
			done[res.job.partID] = partDone{resp: res.resp, elapsed: res.elapsed}
			nDone++
			continue
		}
		if res.fatal {
			return nil, fmt.Errorf("netrun: %w", res.err)
		}
		// Transport-level failure: hold the worker accountable and
		// re-dispatch the partition.
		consecFails[res.worker]++
		if consecFails[res.worker] >= ms.maxWorkerFailures {
			alive[res.worker] = false
			aliveCount--
			// Hand the excluded worker's untouched share to the survivors.
			retryQ = append(retryQ, queues[res.worker]...)
			queues[res.worker] = nil
		}
		jb := res.job
		jb.attempts++
		jb.failedOn = append(jb.failedOn, res.worker)
		if jb.attempts >= ms.maxAttempts {
			return nil, fmt.Errorf("netrun: partition %d failed %d times, giving up: %w",
				jb.partID, jb.attempts, res.err)
		}
		ans.Redispatched++
		retryQ = append(retryQ, jb)
	}

	// Aggregate in partition-ID order: arrival order varies with retries
	// and scheduling, but the answer must not.
	frontiers := make([][]*plan.Node, 0, m)
	for partID := 0; partID < m; partID++ {
		pd := done[partID]
		ans.Stats.Add(pd.resp.Stats)
		if pd.resp.Stats.WorkUnits() > ans.MaxWorkerStats.WorkUnits() {
			ans.MaxWorkerStats = pd.resp.Stats
		}
		if pd.elapsed > ans.MaxWorkerElapsed {
			ans.MaxWorkerElapsed = pd.elapsed
		}
		ans.PerWorker = append(ans.PerWorker, core.WorkerReport{
			PartID: partID, Plans: len(pd.resp.Plans), Stats: pd.resp.Stats, Elapsed: pd.elapsed,
		})
		frontiers = append(frontiers, pd.resp.Plans)
	}
	best, frontier, err := core.FinalPrune(spec, frontiers)
	if err != nil {
		return nil, err
	}
	ans.Best, ans.Frontier = best, frontier
	ans.Elapsed = time.Since(start)
	return ans, nil
}
