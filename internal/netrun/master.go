package netrun

import (
	"context"
	"errors"
	"fmt"
	"net"
	"slices"
	"sort"
	"sync"
	"time"

	"mpq/internal/core"
	"mpq/internal/plan"
	"mpq/internal/query"
	"mpq/internal/wire"
)

// Defaults for Options fields left at zero.
const (
	DefaultTimeout           = 2 * time.Minute
	DefaultMaxAttempts       = 3
	DefaultMaxWorkerFailures = 2
	// DefaultSpeculationMultiplier is the straggler threshold multiplier
	// used when Options.Speculate is set and SpeculationMultiplier is
	// zero: a partition is a straggler once its elapsed time exceeds
	// twice the median service time of the query's completed partitions.
	DefaultSpeculationMultiplier = 2
	// DefaultSpeculationFloor bounds the straggler threshold from below
	// so near-instant medians (tiny queries) cannot trigger speculation
	// on ordinary scheduling jitter.
	DefaultSpeculationFloor = 250 * time.Millisecond
	// cancelWriteTimeout bounds the advisory CancelRequest frame write
	// to a speculative loser; a peer too wedged to accept 8 bytes loses
	// its connection on the next use anyway.
	cancelWriteTimeout = 2 * time.Second
)

// Options configures a Master beyond its worker addresses.
type Options struct {
	// Weights are per-worker performance weights: when there are more
	// plan-space partitions than workers, worker i is assigned a share of
	// partitions proportional to Weights[i] — the paper's provision for
	// heterogeneous nodes (§4.1, footnote 1). nil means homogeneous.
	Weights []float64
	// Timeout bounds one job attempt end-to-end: dialing the worker,
	// sending the request, worker compute, and receiving the response.
	// A context deadline shorter than the remaining Timeout takes
	// precedence (see Master.OptimizeContext). Zero means
	// DefaultTimeout; negative is an error.
	Timeout time.Duration
	// MaxAttempts is the per-partition attempt budget: a partition that
	// fails this many times (across all workers) aborts the query. Zero
	// means DefaultMaxAttempts; negative is an error.
	MaxAttempts int
	// MaxWorkerFailures is the number of consecutive job failures after
	// which a worker is excluded from the rest of the query. Zero means
	// DefaultMaxWorkerFailures; negative is an error.
	MaxWorkerFailures int
	// Speculate enables adaptive scheduling: an idle worker steals queued
	// partitions from loaded peers, and a partition whose elapsed time
	// exceeds the straggler threshold (see SpeculationMultiplier) is
	// cloned to an idle worker. The first answer wins; the loser is
	// canceled with a CancelRequest frame and its late response — carrying
	// a sequence number for a partition already aggregated — is discarded.
	// Off by default: the static schedule is then byte-for-byte the
	// pre-adaptive behavior.
	Speculate bool
	// SpeculationMultiplier scales the straggler threshold: a partition
	// is speculated once its elapsed time exceeds Multiplier × the median
	// service time of its query's completed partitions. Zero means
	// DefaultSpeculationMultiplier; values below 1 (which would speculate
	// faster-than-median partitions) are an error.
	SpeculationMultiplier float64
	// SpeculationFloor bounds the straggler threshold from below. Zero
	// means DefaultSpeculationFloor; negative is an error.
	SpeculationFloor time.Duration
	// ReadmitAfter enables re-admission probes: a worker excluded by
	// MaxWorkerFailures is sent a low-priority probe clone of a pending
	// partition after this backoff (doubling after every failed probe)
	// and rejoins the pool if it answers correctly. Zero disables probes
	// — excluded workers then stay excluded for the rest of the batch,
	// the pre-adaptive behavior. Negative is an error.
	ReadmitAfter time.Duration
}

// NetStats records measured traffic of one distributed optimization.
// It is an alias of core.NetStats so engine-agnostic answers can carry
// it without importing the transport.
type NetStats = core.NetStats

// Answer is the in-process answer with measured network statistics:
// the embedded core.Answer.Net is always non-nil for answers produced
// by this master.
type Answer struct {
	core.Answer
	// Redispatched counts job attempts that failed at the transport level
	// and were re-queued onto another worker (or retried). Zero in a
	// failure-free run. It mirrors Net.Redispatched; both are kept so
	// pre-Engine callers keep compiling.
	Redispatched int
}

// Job is one (query, job spec) unit of a batch: OptimizeBatch pipelines
// the plan-space partitions of many independent queries through one
// pool of keep-alive worker connections.
type Job struct {
	Query *query.Query
	Spec  core.JobSpec
}

// Master coordinates remote workers.
type Master struct {
	addrs             []string
	weights           []float64
	timeout           time.Duration
	maxAttempts       int
	maxWorkerFailures int
	speculate         bool
	specMultiplier    float64
	specFloor         time.Duration
	readmitAfter      time.Duration
}

// NewMaster returns a master that will distribute work over the given
// worker addresses. timeout bounds each job attempt end-to-end — the
// dial, the request send, the worker's compute and the response receive
// all share it (zero means DefaultTimeout). It is exactly
// NewMasterWithOptions(addrs, Options{Timeout: timeout}).
func NewMaster(addrs []string, timeout time.Duration) (*Master, error) {
	return NewMasterWithOptions(addrs, Options{Timeout: timeout})
}

// NewWeightedMaster additionally takes per-worker performance weights;
// see Options.Weights. nil weights mean homogeneous workers.
func NewWeightedMaster(addrs []string, weights []float64, timeout time.Duration) (*Master, error) {
	return NewMasterWithOptions(addrs, Options{Weights: weights, Timeout: timeout})
}

// NewMasterWithOptions returns a master with full fault-tolerance
// configuration.
func NewMasterWithOptions(addrs []string, opts Options) (*Master, error) {
	if len(addrs) == 0 {
		return nil, errors.New("netrun: no worker addresses")
	}
	seen := make(map[string]struct{}, len(addrs))
	for _, a := range addrs {
		if _, dup := seen[a]; dup {
			return nil, fmt.Errorf("netrun: duplicate worker address %q", a)
		}
		seen[a] = struct{}{}
	}
	if opts.Weights != nil {
		if len(opts.Weights) != len(addrs) {
			return nil, fmt.Errorf("netrun: %d weights for %d workers", len(opts.Weights), len(addrs))
		}
		for i, w := range opts.Weights {
			if !(w > 0) {
				return nil, fmt.Errorf("netrun: weight %d is %g, must be positive", i, w)
			}
		}
	}
	if opts.Timeout < 0 {
		return nil, fmt.Errorf("netrun: negative timeout %v", opts.Timeout)
	}
	if opts.MaxAttempts < 0 {
		return nil, fmt.Errorf("netrun: negative attempt budget %d", opts.MaxAttempts)
	}
	if opts.MaxWorkerFailures < 0 {
		return nil, fmt.Errorf("netrun: negative worker failure limit %d", opts.MaxWorkerFailures)
	}
	if opts.SpeculationMultiplier != 0 && opts.SpeculationMultiplier < 1 {
		return nil, fmt.Errorf("netrun: speculation multiplier %g below 1", opts.SpeculationMultiplier)
	}
	if opts.SpeculationFloor < 0 {
		return nil, fmt.Errorf("netrun: negative speculation floor %v", opts.SpeculationFloor)
	}
	if opts.ReadmitAfter < 0 {
		return nil, fmt.Errorf("netrun: negative re-admission backoff %v", opts.ReadmitAfter)
	}
	ms := &Master{
		addrs:             addrs,
		weights:           opts.Weights,
		timeout:           opts.Timeout,
		maxAttempts:       opts.MaxAttempts,
		maxWorkerFailures: opts.MaxWorkerFailures,
		speculate:         opts.Speculate,
		specMultiplier:    opts.SpeculationMultiplier,
		specFloor:         opts.SpeculationFloor,
		readmitAfter:      opts.ReadmitAfter,
	}
	if ms.timeout == 0 {
		ms.timeout = DefaultTimeout
	}
	if ms.maxAttempts == 0 {
		ms.maxAttempts = DefaultMaxAttempts
	}
	if ms.maxWorkerFailures == 0 {
		ms.maxWorkerFailures = DefaultMaxWorkerFailures
	}
	if ms.specMultiplier == 0 {
		ms.specMultiplier = DefaultSpeculationMultiplier
	}
	if ms.specFloor == 0 {
		ms.specFloor = DefaultSpeculationFloor
	}
	return ms, nil
}

// assignPartitions splits partition IDs 0..m-1 over the workers. With
// nil weights it round-robins; with weights it hands out contiguous
// shares proportional to each worker's performance (largest-remainder
// rounding, every worker with weight > 0 and m >= workers gets at least
// one partition when possible).
func (ms *Master) assignPartitions(m int) [][]int {
	k := len(ms.addrs)
	out := make([][]int, k)
	if ms.weights == nil {
		for p := 0; p < m; p++ {
			out[p%k] = append(out[p%k], p)
		}
		return out
	}
	var total float64
	for _, w := range ms.weights {
		total += w
	}
	// Largest-remainder apportionment of m partitions.
	counts := make([]int, k)
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, k)
	assigned := 0
	for i, w := range ms.weights {
		exact := float64(m) * w / total
		counts[i] = int(exact)
		rems[i] = rem{idx: i, frac: exact - float64(counts[i])}
		assigned += counts[i]
	}
	sort.Slice(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for i := 0; assigned < m; i++ {
		counts[rems[i%k].idx]++
		assigned++
	}
	p := 0
	for i, c := range counts {
		for j := 0; j < c; j++ {
			out[i] = append(out[i], p)
			p++
		}
	}
	return out
}

// unit is one (query, partition, retry state) piece of work.
type unit struct {
	qi       int   // index into the batch's jobs
	partID   int   // plan-space partition within that query
	attempts int   // failed attempts so far
	failedOn []int // workers that already failed this unit
}

// ignoredFrame is one well-formed frame the master discarded for a
// stale sequence number, attributed to the query whose request
// originally produced it (qi) so per-query traffic accounting stays
// exact even when a duplicate surfaces while another query's unit is
// in flight on the same connection.
type ignoredFrame struct {
	qi    int
	bytes uint64
}

// jobResult is one job attempt's outcome, reported by a worker loop.
type jobResult struct {
	worker  int
	unit    unit
	resp    *wire.JobResponse
	elapsed time.Duration
	sent    uint64
	rcvd    uint64
	msgs    int
	dialed  bool // this attempt opened a new connection
	ignored []ignoredFrame
	err     error
	fatal   bool // deterministic failure: retrying cannot help
}

// connReg tracks the master's live connections so an aborting
// coordinator can force-close them and unblock worker loops stuck in
// read; ctx cancellation aborts dials still in flight (a dialing
// connection is not yet in the registry).
type connReg struct {
	ctx    context.Context
	cancel context.CancelFunc
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

func (r *connReg) add(c net.Conn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		c.Close()
		return
	}
	r.conns[c] = struct{}{}
}

func (r *connReg) drop(c net.Conn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.conns, c)
}

func (r *connReg) closeAll() {
	r.cancel()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	for c := range r.conns {
		c.Close()
	}
	r.conns = map[net.Conn]struct{}{}
}

// connState is one worker loop's keep-alive connection plus its
// request sequence counter. The counter survives redials — sequence
// numbers only ever need to be unique per connection, and a
// monotonically increasing one is unique per master lifetime. owner
// maps every sequence number sent on the current connection to the
// query it belongs to, so a late duplicate can be billed to the right
// query; it is reset on redial (a fresh stream cannot replay old
// frames).
//
// mu serializes writes on the connection and guards the conn pointer
// and inflight field: the coordinator goroutine injects advisory
// CancelRequest frames (cancelInFlight) into a stream the worker loop
// otherwise owns. seq and owner stay worker-loop-private.
type connState struct {
	mu       sync.Mutex
	conn     net.Conn
	inflight uint32 // seq awaiting a response; 0 = none
	seq      uint32
	owner    map[uint32]int
}

// cancelInFlight asks the worker to abort the request currently
// awaiting a response on this connection — the master no longer wants
// the answer (a speculative clone of the same partition won the race).
// Advisory and non-blocking for the caller beyond a short write: if the
// write fails or stalls, the worker simply finishes the job and its
// late response is discarded as stale. A partial write can desync the
// stream; the worker then answers the next request with a decode
// error, which the transport-failure path already handles by redialing.
// Returns the frame bytes put on the wire (0 if nothing was sent) so
// the caller can bill the traffic.
func (st *connState) cancelInFlight() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.conn == nil || st.inflight == 0 {
		return 0
	}
	payload := wire.EncodeCancelRequest(&wire.CancelRequest{Seq: st.inflight})
	st.conn.SetWriteDeadline(time.Now().Add(cancelWriteTimeout))
	if err := WriteFrame(st.conn, payload); err != nil {
		return 0
	}
	return len(payload) + 4
}

// workerLoop executes jobs for one worker address: it dials lazily,
// keeps the connection across jobs (and across the queries of a
// batch), and reports every outcome on results. At most one job is in
// flight per worker, so a results buffer with one slot per worker can
// never block a loop after the coordinator stops receiving. st is
// shared with the coordinator, which uses it only through
// cancelInFlight.
func (ms *Master) workerLoop(ctx context.Context, ni int, jobs []Job, give <-chan unit, results chan<- jobResult, reg *connReg, st *connState) {
	defer func() {
		st.mu.Lock()
		conn := st.conn
		st.conn = nil
		st.mu.Unlock()
		if conn != nil {
			reg.drop(conn)
			conn.Close()
		}
	}()
	for u := range give {
		results <- ms.runJob(ctx, ni, jobs[u.qi], u, st, reg)
	}
}

// runJob performs one job attempt under the per-job deadline: the
// configured Timeout, tightened by the context deadline if that comes
// first.
func (ms *Master) runJob(ctx context.Context, ni int, job Job, u unit, st *connState, reg *connReg) jobResult {
	addr := ms.addrs[ni]
	res := jobResult{worker: ni, unit: u}
	t0 := time.Now()
	deadline := t0.Add(ms.timeout)
	if cd, ok := ctx.Deadline(); ok && cd.Before(deadline) {
		deadline = cd
	}
	// Whatever the outcome, the request is no longer awaiting a response
	// once runJob returns — late cancels must not target the next job's
	// sequence number.
	defer func() {
		st.mu.Lock()
		st.inflight = 0
		st.mu.Unlock()
	}()
	// fail records a transport-level error and drops the connection: the
	// stream may be out of sync, and the next attempt should redial.
	fail := func(err error) jobResult {
		res.err = err
		res.elapsed = time.Since(t0)
		st.mu.Lock()
		conn := st.conn
		st.conn = nil
		st.inflight = 0
		st.mu.Unlock()
		if conn != nil {
			reg.drop(conn)
			conn.Close()
			st.owner = nil // a fresh stream cannot replay old frames
		}
		return res
	}
	if st.conn == nil {
		// Dialing happens outside the mutex — a nil conn means nothing is
		// in flight, so cancelInFlight correctly no-ops meanwhile.
		d := net.Dialer{Deadline: deadline}
		c, err := d.DialContext(reg.ctx, "tcp", addr)
		if err != nil {
			return fail(fmt.Errorf("dial %s: %w", addr, err))
		}
		st.mu.Lock()
		st.conn = c
		st.mu.Unlock()
		st.owner = map[uint32]int{}
		res.dialed = true
		reg.add(c)
	}
	conn := st.conn
	st.seq++
	seq := st.seq
	st.owner[seq] = u.qi
	payload := wire.EncodeJobRequest(&wire.JobRequest{Seq: seq, Spec: job.Spec, PartID: u.partID, Query: job.Query})
	// The request write and the in-flight marker share one critical
	// section so a concurrent cancel frame can never interleave with (or
	// target a request that precedes) the request bytes.
	st.mu.Lock()
	conn.SetDeadline(deadline)
	werr := WriteFrame(conn, payload)
	if werr == nil {
		st.inflight = seq
	}
	st.mu.Unlock()
	if werr != nil {
		return fail(fmt.Errorf("send to %s: %w", addr, werr))
	}
	res.sent = uint64(len(payload) + 4)
	res.msgs++
	for {
		respB, err := ReadFrame(conn)
		if err != nil {
			return fail(fmt.Errorf("receive from %s: %w", addr, err))
		}
		frameBytes := uint64(len(respB) + 4)
		// Accepted (and undecodable) frames are billed to the unit in
		// flight below; duplicates are billed to the query that
		// originally produced them via the connection's owner map.
		accept := func() {
			res.rcvd += frameBytes
			res.msgs++
		}
		tag, err := wire.MessageTag(respB)
		if err != nil {
			accept()
			return fail(fmt.Errorf("from %s: %w", addr, err))
		}
		switch tag {
		case wire.TagWorkerError:
			we, err := wire.DecodeWorkerError(respB)
			if err != nil {
				accept()
				return fail(fmt.Errorf("decode from %s: %w", addr, err))
			}
			if we.Seq != 0 && we.Seq != seq {
				// A stale error frame for an earlier request (duplicated or
				// replayed on the wire). Ignore it and keep reading.
				res.ignored = append(res.ignored, ignoredFrame{qi: st.ownerOf(we.Seq, u.qi), bytes: frameBytes})
				continue
			}
			accept()
			// The frame itself arrived intact, so the connection stays usable.
			res.err = fmt.Errorf("worker %s partition %d: %w", addr, u.partID, we)
			res.fatal = we.Code == wire.ErrJobFailed
			res.elapsed = time.Since(t0)
			return res
		case wire.TagJobResponse:
			resp, err := wire.DecodeJobResponse(respB)
			if err != nil {
				accept()
				return fail(fmt.Errorf("decode from %s: %w", addr, err))
			}
			if resp.Seq != seq {
				// Duplicate or stale response: a chaos proxy (or a confused
				// network) replayed a frame. The sequence echo proves it is
				// not the answer to the request in flight — discard it.
				res.ignored = append(res.ignored, ignoredFrame{qi: st.ownerOf(resp.Seq, u.qi), bytes: frameBytes})
				continue
			}
			accept()
			if resp.Err != "" {
				// Legacy in-band error. Current workers always use the explicit
				// WorkerError frame, so this only fires on version skew; without
				// an error code we cannot tell transit damage from a
				// deterministic failure, and guessing "retryable" could burn the
				// whole retry budget on a job every worker rejects. Fail fast.
				res.err = fmt.Errorf("worker %s partition %d: %s", addr, u.partID, resp.Err)
				res.fatal = true
				res.elapsed = time.Since(t0)
				return res
			}
			res.resp = resp
			res.elapsed = time.Since(t0)
			return res
		default:
			accept()
			return fail(fmt.Errorf("unexpected message tag %d from %s", tag, addr))
		}
	}
}

// ownerOf reports which query the given sequence number was sent for
// on this connection, falling back to the unit in flight for sequence
// numbers the connection never issued.
func (st *connState) ownerOf(seq uint32, fallback int) int {
	if qi, ok := st.owner[seq]; ok {
		return qi
	}
	return fallback
}

// Optimize runs MPQ over the remote workers. The spec's Workers field
// sets the number of plan-space partitions; if it exceeds the number of
// worker addresses, partitions are assigned round-robin (or by weight)
// and executed sequentially per worker.
//
// Optimize survives worker failures: see the package comment for the
// failure model. Whenever at least one worker survives and the retry
// budget suffices, the returned plan is bit-identical to a failure-free
// run, because responses are aggregated in partition-ID order.
func (ms *Master) Optimize(q *query.Query, spec core.JobSpec) (*Answer, error) { //lint:allow ctxflow deprecated no-ctx wrapper, frozen by api_compat_test; use OptimizeContext
	return ms.OptimizeContext(context.Background(), q, spec)
}

// OptimizeContext is Optimize with cooperative cancellation: when ctx
// is canceled the dispatcher stops handing out work, force-closes every
// connection it opened (unblocking worker loops stuck in reads), aborts
// in-flight dials, waits for all its goroutines, and returns an error
// wrapping ctx's cause. A ctx deadline also tightens each job attempt's
// transport deadline, so per-job deadlines flow from
// context.WithDeadline rather than a bespoke field.
func (ms *Master) OptimizeContext(ctx context.Context, q *query.Query, spec core.JobSpec) (*Answer, error) {
	answers, err := ms.OptimizeBatch(ctx, []Job{{Query: q, Spec: spec}})
	if err != nil {
		return nil, err
	}
	return answers[0], nil
}

// OptimizeBatch optimizes a batch of independent queries through one
// pool of keep-alive worker connections: every (query, partition) pair
// becomes one unit of work, each worker's queue is seeded with its
// (weighted) share of every query, and units are executed back to back
// on the same connections — in a failure-free batch the master dials
// each worker exactly once instead of once per query (a transport
// failure drops that worker's connection, so recovery adds redials).
// Failed units are re-dispatched exactly as in Optimize;
// worker-exclusion state spans the whole batch.
//
// Answers are returned in input order and are bit-identical to running
// each job through Optimize by itself: partitions of one query are
// aggregated in partition-ID order regardless of how the batch
// interleaved them. Any fatal error or exhausted retry budget aborts
// the whole batch.
func (ms *Master) OptimizeBatch(ctx context.Context, jobs []Job) ([]*Answer, error) {
	if len(jobs) == 0 {
		return nil, errors.New("netrun: empty batch")
	}
	for _, job := range jobs {
		if err := job.Query.Validate(); err != nil {
			return nil, err
		}
		if err := job.Spec.Validate(job.Query.N()); err != nil {
			return nil, err
		}
		job.Query.Freeze() // the query is shared across worker goroutines
	}
	start := time.Now()
	k := len(ms.addrs)

	// Seed each worker's own queue with its static share of every query
	// — preserving the weighted apportionment per query — and
	// re-dispatch failures dynamically.
	queues := make([][]unit, k)
	totalParts := 0
	for qi, job := range jobs {
		for ni, parts := range ms.assignPartitions(job.Spec.Workers) {
			for _, p := range parts {
				queues[ni] = append(queues[ni], unit{qi: qi, partID: p})
			}
		}
		totalParts += job.Spec.Workers
	}

	gives := make([]chan unit, k)
	results := make(chan jobResult, k)
	regCtx, regCancel := context.WithCancel(ctx)
	reg := &connReg{ctx: regCtx, cancel: regCancel, conns: map[net.Conn]struct{}{}}
	sts := make([]*connState, k)
	var wg sync.WaitGroup
	for ni := 0; ni < k; ni++ {
		gives[ni] = make(chan unit, 1)
		sts[ni] = &connState{}
		wg.Add(1)
		go func(ni int) {
			defer wg.Done()
			ms.workerLoop(ctx, ni, jobs, gives[ni], results, reg, sts[ni])
		}(ni)
	}
	defer func() {
		for _, g := range gives {
			close(g)
		}
		reg.closeAll() // cancels in-flight dials, closes open conns
		wg.Wait()
	}()

	type partDone struct {
		resp    *wire.JobResponse
		elapsed time.Duration
	}
	done := make([][]partDone, len(jobs))
	remaining := make([]int, len(jobs))
	for qi, job := range jobs {
		done[qi] = make([]partDone, job.Spec.Workers)
		remaining[qi] = job.Spec.Workers
	}
	nDone := 0
	alive := make([]bool, k)
	idle := make([]bool, k)
	for i := range alive {
		alive[i], idle[i] = true, true
	}
	aliveCount := k
	consecFails := make([]int, k)
	var retryQ []unit
	outstanding := 0
	answers := make([]*Answer, len(jobs))
	for qi := range answers {
		answers[qi] = &Answer{Answer: core.Answer{Net: &core.NetStats{}}}
	}

	// Adaptive-scheduling state, inert unless Speculate or ReadmitAfter
	// is set: what each worker runs and since when, how many copies of
	// each partition are in flight, each query's completed-partition
	// service times (the straggler threshold's median source), and the
	// per-worker probe backoff bookkeeping.
	type partKey struct{ qi, partID int }
	adaptive := ms.speculate || ms.readmitAfter > 0
	runningU := make([]unit, k)
	runningActive := make([]bool, k)
	runningSince := make([]time.Time, k)
	probing := make([]bool, k)
	excludedAt := make([]time.Time, k)
	probeBackoff := make([]time.Duration, k)
	inflightCnt := map[partKey]int{}
	svcTimes := make([][]time.Duration, len(jobs))

	isDone := func(u unit) bool { return done[u.qi][u.partID].resp != nil }

	// threshold is one query's straggler bar: SpeculationMultiplier × the
	// median service time of its completed partitions, never below
	// SpeculationFloor. Unknown until at least one partition finished —
	// with no baseline there is no notion of "slow".
	threshold := func(qi int) (time.Duration, bool) {
		ts := svcTimes[qi]
		if len(ts) == 0 {
			return 0, false
		}
		sorted := slices.Clone(ts)
		slices.Sort(sorted)
		thr := time.Duration(float64(sorted[len(sorted)/2]) * ms.specMultiplier)
		if thr < ms.specFloor {
			thr = ms.specFloor
		}
		return thr, true
	}

	sendTo := func(ni int, u unit, probe bool) {
		idle[ni] = false
		outstanding++
		runningU[ni], runningActive[ni], runningSince[ni] = u, true, time.Now()
		probing[ni] = probe
		inflightCnt[partKey{u.qi, u.partID}]++
		gives[ni] <- u
	}

	// failedOnAllAlive reports whether every surviving worker has already
	// failed this unit; if so, any survivor may retry it (the alternative
	// is giving up while budget remains).
	failedOnAllAlive := func(u unit) bool {
		for ni := 0; ni < k; ni++ {
			if alive[ni] && !slices.Contains(u.failedOn, ni) {
				return false
			}
		}
		return true
	}

	// specSource picks what an otherwise-idle worker should clone: the
	// longest-over-threshold partition that has exactly one copy in
	// flight. Probe jobs are never speculated — they are already clones.
	specSource := func(ni int, now time.Time) (int, bool) {
		best := -1
		var bestElapsed time.Duration
		for nj := 0; nj < k; nj++ {
			if nj == ni || !runningActive[nj] || probing[nj] {
				continue
			}
			r := runningU[nj]
			if isDone(r) || inflightCnt[partKey{r.qi, r.partID}] > 1 {
				continue
			}
			thr, ok := threshold(r.qi)
			if !ok {
				continue
			}
			if el := now.Sub(runningSince[nj]); el >= thr && el > bestElapsed {
				best, bestElapsed = nj, el
			}
		}
		return best, best >= 0
	}

	// probeUnitFor picks a low-priority clone for a re-admission probe:
	// the head of the longest pending queue, a retry unit the excluded
	// worker has not already failed, or the oldest in-flight unit — in
	// that order. Originals stay where they are; whichever copy answers
	// second is reconciled by the duplicate-discard machinery.
	probeUnitFor := func(ni int) (unit, bool) {
		best := -1
		for nj := 0; nj < k; nj++ {
			if len(queues[nj]) > 0 && (best < 0 || len(queues[nj]) > len(queues[best])) {
				best = nj
			}
		}
		if best >= 0 {
			for _, cand := range queues[best] {
				if !isDone(cand) {
					return cand, true
				}
			}
		}
		for _, r := range retryQ {
			if !isDone(r) && !slices.Contains(r.failedOn, ni) {
				return r, true
			}
		}
		oldest := -1
		for nj := 0; nj < k; nj++ {
			if nj == ni || !runningActive[nj] || probing[nj] || isDone(runningU[nj]) {
				continue
			}
			if oldest < 0 || runningSince[nj].Before(runningSince[oldest]) {
				oldest = nj
			}
		}
		if oldest >= 0 {
			return runningU[oldest], true
		}
		return unit{}, false
	}

	dispatch := func() {
		now := time.Now()
		if adaptive {
			// Partitions answered by a winning clone may still sit in the
			// retry queue; purge it eagerly (worker queues purge on pop).
			kept := retryQ[:0]
			for _, r := range retryQ {
				if !isDone(r) {
					kept = append(kept, r)
				}
			}
			retryQ = kept
		}
		for ni := 0; ni < k; ni++ {
			if !alive[ni] || !idle[ni] {
				continue
			}
			var u unit
			ok := false
			for len(queues[ni]) > 0 {
				cand := queues[ni][0]
				queues[ni] = queues[ni][1:]
				if !isDone(cand) {
					u, ok = cand, true
					break
				}
			}
			if !ok {
				for i := range retryQ {
					r := retryQ[i]
					if !slices.Contains(r.failedOn, ni) || failedOnAllAlive(r) {
						u = r
						retryQ = append(retryQ[:i], retryQ[i+1:]...)
						ok = true
						break
					}
				}
			}
			if !ok && ms.speculate {
				// Work stealing: an idle worker drains the most loaded peer's
				// queue instead of watching it struggle.
				src := -1
				for nj := 0; nj < k; nj++ {
					if nj != ni && len(queues[nj]) > 0 && (src < 0 || len(queues[nj]) > len(queues[src])) {
						src = nj
					}
				}
				for src >= 0 && len(queues[src]) > 0 {
					cand := queues[src][0]
					queues[src] = queues[src][1:]
					if !isDone(cand) {
						u, ok = cand, true
						break
					}
				}
			}
			if ok {
				sendTo(ni, u, false)
				continue
			}
			if !ms.speculate {
				continue
			}
			// Speculative re-dispatch: clone the worst straggler onto this
			// otherwise-idle worker; first answer wins.
			if nj, found := specSource(ni, now); found {
				orig := runningU[nj]
				clone := unit{qi: orig.qi, partID: orig.partID, attempts: orig.attempts,
					failedOn: append(slices.Clone(orig.failedOn), nj)}
				answers[orig.qi].Net.Speculations++
				sendTo(ni, clone, false)
			}
		}
		// Re-admission probes for excluded workers past their backoff.
		if ms.readmitAfter > 0 {
			for ni := 0; ni < k; ni++ {
				if alive[ni] || !idle[ni] || now.Sub(excludedAt[ni]) < probeBackoff[ni] {
					continue
				}
				if u, ok := probeUnitFor(ni); ok {
					answers[u.qi].Net.Probes++
					sendTo(ni, u, true)
				} else {
					// Nothing suitable to probe with; look again one backoff
					// from now instead of spinning.
					excludedAt[ni] = now
				}
			}
		}
	}

	// nextWake is the earliest instant at which dispatch could do
	// something it cannot do now: a running partition crossing the
	// straggler bar while an idle worker waits, or a probe backoff
	// expiring. It mirrors dispatch's eligibility rules exactly — a timer
	// that fired into a dispatch that refuses to act would busy-loop.
	nextWake := func() (time.Time, bool) {
		var wake time.Time
		if ms.speculate {
			idleAlive := false
			for ni := 0; ni < k; ni++ {
				if alive[ni] && idle[ni] {
					idleAlive = true
					break
				}
			}
			if idleAlive {
				for nj := 0; nj < k; nj++ {
					if !runningActive[nj] || probing[nj] {
						continue
					}
					r := runningU[nj]
					if isDone(r) || inflightCnt[partKey{r.qi, r.partID}] > 1 {
						continue
					}
					thr, ok := threshold(r.qi)
					if !ok {
						continue
					}
					if t := runningSince[nj].Add(thr); wake.IsZero() || t.Before(wake) {
						wake = t
					}
				}
			}
		}
		if ms.readmitAfter > 0 {
			for ni := 0; ni < k; ni++ {
				if alive[ni] || !idle[ni] {
					continue
				}
				if t := excludedAt[ni].Add(probeBackoff[ni]); wake.IsZero() || t.Before(wake) {
					wake = t
				}
			}
		}
		return wake, !wake.IsZero()
	}

	for nDone < totalParts {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("netrun: %w", context.Cause(ctx))
		}
		if aliveCount == 0 {
			return nil, fmt.Errorf("netrun: all %d workers failed with %d of %d partitions unanswered",
				k, totalParts-nDone, totalParts)
		}
		dispatch()
		if outstanding == 0 {
			// Unreachable while a worker is alive: an idle survivor always
			// accepts pending work. Guard against coordination bugs anyway.
			return nil, fmt.Errorf("netrun: stalled with %d of %d partitions unanswered", totalParts-nDone, totalParts)
		}
		var timerC <-chan time.Time
		var timer *time.Timer
		if adaptive {
			if wake, ok := nextWake(); ok {
				d := time.Until(wake)
				if d < time.Millisecond {
					d = time.Millisecond
				}
				timer = time.NewTimer(d)
				timerC = timer.C
			}
		}
		var res jobResult
		gotRes := false
		select {
		case res = <-results:
			gotRes = true
		case <-timerC:
			// A straggler threshold or probe backoff just expired; loop so
			// dispatch can act on it.
		case <-ctx.Done():
			if timer != nil {
				timer.Stop()
			}
			// The deferred cleanup force-closes every connection, aborting
			// in-flight work, and waits for the worker loops to exit.
			return nil, fmt.Errorf("netrun: %w", context.Cause(ctx))
		}
		if timer != nil {
			timer.Stop()
		}
		if !gotRes {
			continue
		}
		outstanding--
		ni := res.worker
		idle[ni] = true
		wasProbe := probing[ni]
		probing[ni] = false
		runningActive[ni] = false
		key := partKey{res.unit.qi, res.unit.partID}
		if inflightCnt[key]--; inflightCnt[key] <= 0 {
			delete(inflightCnt, key)
		}
		// stale: some other copy of this partition already won the race
		// and was aggregated; whatever this attempt brought back is
		// redundant by construction.
		stale := isDone(res.unit)
		ans := answers[res.unit.qi]
		ans.Net.BytesSent += res.sent
		ans.Net.BytesReceived += res.rcvd
		ans.Net.Messages += res.msgs
		for _, ig := range res.ignored {
			origin := answers[ig.qi].Net
			origin.BytesReceived += ig.bytes
			origin.Messages++
			origin.IgnoredFrames++
		}
		if res.dialed {
			ans.Net.Dials++
		}
		if res.err == nil {
			consecFails[ni] = 0
			if wasProbe && !alive[ni] {
				// The excluded worker answered a probe correctly: readmit it.
				alive[ni] = true
				aliveCount++
				ans.Net.Readmitted++
			}
			if stale {
				// The race's loser finished anyway (our cancel lost its own
				// race with the response): correct but redundant, discarded.
				ans.Net.SpeculationWasted++
				continue
			}
			done[res.unit.qi][res.unit.partID] = partDone{resp: res.resp, elapsed: res.elapsed}
			svcTimes[res.unit.qi] = append(svcTimes[res.unit.qi], res.elapsed)
			nDone++
			if remaining[res.unit.qi]--; remaining[res.unit.qi] == 0 {
				ans.Elapsed = time.Since(start)
			}
			if _, racing := inflightCnt[key]; racing {
				// This partition is still running elsewhere: tell the losers
				// to abort their dynamic programs.
				for nj := 0; nj < k; nj++ {
					if nj != ni && runningActive[nj] && runningU[nj].qi == key.qi && runningU[nj].partID == key.partID {
						if n := sts[nj].cancelInFlight(); n > 0 {
							ans.Net.BytesSent += uint64(n)
							ans.Net.Messages++
						}
					}
				}
			}
			continue
		}
		var we *wire.WorkerError
		if errors.As(res.err, &we) && we.Code == wire.ErrCanceled {
			// The loser acknowledged our cancel: benign — no penalty, no
			// connection drop, nothing to re-dispatch.
			ans.Net.SpeculationWasted++
			if wasProbe {
				// The probe's own partition finished elsewhere before the
				// probe did. Proves nothing about the worker's health either
				// way: stay excluded, try again one backoff from now.
				excludedAt[ni] = time.Now()
				continue
			}
			if stale {
				continue
			}
			// A worker canceled a job the master still wants — spurious, but
			// recoverable: re-queue under the attempt budget.
			u := res.unit
			u.attempts++
			u.failedOn = append(u.failedOn, ni)
			if u.attempts >= ms.maxAttempts {
				return nil, fmt.Errorf("netrun: partition %d failed %d times, giving up: %w",
					u.partID, u.attempts, res.err)
			}
			ans.Redispatched++
			ans.Net.Redispatched++
			retryQ = append(retryQ, u)
			continue
		}
		if res.fatal {
			if stale {
				// A deterministic failure from a race's loser, for a
				// partition that already has a correct answer: it cannot
				// poison the batch (the canceled DP may legitimately error
				// out mid-abort).
				ans.Net.SpeculationWasted++
				continue
			}
			return nil, fmt.Errorf("netrun: %w", res.err)
		}
		// A transport failure at or past the caller's deadline is the
		// deadline's doing, not the worker's: the attempt deadline was
		// tightened to the ctx deadline, and conn timeouts can fire a
		// beat before the context's own timer. Wait for the (imminent)
		// timer so the error is the deadline, deterministically.
		if dl, ok := ctx.Deadline(); ok && !time.Now().Before(dl) {
			<-ctx.Done()
			return nil, fmt.Errorf("netrun: %w", context.Cause(ctx))
		}
		// Transport-level failure: hold the worker accountable and
		// re-dispatch the unit.
		consecFails[ni]++
		if alive[ni] && consecFails[ni] >= ms.maxWorkerFailures {
			alive[ni] = false
			aliveCount--
			excludedAt[ni] = time.Now()
			probeBackoff[ni] = ms.readmitAfter
			// Hand the excluded worker's untouched share to the survivors.
			retryQ = append(retryQ, queues[ni]...)
			queues[ni] = nil
		}
		if wasProbe {
			// A failed probe: stay excluded and back off harder. The probe
			// was a clone, so its original is still queued or running —
			// nothing needs re-dispatching.
			excludedAt[ni] = time.Now()
			probeBackoff[ni] *= 2
			continue
		}
		if stale {
			// The loser's connection died — often our own cancel tearing
			// down a chaos proxy mid-stall. The partition is answered;
			// nothing to re-dispatch. The consecutive-failure penalty above
			// stands: the worker did fail at the transport level.
			ans.Net.SpeculationWasted++
			continue
		}
		u := res.unit
		u.attempts++
		u.failedOn = append(u.failedOn, ni)
		if u.attempts >= ms.maxAttempts {
			return nil, fmt.Errorf("netrun: partition %d failed %d times, giving up: %w",
				u.partID, u.attempts, res.err)
		}
		ans.Redispatched++
		ans.Net.Redispatched++
		retryQ = append(retryQ, u)
	}

	// Aggregate each query in partition-ID order: arrival order varies
	// with retries, scheduling and batch interleaving, but the answers
	// must not.
	for qi, job := range jobs {
		ans := answers[qi]
		m := job.Spec.Workers
		frontiers := make([][]*plan.Node, 0, m)
		for partID := 0; partID < m; partID++ {
			pd := done[qi][partID]
			ans.Stats.Add(pd.resp.Stats)
			if pd.resp.Stats.WorkUnits() > ans.MaxWorkerStats.WorkUnits() {
				ans.MaxWorkerStats = pd.resp.Stats
			}
			if pd.elapsed > ans.MaxWorkerElapsed {
				ans.MaxWorkerElapsed = pd.elapsed
			}
			ans.PerWorker = append(ans.PerWorker, core.WorkerReport{
				PartID: partID, Plans: len(pd.resp.Plans), Stats: pd.resp.Stats, Elapsed: pd.elapsed,
			})
			frontiers = append(frontiers, pd.resp.Plans)
		}
		best, frontier, err := core.FinalPrune(job.Spec, frontiers)
		if err != nil {
			return nil, err
		}
		ans.Best, ans.Frontier = best, frontier
	}
	return answers, nil
}
