package netrun

import (
	"context"
	"fmt"
	"net"
	"sync"

	"mpq/internal/core"
	"mpq/internal/wire"
)

// Worker is a TCP optimization worker. It serves job requests until
// closed; each connection handles frames sequentially (a worker node
// optimizes one partition at a time, like one Spark executor).
type Worker struct {
	ln     net.Listener
	wg     sync.WaitGroup
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// ListenWorker starts a worker on addr (e.g. "127.0.0.1:0") and begins
// accepting connections in the background.
func ListenWorker(addr string) (*Worker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netrun: listen: %w", err)
	}
	w := &Worker{ln: ln, conns: map[net.Conn]struct{}{}}
	w.wg.Add(1)
	go w.acceptLoop()
	return w, nil
}

// Addr returns the worker's listen address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

func (w *Worker) acceptLoop() {
	defer w.wg.Done()
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			return // listener closed
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			conn.Close()
			return
		}
		w.conns[conn] = struct{}{}
		w.mu.Unlock()
		w.wg.Add(1)
		go w.serveConn(conn)
	}
}

// serveConn processes a connection's frames sequentially, but reads
// ahead in a separate goroutine so a peer disconnect is noticed even
// while a job is computing: the reader's failure cancels the
// connection context, the in-flight dynamic program aborts between
// cardinality levels, and the worker stops burning CPU for a master
// that will never read the answer (a crashed master, a canceled batch,
// or a daemon client that gave up). Closing the worker closes the
// connection, which trips the same path — Close no longer waits for
// abandoned jobs to finish.
func (w *Worker) serveConn(conn net.Conn) {
	defer w.wg.Done()
	defer func() {
		w.mu.Lock()
		delete(w.conns, conn)
		w.mu.Unlock()
		conn.Close()
	}()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	frames := make(chan []byte)
	w.wg.Add(1)
	go func() { // reader: detects disconnect even mid-compute
		defer w.wg.Done()
		defer cancel()
		defer close(frames)
		for {
			payload, err := ReadFrame(conn)
			if err != nil {
				return // EOF or closed
			}
			select {
			case frames <- payload:
			case <-ctx.Done():
				return
			}
		}
	}()
	for payload := range frames {
		resp := handleRequest(ctx, payload)
		if resp == nil {
			return // connection gone mid-compute; nothing to answer
		}
		if err := WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

// handleRequest decodes and executes one job under the connection's
// context. Failures are reported with an explicit wire.WorkerError
// frame so the master can distinguish a request damaged in transit
// (ErrBadRequest — the master validates jobs before sending, so
// re-dispatch can help) from a deterministic job failure (ErrJobFailed
// — every worker would fail identically). A context cancellation means
// the connection died mid-compute; there is no one left to answer, so
// it returns nil instead of a frame. Every reply echoes the request's
// sequence number so the master can discard duplicated or stale
// frames; on a decode failure the Seq is recovered best-effort (0 when
// unreadable, which masters accept for any job).
func handleRequest(ctx context.Context, payload []byte) []byte {
	req, err := wire.DecodeJobRequest(payload)
	if err != nil {
		return wire.EncodeWorkerError(&wire.WorkerError{
			Seq: wire.PeekJobRequestSeq(payload), Code: wire.ErrBadRequest, Msg: fmt.Sprintf("decode: %v", err),
		})
	}
	res, err := core.RunWorkerContext(ctx, req.Query, req.Spec, req.PartID)
	if err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return wire.EncodeWorkerError(&wire.WorkerError{
			Seq: req.Seq, Code: wire.ErrJobFailed, Msg: err.Error(),
		})
	}
	return wire.EncodeJobResponse(&wire.JobResponse{Seq: req.Seq, Plans: res.Plans, Stats: res.Stats})
}

// Close stops accepting and tears down open connections.
func (w *Worker) Close() error {
	w.mu.Lock()
	w.closed = true
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	err := w.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	w.wg.Wait()
	return err
}
