package netrun

import (
	"context"
	"fmt"
	"net"
	"sync"

	"mpq/internal/core"
	"mpq/internal/wire"
)

// Worker is a TCP optimization worker. It serves job requests until
// closed; each connection handles frames sequentially (a worker node
// optimizes one partition at a time, like one Spark executor).
type Worker struct {
	ln     net.Listener
	wg     sync.WaitGroup
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// ListenWorker starts a worker on addr (e.g. "127.0.0.1:0") and begins
// accepting connections in the background.
func ListenWorker(addr string) (*Worker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netrun: listen: %w", err)
	}
	w := &Worker{ln: ln, conns: map[net.Conn]struct{}{}}
	w.wg.Add(1)
	go w.acceptLoop()
	return w, nil
}

// Addr returns the worker's listen address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

func (w *Worker) acceptLoop() {
	defer w.wg.Done()
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			return // listener closed
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			conn.Close()
			return
		}
		w.conns[conn] = struct{}{}
		w.mu.Unlock()
		w.wg.Add(1)
		go w.serveConn(conn)
	}
}

// serveConn processes a connection's frames sequentially, but reads
// ahead in a separate goroutine so a peer disconnect is noticed even
// while a job is computing: the reader's failure cancels the
// connection context, the in-flight dynamic program aborts between
// cardinality levels, and the worker stops burning CPU for a master
// that will never read the answer (a crashed master, a canceled batch,
// or a daemon client that gave up). Closing the worker closes the
// connection, which trips the same path — Close no longer waits for
// abandoned jobs to finish.
//
// The reader also intercepts CancelRequest frames without queueing
// them: a master that speculatively re-dispatched the in-flight
// partition elsewhere (and saw the clone win) cancels just that
// request's sequence number. The in-flight dynamic program aborts, and
// the main loop answers with an explicit WorkerError{ErrCanceled}
// frame — the master is blocked reading this connection and needs a
// frame to resynchronize — after which the connection keeps serving.
func (w *Worker) serveConn(conn net.Conn) {
	defer w.wg.Done()
	defer func() {
		w.mu.Lock()
		delete(w.conns, conn)
		w.mu.Unlock()
		conn.Close()
	}()
	ctx, cancel := context.WithCancel(context.Background()) //lint:allow ctxflow connection-lifetime root; the reader goroutine cancels it on disconnect and Close closes every conn
	defer cancel()
	jobs := &seqCancels{canceled: map[uint32]bool{}}
	frames := make(chan []byte)
	w.wg.Add(1)
	go func() { // reader: detects disconnect and cancels even mid-compute
		defer w.wg.Done()
		defer cancel()
		defer close(frames)
		for {
			payload, err := ReadFrame(conn)
			if err != nil {
				return // EOF or closed
			}
			if tag, err := wire.MessageTag(payload); err == nil && tag == wire.TagCancelRequest {
				if c, err := wire.DecodeCancelRequest(payload); err == nil {
					jobs.cancel(c.Seq)
				}
				continue // never queued: it must act while a job computes
			}
			select {
			case frames <- payload:
			case <-ctx.Done():
				return
			}
		}
	}()
	for payload := range frames {
		seq := wire.PeekJobRequestSeq(payload)
		jobCtx, stop := jobs.begin(ctx, seq)
		resp := handleRequest(jobCtx, payload)
		jobs.end()
		stop()
		if resp == nil {
			if ctx.Err() != nil {
				return // connection gone mid-compute; nothing to answer
			}
			// Per-sequence cancel: the master explicitly no longer wants
			// this answer but is still reading — acknowledge and move on.
			resp = wire.EncodeWorkerError(&wire.WorkerError{
				Seq: seq, Code: wire.ErrCanceled, Msg: "canceled by master",
			})
		}
		if err := WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

// seqCancels routes per-sequence CancelRequest frames (arriving on a
// connection's reader goroutine) to the job currently computing on the
// main loop. A cancel can also race ahead of its own request — the
// reader processes frames the main loop has not started yet — so
// cancels for unknown sequence numbers are remembered and applied the
// moment that request begins.
type seqCancels struct {
	mu       sync.Mutex
	seq      uint32
	active   bool
	stop     context.CancelFunc
	canceled map[uint32]bool
}

// begin registers the request about to compute and returns its context,
// pre-canceled if the cancel frame arrived first.
func (s *seqCancels) begin(parent context.Context, seq uint32) (context.Context, context.CancelFunc) {
	ctx, stop := context.WithCancel(parent)
	s.mu.Lock()
	s.seq, s.active, s.stop = seq, true, stop
	if s.canceled[seq] {
		delete(s.canceled, seq)
		stop()
	}
	s.mu.Unlock()
	return ctx, stop
}

// end marks the in-flight request finished; later cancels for its
// sequence number are stale and must not touch the next job.
func (s *seqCancels) end() {
	s.mu.Lock()
	s.active, s.stop = false, nil
	s.mu.Unlock()
}

// cancel aborts the given sequence number: immediately if it is the
// job in flight, or on arrival if the request has not started yet.
func (s *seqCancels) cancel(seq uint32) {
	s.mu.Lock()
	if s.active && s.seq == seq {
		s.stop()
	} else if !s.active || s.seq < seq {
		// Not started yet (masters send at most one cancel, always after
		// its request, so an unmatched cancel for a future seq is a
		// read-ahead race). Cancels for already-answered sequence numbers
		// fall through here too; the bound below keeps the map finite
		// against a misbehaving peer.
		if len(s.canceled) < 1024 {
			s.canceled[seq] = true
		}
	}
	s.mu.Unlock()
}

// handleRequest decodes and executes one job under the connection's
// context. Failures are reported with an explicit wire.WorkerError
// frame so the master can distinguish a request damaged in transit
// (ErrBadRequest — the master validates jobs before sending, so
// re-dispatch can help) from a deterministic job failure (ErrJobFailed
// — every worker would fail identically). A context cancellation means
// the connection died mid-compute; there is no one left to answer, so
// it returns nil instead of a frame. Every reply echoes the request's
// sequence number so the master can discard duplicated or stale
// frames; on a decode failure the Seq is recovered best-effort (0 when
// unreadable, which masters accept for any job).
func handleRequest(ctx context.Context, payload []byte) []byte {
	req, err := wire.DecodeJobRequest(payload)
	if err != nil {
		return wire.EncodeWorkerError(&wire.WorkerError{
			Seq: wire.PeekJobRequestSeq(payload), Code: wire.ErrBadRequest, Msg: fmt.Sprintf("decode: %v", err),
		})
	}
	res, err := core.RunWorkerContext(ctx, req.Query, req.Spec, req.PartID)
	if err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return wire.EncodeWorkerError(&wire.WorkerError{
			Seq: req.Seq, Code: wire.ErrJobFailed, Msg: err.Error(),
		})
	}
	return wire.EncodeJobResponse(&wire.JobResponse{Seq: req.Seq, Plans: res.Plans, Stats: res.Stats})
}

// Close stops accepting and tears down open connections.
func (w *Worker) Close() error {
	w.mu.Lock()
	w.closed = true
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	err := w.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	w.wg.Wait()
	return err
}
