package netrun

import (
	"net"
	"testing"
	"time"

	"mpq/internal/core"
	"mpq/internal/partition"
	"mpq/internal/wire"
	"mpq/internal/workload"
)

// A worker that stalls mid-partition must not hold the batch hostage
// for the full attempt timeout: with speculation on, an idle peer
// clones the straggling partition, the clone's answer wins, and the
// plan stays bit-identical to the fault-free run. The stalled original
// is canceled (the cancel frame is what breaks the proxy's hold), and
// nothing is ever re-dispatched through the retry path.
func TestStallSpeculativeCloneWins(t *testing.T) {
	q := gen(t, 8, 7)
	spec := core.JobSpec{Space: partition.Linear, Workers: 4}
	local, err := core.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	cleanAddrs := startWorkers(t, 2)
	cleanMaster, err := NewMaster(cleanAddrs, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := cleanMaster.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}

	addrs, proxies := startChaosWorkers(t, 2, []FaultPlan{{0: Stall}, nil})
	ms, err := NewMasterWithOptions(addrs, Options{
		// Without speculation the stalled partition would sit for the full
		// attempt timeout before the ordinary retry path touched it; the
		// wall-clock bound below is an order of magnitude tighter.
		Timeout:          30 * time.Second,
		Speculate:        true,
		SpeculationFloor: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	ans, err := ms.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("speculation did not rescue the stall: took %v", elapsed)
	}
	assertBitIdentical(t, ans.Best, clean.Best, local.Best)
	if ans.Net.Speculations == 0 {
		t.Fatal("no speculative re-dispatch recorded under a stall")
	}
	if ans.Redispatched != 0 {
		t.Fatalf("Redispatched = %d: speculation must pre-empt the timeout retry path", ans.Redispatched)
	}
	// The stalled worker saw exactly its first job; its queued share was
	// stolen, not dispatched into the stall.
	if got := proxies[0].Jobs(); got != 1 {
		t.Fatalf("stalled worker saw %d jobs, want 1", got)
	}
}

// The race's loser can finish anyway: its response arrives late, on its
// own connection, with a sequence number that matches its own request —
// so the Seq echo accepts the frame, and it is the aggregation's
// partition bookkeeping that discards it as stale. Staggered drip rates
// arrange the full sequence deterministically: partition 0's original
// (slow drip on worker 0) loses to a fast clone but still delivers
// while partition 2's race — whose clone drips too — is in flight, so
// the coordinator is provably still running when the late frame lands.
func TestSpeculativeLoserLateFrameDiscarded(t *testing.T) {
	q := gen(t, 8, 7)
	spec := core.JobSpec{Space: partition.Linear, Workers: 4}
	local, err := core.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	cleanAddrs := startWorkers(t, 3)
	cleanMaster, err := NewMaster(cleanAddrs, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := cleanMaster.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Worker 0 drips its first job (partition 0, ~270ms: the late loser).
	// Worker 1 serves p1, steals p3, then receives both clones; only its
	// fourth job — the clone of p2 — drips (~340ms), keeping the batch
	// alive past worker 0's late frame. Worker 2 drips p2 very slowly
	// (~1.3s): the straggler whose race outlives everything else.
	addrs, proxies := startChaosWorkers(t, 3, []FaultPlan{
		{0: SlowDrip}, {3: SlowDrip}, {0: SlowDrip},
	})
	proxies[0].Drip = 8 * time.Millisecond
	proxies[1].Drip = 10 * time.Millisecond
	proxies[2].Drip = 40 * time.Millisecond
	ms, err := NewMasterWithOptions(addrs, Options{
		Timeout:          30 * time.Second,
		Speculate:        true,
		SpeculationFloor: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ms.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, ans.Best, clean.Best, local.Best)
	if ans.Net.Speculations != 2 {
		t.Fatalf("Speculations = %d, want 2 (partitions 0 and 2 each raced)", ans.Net.Speculations)
	}
	// Exactly one loser delivered a late frame: worker 0's dripped
	// response for the already-aggregated partition 0. Worker 2's loser
	// was still dripping when the batch completed and was torn down.
	if ans.Net.SpeculationWasted != 1 {
		t.Fatalf("SpeculationWasted = %d, want 1 (the late loser frame)", ans.Net.SpeculationWasted)
	}
	if ans.Net.IgnoredFrames != 0 {
		t.Fatalf("IgnoredFrames = %d: the loser's frame matches its own request's Seq", ans.Net.IgnoredFrames)
	}
	if ans.Redispatched != 0 {
		t.Fatalf("Redispatched = %d: races are not failures", ans.Redispatched)
	}
}

// An excluded worker gets a low-priority probe after the re-admission
// backoff; answering it correctly returns the worker to the pool, and
// the readmitted worker then carries real work. Worker 1 drips every
// response so the batch is still pending when the probe fires.
func TestProbeReadmitsExcludedWorker(t *testing.T) {
	q := gen(t, 8, 9)
	spec := core.JobSpec{Space: partition.Linear, Workers: 8}
	local, err := core.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	drip := FaultPlan{}
	for i := 0; i < 16; i++ {
		drip[i] = SlowDrip
	}
	addrs, proxies := startChaosWorkers(t, 2, []FaultPlan{
		{0: KillBeforeResponse, 1: KillBeforeResponse}, drip,
	})
	proxies[1].Drip = 5 * time.Millisecond
	ms, err := NewMasterWithOptions(addrs, Options{
		Timeout:           5 * time.Second,
		MaxWorkerFailures: 2,
		ReadmitAfter:      120 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ms.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if wire.PlanFingerprint(ans.Best) != wire.PlanFingerprint(local.Best) {
		t.Fatal("plan differs after exclusion and re-admission")
	}
	if ans.Net.Probes == 0 {
		t.Fatal("no re-admission probe recorded")
	}
	if ans.Net.Readmitted != 1 {
		t.Fatalf("Readmitted = %d, want 1", ans.Net.Readmitted)
	}
	if ans.Redispatched != 2 {
		t.Fatalf("Redispatched = %d, want 2 (the two killed attempts)", ans.Redispatched)
	}
	// The worker saw its two scripted kills, the probe, and then real
	// work again after rejoining the pool.
	if got := proxies[0].Jobs(); got < 3 {
		t.Fatalf("excluded worker saw %d jobs, want >= 3 (2 kills + probe + work)", got)
	}
}

// Probes are off by default: without ReadmitAfter an excluded worker
// stays excluded for the rest of the batch (the pre-adaptive behavior).
func TestNoProbesWithoutReadmitAfter(t *testing.T) {
	q := gen(t, 8, 5)
	spec := core.JobSpec{Space: partition.Linear, Workers: 8}
	killAll := FaultPlan{}
	for i := 0; i < 16; i++ {
		killAll[i] = KillBeforeResponse
	}
	addrs, proxies := startChaosWorkers(t, 2, []FaultPlan{killAll, nil})
	ms, err := NewMasterWithOptions(addrs, Options{
		Timeout:           2 * time.Second,
		MaxAttempts:       3,
		MaxWorkerFailures: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ms.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Net.Probes != 0 || ans.Net.Readmitted != 0 {
		t.Fatalf("probes ran without ReadmitAfter: %d probes, %d readmissions",
			ans.Net.Probes, ans.Net.Readmitted)
	}
	if got := proxies[0].Jobs(); got != 2 {
		t.Fatalf("excluded worker saw %d jobs, want exactly its failure budget of 2", got)
	}
}

// Regression test for the worker side of speculative cancellation: a
// CancelRequest for the in-flight sequence number aborts the dynamic
// program long before it would finish, the worker acknowledges with an
// explicit ErrCanceled frame, and the connection keeps serving.
func TestWorkerCancelAbortsInFlightJob(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a multi-second optimization to observe its abort")
	}
	w, err := ListenWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// ~9s of single-partition bushy-clique DP when left alone (same
	// calibrated workload as the disconnect test); the cancel must cut
	// that to roughly one cardinality level.
	big := workload.MustGenerate(workload.NewParams(15, workload.Clique), 1)
	conn, err := net.Dial("tcp", w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := wire.EncodeJobRequest(&wire.JobRequest{
		Seq:   1,
		Spec:  core.JobSpec{Space: partition.Bushy, Workers: 1},
		Query: big,
	})
	if err := WriteFrame(conn, req); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let the DP get going
	if err := WriteFrame(conn, wire.EncodeCancelRequest(&wire.CancelRequest{Seq: 1})); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	respB, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel acknowledged only after %v; the DP was not aborted", elapsed)
	}
	we, err := wire.DecodeWorkerError(respB)
	if err != nil {
		t.Fatalf("expected a WorkerError acknowledgment, got: %v", err)
	}
	if we.Seq != 1 || we.Code != wire.ErrCanceled {
		t.Fatalf("ack = seq %d code %d, want seq 1 code ErrCanceled", we.Seq, we.Code)
	}

	// The connection must remain usable: the loser's goroutine exited
	// cleanly rather than poisoning the stream.
	small := workload.MustGenerate(workload.NewParams(6, workload.Star), 2)
	req2 := wire.EncodeJobRequest(&wire.JobRequest{
		Seq:   2,
		Spec:  core.JobSpec{Space: partition.Linear, Workers: 2},
		Query: small,
	})
	if err := WriteFrame(conn, req2); err != nil {
		t.Fatal(err)
	}
	respB, err = ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := wire.DecodeJobResponse(respB)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 2 || len(resp.Plans) == 0 {
		t.Fatalf("post-cancel resp seq=%d plans=%d, want seq=2 with plans", resp.Seq, len(resp.Plans))
	}
}

// A cancel can overtake its own request: the reader goroutine processes
// frames the job loop has not dequeued yet. The worker must remember it
// and pre-cancel the job the moment it starts.
func TestWorkerCancelRacesAheadOfRequest(t *testing.T) {
	w, err := ListenWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	conn, err := net.Dial("tcp", w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Cancel for seq 1 lands before the request it targets.
	if err := WriteFrame(conn, wire.EncodeCancelRequest(&wire.CancelRequest{Seq: 1})); err != nil {
		t.Fatal(err)
	}
	q := gen(t, 10, 3)
	req := wire.EncodeJobRequest(&wire.JobRequest{
		Seq:   1,
		Spec:  core.JobSpec{Space: partition.Linear, Workers: 2},
		Query: q,
	})
	if err := WriteFrame(conn, req); err != nil {
		t.Fatal(err)
	}
	respB, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	we, err := wire.DecodeWorkerError(respB)
	if err != nil {
		t.Fatalf("expected a pre-canceled WorkerError, got: %v", err)
	}
	if we.Seq != 1 || we.Code != wire.ErrCanceled {
		t.Fatalf("ack = seq %d code %d, want seq 1 code ErrCanceled", we.Seq, we.Code)
	}

	// A stale cancel (for the already-answered seq 1) must not leak onto
	// the next request.
	if err := WriteFrame(conn, wire.EncodeCancelRequest(&wire.CancelRequest{Seq: 1})); err != nil {
		t.Fatal(err)
	}
	req2 := wire.EncodeJobRequest(&wire.JobRequest{
		Seq:   2,
		Spec:  core.JobSpec{Space: partition.Linear, Workers: 2},
		Query: q,
	})
	if err := WriteFrame(conn, req2); err != nil {
		t.Fatal(err)
	}
	respB, err = ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := wire.DecodeJobResponse(respB)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 2 || len(resp.Plans) == 0 {
		t.Fatalf("resp seq=%d plans=%d, want seq=2 with plans", resp.Seq, len(resp.Plans))
	}
}
