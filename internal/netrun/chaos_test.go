package netrun

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"mpq/internal/core"
	"mpq/internal/partition"
	"mpq/internal/plan"
	"mpq/internal/wire"
	"mpq/internal/workload"
)

// startChaosWorkers launches k real workers, each behind a chaos proxy
// scripted by plans[i] (nil = pass-through), and returns the proxy
// addresses the master should dial plus the proxies for inspection.
func startChaosWorkers(t *testing.T, k int, plans []FaultPlan) ([]string, []*ChaosProxy) {
	t.Helper()
	addrs := make([]string, k)
	proxies := make([]*ChaosProxy, k)
	for i := 0; i < k; i++ {
		w, err := ListenWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		var fp FaultPlan
		if plans != nil {
			fp = plans[i]
		}
		p, err := NewChaosProxy(w.Addr(), fp)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		addrs[i] = p.Addr()
		proxies[i] = p
	}
	return addrs, proxies
}

// assertBitIdentical requires the exact same plan bytes and cost from
// the faulted distributed run, the clean distributed run, and the
// in-process engine (dp.Run per partition + FinalPrune).
func assertBitIdentical(t *testing.T, faulted *plan.Node, clean *plan.Node, local *plan.Node) {
	t.Helper()
	ff, cf, lf := wire.PlanFingerprint(faulted), wire.PlanFingerprint(clean), wire.PlanFingerprint(local)
	if ff != cf {
		t.Fatalf("faulted plan differs from failure-free plan:\n%s\nvs\n%s", faulted, clean)
	}
	if ff != lf {
		t.Fatalf("faulted plan differs from in-process plan:\n%s\nvs\n%s", faulted, local)
	}
	if faulted.Cost != clean.Cost || faulted.Cost != local.Cost {
		t.Fatalf("costs differ: faulted %v clean %v local %v", faulted.Cost, clean.Cost, local.Cost)
	}
}

// The acceptance criterion: with m workers and any k < m of them
// killed, stalled, or corrupted mid-query, Optimize returns a plan
// bit-identical to the failure-free run.
func TestAnyMinorityFaultedBitIdentical(t *testing.T) {
	q := gen(t, 8, 11)
	spec := core.JobSpec{Space: partition.Linear, Workers: 8}
	local, err := core.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	cleanAddrs := startWorkers(t, 4)
	cleanMaster, err := NewMaster(cleanAddrs, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := cleanMaster.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}

	actions := []FaultAction{KillBeforeResponse, Stall, TruncateResponse, CorruptResponse, CorruptRequest}
	for _, action := range actions {
		for k := 1; k < 4; k++ {
			t.Run(fmt.Sprintf("%v_k%d", action, k), func(t *testing.T) {
				if testing.Short() && action == Stall && k == 2 {
					t.Skip("short mode: skip one stall size")
				}
				plans := make([]FaultPlan, 4)
				for i := 0; i < k; i++ {
					plans[i] = FaultPlan{0: action}
				}
				addrs, _ := startChaosWorkers(t, 4, plans)
				ms, err := NewMasterWithOptions(addrs, Options{
					Timeout:           700 * time.Millisecond,
					MaxAttempts:       4,
					MaxWorkerFailures: 2,
				})
				if err != nil {
					t.Fatal(err)
				}
				ans, err := ms.Optimize(q, spec)
				if err != nil {
					t.Fatalf("%v with k=%d not survived: %v", action, k, err)
				}
				assertBitIdentical(t, ans.Best, clean.Best, local.Best)
				if ans.Redispatched < k {
					t.Fatalf("Redispatched = %d, want >= %d", ans.Redispatched, k)
				}
			})
		}
	}
}

// End-to-end equivalence on random join graphs: distributed-with-faults,
// distributed-failure-free, and the in-process engine must agree on plan
// fingerprints and costs exactly.
func TestEndToEndEquivalenceUnderRandomFaults(t *testing.T) {
	// Snowflake first so the short run covers the newest shape; every
	// third iteration stresses correlated selectivities.
	shapes := []workload.Shape{workload.Snowflake, workload.Star, workload.Chain, workload.Cycle, workload.Clique}
	iters := 10
	if testing.Short() {
		iters = 4
	}
	rng := rand.New(rand.NewSource(2016))
	for it := 0; it < iters; it++ {
		shape := shapes[it%len(shapes)]
		n := 7 + it%3
		params := workload.NewParams(n, shape)
		if it%3 == 0 {
			params.Correlation = 0.7
		}
		q := workload.MustGenerate(params, int64(100+it))
		spec := core.JobSpec{Space: partition.Linear, Workers: 8}
		if it%2 == 1 {
			spec = core.JobSpec{Space: partition.Bushy, Workers: 4}
		}

		local, err := core.Optimize(q, spec)
		if err != nil {
			t.Fatal(err)
		}
		cleanAddrs := startWorkers(t, 4)
		cleanMaster, err := NewMaster(cleanAddrs, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		clean, err := cleanMaster.Optimize(q, spec)
		if err != nil {
			t.Fatal(err)
		}

		// Random fault script. At most 2 faults per proxy and 5 in total,
		// which with MaxAttempts=6 and MaxWorkerFailures=3 guarantees the
		// budget can never be exhausted — recovery must always succeed.
		faultKinds := []FaultAction{KillBeforeResponse, TruncateResponse, CorruptResponse, CorruptRequest}
		plans := make([]FaultPlan, 4)
		total := 0
		for i := range plans {
			plans[i] = FaultPlan{}
			if total < 5 && rng.Float64() < 0.6 {
				plans[i][0] = faultKinds[rng.Intn(len(faultKinds))]
				total++
			}
			if total < 5 && rng.Float64() < 0.25 {
				plans[i][1] = faultKinds[rng.Intn(len(faultKinds))]
				total++
			}
		}
		if total == 0 {
			plans[0][0] = KillBeforeResponse
		}
		addrs, _ := startChaosWorkers(t, 4, plans)
		ms, err := NewMasterWithOptions(addrs, Options{
			Timeout:           5 * time.Second,
			MaxAttempts:       6,
			MaxWorkerFailures: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		faulted, err := ms.Optimize(q, spec)
		if err != nil {
			t.Fatalf("iter %d (%v %d tables): %v", it, shape, n, err)
		}
		assertBitIdentical(t, faulted.Best, clean.Best, local.Best)
	}
}

// Multi-objective jobs must return the identical merged frontier under
// injected failures.
func TestMultiObjectiveFaultedFrontierIdentical(t *testing.T) {
	q := gen(t, 7, 1)
	spec := core.JobSpec{
		Space: partition.Linear, Workers: 4,
		Objective: core.MultiObjective, Alpha: 1,
	}
	local, err := core.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	plans := []FaultPlan{{0: KillBeforeResponse}, {0: CorruptResponse}, nil, nil}
	addrs, _ := startChaosWorkers(t, 4, plans)
	ms, err := NewMasterWithOptions(addrs, Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := ms.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.Frontier) != len(local.Frontier) {
		t.Fatalf("frontier size %d != %d", len(dist.Frontier), len(local.Frontier))
	}
	for i := range dist.Frontier {
		if wire.PlanFingerprint(dist.Frontier[i]) != wire.PlanFingerprint(local.Frontier[i]) {
			t.Fatalf("frontier plan %d differs", i)
		}
	}
}

// A worker that keeps failing is excluded and its whole share moves to
// the survivors.
func TestWorkerExclusionAfterRepeatedFailures(t *testing.T) {
	q := gen(t, 8, 5)
	spec := core.JobSpec{Space: partition.Linear, Workers: 8}
	local, err := core.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Proxy 0 kills every job it ever sees; proxy 1 is clean.
	killAll := FaultPlan{}
	for i := 0; i < 16; i++ {
		killAll[i] = KillBeforeResponse
	}
	addrs, proxies := startChaosWorkers(t, 2, []FaultPlan{killAll, nil})
	ms, err := NewMasterWithOptions(addrs, Options{
		Timeout:           2 * time.Second,
		MaxAttempts:       3,
		MaxWorkerFailures: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ms.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if wire.PlanFingerprint(ans.Best) != wire.PlanFingerprint(local.Best) {
		t.Fatal("plan differs after worker exclusion")
	}
	if ans.Redispatched < 2 {
		t.Fatalf("Redispatched = %d, want >= 2", ans.Redispatched)
	}
	// Exclusion after 2 consecutive failures: the dead worker saw exactly
	// its failure-budget worth of jobs, not its whole share of 4.
	if got := proxies[0].Jobs(); got != 2 {
		t.Fatalf("excluded worker saw %d jobs, want 2", got)
	}
}

// A duplicated response frame must not be mistaken for the answer to
// the next job on the same connection: the sequence echo identifies it
// and the master's aggregation ignores it. One worker serves all four
// partitions back to back, so without the seq check the duplicate of
// job 0's response would be consumed as job 1's answer and corrupt the
// aggregation (or desync the stream).
func TestDuplicateResponseIgnored(t *testing.T) {
	q := gen(t, 8, 3)
	spec := core.JobSpec{Space: partition.Linear, Workers: 4}
	local, err := core.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	addrs, _ := startChaosWorkers(t, 1, []FaultPlan{{0: DuplicateResponse, 2: DuplicateResponse}})
	ms, err := NewMaster(addrs, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ms.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if wire.PlanFingerprint(ans.Best) != wire.PlanFingerprint(local.Best) {
		t.Fatal("plan differs under duplicated responses")
	}
	if ans.Redispatched != 0 {
		t.Fatalf("Redispatched = %d: duplicates must not look like failures", ans.Redispatched)
	}
	if ans.Net.IgnoredFrames != 2 {
		t.Fatalf("IgnoredFrames = %d, want 2 (one per duplicated frame)", ans.Net.IgnoredFrames)
	}
	// Every partition must have been answered exactly once in the
	// aggregation: 4 reports, each with plans.
	if len(ans.PerWorker) != 4 {
		t.Fatalf("PerWorker reports = %d, want 4", len(ans.PerWorker))
	}
}

// A duplicate that surfaces while a *different* query's unit is in
// flight on the shared batch connection must be billed to the query
// that produced it, not the one that happened to read it.
func TestDuplicateAttributionAcrossBatchQueries(t *testing.T) {
	qa, qb := gen(t, 7, 31), gen(t, 7, 32)
	jspec := core.JobSpec{Space: partition.Linear, Workers: 4}
	// One worker serves query A's four units, then query B's four; the
	// proxy duplicates the response of A's last unit (arrival index 3),
	// so the duplicate is read while B's first unit is in flight.
	addrs, _ := startChaosWorkers(t, 1, []FaultPlan{{3: DuplicateResponse}})
	ms, err := NewMaster(addrs, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := ms.OptimizeBatch(t.Context(), []Job{
		{Query: qa, Spec: jspec},
		{Query: qb, Spec: jspec},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := answers[0].Net.IgnoredFrames; got != 1 {
		t.Fatalf("query A IgnoredFrames = %d, want 1 (it produced the duplicate)", got)
	}
	if got := answers[1].Net.IgnoredFrames; got != 0 {
		t.Fatalf("query B IgnoredFrames = %d, want 0 (it only read the duplicate)", got)
	}
	// The duplicate's bytes and message land on A as well: A saw its 8
	// regular frames plus the duplicate.
	if answers[0].Net.Messages != 9 || answers[1].Net.Messages != 8 {
		t.Fatalf("messages = %d/%d, want 9/8", answers[0].Net.Messages, answers[1].Net.Messages)
	}
}

// A batch keeps its bit-identity guarantee under injected faults: the
// units of both queries are interleaved over the same keep-alive
// connections, some attempts are killed or corrupted, and every answer
// must still match its clean single-query run byte for byte.
func TestBatchBitIdenticalUnderFaults(t *testing.T) {
	qa, qb := gen(t, 8, 21), gen(t, 7, 22)
	ja := Job{Query: qa, Spec: core.JobSpec{Space: partition.Linear, Workers: 8}}
	jb := Job{Query: qb, Spec: core.JobSpec{Space: partition.Bushy, Workers: 4}}
	localA, err := core.Optimize(qa, ja.Spec)
	if err != nil {
		t.Fatal(err)
	}
	localB, err := core.Optimize(qb, jb.Spec)
	if err != nil {
		t.Fatal(err)
	}
	plans := []FaultPlan{
		{0: KillBeforeResponse, 3: CorruptResponse, 5: DuplicateResponse},
		{1: TruncateResponse},
	}
	addrs, _ := startChaosWorkers(t, 2, plans)
	ms, err := NewMasterWithOptions(addrs, Options{
		Timeout:           5 * time.Second,
		MaxAttempts:       6,
		MaxWorkerFailures: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	answers, err := ms.OptimizeBatch(t.Context(), []Job{ja, jb})
	if err != nil {
		t.Fatal(err)
	}
	if wire.PlanFingerprint(answers[0].Best) != wire.PlanFingerprint(localA.Best) {
		t.Fatal("batch answer 0 differs from the in-process plan")
	}
	if wire.PlanFingerprint(answers[1].Best) != wire.PlanFingerprint(localB.Best) {
		t.Fatal("batch answer 1 differs from the in-process plan")
	}
	redispatched := answers[0].Redispatched + answers[1].Redispatched
	if redispatched < 3 {
		t.Fatalf("Redispatched = %d across the batch, want >= 3", redispatched)
	}
}

// When every attempt fails, the retry budget bounds the damage and the
// error names the partition.
func TestRetryBudgetExhausted(t *testing.T) {
	killAll := FaultPlan{}
	for i := 0; i < 16; i++ {
		killAll[i] = KillBeforeResponse
	}
	addrs, _ := startChaosWorkers(t, 1, []FaultPlan{killAll})
	ms, err := NewMasterWithOptions(addrs, Options{
		Timeout:           time.Second,
		MaxAttempts:       3,
		MaxWorkerFailures: 10, // don't exclude: exercise the attempt budget
	})
	if err != nil {
		t.Fatal(err)
	}
	q := gen(t, 6, 0)
	_, err = ms.Optimize(q, core.JobSpec{Space: partition.Linear, Workers: 2})
	if err == nil {
		t.Fatal("exhausted retry budget not reported")
	}
	if !strings.Contains(err.Error(), "failed 3 times") {
		t.Fatalf("error %q does not mention the attempt budget", err)
	}
}

// A slow connection that still beats the deadline is not a failure.
func TestSlowDripWithinDeadlineSucceeds(t *testing.T) {
	q := gen(t, 7, 2)
	spec := core.JobSpec{Space: partition.Linear, Workers: 4}
	local, err := core.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	addrs, _ := startChaosWorkers(t, 2, []FaultPlan{{0: SlowDrip}, nil})
	ms, err := NewMasterWithOptions(addrs, Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ms.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if wire.PlanFingerprint(ans.Best) != wire.PlanFingerprint(local.Best) {
		t.Fatal("plan differs under slow drip")
	}
	if ans.Redispatched != 0 {
		t.Fatalf("Redispatched = %d for a within-deadline drip", ans.Redispatched)
	}
}

// A drip slower than the deadline is a hang: the job must be
// re-dispatched and the answer unchanged.
func TestSlowDripBeyondDeadlineRedispatches(t *testing.T) {
	q := gen(t, 7, 2)
	spec := core.JobSpec{Space: partition.Linear, Workers: 4}
	local, err := core.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	addrs, proxies := startChaosWorkers(t, 2, []FaultPlan{{0: SlowDrip}, nil})
	proxies[0].Drip = 300 * time.Millisecond
	proxies[0].DripChunk = 1
	ms, err := NewMasterWithOptions(addrs, Options{Timeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ms.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if wire.PlanFingerprint(ans.Best) != wire.PlanFingerprint(local.Best) {
		t.Fatal("plan differs after drip timeout")
	}
	if ans.Redispatched == 0 {
		t.Fatal("over-deadline drip was not re-dispatched")
	}
}
