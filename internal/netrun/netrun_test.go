package netrun

import (
	"bytes"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"mpq/internal/core"
	"mpq/internal/partition"
	"mpq/internal/query"
	"mpq/internal/wire"
	"mpq/internal/workload"
)

func gen(t testing.TB, n int, seed int64) *query.Query {
	t.Helper()
	return workload.MustGenerate(workload.NewParams(n, workload.Star), seed)
}

func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// startWorkers launches k loopback workers and returns their addresses
// plus a cleanup function.
func startWorkers(t *testing.T, k int) []string {
	t.Helper()
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		w, err := ListenWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		addrs[i] = w.Addr()
	}
	return addrs
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("got %q", got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d bytes", len(got))
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 10, 1, 2}) // claims 10 bytes, has 2
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

// End-to-end: distributed MPQ over loopback TCP returns the same optimum
// as the in-process engine.
func TestDistributedMatchesInProcess(t *testing.T) {
	addrs := startWorkers(t, 4)
	ms, err := NewMaster(addrs, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 3; seed++ {
		q := gen(t, 8, seed)
		spec := core.JobSpec{Space: partition.Linear, Workers: 4}
		dist, err := ms.Optimize(q, spec)
		if err != nil {
			t.Fatal(err)
		}
		local, err := core.Optimize(q, spec)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(dist.Best.Cost, local.Best.Cost) {
			t.Fatalf("seed=%d: distributed %g != local %g", seed, dist.Best.Cost, local.Best.Cost)
		}
		if dist.Best.String() != local.Best.String() {
			t.Fatalf("plan structure differs: %s vs %s", dist.Best, local.Best)
		}
		if dist.Net.BytesSent == 0 || dist.Net.BytesReceived == 0 || dist.Net.Messages != 8 {
			t.Fatalf("net stats %+v", dist.Net)
		}
	}
}

// More partitions than workers: round-robin assignment still covers the
// whole plan space.
func TestMorePartitionsThanWorkers(t *testing.T) {
	addrs := startWorkers(t, 3)
	ms, err := NewMaster(addrs, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	q := gen(t, 8, 7)
	spec := core.JobSpec{Space: partition.Linear, Workers: 16}
	dist, err := ms.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	local, err := core.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(dist.Best.Cost, local.Best.Cost) {
		t.Fatal("cost mismatch with partition multiplexing")
	}
	if len(dist.PerWorker) != 16 {
		t.Fatalf("reports for %d partitions", len(dist.PerWorker))
	}
}

func TestDistributedMultiObjective(t *testing.T) {
	addrs := startWorkers(t, 2)
	ms, err := NewMaster(addrs, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	q := gen(t, 7, 1)
	spec := core.JobSpec{
		Space: partition.Linear, Workers: 4,
		Objective: core.MultiObjective, Alpha: 1,
	}
	dist, err := ms.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	local, err := core.Optimize(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.Frontier) != len(local.Frontier) {
		t.Fatalf("frontier size %d != %d", len(dist.Frontier), len(local.Frontier))
	}
}

func TestWorkerReportsJobErrorsInBand(t *testing.T) {
	addrs := startWorkers(t, 1)
	ms, err := NewMaster(addrs, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	q := gen(t, 4, 0)
	// 64 workers exceeds max for 4 tables; the wire decoder on the worker
	// rejects the spec and the master sees an in-band error.
	_, err = ms.Optimize(q, core.JobSpec{Space: partition.Linear, Workers: 64})
	if err == nil {
		t.Fatal("invalid job accepted")
	}
}

func TestWorkerSurvivesGarbageFrame(t *testing.T) {
	addrs := startWorkers(t, 1)
	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, []byte("not a job request")); err != nil {
		t.Fatal(err)
	}
	respB, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	we, err := wire.DecodeWorkerError(respB)
	if err != nil {
		t.Fatal(err)
	}
	if we.Code != wire.ErrBadRequest || !strings.Contains(we.Msg, "decode") {
		t.Fatalf("expected bad-request decode error, got %+v", we)
	}
	// The worker must still serve valid requests on the same connection.
	q := gen(t, 6, 0)
	req := wire.EncodeJobRequest(&wire.JobRequest{
		Spec:   core.JobSpec{Space: partition.Linear, Workers: 2},
		PartID: 0, Query: q,
	})
	if err := WriteFrame(conn, req); err != nil {
		t.Fatal(err)
	}
	respB, err = ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := wire.DecodeJobResponse(respB)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" || len(resp.Plans) == 0 {
		t.Fatalf("valid request after garbage failed: %+v", resp)
	}
}

func TestMasterFailsOnDeadWorker(t *testing.T) {
	// Grab an address and close it immediately.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	ms, err := NewMaster([]string{addr}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	q := gen(t, 6, 0)
	if _, err := ms.Optimize(q, core.JobSpec{Space: partition.Linear, Workers: 2}); err == nil {
		t.Fatal("dead worker not reported")
	}
}

func TestNewMasterValidation(t *testing.T) {
	if _, err := NewMaster(nil, 0); err == nil {
		t.Fatal("empty address list accepted")
	}
}

func TestWorkerCloseIdempotentEnough(t *testing.T) {
	w, err := ListenWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Connecting after close must fail.
	if _, err := net.DialTimeout("tcp", w.Addr(), 200*time.Millisecond); err == nil {
		t.Fatal("connected to closed worker")
	}
}

func TestSequentialQueriesReuseConnections(t *testing.T) {
	addrs := startWorkers(t, 2)
	ms, err := NewMaster(addrs, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Several queries back to back through the same master.
	for seed := int64(0); seed < 3; seed++ {
		q := gen(t, 6, seed)
		if _, err := ms.Optimize(q, core.JobSpec{Space: partition.Bushy, Workers: 2}); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}
