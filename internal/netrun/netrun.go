// Package netrun is a real shared-nothing runtime for MPQ: worker
// processes listen on TCP sockets, the master connects, sends each
// worker one (query, partition ID) job frame, and collects the
// partition-optimal plans — Algorithm 1 over an actual network.
//
// The protocol is deliberately minimal, mirroring the paper's
// one-round-per-query design: length-prefixed frames carrying the binary
// messages of internal/wire. A worker is stateless between queries; there
// is no session setup beyond the TCP handshake, no worker↔worker
// communication, and no shared state.
package netrun

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"mpq/internal/core"
	"mpq/internal/plan"
	"mpq/internal/query"
	"mpq/internal/wire"
)

// MaxFrameBytes caps a frame payload; the paper configured 1 GB maximum
// message sizes for SMA's sake, and we keep the same ceiling.
const MaxFrameBytes = 1 << 30

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("netrun: frame of %d bytes exceeds maximum %d", len(payload), MaxFrameBytes)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("netrun: frame of %d bytes exceeds maximum %d", n, MaxFrameBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Worker is a TCP optimization worker. It serves job requests until
// closed; each connection handles frames sequentially (a worker node
// optimizes one partition at a time, like one Spark executor).
type Worker struct {
	ln     net.Listener
	wg     sync.WaitGroup
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// ListenWorker starts a worker on addr (e.g. "127.0.0.1:0") and begins
// accepting connections in the background.
func ListenWorker(addr string) (*Worker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netrun: listen: %w", err)
	}
	w := &Worker{ln: ln, conns: map[net.Conn]struct{}{}}
	w.wg.Add(1)
	go w.acceptLoop()
	return w, nil
}

// Addr returns the worker's listen address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

func (w *Worker) acceptLoop() {
	defer w.wg.Done()
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			return // listener closed
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			conn.Close()
			return
		}
		w.conns[conn] = struct{}{}
		w.mu.Unlock()
		w.wg.Add(1)
		go w.serveConn(conn)
	}
}

func (w *Worker) serveConn(conn net.Conn) {
	defer w.wg.Done()
	defer func() {
		w.mu.Lock()
		delete(w.conns, conn)
		w.mu.Unlock()
		conn.Close()
	}()
	for {
		payload, err := ReadFrame(conn)
		if err != nil {
			return // EOF or closed
		}
		resp := handleRequest(payload)
		if err := WriteFrame(conn, wire.EncodeJobResponse(resp)); err != nil {
			return
		}
	}
}

// handleRequest decodes and executes one job; failures are reported
// in-band so the master can distinguish worker errors from dead links.
func handleRequest(payload []byte) *wire.JobResponse {
	req, err := wire.DecodeJobRequest(payload)
	if err != nil {
		return &wire.JobResponse{Err: fmt.Sprintf("decode: %v", err)}
	}
	res, err := core.RunWorker(req.Query, req.Spec, req.PartID)
	if err != nil {
		return &wire.JobResponse{Err: err.Error()}
	}
	return &wire.JobResponse{Plans: res.Plans, Stats: res.Stats}
}

// Close stops accepting and tears down open connections.
func (w *Worker) Close() error {
	w.mu.Lock()
	w.closed = true
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	err := w.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	w.wg.Wait()
	return err
}

// NetStats records measured traffic of one distributed optimization.
type NetStats struct {
	BytesSent     uint64 // master → workers, payloads + frame headers
	BytesReceived uint64 // workers → master
	Messages      int
}

// Answer extends the in-process answer with measured network statistics.
type Answer struct {
	core.Answer
	Net NetStats
}

// Master coordinates remote workers.
type Master struct {
	addrs   []string
	weights []float64
	timeout time.Duration
}

// NewMaster returns a master that will distribute work over the given
// worker addresses. timeout bounds each worker's end-to-end job time
// (zero means 2 minutes).
func NewMaster(addrs []string, timeout time.Duration) (*Master, error) {
	return NewWeightedMaster(addrs, nil, timeout)
}

// NewWeightedMaster additionally takes per-worker performance weights:
// when there are more plan-space partitions than workers, worker i is
// assigned a share of partitions proportional to weights[i] — the
// paper's provision for heterogeneous nodes (§4.1, footnote 1). nil
// weights mean homogeneous workers.
func NewWeightedMaster(addrs []string, weights []float64, timeout time.Duration) (*Master, error) {
	if len(addrs) == 0 {
		return nil, errors.New("netrun: no worker addresses")
	}
	if weights != nil {
		if len(weights) != len(addrs) {
			return nil, fmt.Errorf("netrun: %d weights for %d workers", len(weights), len(addrs))
		}
		for i, w := range weights {
			if !(w > 0) {
				return nil, fmt.Errorf("netrun: weight %d is %g, must be positive", i, w)
			}
		}
	}
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	return &Master{addrs: addrs, weights: weights, timeout: timeout}, nil
}

// assignPartitions splits partition IDs 0..m-1 over the workers. With
// nil weights it round-robins; with weights it hands out contiguous
// shares proportional to each worker's performance (largest-remainder
// rounding, every worker with weight > 0 and m >= workers gets at least
// one partition when possible).
func (ms *Master) assignPartitions(m int) [][]int {
	k := len(ms.addrs)
	out := make([][]int, k)
	if ms.weights == nil {
		for p := 0; p < m; p++ {
			out[p%k] = append(out[p%k], p)
		}
		return out
	}
	var total float64
	for _, w := range ms.weights {
		total += w
	}
	// Largest-remainder apportionment of m partitions.
	counts := make([]int, k)
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, k)
	assigned := 0
	for i, w := range ms.weights {
		exact := float64(m) * w / total
		counts[i] = int(exact)
		rems[i] = rem{idx: i, frac: exact - float64(counts[i])}
		assigned += counts[i]
	}
	sort.Slice(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for i := 0; assigned < m; i++ {
		counts[rems[i%k].idx]++
		assigned++
	}
	p := 0
	for i, c := range counts {
		for j := 0; j < c; j++ {
			out[i] = append(out[i], p)
			p++
		}
	}
	return out
}

// Optimize runs MPQ over the remote workers. The spec's Workers field
// sets the number of plan-space partitions; if it exceeds the number of
// worker addresses, partitions are assigned round-robin and executed
// sequentially per worker (several executors per node, as in the paper's
// Spark deployment, would simply mean more addresses).
func (ms *Master) Optimize(q *query.Query, spec core.JobSpec) (*Answer, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(q.N()); err != nil {
		return nil, err
	}
	start := time.Now()
	m := spec.Workers

	type nodeResult struct {
		resps   map[int]*wire.JobResponse // partID -> response
		sent    uint64
		rcvd    uint64
		msgs    int
		elapsed map[int]time.Duration
		err     error
	}
	perNode := make([]nodeResult, len(ms.addrs))
	assignment := ms.assignPartitions(m)

	var wg sync.WaitGroup
	for ni := range ms.addrs {
		parts := assignment[ni]
		if len(parts) == 0 {
			continue
		}
		wg.Add(1)
		go func(ni int, parts []int) {
			defer wg.Done()
			nr := nodeResult{resps: map[int]*wire.JobResponse{}, elapsed: map[int]time.Duration{}}
			defer func() { perNode[ni] = nr }()
			conn, err := net.DialTimeout("tcp", ms.addrs[ni], ms.timeout)
			if err != nil {
				nr.err = fmt.Errorf("dial %s: %w", ms.addrs[ni], err)
				return
			}
			defer conn.Close()
			for _, partID := range parts {
				t0 := time.Now()
				payload := wire.EncodeJobRequest(&wire.JobRequest{Spec: spec, PartID: partID, Query: q})
				conn.SetDeadline(time.Now().Add(ms.timeout))
				if err := WriteFrame(conn, payload); err != nil {
					nr.err = fmt.Errorf("send to %s: %w", ms.addrs[ni], err)
					return
				}
				nr.sent += uint64(len(payload) + 4)
				respB, err := ReadFrame(conn)
				if err != nil {
					nr.err = fmt.Errorf("receive from %s: %w", ms.addrs[ni], err)
					return
				}
				nr.rcvd += uint64(len(respB) + 4)
				nr.msgs += 2
				resp, err := wire.DecodeJobResponse(respB)
				if err != nil {
					nr.err = fmt.Errorf("decode from %s: %w", ms.addrs[ni], err)
					return
				}
				if resp.Err != "" {
					nr.err = fmt.Errorf("worker %s partition %d: %s", ms.addrs[ni], partID, resp.Err)
					return
				}
				nr.resps[partID] = resp
				nr.elapsed[partID] = time.Since(t0)
			}
		}(ni, parts)
	}
	wg.Wait()

	ans := &Answer{}
	frontiers := make([][]*plan.Node, 0, m)
	got := 0
	for _, nr := range perNode {
		if nr.err != nil {
			return nil, fmt.Errorf("netrun: %w", nr.err)
		}
		ans.Net.BytesSent += nr.sent
		ans.Net.BytesReceived += nr.rcvd
		ans.Net.Messages += nr.msgs
		for partID, resp := range nr.resps {
			got++
			ans.Stats.Add(resp.Stats)
			if resp.Stats.WorkUnits() > ans.MaxWorkerStats.WorkUnits() {
				ans.MaxWorkerStats = resp.Stats
			}
			if e := nr.elapsed[partID]; e > ans.MaxWorkerElapsed {
				ans.MaxWorkerElapsed = e
			}
			ans.PerWorker = append(ans.PerWorker, core.WorkerReport{
				PartID: partID, Plans: len(resp.Plans), Stats: resp.Stats, Elapsed: nr.elapsed[partID],
			})
			frontiers = append(frontiers, resp.Plans)
		}
	}
	if got != m {
		return nil, fmt.Errorf("netrun: %d of %d partitions answered", got, m)
	}
	best, frontier, err := core.FinalPrune(spec, frontiers)
	if err != nil {
		return nil, err
	}
	ans.Best, ans.Frontier = best, frontier
	ans.Elapsed = time.Since(start)
	return ans, nil
}
