// Package netrun is a real shared-nothing runtime for MPQ: worker
// processes listen on TCP sockets, the master connects, sends each
// worker one (query, partition ID) job frame, and collects the
// partition-optimal plans — Algorithm 1 over an actual network.
//
// The protocol is deliberately minimal, mirroring the paper's
// one-round-per-query design: length-prefixed frames carrying the binary
// messages of internal/wire. A worker is stateless between queries; there
// is no session setup beyond the TCP handshake, no worker↔worker
// communication, and no shared state.
//
// # Failure model
//
// The master is fault tolerant. Plan-space partitions are disjoint and
// workers are stateless, so a partition whose worker crashes, hangs, or
// returns a damaged frame can be re-dispatched to any surviving worker
// without affecting the optimality argument of Algorithm 1. Concretely:
//
//   - Every job attempt has an end-to-end deadline (Options.Timeout)
//     covering dial, send, and receive. A hung worker is indistinguishable
//     from a slow one until the deadline fires; then its job is retried
//     elsewhere.
//   - Transport-level failures (dial errors, resets, timeouts, truncated
//     or corrupt frames, and wire.ErrBadRequest worker errors, which mean
//     the request was damaged in transit) are retryable: the partition
//     goes back into a re-dispatch queue, preferring workers that have
//     not yet failed it. Each partition has an attempt budget
//     (Options.MaxAttempts); exhausting it aborts the query.
//   - Deterministic failures (wire.ErrJobFailed worker errors — the job
//     decoded but the optimizer rejected it) are fatal immediately: every
//     worker would fail identically.
//   - A worker that fails Options.MaxWorkerFailures consecutive jobs is
//     excluded for the rest of the query (or batch) and its unstarted
//     share is re-dispatched to the survivors.
//   - Duplicated or stale response frames (a retransmission bug, a
//     replaying middlebox, the chaos proxy's duplicate-response action)
//     are detected by a per-connection sequence number echoed by the
//     worker (wire.JobRequest.Seq) and discarded; they are counted in
//     NetStats.IgnoredFrames and never reach the aggregation.
//
// Results are aggregated in partition-ID order regardless of arrival
// order or retries, so whenever at least one worker survives the answer
// is bit-identical to a failure-free run.
//
// # Cancellation and batches
//
// Master.OptimizeContext aborts on context cancellation: the dispatcher
// stops handing out work, force-closes its connections to unblock
// reads, and waits for every goroutine before returning. A context
// deadline tightens each attempt's transport deadline.
// Master.OptimizeBatch pipelines the partitions of many independent
// queries through one pool of keep-alive connections — in a
// failure-free batch each worker is dialed exactly once; a transport
// failure drops that worker's connection and the next attempt redials
// — and returns answers bit-identical to one-query-at-a-time runs.
package netrun

import (
	"io"

	"mpq/internal/wire"
)

// MaxFrameBytes caps a frame payload. Framing lives in internal/wire
// (shared with the resident daemon's listener); this package re-exports
// it under its historical names for the master/worker runtime.
const MaxFrameBytes = wire.MaxFrameSize

// frameChunk mirrors wire's read-ahead chunk size for the framing tests.
const frameChunk = 64 << 10

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	return wire.WriteFrame(w, payload)
}

// ReadFrame reads one length-prefixed frame under the MaxFrameBytes
// cap. The payload buffer grows as bytes actually arrive, so a
// malicious or corrupted length prefix cannot force a huge up-front
// allocation; a prefix above the cap fails with wire.ErrFrameTooLarge
// (retryable) before any payload byte is read. Listeners facing
// untrusted peers should use wire.ReadFrameLimit with a tighter limit.
func ReadFrame(r io.Reader) ([]byte, error) {
	return wire.ReadFrame(r)
}
