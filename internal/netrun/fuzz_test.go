package netrun

import (
	"bytes"
	"encoding/binary"
	"testing"

	"mpq/internal/core"
	"mpq/internal/partition"
	"mpq/internal/wire"
	"mpq/internal/workload"
)

// frame returns payload wrapped in one length-prefixed frame.
func frame(tb testing.TB, payload []byte) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// frameSeeds is a corpus of real job frames plus adversarial shapes:
// truncated payloads, oversized length prefixes, and garbage.
func frameSeeds(f *testing.F) {
	q := workload.MustGenerate(workload.NewParams(6, workload.Star), 1)
	req := wire.EncodeJobRequest(&wire.JobRequest{
		Spec:  core.JobSpec{Space: partition.Linear, Workers: 4},
		Query: q,
	})
	f.Add(frame(f, req))
	res, err := core.RunWorker(q, core.JobSpec{Space: partition.Linear, Workers: 2}, 1)
	if err != nil {
		f.Fatal(err)
	}
	resp := wire.EncodeJobResponse(&wire.JobResponse{Plans: res.Plans, Stats: res.Stats})
	f.Add(frame(f, resp))
	f.Add(frame(f, wire.EncodeWorkerError(&wire.WorkerError{Code: wire.ErrBadRequest, Msg: "x"})))
	f.Add(frame(f, nil))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 10, 1, 2})                 // claims 10 bytes, has 2
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})            // 4 GB length prefix
	f.Add([]byte{0x40, 0, 0, 1, 0})                  // just above MaxFrameBytes
	f.Add(append(frame(f, req), 0xDE, 0xAD))         // trailing bytes beyond the frame
	f.Add(frame(f, bytes.Repeat([]byte{7}, 70<<10))) // spans multiple read chunks
}

// FuzzReadFrame: the framing decoder must never panic, never
// over-allocate on a lying length prefix, and every accepted frame must
// re-encode to exactly the bytes it was parsed from.
func FuzzReadFrame(f *testing.F) {
	frameSeeds(f)
	f.Fuzz(func(t *testing.T, b []byte) {
		payload, err := ReadFrame(bytes.NewReader(b))
		if err != nil {
			return
		}
		if len(b) < 4 {
			t.Fatalf("accepted a %d-byte input with no header", len(b))
		}
		if want := int(binary.BigEndian.Uint32(b)); len(payload) != want {
			t.Fatalf("payload length %d, header says %d", len(payload), want)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatalf("re-frame failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), b[:4+len(payload)]) {
			t.Fatal("re-framed bytes differ from input")
		}
	})
}

// FuzzFrameRoundTrip: any payload survives write-then-read unchanged.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("hello frames"))
	f.Add(bytes.Repeat([]byte{0xAB}, 3*frameChunk+17))
	f.Fuzz(func(t *testing.T, payload []byte) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip changed %d bytes to %d", len(payload), len(got))
		}
	})
}
