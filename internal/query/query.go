// Package query defines the optimizer's problem model: a set of tables
// to join, connected by equality predicates with selectivity estimates.
//
// This follows §3 of the paper: a query is a set Q of tables; tables are
// numbered consecutively from 0 to |Q|-1 and all workers must use the
// same numbering so that the plan-space partitions tile the full space.
package query

import (
	"fmt"
	"math"

	"mpq/internal/bitset"
)

// Table is one base relation of the query with the statistics the cost
// model needs.
type Table struct {
	Name        string
	Cardinality float64
}

// Predicate is an equality join predicate between an attribute of table
// Left and an attribute of table Right (query-local table indices).
// Selectivity is the fraction of the Cartesian product it retains.
// Attribute ordinals enable interesting-order reasoning: a sort-merge
// join on this predicate leaves its output sorted on both attributes.
type Predicate struct {
	Left, Right         int
	LeftAttr, RightAttr int
	Selectivity         float64
}

// NoOrder marks a plan whose output has no useful sort order.
const NoOrder = -1

// AttrID encodes (table, attribute ordinal) into a single comparable
// order identifier. Attribute ordinals must be below 1<<16.
func AttrID(table, attr int) int { return table<<16 | attr }

// Query is an immutable join query. Build it with New and AddPredicate,
// then call Freeze (or any read accessor, which freezes implicitly).
type Query struct {
	Tables []Table
	Preds  []Predicate

	frozen bool
	adj    [][]int // adj[t] = indices into Preds touching table t
}

// New creates a query over the given tables. At least two tables and at
// most bitset.MaxTables are supported.
func New(tables []Table) (*Query, error) {
	if len(tables) < 1 {
		return nil, fmt.Errorf("query: need at least one table")
	}
	if len(tables) > bitset.MaxTables {
		return nil, fmt.Errorf("query: %d tables exceeds maximum %d", len(tables), bitset.MaxTables)
	}
	for i, t := range tables {
		if !(t.Cardinality > 0) || math.IsInf(t.Cardinality, 0) {
			return nil, fmt.Errorf("query: table %d (%s) has invalid cardinality %g", i, t.Name, t.Cardinality)
		}
	}
	q := &Query{Tables: append([]Table(nil), tables...)}
	return q, nil
}

// MustNew is New for known-valid inputs; it panics on error.
func MustNew(tables []Table) *Query {
	q, err := New(tables)
	if err != nil {
		panic(err)
	}
	return q
}

// AddPredicate registers an equality predicate. Self-joins on the same
// query table are rejected (the model joins distinct query tables; a
// relational self-join appears as two query tables referencing the same
// base relation).
func (q *Query) AddPredicate(p Predicate) error {
	if q.frozen {
		return fmt.Errorf("query: AddPredicate after freeze")
	}
	n := len(q.Tables)
	if p.Left < 0 || p.Left >= n || p.Right < 0 || p.Right >= n {
		return fmt.Errorf("query: predicate table index out of range: %d, %d (n=%d)", p.Left, p.Right, n)
	}
	if p.Left == p.Right {
		return fmt.Errorf("query: predicate joins table %d with itself", p.Left)
	}
	if !(p.Selectivity > 0 && p.Selectivity <= 1) {
		return fmt.Errorf("query: predicate selectivity %g outside (0,1]", p.Selectivity)
	}
	if p.LeftAttr < 0 || p.LeftAttr >= 1<<16 || p.RightAttr < 0 || p.RightAttr >= 1<<16 {
		return fmt.Errorf("query: attribute ordinal out of range")
	}
	q.Preds = append(q.Preds, p)
	return nil
}

// MustAddPredicate panics on error.
func (q *Query) MustAddPredicate(p Predicate) {
	if err := q.AddPredicate(p); err != nil {
		panic(err)
	}
}

// Freeze finalizes the query: no further predicates may be added and the
// adjacency index is built. Freeze is idempotent.
func (q *Query) Freeze() {
	if q.frozen {
		return
	}
	q.frozen = true
	q.adj = make([][]int, len(q.Tables))
	for i, p := range q.Preds {
		q.adj[p.Left] = append(q.adj[p.Left], i)
		q.adj[p.Right] = append(q.adj[p.Right], i)
	}
}

// N returns the number of tables.
func (q *Query) N() int { return len(q.Tables) }

// All returns the set of all query tables.
func (q *Query) All() bitset.Set { return bitset.Range(len(q.Tables)) }

// Card returns the base cardinality of table t.
func (q *Query) Card(t int) float64 { return q.Tables[t].Cardinality }

// SelBetween returns the combined selectivity of all predicates with one
// endpoint in a and the other in b. For disjoint a, b this is the factor
// by which the join of a-result and b-result shrinks the Cartesian
// product. Returns 1 if no predicate connects them (cross product).
func (q *Query) SelBetween(a, b bitset.Set) float64 {
	sel := 1.0
	for _, p := range q.Preds {
		l, r := bitset.Single(p.Left), bitset.Single(p.Right)
		if (a&l != 0 && b&r != 0) || (a&r != 0 && b&l != 0) {
			sel *= p.Selectivity
		}
	}
	return sel
}

// SelBetweenInflated is SelBetween at the high endpoint of a
// multiplicative uncertainty band: every straddling predicate
// contributes min(1, Selectivity·band) instead of its point estimate.
// band must be ≥ 1. It iterates predicates in the same index order as
// SelBetween so the two products associate floats identically, which
// keeps robust annotations reproducible across engines.
func (q *Query) SelBetweenInflated(a, b bitset.Set, band float64) float64 {
	sel := 1.0
	for _, p := range q.Preds {
		l, r := bitset.Single(p.Left), bitset.Single(p.Right)
		if (a&l != 0 && b&r != 0) || (a&r != 0 && b&l != 0) {
			sel *= math.Min(1, p.Selectivity*band)
		}
	}
	return sel
}

// ConnectingPreds appends to dst the indices of predicates with one
// endpoint in a and the other in b, and returns the extended slice.
// It iterates over the adjacency lists of the smaller side.
func (q *Query) ConnectingPreds(dst []int, a, b bitset.Set) []int {
	q.Freeze()
	small, big := a, b
	if small.Count() > big.Count() {
		small, big = big, small
	}
	small.ForEach(func(t int) {
		for _, pi := range q.adj[t] {
			p := q.Preds[pi]
			other := p.Left
			if other == t {
				other = p.Right
			}
			if big.Contains(other) {
				// Avoid double-adding predicates with both endpoints in
				// "small" (impossible: endpoints straddle a and b which
				// are disjoint in DP use; guarded anyway).
				if !small.Contains(other) {
					dst = append(dst, pi)
				}
			}
		}
	})
	return dst
}

// CardOf computes the estimated cardinality of joining exactly the tables
// in s: the product of base cardinalities and of the selectivities of all
// predicates entirely within s. O(n + |preds|); used for validation and
// as the once-per-set computation in the DP.
func (q *Query) CardOf(s bitset.Set) float64 {
	card := 1.0
	s.ForEach(func(t int) { card *= q.Tables[t].Cardinality })
	for _, p := range q.Preds {
		if s.Contains(p.Left) && s.Contains(p.Right) {
			card *= p.Selectivity
		}
	}
	return card
}

// Connected reports whether the join graph restricted to s is connected.
// Cross products make disconnected sets legal plans; the optimizer does
// not require connectivity (the paper explicitly allows Cartesian
// products), but workload tooling uses this to classify queries.
func (q *Query) Connected(s bitset.Set) bool {
	if s.IsEmpty() {
		return true
	}
	q.Freeze()
	start := s.Min()
	visited := bitset.Single(start)
	frontier := []int{start}
	for len(frontier) > 0 {
		t := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, pi := range q.adj[t] {
			p := q.Preds[pi]
			other := p.Left
			if other == t {
				other = p.Right
			}
			if s.Contains(other) && !visited.Contains(other) {
				visited = visited.Add(other)
				frontier = append(frontier, other)
			}
		}
	}
	return visited == s
}

// Validate performs structural checks and returns the first problem.
func (q *Query) Validate() error {
	if len(q.Tables) == 0 {
		return fmt.Errorf("query: no tables")
	}
	if len(q.Tables) > bitset.MaxTables {
		return fmt.Errorf("query: too many tables")
	}
	for i, t := range q.Tables {
		if !(t.Cardinality > 0) {
			return fmt.Errorf("query: table %d cardinality %g", i, t.Cardinality)
		}
	}
	for i, p := range q.Preds {
		if p.Left < 0 || p.Left >= len(q.Tables) || p.Right < 0 || p.Right >= len(q.Tables) || p.Left == p.Right {
			return fmt.Errorf("query: predicate %d endpoints (%d,%d) invalid", i, p.Left, p.Right)
		}
		if !(p.Selectivity > 0 && p.Selectivity <= 1) {
			return fmt.Errorf("query: predicate %d selectivity %g", i, p.Selectivity)
		}
	}
	return nil
}

// String renders a compact human-readable description.
func (q *Query) String() string {
	return fmt.Sprintf("Query{%d tables, %d predicates}", len(q.Tables), len(q.Preds))
}
