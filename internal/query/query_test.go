package query

import (
	"math"
	"math/rand"
	"testing"

	"mpq/internal/bitset"
)

func tables(cards ...float64) []Table {
	ts := make([]Table, len(cards))
	for i, c := range cards {
		ts[i] = Table{Name: "T", Cardinality: c}
	}
	return ts
}

// chain4 builds T0 - T1 - T2 - T3 with selectivity 0.1 per edge.
func chain4(t *testing.T) *Query {
	t.Helper()
	q := MustNew(tables(100, 200, 300, 400))
	for i := 0; i < 3; i++ {
		q.MustAddPredicate(Predicate{Left: i, Right: i + 1, Selectivity: 0.1})
	}
	q.Freeze()
	return q
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty table list accepted")
	}
	if _, err := New(tables(0)); err == nil {
		t.Error("zero cardinality accepted")
	}
	if _, err := New(tables(-3)); err == nil {
		t.Error("negative cardinality accepted")
	}
	if _, err := New(make([]Table, bitset.MaxTables+1)); err == nil {
		t.Error("oversized query accepted")
	}
	if _, err := New([]Table{{Cardinality: math.Inf(1)}}); err == nil {
		t.Error("infinite cardinality accepted")
	}
	if _, err := New(tables(5)); err != nil {
		t.Errorf("single-table query rejected: %v", err)
	}
}

func TestAddPredicateValidation(t *testing.T) {
	q := MustNew(tables(10, 20))
	bad := []Predicate{
		{Left: 0, Right: 0, Selectivity: 0.5},
		{Left: -1, Right: 1, Selectivity: 0.5},
		{Left: 0, Right: 2, Selectivity: 0.5},
		{Left: 0, Right: 1, Selectivity: 0},
		{Left: 0, Right: 1, Selectivity: 1.5},
		{Left: 0, Right: 1, Selectivity: 0.5, LeftAttr: 1 << 16},
	}
	for i, p := range bad {
		if err := q.AddPredicate(p); err == nil {
			t.Errorf("case %d: bad predicate %+v accepted", i, p)
		}
	}
	if err := q.AddPredicate(Predicate{Left: 0, Right: 1, Selectivity: 1}); err != nil {
		t.Errorf("valid predicate rejected: %v", err)
	}
	q.Freeze()
	if err := q.AddPredicate(Predicate{Left: 0, Right: 1, Selectivity: 0.5}); err == nil {
		t.Error("AddPredicate after Freeze accepted")
	}
}

func TestCardOf(t *testing.T) {
	q := chain4(t)
	got := q.CardOf(bitset.Of(0, 1))
	want := 100.0 * 200 * 0.1
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("CardOf({0,1}) = %g want %g", got, want)
	}
	// Disconnected set: cross product, no predicate applies.
	got = q.CardOf(bitset.Of(0, 2))
	if got != 100.0*300 {
		t.Fatalf("CardOf({0,2}) = %g want %g", got, 100.0*300)
	}
	// Full query: all three predicates apply.
	got = q.CardOf(q.All())
	want = 100.0 * 200 * 300 * 400 * 0.1 * 0.1 * 0.1
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("CardOf(all) = %g want %g", got, want)
	}
	if q.CardOf(bitset.Empty()) != 1 {
		t.Fatal("CardOf(empty) should be 1 (empty product)")
	}
}

func TestSelBetween(t *testing.T) {
	q := chain4(t)
	if got := q.SelBetween(bitset.Of(0), bitset.Of(1)); got != 0.1 {
		t.Fatalf("SelBetween(0;1) = %g", got)
	}
	if got := q.SelBetween(bitset.Of(0), bitset.Of(2)); got != 1 {
		t.Fatalf("SelBetween(0;2) = %g (cross product)", got)
	}
	// {0,2} vs {1,3}: predicates 0-1, 1-2, 2-3 all straddle.
	got := q.SelBetween(bitset.Of(0, 2), bitset.Of(1, 3))
	if math.Abs(got-0.001) > 1e-15 {
		t.Fatalf("SelBetween = %g want 0.001", got)
	}
}

// Property: CardOf(s) == CardOf(l) * CardOf(r) * SelBetween(l, r) for any
// bipartition — the incremental identity the DP relies on.
func TestCardOfSplitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		ts := make([]Table, n)
		for i := range ts {
			ts[i] = Table{Cardinality: float64(1 + rng.Intn(1000))}
		}
		q := MustNew(ts)
		for e := 0; e < n; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				q.MustAddPredicate(Predicate{Left: a, Right: b, Selectivity: rng.Float64()*0.9 + 0.05})
			}
		}
		q.Freeze()
		s := bitset.Set(rng.Uint64()) & q.All()
		if s.Count() < 2 {
			continue
		}
		// Random bipartition of s.
		var l bitset.Set
		s.ForEach(func(i int) {
			if rng.Intn(2) == 0 {
				l = l.Add(i)
			}
		})
		r := s.Minus(l)
		if l.IsEmpty() || r.IsEmpty() {
			continue
		}
		whole := q.CardOf(s)
		split := q.CardOf(l) * q.CardOf(r) * q.SelBetween(l, r)
		if math.Abs(whole-split) > 1e-6*math.Max(whole, split) {
			t.Fatalf("split identity broken: %g vs %g (s=%v l=%v)", whole, split, s, l)
		}
	}
}

func TestConnectingPreds(t *testing.T) {
	q := chain4(t)
	ps := q.ConnectingPreds(nil, bitset.Of(1), bitset.Of(0, 2))
	if len(ps) != 2 {
		t.Fatalf("ConnectingPreds = %v, want 2 entries", ps)
	}
	ps = q.ConnectingPreds(nil, bitset.Of(0), bitset.Of(3))
	if len(ps) != 0 {
		t.Fatalf("ConnectingPreds across gap = %v", ps)
	}
	// Reuse of dst slice.
	dst := make([]int, 0, 4)
	ps = q.ConnectingPreds(dst, bitset.Of(0, 1), bitset.Of(2, 3))
	if len(ps) != 1 || q.Preds[ps[0]].Left != 1 {
		t.Fatalf("ConnectingPreds = %v", ps)
	}
}

func TestConnected(t *testing.T) {
	q := chain4(t)
	if !q.Connected(q.All()) {
		t.Fatal("chain should be connected")
	}
	if q.Connected(bitset.Of(0, 2)) {
		t.Fatal("{0,2} should be disconnected in a chain")
	}
	if !q.Connected(bitset.Of(1)) {
		t.Fatal("singleton should be connected")
	}
	if !q.Connected(bitset.Empty()) {
		t.Fatal("empty set should be connected")
	}
}

func TestValidate(t *testing.T) {
	q := chain4(t)
	if err := q.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	// Corrupt a predicate under the hood.
	q2 := MustNew(tables(1, 2))
	q2.Preds = append(q2.Preds, Predicate{Left: 0, Right: 0, Selectivity: 0.5})
	if err := q2.Validate(); err == nil {
		t.Fatal("self-join predicate passed Validate")
	}
	q3 := MustNew(tables(1, 2))
	q3.Preds = append(q3.Preds, Predicate{Left: 0, Right: 1, Selectivity: 2})
	if err := q3.Validate(); err == nil {
		t.Fatal("selectivity 2 passed Validate")
	}
}

func TestAttrID(t *testing.T) {
	if AttrID(0, 0) == AttrID(0, 1) || AttrID(1, 0) == AttrID(0, 1) {
		t.Fatal("AttrID collisions")
	}
	if AttrID(3, 7) != 3<<16|7 {
		t.Fatalf("AttrID(3,7) = %d", AttrID(3, 7))
	}
}

func TestString(t *testing.T) {
	q := chain4(t)
	if got := q.String(); got != "Query{4 tables, 3 predicates}" {
		t.Fatalf("String = %q", got)
	}
}
