package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"mpq"
	"mpq/internal/wire"
)

// Client is a wire-protocol client for a resident daemon. It implements
// mpq.Engine over a single TCP connection, pipelining concurrent
// requests and matching the daemon's completion-order responses back to
// callers by Seq — so a cheap query never waits behind an expensive one
// submitted earlier on the same connection.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex // serializes frame writes

	mu      sync.Mutex // guards seq, pending, err
	seq     uint32
	pending map[uint32]chan clientReply
	err     error // terminal connection error, fails all future calls

	readerDone chan struct{}
}

// clientReply is one decoded response frame.
type clientReply struct {
	resp *wire.JobResponse
	werr *wire.WorkerError
}

// writeTimeout caps one request-frame send even when the caller's
// context has no (or a distant) deadline: frames are small, so a write
// this slow means the daemon has stalled and the connection is dead.
const writeTimeout = 30 * time.Second

// Dial connects to a daemon's wire listener.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", addr, err)
	}
	c := &Client{
		conn:       conn,
		pending:    map[uint32]chan clientReply{},
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// readLoop delivers response frames to their waiting callers. On a
// connection error it fails every pending and future call.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	for {
		payload, err := wire.ReadFrame(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("server: connection lost: %w", err))
			return
		}
		tag, err := wire.MessageTag(payload)
		if err != nil {
			c.fail(fmt.Errorf("server: bad frame: %w", err))
			return
		}
		var seq uint32
		var reply clientReply
		switch tag {
		case wire.TagJobResponse:
			resp, err := wire.DecodeJobResponse(payload)
			if err != nil {
				c.fail(fmt.Errorf("server: decode response: %w", err))
				return
			}
			seq, reply = resp.Seq, clientReply{resp: resp}
		case wire.TagWorkerError:
			we, err := wire.DecodeWorkerError(payload)
			if err != nil {
				c.fail(fmt.Errorf("server: decode error frame: %w", err))
				return
			}
			seq, reply = we.Seq, clientReply{werr: we}
		default:
			c.fail(fmt.Errorf("server: unexpected frame tag %d", tag))
			return
		}
		c.mu.Lock()
		ch := c.pending[seq]
		delete(c.pending, seq)
		c.mu.Unlock()
		if ch != nil {
			ch <- reply // buffered
		}
	}
}

// fail marks the connection dead and wakes every pending caller.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = map[uint32]chan clientReply{}
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch) // a closed channel signals "connection failed"
	}
}

// Optimize sends one request and waits for its reply. It satisfies
// mpq.Engine: answers carry the same plans — same fingerprints — the
// daemon's engine produced.
func (c *Client) Optimize(ctx context.Context, q *mpq.Query, spec mpq.JobSpec) (*mpq.Answer, error) {
	start := time.Now()
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.seq++
	seq := c.seq
	ch := make(chan clientReply, 1)
	c.pending[seq] = ch
	c.mu.Unlock()

	frame := wire.EncodeJobRequest(&wire.JobRequest{Seq: seq, Spec: spec, Query: q})
	c.writeMu.Lock()
	// Bound the send so a stalled daemon (full socket buffer) cannot
	// pin writeMu — and with it every concurrent Optimize on this
	// connection — indefinitely: use the context deadline, capped at
	// writeTimeout.
	deadline := time.Now().Add(writeTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	c.conn.SetWriteDeadline(deadline)
	err := wire.WriteFrame(c.conn, frame)
	c.conn.SetWriteDeadline(time.Time{})
	c.writeMu.Unlock()
	if err != nil {
		// A failed or timed-out write may have left a partial frame on
		// the stream; the connection is no longer framed, so fail it for
		// every caller rather than letting the next send desync.
		err = fmt.Errorf("server: send: %w", err)
		c.fail(err)
		c.conn.Close()
		return nil, err
	}

	select {
	case reply, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			return nil, err
		}
		return buildClientAnswer(reply, spec, time.Since(start))
	case <-ctx.Done():
		c.abandon(seq)
		return nil, ctx.Err()
	}
}

// abandon forgets a request whose caller gave up; a late reply for its
// Seq is dropped by the read loop.
func (c *Client) abandon(seq uint32) {
	c.mu.Lock()
	delete(c.pending, seq)
	c.mu.Unlock()
}

// buildClientAnswer reconstructs an mpq.Answer from a reply frame. The
// daemon sends its chosen Best explicitly as Plans[0] (the frontier
// follows for multi-objective jobs), so the client never re-derives the
// best-plan tie-break — near-tied cost lines cannot make the daemon
// engine's Best diverge from the in-process engine's.
func buildClientAnswer(reply clientReply, spec mpq.JobSpec, elapsed time.Duration) (*mpq.Answer, error) {
	if we := reply.werr; we != nil {
		if we.Code == wire.ErrOverloaded {
			return nil, fmt.Errorf("%w: %s", ErrOverloaded, we.Msg)
		}
		return nil, fmt.Errorf("server: remote: %s", we.Msg)
	}
	resp := reply.resp
	if len(resp.Plans) == 0 {
		return nil, errors.New("server: remote returned no plans")
	}
	ans := &mpq.Answer{Best: resp.Plans[0], Stats: resp.Stats, Elapsed: elapsed}
	if spec.Objective.HasFrontier() && len(resp.Plans) > 1 {
		ans.Frontier = resp.Plans[1:]
	}
	return ans, nil
}

// OptimizeBatch pipelines the jobs over the connection concurrently —
// the daemon interleaves them under its fairness scheduler and replies
// in completion order — and collects the answers back in input order.
// Matching the Engine contract, the first failure fails the batch.
func (c *Client) OptimizeBatch(ctx context.Context, jobs []mpq.Job) ([]*mpq.Answer, error) {
	answers := make([]*mpq.Answer, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			answers[i], errs[i] = c.Optimize(ctx, jobs[i].Query, jobs[i].Spec)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("batch job %d: %w", i, err)
		}
	}
	return answers, nil
}

// Close tears down the connection; pending calls fail.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.readerDone
	return err
}
