package server

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mpq"
)

// Property test for the stride scheduler, driven directly through
// submit/pop (no listeners, no engine calls): under random weights and
// random arrival interleavings, as long as every tenant stays
// backlogged, (1) dispatch counts converge to the weight ratios with
// O(1) per-tenant error, and (2) no tenant is ever starved — the gap
// between a tenant's consecutive dispatches is bounded by its inverse
// share of the pool.
func TestStrideSchedulingProperty(t *testing.T) {
	weightChoices := []float64{0.5, 1, 2, 3, 5, 8}
	rng := rand.New(rand.NewSource(2016))
	for trial := 0; trial < 20; trial++ {
		nTenants := 2 + rng.Intn(4)
		weights := map[string]float64{}
		names := make([]string, nTenants)
		var total float64
		for i := range names {
			names[i] = fmt.Sprintf("tenant-%d", i)
			w := weightChoices[rng.Intn(len(weightChoices))]
			weights[names[i]] = w
			total += w
		}
		s, err := New(Config{
			Engine:        mpq.NewSerialEngine(),
			HTTPAddr:      "127.0.0.1:0", // required by New; never started
			QueueDepth:    1024,
			TenantWeights: weights,
		})
		if err != nil {
			t.Fatal(err)
		}

		backlog := map[string]int{}
		enqueue := func(tenant string) {
			if err := s.submit(&request{tenant: tenant, source: "http"}); err != nil {
				t.Fatalf("trial %d: submit: %v", trial, err)
			}
			backlog[tenant]++
		}

		n := 100 * nTenants
		counts := map[string]int{}
		last := map[string]int{}
		maxGap := map[string]int{}
		for _, name := range names {
			last[name] = -1
		}
		for i := 0; i < n; i++ {
			// Random arrivals, constrained only so no queue ever empties —
			// the proportional-share property is defined over intervals
			// where every tenant is backlogged.
			for _, name := range names {
				for backlog[name] < 2 || (backlog[name] < 10 && rng.Intn(2) == 0) {
					enqueue(name)
				}
			}
			req := s.pop()
			backlog[req.tenant]--
			counts[req.tenant]++
			if gap := i - last[req.tenant]; gap > maxGap[req.tenant] {
				maxGap[req.tenant] = gap
			}
			last[req.tenant] = i
		}

		for _, name := range names {
			ideal := float64(n) * weights[name] / total
			// Each competitor contributes at most ~1 quantum of pass
			// misalignment, so the absolute error is O(#tenants), not O(n).
			if diff := math.Abs(float64(counts[name]) - ideal); diff > float64(1+nTenants) {
				t.Errorf("trial %d: tenant %s (weight %g of %g) served %d of %d, ideal %.1f (off by %.1f)",
					trial, name, weights[name], total, counts[name], n, ideal, diff)
			}
			// Starvation bound: a backlogged tenant of weight w is served
			// about every ceil(W/w) dispatches; between two of its turns,
			// each competitor's pass offset can admit at most one extra
			// dispatch.
			bound := int(math.Ceil(total/weights[name])) + nTenants
			if maxGap[name] > bound {
				t.Errorf("trial %d: tenant %s starved: max dispatch gap %d exceeds bound %d",
					trial, name, maxGap[name], bound)
			}
		}
		if t.Failed() {
			t.FailNow()
		}
	}
}

// A tenant returning from idle must not bank credit for its absence: a
// low-weight tenant that sat out many dispatches rejoins at the current
// virtual time and is immediately held to its steady-state share, not
// granted a compensating burst.
func TestStrideIdleTenantBanksNoCredit(t *testing.T) {
	s, err := New(Config{
		Engine:        mpq.NewSerialEngine(),
		HTTPAddr:      "127.0.0.1:0",
		QueueDepth:    1024,
		TenantWeights: map[string]float64{"steady": 1, "returner": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	enqueue := func(tenant string, k int) {
		for i := 0; i < k; i++ {
			if err := s.submit(&request{tenant: tenant, source: "http"}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Both active briefly, then the returner goes idle while steady is
	// served 50 times on its own.
	enqueue("steady", 60)
	enqueue("returner", 1)
	seen := map[string]int{}
	for i := 0; i < 51; i++ {
		seen[s.pop().tenant]++
	}
	if seen["returner"] != 1 {
		t.Fatalf("setup served returner %d times, want 1", seen["returner"])
	}

	// The returner comes back with a deep backlog. With equal weights it
	// must alternate with steady, not burn down its "missed" 50 turns.
	enqueue("returner", 20)
	burst, maxBurst := 0, 0
	for i := 0; i < 20; i++ {
		if s.pop().tenant == "returner" {
			burst++
			if burst > maxBurst {
				maxBurst = burst
			}
		} else {
			burst = 0
		}
	}
	if maxBurst > 2 {
		t.Fatalf("returning tenant burst %d consecutive dispatches; idle time was banked as credit", maxBurst)
	}
}
