package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"mpq"
	"mpq/internal/wire"
)

// The wire front end speaks the repo's binary protocol with full-query
// semantics: a JobRequest carries a complete query plus spec, the
// daemon optimizes it through the wrapped engine (PartID is ignored —
// partitioning is the engine's business, not the client's), and the
// reply is a JobResponse echoing the request's Seq. Plans[0] is always
// the engine's chosen Best — sent explicitly so clients never re-derive
// it and near-tied cost lines cannot make the two sides disagree; for
// MultiObjective jobs the merged frontier follows at Plans[1:].
// Responses arrive in completion order — a connection may pipeline
// requests and match replies by Seq. Admission rejections come back as
// WorkerError{Code: ErrOverloaded}, which masters classify retryable.

// acceptWire runs the wire listener's accept loop.
func (s *Server) acceptWire(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed (shutdown)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveWireConn(conn)
		}()
	}
}

// serveWireConn reads frames until the peer hangs up or a drain
// half-closes the read side. Each frame is submitted to the arrival
// queue; a per-connection writer goroutine serializes responses in the
// order requests complete. A peer disconnect cancels the connection
// context — and with it every pending request from this peer — while a
// drain lets pending requests finish and flushes their responses
// before the socket closes.
func (s *Server) serveWireConn(conn net.Conn) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.wireConns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.wireConns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	connCtx, cancel := context.WithCancel(context.Background()) //lint:allow ctxflow connection-lifetime root; teardown is cancel/conn.Close, and Shutdown closes every tracked conn
	defer cancel()
	// Canceling connCtx is a full teardown: closing the conn unblocks a
	// reader waiting on a silent peer and a writer stuck mid-frame, so
	// every goroutine tied to this connection unwinds promptly.
	stopKill := context.AfterFunc(connCtx, func() { conn.Close() })
	defer stopKill()

	// Wire fairness bucket: the peer host. Weights keyed by host names
	// in Config.TenantWeights apply.
	tenant := conn.RemoteAddr().String()
	if host, _, err := net.SplitHostPort(tenant); err == nil {
		tenant = host
	}

	writeCh := make(chan []byte, 64)
	writerDone := make(chan struct{})
	go func() { // writer: drains writeCh until it closes
		defer close(writerDone)
		broken := false
		for frame := range writeCh {
			if broken {
				continue
			}
			// The deadline is the liveness guarantee for the whole
			// connection: a peer that stops reading fails this write
			// within WireWriteTimeout, which cancels connCtx, closes the
			// conn, and unblocks every reply() waiting on the backlog —
			// dispatchers are never wedged behind a dead client.
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WireWriteTimeout))
			if err := wire.WriteFrame(conn, frame); err != nil {
				broken = true
				cancel() // peer unreachable: kill this conn's in-flight work
			}
		}
	}()

	// reply hands a frame to the writer; drops it if the connection is
	// already gone (nobody left to read it). When the backlog is full it
	// waits, but boundedly: the writer's deadline cancels connCtx if the
	// peer really has stopped reading.
	reply := func(frame []byte) {
		select {
		case writeCh <- frame:
		case <-connCtx.Done():
		}
	}

	// pending counts submitted requests whose respond has not run yet;
	// every exit path waits for it before closing the write channel, so
	// respond never races a closed writeCh.
	var pending sync.WaitGroup
	defer func() {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if !draining {
			// Peer disconnect: in-flight work has no reader, abort it.
			cancel()
		}
		pending.Wait() // every respond has enqueued (or dropped) its frame
		close(writeCh)
		<-writerDone
	}()

	for {
		payload, err := wire.ReadFrameLimit(conn, s.cfg.MaxWireFrame)
		if err != nil {
			return // EOF, peer reset, drain half-close, or oversized frame
		}
		tag, err := wire.MessageTag(payload)
		if err != nil {
			reply(wire.EncodeWorkerError(&wire.WorkerError{
				Seq: wire.PeekJobRequestSeq(payload), Code: wire.ErrBadRequest,
				Msg: fmt.Sprintf("header: %v", err),
			}))
			continue
		}
		if reason := rejectWireTag(tag); reason != "" {
			reply(wire.EncodeWorkerError(&wire.WorkerError{
				Seq: wire.PeekJobRequestSeq(payload), Code: wire.ErrBadRequest,
				Msg: reason,
			}))
			continue
		}
		jr, err := wire.DecodeJobRequest(payload)
		if err != nil {
			reply(wire.EncodeWorkerError(&wire.WorkerError{
				Seq: wire.PeekJobRequestSeq(payload), Code: wire.ErrBadRequest,
				Msg: fmt.Sprintf("decode: %v", err),
			}))
			continue
		}
		if err := jr.Spec.Validate(jr.Query.N()); err != nil {
			reply(wire.EncodeWorkerError(&wire.WorkerError{
				Seq: jr.Seq, Code: wire.ErrBadRequest, Msg: err.Error(),
			}))
			continue
		}
		seq := jr.Seq
		multi := jr.Spec.Objective.HasFrontier()
		ctx, reqCancel := context.WithTimeout(connCtx, s.cfg.DefaultTimeout)
		req := &request{
			ctx:    ctx,
			cancel: reqCancel,
			id:     s.nextID(),
			tenant: tenant,
			source: "wire",
			query:  jr.Query,
			spec:   jr.Spec,
			enq:    time.Now(),
		}
		pending.Add(1)
		req.respond = func(res result) {
			defer pending.Done()
			reply(encodeWireResult(seq, multi, res))
		}
		if err := s.submit(req); err != nil {
			pending.Done()
			reqCancel()
			reply(wire.EncodeWorkerError(&wire.WorkerError{
				Seq: seq, Code: wire.ErrOverloaded, Msg: err.Error(),
			}))
			if errors.Is(err, ErrDraining) {
				// The daemon is going away for good; close the conn
				// (after in-flight responses flush) so the client
				// redirects instead of retrying a dying server.
				return
			}
		}
	}
}

// rejectWireTag classifies an incoming frame's tag: an empty reason
// accepts it, anything else becomes the ErrBadRequest message. The
// switch is deliberately exhaustive over wire.Tag — the tagswitch
// analyzer fails the lint when a new tag constant is added without a
// serving-path decision here.
func rejectWireTag(tag wire.Tag) (reason string) {
	switch tag {
	case wire.TagJobRequest:
		return ""
	case wire.TagCancelRequest:
		return "cancel frames belong to the worker protocol; the daemon cancels work by connection teardown"
	case wire.TagQuery, wire.TagPlan:
		return "bare query/plan frames are serialization records, not requests"
	case wire.TagJobResponse, wire.TagWorkerError:
		return "response frames flow server-to-client only"
	default:
		return "unknown message tag"
	}
}

// encodeWireResult turns a request outcome into its response frame.
// Plans[0] is the engine's chosen Best; for multi-objective jobs the
// merged frontier follows in order, so the client reconstructs both
// without re-deriving the best-plan tie-break.
func encodeWireResult(seq uint32, multi bool, res result) []byte {
	if res.err != nil {
		code := wire.ErrJobFailed
		if errors.Is(res.err, context.Canceled) || errors.Is(res.err, context.DeadlineExceeded) {
			// Transient serving-side conditions, not deterministic job
			// failures: a retry against a less loaded daemon can succeed.
			code = wire.ErrOverloaded
		}
		return wire.EncodeWorkerError(&wire.WorkerError{Seq: seq, Code: code, Msg: res.err.Error()})
	}
	plans := []*mpq.Plan{res.ans.Best}
	if multi {
		plans = append(plans, res.ans.Frontier...)
	}
	return wire.EncodeJobResponse(&wire.JobResponse{Seq: seq, Plans: plans, Stats: res.ans.Stats})
}
