package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"mpq"
)

// latencyBuckets are the request-latency histogram's upper bounds, in
// seconds. Chosen to resolve both cache hits (microseconds) and large
// bushy optimizations (tens of seconds).
var latencyBuckets = [numLatencyBuckets]float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 30}

const numLatencyBuckets = 10

// seriesKey identifies one labeled counter series.
type seriesKey struct {
	tenant  string
	source  string
	outcome string
}

// metrics aggregates the daemon's operational counters and renders them
// in Prometheus text exposition format. Hand-rolled: the repo takes no
// dependencies, and the text format is a stable few lines of writer
// code.
type metrics struct {
	mu         sync.Mutex
	requests   map[seriesKey]uint64
	queueDepth int

	latCounts [len(latencyBuckets) + 1]uint64 // +1: the +Inf bucket
	latSum    float64
	latTotal  uint64

	straggler stragglerCounters
}

// stragglerCounters aggregates the adaptive master's straggler handling
// over every answer the daemon served: speculative clones raced, race
// results discarded, re-admission probes, workers readmitted, and
// transport-level re-dispatches. Filled from Answer.Net (TCP engine)
// and Answer.Cluster (simulator); zero for engines without a scheduler.
type stragglerCounters struct {
	speculations uint64
	specWasted   uint64
	probes       uint64
	readmitted   uint64
	redispatched uint64
}

func newMetrics() *metrics {
	return &metrics{requests: map[seriesKey]uint64{}}
}

// observe records one finished request with its service latency.
func (m *metrics) observe(tenant, source, outcome string, served time.Duration) {
	secs := served.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[seriesKey{tenant, source, outcome}]++
	i := sort.SearchFloat64s(latencyBuckets[:], secs)
	m.latCounts[i]++
	m.latSum += secs
	m.latTotal++
}

// observeAnswer folds one served answer's scheduler counters into the
// daemon-wide straggler totals.
func (m *metrics) observeAnswer(ans *mpq.Answer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n := ans.Net; n != nil {
		m.straggler.speculations += uint64(n.Speculations)
		m.straggler.specWasted += uint64(n.SpeculationWasted)
		m.straggler.probes += uint64(n.Probes)
		m.straggler.readmitted += uint64(n.Readmitted)
		m.straggler.redispatched += uint64(n.Redispatched)
	}
	if c := ans.Cluster; c != nil {
		m.straggler.speculations += uint64(c.Speculations)
		m.straggler.probes += uint64(c.Probes)
		m.straggler.redispatched += uint64(c.Redispatches)
	}
}

// reject records one request refused at admission ("overloaded" or
// "draining").
func (m *metrics) reject(tenant, source, reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[seriesKey{tenant, source, reason}]++
}

// setQueueDepth tracks the arrival queue's occupancy. Called with the
// server mutex held, so it only stores.
func (m *metrics) setQueueDepth(n int) {
	m.mu.Lock()
	m.queueDepth = n
	m.mu.Unlock()
}

// snapshot is the immutable copy taken for one scrape.
type snapshot struct {
	requests   map[seriesKey]uint64
	queueDepth int
	latCounts  [len(latencyBuckets) + 1]uint64
	latSum     float64
	latTotal   uint64
	straggler  stragglerCounters
}

func (m *metrics) snapshot() snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := snapshot{
		requests:   make(map[seriesKey]uint64, len(m.requests)),
		queueDepth: m.queueDepth,
		latCounts:  m.latCounts,
		latSum:     m.latSum,
		latTotal:   m.latTotal,
		straggler:  m.straggler,
	}
	for k, v := range m.requests {
		s.requests[k] = v
	}
	return s
}

// write renders the scrape. extra carries gauges owned by other
// components (in-flight count, plan-log and cache counters), already
// formatted as name → value.
func (s snapshot) write(w io.Writer, extra []metricKV) {
	fmt.Fprintf(w, "# HELP mpqd_queue_depth Requests admitted but not yet dispatched.\n")
	fmt.Fprintf(w, "# TYPE mpqd_queue_depth gauge\n")
	fmt.Fprintf(w, "mpqd_queue_depth %d\n", s.queueDepth)

	fmt.Fprintf(w, "# HELP mpqd_requests_total Requests by tenant, front end and outcome.\n")
	fmt.Fprintf(w, "# TYPE mpqd_requests_total counter\n")
	keys := make([]seriesKey, 0, len(s.requests))
	for k := range s.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.tenant != b.tenant {
			return a.tenant < b.tenant
		}
		if a.source != b.source {
			return a.source < b.source
		}
		return a.outcome < b.outcome
	})
	for _, k := range keys {
		fmt.Fprintf(w, "mpqd_requests_total{tenant=%q,source=%q,outcome=%q} %d\n",
			k.tenant, k.source, k.outcome, s.requests[k])
	}

	fmt.Fprintf(w, "# HELP mpqd_request_seconds Service latency of dispatched requests.\n")
	fmt.Fprintf(w, "# TYPE mpqd_request_seconds histogram\n")
	cum := uint64(0)
	for i, le := range latencyBuckets {
		cum += s.latCounts[i]
		fmt.Fprintf(w, "mpqd_request_seconds_bucket{le=%q} %d\n", trimFloat(le), cum)
	}
	cum += s.latCounts[len(latencyBuckets)]
	fmt.Fprintf(w, "mpqd_request_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "mpqd_request_seconds_sum %g\n", s.latSum)
	fmt.Fprintf(w, "mpqd_request_seconds_count %d\n", s.latTotal)

	fmt.Fprintf(w, "# HELP mpqd_speculations_total Speculative clones the master raced against stragglers.\n")
	fmt.Fprintf(w, "# TYPE mpqd_speculations_total counter\n")
	fmt.Fprintf(w, "mpqd_speculations_total %d\n", s.straggler.speculations)
	fmt.Fprintf(w, "# HELP mpqd_speculation_wasted_total Speculative race results discarded by the master.\n")
	fmt.Fprintf(w, "# TYPE mpqd_speculation_wasted_total counter\n")
	fmt.Fprintf(w, "mpqd_speculation_wasted_total %d\n", s.straggler.specWasted)
	fmt.Fprintf(w, "# HELP mpqd_probes_total Re-admission probes sent to excluded workers.\n")
	fmt.Fprintf(w, "# TYPE mpqd_probes_total counter\n")
	fmt.Fprintf(w, "mpqd_probes_total %d\n", s.straggler.probes)
	fmt.Fprintf(w, "# HELP mpqd_readmitted_total Excluded workers that answered a probe and rejoined.\n")
	fmt.Fprintf(w, "# TYPE mpqd_readmitted_total counter\n")
	fmt.Fprintf(w, "mpqd_readmitted_total %d\n", s.straggler.readmitted)
	fmt.Fprintf(w, "# HELP mpqd_redispatched_total Partitions re-sent after a worker failure.\n")
	fmt.Fprintf(w, "# TYPE mpqd_redispatched_total counter\n")
	fmt.Fprintf(w, "mpqd_redispatched_total %d\n", s.straggler.redispatched)

	for _, kv := range extra {
		fmt.Fprintf(w, "# TYPE %s %s\n", kv.name, kv.kind)
		fmt.Fprintf(w, "%s %v\n", kv.name, kv.value)
	}
}

// metricKV is one unlabeled series contributed by another component.
type metricKV struct {
	name  string
	kind  string // "counter" or "gauge"
	value any
}

// trimFloat formats a bucket bound without trailing zeros (0.5, not
// 0.500000), matching conventional Prometheus output.
func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }
