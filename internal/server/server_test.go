package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mpq"
	"mpq/internal/core"
	"mpq/internal/partition"
	"mpq/internal/spec"
	"mpq/internal/wire"
	"mpq/internal/workload"
)

// gatedEngine wraps a real engine behind a token gate so tests control
// exactly when each request executes. started (if set) reports the
// tenant of each request the moment a dispatcher picks it up, read
// from the core.RequestMeta stamp.
type gatedEngine struct {
	inner   mpq.Engine
	gate    chan struct{} // nil = ungated; else one token per serve
	started chan string   // nil = silent
}

func (e *gatedEngine) Optimize(ctx context.Context, q *mpq.Query, js mpq.JobSpec) (*mpq.Answer, error) {
	if e.started != nil {
		meta, _ := core.RequestMetaFrom(ctx)
		e.started <- meta.Tenant
	}
	if e.gate != nil {
		select {
		case <-e.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return e.inner.Optimize(ctx, q, js)
}

func (e *gatedEngine) OptimizeBatch(ctx context.Context, jobs []mpq.Job) ([]*mpq.Answer, error) {
	answers := make([]*mpq.Answer, len(jobs))
	for i, job := range jobs {
		ans, err := e.Optimize(ctx, job.Query, job.Spec)
		if err != nil {
			return nil, err
		}
		answers[i] = ans
	}
	return answers, nil
}

// startServer builds, starts and auto-drains a server for a test.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Engine == nil {
		cfg.Engine = mpq.NewSerialEngine()
	}
	if cfg.HTTPAddr == "" && cfg.WireAddr == "" {
		cfg.HTTPAddr = "127.0.0.1:0"
		cfg.WireAddr = "127.0.0.1:0"
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

func testQuery(tb testing.TB, n int, seed int64) *mpq.Query {
	tb.Helper()
	return workload.MustGenerate(workload.NewParams(n, workload.Star), seed)
}

// postOptimize submits one HTTP request; goroutine-safe (no testing.T).
func postOptimize(s *Server, body OptimizeRequest) (*http.Response, []byte, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return nil, nil, err
	}
	resp, err := http.Post("http://"+s.HTTPAddr()+"/v1/optimize", "application/json", bytes.NewReader(b))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes(), nil
}

// mustPost is postOptimize for direct (non-goroutine) call sites.
func mustPost(t *testing.T, s *Server, body OptimizeRequest) (*http.Response, []byte) {
	t.Helper()
	resp, b, err := postOptimize(s, body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestFingerprintParityAcrossFronts: the same query optimized directly,
// over HTTP and over the wire protocol must carry identical plan
// fingerprints — the daemon is a transport, not a different optimizer.
func TestFingerprintParityAcrossFronts(t *testing.T) {
	s := startServer(t, Config{})
	q := testQuery(t, 6, 1)
	js := mpq.JobSpec{Space: partition.Linear, Workers: 2}

	direct, err := mpq.NewSerialEngine().Optimize(context.Background(), q, js)
	if err != nil {
		t.Fatal(err)
	}
	want := mpq.PlanFingerprint(direct.Best)

	// HTTP front.
	resp, body := mustPost(t, s, OptimizeRequest{Query: *spec.FromQuery(q), Workers: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP status %d: %s", resp.StatusCode, body)
	}
	var or OptimizeResponse
	if err := json.Unmarshal(body, &or); err != nil {
		t.Fatal(err)
	}
	if or.Fingerprint != want {
		t.Errorf("HTTP fingerprint %s, want %s", or.Fingerprint, want)
	}
	if or.Cost != direct.Best.Cost {
		t.Errorf("HTTP cost %g, want %g", or.Cost, direct.Best.Cost)
	}

	// Wire front.
	c, err := Dial(s.WireAddr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ans, err := c.Optimize(context.Background(), q, js)
	if err != nil {
		t.Fatal(err)
	}
	if got := mpq.PlanFingerprint(ans.Best); got != want {
		t.Errorf("wire fingerprint %s, want %s", got, want)
	}
}

// TestMultiObjectiveOverWire: frontiers survive the wire round trip.
func TestMultiObjectiveOverWire(t *testing.T) {
	s := startServer(t, Config{})
	q := testQuery(t, 5, 2)
	js := mpq.JobSpec{Space: partition.Linear, Workers: 1, Objective: core.MultiObjective, Alpha: 10}

	direct, err := mpq.NewSerialEngine().Optimize(context.Background(), q, js)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(s.WireAddr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ans, err := c.Optimize(context.Background(), q, js)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Frontier) != len(direct.Frontier) {
		t.Fatalf("frontier size %d over wire, %d direct", len(ans.Frontier), len(direct.Frontier))
	}
	for i := range ans.Frontier {
		if mpq.PlanFingerprint(ans.Frontier[i]) != mpq.PlanFingerprint(direct.Frontier[i]) {
			t.Errorf("frontier[%d] fingerprint diverges", i)
		}
	}
	if mpq.PlanFingerprint(ans.Best) != mpq.PlanFingerprint(direct.Best) {
		t.Errorf("best plan diverges")
	}
}

// TestOverloadRejection: once QueueDepth requests wait, the HTTP front
// answers 429 with Retry-After and the wire front answers a retryable
// ErrOverloaded — load sheds at admission instead of queueing without
// bound.
func TestOverloadRejection(t *testing.T) {
	gate := make(chan struct{})
	eng := &gatedEngine{inner: mpq.NewSerialEngine(), gate: gate, started: make(chan string, 16)}
	s := startServer(t, Config{Engine: eng, QueueDepth: 1, Dispatchers: 1})
	q := testQuery(t, 4, 3)
	qs := *spec.FromQuery(q)

	// Occupy the single dispatcher, then the single queue slot. The
	// posts are sequenced — second only after the first reached the
	// engine — else they race for the lone queue slot and one gets a
	// 429 here instead of below.
	var wg sync.WaitGroup
	post := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postOptimize(s, OptimizeRequest{Query: qs})
		}()
	}
	post()
	<-eng.started // dispatcher is now blocked on the gate
	post()
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.queued == 1
	})

	// Third request: no room.
	resp, body := mustPost(t, s, OptimizeRequest{Query: qs})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Wire front sheds the same way.
	c, err := Dial(s.WireAddr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Optimize(context.Background(), q, mpq.JobSpec{Space: partition.Linear, Workers: 1}); err == nil {
		t.Fatal("wire submit succeeded past a full queue")
	} else if !strings.Contains(err.Error(), ErrOverloaded.Error()) {
		t.Fatalf("wire error %v does not wrap ErrOverloaded", err)
	}

	close(gate) // release everything
	wg.Wait()
	for len(eng.started) > 0 {
		<-eng.started
	}
}

// TestWeightedFairness: with tenants queued back-to-back, stride
// scheduling serves them proportionally to their weights. Weight 3 vs
// weight 1 over 8 dispatches must give the heavy tenant 6 and the
// light one 2.
func TestWeightedFairness(t *testing.T) {
	gate := make(chan struct{})
	eng := &gatedEngine{inner: mpq.NewSerialEngine(), gate: gate, started: make(chan string, 32)}
	s := startServer(t, Config{
		Engine:        eng,
		QueueDepth:    32,
		Dispatchers:   1,
		TenantWeights: map[string]float64{"heavy": 3, "light": 1},
	})
	q := testQuery(t, 4, 4)
	qs := *spec.FromQuery(q)

	// Stall the dispatcher with a throwaway request so both tenants'
	// queues fill before any fairness decision happens.
	var wg sync.WaitGroup
	post := func(tenant string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postOptimize(s, OptimizeRequest{Query: qs, Tenant: tenant})
		}()
	}
	post("warmup")
	<-eng.started
	for i := 0; i < 6; i++ {
		post("light")
		post("heavy")
	}
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.queued == 12
	})

	// Release the 13 requests one at a time; each token finishes the
	// running request and lets the dispatcher pick the next queued one.
	served := []string{}
	for i := 0; i < 13; i++ {
		gate <- struct{}{}
		if i < 12 {
			tn := <-eng.started
			if i < 8 {
				served = append(served, tn)
			}
		}
	}
	wg.Wait()

	heavy := 0
	for _, tn := range served {
		if tn == "heavy" {
			heavy++
		}
	}
	if heavy != 6 {
		t.Fatalf("heavy tenant served %d of the first 8 (order %v), want 6", heavy, served)
	}
}

// TestCompletionOrderOverWire: a fast query pipelined behind a slow one
// on the same connection returns first.
func TestCompletionOrderOverWire(t *testing.T) {
	gate := make(chan struct{}, 2)
	eng := &gatedEngine{inner: mpq.NewSerialEngine(), gate: gate, started: make(chan string, 2)}
	s := startServer(t, Config{Engine: eng, Dispatchers: 2})
	q := testQuery(t, 4, 5)
	js := mpq.JobSpec{Space: partition.Linear, Workers: 1}

	c, err := Dial(s.WireAddr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	results := make(chan int, 2)
	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Optimize(context.Background(), q, js); err != nil {
				t.Errorf("job %d: %v", i, err)
			}
			results <- i
		}(i)
		<-eng.started // both jobs reach the gate in submission order
	}
	// Release one job; its reply must come back while the other is still
	// gated — proving the connection does not serialize replies in
	// submission order. (Gate tokens are anonymous, so either job may be
	// the one released; liveness is the property under test.)
	gate <- struct{}{}
	first := <-results
	gate <- struct{}{}
	second := <-results
	wg.Wait()
	if first == second {
		t.Fatalf("duplicate completion %d", first)
	}
}

// TestDrainGraceful: Shutdown waits for queued and in-flight work, then
// returns nil; later submissions fail with ErrDraining.
func TestDrainGraceful(t *testing.T) {
	gate := make(chan struct{}, 8)
	eng := &gatedEngine{inner: mpq.NewSerialEngine(), gate: gate, started: make(chan string, 8)}
	s := startServer(t, Config{Engine: eng, Dispatchers: 1})
	q := testQuery(t, 4, 6)
	qs := *spec.FromQuery(q)

	done := make(chan struct {
		code int
		body []byte
	}, 1)
	go func() {
		resp, body := mustPost(t, s, OptimizeRequest{Query: qs})
		done <- struct {
			code int
			body []byte
		}{resp.StatusCode, body}
	}()
	<-eng.started

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.draining
	})

	// New work is refused while draining.
	req := &request{ctx: context.Background(), cancel: func() {}, tenant: "x", source: "http"}
	if err := s.submit(req); err != ErrDraining {
		t.Fatalf("submit during drain: %v, want ErrDraining", err)
	}

	gate <- struct{}{} // let the in-flight request finish
	r := <-done
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request got %d during graceful drain: %s", r.code, r.body)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("graceful Shutdown: %v", err)
	}
}

// TestDrainDeadlineForcesCancel: when the drain deadline passes,
// in-flight requests are canceled rather than awaited forever.
func TestDrainDeadlineForcesCancel(t *testing.T) {
	eng := &gatedEngine{inner: mpq.NewSerialEngine(), gate: make(chan struct{}), started: make(chan string, 1)}
	s := startServer(t, Config{Engine: eng, Dispatchers: 1})
	q := testQuery(t, 4, 7)
	qs := *spec.FromQuery(q)

	go postOptimize(s, OptimizeRequest{Query: qs}) // never released
	<-eng.started

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Shutdown(ctx)
	if err == nil {
		t.Fatal("forced drain returned nil, want deadline error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("forced drain took %v; in-flight work was not canceled", elapsed)
	}
}

// TestStuckWirePeerDoesNotStallDispatchers: a peer that pipelines more
// requests than the response backlog and then never reads a byte must
// not wedge the dispatcher pool — the writer's deadline tears the
// connection down and service continues for everyone else. net.Pipe has
// no buffering, so the very first unread response blocks the writer,
// which is the exact pathology under test.
func TestStuckWirePeerDoesNotStallDispatchers(t *testing.T) {
	s := startServer(t, Config{WireWriteTimeout: 200 * time.Millisecond})
	q := testQuery(t, 4, 11)
	js := mpq.JobSpec{Space: partition.Linear, Workers: 1}

	peer, srv := net.Pipe()
	defer peer.Close()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.serveWireConn(srv)
	}()

	// 80 pipelined requests > writeCh backlog (64) + dispatchers (4):
	// once responses stop draining, every dispatcher ends up blocked in
	// reply() until the write deadline cancels the connection. A write
	// error just means the teardown already happened — also a pass.
	for i := 1; i <= 80; i++ {
		frame := wire.EncodeJobRequest(&wire.JobRequest{Seq: uint32(i), Spec: js, Query: q})
		if err := wire.WriteFrame(peer, frame); err != nil {
			break
		}
	}

	done := make(chan error, 1)
	go func() {
		resp, body, err := postOptimize(s, OptimizeRequest{Query: *spec.FromQuery(q)})
		if err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("status %d: %s", resp.StatusCode, body)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("HTTP request after wire peer stalled: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("HTTP service stalled behind a wire peer that stopped reading")
	}
}

// closeRecorder is a wire conn whose CloseRead is a no-op — like a real
// *net.TCPConn half-close against a peer that keeps its socket open —
// and whose full Close is observable.
type closeRecorder struct {
	net.Conn
	once   sync.Once
	closed chan struct{}
}

func (c *closeRecorder) CloseRead() error { return nil }
func (c *closeRecorder) Close() error {
	c.once.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// TestForcedDrainClosesStuckWireConns: when the drain deadline forces
// cancellation, wire connections must be fully closed — not just
// read-half-closed — so a peer that is not draining its responses
// cannot hold reply(), pending.Wait and wg.Wait open past the bounded
// -drain-timeout guarantee.
func TestForcedDrainClosesStuckWireConns(t *testing.T) {
	eng := &gatedEngine{inner: mpq.NewSerialEngine(), gate: make(chan struct{}), started: make(chan string, 1)}
	s := startServer(t, Config{Engine: eng, Dispatchers: 1})
	q := testQuery(t, 4, 12)

	_, inner := net.Pipe()
	rec := &closeRecorder{Conn: inner, closed: make(chan struct{})}
	s.mu.Lock()
	s.wireConns[rec] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.wireConns, rec)
		s.mu.Unlock()
	}()

	go postOptimize(s, OptimizeRequest{Query: *spec.FromQuery(q)}) // never released
	<-eng.started

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("forced drain returned nil, want deadline error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("forced drain took %v", elapsed)
	}
	select {
	case <-rec.closed:
	default:
		t.Error("forced drain left a wire conn read-half-closed only; a peer not draining responses would hang Shutdown")
	}
}

// TestHealthz reports ok when serving.
func TestHealthz(t *testing.T) {
	s := startServer(t, Config{})
	resp, err := http.Get("http://" + s.HTTPAddr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d, want 200", resp.StatusCode)
	}
}

// TestMetricsExposition: served requests show up in /metrics with
// tenant labels, and the histogram counts match.
func TestMetricsExposition(t *testing.T) {
	s := startServer(t, Config{Engine: mpq.WithCache(mpq.NewSerialEngine(), mpq.CacheConfig{})})
	q := testQuery(t, 4, 8)
	qs := *spec.FromQuery(q)
	for i := 0; i < 3; i++ {
		resp, body := mustPost(t, s, OptimizeRequest{Query: qs, Tenant: "acme"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("optimize %d: %s", resp.StatusCode, body)
		}
	}
	resp, err := http.Get("http://" + s.HTTPAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{
		`mpqd_requests_total{tenant="acme",source="http",outcome="served"} 3`,
		"mpqd_request_seconds_count 3",
		"mpqd_queue_depth 0",
		"mpqd_cache_hits_total 2",
		"mpqd_cache_misses_total 1",
		"mpqd_speculations_total 0",
		"mpqd_probes_total 0",
		"mpqd_redispatched_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

// TestBatchStreamsCompletionOrder: /v1/batch answers lines as jobs
// finish, tagged with their input index.
func TestBatchStreamsCompletionOrder(t *testing.T) {
	s := startServer(t, Config{Dispatchers: 2})
	q := testQuery(t, 4, 9)
	body, _ := json.Marshal(BatchRequest{Jobs: []OptimizeRequest{
		{Query: *spec.FromQuery(q)},
		{Query: *spec.FromQuery(q), Workers: 2},
	}})
	resp, err := http.Post("http://"+s.HTTPAddr()+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	seen := map[int]bool{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line BatchLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Error != "" {
			t.Fatalf("job %d failed: %s", line.Index, line.Error)
		}
		if line.Fingerprint == "" {
			t.Fatalf("job %d missing fingerprint", line.Index)
		}
		seen[line.Index] = true
	}
	if !seen[0] || !seen[1] || len(seen) != 2 {
		t.Fatalf("batch indices %v, want {0,1}", seen)
	}
}

// TestPlanLogRotation: records land in the log as JSON lines and the
// file rotates at its size cap.
func TestPlanLogRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plans.log")
	s := startServer(t, Config{PlanLog: PlanLogConfig{Path: path, MaxBytes: 256, MaxFiles: 2}})
	q := testQuery(t, 4, 10)
	qs := *spec.FromQuery(q)
	for i := 0; i < 6; i++ {
		resp, body := mustPost(t, s, OptimizeRequest{Query: qs, Tenant: fmt.Sprintf("t%d", i)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("optimize: %d %s", resp.StatusCode, body)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil { // flushes the log
		t.Fatal(err)
	}

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(b)), "\n") {
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad plan-log line %q: %v", line, err)
		}
		if rec.Fingerprint == "" || rec.Tenant == "" {
			t.Fatalf("incomplete record: %+v", rec)
		}
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Errorf("expected rotated file %s.1: %v", path, err)
	}
	if _, err := os.Stat(path + ".3"); err == nil {
		t.Errorf("rotation kept more than MaxFiles files")
	}
}

// TestBadRequests: malformed input gets a 400, not a hang or a 500.
func TestBadRequests(t *testing.T) {
	s := startServer(t, Config{})
	for name, body := range map[string]string{
		"not json":    "{",
		"empty query": `{"query":{"tables":[]}}`,
		"bad space":   `{"query":{"tables":[{"name":"a","cardinality":10},{"name":"b","cardinality":10}],"predicates":[{"left":0,"right":1,"selectivity":0.1}]},"space":"galactic"}`,
	} {
		resp, err := http.Post("http://"+s.HTTPAddr()+"/v1/optimize", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestWireRejectsNonRequestTags: a well-framed message whose tag is not
// TagJobRequest gets a classified ErrBadRequest reply (the
// rejectWireTag dispatch), and the rejection is per-frame — the same
// connection still serves a valid request afterward.
func TestWireRejectsNonRequestTags(t *testing.T) {
	s := startServer(t, Config{})
	q := testQuery(t, 5, 1)

	conn, err := net.DialTimeout("tcp", s.WireAddr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	readWorkerError := func(frameName string) *wire.WorkerError {
		t.Helper()
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			t.Fatalf("%s: reading reply: %v", frameName, err)
		}
		we, err := wire.DecodeWorkerError(payload)
		if err != nil {
			t.Fatalf("%s: reply is not a WorkerError: %v", frameName, err)
		}
		if we.Code != wire.ErrBadRequest {
			t.Fatalf("%s: code %v, want ErrBadRequest", frameName, we.Code)
		}
		return we
	}

	// A bare Query frame is a serialization record, not a request.
	if err := wire.WriteFrame(conn, wire.EncodeQuery(q)); err != nil {
		t.Fatal(err)
	}
	if we := readWorkerError("query frame"); !strings.Contains(we.Msg, "serialization records") {
		t.Errorf("query frame: message %q does not classify the tag", we.Msg)
	}

	// A cancel frame belongs to the worker protocol, not the daemon's.
	if err := wire.WriteFrame(conn, wire.EncodeCancelRequest(&wire.CancelRequest{Seq: 7})); err != nil {
		t.Fatal(err)
	}
	if we := readWorkerError("cancel frame"); !strings.Contains(we.Msg, "worker protocol") {
		t.Errorf("cancel frame: message %q does not classify the tag", we.Msg)
	}

	// The connection survives both rejections: a valid JobRequest on
	// the same conn gets a real JobResponse.
	req := &wire.JobRequest{Seq: 42, Spec: mpq.JobSpec{Space: partition.Linear, Workers: 1}, Query: q}
	if err := wire.WriteFrame(conn, wire.EncodeJobRequest(req)); err != nil {
		t.Fatal(err)
	}
	payload, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatalf("job request after rejections: %v", err)
	}
	resp, err := wire.DecodeJobResponse(payload)
	if err != nil {
		t.Fatalf("job request after rejections: reply is not a JobResponse: %v", err)
	}
	if resp.Seq != 42 {
		t.Errorf("response Seq %d, want 42", resp.Seq)
	}
	if len(resp.Plans) == 0 || resp.Plans[0] == nil {
		t.Fatal("response carries no plan")
	}
}

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
