package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"mpq"
	"mpq/internal/core"
	"mpq/internal/partition"
	"mpq/internal/spec"
)

// maxHTTPBody caps a request body; a QuerySpec for the largest
// supported query is a few kilobytes, so 8 MiB is generous.
const maxHTTPBody = 8 << 20

// OptimizeRequest is the HTTP API's request body for /v1/optimize and
// one element of /v1/batch's jobs array.
type OptimizeRequest struct {
	// Query is the join query in the repo's standard JSON spec (the
	// same document mpqopt -query reads).
	Query spec.QuerySpec `json:"query"`
	// Space is "linear" (default) or "bushy".
	Space string `json:"space,omitempty"`
	// Workers is the plan-space partition count m (power of two,
	// default 1).
	Workers int `json:"workers,omitempty"`
	// Objective is "single" (default), "multi", or "robust".
	Objective string `json:"objective,omitempty"`
	// Alpha is the multi-objective approximation factor (default 10).
	Alpha float64 `json:"alpha,omitempty"`
	// RobustBand is the selectivity uncertainty band B ≥ 1 for robust
	// jobs; 0 means the engine default.
	RobustBand float64 `json:"robustBand,omitempty"`
	// InterestingOrders enables sort-order tracking.
	InterestingOrders bool `json:"interestingOrders,omitempty"`
	// Tenant names the fairness bucket; falls back to the
	// X-MPQ-Tenant header, then "default".
	Tenant string `json:"tenant,omitempty"`
	// TimeoutMs bounds this request; 0 means the server default.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
}

// CacheInfo reports how the engine's plan cache served an answer.
type CacheInfo struct {
	Hit       bool `json:"hit"`
	Collapsed bool `json:"collapsed"`
}

// OptimizeResponse is the HTTP API's response body.
type OptimizeResponse struct {
	ID          string     `json:"id"`
	Fingerprint string     `json:"fingerprint"`
	Cost        float64    `json:"cost"`
	Plan        string     `json:"plan"`
	WorkUnits   uint64     `json:"workUnits"`
	Frontier    []string   `json:"frontier,omitempty"` // multi-objective: frontier plan expressions
	Cache       *CacheInfo `json:"cache,omitempty"`
	QueueMicros int64      `json:"queueMicros"`
	ServeMicros int64      `json:"serveMicros"`
}

// BatchLine is one NDJSON line of a /v1/batch response, emitted in
// completion order: Index maps it back to the jobs array.
type BatchLine struct {
	Index int `json:"index"`
	*OptimizeResponse
	Error string `json:"error,omitempty"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) httpHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/optimize", s.handleOptimize)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeSubmitError maps an admission failure to its HTTP status.
func writeSubmitError(w http.ResponseWriter, err error) {
	switch err {
	case ErrOverloaded:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case ErrDraining:
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

// parseJob turns an API request into the query and spec the engine
// wants, or an error suitable for a 400.
func parseJob(or *OptimizeRequest) (*mpq.Query, mpq.JobSpec, error) {
	q, err := or.Query.ToQuery()
	if err != nil {
		return nil, mpq.JobSpec{}, err
	}
	js := mpq.JobSpec{
		Workers:           or.Workers,
		Alpha:             or.Alpha,
		RobustBand:        or.RobustBand,
		InterestingOrders: or.InterestingOrders,
	}
	if js.Workers == 0 {
		js.Workers = 1
	}
	switch or.Space {
	case "", "linear":
		js.Space = partition.Linear
	case "bushy":
		js.Space = partition.Bushy
	default:
		return nil, mpq.JobSpec{}, fmt.Errorf("unknown space %q (want linear or bushy)", or.Space)
	}
	switch or.Objective {
	case "", "single":
		js.Objective = core.SingleObjective
	case "multi":
		js.Objective = core.MultiObjective
	case "robust":
		js.Objective = core.RobustObjective
	default:
		return nil, mpq.JobSpec{}, fmt.Errorf("unknown objective %q (want single, multi, or robust)", or.Objective)
	}
	if err := js.Validate(q.N()); err != nil {
		return nil, mpq.JobSpec{}, err
	}
	return q, js, nil
}

// buildRequest assembles an admission-ready request. The returned
// channel receives the result exactly once (buffered: the dispatcher
// never blocks on a reader that gave up).
func (s *Server) buildRequest(parent context.Context, or *OptimizeRequest, tenant string, source string) (*request, <-chan result) {
	q, js, err := parseJob(or)
	done := make(chan result, 1)
	if err != nil {
		done <- result{err: err}
		return nil, done
	}
	timeout := s.cfg.DefaultTimeout
	if or.TimeoutMs > 0 {
		timeout = time.Duration(or.TimeoutMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(parent, timeout)
	req := &request{
		ctx:    ctx,
		cancel: cancel,
		id:     s.nextID(),
		tenant: tenant,
		source: source,
		query:  q,
		spec:   js,
		enq:    time.Now(),
	}
	req.respond = func(res result) { done <- res }
	return req, done
}

// buildResponse converts an engine answer to the API shape. Queue time
// is everything between admission and the answer that the engine's own
// clock does not account for.
func buildResponse(req *request, res result) *OptimizeResponse {
	served := time.Since(req.enq)
	resp := &OptimizeResponse{
		ID:          req.id,
		Fingerprint: mpq.PlanFingerprint(res.ans.Best),
		Cost:        res.ans.Best.Cost,
		Plan:        res.ans.Best.String(),
		WorkUnits:   res.ans.Stats.WorkUnits(),
		QueueMicros: served.Microseconds() - res.ans.Elapsed.Microseconds(),
		ServeMicros: res.ans.Elapsed.Microseconds(),
	}
	if resp.QueueMicros < 0 {
		resp.QueueMicros = 0
	}
	for _, p := range res.ans.Frontier {
		resp.Frontier = append(resp.Frontier, p.String())
	}
	if cs := res.ans.Cache; cs != nil {
		resp.Cache = &CacheInfo{Hit: cs.Hit, Collapsed: cs.Collapsed}
	}
	return resp
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return
	}
	var or OptimizeRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxHTTPBody)
	if err := json.NewDecoder(r.Body).Decode(&or); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "decode: " + err.Error()})
		return
	}
	tenant := or.Tenant
	if tenant == "" {
		tenant = r.Header.Get("X-MPQ-Tenant")
	}
	if tenant == "" {
		tenant = "default"
	}
	req, done := s.buildRequest(r.Context(), &or, tenant, "http")
	if req == nil {
		res := <-done
		writeJSON(w, http.StatusBadRequest, errorBody{Error: res.err.Error()})
		return
	}
	if err := s.submit(req); err != nil {
		req.cancel()
		writeSubmitError(w, err)
		return
	}
	res := <-done // respond is guaranteed: dispatchers drain even canceled requests
	if res.err != nil {
		status := http.StatusInternalServerError
		if req.ctx.Err() != nil {
			status = http.StatusGatewayTimeout
		}
		writeJSON(w, status, errorBody{Error: res.err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, buildResponse(req, res))
}

// BatchRequest is /v1/batch's body: independent jobs admitted together
// and answered as an NDJSON stream in completion order.
type BatchRequest struct {
	// Tenant is the fallback for jobs that do not set their own.
	Tenant string `json:"tenant,omitempty"`
	// TimeoutMs is the fallback per-job timeout.
	TimeoutMs int64             `json:"timeoutMs,omitempty"`
	Jobs      []OptimizeRequest `json:"jobs"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return
	}
	var br BatchRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxHTTPBody)
	if err := json.NewDecoder(r.Body).Decode(&br); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "decode: " + err.Error()})
		return
	}
	if len(br.Jobs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty batch"})
		return
	}

	type pending struct {
		req  *request
		done <-chan result
		err  error // admission or parse failure
	}
	type completion struct {
		index int
		res   result
	}
	jobs := make([]pending, len(br.Jobs))
	completions := make(chan completion, len(br.Jobs))
	admitted := 0
	for i := range br.Jobs {
		or := &br.Jobs[i]
		if or.Tenant == "" {
			or.Tenant = br.Tenant
		}
		if or.Tenant == "" {
			or.Tenant = "default"
		}
		if or.TimeoutMs == 0 {
			or.TimeoutMs = br.TimeoutMs
		}
		req, done := s.buildRequest(r.Context(), or, or.Tenant, "http")
		jobs[i] = pending{req: req, done: done}
		if req == nil {
			jobs[i].err = (<-done).err
			continue
		}
		if err := s.submit(req); err != nil {
			req.cancel()
			jobs[i].err = err
			continue
		}
		admitted++
		i := i
		go func() {
			completions <- completion{index: i, res: <-jobs[i].done}
		}()
	}
	if admitted == 0 {
		// Nothing ran; report the first failure with its natural status.
		for _, p := range jobs {
			if p.err == ErrOverloaded || p.err == ErrDraining {
				writeSubmitError(w, p.err)
				return
			}
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: jobs[0].err.Error()})
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(line BatchLine) {
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
	// Rejected jobs first (they are already decided), then admitted
	// jobs strictly in completion order.
	for i, p := range jobs {
		if p.err != nil {
			emit(BatchLine{Index: i, Error: p.err.Error()})
		}
	}
	for n := 0; n < admitted; n++ {
		c := <-completions
		if c.res.err != nil {
			emit(BatchLine{Index: c.index, Error: c.res.err.Error()})
			continue
		}
		emit(BatchLine{Index: c.index, OptimizeResponse: buildResponse(jobs[c.index].req, c.res)})
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	queued := s.queued
	inflight := len(s.inflight)
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "draining", "queued": queued, "inflight": inflight,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "queued": queued, "inflight": inflight,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.snapshot()
	s.mu.Lock()
	inflight := len(s.inflight)
	s.mu.Unlock()
	extra := []metricKV{
		{name: "mpqd_inflight", kind: "gauge", value: inflight},
	}
	if s.plog != nil {
		extra = append(extra,
			metricKV{name: "mpqd_planlog_written_total", kind: "counter", value: s.plog.written.Load()},
			metricKV{name: "mpqd_planlog_dropped_total", kind: "counter", value: s.plog.dropped.Load()},
			metricKV{name: "mpqd_planlog_rotations_total", kind: "counter", value: s.plog.rotations.Load()},
		)
	}
	if ce, ok := s.cfg.Engine.(interface{ CacheTotals() mpq.CacheTotals }); ok {
		t := ce.CacheTotals()
		extra = append(extra,
			metricKV{name: "mpqd_cache_hits_total", kind: "counter", value: t.Hits},
			metricKV{name: "mpqd_cache_misses_total", kind: "counter", value: t.Misses},
			metricKV{name: "mpqd_cache_collapses_total", kind: "counter", value: t.Collapses},
			metricKV{name: "mpqd_cache_evictions_total", kind: "counter", value: t.Evictions},
			metricKV{name: "mpqd_cache_entries", kind: "gauge", value: t.Entries},
			metricKV{name: "mpqd_cache_bytes", kind: "gauge", value: t.Bytes},
		)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	snap.write(w, extra)
}
