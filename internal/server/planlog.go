package server

import (
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"time"
)

// Plan-log defaults for PlanLogConfig fields left at zero.
const (
	defaultPlanLogMaxBytes = 8 << 20
	defaultPlanLogMaxFiles = 3
	defaultPlanLogBuffer   = 1024
)

// PlanLogConfig configures the bounded asynchronous decision log. The
// zero value disables logging.
type PlanLogConfig struct {
	// Path is the active log file; rotated files are Path.1 … Path.N.
	// Empty disables the log.
	Path string
	// MaxBytes caps the active file's size; exceeding it triggers
	// rotation. Zero means 8 MiB.
	MaxBytes int64
	// MaxFiles is how many rotated files to keep besides the active
	// one. Zero means 3.
	MaxFiles int
	// Buffer is the in-memory record buffer capacity. When the writer
	// falls behind and the buffer fills, new records are dropped and
	// counted (mpqd_planlog_dropped_total) — serving latency is never
	// sacrificed to logging. Zero means 1024.
	Buffer int
}

// Record is one plan-log line: the decision record of one optimization
// request, serialized as JSON (one object per line).
type Record struct {
	Time        time.Time `json:"time"`
	ID          string    `json:"id"`
	Tenant      string    `json:"tenant,omitempty"`
	Source      string    `json:"source"`
	Tables      int       `json:"tables"`
	Predicates  int       `json:"predicates"`
	Space       string    `json:"space"`
	Workers     int       `json:"workers"`
	Objective   string    `json:"objective"`
	QueueMicros int64     `json:"queueMicros"`
	ServeMicros int64     `json:"serveMicros"`

	// Success fields.
	Fingerprint    string  `json:"fingerprint,omitempty"`
	Cost           float64 `json:"cost,omitempty"`
	WorkUnits      uint64  `json:"workUnits,omitempty"`
	FrontierSize   int     `json:"frontierSize,omitempty"`
	CacheHit       bool    `json:"cacheHit,omitempty"`
	CacheCollapsed bool    `json:"cacheCollapsed,omitempty"`

	// Error is set instead of the success fields when the request
	// failed, expired or was canceled.
	Error string `json:"error,omitempty"`
}

// planLog writes records to a size-rotated file from a background
// goroutine, fed through a bounded channel so the serving path never
// blocks on disk.
type planLog struct {
	cfg  PlanLogConfig
	ch   chan Record
	done chan struct{}

	written   atomic.Uint64
	dropped   atomic.Uint64
	rotations atomic.Uint64

	f    *os.File
	size int64
}

// newPlanLog opens the log and starts its writer, or returns (nil, nil)
// when cfg disables logging.
func newPlanLog(cfg PlanLogConfig) (*planLog, error) {
	if cfg.Path == "" {
		return nil, nil
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = defaultPlanLogMaxBytes
	}
	if cfg.MaxFiles <= 0 {
		cfg.MaxFiles = defaultPlanLogMaxFiles
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = defaultPlanLogBuffer
	}
	f, err := os.OpenFile(cfg.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: plan log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("server: plan log: %w", err)
	}
	l := &planLog{
		cfg:  cfg,
		ch:   make(chan Record, cfg.Buffer),
		done: make(chan struct{}),
		f:    f,
		size: st.Size(),
	}
	go l.run()
	return l, nil
}

// record enqueues one record, dropping it (with a counter) when the
// buffer is full. Never blocks.
func (l *planLog) record(r Record) {
	select {
	case l.ch <- r:
	default:
		l.dropped.Add(1)
	}
}

func (l *planLog) run() {
	defer close(l.done)
	for r := range l.ch {
		b, err := json.Marshal(r)
		if err != nil {
			l.dropped.Add(1)
			continue
		}
		b = append(b, '\n')
		if l.size+int64(len(b)) > l.cfg.MaxBytes && l.size > 0 {
			l.rotate()
		}
		n, err := l.f.Write(b)
		l.size += int64(n)
		if err != nil {
			l.dropped.Add(1)
			continue
		}
		l.written.Add(1)
	}
	l.f.Close()
}

// rotate shifts path.i → path.(i+1), path → path.1, dropping the
// oldest, then reopens a fresh active file. Rotation errors are
// tolerated: worst case the active file keeps growing past the cap,
// which beats losing the daemon to a log problem.
func (l *planLog) rotate() {
	l.f.Close()
	os.Remove(fmt.Sprintf("%s.%d", l.cfg.Path, l.cfg.MaxFiles))
	for i := l.cfg.MaxFiles - 1; i >= 1; i-- {
		os.Rename(fmt.Sprintf("%s.%d", l.cfg.Path, i), fmt.Sprintf("%s.%d", l.cfg.Path, i+1))
	}
	os.Rename(l.cfg.Path, l.cfg.Path+".1")
	f, err := os.OpenFile(l.cfg.Path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		// Reopen the old path in append mode as a last resort; if even
		// that fails, subsequent writes error and count as drops.
		f, _ = os.OpenFile(l.cfg.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	}
	l.f = f
	l.size = 0
	l.rotations.Add(1)
}

// Close flushes buffered records and closes the file.
func (l *planLog) Close() {
	close(l.ch)
	<-l.done
}
