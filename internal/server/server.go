// Package server implements mpqd's resident optimizer service: a
// long-lived daemon that keeps an mpq.Engine saturated under sustained
// traffic instead of exiting after one batch — the serving shape the
// paper's shared-nothing optimizer is meant for.
//
// The server wraps any Engine (serial, in-process, simulated, TCP —
// composable with mpq.WithCache) behind two front ends:
//
//   - an HTTP/JSON API (POST /v1/optimize, POST /v1/batch) for humans,
//     scripts and load balancers, plus /healthz, /metrics (Prometheus
//     text format) and net/http/pprof under /debug/pprof/;
//   - the existing binary wire protocol (length-prefixed
//     wire.JobRequest/JobResponse frames with Seq echoes), so the same
//     client code that talks to a netrun worker can talk to the daemon.
//
// Every request passes one admission-controlled arrival queue: at most
// Config.QueueDepth requests wait at a time, and load beyond that is
// rejected immediately (HTTP 429, wire ErrOverloaded — both retryable)
// instead of building an unbounded backlog. Waiting requests are
// dispatched by per-tenant stride scheduling: each tenant owns a FIFO
// and a virtual-time pass; the scheduler always serves the tenant with
// the smallest pass and advances it by stride = K/weight, so over any
// busy interval tenants receive service proportional to their
// configured weights regardless of how fast they submit.
//
// Answers are delivered in completion order, not submission order — a
// cheap query behind an expensive one on the same wire connection (or
// in the same HTTP batch) returns as soon as it finishes, identified
// by its Seq echo (wire) or its index field (batch stream). Each
// request runs under its own context: deadline from the request (or
// Config.DefaultTimeout), canceled when the submitting connection
// drops, so abandoned work stops burning CPU.
//
// On SIGTERM (or Shutdown) the server drains: it stops accepting,
// fails fast on new submissions, finishes the queue and the in-flight
// requests, and force-cancels whatever remains when the drain deadline
// expires. A bounded asynchronous plan log (one JSON record per served
// query, size-capped rotation, drop-with-counter under pressure)
// records every decision; see planlog.go.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"mpq"
	"mpq/internal/core"
)

// Defaults for Config fields left at zero.
const (
	DefaultQueueDepth       = 256
	DefaultDispatchers      = 4
	DefaultTimeout          = time.Minute
	DefaultDrainWait        = 10 * time.Second
	DefaultMaxWireMsg       = 8 << 20
	DefaultWireWriteTimeout = 10 * time.Second
)

// strideScale is the stride numerator: a tenant of weight w advances
// its virtual-time pass by strideScale/w per dispatched request.
const strideScale = 1 << 16

// ErrOverloaded reports that the arrival queue is at Config.QueueDepth:
// the request was rejected without queueing. Retry after a backoff (the
// HTTP front end maps it to 429 with Retry-After, the wire front end to
// wire.ErrOverloaded, which masters classify retryable).
var ErrOverloaded = errors.New("server: arrival queue full")

// ErrDraining reports that the server is shutting down and no longer
// admits work. The HTTP front end maps it to 503.
var ErrDraining = errors.New("server: draining")

// Config parameterizes a Server. Engine is required; everything else
// has a default.
type Config struct {
	// Engine executes the optimizations. Any mpq.Engine works, including
	// mpq.WithCache wrappers (whose totals then show up in /metrics).
	Engine mpq.Engine
	// HTTPAddr is the HTTP front end's listen address (e.g. ":8080",
	// "127.0.0.1:0"). Empty disables HTTP.
	HTTPAddr string
	// WireAddr is the wire-protocol front end's listen address. Empty
	// disables it.
	WireAddr string
	// QueueDepth bounds the number of admitted-but-not-yet-dispatched
	// requests; submissions beyond it fail with ErrOverloaded. Zero
	// means DefaultQueueDepth.
	QueueDepth int
	// Dispatchers is the number of concurrent engine calls. Zero means
	// DefaultDispatchers. (Each call may itself fan out goroutine
	// workers; this bounds concurrent queries, not worker parallelism.)
	Dispatchers int
	// DefaultTimeout bounds a request that does not carry its own
	// deadline. Zero means DefaultTimeout (one minute).
	DefaultTimeout time.Duration
	// TenantWeights are the stride-scheduling weights; tenants not
	// listed get weight 1. Weights must be positive.
	TenantWeights map[string]float64
	// MaxWireFrame caps an inbound wire-protocol frame (the public
	// listener's defense against lying length prefixes). Zero means
	// DefaultMaxWireMsg.
	MaxWireFrame int
	// WireWriteTimeout bounds one response-frame write on a wire
	// connection. A peer that stops reading trips it, which tears the
	// connection down (canceling its in-flight requests) instead of
	// back-pressuring the dispatcher pool. Zero means
	// DefaultWireWriteTimeout.
	WireWriteTimeout time.Duration
	// PlanLog configures the asynchronous per-query decision log; the
	// zero value disables it.
	PlanLog PlanLogConfig
}

// withDefaults returns cfg with zero fields filled in.
func (cfg Config) withDefaults() Config {
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Dispatchers == 0 {
		cfg.Dispatchers = DefaultDispatchers
	}
	if cfg.DefaultTimeout == 0 {
		cfg.DefaultTimeout = DefaultTimeout
	}
	if cfg.MaxWireFrame == 0 {
		cfg.MaxWireFrame = DefaultMaxWireMsg
	}
	if cfg.WireWriteTimeout == 0 {
		cfg.WireWriteTimeout = DefaultWireWriteTimeout
	}
	return cfg
}

// result is one request's outcome.
type result struct {
	ans *mpq.Answer
	err error
}

// request is one admitted optimization request.
type request struct {
	ctx    context.Context
	cancel context.CancelFunc
	id     string
	tenant string
	source string // "http" or "wire"
	query  *mpq.Query
	spec   mpq.JobSpec
	enq    time.Time
	// respond is called exactly once per admitted request and must
	// return promptly: the HTTP front hands off to a buffered channel;
	// the wire front may wait on its response backlog, but only for as
	// long as Config.WireWriteTimeout — a peer that stops reading trips
	// the writer's deadline, which tears the connection down and
	// unblocks every reply on it.
	respond func(result)
}

// tenantQueue is one tenant's FIFO plus its stride-scheduling state.
type tenantQueue struct {
	name   string
	reqs   []*request
	pass   float64 // virtual time of the tenant's next dispatch
	stride float64 // strideScale / weight
}

// Server is the resident optimizer service. Create with New, start
// with Start, stop with Shutdown.
type Server struct {
	cfg Config

	mu        sync.Mutex
	cond      *sync.Cond
	tenants   map[string]*tenantQueue
	vtime     float64 // global virtual time: pass of the last dispatch
	queued    int
	inflight  map[*request]struct{}
	wireConns map[net.Conn]struct{}
	draining  bool
	closed    bool
	reqSeq    uint64

	shutdownOnce sync.Once
	shutdownDone chan struct{}
	shutdownErr  error

	metrics *metrics
	plog    *planLog

	httpLn  net.Listener
	wireLn  net.Listener
	httpSrv *http.Server
	wg      sync.WaitGroup // dispatchers, accept loops, wire conns
}

// New validates the configuration and builds a stopped server.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Engine == nil {
		return nil, errors.New("server: Config.Engine is required")
	}
	if cfg.HTTPAddr == "" && cfg.WireAddr == "" {
		return nil, errors.New("server: no listen address (set HTTPAddr and/or WireAddr)")
	}
	if cfg.QueueDepth < 0 || cfg.Dispatchers < 0 {
		return nil, fmt.Errorf("server: negative queue depth %d or dispatchers %d", cfg.QueueDepth, cfg.Dispatchers)
	}
	for name, w := range cfg.TenantWeights {
		if !(w > 0) {
			return nil, fmt.Errorf("server: tenant %q weight %g must be positive", name, w)
		}
	}
	plog, err := newPlanLog(cfg.PlanLog)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:          cfg,
		tenants:      map[string]*tenantQueue{},
		inflight:     map[*request]struct{}{},
		wireConns:    map[net.Conn]struct{}{},
		metrics:      newMetrics(),
		plog:         plog,
		shutdownDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Start opens the configured listeners and starts the dispatcher pool.
// It returns once the listeners are accepting (so ":0" addresses can be
// read back with HTTPAddr/WireAddr).
func (s *Server) Start() error {
	if s.cfg.HTTPAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.HTTPAddr)
		if err != nil {
			s.closeListeners()
			return fmt.Errorf("server: http listen: %w", err)
		}
		s.httpLn = ln
		s.httpSrv = &http.Server{Handler: s.httpHandler()}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.httpSrv.Serve(ln) // returns on Shutdown/Close
		}()
	}
	if s.cfg.WireAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.WireAddr)
		if err != nil {
			s.closeListeners()
			return fmt.Errorf("server: wire listen: %w", err)
		}
		s.wireLn = ln
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.acceptWire(ln)
		}()
	}
	for i := 0; i < s.cfg.Dispatchers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.dispatcher()
		}()
	}
	return nil
}

// HTTPAddr returns the HTTP listener's actual address ("" if disabled).
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// WireAddr returns the wire listener's actual address ("" if disabled).
func (s *Server) WireAddr() string {
	if s.wireLn == nil {
		return ""
	}
	return s.wireLn.Addr().String()
}

func (s *Server) closeListeners() {
	if s.httpLn != nil {
		s.httpLn.Close()
	}
	if s.wireLn != nil {
		s.wireLn.Close()
	}
}

// nextID hands out serving-layer request IDs.
func (s *Server) nextID() string {
	s.mu.Lock()
	s.reqSeq++
	n := s.reqSeq
	s.mu.Unlock()
	return fmt.Sprintf("r-%d", n)
}

// submit admits a request into the arrival queue or rejects it with
// ErrOverloaded / ErrDraining. On success the dispatcher pool will call
// req.respond exactly once; on failure the caller answers the client.
func (s *Server) submit(req *request) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.metrics.reject(req.tenant, req.source, "draining")
		return ErrDraining
	}
	if s.queued >= s.cfg.QueueDepth {
		s.metrics.reject(req.tenant, req.source, "overloaded")
		return ErrOverloaded
	}
	tq := s.tenants[req.tenant]
	if tq == nil {
		weight := s.cfg.TenantWeights[req.tenant]
		if weight <= 0 {
			weight = 1
		}
		tq = &tenantQueue{name: req.tenant, stride: strideScale / weight}
		tq.pass = s.vtime + tq.stride
		s.tenants[req.tenant] = tq
	}
	if len(tq.reqs) == 0 && tq.pass < s.vtime {
		// A tenant returning from idle does not bank credit for the time
		// it was absent: its pass restarts at the current virtual time.
		tq.pass = s.vtime + tq.stride
	}
	tq.reqs = append(tq.reqs, req)
	s.queued++
	s.metrics.setQueueDepth(s.queued)
	s.cond.Signal()
	return nil
}

// pop blocks until a request is available and returns the next one
// under stride scheduling: the nonempty tenant with the smallest pass
// (ties broken by name for determinism) is served and its pass advances
// by its stride. Returns nil when the server is closed and the queue is
// empty.
func (s *Server) pop() *request {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.queued > 0 {
			var best *tenantQueue
			for _, tq := range s.tenants {
				if len(tq.reqs) == 0 {
					continue
				}
				if best == nil || tq.pass < best.pass || (tq.pass == best.pass && tq.name < best.name) {
					best = tq
				}
			}
			req := best.reqs[0]
			best.reqs = best.reqs[1:]
			s.queued--
			s.metrics.setQueueDepth(s.queued)
			s.vtime = best.pass
			best.pass += best.stride
			s.inflight[req] = struct{}{}
			return req
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// dispatcher is one engine-call worker: it pops requests in fairness
// order and serves them until the server closes.
func (s *Server) dispatcher() {
	for {
		req := s.pop()
		if req == nil {
			return
		}
		s.serve(req)
	}
}

// serve runs one request against the engine and delivers the outcome.
func (s *Server) serve(req *request) {
	defer func() {
		s.mu.Lock()
		delete(s.inflight, req)
		idle := s.queued == 0 && len(s.inflight) == 0
		s.mu.Unlock()
		if idle {
			s.cond.Broadcast() // wake a drain waiting for idleness
		}
		req.cancel()
	}()
	queueWait := time.Since(req.enq)
	res := result{}
	start := time.Now()
	if err := req.ctx.Err(); err != nil {
		// Canceled or expired while queued: the client is gone or out of
		// time; do not burn an engine call.
		res.err = err
	} else {
		ctx := core.WithRequestMeta(req.ctx, core.RequestMeta{
			ID:         req.id,
			Tenant:     req.tenant,
			Source:     req.source,
			EnqueuedAt: req.enq,
		})
		res.ans, res.err = s.cfg.Engine.Optimize(ctx, req.query, req.spec)
	}
	served := time.Since(start)
	outcome := "served"
	switch {
	case res.err == nil:
	case errors.Is(res.err, context.Canceled):
		outcome = "canceled"
	case errors.Is(res.err, context.DeadlineExceeded):
		outcome = "deadline"
	default:
		outcome = "failed"
	}
	s.metrics.observe(req.tenant, req.source, outcome, served)
	if res.ans != nil {
		s.metrics.observeAnswer(res.ans)
	}
	s.logDecision(req, res, queueWait, served)
	req.respond(res)
}

// logDecision emits the plan-log record for one finished request.
func (s *Server) logDecision(req *request, res result, queueWait, served time.Duration) {
	if s.plog == nil {
		return
	}
	rec := Record{
		Time:        time.Now().UTC(),
		ID:          req.id,
		Tenant:      req.tenant,
		Source:      req.source,
		Tables:      req.query.N(),
		Predicates:  len(req.query.Preds),
		Space:       req.spec.Space.String(),
		Workers:     req.spec.Workers,
		Objective:   req.spec.Objective.String(),
		QueueMicros: queueWait.Microseconds(),
		ServeMicros: served.Microseconds(),
	}
	if res.err != nil {
		rec.Error = res.err.Error()
	} else {
		rec.Fingerprint = mpq.PlanFingerprint(res.ans.Best)
		rec.Cost = res.ans.Best.Cost
		rec.WorkUnits = res.ans.Stats.WorkUnits()
		rec.FrontierSize = len(res.ans.Frontier)
		if cs := res.ans.Cache; cs != nil {
			rec.CacheHit = cs.Hit
			rec.CacheCollapsed = cs.Collapsed
		}
	}
	s.plog.record(rec)
}

// Shutdown drains the server: stop accepting (listeners close, wire
// connections stop reading, new submissions fail with ErrDraining,
// /healthz turns 503), let the queue and in-flight requests finish and
// their responses flush, then tear down. If ctx expires first, every
// remaining request context is canceled — the engines abort
// cooperatively — and Shutdown returns ctx's error after they unwind.
// Idempotent: later calls return the first call's result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		s.shutdownErr = s.drain(ctx)
		close(s.shutdownDone)
	})
	<-s.shutdownDone
	return s.shutdownErr
}

func (s *Server) drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	conns := make([]net.Conn, 0, len(s.wireConns))
	for c := range s.wireConns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	// Stop accepting on both fronts. http.Server.Shutdown waits for
	// active handlers, which in turn wait for their requests' responses
	// — the queue drain below is what unblocks them. It inherits the
	// drain deadline: past it, Shutdown gives up waiting and the
	// unconditional httpSrv.Close() below force-closes the stragglers.
	s.closeListeners()
	// Half-close wire connections: the read side stops (no new
	// requests), the write side stays up so in-flight responses still
	// reach their clients before the handler closes the socket.
	for _, c := range conns {
		if hc, ok := c.(interface{ CloseRead() error }); ok {
			hc.CloseRead()
		} else {
			c.Close()
		}
	}
	httpDone := make(chan struct{})
	if s.httpSrv != nil {
		go func() {
			defer close(httpDone)
			s.httpSrv.Shutdown(ctx)
		}()
	} else {
		close(httpDone)
	}

	// Wake the idleness wait when ctx fires.
	stopWatch := context.AfterFunc(ctx, func() { s.cond.Broadcast() })
	defer stopWatch()

	forced := false
	var stuck []net.Conn
	s.mu.Lock()
	for s.queued > 0 || len(s.inflight) > 0 {
		if ctx.Err() != nil {
			forced = true
			// Hard deadline: cancel everything still running and flush the
			// queue with ErrDraining; dispatchers deliver the cancellations.
			for req := range s.inflight {
				req.cancel()
			}
			for _, tq := range s.tenants {
				for _, req := range tq.reqs {
					req.cancel()
				}
			}
			// A peer that is not draining its responses holds reply() —
			// and through it pending.Wait and s.wg.Wait — open past the
			// deadline. Close its connection outright (not just the read
			// side) so blocked writes fail and the handler unwinds.
			for c := range s.wireConns {
				stuck = append(stuck, c)
			}
			break
		}
		s.cond.Wait()
	}
	s.closed = true
	s.cond.Broadcast() // dispatchers drain the rest (canceled) and exit
	s.mu.Unlock()
	for _, c := range stuck {
		c.Close()
	}

	s.wg.Wait() // dispatchers, accept loops, wire connections
	<-httpDone
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	if s.plog != nil {
		s.plog.Close()
	}
	if forced {
		return fmt.Errorf("server: drain deadline exceeded, in-flight work canceled: %w", ctx.Err())
	}
	return nil
}

// Run starts the server and blocks until ctx is canceled, then drains
// with the given grace period. It is the daemon main loop.
func (s *Server) Run(ctx context.Context, grace time.Duration) error {
	if err := s.Start(); err != nil {
		return err
	}
	<-ctx.Done()
	if grace <= 0 {
		grace = DefaultDrainWait
	}
	// Run's ctx is already canceled by the time the drain begins — that
	// is what triggered it — so the grace window must be a fresh root.
	drainCtx, cancel := context.WithTimeout(context.Background(), grace) //lint:allow ctxflow the parent ctx is already canceled when the drain starts; the grace window must outlive it
	defer cancel()
	return s.Shutdown(drainCtx)
}

// tenantNames returns the known tenants sorted, for deterministic
// metrics output.
func (s *Server) tenantNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
