package exec

import (
	"math"
	"testing"

	"mpq/internal/brute"
	"mpq/internal/catalog"
	"mpq/internal/core"
	"mpq/internal/cost"
	"mpq/internal/dp"
	"mpq/internal/partition"
	"mpq/internal/plan"
	"mpq/internal/query"
	"mpq/internal/workload"
)

// smallWorkload generates a query whose tables are small enough to
// materialize and join exhaustively.
func smallWorkload(t testing.TB, n int, shape workload.Shape, seed int64) (*catalog.Catalog, *query.Query, *DB) {
	t.Helper()
	p := workload.NewParams(n, shape)
	p.MinCard, p.MaxCard = 20, 300
	p.MinDomain, p.MaxDomain = 2, 40
	cat, q, err := workload.Generate(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Generate(cat, seed+1000, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	return cat, q, db
}

func TestGenerateShapes(t *testing.T) {
	cat, _, db := smallWorkload(t, 4, workload.Star, 1)
	if db.NumTables() != 4 {
		t.Fatalf("tables = %d", db.NumTables())
	}
	for i := 0; i < 4; i++ {
		want := int(cat.Table(i).Cardinality + 0.5)
		if db.TableRows(i) != want {
			t.Fatalf("table %d rows = %d want %d", i, db.TableRows(i), want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cat, _, _ := smallWorkload(t, 3, workload.Chain, 2)
	a, err := Generate(cat, 7, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cat, 7, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < 3; ti++ {
		for ri := range a.tables[ti] {
			for ci := range a.tables[ti][ri] {
				if a.tables[ti][ri][ci] != b.tables[ti][ri][ci] {
					t.Fatal("same seed produced different data")
				}
			}
		}
	}
}

func TestGenerateRespectsLimit(t *testing.T) {
	cat := catalog.New()
	cat.MustAddTable(catalog.Table{Name: "big", Cardinality: 100,
		Attributes: []catalog.Attribute{{Name: "a", Domain: 5}}})
	if _, err := Generate(cat, 0, Limits{MaxRows: 10}); err == nil {
		t.Fatal("limit not enforced")
	}
}

// The headline property: every plan the brute-force enumerator can build
// for a query returns the same result multiset when executed.
func TestAllPlansProduceSameResult(t *testing.T) {
	for _, shape := range []workload.Shape{workload.Chain, workload.Star} {
		_, q, db := smallWorkload(t, 4, shape, 3)
		var want string
		plans := brute.AllPlans(q, partition.Bushy, brute.Options{InterestingOrders: true})
		if len(plans) < 50 {
			t.Fatalf("only %d plans enumerated", len(plans))
		}
		// Cap the number of executed plans to keep the test fast, while
		// covering all operators and shapes.
		step := len(plans)/60 + 1
		checked := 0
		for i := 0; i < len(plans); i += step {
			res, err := Execute(plans[i], q, db, Limits{})
			if err != nil {
				t.Fatalf("%v: %v", plans[i], err)
			}
			fp := res.Fingerprint()
			if want == "" {
				want = fp
			} else if fp != want {
				t.Fatalf("%v: result %s differs from %s", plans[i], fp, want)
			}
			checked++
		}
		if checked < 30 {
			t.Fatalf("only %d plans executed", checked)
		}
	}
}

// The optimizer's chosen plan and a deliberately different plan agree.
func TestOptimalPlanMatchesReference(t *testing.T) {
	_, q, db := smallWorkload(t, 5, workload.Cycle, 4)
	best, err := dp.Serial(q, partition.Bushy, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Execute(best.Best(), q, db, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: left-deep plan in table order, all nested-loop joins.
	ref := plan.Scan(cost.Default(), q, 0)
	for ti := 1; ti < q.N(); ti++ {
		r := plan.Scan(cost.Default(), q, ti)
		card := q.CardOf(ref.Tables.Add(ti))
		ref = plan.Join(cost.Default(), ref, r, plan.JoinSpec{
			Alg: cost.NestedLoop, OutCard: card, Pred: plan.NoPred, Order: query.NoOrder,
		})
	}
	refRes, err := Execute(ref, q, db, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Fingerprint() != refRes.Fingerprint() {
		t.Fatal("optimal plan result differs from reference plan result")
	}
}

// MPQ's distributed answer executes to the same result as the serial one.
func TestMPQPlanExecutes(t *testing.T) {
	_, q, db := smallWorkload(t, 5, workload.Star, 6)
	ans, err := core.Optimize(q, core.JobSpec{Space: partition.Linear, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := dp.Serial(q, partition.Linear, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Execute(ans.Best, q, db, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(serial.Best(), q, db, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("MPQ and serial plans execute to different results")
	}
}

// Cardinality estimation sanity: on a two-table equality join with
// uniform data, the estimate matches the measured size within noise.
func TestCardinalityEstimateTracksMeasurement(t *testing.T) {
	cat := catalog.New()
	cat.MustAddTable(catalog.Table{Name: "l", Cardinality: 2000,
		Attributes: []catalog.Attribute{{Name: "k", Domain: 50}}})
	cat.MustAddTable(catalog.Table{Name: "r", Cardinality: 1000,
		Attributes: []catalog.Attribute{{Name: "k", Domain: 50}}})
	q := query.MustNew([]query.Table{{Name: "l", Cardinality: 2000}, {Name: "r", Cardinality: 1000}})
	sel, err := cat.EqSelectivity(0, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	q.MustAddPredicate(query.Predicate{Left: 0, Right: 1, Selectivity: sel})
	q.Freeze()
	db, err := Generate(cat, 9, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dp.Serial(q, partition.Linear, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Execute(res.Best(), q, db, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	est := res.Best().Card
	meas := float64(len(out.Rows))
	if math.Abs(est-meas)/est > 0.15 {
		t.Fatalf("estimate %g vs measured %g: relative error too large", est, meas)
	}
}

func TestCrossProductExecution(t *testing.T) {
	q := query.MustNew([]query.Table{{Name: "a", Cardinality: 10}, {Name: "b", Cardinality: 20}})
	q.Freeze()
	cat := catalog.New()
	cat.MustAddTable(catalog.Table{Name: "a", Cardinality: 10,
		Attributes: []catalog.Attribute{{Name: "x", Domain: 3}}})
	cat.MustAddTable(catalog.Table{Name: "b", Cardinality: 20,
		Attributes: []catalog.Attribute{{Name: "x", Domain: 3}}})
	db, err := Generate(cat, 0, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range cost.Algs {
		l, r := plan.Scan(cost.Default(), q, 0), plan.Scan(cost.Default(), q, 1)
		p := plan.Join(cost.Default(), l, r, plan.JoinSpec{
			Alg: alg, OutCard: 200, Pred: plan.NoPred, Order: query.NoOrder,
		})
		if alg == cost.SortMerge {
			// The optimizer never emits SMJ for cross products, but the
			// executor must still handle it (falls back to nested loop).
			continue
		}
		out, err := Execute(p, q, db, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Rows) != 200 {
			t.Fatalf("%v cross product rows = %d want 200", alg, len(out.Rows))
		}
	}
}

func TestRowLimitEnforced(t *testing.T) {
	_, q, db := smallWorkload(t, 4, workload.Star, 8)
	res, err := dp.Serial(q, partition.Linear, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(res.Best(), q, db, Limits{MaxRows: 1}); err == nil {
		t.Fatal("row limit not enforced")
	}
}

func TestFingerprintOrderIndependence(t *testing.T) {
	r1 := &Relation{
		Schema: []Col{{Table: 0, Attr: 0}, {Table: 1, Attr: 0}},
		Rows:   [][]int64{{1, 2}, {3, 4}},
	}
	r2 := &Relation{
		Schema: []Col{{Table: 1, Attr: 0}, {Table: 0, Attr: 0}}, // swapped columns
		Rows:   [][]int64{{4, 3}, {2, 1}},                       // swapped rows
	}
	if r1.Fingerprint() != r2.Fingerprint() {
		t.Fatal("fingerprint should be row- and column-order independent")
	}
	r3 := &Relation{Schema: r1.Schema, Rows: [][]int64{{1, 2}, {3, 5}}}
	if r1.Fingerprint() == r3.Fingerprint() {
		t.Fatal("different results share a fingerprint")
	}
}

func TestExecuteErrors(t *testing.T) {
	_, q, db := smallWorkload(t, 3, workload.Chain, 0)
	bad := &plan.Node{IsScan: true, Table: 99}
	if _, err := Execute(bad, q, db, Limits{}); err == nil {
		t.Fatal("unknown table accepted")
	}
	l := plan.Scan(cost.Default(), q, 0)
	r := plan.Scan(cost.Default(), q, 1)
	badAlg := &plan.Node{Left: l, Right: r, Alg: cost.JoinAlg(9), Tables: l.Tables.Union(r.Tables)}
	if _, err := Execute(badAlg, q, db, Limits{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
