// Package exec is a reference executor for query plans: it materializes
// synthetic base tables from a catalog and runs plan trees over them with
// real nested-loop, hash and sort-merge join operators.
//
// The paper's system stops at plan generation; the executor exists so
// the reproduction can validate what an optimizer-only codebase cannot:
// every plan the optimizer emits for the same query must produce the
// same result multiset regardless of join order, tree shape or operator
// choice, and the cost model's cardinality estimates can be compared
// against measured result sizes. It is deliberately simple (row-at-a-
// time, int64 columns) — a test oracle, not a query engine.
package exec

import (
	"fmt"
	"math/rand"
	"sort"

	"mpq/internal/catalog"
	"mpq/internal/cost"
	"mpq/internal/plan"
	"mpq/internal/query"
)

// Col identifies one output column: attribute attr of query table t.
type Col struct {
	Table int
	Attr  int
}

// Relation is a materialized (intermediate) result.
type Relation struct {
	Schema []Col
	Rows   [][]int64
}

// colIndex returns the position of (table, attr) in the schema, or -1.
func (r *Relation) colIndex(table, attr int) int {
	for i, c := range r.Schema {
		if c.Table == table && c.Attr == attr {
			return i
		}
	}
	return -1
}

// DB holds the materialized base tables of a catalog.
type DB struct {
	tables [][][]int64 // tables[t][row][attr]
	attrs  int
}

// Limits guards the executor against result-size explosions.
type Limits struct {
	// MaxRows fails execution when an intermediate result exceeds it
	// (0 = 1e6 rows).
	MaxRows int
}

func (l Limits) maxRows() int {
	if l.MaxRows <= 0 {
		return 1_000_000
	}
	return l.MaxRows
}

// Generate materializes synthetic data for every table of the catalog:
// each table gets round(cardinality) rows, and attribute a of table t is
// uniform over [0, domain). Generation is deterministic per seed.
func Generate(cat *catalog.Catalog, seed int64, lim Limits) (*DB, error) {
	db := &DB{}
	rng := rand.New(rand.NewSource(seed))
	for t := 0; t < cat.Len(); t++ {
		tbl := cat.Table(t)
		n := int(tbl.Cardinality + 0.5)
		if n > lim.maxRows() {
			return nil, fmt.Errorf("exec: table %q has %d rows, limit %d", tbl.Name, n, lim.maxRows())
		}
		if len(tbl.Attributes) > db.attrs {
			db.attrs = len(tbl.Attributes)
		}
		rows := make([][]int64, n)
		for i := range rows {
			row := make([]int64, len(tbl.Attributes))
			for a, attr := range tbl.Attributes {
				row[a] = rng.Int63n(attr.Domain)
			}
			rows[i] = row
		}
		db.tables = append(db.tables, rows)
	}
	return db, nil
}

// NumTables returns the number of materialized tables.
func (db *DB) NumTables() int { return len(db.tables) }

// TableRows returns the row count of base table t.
func (db *DB) TableRows(t int) int { return len(db.tables[t]) }

// Execute runs plan p for query q over the database and returns the
// result relation. The catalog used to generate db must match the
// query's table numbering.
func Execute(p *plan.Node, q *query.Query, db *DB, lim Limits) (*Relation, error) {
	q.Freeze()
	e := executor{q: q, db: db, lim: lim}
	return e.run(p)
}

type executor struct {
	q   *query.Query
	db  *DB
	lim Limits
}

func (e *executor) run(p *plan.Node) (*Relation, error) {
	if p.IsScan {
		if p.Table < 0 || p.Table >= len(e.db.tables) {
			return nil, fmt.Errorf("exec: scan of unknown table %d", p.Table)
		}
		rows := e.db.tables[p.Table]
		schema := make([]Col, 0, 4)
		if len(rows) > 0 {
			for a := range rows[0] {
				schema = append(schema, Col{Table: p.Table, Attr: a})
			}
		}
		return &Relation{Schema: schema, Rows: rows}, nil
	}
	left, err := e.run(p.Left)
	if err != nil {
		return nil, err
	}
	right, err := e.run(p.Right)
	if err != nil {
		return nil, err
	}
	preds := e.q.ConnectingPreds(nil, p.Left.Tables, p.Right.Tables)
	switch p.Alg {
	case cost.NestedLoop:
		return e.nestedLoop(left, right, preds)
	case cost.Hash:
		return e.hashJoin(left, right, preds)
	case cost.SortMerge:
		return e.sortMerge(left, right, preds, p.Pred)
	default:
		return nil, fmt.Errorf("exec: unknown join algorithm %d", int(p.Alg))
	}
}

// predCols resolves each predicate's columns in the left and right
// inputs (returning the column indices side-corrected).
func predCols(q *query.Query, left, right *Relation, preds []int) ([][2]int, error) {
	out := make([][2]int, 0, len(preds))
	for _, pi := range preds {
		p := q.Preds[pi]
		lc := left.colIndex(p.Left, p.LeftAttr)
		rc := right.colIndex(p.Right, p.RightAttr)
		if lc < 0 || rc < 0 {
			// predicate stored with endpoints swapped relative to inputs
			lc = left.colIndex(p.Right, p.RightAttr)
			rc = right.colIndex(p.Left, p.LeftAttr)
		}
		if lc < 0 || rc < 0 {
			return nil, fmt.Errorf("exec: predicate %d does not straddle inputs", pi)
		}
		out = append(out, [2]int{lc, rc})
	}
	return out, nil
}

func joinSchema(left, right *Relation) []Col {
	schema := make([]Col, 0, len(left.Schema)+len(right.Schema))
	schema = append(schema, left.Schema...)
	schema = append(schema, right.Schema...)
	return schema
}

func (e *executor) emit(out *Relation, l, r []int64) error {
	row := make([]int64, 0, len(l)+len(r))
	row = append(row, l...)
	row = append(row, r...)
	out.Rows = append(out.Rows, row)
	if len(out.Rows) > e.lim.maxRows() {
		return fmt.Errorf("exec: intermediate result exceeds %d rows", e.lim.maxRows())
	}
	return nil
}

func matches(l, r []int64, cols [][2]int) bool {
	for _, c := range cols {
		if l[c[0]] != r[c[1]] {
			return false
		}
	}
	return true
}

func (e *executor) nestedLoop(left, right *Relation, preds []int) (*Relation, error) {
	cols, err := predCols(e.q, left, right, preds)
	if err != nil {
		return nil, err
	}
	out := &Relation{Schema: joinSchema(left, right)}
	for _, l := range left.Rows {
		for _, r := range right.Rows {
			if matches(l, r, cols) {
				if err := e.emit(out, l, r); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

func (e *executor) hashJoin(left, right *Relation, preds []int) (*Relation, error) {
	cols, err := predCols(e.q, left, right, preds)
	if err != nil {
		return nil, err
	}
	if len(cols) == 0 {
		// Degenerates to a cross product; reuse the nested loop.
		return e.nestedLoop(left, right, preds)
	}
	// Build on the right (inner) input, keyed by the predicate columns.
	type key [4]int64 // up to 4 join columns; more are checked post-probe
	nk := len(cols)
	if nk > 4 {
		nk = 4
	}
	build := make(map[key][][]int64, len(right.Rows))
	for _, r := range right.Rows {
		var k key
		for i := 0; i < nk; i++ {
			k[i] = r[cols[i][1]]
		}
		build[k] = append(build[k], r)
	}
	out := &Relation{Schema: joinSchema(left, right)}
	for _, l := range left.Rows {
		var k key
		for i := 0; i < nk; i++ {
			k[i] = l[cols[i][0]]
		}
		for _, r := range build[k] {
			if matches(l, r, cols) {
				if err := e.emit(out, l, r); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

func (e *executor) sortMerge(left, right *Relation, preds []int, mergePred int) (*Relation, error) {
	cols, err := predCols(e.q, left, right, preds)
	if err != nil {
		return nil, err
	}
	if len(cols) == 0 {
		return e.nestedLoop(left, right, preds)
	}
	// Merge on the plan's designated predicate if set, else the first.
	mi := 0
	if mergePred != plan.NoPred {
		for i, pi := range preds {
			if pi == mergePred {
				mi = i
				break
			}
		}
	}
	lc, rc := cols[mi][0], cols[mi][1]
	ls := append([][]int64(nil), left.Rows...)
	rs := append([][]int64(nil), right.Rows...)
	sort.SliceStable(ls, func(i, j int) bool { return ls[i][lc] < ls[j][lc] })
	sort.SliceStable(rs, func(i, j int) bool { return rs[i][rc] < rs[j][rc] })
	out := &Relation{Schema: joinSchema(left, right)}
	i, j := 0, 0
	for i < len(ls) && j < len(rs) {
		switch {
		case ls[i][lc] < rs[j][rc]:
			i++
		case ls[i][lc] > rs[j][rc]:
			j++
		default:
			v := ls[i][lc]
			jStart := j
			for ; i < len(ls) && ls[i][lc] == v; i++ {
				for j = jStart; j < len(rs) && rs[j][rc] == v; j++ {
					if matches(ls[i], rs[j], cols) {
						if err := e.emit(out, ls[i], rs[j]); err != nil {
							return nil, err
						}
					}
				}
			}
		}
	}
	return out, nil
}

// Fingerprint returns an order-independent digest of the result: the
// multiset of rows projected onto a canonical column order. Two
// equivalent plans must produce equal fingerprints.
func (r *Relation) Fingerprint() string {
	// Canonical column order: by (table, attr).
	idx := make([]int, len(r.Schema))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ca, cb := r.Schema[idx[a]], r.Schema[idx[b]]
		if ca.Table != cb.Table {
			return ca.Table < cb.Table
		}
		return ca.Attr < cb.Attr
	})
	lines := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		b := make([]byte, 0, len(row)*8)
		for _, c := range idx {
			v := row[c]
			b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
				byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
		}
		lines[i] = string(b)
	}
	sort.Strings(lines)
	var out []byte
	for _, l := range lines {
		out = append(out, l...)
	}
	return fmt.Sprintf("%d:%x", len(r.Rows), fnv64(out))
}

func fnv64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
