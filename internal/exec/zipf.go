package exec

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mpq/internal/catalog"
)

// GenerateZipf materializes synthetic data like Generate, but with
// Zipf-skewed attribute values: value v of a domain of size d is drawn
// with probability proportional to 1/(v+1)^skew. Skew 0 is exactly
// Generate — same RNG consumption, byte-identical tables — so callers
// can thread a skew parameter through unconditionally. Larger skew
// concentrates rows on few values, which makes measured join
// selectivities diverge from the catalog's uniform-independence
// estimate; the regret experiment uses that divergence as a source of
// realistic estimation error.
//
// The generator hand-rolls inverse-CDF sampling rather than using
// rand.Zipf because the stdlib sampler requires skew > 1, and mild
// skews in (0, 1] are exactly the interesting regime here.
// MeasuredSelectivity returns the fraction of the cross product of
// tables a and b that an equality predicate between attribute ai of a
// and attribute bi of b retains, measured on the materialized rows —
// the ground truth the catalog's uniform-independence estimate
// approximates. Returns 0 when no rows match; fails on out-of-range
// table or attribute indices or empty tables.
func (db *DB) MeasuredSelectivity(a, ai, b, bi int) (float64, error) {
	if a < 0 || a >= len(db.tables) || b < 0 || b >= len(db.tables) {
		return 0, fmt.Errorf("exec: table index out of range (%d, %d)", a, b)
	}
	ra, rb := db.tables[a], db.tables[b]
	if len(ra) == 0 || len(rb) == 0 {
		return 0, fmt.Errorf("exec: measuring selectivity over empty table")
	}
	if ai < 0 || ai >= len(ra[0]) || bi < 0 || bi >= len(rb[0]) {
		return 0, fmt.Errorf("exec: attribute index out of range (%d, %d)", ai, bi)
	}
	freq := make(map[int64]int64, len(ra))
	for _, row := range ra {
		freq[row[ai]]++
	}
	var matches int64
	for _, row := range rb {
		matches += freq[row[bi]]
	}
	return float64(matches) / (float64(len(ra)) * float64(len(rb))), nil
}

func GenerateZipf(cat *catalog.Catalog, seed int64, lim Limits, skew float64) (*DB, error) {
	if math.IsNaN(skew) || math.IsInf(skew, 0) || skew < 0 {
		return nil, fmt.Errorf("exec: zipf skew must be finite and non-negative, got %v", skew)
	}
	if skew == 0 {
		return Generate(cat, seed, lim)
	}
	db := &DB{}
	rng := rand.New(rand.NewSource(seed))
	cdfs := map[int64][]float64{} // domain size -> cumulative weights
	cdf := func(domain int64) []float64 {
		if c, ok := cdfs[domain]; ok {
			return c
		}
		c := make([]float64, domain)
		sum := 0.0
		for v := int64(0); v < domain; v++ {
			sum += math.Pow(float64(v+1), -skew)
			c[v] = sum
		}
		cdfs[domain] = c
		return c
	}
	for t := 0; t < cat.Len(); t++ {
		tbl := cat.Table(t)
		n := int(tbl.Cardinality + 0.5)
		if n > lim.maxRows() {
			return nil, fmt.Errorf("exec: table %q has %d rows, limit %d", tbl.Name, n, lim.maxRows())
		}
		if len(tbl.Attributes) > db.attrs {
			db.attrs = len(tbl.Attributes)
		}
		rows := make([][]int64, n)
		for i := range rows {
			row := make([]int64, len(tbl.Attributes))
			for a, attr := range tbl.Attributes {
				c := cdf(attr.Domain)
				u := rng.Float64() * c[len(c)-1]
				row[a] = int64(sort.SearchFloat64s(c, u))
				if row[a] >= attr.Domain { // u == total, a measure-zero edge
					row[a] = attr.Domain - 1
				}
			}
			rows[i] = row
		}
		db.tables = append(db.tables, rows)
	}
	return db, nil
}
