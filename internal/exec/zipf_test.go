package exec

import (
	"math"
	"reflect"
	"testing"

	"mpq/internal/workload"
)

// TestGenerateZipfZeroSkewIsGenerate: skew 0 must consume the RNG
// exactly like Generate and produce byte-identical tables, so callers
// can thread a skew parameter through unconditionally.
func TestGenerateZipfZeroSkewIsGenerate(t *testing.T) {
	cat, _, err := workload.Generate(workload.NewParams(5, workload.Star), 3)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Generate(cat, 7, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	zipf, err := GenerateZipf(cat, 7, Limits{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.tables, zipf.tables) {
		t.Fatal("skew 0 produced different tables than Generate")
	}
}

// TestGenerateZipfSkew: the same seed reproduces the same rows, and a
// positive skew concentrates mass on small values — value 0 must be
// strictly more frequent than under the uniform draw.
func TestGenerateZipfSkew(t *testing.T) {
	p := workload.NewParams(4, workload.Star)
	p.MinCard, p.MaxCard = 500, 1000
	cat, _, err := workload.Generate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := GenerateZipf(cat, 9, Limits{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateZipf(cat, 9, Limits{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.tables, b.tables) {
		t.Fatal("same seed produced different tables")
	}
	uniform, err := Generate(cat, 9, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	zeros := func(db *DB) (n int) {
		for _, rows := range db.tables {
			for _, row := range rows {
				for _, v := range row {
					if v == 0 {
						n++
					}
				}
			}
		}
		return n
	}
	if zs, zu := zeros(a), zeros(uniform); zs <= zu {
		t.Fatalf("skew 1 produced %d zero values, uniform %d — no concentration", zs, zu)
	}
	for _, bad := range []float64{-1, math.Inf(1), math.NaN()} {
		if _, err := GenerateZipf(cat, 9, Limits{}, bad); err == nil {
			t.Fatalf("skew %v accepted", bad)
		}
	}
}

// TestMeasuredSelectivity checks the measured fraction against a
// hand-counted cross product and the error paths.
func TestMeasuredSelectivity(t *testing.T) {
	db := &DB{
		attrs: 1,
		tables: [][][]int64{
			{{0}, {0}, {1}},      // table 0: values 0, 0, 1
			{{0}, {1}, {1}, {2}}, // table 1: values 0, 1, 1, 2
		},
	}
	// Matches: 2·1 (value 0) + 1·2 (value 1) = 4 of 12 pairs.
	sel, err := db.MeasuredSelectivity(0, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4.0 / 12.0; sel != want {
		t.Fatalf("measured selectivity %g, want %g", sel, want)
	}
	// Symmetric in the table order.
	rev, err := db.MeasuredSelectivity(1, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rev != sel {
		t.Fatalf("selectivity not symmetric: %g vs %g", rev, sel)
	}
	if _, err := db.MeasuredSelectivity(0, 0, 2, 0); err == nil {
		t.Fatal("out-of-range table accepted")
	}
	if _, err := db.MeasuredSelectivity(0, 1, 1, 0); err == nil {
		t.Fatal("out-of-range attribute accepted")
	}
	empty := &DB{tables: [][][]int64{{}, {{0}}}}
	if _, err := empty.MeasuredSelectivity(0, 0, 1, 0); err == nil {
		t.Fatal("empty table accepted")
	}
}
