package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"mpq/internal/catalog"
	"mpq/internal/query"
)

// SubgraphFromSchema builds the catalog and join query of a random
// connected sub-graph of a TPC-style schema's foreign-key join graph.
// It picks `tables` relations by seeded random connected growth — start
// at a random relation, repeatedly absorb a random foreign-key neighbor
// of the chosen set — and joins them with every schema join whose two
// relations were both chosen, so a star schema yields star-ish queries
// and a snowflake schema yields chain-ish ones. Relations keep the
// schema's declaration order in the result (the query shape depends on
// the seed, the table numbering does not). Same (schema, sf, tables,
// seed) — same catalog and query.
func SubgraphFromSchema(s *catalog.Schema, sf float64, tables int, seed int64) (*catalog.Catalog, *query.Query, error) {
	if s == nil {
		return nil, nil, fmt.Errorf("workload: nil schema")
	}
	if tables < 2 || tables > len(s.Tables) {
		return nil, nil, fmt.Errorf("workload: subgraph of schema %q wants 2..%d tables, got %d",
			s.Name, len(s.Tables), tables)
	}
	full, err := s.Build(sf)
	if err != nil {
		return nil, nil, err
	}

	// Adjacency over schema table indices. Schema joins reference tables
	// by name; Build has already verified every name resolves.
	idx := make(map[string]int, len(s.Tables))
	for i, t := range s.Tables {
		idx[t.Name] = i
	}
	adj := make([][]int, len(s.Tables))
	for _, j := range s.Joins {
		l, r := idx[j.Left], idx[j.Right]
		adj[l] = append(adj[l], r)
		adj[r] = append(adj[r], l)
	}

	// Only a start whose connected component holds enough relations can
	// grow to the requested size.
	eligible := componentsAtLeast(adj, tables)
	if len(eligible) == 0 {
		return nil, nil, fmt.Errorf("workload: schema %q has no connected component with %d tables",
			s.Name, tables)
	}

	rng := rand.New(rand.NewSource(seed))
	chosen := make([]bool, len(s.Tables))
	chosen[eligible[rng.Intn(len(eligible))]] = true
	for picked := 1; picked < tables; picked++ {
		// Candidates are the unchosen neighbors of the chosen set, in
		// ascending schema order — the draw is over a deterministic list.
		var cands []int
		seen := make([]bool, len(s.Tables))
		for t, in := range chosen {
			if !in {
				continue
			}
			for _, n := range adj[t] {
				if !chosen[n] && !seen[n] {
					seen[n] = true
					cands = append(cands, n)
				}
			}
		}
		sort.Ints(cands)
		chosen[cands[rng.Intn(len(cands))]] = true
	}

	// Renumber: chosen relations keep schema declaration order.
	cat := catalog.New()
	for i, t := range s.Tables {
		if !chosen[i] {
			continue
		}
		fi, _ := full.Lookup(t.Name)
		if _, err := cat.AddTable(full.Table(fi)); err != nil {
			return nil, nil, err
		}
	}
	qts := make([]query.Table, cat.Len())
	for i := range qts {
		t := cat.Table(i)
		qts[i] = query.Table{Name: t.Name, Cardinality: t.Cardinality}
	}
	q, err := query.New(qts)
	if err != nil {
		return nil, nil, err
	}
	for i, j := range s.Joins {
		if !chosen[idx[j.Left]] || !chosen[idx[j.Right]] {
			continue
		}
		li, lai, err := resolveAttr(cat, j.Left, j.LeftAttr)
		if err != nil {
			return nil, nil, fmt.Errorf("workload: schema %q join %d: %w", s.Name, i, err)
		}
		ri, rai, err := resolveAttr(cat, j.Right, j.RightAttr)
		if err != nil {
			return nil, nil, fmt.Errorf("workload: schema %q join %d: %w", s.Name, i, err)
		}
		sel, err := cat.EqSelectivity(li, lai, ri, rai)
		if err != nil {
			return nil, nil, err
		}
		if err := q.AddPredicate(query.Predicate{
			Left: li, Right: ri, LeftAttr: lai, RightAttr: rai, Selectivity: sel,
		}); err != nil {
			return nil, nil, fmt.Errorf("workload: schema %q join %d: %w", s.Name, i, err)
		}
	}
	q.Freeze()
	return cat, q, nil
}

// componentsAtLeast returns, in ascending order, every node whose
// connected component has at least k nodes.
func componentsAtLeast(adj [][]int, k int) []int {
	comp := make([]int, len(adj))
	for i := range comp {
		comp[i] = -1
	}
	var sizes []int
	for i := range adj {
		if comp[i] >= 0 {
			continue
		}
		id := len(sizes)
		size := 0
		stack := []int{i}
		comp[i] = id
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			for _, m := range adj[n] {
				if comp[m] < 0 {
					comp[m] = id
					stack = append(stack, m)
				}
			}
		}
		sizes = append(sizes, size)
	}
	var out []int
	for i, c := range comp {
		if sizes[c] >= k {
			out = append(out, i)
		}
	}
	return out
}
