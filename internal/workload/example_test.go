package workload_test

import (
	"fmt"

	"mpq/internal/catalog"
	"mpq/internal/workload"
)

// Generate builds a random Steinbrunn-style query: the same (Params,
// seed) always produces the same catalog and query.
func ExampleGenerate() {
	params := workload.NewParams(4, workload.Star)
	cat, q, err := workload.Generate(params, 42)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d tables, %d predicates\n", q.N(), len(q.Preds))
	fmt.Printf("catalog tables: %d\n", cat.Len())
	for _, p := range q.Preds {
		fmt.Printf("T%d ⋈ T%d  sel=%.6f\n", p.Left, p.Right, p.Selectivity)
	}
	// Output:
	// 4 tables, 3 predicates
	// catalog tables: 4
	// T0 ⋈ T1  sel=0.045455
	// T0 ⋈ T2  sel=0.008065
	// T0 ⋈ T3  sel=0.005848
}

// The Snowflake shape arranges tables as a fact → dimension →
// sub-dimension tree with Params.Branching children per node;
// cardinalities shrink by about a decade per level.
func ExampleGenerate_snowflake() {
	params := workload.NewParams(7, workload.Snowflake)
	params.Branching = 2
	_, q, err := workload.Generate(params, 1)
	if err != nil {
		panic(err)
	}
	for _, p := range q.Preds {
		fmt.Printf("T%d -> T%d\n", p.Left, p.Right)
	}
	fact := q.Tables[0].Cardinality
	leaf := q.Tables[6].Cardinality
	fmt.Printf("fact is %dx larger than the last sub-dimension\n", int(fact/leaf))
	// Output:
	// T0 -> T1
	// T0 -> T2
	// T1 -> T3
	// T1 -> T4
	// T2 -> T5
	// T2 -> T6
	// fact is 120x larger than the last sub-dimension
}

// FromSchema turns a TPC-style schema into the canonical foreign-key
// join query over its tables — no random draws, so the result depends
// only on the schema and the scale factor.
func ExampleFromSchema() {
	cat, q, err := workload.FromSchema(catalog.TPCH(), 1)
	if err != nil {
		panic(err)
	}
	li, _ := cat.Lookup("lineitem")
	fmt.Printf("%d tables, %d joins\n", q.N(), len(q.Preds))
	fmt.Printf("lineitem: %.0f rows\n", cat.Table(li).Cardinality)
	// Output:
	// 8 tables, 8 joins
	// lineitem: 6000000 rows
}
