package workload

import (
	"testing"

	"mpq/internal/wire"
)

func streamParams() StreamParams {
	return StreamParams{
		Query:    NewParams(7, Star),
		Distinct: 16,
		Length:   512,
		Skew:     1.1,
	}
}

// TestStreamDeterministic: same (params, seed) — same queries, same
// arrival order; a different seed reorders arrivals.
func TestStreamDeterministic(t *testing.T) {
	a, err := GenerateStream(streamParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateStream(streamParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatalf("arrival %d differs between identical generations", i)
		}
	}
	for k := range a.Queries {
		if string(wire.EncodeQuery(a.Queries[k])) != string(wire.EncodeQuery(b.Queries[k])) {
			t.Fatalf("distinct query %d differs between identical generations", k)
		}
	}
	c, err := GenerateStream(streamParams(), 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Order {
		if a.Order[i] != c.Order[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the same arrival order")
	}
}

// TestStreamQueriesMatchBatch: rank k of the stream is exactly the
// standalone query generated with seed+k, so cached-serving results are
// comparable with per-query experiments.
func TestStreamQueriesMatchBatch(t *testing.T) {
	p := streamParams()
	s, err := GenerateStream(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	for k, q := range s.Queries {
		_, want, err := Generate(p.Query, 42+int64(k))
		if err != nil {
			t.Fatal(err)
		}
		if string(wire.EncodeQuery(q)) != string(wire.EncodeQuery(want)) {
			t.Fatalf("stream query %d != Generate(seed+%d)", k, k)
		}
	}
}

// TestStreamZipfSkew: arrivals concentrate on the popular ranks, more
// so at higher skew, and At indexes the right query.
func TestStreamZipfSkew(t *testing.T) {
	mass := func(skew float64) float64 {
		p := streamParams()
		p.Skew = skew
		s, err := GenerateStream(p, 9)
		if err != nil {
			t.Fatal(err)
		}
		top := 0
		for i, r := range s.Order {
			if r == 0 {
				top++
			}
			if s.At(i) != s.Queries[r] {
				t.Fatal("At does not follow Order")
			}
		}
		return float64(top) / float64(len(s.Order))
	}
	lo, hi := mass(1.05), mass(2.5)
	if lo <= 1.0/16 {
		t.Fatalf("rank-0 mass %g not above uniform", lo)
	}
	if hi <= lo {
		t.Fatalf("higher skew did not concentrate traffic: %g vs %g", hi, lo)
	}
}

// TestStreamValidate rejects bad parameters.
func TestStreamValidate(t *testing.T) {
	bad := []func(*StreamParams){
		func(p *StreamParams) { p.Distinct = 0 },
		func(p *StreamParams) { p.Length = 0 },
		func(p *StreamParams) { p.Skew = 1.0 },
		func(p *StreamParams) { p.Query.Tables = 0 },
	}
	for i, mut := range bad {
		p := streamParams()
		mut(&p)
		if _, err := GenerateStream(p, 1); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}
