package workload

import (
	"testing"

	"mpq/internal/bitset"
	"mpq/internal/catalog"
)

func TestSubgraphFromSchema(t *testing.T) {
	sch := catalog.TPCDS()
	for _, tables := range []int{2, 4, len(sch.Tables)} {
		for seed := int64(0); seed < 5; seed++ {
			cat, q, err := SubgraphFromSchema(sch, 1, tables, seed)
			if err != nil {
				t.Fatalf("tables=%d seed=%d: %v", tables, seed, err)
			}
			if cat.Len() != tables || q.N() != tables {
				t.Fatalf("tables=%d seed=%d: got %d relations, query over %d", tables, seed, cat.Len(), q.N())
			}
			if err := q.Validate(); err != nil {
				t.Fatalf("tables=%d seed=%d: invalid query: %v", tables, seed, err)
			}
			// Connected growth must yield a connected join graph: the
			// planner would otherwise need cross products.
			if !q.Connected(bitset.Range(q.N())) {
				t.Fatalf("tables=%d seed=%d: disconnected join graph", tables, seed)
			}
			// Relations keep schema declaration order regardless of the
			// order the random growth picked them in.
			pos := -1
			for i := 0; i < cat.Len(); i++ {
				j := schemaIndex(t, sch, cat.Table(i).Name)
				if j <= pos {
					t.Fatalf("tables=%d seed=%d: relation order violates schema order", tables, seed)
				}
				pos = j
			}
		}
	}
}

func schemaIndex(t *testing.T, s *catalog.Schema, name string) int {
	t.Helper()
	for i, tb := range s.Tables {
		if tb.Name == name {
			return i
		}
	}
	t.Fatalf("relation %q not in schema %q", name, s.Name)
	return -1
}

// TestSubgraphDeterminismAndVariety: the same seed reproduces the same
// subquery; across seeds the picks actually vary.
func TestSubgraphDeterminismAndVariety(t *testing.T) {
	sch := catalog.TPCH()
	names := func(seed int64) string {
		cat, _, err := SubgraphFromSchema(sch, 1, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for i := 0; i < cat.Len(); i++ {
			out += cat.Table(i).Name + ","
		}
		return out
	}
	if names(3) != names(3) {
		t.Fatal("same seed picked different relations")
	}
	varied := false
	for seed := int64(0); seed < 10 && !varied; seed++ {
		varied = names(seed) != names(0)
	}
	if !varied {
		t.Fatal("ten seeds all picked the same relations")
	}
}

func TestSubgraphErrors(t *testing.T) {
	sch := catalog.TPCH()
	if _, _, err := SubgraphFromSchema(nil, 1, 3, 1); err == nil {
		t.Fatal("nil schema accepted")
	}
	for _, tables := range []int{0, 1, len(sch.Tables) + 1} {
		if _, _, err := SubgraphFromSchema(sch, 1, tables, 1); err == nil {
			t.Fatalf("%d tables accepted", tables)
		}
	}
	// A schema with an isolated relation cannot grow a subgraph larger
	// than its biggest connected component.
	iso := &catalog.Schema{
		Name: "iso",
		Tables: []catalog.SchemaTable{
			{Name: "a", Cardinality: 10, Attributes: []catalog.SchemaAttribute{{Name: "k", Domain: 10}}},
			{Name: "b", Cardinality: 10, Attributes: []catalog.SchemaAttribute{{Name: "k", Domain: 10}}},
			{Name: "c", Cardinality: 10, Attributes: []catalog.SchemaAttribute{{Name: "k", Domain: 10}}},
		},
		Joins: []catalog.SchemaJoin{{Left: "a", LeftAttr: "k", Right: "b", RightAttr: "k"}},
	}
	if _, _, err := SubgraphFromSchema(iso, 1, 3, 1); err == nil {
		t.Fatal("subgraph across disconnected components accepted")
	}
	if _, q, err := SubgraphFromSchema(iso, 1, 2, 1); err != nil || q.N() != 2 {
		t.Fatalf("2-table subgraph of the connected component: q=%v err=%v", q, err)
	}
}
