package workload

import (
	"fmt"
	"math/rand"

	"mpq/internal/query"
)

// StreamParams configures a Zipf-popularity repeat stream: the served-
// traffic model where a bounded population of distinct queries arrives
// with heavily skewed popularity (a few queries dominate, a long tail
// trickles). This is the workload a plan cache is measured against —
// hit rate and serving latency under realistic repetition.
type StreamParams struct {
	// Query configures the distinct queries' generation (shape, size,
	// statistics), as for Generate.
	Query Params
	// Distinct is the number of distinct queries in the population.
	Distinct int
	// Length is the number of arrivals in the stream.
	Length int
	// Skew is the Zipf exponent s > 1: arrival i draws query rank k
	// with probability proportional to 1/(1+k)^s. s ≈ 1.1 models web-
	// style popularity skew; larger s concentrates traffic on fewer
	// queries.
	Skew float64
}

// Validate reports the first problem with the parameters.
func (p StreamParams) Validate() error {
	if err := p.Query.Validate(); err != nil {
		return err
	}
	if p.Distinct < 1 {
		return fmt.Errorf("workload: stream needs at least 1 distinct query, got %d", p.Distinct)
	}
	if p.Length < 1 {
		return fmt.Errorf("workload: stream length %d must be positive", p.Length)
	}
	if !(p.Skew > 1) {
		return fmt.Errorf("workload: Zipf skew %g must be > 1", p.Skew)
	}
	return nil
}

// Stream is a generated repeat stream: the distinct query population in
// popularity-rank order plus the arrival order as indices into it.
type Stream struct {
	Params StreamParams
	// Queries holds the distinct queries; Queries[0] is the most
	// popular rank.
	Queries []*query.Query
	// Order is the arrival sequence: Order[i] indexes Queries.
	Order []int
}

// At returns the i-th arrival's query.
func (s *Stream) At(i int) *query.Query { return s.Queries[s.Order[i]] }

// streamSalt decorrelates the arrival-order randomness from the query-
// generation seeds (which are seed, seed+1, ... as in Batch).
const streamSalt = 0x5eed51d3a9f0b274

// GenerateStream builds a Zipf-popularity repeat stream. Fully
// deterministic given (params, seed): the distinct queries are
// Batch(p.Query, seed, p.Distinct) — so query k of a stream equals the
// standalone query generated with seed+k — and the arrival order is
// drawn from a separately salted generator, so the same population can
// be replayed under different skews by varying only p.Skew.
func GenerateStream(p StreamParams, seed int64) (*Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	queries, err := Batch(p.Query, seed, p.Distinct)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed ^ streamSalt))
	zipf := rand.NewZipf(rng, p.Skew, 1, uint64(p.Distinct-1))
	order := make([]int, p.Length)
	for i := range order {
		order[i] = int(zipf.Uint64())
	}
	return &Stream{Params: p, Queries: queries, Order: order}, nil
}
