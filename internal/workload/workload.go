// Package workload generates random join queries by the method of
// Steinbrunn et al. [19], which the paper uses for all its experiments
// (§6.1): random table cardinalities and attribute domain sizes, equality
// predicates with selectivity 1/max(domain), and configurable join-graph
// shapes (chain, star, cycle, clique).
//
// Generation is fully deterministic given (Params, seed), so every
// experiment is reproducible and workers could regenerate queries from a
// seed instead of receiving them over the network.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"mpq/internal/catalog"
	"mpq/internal/query"
)

// Shape is the join-graph structure (Figure 3 compares chain, star and
// cycle; star is the paper's default).
type Shape int

const (
	// Star connects table 0 to every other table (the default in §6.1).
	Star Shape = iota
	// Chain connects table i to table i+1.
	Chain
	// Cycle is a chain plus an edge closing the loop.
	Cycle
	// Clique connects every table pair.
	Clique
)

// Shapes lists all join-graph shapes in a stable order.
var Shapes = [...]Shape{Star, Chain, Cycle, Clique}

// String names the shape as in Figure 3.
func (s Shape) String() string {
	switch s {
	case Star:
		return "Star"
	case Chain:
		return "Chain"
	case Cycle:
		return "Cycle"
	case Clique:
		return "Clique"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// ParseShape converts a shape name (case-sensitive, as produced by
// String) back to a Shape.
func ParseShape(s string) (Shape, error) {
	for _, sh := range Shapes {
		if sh.String() == s {
			return sh, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown join graph shape %q", s)
}

// Params configures query generation. NewParams supplies the documented
// defaults (log-uniform cardinalities in [10, 100000], log-uniform
// attribute domains in [2, 1000], 4 attributes per table).
type Params struct {
	Tables        int
	Shape         Shape
	MinCard       float64
	MaxCard       float64
	MinDomain     int64
	MaxDomain     int64
	AttrsPerTable int
}

// NewParams returns the default parameters for an n-table query.
func NewParams(n int, shape Shape) Params {
	return Params{
		Tables:        n,
		Shape:         shape,
		MinCard:       10,
		MaxCard:       100000,
		MinDomain:     2,
		MaxDomain:     1000,
		AttrsPerTable: 4,
	}
}

// Validate reports the first problem with the parameters.
func (p Params) Validate() error {
	if p.Tables < 1 {
		return fmt.Errorf("workload: need at least 1 table, got %d", p.Tables)
	}
	if !(p.MinCard > 0) || p.MaxCard < p.MinCard {
		return fmt.Errorf("workload: invalid cardinality range [%g, %g]", p.MinCard, p.MaxCard)
	}
	if p.MinDomain < 1 || p.MaxDomain < p.MinDomain {
		return fmt.Errorf("workload: invalid domain range [%d, %d]", p.MinDomain, p.MaxDomain)
	}
	if p.AttrsPerTable < 1 {
		return fmt.Errorf("workload: need at least 1 attribute per table")
	}
	switch p.Shape {
	case Star, Chain, Cycle, Clique:
	default:
		return fmt.Errorf("workload: invalid shape %d", int(p.Shape))
	}
	return nil
}

// edges returns the join-graph edge list for the shape.
func (p Params) edges() [][2]int {
	n := p.Tables
	var out [][2]int
	switch p.Shape {
	case Chain:
		for i := 0; i+1 < n; i++ {
			out = append(out, [2]int{i, i + 1})
		}
	case Star:
		for i := 1; i < n; i++ {
			out = append(out, [2]int{0, i})
		}
	case Cycle:
		for i := 0; i+1 < n; i++ {
			out = append(out, [2]int{i, i + 1})
		}
		if n > 2 {
			out = append(out, [2]int{n - 1, 0})
		}
	case Clique:
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// logUniform draws from [lo, hi] with uniform density in log space, the
// Steinbrunn et al. convention for cardinalities and domains.
func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	if lo == hi {
		return lo
	}
	return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
}

// Generate builds the catalog and query for the given parameters and
// seed. The same (params, seed) always yields the same query.
func Generate(p Params, seed int64) (*catalog.Catalog, *query.Query, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	cat := catalog.New()
	tables := make([]query.Table, p.Tables)
	for i := range tables {
		card := math.Round(logUniform(rng, p.MinCard, p.MaxCard))
		attrs := make([]catalog.Attribute, p.AttrsPerTable)
		for a := range attrs {
			dom := int64(math.Round(logUniform(rng, float64(p.MinDomain), float64(p.MaxDomain))))
			// A column cannot have more distinct values than rows.
			if float64(dom) > card {
				dom = int64(card)
			}
			attrs[a] = catalog.Attribute{Name: fmt.Sprintf("a%d", a), Domain: dom}
		}
		name := fmt.Sprintf("T%d", i)
		if _, err := cat.AddTable(catalog.Table{Name: name, Cardinality: card, Attributes: attrs}); err != nil {
			return nil, nil, err
		}
		tables[i] = query.Table{Name: name, Cardinality: card}
	}

	q, err := query.New(tables)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range p.edges() {
		ai := rng.Intn(p.AttrsPerTable)
		bi := rng.Intn(p.AttrsPerTable)
		sel, err := cat.EqSelectivity(e[0], ai, e[1], bi)
		if err != nil {
			return nil, nil, err
		}
		if err := q.AddPredicate(query.Predicate{
			Left: e[0], Right: e[1], LeftAttr: ai, RightAttr: bi, Selectivity: sel,
		}); err != nil {
			return nil, nil, err
		}
	}
	q.Freeze()
	return cat, q, nil
}

// MustGenerate panics on error; for tests and benchmarks with known-valid
// parameters.
func MustGenerate(p Params, seed int64) *query.Query {
	_, q, err := Generate(p, seed)
	if err != nil {
		panic(err)
	}
	return q
}

// Batch generates count queries with consecutive seeds starting at base.
func Batch(p Params, base int64, count int) ([]*query.Query, error) {
	out := make([]*query.Query, count)
	for i := range out {
		_, q, err := Generate(p, base+int64(i))
		if err != nil {
			return nil, err
		}
		out[i] = q
	}
	return out, nil
}
